//! Machine model: topology, link parameters and per-run randomness.

use pselinv_trees::rng::{hash2, splitmix64};

/// Parameters of the simulated machine. Defaults approximate NERSC Edison
/// (Cray XC30): 24-core Ivy Bridge nodes, ~10 GFlop/s effective per-core
/// DGEMM rate, Aries interconnect.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Ranks packed per node.
    pub ranks_per_node: usize,
    /// Effective per-rank compute rate in flop/s.
    pub flops_per_sec: f64,
    /// Latency of an intra-node message (seconds).
    pub latency_intra: f64,
    /// Base latency of an inter-node message (seconds).
    pub latency_inter: f64,
    /// Intra-node bandwidth (bytes/s) — shared-memory copies.
    pub bw_intra: f64,
    /// Base inter-node bandwidth per NIC (bytes/s).
    pub bw_inter: f64,
    /// Fixed per-message overhead added to NIC occupancy (seconds) —
    /// penalizes many small messages.
    pub msg_overhead: f64,
    /// CPU time the *sending rank's core* spends per `MPI_Isend`
    /// (marshalling + injection call). A flat-tree root issues `p̄-1` of
    /// these back to back, stalling its own compute — one of the
    /// mechanisms behind the paper's flat-tree hot spots.
    pub cpu_per_msg: f64,
    /// Fixed per-task dispatch overhead (seconds).
    pub task_overhead: f64,
    /// Relative spread of the per-node-pair inter-node link factor
    /// (0 = homogeneous network, 0.3 = links vary by ±30 %).
    pub jitter: f64,
    /// Per-run seed: selects node placement and link factors.
    pub seed: u64,
    /// When `false`, NIC serialization is disabled (every transfer sees a
    /// dedicated link) — the ablation showing end-point contention is what
    /// separates the tree schemes.
    pub nic_contention: bool,
    /// When `true` (Cray XC30-like), all ranks of a node additionally
    /// share one node-level NIC for inter-node traffic (with
    /// `node_bw_factor × bw_inter` aggregate bandwidth); intra-node
    /// messages bypass it (shared-memory copies). Per-rank injection is
    /// always serialized — an MPI rank issues its sends one at a time,
    /// which is what makes a flat-tree root a hot spot.
    pub nic_per_node: bool,
    /// Aggregate node NIC bandwidth as a multiple of the per-rank
    /// injection bandwidth `bw_inter`.
    pub node_bw_factor: f64,
    /// When `true`, tree-forwarding tasks occupy the compute core like any
    /// other task (MPI progress driven by application polling); when
    /// `false` they run on an asynchronous progress engine.
    pub forward_on_core: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            ranks_per_node: 24,
            flops_per_sec: 10e9,
            latency_intra: 8e-7,
            latency_inter: 2.5e-6,
            bw_intra: 8e9,
            bw_inter: 3e9,
            msg_overhead: 1.2e-6,
            cpu_per_msg: 1.5e-6,
            task_overhead: 2e-7,
            jitter: 0.35,
            seed: 0,
            nic_contention: true,
            nic_per_node: true,
            node_bw_factor: 4.0,
            forward_on_core: true,
        }
    }
}

/// Resolved per-run topology: rank→physical-node placement plus link
/// factor hashing.
#[derive(Clone, Debug)]
pub struct Topology {
    cfg: MachineConfig,
    /// Physical node of each rank.
    node_of_rank: Vec<u32>,
}

impl Topology {
    /// Builds the topology for `nranks` ranks: ranks fill logical nodes
    /// consecutively; logical nodes are then mapped to physical nodes by a
    /// seeded random permutation (per-run placement).
    pub fn new(nranks: usize, cfg: MachineConfig) -> Self {
        let nodes = nranks.div_ceil(cfg.ranks_per_node);
        // Seeded Fisher–Yates over node ids.
        let mut phys: Vec<u32> = (0..nodes as u32).collect();
        let mut state = splitmix64(cfg.seed ^ 0x70b0);
        for i in (1..nodes).rev() {
            state = splitmix64(state);
            let j = (state % (i as u64 + 1)) as usize;
            phys.swap(i, j);
        }
        let node_of_rank = (0..nranks).map(|r| phys[r / cfg.ranks_per_node]).collect();
        Self { cfg, node_of_rank }
    }

    /// Physical node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> u32 {
        self.node_of_rank[rank]
    }

    /// `true` when both ranks share a node.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of_rank[a] == self.node_of_rank[b]
    }

    /// Random multiplicative cost factor (≥ 1) of the link between two
    /// physical nodes: distant/congested node pairs are slower. Drawn by
    /// hashing `(seed, node pair)` so it is stable within a run and
    /// re-drawn across runs.
    fn pair_factor(&self, a: u32, b: u32) -> f64 {
        if self.cfg.jitter == 0.0 {
            return 1.0;
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let h = hash2(self.cfg.seed ^ 0x11f0, ((lo as u64) << 32) | hi as u64);
        // uniform in [1, 1 + 2*jitter]
        1.0 + 2.0 * self.cfg.jitter * (h as f64 / u64::MAX as f64)
    }

    /// Latency of a message between two ranks (seconds).
    pub fn latency(&self, src: usize, dst: usize) -> f64 {
        if self.same_node(src, dst) {
            self.cfg.latency_intra
        } else {
            self.cfg.latency_inter * self.pair_factor(self.node_of(src), self.node_of(dst))
        }
    }

    /// Seconds of NIC occupancy to move `bytes` between two ranks.
    pub fn transfer_time(&self, src: usize, dst: usize, bytes: u64) -> f64 {
        let t = if self.same_node(src, dst) {
            bytes as f64 / self.cfg.bw_intra
        } else {
            bytes as f64 / self.cfg.bw_inter
                * self.pair_factor(self.node_of(src), self.node_of(dst))
        };
        t + self.cfg.msg_overhead
    }

    /// The configuration this topology was built from.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The random link-cost factor between the nodes of two ranks (1.0
    /// within a node). Applied to node-NIC occupancy as well, so the
    /// per-run inhomogeneity reaches the binding resource.
    pub fn pair_cost_factor(&self, src: usize, dst: usize) -> f64 {
        if self.same_node(src, dst) {
            1.0
        } else {
            self.pair_factor(self.node_of(src), self.node_of(dst))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_pack_onto_nodes() {
        let cfg = MachineConfig { ranks_per_node: 4, jitter: 0.0, ..Default::default() };
        let t = Topology::new(10, cfg);
        assert!(t.same_node(0, 3));
        assert!(!t.same_node(3, 4));
        assert!(t.same_node(8, 9));
    }

    #[test]
    fn intra_node_is_cheaper() {
        let cfg = MachineConfig { ranks_per_node: 4, ..Default::default() };
        let t = Topology::new(8, cfg);
        assert!(t.latency(0, 1) < t.latency(0, 5));
        assert!(t.transfer_time(0, 1, 1 << 20) < t.transfer_time(0, 5, 1 << 20));
    }

    #[test]
    fn placement_varies_with_seed() {
        let mk = |seed| {
            Topology::new(96, MachineConfig { seed, ranks_per_node: 24, ..Default::default() })
        };
        let a = mk(1);
        let b = mk(2);
        let nodes_a: Vec<u32> = (0..96).map(|r| a.node_of(r)).collect();
        let nodes_b: Vec<u32> = (0..96).map(|r| b.node_of(r)).collect();
        assert_ne!(nodes_a, nodes_b, "placements should differ across seeds");
        // but each run is internally deterministic
        let a2 = mk(1);
        assert_eq!(nodes_a, (0..96).map(|r| a2.node_of(r)).collect::<Vec<_>>());
    }

    #[test]
    fn jitter_spreads_link_costs() {
        let cfg = MachineConfig { ranks_per_node: 1, jitter: 0.4, ..Default::default() };
        let t = Topology::new(40, cfg);
        let costs: Vec<f64> = (1..40).map(|d| t.transfer_time(0, d, 1 << 20)).collect();
        let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = costs.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 1.2, "jitter should spread link costs: {min} vs {max}");
    }

    #[test]
    fn zero_jitter_is_homogeneous() {
        let cfg = MachineConfig { ranks_per_node: 1, jitter: 0.0, ..Default::default() };
        let t = Topology::new(10, cfg);
        let c1 = t.transfer_time(0, 5, 4096);
        let c2 = t.transfer_time(3, 9, 4096);
        assert_eq!(c1, c2);
    }
}
