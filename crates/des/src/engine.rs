//! The event-driven execution engine.

use crate::machine::{MachineConfig, Topology};
use pselinv_chaos::FaultPlan;
use pselinv_dist::taskgraph::{TaskGraph, TaskId, TaskKind};
use pselinv_trace::{collect, unpack_task_tag, RankTracer, Trace};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of one simulated run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Wall-clock makespan (seconds).
    pub makespan: f64,
    /// Per-rank time spent executing compute-kind tasks.
    pub compute_busy: Vec<f64>,
    /// Per-rank count of executed tasks.
    pub tasks_run: Vec<u64>,
    /// Total messages transferred.
    pub messages: u64,
    /// Total bytes transferred.
    pub bytes: u64,
}

impl SimResult {
    /// Mean per-rank compute time.
    pub fn compute_time_mean(&self) -> f64 {
        self.compute_busy.iter().sum::<f64>() / self.compute_busy.len() as f64
    }

    /// Mean per-rank "communication" time: makespan minus compute busy
    /// time (transfer + wait), the quantity Fig. 9 stacks against
    /// computation.
    pub fn comm_time_mean(&self) -> f64 {
        self.makespan - self.compute_time_mean()
    }

    /// Communication-to-computation ratio (paper §IV-B quotes 11.8 → 1.9
    /// at P = 4,096 for Flat vs Shifted).
    pub fn comm_to_comp(&self) -> f64 {
        self.comm_time_mean() / self.compute_time_mean().max(1e-30)
    }
}

/// The event that determined a task's start time in the simulated
/// schedule, recorded by [`simulate_profiled`]. Walking these backward
/// from the makespan-defining task yields the schedule's critical path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CritPred {
    /// The task was ready at time 0 (no binding predecessor).
    None,
    /// A zero-byte dependency edge from this task satisfied the last
    /// dependency.
    Dep(TaskId),
    /// A message from `src_task` satisfied the last dependency; it was
    /// injected at `sent_us` and fully delivered at `deliver_us`.
    Msg { src_task: TaskId, sent_us: u64, deliver_us: u64 },
    /// The task was ready earlier, but its rank's core was still occupied
    /// by this previously-dispatched task (or its send stalls).
    RankPrev(TaskId),
}

/// Schedule profile of one simulated run: per-task timestamps plus the
/// binding predecessor of every task. Produced by [`simulate_profiled`]
/// and consumed by the critical-path extractor in `pselinv-profile`.
#[derive(Clone, Debug, Default)]
pub struct SimProfile {
    /// Task start times (µs, simulated clock).
    pub task_start_us: Vec<u64>,
    /// Task end times (µs).
    pub task_end_us: Vec<u64>,
    /// Time each task's final dependency was satisfied (µs).
    pub task_ready_us: Vec<u64>,
    /// Binding predecessor of each task (see [`CritPred`]).
    pub pred: Vec<CritPred>,
}

impl SimProfile {
    fn new(n: usize) -> Self {
        Self {
            task_start_us: vec![0; n],
            task_end_us: vec![0; n],
            task_ready_us: vec![0; n],
            pred: vec![CritPred::None; n],
        }
    }

    /// End time (µs) of the last task executed on each of `nranks` ranks
    /// (0 for ranks that ran nothing).
    pub fn rank_end_us(&self, graph: &TaskGraph) -> Vec<u64> {
        let mut end = vec![0u64; graph.nranks];
        for (t, &e) in self.task_end_us.iter().enumerate() {
            let r = graph.task_rank[t] as usize;
            end[r] = end[r].max(e);
        }
        end
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Event {
    /// A task's final dependency was satisfied at this time.
    Ready(TaskId),
    /// A task finishes executing at this time.
    TaskDone(TaskId),
    /// A message reaches the destination rank's receive NIC at this time.
    Arrive {
        /// Destination task whose dependency the message satisfies.
        dst_task: TaskId,
        /// Task whose completion produced the message (for critical-path
        /// attribution).
        src_task: TaskId,
        /// Source rank (for transfer-time lookup).
        src_rank: u32,
        /// Message size.
        bytes: u64,
        /// Injection time at the source (for transfer/wait accounting).
        sent: f64,
        /// Sender's Lamport clock at the send (0 when untraced).
        clock: u64,
        /// Sender's monotonic send index (0 when untraced).
        idx: u64,
    },
}

#[derive(Clone, Copy, Debug)]
struct Timed {
    time: f64,
    seq: u64, // tie-breaker for determinism
    ev: Event,
}

impl PartialEq for Timed {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Timed {}
impl PartialOrd for Timed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timed {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed for a min-heap over (time, seq)
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Per-rank ready queue ordered by (priority, task id).
#[derive(Default)]
struct ReadyQueue(BinaryHeap<std::cmp::Reverse<(i64, TaskId)>>);

impl ReadyQueue {
    fn push(&mut self, prio: i64, t: TaskId) {
        self.0.push(std::cmp::Reverse((prio, t)));
    }

    fn pop(&mut self) -> Option<TaskId> {
        self.0.pop().map(|std::cmp::Reverse((_, t))| t)
    }
}

/// Outcome of a simulation under a fault plan: the usual metrics plus how
/// much of the task graph actually completed. A rank that goes down
/// freezes the entire dependency cone behind it, so `completed < total`
/// quantifies the blast radius of a failure in a given tree topology.
#[derive(Clone, Debug)]
pub struct FaultSimResult {
    /// Metrics over the tasks that did run (makespan is the time the last
    /// surviving task finished).
    pub result: SimResult,
    /// Number of tasks that completed.
    pub completed: usize,
    /// Total tasks in the graph.
    pub total: usize,
}

impl FaultSimResult {
    /// Fraction of the task graph that completed.
    pub fn completed_frac(&self) -> f64 {
        self.completed as f64 / self.total.max(1) as f64
    }

    /// Whether every task ran (always true under a crash-free plan).
    pub fn is_complete(&self) -> bool {
        self.completed == self.total
    }
}

/// Simulates the execution of `graph` on a machine described by `cfg`.
pub fn simulate(graph: &TaskGraph, cfg: MachineConfig) -> SimResult {
    simulate_impl(graph, cfg, &mut [], None, None).0
}

/// [`simulate`] under a deterministic fault plan.
///
/// Fault semantics in simulated time:
///
/// * `slowdown` multiplies every task duration on the affected rank — a
///   straggler node;
/// * `delay_us`/`jitter_us` add seed-deterministic in-flight time to every
///   message leaving the affected rank;
/// * `stall_at_s`/`crash_at_s` take the rank down at that simulated time:
///   it dispatches no further tasks, emits no further messages (tasks
///   already executing still finish, like an MPI process whose pending
///   DMA drains), and messages arriving at it are dropped.
///
/// The run never asserts on an incomplete graph — a crashed rank freezes
/// its dependency cone and the remainder is reported via
/// [`FaultSimResult::completed`].
pub fn simulate_with_faults(
    graph: &TaskGraph,
    cfg: MachineConfig,
    plan: &FaultPlan,
) -> FaultSimResult {
    let (result, completed) = simulate_impl(graph, cfg, &mut [], None, Some(plan));
    FaultSimResult { result, completed, total: graph.num_tasks() }
}

/// Like [`simulate`], but also records a [`Trace`] in simulated time: one
/// span per executed task (labelled by the `(CollKind, supernode)` packed
/// into [`TaskGraph::task_tag`]) plus send/arrive instants for every
/// message edge — the same event vocabulary the traced mpisim runtime
/// emits, so both backends can be viewed with the same tooling. Blocked
/// time is stamped with the shared wait-state vocabulary: core-idle gaps
/// before a task become late-sender wait spans of that task's kind, and
/// the simulated in-flight time of every consumed message becomes
/// transfer time of the destination task's kind.
pub fn simulate_traced(graph: &TaskGraph, cfg: MachineConfig, label: &str) -> (SimResult, Trace) {
    simulate_traced_with_meta(graph, cfg, label, &[])
}

/// [`simulate_traced`] with caller-supplied run metadata (scheme, grid,
/// seed, …) attached to the trace, so exported reports are
/// self-describing. The engine always records `backend`, `ranks`, `tasks`
/// and `machine_seed` itself.
pub fn simulate_traced_with_meta(
    graph: &TaskGraph,
    cfg: MachineConfig,
    label: &str,
    meta: &[(&str, String)],
) -> (SimResult, Trace) {
    let mut tracers: Vec<RankTracer> = (0..graph.nranks).map(RankTracer::manual).collect();
    let (res, _) = simulate_impl(graph, cfg, &mut tracers, None, None);
    let trace = collect(label, tracers).expect("traced simulation has at least one rank");
    (res, attach_run_meta(trace, graph, &cfg, meta))
}

/// Like [`simulate_traced_with_meta`], but additionally records the
/// schedule profile ([`SimProfile`]) needed for critical-path extraction.
pub fn simulate_profiled(
    graph: &TaskGraph,
    cfg: MachineConfig,
    label: &str,
    meta: &[(&str, String)],
) -> (SimResult, Trace, SimProfile) {
    let mut tracers: Vec<RankTracer> = (0..graph.nranks).map(RankTracer::manual).collect();
    let mut profile = SimProfile::new(graph.num_tasks());
    let (res, _) = simulate_impl(graph, cfg, &mut tracers, Some(&mut profile), None);
    let trace = collect(label, tracers).expect("traced simulation has at least one rank");
    (res, attach_run_meta(trace, graph, &cfg, meta), profile)
}

fn attach_run_meta(
    mut trace: Trace,
    graph: &TaskGraph,
    cfg: &MachineConfig,
    meta: &[(&str, String)],
) -> Trace {
    trace.set_meta("backend", "des");
    trace.set_meta("ranks", graph.nranks.to_string());
    trace.set_meta("tasks", graph.num_tasks().to_string());
    trace.set_meta("machine_seed", cfg.seed.to_string());
    for (k, v) in meta {
        trace.set_meta(*k, v.clone());
    }
    trace
}

/// Simulated seconds → trace microseconds. All trace/profile timestamps
/// go through this single conversion so span, wait and profile boundary
/// values computed from the same `f64` instant are bit-identical, which
/// is what makes the per-rank accounting identity exact.
fn us(t: f64) -> u64 {
    (t * 1e6) as u64
}

fn simulate_impl(
    graph: &TaskGraph,
    cfg: MachineConfig,
    tracers: &mut [RankTracer],
    mut profile: Option<&mut SimProfile>,
    plan: Option<&FaultPlan>,
) -> (SimResult, usize) {
    let n = graph.num_tasks();
    let p = graph.nranks;
    let topo = Topology::new(p, cfg);

    let mut deps: Vec<u32> = graph.task_deps.clone();
    let mut ready: Vec<ReadyQueue> = (0..p).map(|_| ReadyQueue::default()).collect();
    let mut rank_busy_until = vec![0.0f64; p];
    let mut rank_running: Vec<bool> = vec![false; p];
    // Two-level NIC model: every rank injects its sends serially (an MPI
    // rank issues sends one at a time — this is what makes a flat-tree
    // root a hot spot), and optionally all ranks of a node share one
    // aggregate node NIC for inter-node traffic.
    let nodes = p.div_ceil(cfg.ranks_per_node);
    let node_of = |rank: usize| -> usize { rank / cfg.ranks_per_node };
    let node_bw = cfg.bw_inter * cfg.node_bw_factor;
    let mut rank_send_free = vec![0.0f64; p];
    let mut rank_recv_free = vec![0.0f64; p];
    let mut node_send_free = vec![0.0f64; nodes];
    let mut node_recv_free = vec![0.0f64; nodes];
    let mut compute_busy = vec![0.0f64; p];
    let mut tasks_run = vec![0u64; p];
    let mut messages = 0u64;
    let mut bytes_total = 0u64;

    let mut heap: BinaryHeap<Timed> = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |heap: &mut BinaryHeap<Timed>, time: f64, ev: Event, seq: &mut u64| {
        heap.push(Timed { time, seq: *seq, ev });
        *seq += 1;
    };

    for t in 0..n as u32 {
        if deps[t as usize] == 0 {
            push(&mut heap, 0.0, Event::Ready(t), &mut seq);
        }
    }

    let mut makespan = 0.0f64;
    let mut done = 0usize;

    let traced = !tracers.is_empty();
    // Simulated seconds → trace microseconds.

    // Critical-path bookkeeping: the time each task became ready (exact
    // simulated seconds, for the binding-predecessor decision) and the
    // last task dispatched on each rank's core.
    let mut ready_at = vec![0.0f64; n];
    let mut last_on_rank: Vec<Option<TaskId>> = vec![None; p];

    // Causal stamps, mirroring the mpisim runtime: a per-rank Lamport
    // clock (ticked at send, merged `max + 1` at the consuming receive)
    // and a per-rank monotonic send counter, so `(rank, idx)` names each
    // simulated message. `cause[t]` remembers which message satisfied
    // task `t`'s final dependency — the provenance a later wait span on
    // that task blames.
    let mut lamport = vec![0u64; p];
    let mut sendno = vec![0u64; p];
    let mut cause: Vec<Option<(usize, u64)>> = vec![None; n];

    // Dispatch the next ready task on `rank` if it is idle.
    macro_rules! dispatch {
        ($rank:expr, $now:expr) => {{
            let r = $rank;
            // A rank that is down dispatches nothing more; its ready queue
            // simply freezes (the cone behind it never completes).
            if !rank_running[r] && !plan.is_some_and(|p| p.down_at(r, $now)) {
                if let Some(t) = ready[r].pop() {
                    rank_running[r] = true;
                    // A straggler rank runs everything `slowdown`× slower.
                    let slow = plan.map_or(1.0, |p| p.slowdown(r).max(0.0));
                    let dur = (graph.task_flops[t as usize] / cfg.flops_per_sec
                        + cfg.task_overhead)
                        * slow;
                    // The core has been idle since `idle_from` (its last
                    // reservation): any gap before `start` is wait time
                    // attributed to this task's kind.
                    let idle_from = rank_busy_until[r];
                    let start = $now.max(idle_from);
                    let end = start + dur;
                    rank_busy_until[r] = end;
                    if graph.task_kind[t as usize] == TaskKind::Compute {
                        compute_busy[r] += dur;
                    }
                    tasks_run[r] += 1;
                    if traced {
                        let (coll, sn) = unpack_task_tag(graph.task_tag[t as usize]);
                        if us(start) > us(idle_from) {
                            tracers[r].wait_at(
                                coll,
                                sn as u64,
                                us(idle_from),
                                us(start),
                                cause[t as usize],
                            );
                        }
                        tracers[r].span_at(coll, sn as u64, us(start), us(end));
                    }
                    if let Some(prof) = profile.as_deref_mut() {
                        prof.task_start_us[t as usize] = us(start);
                        prof.task_end_us[t as usize] = us(end);
                        // If the rank's core (not the dependency) bound the
                        // start time, the binding predecessor is whatever
                        // the core was last running.
                        if idle_from > ready_at[t as usize] {
                            if let Some(prev) = last_on_rank[r] {
                                prof.pred[t as usize] = CritPred::RankPrev(prev);
                            }
                        }
                    }
                    last_on_rank[r] = Some(t);
                    push(&mut heap, end, Event::TaskDone(t), &mut seq);
                }
            }
        }};
    }

    // Forwarding tasks model the MPI progress engine: they relay a message
    // without occupying the compute core (the NIC occupancy of the relayed
    // message is still charged when their out-edges are processed).
    let is_forward = |t: TaskId| -> bool {
        !cfg.forward_on_core && graph.task_kind[t as usize] == TaskKind::Forward
    };

    while let Some(Timed { time, ev, .. }) = heap.pop() {
        match ev {
            Event::Ready(t) => {
                if plan.is_some_and(|p| p.down_at(graph.task_rank[t as usize] as usize, time)) {
                    // The task's rank is down: it never executes.
                    continue;
                }
                if is_forward(t) {
                    // executes off-core, immediately
                    let r = graph.task_rank[t as usize] as usize;
                    tasks_run[r] += 1;
                    if traced {
                        let (coll, sn) = unpack_task_tag(graph.task_tag[t as usize]);
                        tracers[r].span_at(coll, sn as u64, us(time), us(time + cfg.task_overhead));
                    }
                    if let Some(prof) = profile.as_deref_mut() {
                        prof.task_start_us[t as usize] = us(time);
                        prof.task_end_us[t as usize] = us(time + cfg.task_overhead);
                    }
                    push(&mut heap, time + cfg.task_overhead, Event::TaskDone(t), &mut seq);
                } else {
                    let r = graph.task_rank[t as usize] as usize;
                    ready[r].push(graph.task_prio[t as usize], t);
                    dispatch!(r, time);
                }
            }
            Event::TaskDone(t) => {
                let r = graph.task_rank[t as usize] as usize;
                if !is_forward(t) {
                    rank_running[r] = false;
                }
                makespan = makespan.max(time);
                done += 1;
                if plan.is_some_and(|p| p.down_at(r, time)) {
                    // The rank went down while this task was executing: the
                    // task itself finishes (in-flight work drains) but its
                    // results never leave the node.
                    continue;
                }
                // CPU cost of issuing this task's sends: stalls the core
                // (flat-tree roots issue many sends back to back).
                if cfg.cpu_per_msg > 0.0 {
                    let nmsgs = graph.out_edges(t).filter(|&(_, b)| b > 0).count();
                    if nmsgs > 0 {
                        rank_busy_until[r] =
                            rank_busy_until[r].max(time) + cfg.cpu_per_msg * nmsgs as f64;
                    }
                }
                for (s, b) in graph.out_edges(t) {
                    if b == 0 {
                        // pure dependency (possibly cross-rank barrier edge)
                        deps[s as usize] -= 1;
                        if deps[s as usize] == 0 {
                            ready_at[s as usize] = time;
                            if let Some(prof) = profile.as_deref_mut() {
                                prof.task_ready_us[s as usize] = us(time);
                                prof.pred[s as usize] = CritPred::Dep(t);
                            }
                            push(&mut heap, time, Event::Ready(s), &mut seq);
                        }
                    } else {
                        let dst = graph.task_rank[s as usize] as usize;
                        messages += 1;
                        bytes_total += b;
                        let (mut clock, mut idx) = (0u64, 0u64);
                        if traced {
                            // The message is attributed to the phase of the
                            // task it feeds (the collective that routed it).
                            let (coll, _) = unpack_task_tag(graph.task_tag[s as usize]);
                            lamport[r] += 1;
                            clock = lamport[r];
                            idx = sendno[r];
                            sendno[r] += 1;
                            tracers[r].set_time_us(us(time));
                            tracers[r].msg_send_as(
                                coll,
                                dst,
                                graph.task_tag[s as usize] as u64,
                                b,
                                None,
                                clock,
                                idx,
                            );
                        }
                        let tt = topo.transfer_time(r, dst, b);
                        let arrive = if cfg.nic_contention {
                            // per-rank injection serialization
                            let st = time.max(rank_send_free[r]);
                            rank_send_free[r] = st + tt;
                            let injected = st + tt;
                            if cfg.nic_per_node && !topo.same_node(r, dst) {
                                // shared node NIC for inter-node traffic
                                let ntt = b as f64 / node_bw * topo.pair_cost_factor(r, dst);
                                let nn = node_of(r);
                                let ns = injected.max(node_send_free[nn]);
                                node_send_free[nn] = ns + ntt;
                                ns + ntt + topo.latency(r, dst)
                            } else {
                                injected + topo.latency(r, dst)
                            }
                        } else {
                            time + tt + topo.latency(r, dst)
                        };
                        // Seed-deterministic injected network delay: the
                        // global message counter doubles as the draw
                        // sequence number (event order is deterministic).
                        let arrive = arrive + plan.map_or(0.0, |p| p.delay_s(r, dst, messages));
                        // Injected loss: the send happened (its NIC/wire
                        // occupancy and volume accounting stand), but the
                        // arrival is never scheduled — the DES has no
                        // retransmitting transport, so the destination
                        // task's dependency cone is stranded, exactly the
                        // non-benign semantics `FaultSpec::is_benign`
                        // assigns to loss on a raw transport.
                        if plan.is_some_and(|p| p.drops(r, dst, messages)) {
                            continue;
                        }
                        push(
                            &mut heap,
                            arrive,
                            Event::Arrive {
                                dst_task: s,
                                src_task: t,
                                src_rank: r as u32,
                                bytes: b,
                                sent: time,
                                clock,
                                idx,
                            },
                            &mut seq,
                        );
                    }
                }
                dispatch!(r, time);
            }
            Event::Arrive { dst_task, src_task, src_rank, bytes, sent, clock, idx } => {
                let dst = graph.task_rank[dst_task as usize] as usize;
                if plan.is_some_and(|p| p.down_at(dst, time)) {
                    // Delivery to a dead rank: the message is lost and the
                    // destination task's dependency is never satisfied.
                    continue;
                }
                let deliver = if cfg.nic_contention {
                    let src = src_rank as usize;
                    let mut t = time;
                    if cfg.nic_per_node && !topo.same_node(src, dst) {
                        let ntt = bytes as f64 / node_bw * topo.pair_cost_factor(src, dst);
                        let nn = node_of(dst);
                        let d = t.max(node_recv_free[nn]) + ntt;
                        node_recv_free[nn] = d;
                        t = d;
                    }
                    // per-rank receive drain
                    let tt = topo.transfer_time(src, dst, bytes);
                    let d = t.max(rank_recv_free[dst]) + tt;
                    rank_recv_free[dst] = d;
                    d
                } else {
                    time
                };
                if traced {
                    let (coll, _) = unpack_task_tag(graph.task_tag[dst_task as usize]);
                    lamport[dst] = lamport[dst].max(clock) + 1;
                    tracers[dst].set_time_us(us(deliver));
                    tracers[dst].msg_recv_as(
                        coll,
                        src_rank as usize,
                        graph.task_tag[dst_task as usize] as u64,
                        bytes,
                        lamport[dst],
                        idx,
                    );
                    // Simulated in-flight time of the message, attributed
                    // to the kind of the task that consumes it.
                    tracers[dst].transfer_as(coll, us(deliver).saturating_sub(us(sent)));
                }
                deps[dst_task as usize] -= 1;
                if deps[dst_task as usize] == 0 {
                    ready_at[dst_task as usize] = deliver;
                    cause[dst_task as usize] = Some((src_rank as usize, idx));
                    if let Some(prof) = profile.as_deref_mut() {
                        prof.task_ready_us[dst_task as usize] = us(deliver);
                        prof.pred[dst_task as usize] =
                            CritPred::Msg { src_task, sent_us: us(sent), deliver_us: us(deliver) };
                    }
                    push(&mut heap, deliver, Event::Ready(dst_task), &mut seq);
                } else {
                    // ensure makespan accounting continues even if this was
                    // not the final dependency
                    makespan = makespan.max(deliver);
                }
            }
        }
    }

    if plan.is_none_or(FaultPlan::is_crash_free) {
        assert_eq!(done, n, "deadlock: {done}/{n} tasks completed");
    }
    (SimResult { makespan, compute_busy, tasks_run, messages, bytes: bytes_total }, done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pselinv_dist::taskgraph::{selinv_graph, GraphOptions};
    use pselinv_dist::Layout;
    use pselinv_mpisim::Grid2D;
    use pselinv_order::{analyze, AnalyzeOptions};
    use pselinv_sparse::gen;
    use pselinv_trees::TreeScheme;
    use std::sync::Arc;

    fn flat_cfg() -> MachineConfig {
        MachineConfig {
            ranks_per_node: 1,
            jitter: 0.0,
            msg_overhead: 0.0,
            task_overhead: 0.0,
            latency_intra: 0.0,
            latency_inter: 0.0,
            cpu_per_msg: 0.0,
            nic_per_node: false,
            ..Default::default()
        }
    }

    /// Hand-built graphs for engine unit tests.
    mod toy {
        use pselinv_dist::taskgraph::{TaskGraph, TaskKind};

        pub struct Builder {
            pub rank: Vec<u32>,
            pub flops: Vec<f64>,
            pub edges: Vec<(u32, u32, u64)>,
        }

        impl Builder {
            pub fn new() -> Self {
                Self { rank: Vec::new(), flops: Vec::new(), edges: Vec::new() }
            }

            pub fn task(&mut self, rank: usize, flops: f64) -> u32 {
                self.rank.push(rank as u32);
                self.flops.push(flops);
                (self.rank.len() - 1) as u32
            }

            pub fn edge(&mut self, a: u32, b: u32, bytes: u64) {
                self.edges.push((a, b, bytes));
            }

            pub fn build(self, nranks: usize) -> TaskGraph {
                let n = self.rank.len();
                let mut deps = vec![0u32; n];
                let mut counts = vec![0u32; n];
                for &(_, to, _) in &self.edges {
                    deps[to as usize] += 1;
                }
                for &(from, _, _) in &self.edges {
                    counts[from as usize] += 1;
                }
                let mut ptr = vec![0u32; n + 1];
                for i in 0..n {
                    ptr[i + 1] = ptr[i] + counts[i];
                }
                let mut heads = ptr[..n].to_vec();
                let mut succ = vec![0u32; self.edges.len()];
                let mut bytes = vec![0u64; self.edges.len()];
                for &(from, to, b) in &self.edges {
                    let s = heads[from as usize] as usize;
                    heads[from as usize] += 1;
                    succ[s] = to;
                    bytes[s] = b;
                }
                TaskGraph {
                    nranks,
                    task_prio: vec![0; n],
                    task_kind: vec![TaskKind::Compute; n],
                    task_tag: vec![
                        pselinv_trace::pack_task_tag(pselinv_trace::CollKind::Compute, 0);
                        n
                    ],
                    task_deps: deps,
                    task_rank: self.rank,
                    task_flops: self.flops,
                    succ_ptr: ptr,
                    succ,
                    succ_bytes: bytes,
                }
            }
        }
    }

    #[test]
    fn serial_tasks_sum_up() {
        let mut b = toy::Builder::new();
        let t1 = b.task(0, 10e9); // 1 s at 10 GF/s
        let t2 = b.task(0, 20e9); // 2 s
        b.edge(t1, t2, 0);
        let g = b.build(1);
        let r = simulate(&g, flat_cfg());
        assert!((r.makespan - 3.0).abs() < 1e-9, "makespan {}", r.makespan);
        assert!((r.compute_busy[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_tasks_overlap() {
        let mut b = toy::Builder::new();
        b.task(0, 10e9);
        b.task(1, 10e9);
        let g = b.build(2);
        let r = simulate(&g, flat_cfg());
        assert!((r.makespan - 1.0).abs() < 1e-9);
    }

    #[test]
    fn message_adds_transfer_time() {
        let mut b = toy::Builder::new();
        let t1 = b.task(0, 10e9);
        let t2 = b.task(1, 10e9);
        b.edge(t1, t2, 3_000_000_000); // 1 s on the wire at 3 GB/s, twice (send+recv NIC)
        let g = b.build(2);
        let r = simulate(&g, flat_cfg());
        // 1 s compute + 2 s transfer (store-and-forward send + recv) + 1 s compute
        assert!((r.makespan - 4.0).abs() < 1e-6, "makespan {}", r.makespan);
    }

    #[test]
    fn send_nic_serializes_fanout() {
        // Root sends to 8 children directly: last child can only start
        // after 8 serialized sends.
        let mut b = toy::Builder::new();
        let root = b.task(0, 0.0);
        for i in 1..=8 {
            let c = b.task(i, 0.0);
            b.edge(root, c, 3_000_000_000); // 1 s each on the send NIC
        }
        let g = b.build(9);
        let r = simulate(&g, flat_cfg());
        assert!(r.makespan >= 8.0, "fan-out not serialized: {}", r.makespan);
        // Without contention the same graph finishes in ~2 s.
        let mut cfg = flat_cfg();
        cfg.nic_contention = false;
        let r2 = simulate(&g, cfg);
        assert!(r2.makespan < 2.5, "no-contention run too slow: {}", r2.makespan);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let w = gen::grid_laplacian_2d(12, 12);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        let layout = Layout::new(sf, Grid2D::new(4, 4));
        let g = selinv_graph(&layout, &GraphOptions::default());
        let cfg = MachineConfig { seed: 5, ..Default::default() };
        let a = simulate(&g, cfg);
        let b = simulate(&g, cfg);
        assert_eq!(a.makespan, b.makespan);
        assert!(a.makespan > 0.0);
    }

    #[test]
    fn jitter_produces_run_to_run_variation() {
        let w = gen::grid_laplacian_2d(16, 16);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        let layout = Layout::new(sf, Grid2D::new(6, 6));
        let g = selinv_graph(&layout, &GraphOptions::default());
        let times: Vec<f64> = (0..5)
            .map(|s| {
                simulate(&g, MachineConfig { seed: s, ranks_per_node: 4, ..Default::default() })
                    .makespan
            })
            .collect();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        assert!(max > min, "expected run-to-run variation, got {times:?}");
    }

    #[test]
    fn all_selinv_tasks_complete_on_every_scheme() {
        let w = gen::grid_laplacian_2d(12, 10);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        let layout = Layout::new(sf, Grid2D::new(3, 4));
        for scheme in [TreeScheme::Flat, TreeScheme::Binary, TreeScheme::ShiftedBinary] {
            let g = selinv_graph(&layout, &GraphOptions { scheme, ..Default::default() });
            let r = simulate(&g, MachineConfig::default());
            assert_eq!(r.tasks_run.iter().sum::<u64>() as usize, g.num_tasks(), "{scheme:?}");
            assert_eq!(r.bytes, g.total_message_bytes());
        }
    }

    #[test]
    fn traced_sim_matches_untraced_and_volume_replay() {
        use pselinv_dist::volume::replay_volumes;
        use pselinv_trace::CollKind;
        use pselinv_trees::TreeBuilder;
        let w = gen::grid_laplacian_2d(12, 12);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        let layout = Layout::new(sf, Grid2D::new(3, 3));
        for scheme in [TreeScheme::Flat, TreeScheme::ShiftedBinary] {
            let opts = GraphOptions { scheme, ..Default::default() };
            let g = selinv_graph(&layout, &opts);
            let cfg = MachineConfig { seed: 3, ..Default::default() };
            let plain = simulate(&g, cfg);
            let (traced, trace) = simulate_traced(&g, cfg, "des/unit");
            // Tracing must not perturb the simulation.
            assert_eq!(plain.makespan, traced.makespan, "{scheme:?}");
            assert_eq!(plain.messages, traced.messages);
            // Every task became a span; every message edge a send event.
            let spans: u64 = trace
                .ranks
                .iter()
                .map(|r| CollKind::ALL.iter().map(|&k| r.metrics.kind(k).spans).sum::<u64>())
                .sum();
            assert_eq!(spans as usize, g.num_tasks(), "{scheme:?}");
            let sent: u64 = trace.ranks.iter().map(|r| r.metrics.total_sent_msgs()).sum();
            assert_eq!(sent, traced.messages);
            // Per-rank Col-Bcast bytes agree with the structural replay —
            // the same acceptance criterion the mpisim tracer meets.
            let rep = replay_volumes(&layout, TreeBuilder::new(opts.scheme, opts.seed));
            assert_eq!(trace.sent_bytes(CollKind::ColBcast), rep.col_bcast_sent, "{scheme:?}");
            assert_eq!(
                trace.recv_bytes(CollKind::RowReduce),
                rep.row_reduce_received,
                "{scheme:?}"
            );
        }
    }

    #[test]
    fn wait_spans_telescope_to_rank_end() {
        // On a deterministic machine (no jitter, cpu_per_msg = 0,
        // forward-on-core) every instant on a rank's timeline between 0
        // and its last task end is either inside a task span or inside a
        // wait span, so the two totals telescope exactly to the rank's
        // end time. This is the per-rank accounting identity from the
        // acceptance criteria: wait + transfer + compute covers the
        // traced time with nothing unexplained.
        let w = gen::grid_laplacian_2d(12, 12);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        let layout = Layout::new(sf, Grid2D::new(3, 3));
        for scheme in [TreeScheme::Flat, TreeScheme::ShiftedBinary] {
            let g = selinv_graph(&layout, &GraphOptions { scheme, ..Default::default() });
            let (res, trace, prof) = simulate_profiled(&g, flat_cfg(), "des/telescope", &[]);
            let rank_end = prof.rank_end_us(&g);
            for (i, r) in trace.ranks.iter().enumerate() {
                let accounted = r.metrics.total_span_time_us() + r.metrics.total_wait_us();
                assert_eq!(
                    accounted, rank_end[i],
                    "{scheme:?} rank {i}: span+wait {accounted} != end {}",
                    rank_end[i]
                );
            }
            let last = *rank_end.iter().max().unwrap();
            assert_eq!(last, super::us(res.makespan), "{scheme:?}");
        }
    }

    #[test]
    fn message_transfer_time_is_attributed() {
        // Same graph as message_adds_transfer_time: 1 s compute, 2 s on
        // the wire (send NIC + recv NIC store-and-forward), 1 s compute.
        // The receiver must book ~2 s of transfer and its blocked gap
        // (3 s: from t=0 to the delivery) as wait.
        let mut b = toy::Builder::new();
        let t1 = b.task(0, 10e9);
        let t2 = b.task(1, 10e9);
        b.edge(t1, t2, 3_000_000_000);
        let g = b.build(2);
        let (res, trace, prof) = simulate_profiled(&g, flat_cfg(), "des/xfer", &[]);
        assert!((res.makespan - 4.0).abs() < 1e-6);
        let rcv = &trace.ranks[1].metrics;
        let xfer = rcv.total_transfer_us();
        assert!((1_999_000..=2_001_000).contains(&xfer), "transfer_us {xfer}");
        let wait = rcv.total_wait_us();
        assert!((2_999_000..=3_001_000).contains(&wait), "wait_us {wait}");
        // The receiving task's binding predecessor is the message.
        match prof.pred[1] {
            CritPred::Msg { src_task, sent_us, deliver_us } => {
                assert_eq!(src_task, 0);
                assert!(deliver_us > sent_us);
                assert_eq!(deliver_us, prof.task_start_us[1]);
            }
            other => panic!("expected Msg predecessor, got {other:?}"),
        }
    }

    #[test]
    fn serial_chain_binds_through_rank_prev_or_dep() {
        // A serial chain on one rank: every task's predecessor chain must
        // walk back to task 0 at time 0 with no unexplained gaps.
        let mut b = toy::Builder::new();
        let t1 = b.task(0, 10e9);
        let t2 = b.task(0, 20e9);
        let t3 = b.task(0, 10e9);
        b.edge(t1, t2, 0);
        b.edge(t2, t3, 0);
        let g = b.build(1);
        let (res, _trace, prof) = simulate_profiled(&g, flat_cfg(), "des/chain", &[]);
        assert!((res.makespan - 4.0).abs() < 1e-9);
        assert_eq!(prof.pred[0], CritPred::None);
        for t in [1u32, 2] {
            match prof.pred[t as usize] {
                CritPred::Dep(p) | CritPred::RankPrev(p) => assert_eq!(p, t - 1),
                other => panic!("task {t}: unexpected predecessor {other:?}"),
            }
            // Back-to-back: each task starts exactly when the previous ends.
            assert_eq!(prof.task_start_us[t as usize], prof.task_end_us[t as usize - 1]);
        }
    }

    #[test]
    fn run_metadata_is_attached_to_des_traces() {
        let mut b = toy::Builder::new();
        b.task(0, 1e9);
        let g = b.build(1);
        let cfg = MachineConfig { seed: 42, ..flat_cfg() };
        let (_, trace) = simulate_traced_with_meta(
            &g,
            cfg,
            "des/meta",
            &[("scheme", "Shifted".to_string()), ("grid", "3x3".to_string())],
        );
        assert_eq!(trace.meta_str("backend"), Some("des"));
        assert_eq!(trace.meta_str("ranks"), Some("1"));
        assert_eq!(trace.meta_str("tasks"), Some("1"));
        assert_eq!(trace.meta_str("machine_seed"), Some("42"));
        assert_eq!(trace.meta_str("scheme"), Some("Shifted"));
        assert_eq!(trace.meta_str("grid"), Some("3x3"));
        assert!(trace.summary_table().contains("backend=des"));
    }

    #[test]
    fn crashed_rank_freezes_its_dependency_cone() {
        use pselinv_chaos::{FaultPlan, FaultSpec};
        // 0 --msg--> 1 --msg--> 2: rank 1 dies before its task can run, so
        // only the root task completes and rank 2 starves.
        let mut b = toy::Builder::new();
        let t0 = b.task(0, 10e9); // 1 s
        let t1 = b.task(1, 10e9);
        let t2 = b.task(2, 10e9);
        b.edge(t0, t1, 3_000_000_000);
        b.edge(t1, t2, 3_000_000_000);
        let g = b.build(3);
        let plan = FaultPlan::new(1)
            .with_rank(1, FaultSpec { crash_at_s: Some(0.5), ..FaultSpec::default() });
        let r = simulate_with_faults(&g, flat_cfg(), &plan);
        assert_eq!(r.completed, 1, "only the root task survives");
        assert_eq!(r.total, 3);
        assert!(!r.is_complete());
        assert!((r.completed_frac() - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.result.makespan - 1.0).abs() < 1e-9, "makespan {}", r.result.makespan);
    }

    #[test]
    fn injected_loss_strands_arrivals_deterministically() {
        use pselinv_chaos::{FaultPlan, FaultSpec};
        // 0 --msg--> 1 --msg--> 2 under certain loss: the root's message
        // never arrives, so exactly the root task completes. The DES has
        // no retransmitting transport — loss is lethal here by design.
        let mut b = toy::Builder::new();
        let t0 = b.task(0, 10e9);
        let t1 = b.task(1, 10e9);
        let t2 = b.task(2, 10e9);
        b.edge(t0, t1, 3_000_000_000);
        b.edge(t1, t2, 3_000_000_000);
        let g = b.build(3);
        let plan = FaultPlan::new(7)
            .with_default(FaultSpec { drop_permille: 1000, ..FaultSpec::default() });
        let r = simulate_with_faults(&g, flat_cfg(), &plan);
        assert_eq!(r.completed, 1, "only the root task survives total loss");
        assert!(!r.is_complete());
        // The send itself still happened: volume accounting is unchanged.
        assert_eq!(r.result.messages, 1);
        assert_eq!(r.result.bytes, 3_000_000_000);

        // Partial loss on a real graph strands a deterministic subset:
        // same plan, same casualty list, bit-identical result.
        let w = gen::grid_laplacian_2d(10, 10);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        let layout = Layout::new(sf, Grid2D::new(2, 2));
        let g = selinv_graph(&layout, &GraphOptions::default());
        let cfg = MachineConfig { seed: 5, ..Default::default() };
        let plan = || {
            FaultPlan::new(0xd70)
                .with_default(FaultSpec { drop_permille: 300, ..FaultSpec::default() })
        };
        let a = simulate_with_faults(&g, cfg, &plan());
        let b = simulate_with_faults(&g, cfg, &plan());
        assert!(a.completed < a.total, "300‰ loss must strand part of the graph");
        assert_eq!(a.completed, b.completed, "loss schedule is a pure function of the plan");
        assert_eq!(a.result.makespan, b.result.makespan);
    }

    #[test]
    fn straggler_slowdown_and_injected_delay_stretch_makespan() {
        use pselinv_chaos::{FaultPlan, FaultSpec};
        // Serial 1 s + 2 s chain on rank 0: a 2x straggler doubles it.
        let mut b = toy::Builder::new();
        let t1 = b.task(0, 10e9);
        let t2 = b.task(0, 20e9);
        b.edge(t1, t2, 0);
        let g = b.build(1);
        let plan =
            FaultPlan::new(0).with_rank(0, FaultSpec { slowdown: 2.0, ..FaultSpec::default() });
        let r = simulate_with_faults(&g, flat_cfg(), &plan);
        assert!(r.is_complete());
        assert!((r.result.makespan - 6.0).abs() < 1e-9, "makespan {}", r.result.makespan);

        // 1 s compute + 2 s wire + 1 s compute, plus 0.5 s injected delay.
        let mut b = toy::Builder::new();
        let t1 = b.task(0, 10e9);
        let t2 = b.task(1, 10e9);
        b.edge(t1, t2, 3_000_000_000);
        let g = b.build(2);
        let plan =
            FaultPlan::new(0).with_default(FaultSpec { delay_us: 500_000, ..FaultSpec::default() });
        let r = simulate_with_faults(&g, flat_cfg(), &plan);
        assert!(r.is_complete());
        assert!((r.result.makespan - 4.5).abs() < 1e-6, "makespan {}", r.result.makespan);
    }

    #[test]
    fn faulty_runs_are_deterministic_and_benign_plans_complete() {
        use pselinv_chaos::{FaultPlan, FaultSpec};
        let w = gen::grid_laplacian_2d(12, 12);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        let layout = Layout::new(sf, Grid2D::new(4, 4));
        let g = selinv_graph(&layout, &GraphOptions::default());
        let cfg = MachineConfig { seed: 5, ..Default::default() };
        let plan = || {
            FaultPlan::new(0xfa17).with_default(FaultSpec {
                delay_us: 20,
                jitter_us: 80,
                slowdown: 1.3,
                ..FaultSpec::default()
            })
        };
        let clean = simulate(&g, cfg);
        let a = simulate_with_faults(&g, cfg, &plan());
        let b = simulate_with_faults(&g, cfg, &plan());
        assert!(a.is_complete(), "a benign plan must complete the graph");
        assert_eq!(a.result.makespan, b.result.makespan, "same plan, same schedule");
        assert_eq!(a.completed, b.completed);
        assert!(
            a.result.makespan > clean.makespan,
            "injected delay + slowdown must not speed the run up: {} vs {}",
            a.result.makespan,
            clean.makespan
        );
        // A crash, by contrast, must strand part of the graph.
        let crashed = simulate_with_faults(
            &g,
            cfg,
            &FaultPlan::new(1)
                .with_rank(3, FaultSpec { crash_at_s: Some(0.0), ..FaultSpec::default() }),
        );
        assert!(crashed.completed < crashed.total, "rank 3 owns tasks in every sweep");
    }

    #[test]
    fn compute_time_independent_of_scheme() {
        // Tree routing must not change the arithmetic performed.
        let w = gen::grid_laplacian_2d(14, 12);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        let layout = Layout::new(sf, Grid2D::new(4, 4));
        let comp = |scheme| {
            let g = selinv_graph(&layout, &GraphOptions { scheme, ..Default::default() });
            simulate(&g, MachineConfig::default()).compute_time_mean()
        };
        let a = comp(TreeScheme::Flat);
        let b = comp(TreeScheme::ShiftedBinary);
        assert!((a - b).abs() / a < 0.05, "{a} vs {b}");
    }
}
