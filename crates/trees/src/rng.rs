//! Tiny deterministic hashing RNG for per-collective randomness.
//!
//! The shift position of a `ShiftedBinary` tree must be (a) random enough to
//! decorrelate concurrent collectives and (b) a pure function of
//! `(global seed, collective key)` so that every rank builds the *same*
//! tree without communicating — the paper's "seed communicated in a
//! preprocessing step". SplitMix64 over the pair gives exactly that.

/// One SplitMix64 step.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Hashes a `(seed, key)` pair into a pseudo-random u64.
#[inline]
pub fn hash2(seed: u64, key: u64) -> u64 {
    splitmix64(splitmix64(seed) ^ key.wrapping_mul(0xff51afd7ed558ccd))
}

/// A tiny stateful generator seeded from a pair, for the full-permutation
/// baseline (Fisher–Yates needs a stream of values).
#[derive(Clone, Debug)]
pub struct KeyedRng(u64);

impl KeyedRng {
    /// Creates a generator for `(seed, key)`.
    pub fn new(seed: u64, key: u64) -> Self {
        Self(hash2(seed, key))
    }

    /// Next pseudo-random u64.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = splitmix64(self.0);
        self.0
    }

    /// Uniform value in `0..n` (n > 0).
    pub fn next_below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash2(1, 2), hash2(1, 2));
        assert_ne!(hash2(1, 2), hash2(1, 3));
        assert_ne!(hash2(1, 2), hash2(2, 2));
    }

    #[test]
    fn keyed_rng_streams_differ() {
        let mut a = KeyedRng::new(7, 1);
        let mut b = KeyedRng::new(7, 2);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn next_below_in_range() {
        let mut r = KeyedRng::new(3, 9);
        for _ in 0..100 {
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    fn roughly_uniform_shift_positions() {
        // 1000 keys over 10 buckets: each bucket should see 50..200 hits.
        let mut counts = [0usize; 10];
        for key in 0..1000u64 {
            counts[(hash2(42, key) % 10) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((50..=200).contains(&c), "bucket {i} has {c} hits");
        }
    }
}
