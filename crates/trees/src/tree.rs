//! The materialized communication tree.

/// A rooted communication tree over an arbitrary set of participant ranks.
///
/// For a broadcast, data flows root → children; for a reduction the same
/// topology is used with data flowing children → root (each interior node
/// combines its children's contributions with its own before forwarding).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CollectiveTree {
    root: usize,
    /// Participant ranks; `members[0] == root`.
    members: Vec<usize>,
    /// Parent of `members[i]` as an index into `members`
    /// (`usize::MAX` for the root).
    parent: Vec<usize>,
    /// Children of `members[i]` as indices into `members`.
    children: Vec<Vec<usize>>,
}

impl CollectiveTree {
    pub(crate) fn new(root: usize, members: Vec<usize>, parent: Vec<usize>) -> Self {
        debug_assert_eq!(members[0], root);
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); members.len()];
        for (i, &p) in parent.iter().enumerate() {
            if p != usize::MAX {
                children[p].push(i);
            }
        }
        Self { root, members, parent, children }
    }

    /// The root rank.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Number of participants (root included).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the tree has a single participant.
    pub fn is_empty(&self) -> bool {
        self.members.len() <= 1
    }

    /// All participant ranks (root first).
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Position of `rank` among the members, if it participates.
    fn index_of(&self, rank: usize) -> Option<usize> {
        self.members.iter().position(|&m| m == rank)
    }

    /// Children ranks of `rank` in the tree. Empty for leaves and for
    /// non-participants.
    pub fn children_of(&self, rank: usize) -> Vec<usize> {
        match self.index_of(rank) {
            Some(i) => self.children[i].iter().map(|&c| self.members[c]).collect(),
            None => Vec::new(),
        }
    }

    /// Parent rank of `rank`, or `None` for the root / non-participants.
    pub fn parent_of(&self, rank: usize) -> Option<usize> {
        let i = self.index_of(rank)?;
        let p = self.parent[i];
        (p != usize::MAX).then(|| self.members[p])
    }

    /// All `(sender, receiver)` edges in broadcast direction.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.members.len().saturating_sub(1));
        for (i, &p) in self.parent.iter().enumerate() {
            if p != usize::MAX {
                out.push((self.members[p], self.members[i]));
            }
        }
        out
    }

    /// Depth of `rank` below the root (root is 0), or `None` for
    /// non-participants.
    pub fn depth_of(&self, rank: usize) -> Option<usize> {
        let mut i = self.index_of(rank)?;
        let mut d = 0;
        while self.parent[i] != usize::MAX {
            i = self.parent[i];
            d += 1;
        }
        Some(d)
    }

    /// Height of the tree (edges on the longest root-leaf path).
    pub fn depth(&self) -> usize {
        fn go(t: &CollectiveTree, i: usize) -> usize {
            t.children[i].iter().map(|&c| 1 + go(t, c)).max().unwrap_or(0)
        }
        go(self, 0)
    }

    /// Number of children of each member, keyed by rank — the per-rank
    /// message count of a broadcast over this tree.
    pub fn out_degrees(&self) -> Vec<(usize, usize)> {
        self.members.iter().zip(&self.children).map(|(&m, c)| (m, c.len())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> CollectiveTree {
        // 5 -> 7 -> 9
        CollectiveTree::new(5, vec![5, 7, 9], vec![usize::MAX, 0, 1])
    }

    #[test]
    fn navigation() {
        let t = chain();
        assert_eq!(t.root(), 5);
        assert_eq!(t.children_of(5), vec![7]);
        assert_eq!(t.children_of(7), vec![9]);
        assert!(t.children_of(9).is_empty());
        assert_eq!(t.parent_of(9), Some(7));
        assert_eq!(t.parent_of(5), None);
        assert_eq!(t.parent_of(1234), None);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.depth_of(5), Some(0));
        assert_eq!(t.depth_of(7), Some(1));
        assert_eq!(t.depth_of(9), Some(2));
        assert_eq!(t.depth_of(1234), None);
        assert_eq!(t.edges(), vec![(5, 7), (7, 9)]);
    }

    #[test]
    fn singleton_tree() {
        let t = CollectiveTree::new(3, vec![3], vec![usize::MAX]);
        assert!(t.is_empty());
        assert_eq!(t.depth(), 0);
        assert!(t.edges().is_empty());
    }
}
