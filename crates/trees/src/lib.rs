//! Restricted-collective communication trees.
//!
//! The paper's central contribution: *restricted* collectives (broadcast /
//! reduction over an irregular subset of a process group) implemented as
//! asynchronous point-to-point messages routed along a per-collective tree.
//! Three routings are compared in the paper, plus two baselines studied in
//! its discussion:
//!
//! * [`TreeScheme::Flat`] — the root exchanges a message with every other
//!   participant (PSelInv v0.7.3 behaviour, Fig. 3a);
//! * [`TreeScheme::Binary`] — a deterministic binary tree over the sorted
//!   participant list (Fig. 3b); log-depth, but the lowest-numbered ranks
//!   are always interior, creating striped hot spots when many collectives
//!   overlap;
//! * [`TreeScheme::ShiftedBinary`] — the paper's heuristic (Fig. 3c): apply
//!   a seeded random *circular shift* to the sorted receiver list before
//!   building the binary tree, decorrelating interior-node choices across
//!   concurrent collectives while preserving rank locality;
//! * [`TreeScheme::RandomPerm`] — full random permutation of the receivers;
//!   rejected by the paper because it destroys network locality and
//!   balances worse than the circular shift;
//! * [`TreeScheme::Hybrid`] — flat below a participant-count threshold,
//!   shifted binary above it (suggested in the paper's final remarks for
//!   intra-node collectives).
//!
//! Trees are built deterministically from a global seed and a per-collective
//! key, mirroring the paper's observation that the random seed can be fixed
//! in a preprocessing step so no extra synchronization is needed.

pub mod builder;
pub mod rng;
pub mod tree;
pub mod volume;

pub use builder::{TreeBuilder, TreeScheme};
pub use tree::CollectiveTree;
pub use volume::{bcast_sent_volume, reduce_received_volume, VolumeStats};
