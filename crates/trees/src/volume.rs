//! Per-rank communication volume accounting over a tree.
//!
//! The paper's Tables I/II and Figures 4–7 are statistics over exactly
//! these quantities: bytes *sent* by each rank during `Col-Bcast` and bytes
//! *received* by each rank during `Row-Reduce`.

use crate::tree::CollectiveTree;

/// Adds the bytes each rank sends when broadcasting a `msg_bytes` message
/// down `tree` into `sent[rank]`.
pub fn bcast_sent_volume(tree: &CollectiveTree, msg_bytes: u64, sent: &mut [u64]) {
    for (src, _dst) in tree.edges() {
        sent[src] += msg_bytes;
    }
}

/// Adds the bytes each rank receives when reducing a `msg_bytes`
/// contribution up `tree` into `received[rank]`: each interior node (and
/// the root) receives one message per child.
pub fn reduce_received_volume(tree: &CollectiveTree, msg_bytes: u64, received: &mut [u64]) {
    for (src, _dst) in tree.edges() {
        // reduction flows child→parent: the bcast edge (parent→child)
        // becomes a receive at the parent
        received[src] += msg_bytes;
    }
}

/// Summary statistics used by the paper's tables.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VolumeStats {
    /// Minimum per-rank volume.
    pub min: f64,
    /// Maximum per-rank volume.
    pub max: f64,
    /// Median per-rank volume.
    pub median: f64,
    /// Mean per-rank volume.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl VolumeStats {
    /// Computes stats over per-rank volumes (in the unit of the input).
    pub fn from_volumes(volumes: &[u64]) -> Self {
        assert!(!volumes.is_empty());
        let n = volumes.len() as f64;
        let mut sorted: Vec<u64> = volumes.to_vec();
        sorted.sort_unstable();
        let min = sorted[0] as f64;
        let max = *sorted.last().unwrap() as f64;
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2] as f64
        } else {
            (sorted[sorted.len() / 2 - 1] as f64 + sorted[sorted.len() / 2] as f64) / 2.0
        };
        let mean = volumes.iter().map(|&v| v as f64).sum::<f64>() / n;
        let var = volumes.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n;
        Self { min, max, median, mean, std_dev: var.sqrt() }
    }

    /// Rescales all fields (e.g. bytes → MB).
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            min: self.min * factor,
            max: self.max * factor,
            median: self.median * factor,
            mean: self.mean * factor,
            std_dev: self.std_dev * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{TreeBuilder, TreeScheme};

    #[test]
    fn flat_root_sends_everything() {
        let t = TreeBuilder::new(TreeScheme::Flat, 0).build(2, &[0, 1, 3, 4], 0);
        let mut sent = vec![0u64; 5];
        bcast_sent_volume(&t, 10, &mut sent);
        assert_eq!(sent, vec![0, 0, 40, 0, 0]);
    }

    #[test]
    fn binary_root_sends_at_most_two() {
        let recv: Vec<usize> = (1..64).collect();
        let t = TreeBuilder::new(TreeScheme::Binary, 0).build(0, &recv, 0);
        let mut sent = vec![0u64; 64];
        bcast_sent_volume(&t, 7, &mut sent);
        assert!(sent[0] <= 14);
        // conservation: total sent = (p-1) * msg
        assert_eq!(sent.iter().sum::<u64>(), 63 * 7);
    }

    #[test]
    fn reduce_mirrors_bcast() {
        let recv: Vec<usize> = (1..20).collect();
        let t = TreeBuilder::new(TreeScheme::ShiftedBinary, 5).build(0, &recv, 3);
        let mut sent = vec![0u64; 20];
        let mut recvd = vec![0u64; 20];
        bcast_sent_volume(&t, 3, &mut sent);
        reduce_received_volume(&t, 3, &mut recvd);
        assert_eq!(sent, recvd);
    }

    #[test]
    fn stats_basics() {
        let s = VolumeStats::from_volumes(&[1, 2, 3, 4, 100]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.median, 3.0);
        assert!((s.mean - 22.0).abs() < 1e-12);
        assert!(s.std_dev > 30.0);
        let sc = s.scaled(0.5);
        assert_eq!(sc.max, 50.0);
    }

    #[test]
    fn stats_even_length_median() {
        let s = VolumeStats::from_volumes(&[1, 3, 5, 7]);
        assert_eq!(s.median, 4.0);
    }
}
