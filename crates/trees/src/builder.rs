//! Tree construction for each scheme.

use crate::rng::{hash2, KeyedRng};
use crate::tree::CollectiveTree;

/// Routing scheme for a restricted collective (paper §III, Fig. 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TreeScheme {
    /// Root ↔ every participant directly (Fig. 3a; PSelInv v0.7.3).
    Flat,
    /// Binary tree over the sorted receiver list (Fig. 3b).
    Binary,
    /// Binary tree over a seeded random circular shift of the sorted
    /// receiver list (Fig. 3c; the paper's heuristic).
    ShiftedBinary,
    /// `k`-ary tree over the sorted receiver list — the arity ablation:
    /// higher arity trades tree depth for root fan-out, interpolating
    /// between [`TreeScheme::Binary`] (k = 2) and [`TreeScheme::Flat`]
    /// (k ≥ p̄).
    Kary {
        /// Children per interior node (≥ 2).
        arity: usize,
    },
    /// `k`-ary tree over a seeded random circular shift (the shifted
    /// heuristic applied at arbitrary arity).
    ShiftedKary {
        /// Children per interior node (≥ 2).
        arity: usize,
    },
    /// Binary tree over a full random permutation of the receivers — the
    /// baseline the paper rejects for destroying locality.
    RandomPerm,
    /// [`TreeScheme::Flat`] when the participant count (root included) is
    /// below `flat_threshold`, otherwise [`TreeScheme::ShiftedBinary`] —
    /// the hybrid suggested in the paper's closing discussion. The
    /// threshold counts *participants* (receivers plus the root), matching
    /// the crate-level description; a collective with
    /// `flat_threshold` participants is already routed through the tree.
    Hybrid {
        /// Participant count (root included) at which routing switches to
        /// the shifted binary tree; anything below it stays flat.
        flat_threshold: usize,
    },
}

impl std::fmt::Display for TreeScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeScheme::Flat => write!(f, "Flat-Tree"),
            TreeScheme::Binary => write!(f, "Binary-Tree"),
            TreeScheme::ShiftedBinary => write!(f, "Shifted Binary-Tree"),
            TreeScheme::Kary { arity } => write!(f, "{arity}-ary Tree"),
            TreeScheme::ShiftedKary { arity } => write!(f, "Shifted {arity}-ary Tree"),
            TreeScheme::RandomPerm => write!(f, "Random-Permutation Tree"),
            TreeScheme::Hybrid { flat_threshold } => write!(f, "Hybrid({flat_threshold})"),
        }
    }
}

/// Deterministic tree factory: the same `(scheme, seed)` pair builds the
/// same tree for the same collective `key` on every rank, with no
/// communication.
#[derive(Clone, Copy, Debug)]
pub struct TreeBuilder {
    /// Routing scheme.
    pub scheme: TreeScheme,
    /// Global seed (fixed in a preprocessing step).
    pub seed: u64,
}

impl TreeBuilder {
    /// Creates a builder.
    pub fn new(scheme: TreeScheme, seed: u64) -> Self {
        Self { scheme, seed }
    }

    /// Builds the tree for one collective.
    ///
    /// `root` is the data source (broadcast) or destination (reduction);
    /// `receivers` are the remaining participants in any order, without
    /// duplicates and without `root`; `key` identifies the collective
    /// (e.g. a hash of supernode and block indices) and selects the random
    /// shift.
    ///
    /// ```
    /// use pselinv_trees::{TreeBuilder, TreeScheme};
    ///
    /// // The paper's Fig. 3b example: participants P1..P6, root P4.
    /// let builder = TreeBuilder::new(TreeScheme::Binary, 0);
    /// let tree = builder.build(4, &[1, 2, 3, 5, 6], /* key */ 0);
    /// assert_eq!(tree.children_of(4), vec![1, 5]);
    /// assert_eq!(tree.children_of(1), vec![2, 3]);
    /// assert_eq!(tree.children_of(5), vec![6]);
    ///
    /// // Every rank derives the same tree locally — no communicator setup.
    /// assert_eq!(builder.build(4, &[1, 2, 3, 5, 6], 0), tree);
    /// ```
    pub fn build(&self, root: usize, receivers: &[usize], key: u64) -> CollectiveTree {
        assert!(!receivers.contains(&root), "root must not appear among receivers");
        let mut sorted: Vec<usize> = receivers.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), receivers.len(), "duplicate receiver ranks");

        let scheme = self.resolve_scheme(sorted.len() + 1);
        self.build_resolved(scheme, root, sorted, key)
    }

    /// Resolves [`TreeScheme::Hybrid`] to a concrete scheme for a
    /// collective with `participants` members (receivers plus root). The
    /// hybrid routes flat strictly below the threshold and through the
    /// shifted binary tree at or above it; every other scheme is already
    /// concrete. Exposed so degraded-tree rebuilds can pin the scheme at
    /// the *original* build size instead of re-resolving as survivors
    /// shrink.
    pub fn resolve_scheme(&self, participants: usize) -> TreeScheme {
        match self.scheme {
            TreeScheme::Hybrid { flat_threshold } => {
                if participants < flat_threshold {
                    TreeScheme::Flat
                } else {
                    TreeScheme::ShiftedBinary
                }
            }
            s => s,
        }
    }

    /// Builds with an already-resolved (non-hybrid) scheme over a sorted,
    /// deduplicated receiver list.
    fn build_resolved(
        &self,
        scheme: TreeScheme,
        root: usize,
        mut sorted: Vec<usize>,
        key: u64,
    ) -> CollectiveTree {
        match scheme {
            TreeScheme::Flat => Self::build_flat(root, &sorted),
            TreeScheme::Binary => Self::build_kary(root, &sorted, 2),
            TreeScheme::ShiftedBinary => {
                if !sorted.is_empty() {
                    let shift = (hash2(self.seed, key) % sorted.len() as u64) as usize;
                    sorted.rotate_left(shift);
                }
                Self::build_kary(root, &sorted, 2)
            }
            TreeScheme::Kary { arity } => {
                assert!(arity >= 2, "k-ary trees need arity >= 2");
                Self::build_kary(root, &sorted, arity)
            }
            TreeScheme::ShiftedKary { arity } => {
                assert!(arity >= 2, "k-ary trees need arity >= 2");
                if !sorted.is_empty() {
                    let shift = (hash2(self.seed, key) % sorted.len() as u64) as usize;
                    sorted.rotate_left(shift);
                }
                Self::build_kary(root, &sorted, arity)
            }
            TreeScheme::RandomPerm => {
                let mut rng = KeyedRng::new(self.seed, key);
                // Fisher–Yates shuffle.
                for i in (1..sorted.len()).rev() {
                    sorted.swap(i, rng.next_below(i + 1));
                }
                Self::build_kary(root, &sorted, 2)
            }
            TreeScheme::Hybrid { .. } => unreachable!("resolve_scheme returns concrete schemes"),
        }
    }

    /// Rebuilds `tree` without the `dead` ranks: the surviving members are
    /// re-routed with this builder's scheme under the same `key`, so every
    /// survivor derives the identical degraded tree locally once the fault
    /// set is known. If the root itself died, the lowest surviving member
    /// is promoted to root (a reduction's final value then lands there).
    ///
    /// A [`TreeScheme::Hybrid`] is resolved at the tree's *original*
    /// participant count, not the survivor count: a recovery must never
    /// silently switch routing scheme (and with it the hop-accounted
    /// volumes) just because the survivors crossed the flat threshold.
    ///
    /// Panics if no member survives.
    pub fn rebuild_excluding(
        &self,
        tree: &CollectiveTree,
        dead: &[usize],
        key: u64,
    ) -> CollectiveTree {
        let survivors: Vec<usize> =
            tree.members().iter().copied().filter(|m| !dead.contains(m)).collect();
        assert!(!survivors.is_empty(), "no surviving member to rebuild around");
        let root = if dead.contains(&tree.root()) {
            *survivors.iter().min().expect("non-empty survivors")
        } else {
            tree.root()
        };
        let scheme = self.resolve_scheme(tree.len());
        let mut receivers: Vec<usize> = survivors.into_iter().filter(|&m| m != root).collect();
        receivers.sort_unstable();
        self.build_resolved(scheme, root, receivers, key)
    }

    fn build_flat(root: usize, receivers: &[usize]) -> CollectiveTree {
        let mut members = Vec::with_capacity(receivers.len() + 1);
        members.push(root);
        members.extend_from_slice(receivers);
        let mut parent = vec![0usize; members.len()];
        parent[0] = usize::MAX;
        CollectiveTree::new(root, members, parent)
    }

    /// `k`-ary tree per the paper's construction (binary for k = 2):
    /// repeatedly split the ordered receiver list into `k` near-equal
    /// chunks; the first rank of each chunk becomes a child of the current
    /// node and recursively owns the rest of its chunk.
    fn build_kary(root: usize, receivers: &[usize], arity: usize) -> CollectiveTree {
        let mut members = Vec::with_capacity(receivers.len() + 1);
        members.push(root);
        members.extend_from_slice(receivers);
        let mut parent = vec![usize::MAX; members.len()];

        // Receiver i (0-based) is member i+1.
        fn attach(parent: &mut [usize], node_member: usize, lo: usize, hi: usize, k: usize) {
            // receivers[lo..hi] still need a parent
            if lo >= hi {
                return;
            }
            let len = hi - lo;
            let chunk = len.div_ceil(k);
            let mut start = lo;
            while start < hi {
                let end = (start + chunk).min(hi);
                parent[start + 1] = node_member;
                attach(parent, start + 1, start + 1, end, k);
                start = end;
            }
        }
        attach(&mut parent, 0, 0, receivers.len(), arity);
        CollectiveTree::new(root, members, parent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_valid(t: &CollectiveTree) {
        // Every non-root member reachable from the root exactly once.
        let mut seen = vec![t.root()];
        let mut stack = vec![t.root()];
        while let Some(r) = stack.pop() {
            for c in t.children_of(r) {
                assert!(!seen.contains(&c), "rank {c} reached twice");
                seen.push(c);
                stack.push(c);
            }
        }
        assert_eq!(seen.len(), t.len(), "not all members reachable");
        for &m in t.members() {
            if m != t.root() {
                assert!(t.parent_of(m).is_some());
            }
        }
    }

    #[test]
    fn paper_figure3_binary_example() {
        // Participants P1..P6, root P4 → root sends to P1 and P5;
        // P1 → {P2, P3}; P5 → {P6}. (Paper Fig. 3b.)
        let b = TreeBuilder::new(TreeScheme::Binary, 0);
        let t = b.build(4, &[1, 2, 3, 5, 6], 0);
        check_valid(&t);
        assert_eq!(t.children_of(4), vec![1, 5]);
        assert_eq!(t.children_of(1), vec![2, 3]);
        assert_eq!(t.children_of(5), vec![6]);
        assert!(t.children_of(6).is_empty());
    }

    #[test]
    fn paper_figure3_shifted_example_order() {
        // The reordered sequence P4,P6,P1,P2,P3,P5 from the paper is the
        // sorted receiver list [1,2,3,5,6] rotated left by 4 → [6,1,2,3,5].
        // Build through the internal binary builder to pin the topology.
        let t = TreeBuilder::build_kary(4, &[6, 1, 2, 3, 5], 2);
        check_valid(&t);
        assert_eq!(t.children_of(4), vec![6, 3]);
        assert_eq!(t.children_of(6), vec![1, 2]);
        assert_eq!(t.children_of(3), vec![5]);
    }

    #[test]
    fn flat_has_star_topology() {
        let b = TreeBuilder::new(TreeScheme::Flat, 0);
        let t = b.build(9, &[2, 4, 6], 7);
        check_valid(&t);
        assert_eq!(t.children_of(9).len(), 3);
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn binary_depth_is_logarithmic() {
        let b = TreeBuilder::new(TreeScheme::Binary, 0);
        for p in [2usize, 5, 16, 33, 100, 257] {
            let receivers: Vec<usize> = (1..p).collect();
            let t = b.build(0, &receivers, 1);
            check_valid(&t);
            let bound = (p as f64).log2().ceil() as usize + 1;
            assert!(t.depth() <= bound, "depth {} > bound {bound} for p={p}", t.depth());
            // every node has at most 2 children
            for &m in t.members() {
                assert!(t.children_of(m).len() <= 2);
            }
        }
    }

    #[test]
    fn shifted_is_deterministic_per_key() {
        let b = TreeBuilder::new(TreeScheme::ShiftedBinary, 42);
        let recv: Vec<usize> = (1..20).collect();
        let t1 = b.build(0, &recv, 5);
        let t2 = b.build(0, &recv, 5);
        assert_eq!(t1, t2);
        // different keys eventually give different trees
        let different = (0..50u64).any(|k| b.build(0, &recv, k) != t1);
        assert!(different);
    }

    #[test]
    fn shifted_varies_interior_nodes_across_keys() {
        // The whole point of the shift: the root's first child should not
        // always be the lowest rank.
        let b = TreeBuilder::new(TreeScheme::ShiftedBinary, 7);
        let recv: Vec<usize> = (1..32).collect();
        let mut first_children = std::collections::HashSet::new();
        for key in 0..64u64 {
            let t = b.build(0, &recv, key);
            check_valid(&t);
            first_children.insert(t.children_of(0)[0]);
        }
        assert!(
            first_children.len() > 8,
            "only {} distinct first children across 64 keys",
            first_children.len()
        );
        // Plain binary always picks rank 1.
        let bb = TreeBuilder::new(TreeScheme::Binary, 7);
        for key in 0..8u64 {
            assert_eq!(bb.build(0, &recv, key).children_of(0)[0], 1);
        }
    }

    #[test]
    fn random_perm_valid_and_deterministic() {
        let b = TreeBuilder::new(TreeScheme::RandomPerm, 3);
        let recv: Vec<usize> = (10..40).collect();
        let t1 = b.build(5, &recv, 11);
        let t2 = b.build(5, &recv, 11);
        assert_eq!(t1, t2);
        check_valid(&t1);
    }

    #[test]
    fn hybrid_switches_on_threshold() {
        let b = TreeBuilder::new(TreeScheme::Hybrid { flat_threshold: 5 }, 0);
        let small = b.build(0, &[1, 2, 3], 0); // 4 participants < 5 → flat
        assert_eq!(small.depth(), 1);
        let recv: Vec<usize> = (1..20).collect();
        let large = b.build(0, &recv, 0); // 20 participants ≥ 5 → binary
        assert!(large.depth() > 1);
        for &m in large.members() {
            assert!(large.children_of(m).len() <= 2);
        }
    }

    fn is_star(t: &CollectiveTree) -> bool {
        t.depth() <= 1 && t.children_of(t.root()).len() == t.len() - 1
    }

    fn is_binaryish(t: &CollectiveTree) -> bool {
        t.depth() > 1 && t.members().iter().all(|&m| t.children_of(m).len() <= 2)
    }

    #[test]
    fn hybrid_boundary_counts_participants_not_receivers() {
        // The threshold counts participants (receivers + root), per the
        // crate doc. With flat_threshold = 5:
        //   3 receivers → 4 participants < 5  → flat
        //   4 receivers → 5 participants == 5 → tree (the boundary the old
        //                 receiver-count comparison got wrong)
        //   5 receivers → 6 participants > 5  → tree
        let b = TreeBuilder::new(TreeScheme::Hybrid { flat_threshold: 5 }, 9);
        let t = b.build(0, &[1, 2, 3], 2);
        check_valid(&t);
        assert!(is_star(&t), "threshold−1 participants must stay flat");

        let t = b.build(0, &[1, 2, 3, 4], 2);
        check_valid(&t);
        assert!(is_binaryish(&t), "exactly threshold participants must route through the tree");

        let t = b.build(0, &[1, 2, 3, 4, 5], 2);
        check_valid(&t);
        assert!(is_binaryish(&t), "threshold+1 participants must route through the tree");
    }

    #[test]
    fn hybrid_resolution_matches_resolve_scheme() {
        let b = TreeBuilder::new(TreeScheme::Hybrid { flat_threshold: 5 }, 9);
        assert_eq!(b.resolve_scheme(4), TreeScheme::Flat);
        assert_eq!(b.resolve_scheme(5), TreeScheme::ShiftedBinary);
        assert_eq!(b.resolve_scheme(6), TreeScheme::ShiftedBinary);
        // Concrete schemes pass through untouched.
        let b = TreeBuilder::new(TreeScheme::Kary { arity: 3 }, 9);
        assert_eq!(b.resolve_scheme(2), TreeScheme::Kary { arity: 3 });
    }

    #[test]
    fn rebuild_excluding_pins_hybrid_scheme_at_original_size() {
        // 8 participants ≥ 6 → the original collective routes through the
        // shifted binary tree. Killing three ranks leaves 5 survivors —
        // *below* the flat threshold — but the rebuild must keep the
        // original scheme rather than silently collapsing to a star
        // mid-recovery.
        let b = TreeBuilder::new(TreeScheme::Hybrid { flat_threshold: 6 }, 13);
        let recv: Vec<usize> = (1..8).collect();
        let t = b.build(0, &recv, 4);
        check_valid(&t);
        assert!(is_binaryish(&t), "original build is above threshold");

        let rebuilt = b.rebuild_excluding(&t, &[2, 5, 7], 4);
        check_valid(&rebuilt);
        assert_eq!(rebuilt.len(), 5);
        assert!(
            is_binaryish(&rebuilt),
            "degraded tree must keep the original shifted-binary routing, got a star"
        );
        // Deterministic: every survivor derives the same degraded tree.
        assert_eq!(b.rebuild_excluding(&t, &[2, 5, 7], 4), rebuilt);
    }

    #[test]
    #[should_panic(expected = "root must not appear among receivers")]
    fn root_among_receivers_rejected_in_release_too() {
        // A hard assert (not debug_assert): a malformed tree with the root
        // duplicated as a receiver must never be constructible.
        TreeBuilder::new(TreeScheme::Binary, 0).build(3, &[1, 2, 3], 0);
    }

    #[test]
    fn kary_respects_arity_and_depth() {
        for arity in [2usize, 3, 4, 8] {
            let b = TreeBuilder::new(TreeScheme::Kary { arity }, 0);
            let receivers: Vec<usize> = (1..100).collect();
            let t = b.build(0, &receivers, 0);
            check_valid(&t);
            for &m in t.members() {
                assert!(t.children_of(m).len() <= arity, "node {m} exceeds arity {arity}");
            }
            // depth shrinks as arity grows: ~log_k(p)
            let bound = (100f64.ln() / (arity as f64).ln()).ceil() as usize + 1;
            assert!(t.depth() <= bound, "arity {arity}: depth {} > {bound}", t.depth());
        }
    }

    #[test]
    fn kary_2_matches_binary() {
        let recv: Vec<usize> = (1..40).collect();
        let a = TreeBuilder::new(TreeScheme::Binary, 5).build(0, &recv, 9);
        let b = TreeBuilder::new(TreeScheme::Kary { arity: 2 }, 5).build(0, &recv, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn shifted_kary_is_deterministic_and_valid() {
        let b = TreeBuilder::new(TreeScheme::ShiftedKary { arity: 4 }, 11);
        let recv: Vec<usize> = (1..50).collect();
        let t1 = b.build(0, &recv, 3);
        let t2 = b.build(0, &recv, 3);
        assert_eq!(t1, t2);
        check_valid(&t1);
        for &m in t1.members() {
            assert!(t1.children_of(m).len() <= 4);
        }
    }

    #[test]
    fn empty_receivers_gives_singleton() {
        for scheme in [
            TreeScheme::Flat,
            TreeScheme::Binary,
            TreeScheme::ShiftedBinary,
            TreeScheme::RandomPerm,
        ] {
            let t = TreeBuilder::new(scheme, 1).build(8, &[], 0);
            assert!(t.is_empty());
            assert_eq!(t.root(), 8);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate receiver ranks")]
    fn duplicate_receivers_rejected() {
        TreeBuilder::new(TreeScheme::Binary, 0).build(0, &[1, 1, 2], 0);
    }

    #[test]
    fn rebuild_excluding_drops_dead_interior_rank() {
        let b = TreeBuilder::new(TreeScheme::ShiftedBinary, 42);
        let recv: Vec<usize> = (1..16).collect();
        let t = b.build(0, &recv, 7);
        check_valid(&t);
        // Kill an interior rank (one with children).
        let dead = *t.members().iter().find(|&&m| !t.children_of(m).is_empty() && m != 0).unwrap();
        let rebuilt = b.rebuild_excluding(&t, &[dead], 7);
        check_valid(&rebuilt);
        assert_eq!(rebuilt.root(), 0);
        assert_eq!(rebuilt.len(), t.len() - 1);
        assert!(!rebuilt.members().contains(&dead));
        // Deterministic: every survivor derives the same degraded tree.
        assert_eq!(b.rebuild_excluding(&t, &[dead], 7), rebuilt);
    }

    #[test]
    fn rebuild_excluding_promotes_new_root() {
        let b = TreeBuilder::new(TreeScheme::Binary, 0);
        let t = b.build(4, &[1, 2, 3, 5, 6], 0);
        let rebuilt = b.rebuild_excluding(&t, &[4], 0);
        check_valid(&rebuilt);
        assert_eq!(rebuilt.root(), 1, "lowest survivor promoted");
        assert_eq!(rebuilt.len(), 5);
        // Multiple dead ranks including the root.
        let rebuilt = b.rebuild_excluding(&t, &[4, 1, 6], 0);
        check_valid(&rebuilt);
        assert_eq!(rebuilt.root(), 2);
        assert_eq!(rebuilt.members(), &[2, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "no surviving member")]
    fn rebuild_excluding_needs_a_survivor() {
        let b = TreeBuilder::new(TreeScheme::Flat, 0);
        let t = b.build(0, &[1, 2], 0);
        b.rebuild_excluding(&t, &[0, 1, 2], 0);
    }
}
