//! Sequential selected inversion.
//!
//! Implements Algorithm 1 of the paper at supernode-block granularity,
//! walking the supernodes from last to first:
//!
//! ```text
//! for K = N, N-1, …, 1:
//!     L̂_{C,K}  ← L_{C,K} (L_{K,K})⁻¹
//!     A⁻¹_{C,K} ← -A⁻¹_{C,C} L̂_{C,K}
//!     A⁻¹_{K,K} ← (L_{K,K} D_K L_{K,K}ᵀ)⁻¹ - L̂_{C,K}ᵀ A⁻¹_{C,K}
//! ```
//!
//! [`selinv_ldlt`] is the symmetric path used throughout the paper;
//! [`lu::selinv_lu`] is the unsymmetric extension the paper lists as work
//! in progress. Both serve as the correctness oracle for the distributed
//! algorithm in `pselinv-dist`.

pub mod gather;
pub mod lu;
pub mod symmetric;

pub use lu::{selinv_lu, SelectedInverseLu};
pub use symmetric::{selinv_ldlt, SelectedInverse};
