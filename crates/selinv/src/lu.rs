//! Unsymmetric (LU) sequential selected inversion — Algorithm 1 verbatim.
//!
//! This is the extension the paper marks as work in progress: the same
//! top-down supernodal sweep, but with independent `L̂` and `Û` panels and
//! both lower (`A⁻¹_{C,K}`) and upper (`A⁻¹_{K,C}`) selected blocks.

use crate::gather::{ancestor_positions, read_ancestor, AncestorPos};
use pselinv_dense::kernels::{trsm_left_lower, trsm_right_lower};
use pselinv_dense::{gemm, Mat, Transpose};
use pselinv_factor::lu::LuFactor;
use pselinv_factor::Panel;
use pselinv_order::SymbolicFactor;
use std::sync::Arc;

/// Selected inverse of an unsymmetric matrix on the structure of `L + U`.
#[derive(Clone, Debug)]
pub struct SelectedInverseLu {
    /// Shared symbolic structure (of the symmetrized pattern).
    pub symbolic: Arc<SymbolicFactor>,
    /// `A⁻¹_{K,K}` (full) and `A⁻¹_{R,K}` per supernode.
    pub lower: Vec<Panel>,
    /// `A⁻¹_{K,R}ᵀ` per supernode (`r×w`; row `p` holds column `R[p]`).
    pub upper: Vec<Mat>,
}

/// Inverts the diagonal block packed as unit-`L` + `U`: returns `U⁻¹L⁻¹`.
fn packed_lu_invert(diag: &Mat) -> Mat {
    let w = diag.nrows();
    let mut inv = Mat::identity(w);
    // L y = I
    trsm_left_lower(diag, &mut inv, true);
    // U x = y (upper, non-unit)
    for j in 0..w {
        for i in (0..w).rev() {
            let mut s = inv[(i, j)];
            for k in (i + 1)..w {
                s -= diag[(i, k)] * inv[(k, j)];
            }
            inv[(i, j)] = s / diag[(i, i)];
        }
    }
    inv
}

/// Runs the unsymmetric selected inversion on a supernodal LU factorization.
pub fn selinv_lu(f: &LuFactor) -> SelectedInverseLu {
    let sf = &*f.symbolic;
    let ns = sf.num_supernodes();
    let mut lower: Vec<Panel> = (0..ns).map(|s| Panel::zeros(sf, s)).collect();
    let mut upper: Vec<Mat> =
        (0..ns).map(|s| Mat::zeros(sf.rows_of(s).len(), sf.width(s))).collect();

    for k in (0..ns).rev() {
        let rows = sf.rows_of(k);
        let r = rows.len();

        // L̂_{R,K} = L_{R,K} (L_{K,K})⁻¹  (unit lower).
        let mut yl = f.l[k].below.clone();
        trsm_right_lower(&mut yl, &f.l[k].diag, true);
        // Û_{K,R}ᵀ = U_{K,R}ᵀ (U_{K,K})⁻ᵀ: solve X · Uᵀ = B with Uᵀ lower
        // non-unit.
        let mut yu = f.uright[k].clone();
        {
            // Build the lower-triangular Uᵀ from the packed diagonal block.
            let w = sf.width(k);
            let mut ut = Mat::zeros(w, w);
            for j in 0..w {
                for i in 0..=j {
                    ut[(j, i)] = f.l[k].diag[(i, j)];
                }
            }
            trsm_right_lower(&mut yu, &ut, false);
        }

        lower[k].diag = packed_lu_invert(&f.l[k].diag);
        if r == 0 {
            continue;
        }

        // Gather G = A⁻¹_{R,R}: lower entries from `lower` panels, upper
        // entries from `upper` panels.
        let mut g = Mat::zeros(r, r);
        let rp = sf.rows_ptr[k];
        for b in sf.blocks_of(k) {
            let j = b.sn;
            let lb = b.rows_begin - rp;
            let nb = b.rows_end - b.rows_begin;
            let pos = ancestor_positions(sf, j, &rows[lb..]);
            let first_j = sf.first_col(j);
            for q in 0..nb {
                let cl = rows[lb + q] - first_j;
                for p in q..(r - lb) {
                    // lower: A⁻¹(rows[lb+p], rows[lb+q])
                    g[(lb + p, lb + q)] = read_ancestor(&lower[j], pos[p], cl);
                    if p > q {
                        // upper: A⁻¹(rows[lb+q], rows[lb+p])
                        let v = match pos[p] {
                            AncestorPos::Diag(il) => lower[j].diag[(cl, il)],
                            AncestorPos::Below(il) => upper[j][(il, cl)],
                            AncestorPos::BeforeJ => unreachable!(),
                        };
                        g[(lb + q, lb + p)] = v;
                    }
                }
            }
        }

        // A⁻¹_{R,K} = -G L̂.
        gemm(-1.0, &g, Transpose::No, &yl, Transpose::No, 0.0, &mut lower[k].below);
        // A⁻¹_{K,R} = -Û G  ⇒  A⁻¹_{K,R}ᵀ = -Gᵀ Ûᵀ.
        gemm(-1.0, &g, Transpose::Yes, &yu, Transpose::No, 0.0, &mut upper[k]);
        // A⁻¹_{K,K} = U⁻¹L⁻¹ - Û_{K,R} A⁻¹_{R,K} = seed - yuᵀ · below.
        {
            let p = &mut lower[k];
            let (diag, below) = (&mut p.diag, &p.below);
            gemm(-1.0, &yu, Transpose::Yes, below, Transpose::No, 1.0, diag);
        }
    }

    SelectedInverseLu { symbolic: f.symbolic.clone(), lower, upper }
}

impl SelectedInverseLu {
    /// `A⁻¹(i, j)` in the original ordering, or `None` outside the
    /// exactly-computed selected set.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        let sf = &*self.symbolic;
        let pi = sf.perm.new_of(i);
        let pj = sf.perm.new_of(j);
        let (lo, hi, upper_side) = if pi >= pj { (pj, pi, false) } else { (pi, pj, true) };
        let s = sf.part.col_to_sn[lo];
        let ll = lo - sf.first_col(s);
        if hi < sf.end_col(s) {
            let hl = hi - sf.first_col(s);
            return Some(if upper_side {
                self.lower[s].diag[(ll, hl)]
            } else {
                self.lower[s].diag[(hl, ll)]
            });
        }
        match sf.rows_of(s).binary_search(&hi) {
            Ok(p) => {
                let exact = sf.true_rows_of(s).is_none_or(|m| m[p]);
                exact.then(|| {
                    if upper_side {
                        self.upper[s][(p, ll)]
                    } else {
                        self.lower[s].below[(p, ll)]
                    }
                })
            }
            Err(_) => None,
        }
    }

    /// Diagonal of `A⁻¹` in the original ordering.
    pub fn diagonal(&self) -> Vec<f64> {
        let sf = &*self.symbolic;
        let mut d = vec![0.0; sf.n];
        for s in 0..sf.num_supernodes() {
            let first = sf.first_col(s);
            for jl in 0..sf.width(s) {
                d[sf.perm.old_of(first + jl)] = self.lower[s].diag[(jl, jl)];
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pselinv_dense::{lu_factor, lu_invert};
    use pselinv_factor::lu::factorize_lu;
    use pselinv_order::{analyze, AnalyzeOptions};
    use pselinv_sparse::{gen, SparseMatrix, TripletMatrix};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn unsym(n: usize, density: f64, seed: u64) -> SparseMatrix {
        let base = gen::random_spd(n, density, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let mut t = TripletMatrix::new(n, n);
        let mut boost = vec![0.0f64; n];
        for (i, j, v) in base.iter() {
            if i != j {
                let p = v * rng.random_range(0.5..1.5);
                t.push(i, j, p);
                boost[i] += p.abs();
            }
        }
        for (i, b) in boost.iter().enumerate() {
            t.push(i, i, b + 1.0);
        }
        t.to_csc()
    }

    fn dense_inverse(a: &SparseMatrix) -> Mat {
        let n = a.nrows();
        let mut d = Mat::from_col_major(n, n, &a.to_dense_col_major());
        let piv = lu_factor(&mut d).unwrap();
        lu_invert(&d, &piv)
    }

    fn check(a: &SparseMatrix) {
        let sf = Arc::new(analyze(&a.pattern(), &AnalyzeOptions::default()));
        let f = factorize_lu(a, sf).unwrap();
        let inv = selinv_lu(&f);
        let dense = dense_inverse(a);
        let scale = 1.0 + dense.norm_max();
        let n = a.nrows();
        for i in 0..n {
            for j in 0..n {
                if let Some(v) = inv.get(i, j) {
                    assert!(
                        (v - dense[(i, j)]).abs() < 1e-9 * scale,
                        "A⁻¹({i},{j}) = {v} vs {}",
                        dense[(i, j)]
                    );
                }
            }
        }
        for (i, j, _) in a.iter() {
            assert!(inv.get(i, j).is_some(), "selected set misses ({i},{j})");
        }
    }

    #[test]
    fn unsymmetric_random() {
        for seed in 0..3 {
            check(&unsym(24, 0.15, seed));
        }
    }

    #[test]
    fn symmetric_input_matches_ldlt_path() {
        let w = gen::grid_laplacian_2d(6, 5);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        let flu = factorize_lu(&w.matrix, sf.clone()).unwrap();
        let fld = pselinv_factor::factorize(&w.matrix, sf).unwrap();
        let ilu = selinv_lu(&flu);
        let ild = crate::symmetric::selinv_ldlt(&fld);
        let n = w.matrix.nrows();
        for i in 0..n {
            for j in 0..n {
                match (ilu.get(i, j), ild.get(i, j)) {
                    (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "({i},{j}): {a} vs {b}"),
                    (None, None) => {}
                    other => panic!("selected-set mismatch at ({i},{j}): {other:?}"),
                }
            }
        }
    }

    #[test]
    fn upper_and_lower_transposes_differ_for_unsymmetric() {
        let a = unsym(20, 0.2, 7);
        let sf = Arc::new(analyze(&a.pattern(), &AnalyzeOptions::default()));
        let f = factorize_lu(&a, sf).unwrap();
        let inv = selinv_lu(&f);
        let dense = dense_inverse(&a);
        let mut found_asym = false;
        for i in 0..20 {
            for j in 0..i {
                if let (Some(lo), Some(up)) = (inv.get(i, j), inv.get(j, i)) {
                    if (lo - up).abs() > 1e-6 {
                        found_asym = true;
                    }
                    assert!((lo - dense[(i, j)]).abs() < 1e-8 * (1.0 + dense.norm_max()));
                    assert!((up - dense[(j, i)]).abs() < 1e-8 * (1.0 + dense.norm_max()));
                }
            }
        }
        assert!(found_asym, "expected an asymmetric inverse");
    }

    #[test]
    fn dg_blocks_unsymmetric_values() {
        // DG structure with asymmetric values on a symmetric pattern.
        let w = gen::dg_hamiltonian(2, 2, 1, 4, 11);
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = TripletMatrix::new(w.matrix.nrows(), w.matrix.ncols());
        let mut boost = vec![0.0f64; w.matrix.nrows()];
        for (i, j, v) in w.matrix.iter() {
            if i != j {
                let p = v * rng.random_range(0.8..1.2);
                t.push(i, j, p);
                boost[i] += p.abs();
            }
        }
        for (i, b) in boost.iter().enumerate() {
            t.push(i, i, b + 1.0);
        }
        check(&t.to_csc());
    }
}
