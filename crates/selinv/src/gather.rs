//! Gathering the dense ancestor sub-matrix `A⁻¹_{C,C}`.
//!
//! For supernode `K` with below-diagonal rows `R`, step 3 of Algorithm 1
//! multiplies by the `|R| × |R|` matrix `A⁻¹_{R,R}`, whose entries live
//! scattered across ancestor panels. The stored structure guarantees every
//! needed entry exists: the block ancestors of `K` lie on `K`'s supernodal
//! parent chain, and `rows(K)` beyond ancestor `J`'s columns is a subset of
//! `rows(J)`.

use pselinv_factor::Panel;
use pselinv_order::SymbolicFactor;

/// Position of each tail row of `K` inside ancestor `J`'s panel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AncestorPos {
    /// Row is one of `J`'s columns: local diagonal-block offset.
    Diag(usize),
    /// Row is in `J`'s below panel at this offset.
    Below(usize),
    /// Row precedes `J` (never queried).
    BeforeJ,
}

/// Computes, for every row in `rows` (sorted), its position within
/// supernode `j`'s panel. Rows before `j`'s first column map to
/// [`AncestorPos::BeforeJ`]. Panics if a row at or beyond `j`'s columns is
/// missing from `j`'s structure (which would violate the parent-chain
/// containment property).
pub fn ancestor_positions(sf: &SymbolicFactor, j: usize, rows: &[usize]) -> Vec<AncestorPos> {
    let first = sf.first_col(j);
    let end = sf.end_col(j);
    let rj = sf.rows_of(j);
    let mut out = Vec::with_capacity(rows.len());
    let mut t = 0usize; // cursor into rj
    for &r in rows {
        if r < first {
            out.push(AncestorPos::BeforeJ);
        } else if r < end {
            out.push(AncestorPos::Diag(r - first));
        } else {
            while t < rj.len() && rj[t] < r {
                t += 1;
            }
            assert!(
                t < rj.len() && rj[t] == r,
                "row {r} of a descendant is missing from ancestor supernode {j}"
            );
            out.push(AncestorPos::Below(t));
        }
    }
    out
}

/// Reads `A⁻¹(row_pos, col_local)` from ancestor `J`'s panel given a
/// precomputed position.
#[inline]
pub fn read_ancestor(panel: &Panel, pos: AncestorPos, col_local: usize) -> f64 {
    match pos {
        AncestorPos::Diag(il) => panel.diag[(il, col_local)],
        AncestorPos::Below(il) => panel.below[(il, col_local)],
        AncestorPos::BeforeJ => panic!("reading a row that precedes the ancestor"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pselinv_order::{analyze, AnalyzeOptions};
    use pselinv_sparse::gen;

    #[test]
    fn positions_resolve_for_all_blocks() {
        let w = gen::grid_laplacian_3d(4, 3, 3);
        let sf = analyze(&w.matrix.pattern(), &AnalyzeOptions::default());
        for k in 0..sf.num_supernodes() {
            let rows = sf.rows_of(k);
            for b in sf.blocks_of(k) {
                let pos = ancestor_positions(&sf, b.sn, rows);
                // Every row at/after the block's ancestor must resolve.
                for (p, &r) in rows.iter().enumerate() {
                    match pos[p] {
                        AncestorPos::BeforeJ => assert!(r < sf.first_col(b.sn)),
                        AncestorPos::Diag(il) => {
                            assert_eq!(sf.first_col(b.sn) + il, r)
                        }
                        AncestorPos::Below(il) => {
                            assert_eq!(sf.rows_of(b.sn)[il], r)
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn block_ancestors_lie_on_parent_chain() {
        // The property the gather relies on.
        let w = gen::proxies::dg_water(1);
        let sf = analyze(&w.matrix.pattern(), &AnalyzeOptions::default());
        for k in 0..sf.num_supernodes() {
            let mut chain = Vec::new();
            let mut p = sf.sn_parent[k];
            while p != pselinv_order::etree::NONE {
                chain.push(p);
                p = sf.sn_parent[p];
            }
            for b in sf.blocks_of(k) {
                assert!(chain.contains(&b.sn), "block ancestor {} off the parent chain", b.sn);
            }
        }
    }
}
