//! Symmetric (LDLᵀ) sequential selected inversion.

use crate::gather::{ancestor_positions, read_ancestor};
use pselinv_dense::kernels::trsm_right_lower;
use pselinv_dense::{gemm, ldlt_invert, Mat, Transpose};
use pselinv_factor::{LdlFactor, Panel};
use pselinv_order::SymbolicFactor;
use std::sync::Arc;

/// The selected inverse of a symmetric matrix: `A⁻¹` on the (stored)
/// structure of `L + Lᵀ`.
#[derive(Clone, Debug)]
pub struct SelectedInverse {
    /// Shared symbolic structure.
    pub symbolic: Arc<SymbolicFactor>,
    /// Per supernode: `A⁻¹_{K,K}` in `diag` (full symmetric block) and
    /// `A⁻¹_{R,K}` in `below`.
    pub panels: Vec<Panel>,
}

/// Runs the selected inversion on a supernodal LDLᵀ factorization.
///
/// ```
/// use pselinv_factor::factorize;
/// use pselinv_order::{analyze, AnalyzeOptions};
/// use pselinv_selinv::selinv_ldlt;
/// use pselinv_sparse::gen;
/// use std::sync::Arc;
///
/// let w = gen::grid_laplacian_2d(10, 10);
/// let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
/// let f = factorize(&w.matrix, sf).unwrap();
/// let inv = selinv_ldlt(&f);
/// // every entry of A⁻¹ on the pattern of A is available…
/// for (i, j, _) in w.matrix.iter() {
///     assert!(inv.get(i, j).is_some());
/// }
/// // …but distant entries were never computed
/// assert!(inv.get(0, 99).is_none());
/// ```
pub fn selinv_ldlt(f: &LdlFactor) -> SelectedInverse {
    let sf = &*f.symbolic;
    let ns = sf.num_supernodes();
    let mut panels: Vec<Panel> = (0..ns).map(|s| Panel::zeros(sf, s)).collect();

    for k in (0..ns).rev() {
        let rows = sf.rows_of(k);
        let r = rows.len();

        // Step 2 of Algorithm 1: L̂ = L_{R,K} (L_{K,K})⁻¹.
        let mut y = f.panels[k].below.clone();
        trsm_right_lower(&mut y, &f.panels[k].diag, true);

        // Diagonal seed: (L D Lᵀ)⁻¹ of the diagonal block.
        panels[k].diag = ldlt_invert(&f.panels[k].diag);

        if r == 0 {
            continue;
        }

        // Gather G = A⁻¹_{R,R} from ancestor panels (symmetric fill).
        let mut g = Mat::zeros(r, r);
        let rp = sf.rows_ptr[k];
        for b in sf.blocks_of(k) {
            let j = b.sn;
            let lb = b.rows_begin - rp;
            let nb = b.rows_end - b.rows_begin;
            let pos = ancestor_positions(sf, j, &rows[lb..]);
            let first_j = sf.first_col(j);
            for q in 0..nb {
                let cl = rows[lb + q] - first_j;
                for p in q..(r - lb) {
                    let v = read_ancestor(&panels[j], pos[p], cl);
                    g[(lb + p, lb + q)] = v;
                    g[(lb + q, lb + p)] = v;
                }
            }
        }
        debug_assert!({
            // every Diag/Below position was filled consistently (spot check
            // symmetry of the gathered matrix)
            let mut ok = true;
            for p in 0..r.min(4) {
                for q in 0..r.min(4) {
                    ok &= g[(p, q)] == g[(q, p)];
                }
            }
            ok
        });

        // Step 3: A⁻¹_{R,K} = -G · L̂.
        {
            let below = &mut panels[k].below;
            gemm(-1.0, &g, Transpose::No, &y, Transpose::No, 0.0, below);
        }

        // Step 4: A⁻¹_{K,K} = (LDLᵀ)⁻¹ - L̂ᵀ A⁻¹_{R,K}.
        {
            let p = &mut panels[k];
            let (diag, below) = (&mut p.diag, &p.below);
            gemm(-1.0, &y, Transpose::Yes, below, Transpose::No, 1.0, diag);
        }
        // Symmetrize the diagonal block to wash out rounding asymmetry.
        let w = sf.width(k);
        for jl in 0..w {
            for il in (jl + 1)..w {
                let v = 0.5 * (panels[k].diag[(il, jl)] + panels[k].diag[(jl, il)]);
                panels[k].diag[(il, jl)] = v;
                panels[k].diag[(jl, il)] = v;
            }
        }
    }

    SelectedInverse { symbolic: f.symbolic.clone(), panels }
}

impl SelectedInverse {
    /// Value of `A⁻¹(i, j)` in the *original* matrix ordering, or `None`
    /// when the position is outside the exactly-computed selected set
    /// (stored structure restricted to true factor structure; diagonal
    /// blocks are always exact).
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        let sf = &*self.symbolic;
        let mut pi = sf.perm.new_of(i);
        let mut pj = sf.perm.new_of(j);
        if pi < pj {
            std::mem::swap(&mut pi, &mut pj); // symmetry: read lower triangle
        }
        let s = sf.part.col_to_sn[pj];
        let jl = pj - sf.first_col(s);
        if pi < sf.end_col(s) {
            return Some(self.panels[s].diag[(pi - sf.first_col(s), jl)]);
        }
        match sf.rows_of(s).binary_search(&pi) {
            Ok(p) => {
                let exact = sf.true_rows_of(s).is_none_or(|m| m[p]);
                exact.then(|| self.panels[s].below[(p, jl)])
            }
            Err(_) => None,
        }
    }

    /// The diagonal of `A⁻¹` in the original ordering (always part of the
    /// selected set) — the quantity PEXSI extracts for electronic
    /// structure.
    pub fn diagonal(&self) -> Vec<f64> {
        let sf = &*self.symbolic;
        let mut d = vec![0.0; sf.n];
        for s in 0..sf.num_supernodes() {
            let first = sf.first_col(s);
            for jl in 0..sf.width(s) {
                d[sf.perm.old_of(first + jl)] = self.panels[s].diag[(jl, jl)];
            }
        }
        d
    }

    /// Trace of `A⁻¹`.
    pub fn trace(&self) -> f64 {
        self.diagonal().iter().sum()
    }

    /// Iterates over every exactly-computed selected entry of the *lower
    /// triangle* (diagonal included) as `(i, j, value)` in the original
    /// ordering. The upper triangle follows by symmetry.
    pub fn selected_entries(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let sf = &*self.symbolic;
        (0..sf.num_supernodes()).flat_map(move |s| {
            let first = sf.first_col(s);
            let w = sf.width(s);
            let rows = sf.rows_of(s);
            let mask = sf.true_rows_of(s);
            let panel = &self.panels[s];
            (0..w).flat_map(move |jl| {
                let diag_part = (jl..w).map(move |il| {
                    (sf.perm.old_of(first + il), sf.perm.old_of(first + jl), panel.diag[(il, jl)])
                });
                let below_part = rows.iter().enumerate().filter_map(move |(p, &r)| {
                    let exact = mask.is_none_or(|m| m[p]);
                    exact.then(|| {
                        (sf.perm.old_of(r), sf.perm.old_of(first + jl), panel.below[(p, jl)])
                    })
                });
                diag_part.chain(below_part)
            })
        })
    }

    /// Assembles the selected entries into a symmetric [`SparseMatrix`]
    /// (both triangles populated) — convenient for downstream consumers
    /// that want `A⁻¹` restricted to the selected set as a matrix.
    pub fn to_sparse(&self) -> pselinv_sparse::SparseMatrix {
        let n = self.symbolic.n;
        let mut t = pselinv_sparse::TripletMatrix::new(n, n);
        for (i, j, v) in self.selected_entries() {
            t.push_sym(i, j, v);
        }
        t.to_csc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pselinv_dense::{lu_factor, lu_invert};
    use pselinv_order::{analyze, AnalyzeOptions, OrderingChoice};
    use pselinv_sparse::{gen, SparseMatrix};

    fn dense_inverse(a: &SparseMatrix) -> Mat {
        let n = a.nrows();
        let mut d = Mat::from_col_major(n, n, &a.to_dense_col_major());
        let piv = lu_factor(&mut d).unwrap();
        lu_invert(&d, &piv)
    }

    fn check_selected_inverse(a: &SparseMatrix, opts: &AnalyzeOptions) {
        let sf = Arc::new(analyze(&a.pattern(), opts));
        let f = pselinv_factor::factorize(a, sf.clone()).unwrap();
        let inv = selinv_ldlt(&f);
        let dense = dense_inverse(a);
        let scale = 1.0 + dense.norm_max();
        // Every entry the API exposes must be exact.
        let n = a.nrows();
        let mut exposed = 0usize;
        for i in 0..n {
            for j in 0..n {
                if let Some(v) = inv.get(i, j) {
                    assert!(
                        (v - dense[(i, j)]).abs() < 1e-9 * scale,
                        "A⁻¹({i},{j}) = {v} vs dense {}",
                        dense[(i, j)]
                    );
                    exposed += 1;
                }
            }
        }
        // The selected set must cover every structural nonzero of A.
        for (i, j, _) in a.iter() {
            assert!(inv.get(i, j).is_some(), "selected set misses A nonzero ({i},{j})");
        }
        assert!(exposed >= a.nnz());
        // Diagonal helper agrees with get().
        let diag = inv.diagonal();
        for i in 0..n {
            assert_eq!(diag[i], inv.get(i, i).unwrap());
        }
    }

    #[test]
    fn grid2d_md() {
        let w = gen::grid_laplacian_2d(7, 7);
        check_selected_inverse(&w.matrix, &AnalyzeOptions::default());
    }

    #[test]
    fn grid2d_nd() {
        let w = gen::grid_laplacian_2d(8, 6);
        let opts = AnalyzeOptions {
            ordering: OrderingChoice::NestedDissection(
                w.geometry,
                pselinv_order::nd::NdOptions { leaf_size: 4 },
            ),
            ..Default::default()
        };
        check_selected_inverse(&w.matrix, &opts);
    }

    #[test]
    fn grid3d() {
        let w = gen::grid_laplacian_3d(4, 3, 3);
        check_selected_inverse(&w.matrix, &AnalyzeOptions::default());
    }

    #[test]
    fn dg_blocks() {
        let w = gen::dg_hamiltonian(3, 2, 1, 5, 3);
        check_selected_inverse(&w.matrix, &AnalyzeOptions::default());
    }

    #[test]
    fn random_spd_multiple_seeds() {
        for seed in 0..4 {
            let m = gen::random_spd(28, 0.15, seed);
            check_selected_inverse(&m, &AnalyzeOptions::default());
        }
    }

    #[test]
    fn heavy_relaxation_still_exact_on_selected_set() {
        // Aggressive amalgamation introduces many relaxed rows; the mask
        // must hide the wrong ones and everything exposed stays exact.
        let w = gen::grid_laplacian_2d(9, 7);
        let opts = AnalyzeOptions {
            supernode: pselinv_order::supernodes::SupernodeOptions {
                max_width: 16,
                relax_small: 8,
                relax_zero_fraction: 0.8,
            },
            ..Default::default()
        };
        check_selected_inverse(&w.matrix, &opts);
    }

    #[test]
    fn trace_matches_dense() {
        let w = gen::grid_laplacian_2d(6, 6);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        let f = pselinv_factor::factorize(&w.matrix, sf).unwrap();
        let inv = selinv_ldlt(&f);
        let dense = dense_inverse(&w.matrix);
        let dense_trace: f64 = (0..36).map(|i| dense[(i, i)]).sum();
        assert!((inv.trace() - dense_trace).abs() < 1e-9 * dense_trace.abs());
    }

    #[test]
    fn selected_entries_match_get() {
        let w = gen::grid_laplacian_2d(7, 6);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        let f = pselinv_factor::factorize(&w.matrix, sf).unwrap();
        let inv = selinv_ldlt(&f);
        let mut count = 0;
        for (i, j, v) in inv.selected_entries() {
            assert_eq!(Some(v), inv.get(i, j), "({i},{j})");
            assert_eq!(Some(v), inv.get(j, i), "symmetric access ({j},{i})");
            count += 1;
        }
        assert!(count >= w.matrix.nnz() / 2, "selected set too small: {count}");
    }

    #[test]
    fn to_sparse_is_symmetric_and_exact() {
        let w = gen::grid_laplacian_2d(6, 6);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        let f = pselinv_factor::factorize(&w.matrix, sf).unwrap();
        let inv = selinv_ldlt(&f);
        let m = inv.to_sparse();
        assert!(m.is_symmetric(1e-12));
        let dense = dense_inverse(&w.matrix);
        for (i, j, v) in m.iter() {
            assert!((v - dense[(i, j)]).abs() < 1e-9 * (1.0 + dense.norm_max()));
        }
        // every A-nonzero position must be present
        for (i, j, _) in w.matrix.iter() {
            assert!(m.get(i, j) != 0.0 || dense[(i, j)].abs() < 1e-12);
        }
    }

    #[test]
    fn identity_inverse_is_identity() {
        let m = SparseMatrix::identity(10);
        let sf = Arc::new(analyze(&m.pattern(), &AnalyzeOptions::default()));
        let f = pselinv_factor::factorize(&m, sf).unwrap();
        let inv = selinv_ldlt(&f);
        for i in 0..10 {
            assert!((inv.get(i, i).unwrap() - 1.0).abs() < 1e-14);
        }
    }
}
