//! `pselinv-chaos`: deterministic, seed-driven fault injection.
//!
//! A [`FaultPlan`] describes a *schedule* of faults — message delay and
//! jitter, reordering, duplication, rank slowdown, and rank stall/crash
//! triggers — as a pure function of a seed. Both backends consume the same
//! plan:
//!
//! * the thread-based `pselinv-mpisim` runtime interposes on message
//!   delivery (delay/duplicate/reorder per message, op-count stall/crash
//!   triggers per rank);
//! * the `pselinv-des` machine simulator perturbs per-task service times
//!   (slowdown), per-message transfer times (delay/jitter) and removes
//!   ranks at their simulated stall/crash times.
//!
//! Every per-message decision is an independent hash draw over
//! `(seed, src, dst, message-sequence)`, so a schedule is reproducible
//! across runs, backends and thread interleavings — the property the
//! chaos proptests rely on (a crash-free schedule must yield bit-identical
//! collective results to the fault-free run).

use pselinv_trees::rng::hash2;
use std::collections::BTreeMap;

/// Per-rank fault parameters. The default spec is benign (no faults).
///
/// Time-triggered fields (`stall_at_s`, `crash_at_s`) are in *simulated
/// seconds* and only meaningful to the DES backend, where time is exact.
/// The mpisim runtime runs on nondeterministic wall clocks, so its
/// triggers count *operations* (sends + receives) instead
/// (`stall_after_ops`, `crash_after_ops`) — deterministic per rank
/// regardless of scheduling.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// Fixed extra latency injected into every message this rank sends
    /// (µs; mpisim sleeps it on the send path, DES adds it to the arrival
    /// time).
    pub delay_us: u64,
    /// Additional per-message random latency in `0..=jitter_us` (µs),
    /// drawn deterministically from the plan seed.
    pub jitter_us: u64,
    /// Per-message probability (‰) that a sent message is held back and
    /// overtaken by the next message to the same destination.
    pub reorder_permille: u16,
    /// Per-message probability (‰) that a sent message is delivered twice.
    pub duplicate_permille: u16,
    /// Per-message probability (‰) that a sent message is lost in flight
    /// (mpisim drops it at `deliver()`, the DES engine never schedules the
    /// arrival). Unlike duplication and reordering, loss is *not* benign on
    /// its own: without a reliable transport retransmitting the message,
    /// data is gone and the receiver hangs or the task graph strands.
    pub drop_permille: u16,
    /// Service-time multiplier for this rank (≥ 1.0 slows it down).
    pub slowdown: f64,
    /// DES: the rank stops making progress at this simulated time but is
    /// not removed (messages to it are silently absorbed).
    pub stall_at_s: Option<f64>,
    /// DES: the rank crashes at this simulated time (equivalent to a stall
    /// for the simulation model; kept distinct for reporting).
    pub crash_at_s: Option<f64>,
    /// mpisim: the rank stops calling into the runtime after this many
    /// send/receive operations (spins forever; the watchdog converts the
    /// resulting global stall into a diagnostic error).
    pub stall_after_ops: Option<u64>,
    /// mpisim: the rank panics after this many send/receive operations
    /// (the panic propagates through `try_run` as a `RankPanic`).
    pub crash_after_ops: Option<u64>,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            delay_us: 0,
            jitter_us: 0,
            reorder_permille: 0,
            duplicate_permille: 0,
            drop_permille: 0,
            slowdown: 1.0,
            stall_at_s: None,
            crash_at_s: None,
            stall_after_ops: None,
            crash_after_ops: None,
        }
    }
}

impl FaultSpec {
    /// `true` when this spec can never lose data on its own (delay,
    /// jitter, reordering, duplication and slowdown are all benign: they
    /// perturb timing and delivery order but lose nothing). Message loss
    /// (`drop_permille`) is **not** benign here: without a reliable
    /// transport retransmitting lost messages, a dropped delivery is data
    /// loss exactly like a crash. Use
    /// [`FaultSpec::is_benign_under_reliable`] when the run layers a
    /// retransmitting transport under the collectives.
    pub fn is_benign(&self) -> bool {
        self.drop_permille == 0 && self.is_benign_under_reliable()
    }

    /// Like [`FaultSpec::is_benign`], but treats message loss as benign —
    /// valid only when a reliable (ack + retransmit) transport recovers
    /// every dropped delivery, as `pselinv-mpisim`'s `reliable` layer does.
    pub fn is_benign_under_reliable(&self) -> bool {
        self.stall_at_s.is_none()
            && self.crash_at_s.is_none()
            && self.stall_after_ops.is_none()
            && self.crash_after_ops.is_none()
    }

    /// `true` when the spec injects nothing at all.
    pub fn is_noop(&self) -> bool {
        self.is_benign()
            && self.delay_us == 0
            && self.jitter_us == 0
            && self.reorder_permille == 0
            && self.duplicate_permille == 0
            && self.drop_permille == 0
            && self.slowdown == 1.0
    }
}

// Salts separating the independent per-message draw streams.
const SALT_JITTER: u64 = 0x6a17_7e2b;
const SALT_DUP: u64 = 0xd0b1_e5e5;
const SALT_REORDER: u64 = 0x0c0d_e12f;
const SALT_DROP: u64 = 0xd709_1055;
const SALT_BACKOFF: u64 = 0x00ba_c0ff;

/// A complete fault schedule: a seed, a default per-rank spec, and
/// per-rank overrides. Pure data — cloning or sharing it across backends
/// replays the identical schedule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    base: FaultSpec,
    overrides: BTreeMap<usize, FaultSpec>,
}

impl FaultPlan {
    /// A plan with the given seed and a benign default spec.
    pub fn new(seed: u64) -> Self {
        Self { seed, base: FaultSpec::default(), overrides: BTreeMap::new() }
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Replaces the default spec applied to every rank without an
    /// override.
    pub fn with_default(mut self, spec: FaultSpec) -> Self {
        self.base = spec;
        self
    }

    /// Overrides the spec of one rank.
    pub fn with_rank(mut self, rank: usize, spec: FaultSpec) -> Self {
        self.overrides.insert(rank, spec);
        self
    }

    /// The effective spec of `rank`.
    pub fn spec(&self, rank: usize) -> &FaultSpec {
        self.overrides.get(&rank).unwrap_or(&self.base)
    }

    /// Ranks with an explicit override.
    pub fn overridden_ranks(&self) -> impl Iterator<Item = usize> + '_ {
        self.overrides.keys().copied()
    }

    /// Independent deterministic draw for message `seq` from `src` to
    /// `dst` in the stream selected by `salt`.
    fn draw(&self, salt: u64, src: usize, dst: usize, seq: u64) -> u64 {
        let pair = ((src as u64) << 32) ^ (dst as u64);
        hash2(hash2(self.seed ^ salt, pair), seq)
    }

    /// Total injected latency (µs) of message `seq` from `src` to `dst`:
    /// the sender's fixed delay plus its seeded jitter.
    pub fn delay_us(&self, src: usize, dst: usize, seq: u64) -> u64 {
        let s = self.spec(src);
        let jitter = if s.jitter_us == 0 {
            0
        } else {
            self.draw(SALT_JITTER, src, dst, seq) % (s.jitter_us + 1)
        };
        s.delay_us + jitter
    }

    /// Same latency in seconds (DES arrival-time perturbation).
    pub fn delay_s(&self, src: usize, dst: usize, seq: u64) -> f64 {
        self.delay_us(src, dst, seq) as f64 * 1e-6
    }

    /// Whether message `seq` from `src` to `dst` is delivered twice.
    pub fn duplicates(&self, src: usize, dst: usize, seq: u64) -> bool {
        let p = self.spec(src).duplicate_permille;
        p > 0 && self.draw(SALT_DUP, src, dst, seq) % 1000 < p as u64
    }

    /// Whether message `seq` from `src` to `dst` is held back and
    /// overtaken by the next message to the same destination.
    pub fn reorders(&self, src: usize, dst: usize, seq: u64) -> bool {
        let p = self.spec(src).reorder_permille;
        p > 0 && self.draw(SALT_REORDER, src, dst, seq) % 1000 < p as u64
    }

    /// Whether message `seq` from `src` to `dst` is lost in flight — an
    /// independent draw stream with the same determinism contract as
    /// [`FaultPlan::duplicates`] / [`FaultPlan::reorders`].
    pub fn drops(&self, src: usize, dst: usize, seq: u64) -> bool {
        let p = self.spec(src).drop_permille;
        p > 0 && self.draw(SALT_DROP, src, dst, seq) % 1000 < p as u64
    }

    /// Deterministic jitter (µs, in `0..=cap_us`) mixed into retransmit
    /// attempt `attempt` of the `src -> dst` reliable stream, so the
    /// exponential-backoff deadlines desynchronize without introducing a
    /// wall-clock RNG.
    pub fn backoff_jitter_us(&self, src: usize, dst: usize, attempt: u64, cap_us: u64) -> u64 {
        if cap_us == 0 {
            return 0;
        }
        self.draw(SALT_BACKOFF, src, dst, attempt) % (cap_us + 1)
    }

    /// Service-time multiplier of `rank`.
    pub fn slowdown(&self, rank: usize) -> f64 {
        self.spec(rank).slowdown
    }

    /// DES: whether `rank` is stalled or crashed at simulated time `t_s`.
    pub fn down_at(&self, rank: usize, t_s: f64) -> bool {
        let s = self.spec(rank);
        s.stall_at_s.is_some_and(|at| t_s >= at) || s.crash_at_s.is_some_and(|at| t_s >= at)
    }

    /// DES: whether `rank` ever goes down under this plan.
    pub fn ever_down(&self, rank: usize) -> bool {
        let s = self.spec(rank);
        s.stall_at_s.is_some() || s.crash_at_s.is_some()
    }

    /// `true` when no rank can stall, crash or lose data under this plan —
    /// the precondition for the masking guarantee (bit-identical results
    /// to the fault-free run) on a *raw* transport. A plan that injects
    /// loss is only safe with a reliable transport underneath; see
    /// [`FaultPlan::is_crash_free_under_reliable`].
    pub fn is_crash_free(&self) -> bool {
        self.base.is_benign() && self.overrides.values().all(FaultSpec::is_benign)
    }

    /// Like [`FaultPlan::is_crash_free`], but assumes a reliable
    /// (ack + retransmit) transport recovers every dropped message, so
    /// loss no longer voids the masking guarantee.
    pub fn is_crash_free_under_reliable(&self) -> bool {
        self.base.is_benign_under_reliable()
            && self.overrides.values().all(FaultSpec::is_benign_under_reliable)
    }

    /// `true` when the plan injects nothing at all.
    pub fn is_noop(&self) -> bool {
        self.base.is_noop() && self.overrides.values().all(FaultSpec::is_noop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_benign_noop() {
        let s = FaultSpec::default();
        assert!(s.is_benign());
        assert!(s.is_noop());
        assert_eq!(s.slowdown, 1.0);
        let p = FaultPlan::new(7);
        assert!(p.is_crash_free());
        assert!(p.is_noop());
        assert_eq!(p.delay_us(0, 1, 0), 0);
        assert!(!p.duplicates(0, 1, 0));
        assert!(!p.reorders(0, 1, 0));
        assert!(!p.down_at(3, 1e9));
    }

    #[test]
    fn draws_are_deterministic_and_stream_independent() {
        let mk = || {
            FaultPlan::new(0xabcd).with_default(FaultSpec {
                jitter_us: 500,
                duplicate_permille: 300,
                reorder_permille: 300,
                ..FaultSpec::default()
            })
        };
        let (a, b) = (mk(), mk());
        for seq in 0..200 {
            assert_eq!(a.delay_us(1, 2, seq), b.delay_us(1, 2, seq));
            assert_eq!(a.duplicates(1, 2, seq), b.duplicates(1, 2, seq));
            assert_eq!(a.reorders(1, 2, seq), b.reorders(1, 2, seq));
        }
        // Different seeds change the schedule.
        let c = FaultPlan::new(0xabce)
            .with_default(FaultSpec { jitter_us: 500, ..FaultSpec::default() });
        let differs = (0..200).any(|s| a.delay_us(1, 2, s) != c.delay_us(1, 2, s));
        assert!(differs, "seed must perturb the jitter stream");
        // Distinct (src, dst) pairs get independent streams.
        let differs = (0..200).any(|s| a.delay_us(1, 2, s) != a.delay_us(2, 1, s));
        assert!(differs, "per-pair streams must be independent");
    }

    #[test]
    fn jitter_is_bounded_and_rates_are_plausible() {
        let p = FaultPlan::new(99).with_default(FaultSpec {
            delay_us: 10,
            jitter_us: 40,
            duplicate_permille: 500,
            ..FaultSpec::default()
        });
        let mut dups = 0;
        for seq in 0..1000 {
            let d = p.delay_us(0, 1, seq);
            assert!((10..=50).contains(&d), "delay {d} outside [10, 50]");
            dups += p.duplicates(0, 1, seq) as u32;
        }
        assert!((300..700).contains(&dups), "500‰ duplication drew {dups}/1000");
    }

    #[test]
    fn overrides_shadow_the_default() {
        let slow = FaultSpec { slowdown: 4.0, ..FaultSpec::default() };
        let dead = FaultSpec { crash_at_s: Some(0.5), ..FaultSpec::default() };
        let p = FaultPlan::new(1).with_rank(3, slow).with_rank(5, dead);
        assert_eq!(p.slowdown(3), 4.0);
        assert_eq!(p.slowdown(0), 1.0);
        assert!(!p.is_crash_free());
        assert!(!p.down_at(5, 0.4));
        assert!(p.down_at(5, 0.5));
        assert!(p.ever_down(5));
        assert!(!p.ever_down(3));
        assert_eq!(p.overridden_ranks().collect::<Vec<_>>(), vec![3, 5]);
    }

    #[test]
    fn loss_is_non_benign_without_reliable_transport() {
        let lossy = FaultSpec { drop_permille: 50, ..FaultSpec::default() };
        assert!(!lossy.is_benign(), "loss loses data on a raw transport");
        assert!(lossy.is_benign_under_reliable(), "retransmission recovers every drop");
        assert!(!lossy.is_noop());
        let p = FaultPlan::new(3).with_default(lossy);
        assert!(!p.is_crash_free());
        assert!(p.is_crash_free_under_reliable());
        assert!(!p.is_noop());
        // A crash override stays unsafe even under a reliable transport.
        let p = p.with_rank(2, FaultSpec { crash_after_ops: Some(1), ..FaultSpec::default() });
        assert!(!p.is_crash_free_under_reliable());
    }

    #[test]
    fn noop_requires_zero_loss() {
        let s = FaultSpec { drop_permille: 1, ..FaultSpec::default() };
        assert!(!s.is_noop());
        let s = FaultSpec { drop_permille: 0, ..FaultSpec::default() };
        assert!(s.is_noop());
        assert!(!FaultPlan::new(0)
            .with_rank(1, FaultSpec { drop_permille: 1000, ..FaultSpec::default() })
            .is_noop());
    }

    #[test]
    fn drop_draws_are_deterministic_and_plausible() {
        let p = FaultPlan::new(0x10c4)
            .with_default(FaultSpec { drop_permille: 200, ..FaultSpec::default() });
        let q = p.clone();
        let mut losses = 0u32;
        for seq in 0..1000 {
            assert_eq!(p.drops(0, 1, seq), q.drops(0, 1, seq));
            losses += p.drops(0, 1, seq) as u32;
        }
        assert!((100..350).contains(&losses), "200‰ loss drew {losses}/1000");
        // The loss stream is independent of the duplication stream.
        let with_dup = FaultPlan::new(0x10c4).with_default(FaultSpec {
            drop_permille: 200,
            duplicate_permille: 500,
            ..FaultSpec::default()
        });
        for seq in 0..200 {
            assert_eq!(p.drops(0, 1, seq), with_dup.drops(0, 1, seq));
        }
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_bounded() {
        let p = FaultPlan::new(77);
        for attempt in 0..32 {
            let j = p.backoff_jitter_us(1, 2, attempt, 500);
            assert!(j <= 500);
            assert_eq!(j, p.backoff_jitter_us(1, 2, attempt, 500));
        }
        assert_eq!(p.backoff_jitter_us(1, 2, 0, 0), 0);
        let differs = (0..32)
            .any(|a| p.backoff_jitter_us(1, 2, a, 1000) != p.backoff_jitter_us(2, 1, a, 1000));
        assert!(differs, "per-pair backoff streams must be independent");
    }

    #[test]
    fn op_triggers_make_a_plan_unsafe() {
        let p = FaultPlan::new(2)
            .with_rank(1, FaultSpec { stall_after_ops: Some(10), ..FaultSpec::default() });
        assert!(!p.is_crash_free());
        let p = FaultPlan::new(2)
            .with_rank(1, FaultSpec { crash_after_ops: Some(10), ..FaultSpec::default() });
        assert!(!p.is_crash_free());
    }
}
