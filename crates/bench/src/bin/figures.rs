//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p pselinv-bench --bin figures -- all
//! cargo run --release -p pselinv-bench --bin figures -- table1 fig8a
//! cargo run --release -p pselinv-bench --bin figures -- --out results/ fig9
//! ```
//!
//! Artifacts (text + JSON/CSV) land in `target/figures/` by default.

use pselinv_bench::experiments::{self, OutDir};
use pselinv_bench::workloads;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "target/figures".to_string();
    let mut targets: Vec<String> = Vec::new();
    let mut seeds: u64 = 6;
    let mut grid: usize = 46;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next().expect("--out needs a path"),
            "--seeds" => {
                seeds = it.next().expect("--seeds needs a number").parse().expect("bad seed count")
            }
            "--grid" => {
                grid = it.next().expect("--grid needs a dimension").parse().expect("bad grid dim")
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        eprintln!(
            "usage: figures [--out DIR] [--seeds N] [--grid D] \
             {{all|table1|table2|fig4|fig5|fig6|fig7|fig8a|fig8b|fig9|trace\
             |hotspots|critpath|bench-smoke|perf|faults|async\
             |ablation-nic|ablation-shift|ablation-arity}}+"
        );
        std::process::exit(2);
    }
    if targets.iter().any(|t| t == "all") {
        targets = [
            "table1",
            "table2",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8a",
            "fig8b",
            "fig9",
            "trace",
            "hotspots",
            "critpath",
            "bench-smoke",
            "perf",
            "faults",
            "async",
            "ablation-nic",
            "ablation-shift",
            "ablation-arity",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let out = OutDir::new(&out_path).expect("cannot create output directory");
    for t in &targets {
        let t0 = Instant::now();
        let txt = match t.as_str() {
            "table1" => experiments::table1(&out),
            "table2" => experiments::table2(&out),
            "fig4" => experiments::fig4(&out),
            "fig5" => experiments::fig5(&out),
            "fig6" => experiments::fig6(&out),
            "fig7" => experiments::fig7(&out),
            "fig8a" => experiments::fig8(&workloads::dg_pnf_des(), seeds, &out, "a"),
            "fig8b" => experiments::fig8(&workloads::audikw_des(), seeds, &out, "b"),
            "fig9" => experiments::fig9(&out),
            "trace" => experiments::trace_profile(&out),
            "hotspots" => experiments::hotspots(&out, grid),
            "critpath" => experiments::critpath(&out, grid),
            "bench-smoke" => experiments::bench_smoke(&out),
            "perf" => experiments::perf(&out),
            "faults" => experiments::faults(&out),
            "async" => experiments::async_overlap(&out),
            "ablation-nic" => experiments::ablation_nic(&out),
            "ablation-shift" => experiments::ablation_shift(&out),
            "ablation-arity" => experiments::ablation_arity(&out),
            other => {
                eprintln!("unknown target: {other}");
                std::process::exit(2);
            }
        }
        .unwrap_or_else(|e| panic!("experiment {t} failed: {e}"));
        println!("{txt}");
        eprintln!("[{t} done in {:.1?}; artifacts in {out_path}]", t0.elapsed());
    }
}
