//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p pselinv-bench --bin figures -- all
//! cargo run --release -p pselinv-bench --bin figures -- table1 fig8a
//! cargo run --release -p pselinv-bench --bin figures -- --out results/ fig9
//! cargo run --release -p pselinv-bench --bin figures -- perf
//! cargo run --release -p pselinv-bench --bin figures -- regress
//! ```
//!
//! Artifacts (text + JSON/CSV) land in `target/figures/` by default. The
//! measured targets (`perf`, `async`, `pool`, `poles`, `faults`, `trace`) additionally
//! archive their machine-readable outputs into `results/runs/` so that
//! `regress` can diff the newest perf run against the committed baseline
//! (`results/baseline.json`); `regress` exits nonzero on regression.

use pselinv_bench::experiments::{self, OutDir};
use pselinv_bench::{regress, workloads};
use std::path::Path;
use std::time::Instant;

const USAGE: &str = "\
usage: figures [--out DIR] [--seeds N] [--grid D] TARGET+

paper artifacts:
  all        every target below (except regress/baseline)
  table1     Table I  — Col-Bcast volume per scheme (audikw_1 proxy, 46x46)
  table2     Table II — Row-Reduce volume per scheme
  fig4       volume histograms per scheme
  fig5-fig7  Pr x Pc heat maps (flat root hot spots vs shifted balance)
  fig8a/b    DES strong scaling (DG P3/audikw_1 proxies)
  fig9       time breakdown per phase

profiling & runtime:
  trace      traced numeric run: summary tables + Chrome trace exports
  hotspots   per-rank load heat maps from a traced run
  critpath   DES critical-path extraction
  bench-smoke smoke-sized kernel/collective benchmark table

measured targets (archived into results/runs/):
  perf       blocked-kernel throughput, zero-copy accounting, selinv walls
  async      async-engine overlap sweep
  pool       intra-rank task runtime: serial vs fork-join vs work-stealing
             pool wall times across thread counts (PSELINV_POOL_THREADS
             restricts the sweep), with bit-identity asserted per point
  poles      pole-batch engine: batched multi-shift selected inversions vs
             standalone per-pole runs, both under one modeled NIC latency
             (PSELINV_POLES_THREADS restricts the sweep,
             PSELINV_POLES_DELAY_US overrides the latency), with per-pole
             bit-identity + volume equality asserted
  faults     degraded-tree resilience under rank crashes
  recovery   live broadcast storm with online crash recovery (asserts
             100% survivor delivery vs the no-rebuild stranded baseline)
  ablation-nic|ablation-shift|ablation-arity  model ablations

perf-regression sentinel:
  regress    diff newest archived perf run vs results/baseline.json;
             exits 1 if any metric leaves its threshold band
  baseline   (re)write results/baseline.json from the newest perf run

options:
  --out DIR   artifact directory            (default target/figures)
  --seeds N   seeds per DES scaling point   (default 6)
  --grid D    grid dimension for hotspots/critpath (default 46)
  --help      this listing";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "target/figures".to_string();
    let mut targets: Vec<String> = Vec::new();
    let mut seeds: u64 = 6;
    let mut grid: usize = 46;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--out" => out_path = it.next().expect("--out needs a path"),
            "--seeds" => {
                seeds = it.next().expect("--seeds needs a number").parse().expect("bad seed count")
            }
            "--grid" => {
                grid = it.next().expect("--grid needs a dimension").parse().expect("bad grid dim")
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    if targets.iter().any(|t| t == "all") {
        targets = [
            "table1",
            "table2",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8a",
            "fig8b",
            "fig9",
            "trace",
            "hotspots",
            "critpath",
            "bench-smoke",
            "perf",
            "faults",
            "recovery",
            "async",
            "pool",
            "poles",
            "ablation-nic",
            "ablation-shift",
            "ablation-arity",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let out = OutDir::new(&out_path).expect("cannot create output directory");
    let runs_dir = Path::new(regress::RUNS_DIR);
    let baseline = Path::new(regress::BASELINE);
    for t in &targets {
        let t0 = Instant::now();
        let txt = match t.as_str() {
            "table1" => experiments::table1(&out),
            "table2" => experiments::table2(&out),
            "fig4" => experiments::fig4(&out),
            "fig5" => experiments::fig5(&out),
            "fig6" => experiments::fig6(&out),
            "fig7" => experiments::fig7(&out),
            "fig8a" => experiments::fig8(&workloads::dg_pnf_des(), seeds, &out, "a"),
            "fig8b" => experiments::fig8(&workloads::audikw_des(), seeds, &out, "b"),
            "fig9" => experiments::fig9(&out),
            "trace" => experiments::trace_profile(&out),
            "hotspots" => experiments::hotspots(&out, grid),
            "critpath" => experiments::critpath(&out, grid),
            "bench-smoke" => experiments::bench_smoke(&out),
            "perf" => experiments::perf(&out),
            "faults" => experiments::faults(&out),
            "recovery" => experiments::recovery(&out),
            "async" => experiments::async_overlap(&out),
            "pool" => experiments::pool_runtime(&out),
            "poles" => experiments::poles(&out),
            "ablation-nic" => experiments::ablation_nic(&out),
            "ablation-shift" => experiments::ablation_shift(&out),
            "ablation-arity" => experiments::ablation_arity(&out),
            "baseline" => regress::write_baseline(runs_dir, baseline),
            "regress" => match regress::regress(runs_dir, baseline) {
                Ok((txt, true)) => Ok(txt),
                Ok((txt, false)) => {
                    println!("{txt}");
                    std::process::exit(1);
                }
                Err(e) => Err(e),
            },
            other => {
                eprintln!("unknown target: {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
        .unwrap_or_else(|e| panic!("experiment {t} failed: {e}"));
        println!("{txt}");

        // Archive the measured targets so `regress` has a run history.
        let archived: Option<&[&str]> = match t.as_str() {
            "perf" => Some(&["BENCH_perf.json", "perf.txt"]),
            "async" => Some(&["BENCH_async.json", "async_overlap.txt"]),
            "pool" => Some(&["BENCH_pool.json", "pool.txt"]),
            "poles" => Some(&["BENCH_poles.json", "poles.txt"]),
            "faults" => Some(&["BENCH_fault.json", "faults.txt"]),
            "recovery" => Some(&["BENCH_recovery.json", "recovery.txt"]),
            "trace" => Some(&[
                "trace_profile.txt",
                "trace_flat_tree.trace.json",
                "trace_shifted_binary_tree.trace.json",
            ]),
            _ => None,
        };
        if let Some(files) = archived {
            let dir = regress::archive_run(Path::new(&out_path), runs_dir, t, files)
                .expect("cannot archive run");
            eprintln!("[archived into {}]", dir.display());
        }
        eprintln!("[{t} done in {:.1?}; artifacts in {out_path}]", t0.elapsed());
    }
}
