//! Perf-regression sentinel: a run registry plus a baseline differ.
//!
//! Every `figures -- perf|async|pool|faults|trace` invocation archives its
//! machine-readable artifacts into `results/runs/<NNN>-<target>/` next
//! to a `meta.json` (git revision, target, backend/seed context), so the
//! repository accumulates an append-only history of measured runs.
//! `figures -- regress` then extracts a fixed set of scalar metrics from
//! the newest archived perf run (plus the newest pool and poles runs,
//! when archived), compares each against the committed
//! baseline (`results/baseline.json`) under per-metric relative
//! thresholds, and reports pass/fail — the CI gate exits nonzero on any
//! regression.
//!
//! The metric set deliberately mixes deterministic invariants (copied
//! bytes, DES makespans — any drift is a real behavioural change) with
//! loosely-thresholded timing ratios (GEMM blocked-vs-naive speedup —
//! noisy on shared runners, so the threshold only catches collapse, e.g.
//! the blocked kernel silently falling back to the naive one).

use pselinv_trace::Json;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Default location of the run registry, relative to the working
/// directory (the repository root in CI).
pub const RUNS_DIR: &str = "results/runs";
/// Default location of the committed baseline.
pub const BASELINE: &str = "results/baseline.json";

/// One scalar metric extracted from a perf run, with its acceptance
/// band relative to the baseline value.
#[derive(Clone, Debug)]
pub struct Metric {
    pub name: &'static str,
    pub value: f64,
    /// Fail if `value < baseline * min_ratio`.
    pub min_ratio: Option<f64>,
    /// Fail if `value > baseline * max_ratio`.
    pub max_ratio: Option<f64>,
}

fn f(j: &Json, key: &str) -> Option<f64> {
    j.get(key).and_then(Json::as_f64)
}

/// Extracts the sentinel's metric set from a `BENCH_perf.json` document.
///
/// Returns `None` when the document does not look like a perf run.
pub fn perf_metrics(doc: &Json) -> Option<Vec<Metric>> {
    if doc.get("bench").and_then(Json::as_str) != Some("perf") {
        return None;
    }
    let mut m = Vec::new();
    let gemm = doc.get("gemm")?.as_arr()?;
    let min_speedup = gemm.iter().filter_map(|r| f(r, "speedup")).fold(f64::INFINITY, f64::min);
    if min_speedup.is_finite() {
        // Timing-based and noisy: the band only catches the blocked
        // kernel collapsing to naive throughput.
        m.push(Metric {
            name: "gemm_min_speedup",
            value: min_speedup,
            min_ratio: Some(0.35),
            max_ratio: None,
        });
    }
    let bc = doc.get("bcast_zero_copy")?;
    m.push(Metric {
        name: "bcast_copied_bytes",
        value: f(bc, "copied_bytes_measured")?,
        min_ratio: None,
        // Deterministic: any growth means a zero-copy path regressed to
        // physical copies.
        max_ratio: Some(1.5),
    });
    m.push(Metric {
        name: "bcast_logical_bytes",
        value: f(bc, "logical_sent_bytes")?,
        // Deterministic identity — must not move in either direction.
        min_ratio: Some(0.999),
        max_ratio: Some(1.001),
    });
    let selinv = doc.get("selinv")?.as_arr()?;
    let copied: f64 = selinv.iter().filter_map(|r| f(r, "bytes_copied")).sum();
    let sent: f64 = selinv.iter().filter_map(|r| f(r, "bytes_sent")).sum();
    m.push(Metric {
        name: "selinv_copied_bytes",
        value: copied,
        min_ratio: None,
        max_ratio: Some(1.5),
    });
    m.push(Metric {
        name: "selinv_logical_bytes",
        value: sent,
        min_ratio: Some(0.999),
        max_ratio: Some(1.001),
    });
    for r in selinv {
        if let (Some(name), Some(mk)) = (r.get("scheme").and_then(Json::as_str), f(r, "makespan_s"))
        {
            if name.contains("Shifted") {
                // DES makespan is deterministic; small band for model tweaks.
                m.push(Metric {
                    name: "selinv_makespan_shifted_s",
                    value: mk,
                    min_ratio: None,
                    max_ratio: Some(1.10),
                });
            }
        }
    }
    Some(m)
}

/// Extracts the sentinel's metric set from a `BENCH_pool.json` document.
///
/// Returns `None` when the document does not look like a pool run. The
/// headline band guards the tentpole claim: the persistent pool's wall-
/// time advantage over per-window fork-join at 4 workers must not
/// collapse. Timing-based, so the floor only catches the pool degrading
/// to (or below) fork-join cost, not run-to-run noise.
pub fn pool_metrics(doc: &Json) -> Option<Vec<Metric>> {
    if doc.get("bench").and_then(Json::as_str) != Some("pool") {
        return None;
    }
    let mut m = Vec::new();
    let mut speedups_t4 = Vec::new();
    for s in doc.get("schemes")?.as_arr()? {
        for p in s.get("points")?.as_arr()? {
            if f(p, "threads") == Some(4.0) {
                speedups_t4.extend(f(p, "pool_speedup_vs_forkjoin"));
            }
        }
    }
    let min_speedup = speedups_t4.iter().copied().fold(f64::INFINITY, f64::min);
    if min_speedup.is_finite() {
        // A same-machine ratio, so portable across runners (absolute wall
        // times are deliberately not tracked). The 0.66 floor pins the
        // acceptance bar: with the ~2.3x baseline the pool must stay at
        // least ~1.5x ahead of fork-join.
        m.push(Metric {
            name: "pool_min_speedup_vs_fj_t4",
            value: min_speedup,
            min_ratio: Some(0.66),
            max_ratio: None,
        });
    }
    (!m.is_empty()).then_some(m)
}

/// Extracts the sentinel's metric set from a `BENCH_poles.json` document.
///
/// Returns `None` when the document does not look like a poles run. The
/// band guards the pole-batch claim: batching the poles through one
/// shared plan must stay well ahead of running them standalone
/// back-to-back at 4 threads. Timing-based; the floor only catches the
/// batch's advantage collapsing, not runner noise.
pub fn poles_metrics(doc: &Json) -> Option<Vec<Metric>> {
    if doc.get("bench").and_then(Json::as_str) != Some("poles") {
        return None;
    }
    let mut best = f64::NEG_INFINITY;
    for p in doc.get("points")?.as_arr()? {
        // Only points where poles may actually race: `max_inflight == 1`
        // is the batch degraded to back-to-back poles, not the claim.
        if f(p, "threads") == Some(4.0) && f(p, "max_inflight").is_some_and(|m| m > 1.0) {
            best = best.max(f(p, "batched_speedup_vs_sequential")?);
        }
    }
    let mut m = Vec::new();
    if best.is_finite() {
        // Same-machine ratio like the pool metric. With the ~1.5x
        // acceptance bar, the 0.6 floor trips once batching stops paying
        // for itself (speedup near or below 1.0).
        m.push(Metric {
            name: "poles_batched_speedup_t4",
            value: best,
            min_ratio: Some(0.6),
            max_ratio: None,
        });
    }
    (!m.is_empty()).then_some(m)
}

/// Every metric the sentinel tracks: the newest archived perf run
/// (required) plus, when archived, the newest pool and poles runs.
fn all_metrics(runs_dir: &Path) -> std::io::Result<(PathBuf, Vec<Metric>)> {
    let (dir, doc) = latest_artifact(runs_dir, "BENCH_perf.json").ok_or_else(|| {
        std::io::Error::other(format!(
            "no archived perf run under {}; run `figures -- perf` first",
            runs_dir.display()
        ))
    })?;
    let mut metrics = perf_metrics(&doc)
        .ok_or_else(|| std::io::Error::other("archived BENCH_perf.json is not a perf document"))?;
    if let Some((_, pdoc)) = latest_artifact(runs_dir, "BENCH_pool.json") {
        metrics.extend(pool_metrics(&pdoc).unwrap_or_default());
    }
    if let Some((_, pdoc)) = latest_artifact(runs_dir, "BENCH_poles.json") {
        metrics.extend(poles_metrics(&pdoc).unwrap_or_default());
    }
    Ok((dir, metrics))
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Archives the named artifact files of a just-finished `figures` target
/// from `out_dir` into `<runs_dir>/<NNN>-<target>/`, with a `meta.json`
/// recording the target, git revision and the archived file list. `NNN`
/// is one past the highest existing run number, so the registry is
/// append-only and `latest run` is well-defined. Files listed but not
/// produced by the target are skipped silently (e.g. optional exports).
pub fn archive_run(
    out_dir: &Path,
    runs_dir: &Path,
    target: &str,
    files: &[&str],
) -> std::io::Result<PathBuf> {
    fs::create_dir_all(runs_dir)?;
    let next = next_run_number(runs_dir)?;
    let run_dir = runs_dir.join(format!("{next:03}-{target}"));
    fs::create_dir_all(&run_dir)?;
    let mut archived = Vec::new();
    for name in files {
        let src = out_dir.join(name);
        if src.is_file() {
            fs::copy(&src, run_dir.join(name))?;
            archived.push(Json::from(*name));
        }
    }
    let meta = Json::obj([
        ("target", Json::from(target)),
        ("run", (next as f64).into()),
        ("git_rev", Json::from(git_rev().as_str())),
        ("files", Json::Arr(archived)),
    ]);
    fs::write(run_dir.join("meta.json"), meta.to_string_pretty())?;
    Ok(run_dir)
}

fn next_run_number(runs_dir: &Path) -> std::io::Result<u32> {
    let mut max = 0u32;
    for e in fs::read_dir(runs_dir)? {
        let name = e?.file_name();
        let name = name.to_string_lossy();
        if let Some((num, _)) = name.split_once('-') {
            if let Ok(n) = num.parse::<u32>() {
                max = max.max(n);
            }
        }
    }
    Ok(max + 1)
}

/// Finds the newest archived run containing `artifact` and parses it.
pub fn latest_artifact(runs_dir: &Path, artifact: &str) -> Option<(PathBuf, Json)> {
    let mut best: Option<(u32, PathBuf)> = None;
    for e in fs::read_dir(runs_dir).ok()? {
        let path = e.ok()?.path();
        let name = path.file_name()?.to_string_lossy().to_string();
        let num: u32 = name.split_once('-')?.0.parse().ok()?;
        if path.join(artifact).is_file() && best.as_ref().is_none_or(|(n, _)| num > *n) {
            best = Some((num, path));
        }
    }
    let (_, dir) = best?;
    let text = fs::read_to_string(dir.join(artifact)).ok()?;
    Json::parse(&text).ok().map(|j| (dir, j))
}

/// Writes `results/baseline.json` from the newest archived perf run
/// (plus the newest pool run, when one exists).
pub fn write_baseline(runs_dir: &Path, baseline: &Path) -> std::io::Result<String> {
    let (dir, metrics) = all_metrics(runs_dir)?;
    let entries: Vec<(String, Json)> = metrics
        .iter()
        .map(|m| {
            let mut fields = vec![("value".to_string(), Json::from(m.value))];
            if let Some(r) = m.min_ratio {
                fields.push(("min_ratio".to_string(), r.into()));
            }
            if let Some(r) = m.max_ratio {
                fields.push(("max_ratio".to_string(), r.into()));
            }
            (m.name.to_string(), Json::Obj(fields))
        })
        .collect();
    let doc = Json::obj([
        ("baseline_of", Json::from(dir.file_name().unwrap().to_string_lossy().as_ref())),
        ("git_rev", Json::from(git_rev().as_str())),
        ("metrics", Json::Obj(entries)),
    ]);
    if let Some(parent) = baseline.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(baseline, doc.to_string_pretty())?;
    Ok(format!(
        "baseline written to {} from {} ({} metrics)",
        baseline.display(),
        dir.display(),
        metrics.len()
    ))
}

/// Compares one metric against its baseline entry. Returns the rendered
/// row and whether it passed.
fn check(m: &Metric, base: &Json) -> (String, bool) {
    let Some(bv) = base.get("value").and_then(Json::as_f64) else {
        return (format!("  {:<26} SKIP (no baseline value)", m.name), true);
    };
    let min_ratio = base.get("min_ratio").and_then(Json::as_f64).or(m.min_ratio);
    let max_ratio = base.get("max_ratio").and_then(Json::as_f64).or(m.max_ratio);
    let ratio = if bv != 0.0 { m.value / bv } else { f64::INFINITY };
    let mut ok = true;
    let mut why = String::new();
    if let Some(r) = min_ratio {
        if ratio < r {
            ok = false;
            let _ = write!(why, " < {r:.2}x floor");
        }
    }
    if let Some(r) = max_ratio {
        if ratio > r {
            ok = false;
            let _ = write!(why, " > {r:.2}x ceiling");
        }
    }
    let row = format!(
        "  {:<26} {:>14.4} vs {:>14.4} ({:>6.3}x) {}{}",
        m.name,
        m.value,
        bv,
        ratio,
        if ok { "ok" } else { "REGRESSION" },
        why
    );
    (row, ok)
}

/// The `figures -- regress` entry point: diff the newest archived perf
/// run against the committed baseline. Returns the rendered report and
/// whether every metric stayed inside its band.
pub fn regress(runs_dir: &Path, baseline: &Path) -> std::io::Result<(String, bool)> {
    let base_text = fs::read_to_string(baseline).map_err(|e| {
        std::io::Error::other(format!(
            "cannot read baseline {} ({e}); run `figures -- perf` then `figures -- baseline`",
            baseline.display()
        ))
    })?;
    let base = Json::parse(&base_text)
        .map_err(|e| std::io::Error::other(format!("baseline is not valid JSON: {e}")))?;
    let base_metrics = base
        .get("metrics")
        .ok_or_else(|| std::io::Error::other("baseline has no `metrics` object"))?;
    let (dir, metrics) = all_metrics(runs_dir)?;

    let mut txt =
        format!("Perf regression check: {} vs baseline {}\n", dir.display(), baseline.display());
    let mut all_ok = true;
    for m in &metrics {
        match base_metrics.get(m.name) {
            Some(b) => {
                let (row, ok) = check(m, b);
                all_ok &= ok;
                txt.push_str(&row);
                txt.push('\n');
            }
            None => {
                let _ = writeln!(txt, "  {:<26} NEW (not in baseline)", m.name);
            }
        }
    }
    let _ = writeln!(txt, "{}", if all_ok { "PASS" } else { "FAIL: perf regression detected" });
    Ok((txt, all_ok))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perf_doc(copied: f64, speedup: f64) -> Json {
        Json::obj([
            ("bench", "perf".into()),
            (
                "gemm",
                Json::from(vec![
                    Json::obj([("speedup", speedup.into())]),
                    Json::obj([("speedup", (speedup * 2.0).into())]),
                ]),
            ),
            (
                "bcast_zero_copy",
                Json::obj([
                    ("copied_bytes_measured", copied.into()),
                    ("logical_sent_bytes", 1000.0.into()),
                ]),
            ),
            (
                "selinv",
                Json::from(vec![Json::obj([
                    ("scheme", "Shifted Binary-Tree".into()),
                    ("bytes_copied", 50.0.into()),
                    ("bytes_sent", 200.0.into()),
                    ("makespan_s", 1.25.into()),
                ])]),
            ),
        ])
    }

    fn pool_doc(speedup: f64) -> Json {
        Json::obj([
            ("bench", "pool".into()),
            (
                "schemes",
                Json::from(vec![Json::obj([
                    ("scheme", "Flat-Tree".into()),
                    (
                        "points",
                        Json::from(vec![
                            Json::obj([
                                ("threads", 2.0.into()),
                                ("pool_speedup_vs_forkjoin", (speedup * 3.0).into()),
                            ]),
                            Json::obj([
                                ("threads", 4.0.into()),
                                ("pool_speedup_vs_forkjoin", speedup.into()),
                            ]),
                        ]),
                    ),
                ])]),
            ),
        ])
    }

    fn poles_doc(speedup: f64) -> Json {
        Json::obj([
            ("bench", "poles".into()),
            (
                "points",
                Json::from(vec![
                    // Degraded point (no racing) must be ignored…
                    Json::obj([
                        ("threads", 4.0.into()),
                        ("max_inflight", 1.0.into()),
                        ("batched_speedup_vs_sequential", (speedup * 4.0).into()),
                    ]),
                    // …as must other thread counts.
                    Json::obj([
                        ("threads", 2.0.into()),
                        ("max_inflight", 6.0.into()),
                        ("batched_speedup_vs_sequential", (speedup * 3.0).into()),
                    ]),
                    Json::obj([
                        ("threads", 4.0.into()),
                        ("max_inflight", 6.0.into()),
                        ("batched_speedup_vs_sequential", speedup.into()),
                    ]),
                ]),
            ),
        ])
    }

    #[test]
    fn poles_metric_extraction_reads_racing_threads4_points() {
        let m = poles_metrics(&poles_doc(1.8)).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].name, "poles_batched_speedup_t4");
        assert_eq!(m[0].value, 1.8);
        assert!(poles_metrics(&Json::obj([("bench", "pool".into())])).is_none());
    }

    #[test]
    fn regress_covers_an_archived_poles_run() {
        let tmp = std::env::temp_dir().join("pselinv_regress_poles_test");
        let _ = fs::remove_dir_all(&tmp);
        let runs = tmp.join("runs");
        let out = tmp.join("figures");
        fs::create_dir_all(&out).unwrap();
        fs::write(out.join("BENCH_perf.json"), perf_doc(100.0, 2.0).to_string_pretty()).unwrap();
        archive_run(&out, &runs, "perf", &["BENCH_perf.json"]).unwrap();
        fs::write(out.join("BENCH_poles.json"), poles_doc(1.8).to_string_pretty()).unwrap();
        archive_run(&out, &runs, "poles", &["BENCH_poles.json"]).unwrap();

        let baseline = tmp.join("baseline.json");
        write_baseline(&runs, &baseline).unwrap();
        let (report, ok) = regress(&runs, &baseline).unwrap();
        assert!(ok, "self-compare must pass:\n{report}");
        assert!(report.contains("poles_batched_speedup_t4"));

        // The batch's advantage collapsing must fail the gate.
        fs::write(out.join("BENCH_poles.json"), poles_doc(0.8).to_string_pretty()).unwrap();
        archive_run(&out, &runs, "poles", &["BENCH_poles.json"]).unwrap();
        let (report, ok) = regress(&runs, &baseline).unwrap();
        assert!(!ok, "collapsed pole-batch speedup must fail:\n{report}");
        assert!(report.contains("poles_batched_speedup_t4"));
        let _ = fs::remove_dir_all(&tmp);
    }

    #[test]
    fn pool_metric_extraction_reads_the_threads4_point() {
        let m = pool_metrics(&pool_doc(2.4)).unwrap();
        let by_name = |n: &str| m.iter().find(|x| x.name == n).unwrap().value;
        assert_eq!(by_name("pool_min_speedup_vs_fj_t4"), 2.4);
        assert!(pool_metrics(&Json::obj([("bench", "perf".into())])).is_none());
    }

    #[test]
    fn regress_covers_an_archived_pool_run() {
        let tmp = std::env::temp_dir().join("pselinv_regress_pool_test");
        let _ = fs::remove_dir_all(&tmp);
        let runs = tmp.join("runs");
        let out = tmp.join("figures");
        fs::create_dir_all(&out).unwrap();
        fs::write(out.join("BENCH_perf.json"), perf_doc(100.0, 2.0).to_string_pretty()).unwrap();
        archive_run(&out, &runs, "perf", &["BENCH_perf.json"]).unwrap();
        fs::write(out.join("BENCH_pool.json"), pool_doc(2.4).to_string_pretty()).unwrap();
        archive_run(&out, &runs, "pool", &["BENCH_pool.json"]).unwrap();

        let baseline = tmp.join("baseline.json");
        write_baseline(&runs, &baseline).unwrap();
        let (report, ok) = regress(&runs, &baseline).unwrap();
        assert!(ok, "self-compare must pass:\n{report}");
        assert!(report.contains("pool_min_speedup_vs_fj_t4"));

        // The pool's fork-join advantage collapsing must fail the gate.
        fs::write(out.join("BENCH_pool.json"), pool_doc(0.9).to_string_pretty()).unwrap();
        archive_run(&out, &runs, "pool", &["BENCH_pool.json"]).unwrap();
        let (report, ok) = regress(&runs, &baseline).unwrap();
        assert!(!ok, "collapsed pool speedup must fail:\n{report}");
        assert!(report.contains("pool_min_speedup_vs_fj_t4"));
        let _ = fs::remove_dir_all(&tmp);
    }

    #[test]
    fn metric_extraction_reads_the_perf_document() {
        let m = perf_metrics(&perf_doc(100.0, 2.0)).unwrap();
        let by_name = |n: &str| m.iter().find(|x| x.name == n).unwrap().value;
        assert_eq!(by_name("gemm_min_speedup"), 2.0);
        assert_eq!(by_name("bcast_copied_bytes"), 100.0);
        assert_eq!(by_name("selinv_makespan_shifted_s"), 1.25);
        assert!(perf_metrics(&Json::obj([("bench", "faults".into())])).is_none());
    }

    #[test]
    fn regress_passes_on_self_compare_and_fails_on_degraded_run() {
        let tmp = std::env::temp_dir().join("pselinv_regress_test");
        let _ = fs::remove_dir_all(&tmp);
        let runs = tmp.join("runs");
        let out = tmp.join("figures");
        fs::create_dir_all(&out).unwrap();
        fs::write(out.join("BENCH_perf.json"), perf_doc(100.0, 2.0).to_string_pretty()).unwrap();
        archive_run(&out, &runs, "perf", &["BENCH_perf.json"]).unwrap();

        let baseline = tmp.join("baseline.json");
        write_baseline(&runs, &baseline).unwrap();

        // Self-compare: every ratio is exactly 1.0.
        let (report, ok) = regress(&runs, &baseline).unwrap();
        assert!(ok, "self-compare must pass:\n{report}");

        // Degraded run: copied bytes ballooned, blocked kernel collapsed.
        fs::write(out.join("BENCH_perf.json"), perf_doc(6400.0, 0.5).to_string_pretty()).unwrap();
        let run2 = archive_run(&out, &runs, "perf", &["BENCH_perf.json"]).unwrap();
        assert!(run2.file_name().unwrap().to_string_lossy().starts_with("002-"));
        let (report, ok) = regress(&runs, &baseline).unwrap();
        assert!(!ok, "degraded run must fail:\n{report}");
        assert!(report.contains("REGRESSION"));

        // meta.json records target and run number.
        let meta = Json::parse(&fs::read_to_string(run2.join("meta.json")).unwrap()).unwrap();
        assert_eq!(meta.get("target").and_then(Json::as_str), Some("perf"));
        assert_eq!(meta.get("run").and_then(Json::as_f64), Some(2.0));
        let _ = fs::remove_dir_all(&tmp);
    }
}
