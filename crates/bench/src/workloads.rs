//! Proxy workloads and analysis settings for the experiments.
//!
//! `DESIGN.md` §2 documents the substitutions: the UF-collection and DGDFT
//! matrices of the paper are replaced by FEM-style and DG-style generators
//! in the same structural regimes, scaled to a single-core budget. The
//! *volume* experiments (Tables I/II, Figs. 4–7) depend only on the
//! supernodal structure and run at the paper's 46×46 grid unchanged; the
//! *timing* experiments (Figs. 8–9) replay task graphs on the simulated
//! machine described by [`des_machine`].

use pselinv_des::MachineConfig;
use pselinv_order::nd::NdOptions;
use pselinv_order::supernodes::SupernodeOptions;
use pselinv_order::{analyze, AnalyzeOptions, OrderingChoice, SymbolicFactor};
use pselinv_sparse::gen::{self, Workload};
use std::sync::Arc;

/// Analysis tuned for structure experiments: geometric ND, moderate
/// supernodes, no true-structure tracking (not needed without numerics).
pub fn analyze_structure(w: &Workload, max_width: usize, leaf: usize) -> Arc<SymbolicFactor> {
    let opts = AnalyzeOptions {
        ordering: OrderingChoice::NestedDissection(w.geometry, NdOptions { leaf_size: leaf }),
        supernode: SupernodeOptions {
            max_width,
            relax_small: max_width / 4,
            relax_zero_fraction: 0.3,
        },
        track_true_structure: false,
    };
    Arc::new(analyze(&w.matrix.pattern(), &opts))
}

/// A named, analyzed workload.
pub struct Analyzed {
    /// Proxy name (paper matrix it stands in for).
    pub name: String,
    /// Matrix order.
    pub n: usize,
    /// Nonzeros of `A`.
    pub nnz_a: usize,
    /// Stored nonzeros of the factor.
    pub nnz_l: usize,
    /// The symbolic factorization.
    pub symbolic: Arc<SymbolicFactor>,
}

fn analyzed(w: Workload, paper_name: &str, max_width: usize, leaf: usize) -> Analyzed {
    let sf = analyze_structure(&w, max_width, leaf);
    Analyzed {
        name: format!("{paper_name} (proxy: {})", w.name),
        n: w.matrix.nrows(),
        nnz_a: w.matrix.nnz(),
        nnz_l: sf.nnz_factor(),
        symbolic: sf,
    }
}

/// audikw_1 proxy for the volume experiments (Tables I, II; Figs. 4–7).
pub fn audikw_volume() -> Analyzed {
    analyzed(gen::fem_3d(20, 20, 20, 3, 0xaadc), "audikw_1", 32, 4)
}

/// Flan_1565 proxy (Table II).
pub fn flan_volume() -> Analyzed {
    analyzed(gen::fem_3d(22, 22, 20, 3, 0xf1a5), "Flan_1565", 32, 4)
}

/// DG_PNF14000 proxy (Table II; Figs. 8a, 9).
pub fn dg_pnf_volume() -> Analyzed {
    analyzed(gen::dg_hamiltonian(26, 26, 1, 24, 0xd6f), "DG_PNF14000", 48, 1)
}

/// DG_Graphene_32768 proxy (Table II).
pub fn dg_graphene_volume() -> Analyzed {
    analyzed(gen::dg_hamiltonian(32, 32, 1, 24, 0x96a), "DG_Graphene_32768", 48, 1)
}

/// DG_Water_12888 proxy (Table II).
pub fn dg_water_volume() -> Analyzed {
    analyzed(gen::dg_hamiltonian(8, 8, 8, 16, 0x3a7e4), "DG_Water_12888", 32, 1)
}

/// LU_C_BN_C_4by2 proxy (Table II).
pub fn lu_c_bn_c_volume() -> Analyzed {
    analyzed(gen::dg_hamiltonian(32, 8, 2, 16, 0x1cbc), "LU_C_BN_C_4by2", 32, 1)
}

/// All six Table II workloads, in the paper's row order.
pub fn table2_workloads() -> Vec<Analyzed> {
    vec![
        dg_graphene_volume(),
        dg_pnf_volume(),
        dg_water_volume(),
        lu_c_bn_c_volume(),
        audikw_volume(),
        flan_volume(),
    ]
}

/// audikw_1 proxy for the DES timing experiments (Fig. 8b).
pub fn audikw_des() -> Analyzed {
    analyzed(gen::fem_3d(24, 24, 24, 3, 0xaadc), "audikw_1", 48, 4)
}

/// DG_PNF14000 proxy for the DES timing experiments (Figs. 8a, 9):
/// a quasi-3-D DG slab, giving the dense-block structure of the DG
/// Hamiltonians with enough elimination-tree depth for pipelining.
pub fn dg_pnf_des() -> Analyzed {
    analyzed(gen::dg_hamiltonian(16, 16, 4, 24, 0xd6f), "DG_PNF14000", 48, 1)
}

/// The simulated machine for Figs. 8–9 (see `DESIGN.md` §2).
///
/// A scaled-down Edison: 24 ranks/node sharing one oversubscribed node
/// NIC. Absolute bandwidth and flop rates are scaled with the ~25×-smaller
/// matrices so the communication:computation balance at P = 256 matches
/// the paper's regime; `seed` selects per-run node placement and link
/// jitter (the paper's run-to-run variability).
pub fn des_machine(seed: u64) -> MachineConfig {
    MachineConfig {
        ranks_per_node: 24,
        flops_per_sec: 2e9,
        bw_inter: 0.5e9,
        bw_intra: 4e9,
        node_bw_factor: 1.0,
        nic_per_node: true,
        forward_on_core: true,
        cpu_per_msg: 1.5e-6,
        msg_overhead: 1.2e-6,
        jitter: 0.35,
        seed,
        ..Default::default()
    }
}

/// The paper's processor counts for the strong-scaling study (Fig. 8),
/// thinned to keep the single-core replay affordable.
pub fn fig8_processor_counts() -> Vec<usize> {
    vec![64, 121, 256, 576, 1024, 2116, 4096, 6400, 8100, 12100]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_workloads_have_substantial_structure() {
        let a = audikw_volume();
        assert!(a.symbolic.num_supernodes() > 400, "too few supernodes");
        assert!(a.nnz_l > a.nnz_a);
    }

    #[test]
    fn table2_has_six_rows() {
        // construction only — generation+analysis of all six must succeed
        let all = table2_workloads();
        assert_eq!(all.len(), 6);
        for a in &all {
            assert!(a.symbolic.num_supernodes() > 50, "{}: too coarse", a.name);
        }
    }

    #[test]
    fn des_machine_is_deterministic_per_seed() {
        let a = des_machine(3);
        let b = des_machine(3);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.bw_inter, b.bw_inter);
    }
}
