//! Experiment runners — one per paper artifact.
//!
//! Every runner prints a human-readable rendition of the table/figure and
//! writes machine-readable JSON/CSV next to it (default `target/figures/`).

use crate::workloads::{self, Analyzed};
use pselinv_chaos::{FaultPlan, FaultSpec};
use pselinv_des::{
    simulate, simulate_profiled, simulate_traced_with_meta, simulate_with_faults, SimResult,
};
use pselinv_dist::taskgraph::{
    factorization_graph, selinv_graph, GraphOptions, TaskGraph, TaskKind,
};
use pselinv_dist::{replay_volumes, Layout, VolumeReport};
use pselinv_mpisim::Grid2D;
use pselinv_profile::{CriticalPath, HotspotReport, Imbalance};
use pselinv_trace::{pack_task_tag, CollKind, Json};
use pselinv_trees::{CollectiveTree, TreeBuilder, TreeScheme, VolumeStats};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Seed used for every deterministic tree construction in the experiments.
pub const TREE_SEED: u64 = 0x5e11;

/// Output directory helper.
pub struct OutDir(PathBuf);

impl OutDir {
    /// Creates (if needed) and wraps an output directory.
    pub fn new(path: impl AsRef<Path>) -> std::io::Result<Self> {
        fs::create_dir_all(&path)?;
        Ok(Self(path.as_ref().to_path_buf()))
    }

    /// Writes a text artifact.
    pub fn write_text(&self, name: &str, content: &str) -> std::io::Result<()> {
        fs::write(self.0.join(name), content)
    }

    /// Writes a JSON artifact.
    pub fn write_json(&self, name: &str, value: &Json) -> std::io::Result<()> {
        fs::write(self.0.join(name), value.to_string_pretty())
    }
}

fn schemes_with_names() -> Vec<(&'static str, TreeScheme)> {
    vec![
        ("Flat-Tree", TreeScheme::Flat),
        ("Binary-Tree", TreeScheme::Binary),
        ("Shifted Binary-Tree", TreeScheme::ShiftedBinary),
    ]
}

fn replay(a: &Analyzed, grid: Grid2D, scheme: TreeScheme) -> VolumeReport {
    let layout = Layout::new(a.symbolic.clone(), grid);
    replay_volumes(&layout, TreeBuilder::new(scheme, TREE_SEED))
}

struct StatsRow {
    scheme: String,
    min_mb: f64,
    max_mb: f64,
    median_mb: f64,
    std_dev_mb: f64,
}

impl StatsRow {
    fn json(&self) -> Json {
        Json::obj([
            ("scheme", Json::from(self.scheme.as_str())),
            ("min_mb", self.min_mb.into()),
            ("max_mb", self.max_mb.into()),
            ("median_mb", self.median_mb.into()),
            ("std_dev_mb", self.std_dev_mb.into()),
        ])
    }
}

fn rows_json(rows: &[StatsRow]) -> Json {
    Json::from(rows.iter().map(StatsRow::json).collect::<Vec<_>>())
}

fn stats_row(name: &str, s: &VolumeStats) -> StatsRow {
    StatsRow {
        scheme: name.to_string(),
        min_mb: s.min,
        max_mb: s.max,
        median_mb: s.median,
        std_dev_mb: s.std_dev,
    }
}

fn render_stats_table(title: &str, rows: &[StatsRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<24} {:>10} {:>10} {:>10} {:>10}",
        "Communication tree", "Min", "Max", "Median", "Std. dev"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<24} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            r.scheme, r.min_mb, r.max_mb, r.median_mb, r.std_dev_mb
        );
    }
    out
}

/// Table I: volume *sent* during Col-Bcast (MB) for the audikw_1 proxy on
/// a 46×46 grid, per tree scheme (plus the rejected random-permutation
/// baseline discussed in §III).
pub fn table1(out: &OutDir) -> std::io::Result<String> {
    let a = workloads::audikw_volume();
    let grid = Grid2D::new(46, 46);
    let mut rows = Vec::new();
    for (name, scheme) in schemes_with_names() {
        let rep = replay(&a, grid, scheme);
        rows.push(stats_row(name, &rep.col_bcast_stats_mb()));
    }
    let rep = replay(&a, grid, TreeScheme::RandomPerm);
    rows.push(stats_row("Random-Permutation Tree", &rep.col_bcast_stats_mb()));
    let txt = render_stats_table(
        &format!("Table I: volume sent during Col-Bcast (MB), {}, 46x46 grid", a.name),
        &rows,
    );
    out.write_json("table1.json", &rows_json(&rows))?;
    out.write_text("table1.txt", &txt)?;
    Ok(txt)
}

/// Table II: volume *received* during Row-Reduce (MB) for the six
/// evaluation matrices on a 46×46 grid.
pub fn table2(out: &OutDir) -> std::io::Result<String> {
    let grid = Grid2D::new(46, 46);
    let mut txt = String::new();
    let mut all: Vec<(String, Vec<StatsRow>)> = Vec::new();
    for a in workloads::table2_workloads() {
        let mut rows = Vec::new();
        for (name, scheme) in schemes_with_names() {
            let rep = replay(&a, grid, scheme);
            rows.push(stats_row(name, &rep.row_reduce_stats_mb()));
        }
        txt.push_str(&render_stats_table(
            &format!("{}\n  n = {}, nnz(A) = {}, nnz(L) = {}", a.name, a.n, a.nnz_a, a.nnz_l),
            &rows,
        ));
        txt.push('\n');
        all.push((a.name.clone(), rows));
    }
    let txt = format!("Table II: volume received during Row-Reduce (MB), 46x46 grid\n\n{txt}");
    let json = Json::from(
        all.iter()
            .map(|(name, rows)| {
                Json::obj([("matrix", Json::from(name.as_str())), ("rows", rows_json(rows))])
            })
            .collect::<Vec<_>>(),
    );
    out.write_json("table2.json", &json)?;
    out.write_text("table2.txt", &txt)?;
    Ok(txt)
}

/// Fig. 4: per-rank Col-Bcast sent-volume histograms, per scheme.
pub fn fig4(out: &OutDir) -> std::io::Result<String> {
    let a = workloads::audikw_volume();
    let grid = Grid2D::new(46, 46);
    let mut txt = String::from("Fig. 4: Col-Bcast sent-volume distribution (MB)\n");
    let mut hists = Vec::new();
    for (name, scheme) in schemes_with_names() {
        let rep = replay(&a, grid, scheme);
        let (edges, counts) = VolumeReport::histogram_mb(&rep.col_bcast_sent, 24);
        let peak = counts.iter().copied().max().unwrap_or(1).max(1);
        let _ = writeln!(txt, "\n  {name}:");
        for (i, &c) in counts.iter().enumerate() {
            let bar = "#".repeat((c * 48).div_ceil(peak).min(48));
            let _ = writeln!(txt, "  {:>8.3}-{:<8.3} {:>5} {}", edges[i], edges[i + 1], c, bar);
        }
        hists.push(Json::obj([
            ("scheme", Json::from(name)),
            ("bin_edges_mb", Json::from(edges)),
            ("counts", Json::from(counts)),
        ]));
    }
    out.write_json("fig4.json", &Json::from(hists))?;
    out.write_text("fig4.txt", &txt)?;
    Ok(txt)
}

fn heatmap_csv(hm: &[Vec<f64>]) -> String {
    hm.iter()
        .map(|row| row.iter().map(|v| format!("{v:.6}")).collect::<Vec<_>>().join(","))
        .collect::<Vec<_>>()
        .join("\n")
}

fn heatmap_summary(name: &str, hm: &[Vec<f64>]) -> String {
    let flat: Vec<f64> = hm.iter().flatten().copied().collect();
    let mean = flat.iter().sum::<f64>() / flat.len() as f64;
    let max = flat.iter().cloned().fold(0.0, f64::max);
    let min = flat.iter().cloned().fold(f64::INFINITY, f64::min);
    let var = flat.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / flat.len() as f64;
    format!(
        "  {name}: min {:.3} MB, max {:.3} MB, mean {:.3} MB, std {:.3} MB ({:.1}% of mean)\n",
        min,
        max,
        mean,
        var.sqrt(),
        100.0 * var.sqrt() / mean
    )
}

/// Fig. 5: Col-Bcast sent-volume heat maps on the 46×46 grid (CSV per
/// scheme) plus summary statistics.
pub fn fig5(out: &OutDir) -> std::io::Result<String> {
    let a = workloads::audikw_volume();
    let grid = Grid2D::new(46, 46);
    let mut txt = String::from("Fig. 5: Col-Bcast sent-volume heat maps, 46x46 grid\n");
    for (name, scheme) in schemes_with_names() {
        let rep = replay(&a, grid, scheme);
        let hm = rep.col_bcast_heatmap_mb();
        let slug = name.to_lowercase().replace([' ', '-'], "_");
        out.write_text(&format!("fig5_{slug}.csv"), &heatmap_csv(&hm))?;
        txt.push_str(&heatmap_summary(name, &hm));
    }
    out.write_text("fig5.txt", &txt)?;
    Ok(txt)
}

/// Fig. 6: Flat-Tree Col-Bcast heat map on a 16×16 grid, and the paper's
/// observation that the relative spread shrinks at small scale.
pub fn fig6(out: &OutDir) -> std::io::Result<String> {
    let a = workloads::audikw_volume();
    let small = replay(&a, Grid2D::new(16, 16), TreeScheme::Flat);
    let large = replay(&a, Grid2D::new(46, 46), TreeScheme::Flat);
    let hm = small.col_bcast_heatmap_mb();
    out.write_text("fig6_flat_16x16.csv", &heatmap_csv(&hm))?;
    let s16 = small.col_bcast_stats_mb();
    let s46 = large.col_bcast_stats_mb();
    let rel16 = 100.0 * s16.std_dev / s16.mean;
    let rel46 = 100.0 * s46.std_dev / s46.mean;
    let txt = format!(
        "Fig. 6: Flat-Tree Col-Bcast heat map on 16x16 ({})\n\
         {}  relative std dev: {:.1}% on 16x16 vs {:.1}% on 46x46\n",
        a.name,
        heatmap_summary("Flat-Tree 16x16", &hm),
        rel16,
        rel46
    );
    out.write_text("fig6.txt", &txt)?;
    Ok(txt)
}

/// Fig. 7: Row-Reduce received-volume heat maps, Flat vs Shifted.
pub fn fig7(out: &OutDir) -> std::io::Result<String> {
    let a = workloads::audikw_volume();
    let grid = Grid2D::new(46, 46);
    let mut txt = String::from("Fig. 7: Row-Reduce received-volume heat maps, 46x46 grid\n");
    for (name, scheme) in
        [("Flat-Tree", TreeScheme::Flat), ("Shifted Binary-Tree", TreeScheme::ShiftedBinary)]
    {
        let rep = replay(&a, grid, scheme);
        let hm = rep.row_reduce_heatmap_mb();
        let slug = name.to_lowercase().replace([' ', '-'], "_");
        out.write_text(&format!("fig7_{slug}.csv"), &heatmap_csv(&hm))?;
        txt.push_str(&heatmap_summary(name, &hm));
    }
    out.write_text("fig7.txt", &txt)?;
    Ok(txt)
}

/// One strong-scaling series of Fig. 8.
#[derive(Clone)]
pub struct ScalingPoint {
    /// Processor count.
    pub p: usize,
    /// Mean makespan over the seeds (seconds).
    pub mean_s: f64,
    /// Standard deviation over the seeds.
    pub std_s: f64,
}

/// A named Fig. 8 curve.
#[derive(Clone)]
pub struct ScalingSeries {
    /// Variant label (as in the paper's legend).
    pub label: String,
    /// One point per processor count.
    pub points: Vec<ScalingPoint>,
}

impl ScalingSeries {
    /// Machine-readable form of the curve.
    pub fn json(&self) -> Json {
        Json::obj([
            ("label", Json::from(self.label.as_str())),
            (
                "points",
                Json::from(
                    self.points
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("p", p.p.into()),
                                ("mean_s", p.mean_s.into()),
                                ("std_s", p.std_s.into()),
                            ])
                        })
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
    }
}

fn run_seeds(g: &pselinv_dist::taskgraph::TaskGraph, seeds: u64) -> (f64, f64, SimResult) {
    let mut times = Vec::new();
    let mut last = None;
    for seed in 0..seeds {
        let r = simulate(g, workloads::des_machine(seed));
        times.push(r.makespan);
        last = Some(r);
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let var = times.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / times.len() as f64;
    (mean, var.sqrt(), last.unwrap())
}

/// Fig. 8: strong scaling of the selected inversion for one matrix, over
/// the five variants of the paper (SuperLU_DIST reference, v0.7.3
/// Flat-Tree, Flat-Tree, Binary-Tree, Shifted Binary-Tree).
pub fn fig8(a: &Analyzed, seeds: u64, out: &OutDir, tag: &str) -> std::io::Result<String> {
    let plist = workloads::fig8_processor_counts();
    let variants: Vec<(&str, TreeScheme, bool, bool)> = vec![
        // (label, scheme, pipelining, is_factorization)
        ("SuperLU_DIST (reference)", TreeScheme::ShiftedBinary, true, true),
        ("PSelInv v0.7.3 Flat-Tree", TreeScheme::Flat, false, false),
        ("PSelInv Flat-Tree", TreeScheme::Flat, true, false),
        ("PSelInv Binary-Tree", TreeScheme::Binary, true, false),
        ("PSelInv Shifted Binary-Tree", TreeScheme::ShiftedBinary, true, false),
    ];
    let mut series: Vec<ScalingSeries> = Vec::new();
    for (label, scheme, pipelining, is_fact) in &variants {
        let mut points = Vec::new();
        for &p in &plist {
            let grid = Grid2D::square_for(p);
            let layout = Layout::new(a.symbolic.clone(), grid);
            let opts = GraphOptions { scheme: *scheme, seed: TREE_SEED, pipelining: *pipelining };
            let g = if *is_fact {
                factorization_graph(&layout, &opts)
            } else {
                selinv_graph(&layout, &opts)
            };
            let (mean, std, _) = run_seeds(&g, seeds);
            points.push(ScalingPoint { p, mean_s: mean, std_s: std });
        }
        series.push(ScalingSeries { label: label.to_string(), points });
    }

    let mut txt = format!("Fig. 8{tag}: strong scaling, {} ({} seeds/point)\n", a.name, seeds);
    let _ = write!(txt, "{:>7}", "P");
    for s in &series {
        let _ = write!(txt, " | {:>28}", s.label);
    }
    txt.push('\n');
    for (i, &p) in plist.iter().enumerate() {
        let _ = write!(txt, "{p:>7}");
        for s in &series {
            let pt = &s.points[i];
            let _ = write!(txt, " | {:>17.4}s ±{:>7.4}", pt.mean_s, pt.std_s);
        }
        txt.push('\n');
    }

    // Headline numbers (paper §IV-B): speedup of Shifted over Flat, and
    // run-to-run σ reduction.
    let flat = &series[2];
    let shifted = &series[4];
    let mut best_speedup: f64 = 0.0;
    for (f, s) in flat.points.iter().zip(&shifted.points) {
        best_speedup = best_speedup.max(f.mean_s / s.mean_s);
    }
    let sigma_ratio: f64 = {
        let large: Vec<usize> =
            plist.iter().enumerate().filter(|(_, &p)| p >= 2116).map(|(i, _)| i).collect();
        let fsum: f64 = large.iter().map(|&i| flat.points[i].std_s).sum();
        let ssum: f64 = large.iter().map(|&i| shifted.points[i].std_s).sum();
        fsum / ssum.max(1e-12)
    };
    let _ = writeln!(
        txt,
        "\n  max Flat/Shifted speedup over the sweep: {best_speedup:.2}x\n  \
         run-to-run sigma ratio Flat/Shifted (P >= 2116): {sigma_ratio:.2}x"
    );

    let json = Json::from(series.iter().map(ScalingSeries::json).collect::<Vec<_>>());
    out.write_json(&format!("fig8{tag}.json"), &json)?;
    out.write_text(&format!("fig8{tag}.txt"), &txt)?;
    Ok(txt)
}

/// Fig. 9: computation vs communication time at P = 256 and P = 4,096,
/// Flat vs Shifted, for the DG proxy.
pub fn fig9(out: &OutDir) -> std::io::Result<String> {
    let a = workloads::dg_pnf_des();
    let mut txt = format!("Fig. 9: computation vs communication breakdown, {}\n", a.name);
    let mut rows: Vec<Json> = Vec::new();
    for (name, scheme) in
        [("Flat-Tree", TreeScheme::Flat), ("Shifted Binary-Tree", TreeScheme::ShiftedBinary)]
    {
        for p in [256usize, 4096] {
            let grid = Grid2D::square_for(p);
            let layout = Layout::new(a.symbolic.clone(), grid);
            let g =
                selinv_graph(&layout, &GraphOptions { scheme, seed: TREE_SEED, pipelining: true });
            let r = simulate(&g, workloads::des_machine(0));
            let _ = writeln!(
                txt,
                "  {name:<22} P={p:<5}: computation {:.4}s, communication {:.4}s (ratio {:.2})",
                r.compute_time_mean(),
                r.comm_time_mean(),
                r.comm_to_comp()
            );
            rows.push(Json::obj([
                ("scheme", Json::from(name)),
                ("p", p.into()),
                ("compute_s", r.compute_time_mean().into()),
                ("comm_s", r.comm_time_mean().into()),
                ("ratio", r.comm_to_comp().into()),
            ]));
        }
    }
    out.write_json("fig9.json", &Json::from(rows))?;
    out.write_text("fig9.txt", &txt)?;
    Ok(txt)
}

/// Traced per-rank profile: runs the *real* numeric selected inversion on
/// the mpisim backend with tracing enabled, prints the per-rank Table-I
/// style summary (min/max/σ per collective kind), writes one Chrome
/// trace-event JSON per scheme, and cross-checks the traced Col-Bcast
/// bytes against the structural volume replay — measured and predicted
/// volumes must agree exactly.
pub fn trace_profile(out: &OutDir) -> std::io::Result<String> {
    use pselinv_dist::{distributed_selinv_traced, DistOptions};
    use pselinv_order::{analyze, AnalyzeOptions};
    use pselinv_trace::chrome::{to_chrome, validate_chrome};
    use pselinv_trace::CollKind;
    use std::sync::Arc;

    let w = pselinv_sparse::gen::fem_3d(6, 6, 6, 1, 0x7ace);
    let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
    let f = pselinv_factor::factorize(&w.matrix, sf.clone()).expect("proxy FEM matrix must factor");
    let grid = Grid2D::new(3, 3);
    let mut txt = format!(
        "Traced per-rank profile: numeric selected inversion of {} (n = {}) on a 3x3 grid\n\n",
        w.name,
        w.matrix.nrows()
    );
    for (name, scheme) in
        [("Flat-Tree", TreeScheme::Flat), ("Shifted Binary-Tree", TreeScheme::ShiftedBinary)]
    {
        let opts =
            DistOptions { scheme, seed: TREE_SEED, threads: 1, lookahead: 1, ..Default::default() };
        let (_, _, trace) = distributed_selinv_traced(&f, grid, &opts, name);
        // Measured bytes must equal the structural prediction exactly.
        let layout = Layout::new(sf.clone(), grid);
        let rep = replay_volumes(&layout, TreeBuilder::new(scheme, TREE_SEED));
        assert_eq!(
            trace.sent_bytes(CollKind::ColBcast),
            rep.col_bcast_sent,
            "{name}: traced Col-Bcast bytes diverge from the volume replay"
        );
        assert_eq!(
            trace.recv_bytes(CollKind::RowReduce),
            rep.row_reduce_received,
            "{name}: traced Row-Reduce bytes diverge from the volume replay"
        );
        let _ = writeln!(txt, "{}", trace.summary_table());
        let chrome = to_chrome(&trace);
        let n_events = validate_chrome(&chrome).expect("chrome export must be well-formed");
        let slug = name.to_lowercase().replace([' ', '-'], "_");
        out.write_json(&format!("trace_{slug}.trace.json"), &chrome)?;
        let _ = writeln!(txt, "  [{n_events} chrome trace events -> trace_{slug}.trace.json]\n");
    }
    out.write_text("trace_profile.txt", &txt)?;
    Ok(txt)
}

/// Ablation: NIC contention on/off (shows end-point contention is what
/// separates the schemes), on the DG proxy at P = 2,116.
pub fn ablation_nic(out: &OutDir) -> std::io::Result<String> {
    let a = workloads::dg_pnf_des();
    let grid = Grid2D::new(46, 46);
    let layout = Layout::new(a.symbolic.clone(), grid);
    let mut txt = String::from("Ablation: NIC contention, P = 2116\n");
    for (name, scheme) in schemes_with_names() {
        let g = selinv_graph(&layout, &GraphOptions { scheme, seed: TREE_SEED, pipelining: true });
        let on = simulate(&g, workloads::des_machine(0)).makespan;
        let mut cfg = workloads::des_machine(0);
        cfg.nic_contention = false;
        let off = simulate(&g, cfg).makespan;
        let _ = writeln!(
            txt,
            "  {name:<22}: contention on {on:.4}s, off {off:.4}s (inflation {:.2}x)",
            on / off
        );
    }
    out.write_text("ablation_nic.txt", &txt)?;
    Ok(txt)
}

/// Ablation: shift strategy — none (plain binary), circular shift, full
/// random permutation, hybrid threshold — measured on Col-Bcast volume
/// balance (the paper's §III argument for the circular shift).
pub fn ablation_shift(out: &OutDir) -> std::io::Result<String> {
    let a = workloads::audikw_volume();
    let grid = Grid2D::new(46, 46);
    let mut txt = String::from("Ablation: shift strategy (Col-Bcast sent volume, MB)\n");
    let mut rows = Vec::new();
    for (name, scheme) in [
        ("Binary (no shift)", TreeScheme::Binary),
        ("Shifted Binary", TreeScheme::ShiftedBinary),
        ("Random permutation", TreeScheme::RandomPerm),
        ("Hybrid (flat <= 8)", TreeScheme::Hybrid { flat_threshold: 8 }),
        ("Hybrid (flat <= 24)", TreeScheme::Hybrid { flat_threshold: 24 }),
    ] {
        let rep = replay(&a, grid, scheme);
        let s = rep.col_bcast_stats_mb();
        rows.push(stats_row(name, &s));
    }
    txt.push_str(&render_stats_table("", &rows));
    out.write_json("ablation_shift.json", &rows_json(&rows))?;
    out.write_text("ablation_shift.txt", &txt)?;
    Ok(txt)
}

/// Ablation: tree arity — depth vs root fan-out, both on volume balance
/// and on simulated time at P = 2,116 (DESIGN.md §6).
pub fn ablation_arity(out: &OutDir) -> std::io::Result<String> {
    let a = workloads::dg_pnf_des();
    let grid = Grid2D::new(46, 46);
    let layout = Layout::new(a.symbolic.clone(), grid);
    let mut txt = String::from("Ablation: tree arity, P = 2116\n");
    let mut rows = Vec::new();
    for arity in [2usize, 3, 4, 8, 16] {
        let scheme = TreeScheme::ShiftedKary { arity };
        let rep = replay_volumes(&layout, TreeBuilder::new(scheme, TREE_SEED));
        let s = rep.col_bcast_stats_mb();
        let g = selinv_graph(&layout, &GraphOptions { scheme, seed: TREE_SEED, pipelining: true });
        let (mean, _, _) = run_seeds(&g, 3);
        let _ = writeln!(
            txt,
            "  shifted {arity:>2}-ary: time {mean:.4}s, col-bcast max {:.3} MB, std {:.3} MB",
            s.max, s.std_dev
        );
        rows.push((arity, mean, s.max, s.std_dev));
    }
    let json = Json::from(
        rows.into_iter()
            .map(|(arity, time_s, max_mb, std_mb)| {
                Json::obj([
                    ("arity", arity.into()),
                    ("time_s", time_s.into()),
                    ("max_mb", max_mb.into()),
                    ("std_mb", std_mb.into()),
                ])
            })
            .collect::<Vec<_>>(),
    );
    out.write_json("ablation_arity.json", &json)?;
    out.write_text("ablation_arity.txt", &txt)?;
    Ok(txt)
}

/// Hot-spot analysis: per-rank × per-collective load heat maps with
/// imbalance ratios, from a *traced* DES replay of the full selected
/// inversion on a `grid_dim × grid_dim` grid. The traced byte loads are
/// cross-checked against the structural volume replay (they must agree
/// exactly), and the headline comparison — Binary's striping vs the
/// Shifted tree's balance — is printed as max/mean ratios.
pub fn hotspots(out: &OutDir, grid_dim: usize) -> std::io::Result<String> {
    let a = workloads::audikw_volume();
    let grid = Grid2D::new(grid_dim, grid_dim);
    let layout = Layout::new(a.symbolic.clone(), grid);
    let mut txt =
        format!("Hot-spot analysis: {} on a {grid_dim}x{grid_dim} grid (DES traced)\n", a.name);
    let mut docs = Vec::new();
    let mut ratios: Vec<(String, f64)> = Vec::new();
    for (name, scheme) in schemes_with_names() {
        let g = selinv_graph(&layout, &GraphOptions { scheme, seed: TREE_SEED, pipelining: true });
        let meta = [
            ("scheme", name.to_string()),
            ("grid", format!("{grid_dim}x{grid_dim}")),
            ("tree_seed", TREE_SEED.to_string()),
        ];
        let (_, trace) = simulate_traced_with_meta(&g, workloads::des_machine(0), name, &meta);
        let hs = HotspotReport::from_trace(&trace, (grid_dim, grid_dim));
        // The traced loads must equal the structural prediction exactly.
        let rep = replay_volumes(&layout, TreeBuilder::new(scheme, TREE_SEED));
        let cb = hs.kinds.iter().find(|k| k.coll == CollKind::ColBcast).expect("col-bcast load");
        assert_eq!(
            cb.sent_bytes, rep.col_bcast_sent,
            "{name}: traced hot-spot bytes diverge from the volume replay"
        );
        let imb = hs.imbalance(CollKind::ColBcast).expect("col-bcast imbalance");
        ratios.push((name.to_string(), imb.max_over_mean));
        txt.push('\n');
        txt.push_str(&hs.ascii());
        docs.push(hs.json());
    }
    let line = ratios.iter().map(|(n, r)| format!("{n} {r:.2}")).collect::<Vec<_>>().join(", ");
    let _ = writeln!(txt, "\nCol-Bcast max/mean by scheme: {line}");
    out.write_json("hotspots.json", &Json::Arr(docs))?;
    out.write_text("hotspots.txt", &txt)?;
    Ok(txt)
}

/// Critical-path extraction: simulates the selected inversion per scheme
/// on a `grid_dim × grid_dim` grid and reports the chain of tasks,
/// transfers and waits that bounds the makespan, with its per-kind
/// breakdown and rank sequence.
pub fn critpath(out: &OutDir, grid_dim: usize) -> std::io::Result<String> {
    let a = workloads::audikw_volume();
    let grid = Grid2D::new(grid_dim, grid_dim);
    let layout = Layout::new(a.symbolic.clone(), grid);
    let mut txt = format!("Critical-path analysis: {} on a {grid_dim}x{grid_dim} grid\n", a.name);
    let mut docs = Vec::new();
    for (name, scheme) in schemes_with_names() {
        let g = selinv_graph(&layout, &GraphOptions { scheme, seed: TREE_SEED, pipelining: true });
        let meta = [("scheme", name.to_string()), ("grid", format!("{grid_dim}x{grid_dim}"))];
        let (res, _, prof) = simulate_profiled(&g, workloads::des_machine(0), name, &meta);
        let cp = CriticalPath::extract(&g, &prof);
        // The path is contiguous, so its length is the last task's end
        // time, which the simulated makespan can only exceed (by trailing
        // non-final message deliveries).
        assert_eq!(cp.length_us(), cp.makespan_us, "{name}: critical path has gaps");
        assert!(
            cp.length_us() <= (res.makespan * 1e6) as u64 + 1,
            "{name}: critical path exceeds the makespan"
        );
        let _ = writeln!(txt, "\n{name} (simulated makespan {:.4}s)", res.makespan);
        txt.push_str(&cp.ascii());
        docs.push(Json::obj([("scheme", Json::from(name)), ("path", cp.json())]));
    }
    out.write_json("critpath.json", &Json::Arr(docs))?;
    out.write_text("critpath.txt", &txt)?;
    Ok(txt)
}

/// CI smoke benchmark: one cheap DES replay per scheme on an 8×8 grid,
/// emitting `BENCH_trace.json` with the per-scheme makespan,
/// critical-path length and Col-Bcast imbalance ratios — the artifact CI
/// uploads so regressions in balance or schedule length are visible per
/// commit.
pub fn bench_smoke(out: &OutDir) -> std::io::Result<String> {
    const DIM: usize = 8;
    let a = workloads::audikw_volume();
    let grid = Grid2D::new(DIM, DIM);
    let layout = Layout::new(a.symbolic.clone(), grid);
    let mut txt = format!("Bench smoke: {} on an {DIM}x{DIM} grid\n", a.name);
    let mut rows = Vec::new();
    for (name, scheme) in schemes_with_names() {
        let g = selinv_graph(&layout, &GraphOptions { scheme, seed: TREE_SEED, pipelining: true });
        let (res, _, prof) = simulate_profiled(&g, workloads::des_machine(0), name, &[]);
        let cp = CriticalPath::extract(&g, &prof);
        let rep = replay_volumes(&layout, TreeBuilder::new(scheme, TREE_SEED));
        let imb = Imbalance::from_volumes(&rep.col_bcast_sent);
        let _ = writeln!(
            txt,
            "  {name:<22}: makespan {:.4}s, critical path {} µs, \
             col-bcast max/mean {:.2}, sigma/mean {:.2}",
            res.makespan,
            cp.length_us(),
            imb.max_over_mean,
            imb.sigma_over_mean
        );
        rows.push(Json::obj([
            ("scheme", Json::from(name)),
            ("makespan_s", res.makespan.into()),
            ("critical_path_us", cp.length_us().into()),
            ("col_bcast_max_over_mean", imb.max_over_mean.into()),
            ("col_bcast_sigma_over_mean", imb.sigma_over_mean.into()),
        ]));
    }
    let doc = Json::obj([
        ("bench", "smoke".into()),
        ("workload", a.name.as_str().into()),
        ("grid", format!("{DIM}x{DIM}").into()),
        ("tree_seed", TREE_SEED.into()),
        ("schemes", Json::Arr(rows)),
    ]);
    out.write_json("BENCH_trace.json", &doc)?;
    out.write_text("bench_smoke.txt", &txt)?;
    Ok(txt)
}

/// Perf benchmark harness (`figures -- perf`): measures the numeric core
/// rather than a paper artifact —
///
/// 1. blocked vs naive GEMM throughput (GFLOP/s) across shapes, including
///    the 256³ headline comparison;
/// 2. physical bytes copied by a 64-rank Shifted Binary-Tree broadcast
///    under zero-copy `Arc` payload forwarding, against the copy-per-hop
///    cost a buffer-per-send implementation pays (the run aborts if the
///    broadcast copies more than the root's single packing);
/// 3. the traced numeric selected inversion per tree scheme: wall time,
///    physically copied bytes, logical volume and the DES makespan of the
///    same layout — with the trace/replay byte identity asserted, so CI
///    fails if the zero-copy paths ever change what is logically sent.
///
/// Emits `BENCH_perf.json` (uploaded by the CI `perf-smoke` job) plus
/// `perf.txt`.
pub fn perf(out: &OutDir) -> std::io::Result<String> {
    use pselinv_dense::{gemm, gemm_naive, Mat, Transpose};
    use pselinv_dist::{distributed_selinv_traced, DistOptions};
    use pselinv_mpisim::collectives::tree_bcast;
    use pselinv_order::{analyze, AnalyzeOptions};
    use std::sync::Arc;
    use std::time::Instant;

    fn rand_mat(nrows: usize, ncols: usize, seed: u64) -> Mat {
        let mut state = seed | 1;
        let mut m = Mat::zeros(nrows, ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                m[(i, j)] = (state as f64 / u64::MAX as f64) - 0.5;
            }
        }
        m
    }
    fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
        f(); // warmup
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    }

    // Deterministic degrade knob for the regression sentinel's CI
    // self-test: report figures as if the optimisations were lost — the
    // naive kernel's throughput as the blocked one, the copy-per-hop
    // model as the measured copies. `figures -- regress` must then fail.
    let degrade = std::env::var_os("PSELINV_PERF_DEGRADE").is_some_and(|v| v != "0");

    let mut txt = String::from("Perf: blocked kernels and zero-copy payloads\n\n");
    if degrade {
        txt.push_str("!! PSELINV_PERF_DEGRADE set: reporting artificially degraded figures\n\n");
    }

    // 1. Kernel throughput by shape.
    txt.push_str("GEMM C = A*B (GFLOP/s, best of 3)\n");
    let shapes = [(64usize, 64usize, 64usize), (128, 128, 128), (256, 256, 256), (192, 96, 384)];
    let mut gemm_rows = Vec::new();
    for &(m, n, kk) in &shapes {
        let a = rand_mat(m, kk, 1);
        let b = rand_mat(kk, n, 2);
        let mut c1 = Mat::zeros(m, n);
        let mut c2 = Mat::zeros(m, n);
        let flops = 2.0 * m as f64 * n as f64 * kk as f64;
        let tn =
            best_secs(3, || gemm_naive(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c1));
        let tb = best_secs(3, || gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c2));
        let (gn, mut gb) = (flops / tn / 1e9, flops / tb / 1e9);
        if degrade {
            gb = gn; // blocked kernel "lost": speedup collapses to 1.0
        }
        let _ = writeln!(
            txt,
            "  {m:>3}x{n:>3}x{kk:>3}: naive {gn:6.2}, blocked {gb:6.2} ({:.2}x)",
            gb / gn
        );
        gemm_rows.push(Json::obj([
            ("m", m.into()),
            ("n", n.into()),
            ("k", kk.into()),
            ("naive_gflops", gn.into()),
            ("blocked_gflops", gb.into()),
            ("speedup", (gb / gn).into()),
        ]));
    }

    // 2. Zero-copy broadcast: one packing copy regardless of fan-out.
    const NRANKS: usize = 64;
    const PAYLOAD_F64S: usize = 32 * 1024; // 256 KiB
    let receivers: Vec<usize> = (1..NRANKS).collect();
    let tree = TreeBuilder::new(TreeScheme::ShiftedBinary, TREE_SEED).build(0, &receivers, 0);
    let (_, volumes) = pselinv_mpisim::run(NRANKS, |ctx| {
        tree_bcast(ctx, &tree, 0, (ctx.rank() == 0).then(|| vec![1.0; PAYLOAD_F64S]));
    });
    let payload_bytes = (PAYLOAD_F64S * 8) as u64;
    let bcast_copied: u64 = volumes.iter().map(|v| v.copied).sum();
    let bcast_sent: u64 = volumes.iter().map(|v| v.sent).sum();
    let per_hop_model = payload_bytes * (NRANKS as u64 - 1);
    assert_eq!(
        bcast_copied, payload_bytes,
        "a {NRANKS}-rank broadcast must physically copy exactly the root's one packing"
    );
    let bcast_copied = if degrade { per_hop_model } else { bcast_copied };
    let _ = writeln!(
        txt,
        "\nZero-copy broadcast ({NRANKS} ranks, Shifted Binary-Tree, {} KiB payload)\n  \
         copied {} KiB measured vs {} KiB copy-per-hop model ({}x less); \
         logical volume {} KiB unchanged",
        payload_bytes / 1024,
        bcast_copied / 1024,
        per_hop_model / 1024,
        per_hop_model / bcast_copied,
        bcast_sent / 1024
    );

    // 3. Numeric selected inversion per scheme, with the replay identity.
    txt.push_str("\nNumeric selected inversion (FEM 6x6x6 proxy, 3x3 grid)\n");
    let w = pselinv_sparse::gen::fem_3d(6, 6, 6, 1, 0x7ace);
    let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
    let f = pselinv_factor::factorize(&w.matrix, sf.clone()).expect("proxy FEM matrix must factor");
    let grid = Grid2D::new(3, 3);
    let layout = Layout::new(sf.clone(), grid);
    let mut selinv_rows = Vec::new();
    for (name, scheme) in schemes_with_names() {
        let opts =
            DistOptions { scheme, seed: TREE_SEED, threads: 1, lookahead: 1, ..Default::default() };
        let t0 = Instant::now();
        let (_, vols, trace) = distributed_selinv_traced(&f, grid, &opts, name);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        // The zero-copy refactor must not move a single logical byte:
        // traced per-rank totals stay exactly equal to the structural
        // replay. CI runs this target, so a divergence fails the build.
        let rep = replay_volumes(&layout, TreeBuilder::new(scheme, TREE_SEED));
        assert_eq!(
            trace.sent_bytes(CollKind::ColBcast),
            rep.col_bcast_sent,
            "{name}: traced Col-Bcast bytes diverge from the volume replay"
        );
        assert_eq!(
            trace.recv_bytes(CollKind::RowReduce),
            rep.row_reduce_received,
            "{name}: traced Row-Reduce bytes diverge from the volume replay"
        );
        let mut copied: u64 = vols.iter().map(|v| v.copied).sum();
        let sent: u64 = vols.iter().map(|v| v.sent).sum();
        if degrade {
            copied *= 4; // zero-copy path "lost": forwarding hops copy again
        }
        let g = selinv_graph(&layout, &GraphOptions { scheme, seed: TREE_SEED, pipelining: true });
        let makespan = simulate(&g, workloads::des_machine(0)).makespan;
        let _ = writeln!(
            txt,
            "  {name:<22}: wall {wall_ms:7.1} ms, DES makespan {makespan:.4}s, \
             copied {:>6} KiB, logical {:>6} KiB",
            copied / 1024,
            sent / 1024
        );
        selinv_rows.push(Json::obj([
            ("scheme", Json::from(name)),
            ("wall_ms", wall_ms.into()),
            ("makespan_s", makespan.into()),
            ("bytes_copied", copied.into()),
            ("bytes_sent", sent.into()),
        ]));
    }

    let doc = Json::obj([
        ("bench", "perf".into()),
        ("tree_seed", TREE_SEED.into()),
        ("gemm", Json::Arr(gemm_rows)),
        (
            "bcast_zero_copy",
            Json::obj([
                ("nranks", NRANKS.into()),
                ("scheme", "ShiftedBinary".into()),
                ("payload_bytes", payload_bytes.into()),
                ("copied_bytes_measured", bcast_copied.into()),
                ("copied_bytes_per_hop_model", per_hop_model.into()),
                ("logical_sent_bytes", bcast_sent.into()),
            ]),
        ),
        ("selinv", Json::Arr(selinv_rows)),
    ]);
    out.write_json("BENCH_perf.json", &doc)?;
    out.write_text("perf.txt", &txt)?;
    Ok(txt)
}

/// Builds the task graph of a broadcast storm: every tree contributes one
/// task per member (the member's local work on that broadcast) and one
/// `payload`-byte message per tree edge. The DAG shape *is* the tree
/// shape, which is what lets the fault experiment compare how different
/// schemes degrade.
fn bcast_storm_graph(
    nranks: usize,
    trees: &[CollectiveTree],
    payload: u64,
    flops: f64,
) -> TaskGraph {
    let mut task_rank: Vec<u32> = Vec::new();
    let mut task_tag: Vec<u32> = Vec::new();
    // task id of (tree k, member rank)
    let mut id: Vec<std::collections::BTreeMap<usize, u32>> = vec![Default::default(); trees.len()];
    for (k, tree) in trees.iter().enumerate() {
        for &m in tree.members() {
            id[k].insert(m, task_rank.len() as u32);
            task_rank.push(m as u32);
            task_tag.push(pack_task_tag(CollKind::ColBcast, k));
        }
    }
    let n = task_rank.len();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (k, tree) in trees.iter().enumerate() {
        for &m in tree.members() {
            if let Some(p) = tree.parent_of(m) {
                edges.push((id[k][&p], id[k][&m]));
            }
        }
    }
    let mut deps = vec![0u32; n];
    let mut counts = vec![0u32; n];
    for &(from, to) in &edges {
        deps[to as usize] += 1;
        counts[from as usize] += 1;
    }
    let mut ptr = vec![0u32; n + 1];
    for i in 0..n {
        ptr[i + 1] = ptr[i] + counts[i];
    }
    let mut heads = ptr[..n].to_vec();
    let mut succ = vec![0u32; edges.len()];
    let mut succ_bytes = vec![0u64; edges.len()];
    for &(from, to) in &edges {
        let s = heads[from as usize] as usize;
        heads[from as usize] += 1;
        succ[s] = to;
        succ_bytes[s] = payload;
    }
    TaskGraph {
        nranks,
        task_rank,
        task_flops: vec![flops; n],
        task_prio: vec![0; n],
        task_kind: vec![TaskKind::Compute; n],
        task_tag,
        task_deps: deps,
        succ_ptr: ptr,
        succ,
        succ_bytes,
    }
}

/// Degraded-tree resilience experiment (`figures -- faults`): a broadcast
/// storm (64 ranks, 8×8 smoke grid, one tree per broadcast key) replayed
/// three ways per scheme —
///
/// 1. fault-free;
/// 2. with `K_FAULTS` ranks crashed at t = 0 under the *original* trees:
///    every subtree hanging off a dead rank starves, and
///    `delivered_frac_no_rebuild` reports how much of the storm still
///    completes (flat trees strand only the dead ranks themselves; deep
///    trees strand whole cones);
/// 3. with every tree rebuilt around the dead ranks via
///    [`TreeBuilder::rebuild_excluding`]: the storm completes on the
///    survivors and `makespan_rebuilt_s` quantifies the residual cost of
///    the degraded shape.
///
/// Emits `BENCH_fault.json` (uploaded by the CI `chaos` job) plus
/// `faults.txt`.
pub fn faults(out: &OutDir) -> std::io::Result<String> {
    const DIM: usize = 8;
    const NRANKS: usize = DIM * DIM;
    const N_BCASTS: usize = 48;
    const PAYLOAD: u64 = 2 << 20; // 2 MiB per tree edge
    const FLOPS: f64 = 2e8; // 0.1 s of local work per task at 2 GF/s
    const K_FAULTS: usize = 2;
    const FAULT_SEED: u64 = 0xfa17;

    // Seed-deterministic dead set (never the global root rank 0 so the
    // no-rebuild run keeps a defined origin for most broadcasts).
    let mut dead: Vec<usize> = Vec::new();
    let mut draw = 0u64;
    while dead.len() < K_FAULTS {
        let r = (pselinv_trees::rng::hash2(FAULT_SEED, draw) as usize) % NRANKS;
        draw += 1;
        if r != 0 && !dead.contains(&r) {
            dead.push(r);
        }
    }
    dead.sort_unstable();

    let cfg = workloads::des_machine(0);
    let mut crash_plan = FaultPlan::new(FAULT_SEED);
    for &r in &dead {
        crash_plan =
            crash_plan.with_rank(r, FaultSpec { crash_at_s: Some(0.0), ..FaultSpec::default() });
    }

    let mut txt = format!(
        "Degraded-tree resilience: {N_BCASTS} broadcasts x {NRANKS} ranks \
         ({DIM}x{DIM} smoke grid), ranks {dead:?} crashed at t=0\n"
    );
    let _ = writeln!(
        txt,
        "{:<22} {:>12} {:>12} {:>12} {:>10}",
        "Communication tree", "fault-free", "no-rebuild", "rebuilt", "delivered"
    );
    let mut rows = Vec::new();
    for (name, scheme) in schemes_with_names() {
        let builder = TreeBuilder::new(scheme, TREE_SEED);
        let all: Vec<usize> = (0..NRANKS).collect();
        let trees: Vec<CollectiveTree> = (0..N_BCASTS)
            .map(|k| {
                let root = k % NRANKS;
                let receivers: Vec<usize> = all.iter().copied().filter(|&r| r != root).collect();
                builder.build(root, &receivers, k as u64)
            })
            .collect();
        let g = bcast_storm_graph(NRANKS, &trees, PAYLOAD, FLOPS);
        let clean = simulate(&g, cfg);
        let crashed = simulate_with_faults(&g, cfg, &crash_plan);
        let rebuilt: Vec<CollectiveTree> = trees
            .iter()
            .enumerate()
            .map(|(k, t)| builder.rebuild_excluding(t, &dead, k as u64))
            .collect();
        let g2 = bcast_storm_graph(NRANKS, &rebuilt, PAYLOAD, FLOPS);
        let degraded = simulate(&g2, cfg);
        let _ = writeln!(
            txt,
            "{:<22} {:>11.4}s {:>11.4}s {:>11.4}s {:>9.1}%",
            name,
            clean.makespan,
            crashed.result.makespan,
            degraded.makespan,
            crashed.completed_frac() * 100.0
        );
        rows.push(Json::obj([
            ("scheme", Json::from(name)),
            ("makespan_fault_free_s", clean.makespan.into()),
            ("makespan_no_rebuild_s", crashed.result.makespan.into()),
            ("delivered_frac_no_rebuild", crashed.completed_frac().into()),
            ("makespan_rebuilt_s", degraded.makespan.into()),
            ("rebuilt_over_fault_free", (degraded.makespan / clean.makespan).into()),
        ]));
    }
    let doc = Json::obj([
        ("bench", "faults".into()),
        ("grid", format!("{DIM}x{DIM}").into()),
        ("bcasts", (N_BCASTS as u64).into()),
        ("payload_bytes", PAYLOAD.into()),
        ("tree_seed", TREE_SEED.into()),
        ("fault_seed", FAULT_SEED.into()),
        ("crashed_ranks", Json::Arr(dead.iter().map(|&d| Json::from(d as u64)).collect())),
        ("schemes", Json::Arr(rows)),
    ]);
    out.write_json("BENCH_fault.json", &doc)?;
    out.write_text("faults.txt", &txt)?;
    Ok(txt)
}

/// Online crash-recovery experiment (`figures -- recovery`): the degraded-
/// tree broadcast storm of [`faults`] (48 broadcasts × 64 ranks, the same
/// seed-deterministic pair of ranks crashed at t = 0), but run **live** on
/// the mpisim runtime with the reliable transport and online recovery
/// enabled, per scheme.
///
/// Where [`faults`] could only *measure* how much of the storm an offline
/// rebuild would have saved, this experiment performs the rescue online:
/// orphaned survivors suspect their silent parent, consult the crash
/// board, re-home onto the `rebuild_excluding` tree and pull the payload
/// from their rebuilt parent under a bumped epoch. The experiment
/// **asserts** the recovery contract — every survivor delivers every
/// live-root broadcast (the only stranded tree is the one rooted at a
/// casualty) and the [`pselinv_mpisim::RecoveryReport`] is populated —
/// and contrasts the survivors' 100% with the no-rebuild stranded
/// baseline the DES replay assigns each scheme (deep trees lose whole
/// dependency cones).
///
/// Emits `BENCH_recovery.json` (uploaded by the CI `recovery` job and
/// archived into `results/runs/`) plus `recovery.txt`.
pub fn recovery(out: &OutDir) -> std::io::Result<String> {
    use pselinv_mpisim::{try_run_recover, Recovery, RecoveryConfig, ReliableConfig, RunOptions};
    use std::time::Duration;

    const DIM: usize = 8;
    const NRANKS: usize = DIM * DIM;
    const N_BCASTS: usize = 48;
    const PAYLOAD: u64 = 2 << 20; // DES-baseline bytes per tree edge
    const PAYLOAD_F64: usize = 256; // live-run payload (2 KiB per edge)
    const FLOPS: f64 = 2e8;
    const K_FAULTS: usize = 2;
    const FAULT_SEED: u64 = 0xfa17;

    // The same seed-deterministic dead set as `faults`, so the two
    // artifacts describe one storm.
    let mut dead: Vec<usize> = Vec::new();
    let mut draw = 0u64;
    while dead.len() < K_FAULTS {
        let r = (pselinv_trees::rng::hash2(FAULT_SEED, draw) as usize) % NRANKS;
        draw += 1;
        if r != 0 && !dead.contains(&r) {
            dead.push(r);
        }
    }
    dead.sort_unstable();
    let live_roots = (0..N_BCASTS).filter(|k| !dead.contains(&(k % NRANKS))).count() as u64;
    let stranded_tags: Vec<u64> =
        (0..N_BCASTS).filter(|k| dead.contains(&(k % NRANKS))).map(|k| k as u64).collect();

    let cfg = workloads::des_machine(0);
    let mut des_crash_plan = FaultPlan::new(FAULT_SEED);
    let mut live_crash_plan = FaultPlan::new(FAULT_SEED);
    for &r in &dead {
        des_crash_plan = des_crash_plan
            .with_rank(r, FaultSpec { crash_at_s: Some(0.0), ..FaultSpec::default() });
        live_crash_plan = live_crash_plan
            .with_rank(r, FaultSpec { crash_after_ops: Some(0), ..FaultSpec::default() });
    }
    let opts = RunOptions {
        watchdog: Some(Duration::from_secs(60)),
        poll: Duration::from_millis(2),
        faults: Some(live_crash_plan),
        reliable: Some(ReliableConfig {
            rto: Duration::from_millis(5),
            ..ReliableConfig::default()
        }),
        recovery: true,
        ..RunOptions::default()
    };
    let rec_cfg = RecoveryConfig {
        suspect_after: Duration::from_millis(25),
        slice: Duration::from_millis(2),
    };

    let mut txt = format!(
        "Online crash recovery: {N_BCASTS} broadcasts x {NRANKS} ranks, \
         ranks {dead:?} crashed at t=0, recovery on\n"
    );
    let _ = writeln!(
        txt,
        "{:<22} {:>10} {:>10} {:>8} {:>8} {:>12}",
        "Communication tree", "stranded", "recovered", "joins", "rebuilt", "re-sent"
    );
    let mut rows = Vec::new();
    for (name, scheme) in schemes_with_names() {
        let builder = TreeBuilder::new(scheme, TREE_SEED);
        let all: Vec<usize> = (0..NRANKS).collect();
        let trees: Vec<CollectiveTree> = (0..N_BCASTS)
            .map(|k| {
                let root = k % NRANKS;
                let receivers: Vec<usize> = all.iter().copied().filter(|&r| r != root).collect();
                builder.build(root, &receivers, k as u64)
            })
            .collect();

        // The no-rebuild stranded baseline: what the scheme loses when the
        // dead ranks silently take their subtrees with them.
        let g = bcast_storm_graph(NRANKS, &trees, PAYLOAD, FLOPS);
        let baseline = simulate_with_faults(&g, cfg, &des_crash_plan).completed_frac();

        // Whether any survivor sits below a casualty in some live-root
        // tree: only then must the recovery layer have re-homed anyone (a
        // flat tree has no interior ranks, so casualties orphan nobody).
        fn below_dead(t: &CollectiveTree, mut r: usize, dead: &[usize]) -> bool {
            while let Some(p) = t.parent_of(r) {
                if dead.contains(&p) {
                    return true;
                }
                r = p;
            }
            false
        }
        let orphans_exist = trees
            .iter()
            .filter(|t| !dead.contains(&t.root()))
            .any(|t| (0..NRANKS).any(|r| !dead.contains(&r) && below_dead(t, r, &dead)));

        // The live storm with online recovery.
        let trees = &trees;
        let builder = &builder;
        let (results, _, report) = try_run_recover(NRANKS, &opts, move |ctx| {
            let mut rec = Recovery::new(rec_cfg);
            let mut delivered = 0u64;
            for (k, tree) in trees.iter().enumerate() {
                let root = tree.root();
                let data = (ctx.rank() == root).then(|| vec![k as f64 + 0.5; PAYLOAD_F64]);
                if let Some(p) = rec.bcast(ctx, builder, tree, k as u64, k as u64, data) {
                    assert_eq!(p.len(), PAYLOAD_F64);
                    assert_eq!(p[0], k as f64 + 0.5, "wrong payload for tree {k}");
                    delivered += 1;
                }
            }
            rec.finish(ctx);
            delivered
        })
        .unwrap_or_else(|e| panic!("recovery storm wedged under {name}: {e}"));

        // The recovery contract, asserted per scheme.
        assert_eq!(report.dead_ranks, dead, "{name}: confirmed-dead set");
        assert_eq!(
            report.stranded_supernodes, stranded_tags,
            "{name}: exactly the dead-root trees strand"
        );
        for (rank, r) in results.iter().enumerate() {
            if dead.contains(&rank) {
                assert!(r.is_none(), "{name}: casualty {rank} must have no result");
            } else {
                assert_eq!(
                    *r,
                    Some(live_roots),
                    "{name}: survivor {rank} must deliver every live-root broadcast"
                );
            }
        }
        if orphans_exist {
            assert!(report.joins > 0, "{name}: orphans must have re-homed");
        }

        let _ = writeln!(
            txt,
            "{:<22} {:>9.1}% {:>9.1}% {:>8} {:>8} {:>10} B",
            name,
            baseline * 100.0,
            100.0,
            report.joins,
            report.rebuilt_trees,
            report.reissued_bytes,
        );
        rows.push(Json::obj([
            ("scheme", Json::from(name)),
            ("delivered_frac_no_rebuild", baseline.into()),
            ("survivor_delivered_frac", 1.0.into()),
            ("joins", report.joins.into()),
            ("rebuilt_trees", report.rebuilt_trees.into()),
            ("reissued_bytes", report.reissued_bytes.into()),
            (
                "stranded_supernodes",
                Json::Arr(report.stranded_supernodes.iter().map(|&t| Json::from(t)).collect()),
            ),
        ]));
    }
    let doc = Json::obj([
        ("bench", "recovery".into()),
        ("grid", format!("{DIM}x{DIM}").into()),
        ("bcasts", (N_BCASTS as u64).into()),
        ("live_root_bcasts", live_roots.into()),
        ("payload_f64", (PAYLOAD_F64 as u64).into()),
        ("tree_seed", TREE_SEED.into()),
        ("fault_seed", FAULT_SEED.into()),
        ("crashed_ranks", Json::Arr(dead.iter().map(|&d| Json::from(d as u64)).collect())),
        ("schemes", Json::Arr(rows)),
    ]);
    out.write_json("BENCH_recovery.json", &doc)?;
    out.write_text("recovery.txt", &txt)?;
    Ok(txt)
}

/// Sync-vs-async numeric engine comparison (`figures -- async`).
///
/// Runs the *real* numeric selected inversion on the mpisim backend per
/// tree scheme, synchronously (`lookahead = 1`) and with the pipelined
/// window (`lookahead = 4`), and reports per scheme: wall time, total
/// late-sender wait summed across ranks, and the overlap high-water mark
/// (max collectives simultaneously outstanding on any rank). Along the
/// way it *asserts* the async engine's contract — bit-identical panels,
/// identical per-rank volume counters, and measured bytes equal to the
/// structural replay — so the benchmark doubles as an acceptance check.
///
/// Emits `BENCH_async.json` (uploaded by the CI `async-smoke` job) plus
/// `async_overlap.txt`.
pub fn async_overlap(out: &OutDir) -> std::io::Result<String> {
    use pselinv_dist::{distributed_selinv_traced, DistOptions};
    use pselinv_order::{analyze, AnalyzeOptions};
    use std::sync::Arc;
    use std::time::Instant;

    let w = pselinv_sparse::gen::fem_3d(6, 6, 6, 1, 0x7ace);
    let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
    let f = pselinv_factor::factorize(&w.matrix, sf.clone()).expect("proxy FEM matrix must factor");
    let grid = Grid2D::new(3, 3);
    const LOOKAHEAD: usize = 4;
    let mut txt = format!(
        "Sync vs async pipelined engine: {} (n = {}) on a 3x3 grid, lookahead {LOOKAHEAD}\n\n\
         {:<22} {:>12} {:>12} {:>14} {:>14} {:>9}\n",
        w.name,
        w.matrix.nrows(),
        "scheme",
        "sync ms",
        "async ms",
        "sync wait µs",
        "async wait µs",
        "overlap"
    );
    let mut rows: Vec<Json> = Vec::new();
    for (name, scheme) in schemes_with_names() {
        let mk = |lookahead| DistOptions {
            scheme,
            seed: TREE_SEED,
            threads: 1,
            lookahead,
            ..Default::default()
        };
        let t0 = Instant::now();
        let (sync, sync_vol, sync_trace) =
            distributed_selinv_traced(&f, grid, &mk(1), &format!("{name}/sync"));
        let sync_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let (asyn, asyn_vol, asyn_trace) =
            distributed_selinv_traced(&f, grid, &mk(LOOKAHEAD), &format!("{name}/async"));
        let async_ms = t1.elapsed().as_secs_f64() * 1e3;

        // Contract: reordered communication, identical arithmetic and
        // identical logical volumes.
        for s in 0..sf.num_supernodes() {
            for j in 0..sf.width(s) {
                for i in 0..sf.width(s) {
                    assert_eq!(
                        sync.panels[s].diag[(i, j)].to_bits(),
                        asyn.panels[s].diag[(i, j)].to_bits(),
                        "{name}: async diag {s} diverged"
                    );
                }
                for i in 0..sf.rows_of(s).len() {
                    assert_eq!(
                        sync.panels[s].below[(i, j)].to_bits(),
                        asyn.panels[s].below[(i, j)].to_bits(),
                        "{name}: async below {s} diverged"
                    );
                }
            }
        }
        assert_eq!(sync_vol, asyn_vol, "{name}: async volumes diverged from sync");
        let layout = Layout::new(sf.clone(), grid);
        let rep = replay_volumes(&layout, TreeBuilder::new(scheme, TREE_SEED));
        let measured: u64 = asyn_vol.iter().map(|v| v.sent).sum();
        assert_eq!(measured, rep.total_bytes(), "{name}: async bytes diverge from replay");

        let wait = |t: &pselinv_trace::Trace| -> u64 {
            t.ranks.iter().map(|r| r.metrics.total_wait_us()).sum()
        };
        let (sync_wait, async_wait) = (wait(&sync_trace), wait(&asyn_trace));
        let overlap = asyn_trace.ranks.iter().map(|r| r.metrics.outstanding_hwm).max().unwrap_or(0);
        assert!(overlap > 1, "{name}: lookahead {LOOKAHEAD} never overlapped collectives");
        let _ = writeln!(
            txt,
            "{name:<22} {sync_ms:>12.2} {async_ms:>12.2} {sync_wait:>14} {async_wait:>14} \
             {overlap:>9}"
        );
        rows.push(Json::obj([
            ("scheme", name.into()),
            ("sync_wall_ms", sync_ms.into()),
            ("async_wall_ms", async_ms.into()),
            ("sync_wait_us", sync_wait.into()),
            ("async_wait_us", async_wait.into()),
            ("overlap_hwm", overlap.into()),
            ("bit_identical", true.into()),
            ("volumes_identical", true.into()),
        ]));
    }
    let _ = writeln!(
        txt,
        "\n(wait µs = late-sender blocked time summed over ranks; overlap = max\n\
         collectives simultaneously outstanding on any rank; results asserted\n\
         bit-identical and volume-identical between the two engines)"
    );
    let doc = Json::obj([
        ("bench", "async".into()),
        ("matrix", w.name.as_str().into()),
        ("grid", "3x3".into()),
        ("lookahead", (LOOKAHEAD as u64).into()),
        ("tree_seed", TREE_SEED.into()),
        ("schemes", Json::Arr(rows)),
    ]);
    out.write_json("BENCH_async.json", &doc)?;
    out.write_text("async_overlap.txt", &txt)?;
    Ok(txt)
}

/// Intra-rank task-runtime comparison (`figures -- pool`).
///
/// Runs the real numeric selected inversion of the 46×46 grid Laplacian
/// (n = 2,116) on a 2×2 mpisim grid, per tree scheme, under the three
/// local executors — serial (`threads = 1`), the historical fork-join
/// `thread::scope` splitter, and the persistent work-stealing pool — and
/// sweeps the worker count. Reported per point: wall time, the pool's
/// speedup over fork-join (the tentpole claim: the persistent pool
/// amortizes the per-window spawn/join cost that fork-join pays on every
/// supernode), the pool's executed/stolen task counters and its busy-time
/// utilization. Along the way it *asserts* the runtime contract — panels
/// bit-identical to the serial run and per-rank volume counters exactly
/// equal for every executor, scheme and thread count.
///
/// `PSELINV_POOL_THREADS` (comma-separated, e.g. `2,4`) restricts the
/// sweep — the CI threads matrix sets it so each job measures one point.
///
/// Emits `BENCH_pool.json` (archived into `results/runs/` and checked by
/// `figures -- regress`) plus `pool.txt`.
pub fn pool_runtime(out: &OutDir) -> std::io::Result<String> {
    use pselinv_dist::{distributed_selinv_traced, DistOptions, TaskRuntime};
    use pselinv_order::{analyze, AnalyzeOptions};
    use pselinv_selinv::SelectedInverse;
    use pselinv_trace::Trace;
    use std::sync::Arc;
    use std::time::Instant;

    let w = pselinv_sparse::gen::grid_laplacian_2d(46, 46);
    let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
    let f = pselinv_factor::factorize(&w.matrix, sf.clone()).expect("Laplacian must factor");
    let grid = Grid2D::new(2, 2);
    let nranks = grid.pr * grid.pc;
    const LOOKAHEAD: usize = 4;
    const REPS: usize = 2;

    let threads_sweep: Vec<usize> = std::env::var("PSELINV_POOL_THREADS")
        .ok()
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![2, 4, 8]);

    fn assert_bits(a: &SelectedInverse, b: &SelectedInverse, what: &str) {
        let sf = &a.symbolic;
        for s in 0..sf.num_supernodes() {
            for j in 0..sf.width(s) {
                for i in 0..sf.width(s) {
                    assert_eq!(
                        a.panels[s].diag[(i, j)].to_bits(),
                        b.panels[s].diag[(i, j)].to_bits(),
                        "{what}: diag {s} diverged"
                    );
                }
                for i in 0..sf.rows_of(s).len() {
                    assert_eq!(
                        a.panels[s].below[(i, j)].to_bits(),
                        b.panels[s].below[(i, j)].to_bits(),
                        "{what}: below {s} diverged"
                    );
                }
            }
        }
    }

    // Best-of-REPS wall time; keeps the last run's outputs for the
    // identity checks and counters.
    let bench = |opts: &DistOptions,
                 label: &str|
     -> (f64, SelectedInverse, Vec<pselinv_mpisim::RankVolume>, Trace) {
        let mut best = f64::INFINITY;
        let mut last = None;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let r = distributed_selinv_traced(&f, grid, opts, label);
            best = best.min(t0.elapsed().as_secs_f64());
            last = Some(r);
        }
        let (inv, vols, trace) = last.unwrap();
        (best * 1e3, inv, vols, trace)
    };

    let mut txt = format!(
        "Intra-rank task runtime: {} (n = {}) on a {}x{} grid, lookahead {LOOKAHEAD}\n\n\
         {:<22} {:>7} {:>11} {:>11} {:>11} {:>8} {:>9} {:>7} {:>6}\n",
        w.name,
        w.matrix.nrows(),
        grid.pr,
        grid.pc,
        "scheme",
        "threads",
        "serial ms",
        "forkjoin ms",
        "pool ms",
        "speedup",
        "executed",
        "stolen",
        "util"
    );
    let mut scheme_rows: Vec<Json> = Vec::new();
    for (name, scheme) in
        [("Flat-Tree", TreeScheme::Flat), ("Shifted Binary-Tree", TreeScheme::ShiftedBinary)]
    {
        let mk = |threads, runtime| DistOptions {
            scheme,
            seed: TREE_SEED,
            threads,
            runtime,
            lookahead: LOOKAHEAD,
        };
        let (serial_ms, serial, serial_vol, _) =
            bench(&mk(1, TaskRuntime::Pool), &format!("{name}/serial"));
        let mut points: Vec<Json> = Vec::new();
        for &t in &threads_sweep {
            let (fj_ms, fj, fj_vol, _) =
                bench(&mk(t, TaskRuntime::ForkJoin), &format!("{name}/forkjoin{t}"));
            let (pool_ms, pool, pool_vol, pool_trace) =
                bench(&mk(t, TaskRuntime::Pool), &format!("{name}/pool{t}"));

            // The runtime contract: scheduling only, never arithmetic or
            // communication.
            assert_bits(&serial, &fj, &format!("{name} forkjoin t={t}"));
            assert_bits(&serial, &pool, &format!("{name} pool t={t}"));
            assert_eq!(serial_vol, fj_vol, "{name} t={t}: fork-join volumes diverged");
            assert_eq!(serial_vol, pool_vol, "{name} t={t}: pool volumes diverged");

            let executed: u64 = pool_trace.ranks.iter().map(|r| r.metrics.pool_executed).sum();
            let stolen: u64 = pool_trace.ranks.iter().map(|r| r.metrics.pool_stolen).sum();
            let busy_us: u64 = pool_trace.ranks.iter().map(|r| r.metrics.pool_busy_us).sum();
            assert!(executed > 0, "{name} t={t}: pool executed no tasks");
            // Fraction of the sweep point's worker-time spent inside tasks
            // (scheduling-time accounting; the ranks time-share one host).
            let util = busy_us as f64 / (pool_ms * 1e3 * (nranks * t) as f64);
            let speedup = fj_ms / pool_ms;
            let _ = writeln!(
                txt,
                "{name:<22} {t:>7} {serial_ms:>11.1} {fj_ms:>11.1} {pool_ms:>11.1} \
                 {speedup:>7.2}x {executed:>9} {stolen:>7} {util:>6.3}"
            );
            points.push(Json::obj([
                ("threads", t.into()),
                ("serial_wall_ms", serial_ms.into()),
                ("forkjoin_wall_ms", fj_ms.into()),
                ("pool_wall_ms", pool_ms.into()),
                ("pool_speedup_vs_forkjoin", speedup.into()),
                ("pool_executed", executed.into()),
                ("pool_stolen", stolen.into()),
                ("pool_busy_us", busy_us.into()),
                ("pool_utilization", util.into()),
                ("bit_identical", true.into()),
                ("volumes_identical", true.into()),
            ]));
        }
        scheme_rows.push(Json::obj([
            ("scheme", Json::from(name)),
            ("serial_wall_ms", serial_ms.into()),
            ("points", Json::Arr(points)),
        ]));
    }
    let _ = writeln!(
        txt,
        "\n(speedup = fork-join wall / pool wall at equal thread count; util =\n\
         pool busy-µs / (wall x ranks x threads); panels asserted bit-identical\n\
         and volumes exactly equal to the serial run at every point)"
    );
    let doc = Json::obj([
        ("bench", "pool".into()),
        ("matrix", w.name.as_str().into()),
        ("n", w.matrix.nrows().into()),
        ("grid", format!("{}x{}", grid.pr, grid.pc).into()),
        ("lookahead", (LOOKAHEAD as u64).into()),
        ("tree_seed", TREE_SEED.into()),
        ("threads_sweep", Json::Arr(threads_sweep.iter().map(|&t| Json::from(t as u64)).collect())),
        ("schemes", Json::Arr(scheme_rows)),
    ]);
    out.write_json("BENCH_pool.json", &doc)?;
    out.write_text("pool.txt", &txt)?;
    Ok(txt)
}

/// Pole-batch engine: selected inverses of `H − σ_k I` at several PEXSI
/// poles, batched through one shared plan versus the sequential baseline
/// of standalone per-pole runs (each re-deriving its own communication
/// plan, the way a pole-at-a-time driver would). The 46×46 Laplacian on a
/// 2×2 grid; the sweep varies the batch's `max_inflight` admission knob
/// at each thread count. Along the way it *asserts* the batch contract —
/// every pole bit-identical to its standalone run and the per-pole
/// channel-accounted logical volumes exactly equal the standalone
/// measured volumes — and, once more than one pole may race, that the
/// outstanding high-water mark actually spans queries.
///
/// Both paths run under the same modeled NIC latency (a uniform
/// in-flight delay on every message, injected through the fault plan):
/// that is the regime the batch engine exists for. A standalone pole run
/// serializes its dependency chain against the wire, leaving ranks idle
/// while messages fly; the batch fills those stalls with other poles'
/// GEMMs, so the latency-hiding of the shared progress loop shows up as
/// wall-clock speedup even on a host without real network latency.
/// Latency is benign (no loss/reorder/duplication), so bit-identity and
/// exact volume equality still hold and are still asserted.
///
/// `PSELINV_POLES_THREADS` (comma-separated) restricts the thread sweep —
/// the CI smoke job sets it so the job measures only the gated point —
/// and `PSELINV_POLES_DELAY_US` overrides the modeled per-message latency.
///
/// Emits `BENCH_poles.json` (archived into `results/runs/` and checked by
/// `figures -- regress`) plus `poles.txt`.
pub fn poles(out: &OutDir) -> std::io::Result<String> {
    use pselinv_dist::{
        factor_poles, pole_summary_table, try_batched_selinv_traced, try_distributed_selinv,
        BatchOptions, DistOptions,
    };
    use pselinv_mpisim::{RankVolume, RunOptions};
    use pselinv_order::{analyze, AnalyzeOptions};
    use pselinv_selinv::SelectedInverse;
    use std::sync::Arc;
    use std::time::Instant;

    // Shifts inside the Laplacian's spectrum (0, 8): every pole is
    // indefinite, like the real pole expansion.
    const SHIFTS: [f64; 6] = [0.6, 1.7, 2.8, 3.9, 5.1, 6.2];
    const LOOKAHEAD: usize = 4;
    const REPS: usize = 2;
    // Modeled per-message NIC latency (µs), identical for both paths:
    // large enough that flight time dominates scheduler noise on a shared
    // runner, small enough to keep the whole sweep under half a minute.
    const NIC_DELAY_US: u64 = 250;

    let w = pselinv_sparse::gen::grid_laplacian_2d(46, 46);
    let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
    let factors = factor_poles(&w.matrix, &SHIFTS, sf).expect("shifted Laplacians must factor");
    let grid = Grid2D::new(2, 2);

    let delay_us: u64 = std::env::var("PSELINV_POLES_DELAY_US")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(NIC_DELAY_US);
    let nic =
        FaultPlan::new(TREE_SEED).with_default(FaultSpec { delay_us, ..FaultSpec::default() });
    let run_opts = RunOptions { faults: Some(nic), ..RunOptions::default() };

    let threads_sweep: Vec<usize> = std::env::var("PSELINV_POLES_THREADS")
        .ok()
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![2, 4]);

    fn assert_bits(a: &SelectedInverse, b: &SelectedInverse, what: &str) {
        let sf = &a.symbolic;
        for s in 0..sf.num_supernodes() {
            for j in 0..sf.width(s) {
                for i in 0..sf.width(s) {
                    assert_eq!(
                        a.panels[s].diag[(i, j)].to_bits(),
                        b.panels[s].diag[(i, j)].to_bits(),
                        "{what}: diag {s} diverged"
                    );
                }
                for i in 0..sf.rows_of(s).len() {
                    assert_eq!(
                        a.panels[s].below[(i, j)].to_bits(),
                        b.panels[s].below[(i, j)].to_bits(),
                        "{what}: below {s} diverged"
                    );
                }
            }
        }
    }

    // Channel accounting splits logical counters only; compare exactly those.
    fn assert_logical_volumes(pole: &[RankVolume], standalone: &[RankVolume], what: &str) {
        for (r, (p, s)) in pole.iter().zip(standalone).enumerate() {
            assert_eq!(p.sent, s.sent, "{what}: rank {r} sent bytes diverged");
            assert_eq!(p.received, s.received, "{what}: rank {r} received bytes diverged");
            assert_eq!(p.msgs_sent, s.msgs_sent, "{what}: rank {r} message count diverged");
            assert_eq!(p.msgs_received, s.msgs_received, "{what}: rank {r} recv count diverged");
        }
    }

    let mut txt = format!(
        "Pole-batch engine: {} poles of {} (n = {}) on a {}x{} grid, lookahead {LOOKAHEAD}, \
         modeled NIC latency {delay_us} µs/message\n\n\
         {:>7} {:>11} {:>13} {:>10} {:>8} {:>11}\n",
        SHIFTS.len(),
        w.name,
        w.matrix.nrows(),
        grid.pr,
        grid.pc,
        "threads",
        "inflight",
        "sequential ms",
        "batched ms",
        "speedup",
        "overlap hwm"
    );
    let mut points: Vec<Json> = Vec::new();
    let mut pole_table = String::new();
    for &t in &threads_sweep {
        let dist = DistOptions {
            scheme: TreeScheme::ShiftedBinary,
            seed: TREE_SEED,
            threads: t,
            lookahead: LOOKAHEAD,
            ..Default::default()
        };

        // Sequential baseline: every pole through its own standalone run,
        // plan re-derivation included (best total wall over REPS; the last
        // rep's inverses and volumes anchor the identity checks).
        let mut seq_ms = f64::INFINITY;
        let mut standalone: Vec<(SelectedInverse, Vec<RankVolume>)> = Vec::new();
        for _ in 0..REPS {
            let t0 = Instant::now();
            let runs: Vec<_> = factors
                .iter()
                .map(|f| {
                    try_distributed_selinv(f, grid, &dist, &run_opts)
                        .expect("standalone pole run failed")
                })
                .collect();
            seq_ms = seq_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            standalone = runs;
        }

        for max_inflight in [1usize, 2, SHIFTS.len()] {
            let opts = BatchOptions { dist, max_inflight };
            let label = format!("poles/t{t}x{max_inflight}");
            let mut batched_ms = f64::INFINITY;
            let mut last = None;
            for _ in 0..REPS {
                let t0 = Instant::now();
                let r = try_batched_selinv_traced(&factors, grid, &opts, &run_opts, &label)
                    .expect("batched pole run failed");
                batched_ms = batched_ms.min(t0.elapsed().as_secs_f64() * 1e3);
                last = Some(r);
            }
            let (run, trace) = last.unwrap();

            // The batch contract, asserted at every sweep point.
            for (q, (inv, (solo, solo_vol))) in run.inverses.iter().zip(&standalone).enumerate() {
                let what = format!("pole {q} (σ={}) t={t} inflight={max_inflight}", SHIFTS[q]);
                assert_bits(solo, inv, &what);
                assert_logical_volumes(&run.query_volumes[q], solo_vol, &what);
            }
            let hwm = trace.ranks.iter().map(|r| r.metrics.outstanding_hwm).max().unwrap_or(0);
            if max_inflight > 1 {
                assert!(hwm > 1, "t={t} inflight={max_inflight}: no cross-query overlap ({hwm})");
            }
            if max_inflight == SHIFTS.len() {
                pole_table = pole_summary_table(&run.query_volumes);
            }

            let speedup = seq_ms / batched_ms;
            let _ = writeln!(
                txt,
                "{t:>7} {max_inflight:>11} {seq_ms:>13.1} {batched_ms:>10.1} \
                 {speedup:>7.2}x {hwm:>11}"
            );
            points.push(Json::obj([
                ("threads", t.into()),
                ("max_inflight", max_inflight.into()),
                ("sequential_wall_ms", seq_ms.into()),
                ("batched_wall_ms", batched_ms.into()),
                ("batched_speedup_vs_sequential", speedup.into()),
                ("overlap_hwm", hwm.into()),
                ("bit_identical", true.into()),
                ("volumes_identical", true.into()),
            ]));
        }
    }
    let _ = writeln!(
        txt,
        "\nper-pole logical traffic (channel accounting, inflight = {}):\n{pole_table}\n\
         (speedup = standalone-poles wall / batched wall at equal thread count,\n\
         both under the same modeled per-message NIC latency; every pole\n\
         asserted bit-identical to its standalone run with exactly equal\n\
         logical volumes at every point)",
        SHIFTS.len()
    );
    let doc = Json::obj([
        ("bench", "poles".into()),
        ("matrix", w.name.as_str().into()),
        ("n", w.matrix.nrows().into()),
        ("grid", format!("{}x{}", grid.pr, grid.pc).into()),
        ("poles", (SHIFTS.len() as u64).into()),
        ("shifts", Json::Arr(SHIFTS.iter().map(|&s| Json::from(s)).collect())),
        ("lookahead", (LOOKAHEAD as u64).into()),
        ("nic_delay_us", delay_us.into()),
        ("tree_seed", TREE_SEED.into()),
        ("threads_sweep", Json::Arr(threads_sweep.iter().map(|&t| Json::from(t as u64)).collect())),
        ("points", Json::Arr(points)),
    ]);
    out.write_json("BENCH_poles.json", &doc)?;
    out.write_text("poles.txt", &txt)?;
    Ok(txt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> OutDir {
        OutDir::new(std::env::temp_dir().join("pselinv_fig_test")).unwrap()
    }

    #[test]
    fn table1_shape_matches_paper() {
        // The structural claims of Table I: Binary has the smallest min and
        // the largest max (striping); Shifted has the smallest std dev.
        let out = tmp();
        let _ = table1(&out).unwrap();
        let json = std::fs::read_to_string(out.0.join("table1.json")).unwrap();
        let rows = Json::parse(&json).unwrap();
        let get =
            |i: usize, f: &str| rows.idx(i).and_then(|r| r.get(f)).and_then(Json::as_f64).unwrap();
        // rows: 0 = Flat, 1 = Binary, 2 = Shifted, 3 = RandomPerm
        assert!(get(1, "max_mb") > get(0, "max_mb"), "binary max must exceed flat");
        assert!(get(2, "min_mb") > get(0, "min_mb"), "shifted must lift the minimum load");
        assert!(get(2, "std_dev_mb") < get(0, "std_dev_mb"), "shifted std dev must beat flat");
        assert!(get(2, "std_dev_mb") < get(1, "std_dev_mb"), "shifted std dev must beat binary");
        assert!(get(2, "max_mb") < get(0, "max_mb"), "shifted max must beat flat");
    }

    #[test]
    fn shifted_beats_binary_max_over_mean_at_46x46() {
        // The paper's headline balance claim at evaluation scale: on the
        // 46x46 (2,116-rank) grid the shifted binary tree's Col-Bcast
        // max/mean ratio must be strictly below the plain binary tree's
        // (whose striping concentrates load on interior columns).
        let a = workloads::audikw_volume();
        let grid = Grid2D::new(46, 46);
        let binary = Imbalance::from_volumes(&replay(&a, grid, TreeScheme::Binary).col_bcast_sent);
        let shifted =
            Imbalance::from_volumes(&replay(&a, grid, TreeScheme::ShiftedBinary).col_bcast_sent);
        assert!(
            shifted.max_over_mean < binary.max_over_mean,
            "shifted max/mean {} must beat binary {}",
            shifted.max_over_mean,
            binary.max_over_mean
        );
        assert!(
            shifted.sigma_over_mean < binary.sigma_over_mean,
            "shifted sigma/mean {} must beat binary {}",
            shifted.sigma_over_mean,
            binary.sigma_over_mean
        );
    }

    #[test]
    fn hotspot_and_critpath_artifacts_are_nonempty() {
        let out = tmp();
        let txt = hotspots(&out, 4).unwrap();
        assert!(txt.contains("max/mean"));
        let hs = std::fs::read_to_string(out.0.join("hotspots.json")).unwrap();
        let parsed = Json::parse(&hs).unwrap();
        assert_eq!(parsed.as_arr().unwrap().len(), 3);

        let txt = critpath(&out, 4).unwrap();
        assert!(txt.contains("critical path:"));
        let cp = std::fs::read_to_string(out.0.join("critpath.json")).unwrap();
        let parsed = Json::parse(&cp).unwrap();
        for entry in parsed.as_arr().unwrap() {
            let path = entry.get("path").unwrap();
            let len = path.get("length_us").unwrap().as_f64().unwrap();
            assert_eq!(Some(len), path.get("makespan_us").unwrap().as_f64());
            assert!(!path.get("steps").unwrap().as_arr().unwrap().is_empty());
        }
    }

    #[test]
    fn bench_smoke_emits_per_scheme_trace_json() {
        let out = tmp();
        let _ = bench_smoke(&out).unwrap();
        let doc = std::fs::read_to_string(out.0.join("BENCH_trace.json")).unwrap();
        let parsed = Json::parse(&doc).unwrap();
        let schemes = parsed.get("schemes").unwrap().as_arr().unwrap();
        assert_eq!(schemes.len(), 3);
        for s in schemes {
            assert!(s.get("makespan_s").unwrap().as_f64().unwrap() > 0.0);
            assert!(s.get("critical_path_us").unwrap().as_f64().unwrap() > 0.0);
            assert!(s.get("col_bcast_max_over_mean").unwrap().as_f64().unwrap() >= 1.0);
        }
    }

    #[test]
    fn faults_experiment_emits_degradation_per_scheme() {
        let out = tmp();
        let txt = faults(&out).unwrap();
        assert!(txt.contains("crashed at t=0"), "{txt}");
        let doc = std::fs::read_to_string(out.0.join("BENCH_fault.json")).unwrap();
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(parsed.get("crashed_ranks").unwrap().as_arr().unwrap().len(), 2);
        let schemes = parsed.get("schemes").unwrap().as_arr().unwrap();
        assert_eq!(schemes.len(), 3);
        for s in schemes {
            let name = s.get("scheme").unwrap();
            let frac = s.get("delivered_frac_no_rebuild").unwrap().as_f64().unwrap();
            assert!(
                frac > 0.0 && frac < 1.0,
                "{name:?}: a crash must strand part (not all) of the storm, got {frac}"
            );
            // The rebuilt trees exclude the dead ranks, so the storm
            // completes — the makespan is a real number comparable to the
            // fault-free one.
            assert!(s.get("makespan_rebuilt_s").unwrap().as_f64().unwrap() > 0.0);
            assert!(s.get("rebuilt_over_fault_free").unwrap().as_f64().unwrap() > 0.0);
        }
        // Structural claim: a flat tree strands only the dead ranks' own
        // tasks, while a binary tree loses whole subtrees — its delivered
        // fraction must be no better than flat's.
        let frac =
            |i: usize| schemes[i].get("delivered_frac_no_rebuild").unwrap().as_f64().unwrap();
        assert!(
            frac(1) <= frac(0) + 1e-12,
            "binary ({}) should strand at least as much as flat ({})",
            frac(1),
            frac(0)
        );
    }

    #[test]
    fn recovery_experiment_delivers_every_live_root_broadcast() {
        let out = tmp();
        // The experiment itself asserts the recovery contract (100%
        // survivor delivery, exact stranded set) per scheme; reaching the
        // artifact checks below means those held.
        let txt = recovery(&out).unwrap();
        assert!(txt.contains("recovery on"), "{txt}");
        let doc = std::fs::read_to_string(out.0.join("BENCH_recovery.json")).unwrap();
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(parsed.get("crashed_ranks").unwrap().as_arr().unwrap().len(), 2);
        let schemes = parsed.get("schemes").unwrap().as_arr().unwrap();
        assert_eq!(schemes.len(), 3);
        for s in schemes {
            let name = s.get("scheme").unwrap();
            assert_eq!(
                s.get("survivor_delivered_frac").unwrap().as_f64().unwrap(),
                1.0,
                "{name:?}: recovery must deliver every live-root broadcast"
            );
            let baseline = s.get("delivered_frac_no_rebuild").unwrap().as_f64().unwrap();
            assert!(
                baseline < 1.0,
                "{name:?}: the no-rebuild baseline must strand part of the storm, got {baseline}"
            );
            assert_eq!(s.get("stranded_supernodes").unwrap().as_arr().unwrap().len(), 1);
        }
        // Deep trees orphan whole subtrees, so their rescue must have
        // involved actual re-homing (a flat tree legitimately needs none).
        for i in [1usize, 2] {
            assert!(
                schemes[i].get("joins").unwrap().as_f64().unwrap() > 0.0,
                "deep scheme {i} must have re-homed orphans"
            );
        }
    }

    #[test]
    fn fig6_small_grid_is_relatively_balanced() {
        let out = tmp();
        let txt = fig6(&out).unwrap();
        // the rendered text carries both percentages; parse them
        let pct: Vec<f64> = txt
            .split('%')
            .filter_map(|s| s.split_whitespace().last().and_then(|w| w.parse().ok()))
            .collect();
        assert!(pct.len() >= 2);
        assert!(pct[0] < pct[1], "16x16 relative spread must be below 46x46: {txt}");
    }
}
