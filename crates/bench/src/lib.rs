//! Benchmark harness regenerating every table and figure of the paper.
//!
//! * [`workloads`] — proxy matrices for the paper's evaluation set and the
//!   analysis settings of the two experiment families (volume replay at
//!   46×46, DES strong scaling at 64…12,100 ranks);
//! * [`experiments`] — one runner per paper artifact (Table I/II,
//!   Figs. 4–9) plus the ablations called out in `DESIGN.md` §6;
//! * [`regress`] — the perf-regression sentinel: an append-only run
//!   registry under `results/runs/` and a baseline differ gating CI;
//! * the `figures` binary drives everything:
//!   `cargo run --release -p pselinv-bench --bin figures -- all`.

pub mod experiments;
pub mod regress;
pub mod workloads;
