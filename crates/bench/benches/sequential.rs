//! Sequential numeric pipeline: factorization and selected inversion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pselinv_factor::factorize;
use pselinv_order::{analyze, AnalyzeOptions, OrderingChoice};
use pselinv_selinv::selinv_ldlt;
use pselinv_sparse::gen;
use std::hint::black_box;
use std::sync::Arc;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("sequential");
    g.sample_size(10);
    for &nx in &[8usize, 12] {
        let w = gen::grid_laplacian_3d(nx, nx, nx);
        let opts = AnalyzeOptions {
            ordering: OrderingChoice::NestedDissection(w.geometry, Default::default()),
            ..Default::default()
        };
        let sf = Arc::new(analyze(&w.matrix.pattern(), &opts));
        g.bench_with_input(BenchmarkId::new("factorize", nx * nx * nx), &nx, |b, _| {
            b.iter(|| factorize(black_box(&w.matrix), sf.clone()).unwrap());
        });
        let f = factorize(&w.matrix, sf.clone()).unwrap();
        g.bench_with_input(BenchmarkId::new("selinv", nx * nx * nx), &nx, |b, _| {
            b.iter(|| selinv_ldlt(black_box(&f)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
