//! End-to-end restricted collectives over the thread runtime — the real
//! cost of a tree-routed broadcast/reduction at small (intra-node) scale,
//! where the paper observes Flat-Tree can win (motivating the hybrid).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pselinv_mpisim::collectives::{tree_bcast, tree_reduce};
use pselinv_trees::{TreeBuilder, TreeScheme};
use std::hint::black_box;

fn bench_bcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpisim_bcast");
    g.sample_size(10);
    let p = 8usize;
    let payload = 4096usize; // 32 KiB of f64
    for (name, scheme) in [
        ("flat", TreeScheme::Flat),
        ("shifted", TreeScheme::ShiftedBinary),
        ("hybrid16", TreeScheme::Hybrid { flat_threshold: 16 }),
    ] {
        let tree = TreeBuilder::new(scheme, 1).build(0, &(1..p).collect::<Vec<_>>(), 9);
        g.bench_with_input(BenchmarkId::new(name, p), &p, |b, _| {
            b.iter(|| {
                pselinv_mpisim::run(p, |ctx| {
                    let data = (ctx.rank() == 0).then(|| black_box(vec![1.0f64; payload]));
                    tree_bcast(ctx, &tree, 0, data).len()
                })
            });
        });
    }
    g.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpisim_reduce");
    g.sample_size(10);
    let p = 8usize;
    let payload = 4096usize;
    for (name, scheme) in [("flat", TreeScheme::Flat), ("shifted", TreeScheme::ShiftedBinary)] {
        let tree = TreeBuilder::new(scheme, 1).build(0, &(1..p).collect::<Vec<_>>(), 5);
        g.bench_with_input(BenchmarkId::new(name, p), &p, |b, _| {
            b.iter(|| {
                pselinv_mpisim::run(p, |ctx| {
                    tree_reduce(ctx, &tree, 0, black_box(vec![1.0f64; payload])).is_some()
                })
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bcast, bench_reduce);
criterion_main!(benches);
