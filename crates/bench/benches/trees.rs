//! Tree construction cost per scheme — the paper's requirement that
//! restricted collectives be "dynamically created with very little
//! overhead" (no communicator creation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pselinv_trees::{TreeBuilder, TreeScheme};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_build");
    for &p in &[8usize, 64, 512] {
        let receivers: Vec<usize> = (1..p).collect();
        for (name, scheme) in [
            ("flat", TreeScheme::Flat),
            ("binary", TreeScheme::Binary),
            ("shifted", TreeScheme::ShiftedBinary),
            ("randperm", TreeScheme::RandomPerm),
        ] {
            let builder = TreeBuilder::new(scheme, 42);
            g.bench_with_input(BenchmarkId::new(name, p), &p, |b, _| {
                let mut key = 0u64;
                b.iter(|| {
                    key += 1;
                    builder.build(0, black_box(&receivers), key)
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
