//! Structure-only volume replay cost (Tables I/II machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pselinv_bench::workloads;
use pselinv_dist::{replay_volumes, Layout};
use pselinv_mpisim::Grid2D;
use pselinv_trees::{TreeBuilder, TreeScheme};
use std::hint::black_box;

fn bench_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("volume_replay");
    g.sample_size(10);
    let a = workloads::dg_water_volume();
    for &p in &[256usize, 2116] {
        let layout = Layout::new(a.symbolic.clone(), Grid2D::square_for(p));
        for (name, scheme) in [("flat", TreeScheme::Flat), ("shifted", TreeScheme::ShiftedBinary)] {
            g.bench_with_input(BenchmarkId::new(name, p), &p, |b, _| {
                b.iter(|| replay_volumes(black_box(&layout), TreeBuilder::new(scheme, 1)));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
