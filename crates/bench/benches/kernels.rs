//! Dense block kernels — the per-task costs the DES's flop model abstracts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pselinv_dense::{
    gemm, gemm_naive, ldlt_factor, ldlt_invert, trsm_right_lower, trsm_right_lower_naive, Mat,
    Transpose,
};
use std::hint::black_box;

fn mat(n: usize, m: usize, seed: u64) -> Mat {
    let mut state = seed | 1;
    let mut out = Mat::zeros(n, m);
    for j in 0..m {
        for i in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            out[(i, j)] = (state as f64 / u64::MAX as f64) - 0.5;
        }
    }
    out
}

fn spd(n: usize, seed: u64) -> Mat {
    let mut a = mat(n, n, seed);
    for j in 0..n {
        for i in 0..j {
            let v = a[(i, j)];
            a[(j, i)] = v;
        }
        a[(j, j)] = n as f64 + 1.0;
    }
    a
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    for &n in &[16usize, 32, 64] {
        let a = mat(n, n, 1);
        let b = mat(n, n, 2);
        g.bench_with_input(BenchmarkId::new("nn", n), &n, |bch, _| {
            let mut cmat = Mat::zeros(n, n);
            bch.iter(|| gemm(1.0, black_box(&a), Transpose::No, &b, Transpose::No, 0.0, &mut cmat));
        });
        g.bench_with_input(BenchmarkId::new("tn", n), &n, |bch, _| {
            let mut cmat = Mat::zeros(n, n);
            bch.iter(|| {
                gemm(1.0, black_box(&a), Transpose::Yes, &b, Transpose::No, 0.0, &mut cmat)
            });
        });
    }
    g.finish();
}

fn bench_gemm_blocked_vs_naive(c: &mut Criterion) {
    // The packed/blocked core against the seed jki kernel, at sizes where
    // packing and register tiling pay off.
    let mut g = c.benchmark_group("gemm_large");
    for &n in &[128usize, 256] {
        let a = mat(n, n, 1);
        let b = mat(n, n, 2);
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            let mut cmat = Mat::zeros(n, n);
            bch.iter(|| {
                gemm_naive(1.0, black_box(&a), Transpose::No, &b, Transpose::No, 0.0, &mut cmat)
            });
        });
        g.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            let mut cmat = Mat::zeros(n, n);
            bch.iter(|| gemm(1.0, black_box(&a), Transpose::No, &b, Transpose::No, 0.0, &mut cmat));
        });
    }
    g.finish();
}

fn bench_trsm(c: &mut Criterion) {
    let mut g = c.benchmark_group("trsm_right_lower");
    for &w in &[64usize, 128] {
        let m = 192usize;
        let mut l = mat(w, w, 5);
        for j in 0..w {
            l[(j, j)] = 1.0;
        }
        let b = mat(m, w, 6);
        g.bench_with_input(BenchmarkId::new("naive", w), &w, |bch, _| {
            bch.iter(|| {
                let mut x = b.clone();
                trsm_right_lower_naive(black_box(&mut x), &l, true);
                x
            });
        });
        g.bench_with_input(BenchmarkId::new("blocked", w), &w, |bch, _| {
            bch.iter(|| {
                let mut x = b.clone();
                trsm_right_lower(black_box(&mut x), &l, true);
                x
            });
        });
    }
    g.finish();
}

fn bench_ldlt(c: &mut Criterion) {
    let mut g = c.benchmark_group("ldlt");
    for &n in &[16usize, 32, 64] {
        let a = spd(n, 3);
        g.bench_with_input(BenchmarkId::new("factor", n), &n, |bch, _| {
            bch.iter(|| {
                let mut f = a.clone();
                ldlt_factor(black_box(&mut f)).unwrap();
                f
            });
        });
        let mut f = a.clone();
        ldlt_factor(&mut f).unwrap();
        g.bench_with_input(BenchmarkId::new("invert", n), &n, |bch, _| {
            bch.iter(|| ldlt_invert(black_box(&f)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gemm, bench_gemm_blocked_vs_naive, bench_trsm, bench_ldlt);
criterion_main!(benches);
