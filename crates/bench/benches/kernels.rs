//! Dense block kernels — the per-task costs the DES's flop model abstracts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pselinv_dense::{gemm, ldlt_factor, ldlt_invert, Mat, Transpose};
use std::hint::black_box;

fn mat(n: usize, m: usize, seed: u64) -> Mat {
    let mut state = seed | 1;
    let mut out = Mat::zeros(n, m);
    for j in 0..m {
        for i in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            out[(i, j)] = (state as f64 / u64::MAX as f64) - 0.5;
        }
    }
    out
}

fn spd(n: usize, seed: u64) -> Mat {
    let mut a = mat(n, n, seed);
    for j in 0..n {
        for i in 0..j {
            let v = a[(i, j)];
            a[(j, i)] = v;
        }
        a[(j, j)] = n as f64 + 1.0;
    }
    a
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    for &n in &[16usize, 32, 64] {
        let a = mat(n, n, 1);
        let b = mat(n, n, 2);
        g.bench_with_input(BenchmarkId::new("nn", n), &n, |bch, _| {
            let mut cmat = Mat::zeros(n, n);
            bch.iter(|| gemm(1.0, black_box(&a), Transpose::No, &b, Transpose::No, 0.0, &mut cmat));
        });
        g.bench_with_input(BenchmarkId::new("tn", n), &n, |bch, _| {
            let mut cmat = Mat::zeros(n, n);
            bch.iter(|| {
                gemm(1.0, black_box(&a), Transpose::Yes, &b, Transpose::No, 0.0, &mut cmat)
            });
        });
    }
    g.finish();
}

fn bench_ldlt(c: &mut Criterion) {
    let mut g = c.benchmark_group("ldlt");
    for &n in &[16usize, 32, 64] {
        let a = spd(n, 3);
        g.bench_with_input(BenchmarkId::new("factor", n), &n, |bch, _| {
            bch.iter(|| {
                let mut f = a.clone();
                ldlt_factor(black_box(&mut f)).unwrap();
                f
            });
        });
        let mut f = a.clone();
        ldlt_factor(&mut f).unwrap();
        g.bench_with_input(BenchmarkId::new("invert", n), &n, |bch, _| {
            bch.iter(|| ldlt_invert(black_box(&f)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gemm, bench_ldlt);
criterion_main!(benches);
