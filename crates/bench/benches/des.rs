//! Task-graph generation and discrete-event replay cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pselinv_bench::workloads;
use pselinv_des::simulate;
use pselinv_dist::taskgraph::{selinv_graph, GraphOptions};
use pselinv_dist::Layout;
use pselinv_mpisim::Grid2D;
use pselinv_trees::TreeScheme;
use std::hint::black_box;

fn bench_des(c: &mut Criterion) {
    let mut g = c.benchmark_group("des");
    g.sample_size(10);
    let a = workloads::dg_water_volume();
    for &p in &[256usize, 1024] {
        let layout = Layout::new(a.symbolic.clone(), Grid2D::square_for(p));
        let opts = GraphOptions { scheme: TreeScheme::ShiftedBinary, ..Default::default() };
        g.bench_with_input(BenchmarkId::new("graph_gen", p), &p, |b, _| {
            b.iter(|| selinv_graph(black_box(&layout), &opts));
        });
        let graph = selinv_graph(&layout, &opts);
        g.bench_with_input(BenchmarkId::new("simulate", p), &p, |b, _| {
            b.iter(|| simulate(black_box(&graph), workloads::des_machine(0)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_des);
criterion_main!(benches);
