//! Symbolic analysis costs: elimination tree, counts, supernodal structure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pselinv_order::{analyze, etree, AnalyzeOptions, OrderingChoice};
use pselinv_sparse::gen;
use std::hint::black_box;

fn bench_etree_and_counts(c: &mut Criterion) {
    let mut g = c.benchmark_group("etree");
    g.sample_size(20);
    for &nx in &[16usize, 24] {
        let w = gen::grid_laplacian_3d(nx, nx, nx);
        let pat = w.matrix.pattern().symmetrized_with_diagonal();
        g.bench_with_input(BenchmarkId::new("elimination_tree", nx * nx * nx), &nx, |b, _| {
            b.iter(|| etree::elimination_tree(black_box(&pat)));
        });
        let parent = etree::elimination_tree(&pat);
        g.bench_with_input(BenchmarkId::new("factor_counts", nx * nx * nx), &nx, |b, _| {
            b.iter(|| etree::factor_counts(black_box(&pat), &parent));
        });
    }
    g.finish();
}

fn bench_full_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("analyze");
    g.sample_size(10);
    let w = gen::fem_3d(12, 12, 12, 3, 7);
    for (name, ordering) in [
        ("nd", OrderingChoice::NestedDissection(w.geometry, Default::default())),
        ("mmd", OrderingChoice::MinimumDegree),
    ] {
        let opts = AnalyzeOptions { ordering, ..Default::default() };
        g.bench_function(name, |b| {
            b.iter(|| analyze(black_box(&w.matrix.pattern()), &opts));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_etree_and_counts, bench_full_analysis);
criterion_main!(benches);
