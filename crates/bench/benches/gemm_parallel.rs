//! Pool-parallel GEMM vs the serial blocked kernel, at the square sizes
//! where the window products of the selected inversion actually land.
//! `gemm_pool` must be bit-identical to `gemm` (chunk boundaries are
//! register-block aligned), so the only question criterion answers is
//! what the persistent pool buys — or costs — per shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pselinv_dense::{gemm, gemm_pool, Mat, Transpose};
use pselinv_pool::Pool;
use std::hint::black_box;

fn mat(n: usize, m: usize, seed: u64) -> Mat {
    let mut state = seed | 1;
    let mut out = Mat::zeros(n, m);
    for j in 0..m {
        for i in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            out[(i, j)] = (state as f64 / u64::MAX as f64) - 0.5;
        }
    }
    out
}

fn bench_gemm_parallel(c: &mut Criterion) {
    let pool = Pool::new(4);
    let mut g = c.benchmark_group("gemm_parallel");
    g.sample_size(10);
    for &n in &[128usize, 256, 512] {
        let a = mat(n, n, 1);
        let b = mat(n, n, 2);
        let mut cs = Mat::zeros(n, n);
        let mut cp = Mat::zeros(n, n);
        g.bench_with_input(BenchmarkId::new("serial", n), &n, |bch, _| {
            bch.iter(|| {
                gemm(1.0, black_box(&a), Transpose::No, black_box(&b), Transpose::No, 0.0, &mut cs)
            })
        });
        g.bench_with_input(BenchmarkId::new("pool4", n), &n, |bch, _| {
            bch.iter(|| {
                gemm_pool(
                    &pool,
                    1.0,
                    black_box(&a),
                    Transpose::No,
                    black_box(&b),
                    Transpose::No,
                    0.0,
                    &mut cp,
                )
            })
        });
        // Not a benchmark, but free to check here: the two kernels must
        // agree to the bit.
        for j in 0..n {
            for i in 0..n {
                assert_eq!(cs[(i, j)].to_bits(), cp[(i, j)].to_bits(), "({i},{j}) at n={n}");
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench_gemm_parallel);
criterion_main!(benches);
