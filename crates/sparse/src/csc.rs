//! Compressed sparse column (CSC) matrix.

use crate::pattern::SparsityPattern;

/// A real sparse matrix in compressed sparse column format.
///
/// Invariants (checked by [`SparseMatrix::from_raw_parts`]):
/// * `col_ptr` has length `ncols + 1`, is non-decreasing, starts at 0 and
///   ends at `nnz`;
/// * row indices within each column are strictly increasing and `< nrows`.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseMatrix {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds a CSC matrix from raw arrays, validating all invariants.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(col_ptr.len(), ncols + 1, "col_ptr length must be ncols+1");
        assert_eq!(col_ptr[0], 0, "col_ptr must start at 0");
        assert_eq!(*col_ptr.last().unwrap(), row_idx.len(), "col_ptr must end at nnz");
        assert_eq!(row_idx.len(), values.len(), "row_idx/values length mismatch");
        for j in 0..ncols {
            assert!(col_ptr[j] <= col_ptr[j + 1], "col_ptr must be non-decreasing");
            for k in col_ptr[j]..col_ptr[j + 1] {
                assert!(row_idx[k] < nrows, "row index out of bounds");
                if k > col_ptr[j] {
                    assert!(row_idx[k - 1] < row_idx[k], "row indices must be strictly increasing");
                }
            }
        }
        Self { nrows, ncols, col_ptr, row_idx, values }
    }

    /// Zero matrix with no stored entries.
    pub fn zero(nrows: usize, ncols: usize) -> Self {
        Self { nrows, ncols, col_ptr: vec![0; ncols + 1], row_idx: Vec::new(), values: Vec::new() }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            nrows: n,
            ncols: n,
            col_ptr: (0..=n).collect(),
            row_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Column pointer array (`ncols + 1` entries).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row index array.
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// Value array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Row indices of column `j`.
    pub fn col_rows(&self, j: usize) -> &[usize] {
        &self.row_idx[self.col_ptr[j]..self.col_ptr[j + 1]]
    }

    /// Values of column `j`.
    pub fn col_values(&self, j: usize) -> &[f64] {
        &self.values[self.col_ptr[j]..self.col_ptr[j + 1]]
    }

    /// Value at `(i, j)`; zero if the entry is not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        match self.col_rows(j).binary_search(&i) {
            Ok(k) => self.col_values(j)[k],
            Err(_) => 0.0,
        }
    }

    /// Structure-only view of this matrix.
    pub fn pattern(&self) -> SparsityPattern {
        SparsityPattern::from_raw_parts(
            self.nrows,
            self.ncols,
            self.col_ptr.clone(),
            self.row_idx.clone(),
        )
    }

    /// Transposed copy.
    pub fn transpose(&self) -> SparseMatrix {
        let mut col_ptr = vec![0usize; self.nrows + 1];
        for &r in &self.row_idx {
            col_ptr[r + 1] += 1;
        }
        for i in 0..self.nrows {
            col_ptr[i + 1] += col_ptr[i];
        }
        let mut heads = col_ptr[..self.nrows].to_vec();
        let mut row_idx = vec![0usize; self.nnz()];
        let mut values = vec![0f64; self.nnz()];
        for j in 0..self.ncols {
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                let r = self.row_idx[k];
                let slot = heads[r];
                heads[r] += 1;
                row_idx[slot] = j;
                values[slot] = self.values[k];
            }
        }
        // CSC of the transpose built by a stable counting pass: row indices
        // within each column are already sorted because j runs in order.
        SparseMatrix { nrows: self.ncols, ncols: self.nrows, col_ptr, row_idx, values }
    }

    /// `true` if the sparsity pattern is structurally symmetric.
    pub fn is_pattern_symmetric(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        self.col_ptr == t.col_ptr && self.row_idx == t.row_idx
    }

    /// `true` if the matrix is numerically symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        if self.col_ptr != t.col_ptr || self.row_idx != t.row_idx {
            return false;
        }
        self.values.iter().zip(&t.values).all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Symmetrized pattern copy `A + Aᵀ` (values are summed).
    pub fn symmetrize(&self) -> SparseMatrix {
        assert_eq!(self.nrows, self.ncols, "symmetrize requires a square matrix");
        let t = self.transpose();
        self.add_scaled(&t, 0.5, 0.5)
    }

    /// Returns `alpha * self + beta * other` (patterns are merged).
    pub fn add_scaled(&self, other: &SparseMatrix, alpha: f64, beta: f64) -> SparseMatrix {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        let mut col_ptr = vec![0usize; self.ncols + 1];
        let mut row_idx = Vec::with_capacity(self.nnz() + other.nnz());
        let mut values = Vec::with_capacity(self.nnz() + other.nnz());
        for j in 0..self.ncols {
            let (ar, av) = (self.col_rows(j), self.col_values(j));
            let (br, bv) = (other.col_rows(j), other.col_values(j));
            let (mut ia, mut ib) = (0usize, 0usize);
            while ia < ar.len() || ib < br.len() {
                let next = match (ar.get(ia), br.get(ib)) {
                    (Some(&ra), Some(&rb)) if ra == rb => {
                        let e = (ra, alpha * av[ia] + beta * bv[ib]);
                        ia += 1;
                        ib += 1;
                        e
                    }
                    (Some(&ra), Some(&rb)) if ra < rb => {
                        let e = (ra, alpha * av[ia]);
                        ia += 1;
                        e
                    }
                    (Some(_), Some(&rb)) => {
                        let e = (rb, beta * bv[ib]);
                        ib += 1;
                        e
                    }
                    (Some(&ra), None) => {
                        let e = (ra, alpha * av[ia]);
                        ia += 1;
                        e
                    }
                    (None, Some(&rb)) => {
                        let e = (rb, beta * bv[ib]);
                        ib += 1;
                        e
                    }
                    (None, None) => unreachable!(),
                };
                row_idx.push(next.0);
                values.push(next.1);
            }
            col_ptr[j + 1] = row_idx.len();
        }
        SparseMatrix { nrows: self.nrows, ncols: self.ncols, col_ptr, row_idx, values }
    }

    /// Dense matrix-vector product `y = A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols);
        let mut y = vec![0.0; self.nrows];
        for j in 0..self.ncols {
            let xj = x[j];
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                y[self.row_idx[k]] += self.values[k] * xj;
            }
        }
        y
    }

    /// Symmetric permutation `P A Pᵀ`: entry `(i, j)` moves to
    /// `(perm[i], perm[j])` where `perm` maps old index to new index.
    pub fn permute_sym(&self, perm: &[usize]) -> SparseMatrix {
        assert_eq!(self.nrows, self.ncols);
        assert_eq!(perm.len(), self.nrows);
        let n = self.nrows;
        let mut col_counts = vec![0usize; n + 1];
        for j in 0..n {
            col_counts[perm[j] + 1] += self.col_ptr[j + 1] - self.col_ptr[j];
        }
        for j in 0..n {
            col_counts[j + 1] += col_counts[j];
        }
        let mut heads = col_counts[..n].to_vec();
        let nnz = self.nnz();
        let mut row_idx = vec![0usize; nnz];
        let mut values = vec![0f64; nnz];
        for j in 0..n {
            let nj = perm[j];
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                let slot = heads[nj];
                heads[nj] += 1;
                row_idx[slot] = perm[self.row_idx[k]];
                values[slot] = self.values[k];
            }
        }
        // Sort rows within each permuted column.
        let mut out_rows = Vec::with_capacity(nnz);
        let mut out_vals = Vec::with_capacity(nnz);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for j in 0..n {
            scratch.clear();
            for k in col_counts[j]..col_counts[j + 1] {
                scratch.push((row_idx[k], values[k]));
            }
            scratch.sort_unstable_by_key(|&(r, _)| r);
            for &(r, v) in &scratch {
                out_rows.push(r);
                out_vals.push(v);
            }
        }
        SparseMatrix {
            nrows: n,
            ncols: n,
            col_ptr: col_counts,
            row_idx: out_rows,
            values: out_vals,
        }
    }

    /// Dense copy in column-major order, mainly for verification at small n.
    pub fn to_dense_col_major(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.nrows * self.ncols];
        for j in 0..self.ncols {
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                d[j * self.nrows + self.row_idx[k]] = self.values[k];
            }
        }
        d
    }

    /// Iterator over all stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.ncols).flat_map(move |j| {
            self.col_rows(j).iter().zip(self.col_values(j)).map(move |(&i, &v)| (i, j, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;

    fn small() -> SparseMatrix {
        // [ 2 0 1 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(2, 0, 4.0);
        t.push(1, 1, 3.0);
        t.push(0, 2, 1.0);
        t.push(2, 2, 5.0);
        t.to_csc()
    }

    #[test]
    fn getters() {
        let m = small();
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(2, 0), 4.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.nnz(), 5);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = small();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
    }

    #[test]
    fn transpose_entries() {
        let m = small();
        let t = m.transpose();
        assert_eq!(t.get(0, 2), 4.0);
        assert_eq!(t.get(2, 0), 1.0);
        assert_eq!(t.get(1, 1), 3.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = small();
        let y = m.matvec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![2.0 + 3.0, 6.0, 4.0 + 15.0]);
    }

    #[test]
    fn pattern_symmetry() {
        let m = small();
        assert!(m.is_pattern_symmetric());
        assert!(!m.is_symmetric(1e-12)); // (2,0)=4 but (0,2)=1
        let s = m.symmetrize();
        assert!(s.is_pattern_symmetric());
        assert!(s.is_symmetric(0.0));
        // symmetrize averages A and Aᵀ
        assert_eq!(s.get(2, 0), 2.5);
        assert_eq!(s.get(0, 2), 2.5);
    }

    #[test]
    fn identity_and_zero() {
        let i = SparseMatrix::identity(4);
        assert_eq!(i.matvec(&[1.0, 2.0, 3.0, 4.0]), vec![1.0, 2.0, 3.0, 4.0]);
        let z = SparseMatrix::zero(2, 3);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.matvec(&[1.0; 3]), vec![0.0; 2]);
    }

    #[test]
    fn permute_sym_roundtrip() {
        let m = small().symmetrize();
        let perm = vec![2usize, 0, 1]; // old -> new
        let p = m.permute_sym(&perm);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(p.get(perm[i], perm[j]), m.get(i, j));
            }
        }
    }

    #[test]
    fn add_scaled_merges_patterns() {
        let a = small();
        let b = SparseMatrix::identity(3);
        let c = a.add_scaled(&b, 1.0, 10.0);
        assert_eq!(c.get(0, 0), 12.0);
        assert_eq!(c.get(1, 1), 13.0);
        assert_eq!(c.get(2, 2), 15.0);
        assert_eq!(c.get(2, 0), 4.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_raw_parts_rejects_unsorted() {
        SparseMatrix::from_raw_parts(2, 1, vec![0, 2], vec![1, 0], vec![1.0, 2.0]);
    }

    #[test]
    fn dense_conversion() {
        let m = small();
        let d = m.to_dense_col_major();
        assert_eq!(d[0], 2.0); // (0,0)
        assert_eq!(d[2], 4.0); // (2,0)
        assert_eq!(d[4], 3.0); // (1,1)
        assert_eq!(d[6], 1.0); // (0,2)
    }
}
