//! Matrix Market (`.mtx`) I/O.
//!
//! Supports the `matrix coordinate real {general|symmetric}` and
//! `matrix coordinate pattern {general|symmetric}` flavours, which covers
//! the UF-collection matrices used in the paper (audikw_1, Flan_1565) when
//! they are available locally.

use crate::csc::SparseMatrix;
use crate::triplet::TripletMatrix;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or syntactic problem in the file, with a description.
    Parse(String),
}

impl fmt::Display for MmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(msg) => write!(f, "Matrix Market parse error: {msg}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

/// Reads a Matrix Market matrix from any reader.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<SparseMatrix, MmError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines.next().ok_or_else(|| parse_err("empty file"))??;
    let header_lc = header.to_ascii_lowercase();
    let fields: Vec<&str> = header_lc.split_whitespace().collect();
    if fields.len() < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(parse_err(format!("bad header line: {header}")));
    }
    if fields[2] != "coordinate" {
        return Err(parse_err("only coordinate format is supported"));
    }
    let pattern_only = match fields[3] {
        "real" | "integer" => false,
        "pattern" => true,
        other => return Err(parse_err(format!("unsupported field type: {other}"))),
    };
    let symmetric = match fields[4] {
        "general" => false,
        "symmetric" => true,
        other => return Err(parse_err(format!("unsupported symmetry: {other}"))),
    };

    // Skip comments, find size line.
    let size_line = loop {
        let line = lines.next().ok_or_else(|| parse_err("missing size line"))??;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        break trimmed.to_string();
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|s| s.parse::<usize>().map_err(|_| parse_err(format!("bad size line: {size_line}"))))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(parse_err(format!("size line must have 3 fields: {size_line}")));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut t = TripletMatrix::with_capacity(nrows, ncols, if symmetric { 2 * nnz } else { nnz });
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| parse_err("missing row index"))?
            .parse()
            .map_err(|_| parse_err(format!("bad entry line: {trimmed}")))?;
        let j: usize = it
            .next()
            .ok_or_else(|| parse_err("missing col index"))?
            .parse()
            .map_err(|_| parse_err(format!("bad entry line: {trimmed}")))?;
        let v: f64 = if pattern_only {
            1.0
        } else {
            it.next()
                .ok_or_else(|| parse_err("missing value"))?
                .parse()
                .map_err(|_| parse_err(format!("bad value in line: {trimmed}")))?
        };
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(parse_err(format!("index out of range in line: {trimmed}")));
        }
        if symmetric {
            t.push_sym(i - 1, j - 1, v);
        } else {
            t.push(i - 1, j - 1, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(t.to_csc())
}

/// Reads a Matrix Market file from disk.
pub fn read_matrix_market_file<P: AsRef<Path>>(path: P) -> Result<SparseMatrix, MmError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Writes a matrix in `coordinate real general` Matrix Market format.
pub fn write_matrix_market<W: Write>(mut w: W, m: &SparseMatrix) -> Result<(), MmError> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for (i, j, v) in m.iter() {
        writeln!(w, "{} {} {:.17e}", i + 1, j + 1, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_general() {
        let m = crate::gen::random_spd(20, 0.2, 11);
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &m).unwrap();
        let m2 = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(m.nnz(), m2.nnz());
        for (i, j, v) in m.iter() {
            assert!((m2.get(i, j) - v).abs() < 1e-15);
        }
    }

    #[test]
    fn symmetric_lower_triangle_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    % comment\n\
                    3 3 4\n\
                    1 1 2.0\n\
                    2 2 3.0\n\
                    3 3 4.0\n\
                    3 1 -1.0\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.get(2, 0), -1.0);
        assert_eq!(m.get(0, 2), -1.0);
        assert_eq!(m.nnz(), 5);
    }

    #[test]
    fn pattern_matrices_get_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 1\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_matrix_market("garbage\n1 1 0\n".as_bytes()).is_err());
        assert!(read_matrix_market("%%MatrixMarket matrix array real general\n1 1 0\n".as_bytes())
            .is_err());
    }

    #[test]
    fn rejects_wrong_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range_index() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }
}
