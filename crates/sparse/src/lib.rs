//! Sparse matrix containers, workload generators and Matrix Market I/O.
//!
//! This crate is the lowest substrate of `pselinv-rs`. It provides:
//!
//! * [`SparseMatrix`] — a compressed sparse column (CSC) matrix with sorted
//!   row indices, the canonical exchange format between the ordering,
//!   factorization and selected-inversion layers;
//! * [`SparsityPattern`] — the structure-only counterpart used by symbolic
//!   analysis;
//! * [`gen`] — synthetic workload generators standing in for the paper's
//!   evaluation matrices (UF-collection FEM matrices and discontinuous
//!   Galerkin Kohn–Sham Hamiltonians), see `DESIGN.md` §2;
//! * [`io`] — Matrix Market (`.mtx`) reading and writing so externally
//!   provided matrices can be used when available.

pub mod csc;
pub mod gen;
pub mod io;
pub mod pattern;
pub mod triplet;

pub use csc::SparseMatrix;
pub use pattern::SparsityPattern;
pub use triplet::TripletMatrix;
