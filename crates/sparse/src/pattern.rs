//! Structure-only sparse matrix (no values), used by symbolic analysis.

/// Sparsity pattern of a CSC matrix: column pointers + sorted row indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparsityPattern {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
}

impl SparsityPattern {
    /// Builds a pattern from raw arrays, validating invariants.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<usize>,
    ) -> Self {
        assert_eq!(col_ptr.len(), ncols + 1);
        assert_eq!(col_ptr[0], 0);
        assert_eq!(*col_ptr.last().unwrap(), row_idx.len());
        for j in 0..ncols {
            assert!(col_ptr[j] <= col_ptr[j + 1]);
            for k in col_ptr[j]..col_ptr[j + 1] {
                assert!(row_idx[k] < nrows);
                if k > col_ptr[j] {
                    assert!(row_idx[k - 1] < row_idx[k], "rows must be strictly increasing");
                }
            }
        }
        Self { nrows, ncols, col_ptr, row_idx }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored positions.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Column pointer array.
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row index array.
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// Row indices of column `j`.
    pub fn col_rows(&self, j: usize) -> &[usize] {
        &self.row_idx[self.col_ptr[j]..self.col_ptr[j + 1]]
    }

    /// `true` if position `(i, j)` is stored.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        self.col_rows(j).binary_search(&i).is_ok()
    }

    /// Transposed pattern.
    pub fn transpose(&self) -> SparsityPattern {
        let mut col_ptr = vec![0usize; self.nrows + 1];
        for &r in &self.row_idx {
            col_ptr[r + 1] += 1;
        }
        for i in 0..self.nrows {
            col_ptr[i + 1] += col_ptr[i];
        }
        let mut heads = col_ptr[..self.nrows].to_vec();
        let mut row_idx = vec![0usize; self.nnz()];
        for j in 0..self.ncols {
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                let r = self.row_idx[k];
                row_idx[heads[r]] = j;
                heads[r] += 1;
            }
        }
        SparsityPattern { nrows: self.ncols, ncols: self.nrows, col_ptr, row_idx }
    }

    /// Pattern of `A + Aᵀ` (square matrices only), with the diagonal forced
    /// present — the canonical input for symmetric orderings.
    pub fn symmetrized_with_diagonal(&self) -> SparsityPattern {
        assert_eq!(self.nrows, self.ncols);
        let n = self.nrows;
        let t = self.transpose();
        let mut col_ptr = vec![0usize; n + 1];
        let mut row_idx = Vec::with_capacity(2 * self.nnz() + n);
        let mut merged: Vec<usize> = Vec::new();
        for j in 0..n {
            merged.clear();
            let (a, b) = (self.col_rows(j), t.col_rows(j));
            let (mut ia, mut ib) = (0usize, 0usize);
            let mut seen_diag = false;
            loop {
                let next = match (a.get(ia), b.get(ib)) {
                    (Some(&ra), Some(&rb)) if ra == rb => {
                        ia += 1;
                        ib += 1;
                        ra
                    }
                    (Some(&ra), Some(&rb)) if ra < rb => {
                        ia += 1;
                        ra
                    }
                    (Some(_), Some(&rb)) => {
                        ib += 1;
                        rb
                    }
                    (Some(&ra), None) => {
                        ia += 1;
                        ra
                    }
                    (None, Some(&rb)) => {
                        ib += 1;
                        rb
                    }
                    (None, None) => break,
                };
                if !seen_diag && next >= j {
                    if next > j {
                        merged.push(j);
                    }
                    seen_diag = true;
                }
                merged.push(next);
            }
            if !seen_diag {
                merged.push(j);
            }
            row_idx.extend_from_slice(&merged);
            col_ptr[j + 1] = row_idx.len();
        }
        SparsityPattern { nrows: n, ncols: n, col_ptr, row_idx }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat() -> SparsityPattern {
        // column 0: rows {0,2}; column 1: {}; column 2: {1}
        SparsityPattern::from_raw_parts(3, 3, vec![0, 2, 2, 3], vec![0, 2, 1])
    }

    #[test]
    fn contains_works() {
        let p = pat();
        assert!(p.contains(0, 0));
        assert!(p.contains(2, 0));
        assert!(!p.contains(1, 0));
        assert!(p.contains(1, 2));
    }

    #[test]
    fn transpose_involutive() {
        let p = pat();
        assert_eq!(p.transpose().transpose(), p);
    }

    #[test]
    fn symmetrized_has_diagonal_and_mirror() {
        let p = pat().symmetrized_with_diagonal();
        for j in 0..3 {
            assert!(p.contains(j, j), "missing diagonal {j}");
        }
        assert!(p.contains(2, 0));
        assert!(p.contains(0, 2));
        assert!(p.contains(1, 2));
        assert!(p.contains(2, 1));
        // strictly increasing rows per column
        for j in 0..3 {
            let rows = p.col_rows(j);
            for w in rows.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }
}
