//! Coordinate (triplet) format builder for sparse matrices.

use crate::csc::SparseMatrix;

/// A sparse matrix under construction, stored as unordered `(row, col, val)`
/// triplets. Duplicate entries are summed on conversion to CSC, matching the
/// Matrix Market convention for assembled finite-element matrices.
#[derive(Clone, Debug, Default)]
pub struct TripletMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl TripletMatrix {
    /// Creates an empty `nrows x ncols` triplet accumulator.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self { nrows, ncols, rows: Vec::new(), cols: Vec::new(), vals: Vec::new() }
    }

    /// Creates an empty accumulator with room for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Self {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of accumulated triplets (before duplicate summing).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Appends one entry. Panics if the indices are out of bounds.
    pub fn push(&mut self, row: usize, col: usize, val: f64) {
        assert!(row < self.nrows, "row {row} out of bounds ({})", self.nrows);
        assert!(col < self.ncols, "col {col} out of bounds ({})", self.ncols);
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Appends `val` at `(row, col)` and, when off-diagonal, also at
    /// `(col, row)` — convenient for assembling symmetric matrices.
    pub fn push_sym(&mut self, row: usize, col: usize, val: f64) {
        self.push(row, col, val);
        if row != col {
            self.push(col, row, val);
        }
    }

    /// Converts to CSC, summing duplicates and sorting row indices within
    /// each column.
    pub fn to_csc(&self) -> SparseMatrix {
        // Counting sort by column, then sort-and-compress each column.
        let mut col_counts = vec![0usize; self.ncols + 1];
        for &c in &self.cols {
            col_counts[c + 1] += 1;
        }
        for j in 0..self.ncols {
            col_counts[j + 1] += col_counts[j];
        }
        let mut heads = col_counts[..self.ncols].to_vec();
        let mut row_idx = vec![0usize; self.nnz()];
        let mut values = vec![0f64; self.nnz()];
        for k in 0..self.nnz() {
            let c = self.cols[k];
            let slot = heads[c];
            heads[c] += 1;
            row_idx[slot] = self.rows[k];
            values[slot] = self.vals[k];
        }

        let mut col_ptr = vec![0usize; self.ncols + 1];
        let mut out_rows = Vec::with_capacity(self.nnz());
        let mut out_vals = Vec::with_capacity(self.nnz());
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for j in 0..self.ncols {
            scratch.clear();
            for k in col_counts[j]..col_counts[j + 1] {
                scratch.push((row_idx[k], values[k]));
            }
            scratch.sort_unstable_by_key(|&(r, _)| r);
            let mut i = 0;
            while i < scratch.len() {
                let r = scratch[i].0;
                let mut v = 0.0;
                while i < scratch.len() && scratch[i].0 == r {
                    v += scratch[i].1;
                    i += 1;
                }
                out_rows.push(r);
                out_vals.push(v);
            }
            col_ptr[j + 1] = out_rows.len();
        }
        SparseMatrix::from_raw_parts(self.nrows, self.ncols, col_ptr, out_rows, out_vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix() {
        let t = TripletMatrix::new(3, 4);
        let m = t.to_csc();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 0, 2.5);
        t.push(1, 0, -1.0);
        let m = t.to_csc();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.get(1, 0), -1.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn push_sym_mirrors_off_diagonals() {
        let mut t = TripletMatrix::new(3, 3);
        t.push_sym(0, 0, 4.0);
        t.push_sym(2, 1, -1.0);
        let m = t.to_csc();
        assert_eq!(m.get(2, 1), -1.0);
        assert_eq!(m.get(1, 2), -1.0);
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(2, 0, 1.0);
    }

    #[test]
    fn rows_sorted_within_columns() {
        let mut t = TripletMatrix::new(4, 1);
        t.push(3, 0, 3.0);
        t.push(0, 0, 0.5);
        t.push(2, 0, 2.0);
        let m = t.to_csc();
        assert_eq!(m.col_rows(0), &[0, 2, 3]);
        assert_eq!(m.col_values(0), &[0.5, 2.0, 3.0]);
    }
}
