//! Synthetic workload generators.
//!
//! The paper evaluates on matrices we cannot redistribute (UF collection) or
//! regenerate (electronic-structure Hamiltonians from DGDFT). These
//! generators produce matrices in the same two structural regimes:
//!
//! * **FEM regime** (audikw_1, Flan_1565): 3-D meshes with a few degrees of
//!   freedom per node — very sparse `A`, moderate fill in `L`;
//! * **DG regime** (DG_PNF14000, DG_Graphene, DG_Water, LU_C_BN_C): dense
//!   `b×b` blocks on a coarse 1-D/2-D/3-D element grid with dense coupling
//!   between neighbouring elements — "relatively dense" `A` and heavy fill.
//!
//! All generators return symmetric positive definite matrices (diagonally
//! dominant), so the LDLᵀ path needs no pivoting, together with a
//! [`Geometry`] describing the underlying grid for geometric nested
//! dissection.

use crate::csc::SparseMatrix;
use crate::triplet::TripletMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Grid geometry attached to a generated matrix, consumed by the geometric
/// nested-dissection ordering. Index layout is
/// `idx = (x + nx*(y + ny*z)) * dof + d`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Geometry {
    /// Grid extents; unused trailing dimensions are 1.
    pub dims: [usize; 3],
    /// Degrees of freedom (matrix rows) per grid point.
    pub dof: usize,
}

impl Geometry {
    /// Total number of matrix rows described by this geometry.
    pub fn n(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2] * self.dof
    }

    /// Grid coordinates of matrix row `i`.
    pub fn coords(&self, i: usize) -> (usize, usize, usize) {
        let node = i / self.dof;
        let x = node % self.dims[0];
        let y = (node / self.dims[0]) % self.dims[1];
        let z = node / (self.dims[0] * self.dims[1]);
        (x, y, z)
    }
}

/// A generated workload: matrix plus grid geometry.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Human-readable name (proxy target from the paper when applicable).
    pub name: String,
    /// The assembled SPD matrix.
    pub matrix: SparseMatrix,
    /// Grid geometry for nested dissection.
    pub geometry: Geometry,
}

/// 5-point 2-D grid Laplacian on an `nx × ny` grid, shifted to be SPD.
pub fn grid_laplacian_2d(nx: usize, ny: usize) -> Workload {
    assert!(nx > 0 && ny > 0);
    let n = nx * ny;
    let idx = |x: usize, y: usize| y * nx + x;
    let mut t = TripletMatrix::with_capacity(n, n, 5 * n);
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            t.push(i, i, 4.0 + 0.01);
            if x + 1 < nx {
                t.push_sym(idx(x + 1, y), i, -1.0);
            }
            if y + 1 < ny {
                t.push_sym(idx(x, y + 1), i, -1.0);
            }
        }
    }
    Workload {
        name: format!("laplace2d_{nx}x{ny}"),
        matrix: t.to_csc(),
        geometry: Geometry { dims: [nx, ny, 1], dof: 1 },
    }
}

/// 7-point 3-D grid Laplacian on an `nx × ny × nz` grid, shifted to be SPD.
pub fn grid_laplacian_3d(nx: usize, ny: usize, nz: usize) -> Workload {
    assert!(nx > 0 && ny > 0 && nz > 0);
    let n = nx * ny * nz;
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut t = TripletMatrix::with_capacity(n, n, 7 * n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                t.push(i, i, 6.0 + 0.01);
                if x + 1 < nx {
                    t.push_sym(idx(x + 1, y, z), i, -1.0);
                }
                if y + 1 < ny {
                    t.push_sym(idx(x, y + 1, z), i, -1.0);
                }
                if z + 1 < nz {
                    t.push_sym(idx(x, y, z + 1), i, -1.0);
                }
            }
        }
    }
    Workload {
        name: format!("laplace3d_{nx}x{ny}x{nz}"),
        matrix: t.to_csc(),
        geometry: Geometry { dims: [nx, ny, nz], dof: 1 },
    }
}

/// 3-D FEM-style matrix: 27-point stencil with `dof` unknowns per node and
/// dense `dof × dof` coupling blocks. This is the audikw_1 / Flan_1565
/// structural regime (sparse A, 3-D mesh, multiple DOFs per node).
pub fn fem_3d(nx: usize, ny: usize, nz: usize, dof: usize, seed: u64) -> Workload {
    assert!(nx > 0 && ny > 0 && nz > 0 && dof > 0);
    let nodes = nx * ny * nz;
    let n = nodes * dof;
    let mut rng = StdRng::seed_from_u64(seed);
    let node_idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    // Each node couples to its 26 neighbours; per-node stencil weight is a
    // random dense dof×dof block, symmetrized across the pair.
    let mut t = TripletMatrix::with_capacity(n, n, 27 * n * dof);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let a = node_idx(x, y, z);
                // Strong diagonal block guarantees positive definiteness:
                // row sums of off-diagonal magnitudes are < 26, so 30 + dof
                // dominates.
                for d1 in 0..dof {
                    for d2 in 0..=d1 {
                        let v =
                            if d1 == d2 { 30.0 + dof as f64 } else { rng.random_range(-0.2..0.2) };
                        t.push_sym(a * dof + d1, a * dof + d2, v);
                    }
                }
                // Lexicographically "forward" neighbours only (symmetric push).
                for dz in 0..=1usize {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            if (dz, dy, dx) == (0, 0, 0) {
                                continue;
                            }
                            // only strictly forward triples to avoid duplicates
                            if dz == 0 && (dy < 0 || (dy == 0 && dx <= 0)) {
                                continue;
                            }
                            let (xx, yy, zz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz as i64);
                            if xx < 0 || yy < 0 || xx >= nx as i64 || yy >= ny as i64 {
                                continue;
                            }
                            if zz >= nz as i64 {
                                continue;
                            }
                            let b = node_idx(xx as usize, yy as usize, zz as usize);
                            for d1 in 0..dof {
                                for d2 in 0..dof {
                                    let v = rng.random_range(-1.0..0.0);
                                    t.push(b * dof + d1, a * dof + d2, v / dof as f64);
                                    t.push(a * dof + d2, b * dof + d1, v / dof as f64);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Workload {
        name: format!("fem3d_{nx}x{ny}x{nz}_dof{dof}"),
        matrix: t.to_csc(),
        geometry: Geometry { dims: [nx, ny, nz], dof },
    }
}

/// Discontinuous-Galerkin-style Hamiltonian: a `gx × gy × gz` element grid
/// with a dense `b × b` block per element and dense coupling blocks between
/// face-adjacent elements. This is the DG_PNF14000 / DG_Graphene regime
/// ("relatively dense" matrices with large uniform supernodes).
pub fn dg_hamiltonian(gx: usize, gy: usize, gz: usize, b: usize, seed: u64) -> Workload {
    assert!(gx > 0 && gy > 0 && gz > 0 && b > 0);
    let elems = gx * gy * gz;
    let n = elems * b;
    let mut rng = StdRng::seed_from_u64(seed);
    let eidx = |x: usize, y: usize, z: usize| (z * gy + y) * gx + x;
    let mut t = TripletMatrix::with_capacity(n, n, (7 * b * b * elems) / 2);
    let push_dense_block =
        |t: &mut TripletMatrix, ea: usize, eb: usize, rng: &mut StdRng, scale: f64| {
            // Dense block coupling element ea (rows) to eb (cols), mirrored.
            for i in 0..b {
                for j in 0..b {
                    let v = rng.random_range(-1.0..1.0) * scale / b as f64;
                    t.push(ea * b + i, eb * b + j, v);
                    t.push(eb * b + j, ea * b + i, v);
                }
            }
        };
    for z in 0..gz {
        for y in 0..gy {
            for x in 0..gx {
                let e = eidx(x, y, z);
                // Dense symmetric diagonal block, strongly diagonally dominant.
                for i in 0..b {
                    for j in 0..=i {
                        let v = if i == j { 8.0 } else { rng.random_range(-1.0..1.0) / b as f64 };
                        t.push_sym(e * b + i, e * b + j, v);
                    }
                }
                if x + 1 < gx {
                    push_dense_block(&mut t, eidx(x + 1, y, z), e, &mut rng, 1.0);
                }
                if y + 1 < gy {
                    push_dense_block(&mut t, eidx(x, y + 1, z), e, &mut rng, 1.0);
                }
                if z + 1 < gz {
                    push_dense_block(&mut t, eidx(x, y, z + 1), e, &mut rng, 1.0);
                }
            }
        }
    }
    Workload {
        name: format!("dg_{gx}x{gy}x{gz}_b{b}"),
        matrix: t.to_csc(),
        geometry: Geometry { dims: [gx, gy, gz], dof: b },
    }
}

/// Random sparse SPD matrix: `density` off-diagonal fill, diagonally
/// dominant. Used by property tests and the minimum-degree ordering path.
pub fn random_spd(n: usize, density: f64, seed: u64) -> SparseMatrix {
    assert!(n > 0);
    assert!((0.0..=1.0).contains(&density));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = TripletMatrix::new(n, n);
    let mut row_sums = vec![0.0f64; n];
    let mut offdiag: Vec<(usize, usize, f64)> = Vec::new();
    for j in 0..n {
        for i in (j + 1)..n {
            if rng.random_range(0.0..1.0) < density {
                let v: f64 = rng.random_range(-1.0..1.0);
                offdiag.push((i, j, v));
                row_sums[i] += v.abs();
                row_sums[j] += v.abs();
            }
        }
    }
    for (i, j, v) in offdiag {
        t.push_sym(i, j, v);
    }
    for (i, s) in row_sums.iter().enumerate() {
        t.push(i, i, s + 1.0);
    }
    t.to_csc()
}

/// Paper-matrix proxies at a reproduction scale controlled by `scale`
/// (1 = laptop-sized defaults used by the bench harness).
pub mod proxies {
    use super::*;

    /// audikw_1 proxy: 3-D FEM mesh, 3 DOF per node (structural analysis).
    pub fn audikw(scale: usize) -> Workload {
        let s = 6 * scale;
        let mut w = fem_3d(s, s, s, 3, 0xaadc);
        w.name = format!("audikw_proxy_{}", w.matrix.nrows());
        w
    }

    /// Flan_1565 proxy: 3-D FEM mesh, 3 DOF, slightly larger/sparser mesh.
    pub fn flan(scale: usize) -> Workload {
        let s = 7 * scale;
        let mut w = fem_3d(s, s, s, 3, 0xf1a5);
        w.name = format!("flan_proxy_{}", w.matrix.nrows());
        w
    }

    /// DG_PNF14000 proxy: 2-D phosphorene nanoflake, dense DG blocks.
    pub fn dg_pnf(scale: usize) -> Workload {
        let s = 8 * scale;
        let mut w = dg_hamiltonian(s, s, 1, 20, 0xd6f);
        w.name = format!("dg_pnf_proxy_{}", w.matrix.nrows());
        w
    }

    /// DG_Graphene_32768 proxy: larger 2-D DG sheet.
    pub fn dg_graphene(scale: usize) -> Workload {
        let s = 10 * scale;
        let mut w = dg_hamiltonian(s, s, 1, 20, 0x96a);
        w.name = format!("dg_graphene_proxy_{}", w.matrix.nrows());
        w
    }

    /// DG_Water_12888 proxy: small 3-D DG system.
    pub fn dg_water(scale: usize) -> Workload {
        let s = 4 * scale;
        let mut w = dg_hamiltonian(s, s, s, 12, 0x3a7e4);
        w.name = format!("dg_water_proxy_{}", w.matrix.nrows());
        w
    }

    /// LU_C_BN_C proxy: quasi-1-D DG system (layered heterostructure).
    pub fn lu_c_bn_c(scale: usize) -> Workload {
        let mut w = dg_hamiltonian(16 * scale, 4 * scale, 1, 16, 0x1cbc);
        w.name = format!("lu_c_bn_c_proxy_{}", w.matrix.nrows());
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_diag_dominant(m: &SparseMatrix) -> bool {
        let n = m.nrows();
        let mut diag = vec![0.0; n];
        let mut off = vec![0.0; n];
        for (i, j, v) in m.iter() {
            if i == j {
                diag[i] = v;
            } else {
                off[i] += v.abs();
            }
        }
        (0..n).all(|i| diag[i] > off[i])
    }

    #[test]
    fn laplace2d_structure() {
        let w = grid_laplacian_2d(3, 4);
        let m = &w.matrix;
        assert_eq!(m.nrows(), 12);
        assert!(m.is_symmetric(0.0));
        assert!(is_diag_dominant(m));
        // interior point has 4 neighbours + diagonal
        assert_eq!(m.col_rows(4).len(), 5);
        // corner has 2 neighbours + diagonal
        assert_eq!(m.col_rows(0).len(), 3);
    }

    #[test]
    fn laplace3d_structure() {
        let w = grid_laplacian_3d(3, 3, 3);
        let m = &w.matrix;
        assert_eq!(m.nrows(), 27);
        assert!(m.is_symmetric(0.0));
        assert!(is_diag_dominant(m));
        // center point (1,1,1) has 6 neighbours + diagonal
        let c = (3 + 1) * 3 + 1;
        assert_eq!(m.col_rows(c).len(), 7);
    }

    #[test]
    fn fem3d_symmetric_spd_shape() {
        let w = fem_3d(3, 3, 2, 2, 42);
        let m = &w.matrix;
        assert_eq!(m.nrows(), 3 * 3 * 2 * 2);
        assert!(m.is_symmetric(1e-14));
        assert!(is_diag_dominant(m));
        assert_eq!(w.geometry.n(), m.nrows());
    }

    #[test]
    fn dg_blocks_are_dense() {
        let b = 5;
        let w = dg_hamiltonian(2, 2, 1, b, 7);
        let m = &w.matrix;
        assert!(m.is_symmetric(1e-14));
        assert!(is_diag_dominant(m));
        // each element couples to itself + up to 2 neighbours in a 2x2 grid
        // → first column has 3*b entries (self block + two neighbour blocks)
        assert_eq!(m.col_rows(0).len(), 3 * b);
    }

    #[test]
    fn random_spd_is_spd_shaped() {
        let m = random_spd(40, 0.1, 3);
        assert!(m.is_symmetric(1e-14));
        assert!(is_diag_dominant(&m));
    }

    #[test]
    fn geometry_coords_roundtrip() {
        let g = Geometry { dims: [3, 4, 5], dof: 2 };
        for i in 0..g.n() {
            let (x, y, z) = g.coords(i);
            let node = (z * 4 + y) * 3 + x;
            assert_eq!(node, i / 2);
        }
    }

    #[test]
    fn proxies_generate() {
        let w = proxies::dg_water(1);
        assert!(w.matrix.nrows() > 0);
        assert!(w.matrix.is_symmetric(1e-12));
        let w = proxies::audikw(1);
        assert!(w.matrix.is_symmetric(1e-12));
    }

    #[test]
    fn generators_are_deterministic() {
        let a = fem_3d(3, 3, 3, 2, 9).matrix;
        let b = fem_3d(3, 3, 3, 2, 9).matrix;
        assert_eq!(a, b);
        let c = fem_3d(3, 3, 3, 2, 10).matrix;
        assert_ne!(a, c);
    }
}
