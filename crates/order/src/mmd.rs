//! Minimum-degree fill-reducing ordering for general symmetric matrices.
//!
//! A quotient-graph minimum-degree ordering in the spirit of AMD (Amestoy,
//! Davis, Duff) with element absorption but exact external degrees and no
//! supervariable detection. It is deterministic (ties broken by smallest
//! index). Grid-born matrices should prefer the geometric nested dissection
//! in [`crate::nd`]; this ordering exists for matrices without geometry
//! (e.g. those read from Matrix Market files).

use crate::perm::Permutation;
use pselinv_sparse::SparsityPattern;

/// Computes a minimum-degree permutation ("old → new") for a symmetric
/// pattern (diagonal entries are ignored).
pub fn minimum_degree(pattern: &SparsityPattern) -> Permutation {
    let n = pattern.ncols();
    assert_eq!(pattern.nrows(), n);
    let sym = pattern.symmetrized_with_diagonal();

    // Quotient graph state.
    // adj[v]: adjacent *variables* (may contain stale entries, cleaned lazily)
    // elems[v]: adjacent *elements* (indices of eliminated pivots)
    // elem_rows[e]: variables of element e (cleaned of eliminated vars lazily)
    let mut adj: Vec<Vec<usize>> =
        (0..n).map(|j| sym.col_rows(j).iter().copied().filter(|&i| i != j).collect()).collect();
    let mut elems: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut elem_rows: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut eliminated = vec![false; n];

    // Degree buckets with lazy deletion.
    let mut degree: Vec<usize> = adj.iter().map(|a| a.len()).collect();
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n.max(1)];
    for v in 0..n {
        buckets[degree[v].min(n - 1)].push(v);
    }
    let mut min_bucket = 0usize;

    let mut order: Vec<usize> = Vec::with_capacity(n); // new -> old
    let mut mark = vec![usize::MAX; n];
    let mut stamp = 0usize;

    while order.len() < n {
        // Find the minimum-degree uneliminated variable (lazy buckets).
        let p = loop {
            while min_bucket < buckets.len() && buckets[min_bucket].is_empty() {
                min_bucket += 1;
            }
            assert!(min_bucket < buckets.len(), "bucket structure exhausted early");
            let v = buckets[min_bucket].pop().unwrap();
            if !eliminated[v] && degree[v].min(n - 1) == min_bucket {
                break v;
            }
            // stale entry — skip
        };

        // Form element p: L_p = (adj[p] ∪ ⋃ elem_rows[e]) \ eliminated \ {p}
        stamp += 1;
        let mut lp: Vec<usize> = Vec::new();
        mark[p] = stamp;
        for &v in &adj[p] {
            if !eliminated[v] && mark[v] != stamp {
                mark[v] = stamp;
                lp.push(v);
            }
        }
        for &e in &elems[p] {
            for &v in &elem_rows[e] {
                if !eliminated[v] && mark[v] != stamp {
                    mark[v] = stamp;
                    lp.push(v);
                }
            }
        }
        lp.sort_unstable();

        eliminated[p] = true;
        order.push(p);
        let absorbed: Vec<usize> = elems[p].clone();

        // Update each variable in the new element.
        for &v in &lp {
            // Remove variables now covered by element p and stale entries.
            adj[v].retain(|&u| !eliminated[u] && mark[u] != stamp);
            // Remove absorbed elements, then add element p.
            if !absorbed.is_empty() {
                elems[v].retain(|e| !absorbed.contains(e));
            }
            elems[v].retain(|&e| e != p);
            elems[v].push(p);
        }
        elem_rows[p] = lp.clone();
        for &e in &absorbed {
            elem_rows[e] = Vec::new(); // absorbed into p
        }
        elems[p] = Vec::new();
        adj[p] = Vec::new();

        // Recompute exact external degrees of updated variables.
        for &v in &lp {
            stamp += 1;
            mark[v] = stamp;
            let mut d = 0usize;
            for &u in &adj[v] {
                if !eliminated[u] && mark[u] != stamp {
                    mark[u] = stamp;
                    d += 1;
                }
            }
            for &e in &elems[v] {
                for &u in &elem_rows[e] {
                    if !eliminated[u] && mark[u] != stamp {
                        mark[u] = stamp;
                        d += 1;
                    }
                }
            }
            degree[v] = d;
            let b = d.min(n - 1);
            buckets[b].push(v);
            if b < min_bucket {
                min_bucket = b;
            }
        }
    }
    Permutation::from_old_of_new(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::{elimination_tree, factor_counts, nnz_factor};
    use pselinv_sparse::gen;

    fn fill_of(m: &pselinv_sparse::SparseMatrix, perm: Option<&Permutation>) -> usize {
        let pm = match perm {
            Some(p) => m.permute_sym(p.new_of_old()),
            None => m.clone(),
        };
        let pat = pm.pattern().symmetrized_with_diagonal();
        let parent = elimination_tree(&pat);
        let (cc, _) = factor_counts(&pat, &parent);
        nnz_factor(&cc)
    }

    #[test]
    fn permutation_is_bijective() {
        let m = gen::random_spd(50, 0.1, 1);
        let p = minimum_degree(&m.pattern());
        assert_eq!(p.len(), 50);
    }

    #[test]
    fn reduces_fill_on_grid() {
        let w = gen::grid_laplacian_2d(16, 16);
        let natural = fill_of(&w.matrix, None);
        let p = minimum_degree(&w.matrix.pattern());
        let md = fill_of(&w.matrix, Some(&p));
        assert!(md < natural, "MD fill {md} >= natural fill {natural}");
    }

    #[test]
    fn arrow_matrix_ordered_last() {
        // Arrow matrix: dense first row/col. Natural order fills completely;
        // MD must eliminate the hub last, giving zero fill.
        let n = 20;
        let mut t = pselinv_sparse::TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
        }
        for i in 1..n {
            t.push_sym(i, 0, -1.0);
        }
        let m = t.to_csc();
        let p = minimum_degree(&m.pattern());
        // The hub must survive until only degree ties remain (last two).
        assert!(p.new_of(0) >= n - 2, "hub must be eliminated (next to) last");
        let fill = fill_of(&m, Some(&p));
        assert_eq!(fill, 2 * n - 1, "arrow matrix must factor with zero fill");
    }

    #[test]
    fn deterministic() {
        let m = gen::random_spd(60, 0.08, 5);
        let p1 = minimum_degree(&m.pattern());
        let p2 = minimum_degree(&m.pattern());
        assert_eq!(p1, p2);
    }

    #[test]
    fn handles_diagonal_matrix() {
        let m = pselinv_sparse::SparseMatrix::identity(8);
        let p = minimum_degree(&m.pattern());
        assert_eq!(p.len(), 8);
    }
}
