//! Supernode partitioning: fundamental supernodes, relaxed amalgamation and
//! width capping.

use crate::etree::NONE;

/// A partition of columns `0..n` into contiguous supernodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SupernodePartition {
    /// `sn_ptr[s]..sn_ptr[s+1]` is the column range of supernode `s`.
    pub sn_ptr: Vec<usize>,
    /// Supernode containing each column.
    pub col_to_sn: Vec<usize>,
}

impl SupernodePartition {
    fn from_starts(starts: Vec<usize>, n: usize) -> Self {
        let mut sn_ptr = starts;
        sn_ptr.push(n);
        let mut col_to_sn = vec![0usize; n];
        for s in 0..sn_ptr.len() - 1 {
            for j in sn_ptr[s]..sn_ptr[s + 1] {
                col_to_sn[j] = s;
            }
        }
        Self { sn_ptr, col_to_sn }
    }

    /// Number of supernodes.
    pub fn num_supernodes(&self) -> usize {
        self.sn_ptr.len() - 1
    }

    /// First column of supernode `s`.
    pub fn first_col(&self, s: usize) -> usize {
        self.sn_ptr[s]
    }

    /// One past the last column of supernode `s`.
    pub fn end_col(&self, s: usize) -> usize {
        self.sn_ptr[s + 1]
    }

    /// Number of columns in supernode `s`.
    pub fn width(&self, s: usize) -> usize {
        self.sn_ptr[s + 1] - self.sn_ptr[s]
    }
}

/// Options controlling supernode formation.
#[derive(Clone, Copy, Debug)]
pub struct SupernodeOptions {
    /// Maximum supernode width; wider supernodes are split (0 = unlimited).
    /// Splitting bounds panel memory and exposes 2-D parallelism, as in
    /// SuperLU_DIST's `maxsup`.
    pub max_width: usize,
    /// A child supernode of width ≤ this is merged into its parent whenever
    /// the columns are adjacent, regardless of fill (CHOLMOD-style "small
    /// supernode" relaxation).
    pub relax_small: usize,
    /// Merge when the estimated fraction of explicit zeros introduced in the
    /// merged panel stays below this bound.
    pub relax_zero_fraction: f64,
}

impl Default for SupernodeOptions {
    fn default() -> Self {
        Self { max_width: 64, relax_small: 4, relax_zero_fraction: 0.2 }
    }
}

/// Detects fundamental supernodes from the elimination tree and factor
/// column counts: column `j` joins the supernode of `j-1` iff
/// `parent(j-1) = j` and `count(j) = count(j-1) - 1`.
pub fn fundamental_supernodes(parent: &[usize], col_counts: &[usize]) -> SupernodePartition {
    let n = parent.len();
    assert_eq!(col_counts.len(), n);
    let mut starts = Vec::new();
    for j in 0..n {
        let fuse = j > 0 && parent[j - 1] == j && col_counts[j] + 1 == col_counts[j - 1];
        if !fuse {
            starts.push(j);
        }
    }
    SupernodePartition::from_starts(starts, n)
}

/// Applies relaxed amalgamation and width capping to a partition.
///
/// Amalgamation greedily merges a supernode with the one that follows it
/// when (a) the elimination-tree parent of its last column is the first
/// column of the next supernode's range and (b) either the child is small
/// (`relax_small`) or the estimated explicit-zero fraction stays below
/// `relax_zero_fraction`. Estimates use column counts only.
pub fn relax_supernodes(
    part: &SupernodePartition,
    parent: &[usize],
    col_counts: &[usize],
    opts: &SupernodeOptions,
) -> SupernodePartition {
    let n = parent.len();
    let ns = part.num_supernodes();
    let mut starts: Vec<usize> = Vec::with_capacity(ns);

    // Greedy left-to-right merging of adjacent supernodes.
    let mut s = 0;
    while s < ns {
        let begin = part.first_col(s);
        let mut end = part.end_col(s);
        starts.push(begin);
        while s + 1 < ns {
            let next_begin = part.first_col(s + 1);
            let next_end = part.end_col(s + 1);
            // Columns must chain through the elimination tree.
            if parent[end - 1] != next_begin {
                break;
            }
            let new_width = next_end - begin;
            if opts.max_width != 0 && new_width > opts.max_width {
                break;
            }
            let child_width = end - begin;
            let allowed = if opts.relax_small == 0 && opts.relax_zero_fraction == 0.0 {
                // Zero tolerance: keep the fundamental partition exactly.
                // (The zero estimate below is a heuristic lower bound — fill
                // from siblings can exceed it — so it cannot guarantee "no
                // explicit zeros".)
                false
            } else if child_width <= opts.relax_small || (next_end - next_begin) <= opts.relax_small
            {
                true
            } else {
                // Estimated nnz if merged: every column of the merged
                // supernode gets the (longest) structure of its first
                // column, shrinking by one per column.
                let cc0 = col_counts[begin];
                let merged: usize = (0..new_width).map(|k| cc0.saturating_sub(k)).sum();
                let current: usize = (begin..next_end).map(|j| col_counts[j]).sum();
                let zeros = merged.saturating_sub(current);
                (zeros as f64) <= opts.relax_zero_fraction * current as f64
            };
            if !allowed {
                break;
            }
            end = next_end;
            s += 1;
        }
        s += 1;
    }

    // Width capping: split ranges wider than max_width into near-equal parts.
    let capped = if opts.max_width == 0 {
        starts
    } else {
        let mut out = Vec::with_capacity(starts.len());
        let mut bounds = starts.clone();
        bounds.push(n);
        for w in bounds.windows(2) {
            let (b, e) = (w[0], w[1]);
            let width = e - b;
            if width <= opts.max_width {
                out.push(b);
            } else {
                let parts = width.div_ceil(opts.max_width);
                let base = width / parts;
                let extra = width % parts;
                let mut c = b;
                for p in 0..parts {
                    out.push(c);
                    c += base + usize::from(p < extra);
                }
                debug_assert_eq!(c, e);
            }
        }
        out
    };
    SupernodePartition::from_starts(capped, n)
}

/// Computes the supernodal elimination tree: `parent_sn[s]` is the supernode
/// containing the etree parent of the last column of `s` (`NONE` for roots).
pub fn supernodal_etree(part: &SupernodePartition, parent: &[usize]) -> Vec<usize> {
    (0..part.num_supernodes())
        .map(|s| {
            let last = part.end_col(s) - 1;
            match parent[last] {
                NONE => NONE,
                p => part.col_to_sn[p],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::{elimination_tree, factor_counts};
    use pselinv_sparse::gen;

    fn setup(nx: usize, ny: usize) -> (Vec<usize>, Vec<usize>) {
        let w = gen::grid_laplacian_2d(nx, ny);
        let pat = w.matrix.pattern().symmetrized_with_diagonal();
        let parent = elimination_tree(&pat);
        let (cc, _) = factor_counts(&pat, &parent);
        (parent, cc)
    }

    #[test]
    fn partition_covers_all_columns() {
        let (parent, cc) = setup(6, 6);
        let p = fundamental_supernodes(&parent, &cc);
        assert_eq!(p.sn_ptr[0], 0);
        assert_eq!(*p.sn_ptr.last().unwrap(), 36);
        for s in 0..p.num_supernodes() {
            assert!(p.width(s) >= 1);
            for j in p.first_col(s)..p.end_col(s) {
                assert_eq!(p.col_to_sn[j], s);
            }
        }
    }

    #[test]
    fn fundamental_condition_holds() {
        let (parent, cc) = setup(8, 8);
        let p = fundamental_supernodes(&parent, &cc);
        for s in 0..p.num_supernodes() {
            for j in p.first_col(s) + 1..p.end_col(s) {
                assert_eq!(parent[j - 1], j);
                assert_eq!(cc[j] + 1, cc[j - 1]);
            }
        }
    }

    #[test]
    fn dense_matrix_is_single_supernode() {
        let m = gen::random_spd(10, 1.0, 0);
        let pat = m.pattern().symmetrized_with_diagonal();
        let parent = elimination_tree(&pat);
        let (cc, _) = factor_counts(&pat, &parent);
        let p = fundamental_supernodes(&parent, &cc);
        assert_eq!(p.num_supernodes(), 1);
    }

    #[test]
    fn width_cap_respected() {
        let m = gen::random_spd(30, 1.0, 0);
        let pat = m.pattern().symmetrized_with_diagonal();
        let parent = elimination_tree(&pat);
        let (cc, _) = factor_counts(&pat, &parent);
        let p = fundamental_supernodes(&parent, &cc);
        let opts = SupernodeOptions { max_width: 8, ..Default::default() };
        let r = relax_supernodes(&p, &parent, &cc, &opts);
        for s in 0..r.num_supernodes() {
            assert!(r.width(s) <= 8, "supernode {s} too wide: {}", r.width(s));
        }
        // 30 columns capped at 8 → at least 4 supernodes
        assert!(r.num_supernodes() >= 4);
    }

    #[test]
    fn amalgamation_reduces_supernode_count() {
        let (parent, cc) = setup(12, 12);
        let p = fundamental_supernodes(&parent, &cc);
        let opts = SupernodeOptions { max_width: 64, relax_small: 8, relax_zero_fraction: 0.3 };
        let r = relax_supernodes(&p, &parent, &cc, &opts);
        assert!(r.num_supernodes() < p.num_supernodes());
        // merged ranges must still chain through the etree or be splits
        assert_eq!(*r.sn_ptr.last().unwrap(), 144);
    }

    #[test]
    fn supernodal_etree_is_monotone() {
        let (parent, cc) = setup(10, 10);
        let p = fundamental_supernodes(&parent, &cc);
        let sn_parent = supernodal_etree(&p, &parent);
        for s in 0..p.num_supernodes() {
            if sn_parent[s] != NONE {
                assert!(sn_parent[s] > s, "supernodal etree must be monotone");
            }
        }
        // exactly the last supernode is a root for a connected grid
        assert_eq!(sn_parent[p.num_supernodes() - 1], NONE);
    }
}
