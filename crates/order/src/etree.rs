//! Elimination tree, postorder and factor column counts.
//!
//! Implements the classic structures from Liu, *"The role of elimination
//! trees in sparse factorization"* (reference [19] of the paper).

use pselinv_sparse::SparsityPattern;

/// Sentinel for "no parent" (tree roots).
pub const NONE: usize = usize::MAX;

/// Computes the elimination tree of a symmetric pattern.
///
/// `pattern` must be square and contain at least the lower (or upper)
/// triangle of `A`; entries on both sides are handled. Returns `parent`
/// where `parent[j]` is the etree parent of column `j` (`NONE` for roots).
///
/// Uses Liu's algorithm with path compression (`ancestor`), O(nnz·α).
pub fn elimination_tree(pattern: &SparsityPattern) -> Vec<usize> {
    let n = pattern.ncols();
    assert_eq!(pattern.nrows(), n, "etree requires a square pattern");
    let mut parent = vec![NONE; n];
    let mut ancestor = vec![NONE; n];
    for j in 0..n {
        for &i in pattern.col_rows(j) {
            // Use upper-triangle entries (i < j); lower entries are the
            // mirror and produce the same tree when both are present.
            let mut k = i;
            if k >= j {
                continue;
            }
            // Climb from k to the root of its current subtree, compressing.
            while ancestor[k] != NONE && ancestor[k] != j {
                let next = ancestor[k];
                ancestor[k] = j;
                k = next;
            }
            if ancestor[k] == NONE {
                ancestor[k] = j;
                parent[k] = j;
            }
        }
    }
    parent
}

/// Builds first-child / next-sibling lists from a parent array.
/// Children end up ordered by decreasing index, which `postorder` reverses
/// into increasing order, keeping the postorder stable.
fn children_lists(parent: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let n = parent.len();
    let mut first_child = vec![NONE; n];
    let mut next_sibling = vec![NONE; n];
    for j in (0..n).rev() {
        let p = parent[j];
        if p != NONE {
            next_sibling[j] = first_child[p];
            first_child[p] = j;
        }
    }
    (first_child, next_sibling)
}

/// Computes a postorder of the forest described by `parent`.
///
/// Returns `post` as a "new → old" map: `post[k]` is the node visited k-th.
pub fn postorder(parent: &[usize]) -> Vec<usize> {
    let n = parent.len();
    let (first_child, next_sibling) = children_lists(parent);
    let mut post = Vec::with_capacity(n);
    let mut stack: Vec<(usize, bool)> = Vec::new();
    for root in 0..n {
        if parent[root] != NONE {
            continue;
        }
        stack.push((root, false));
        while let Some((node, expanded)) = stack.pop() {
            if expanded {
                post.push(node);
            } else {
                stack.push((node, true));
                let mut c = first_child[node];
                // push children; they pop in reverse push order, and
                // children_lists produced increasing order, so push as-is
                // reversed to visit the smallest child first.
                let mut kids = Vec::new();
                while c != NONE {
                    kids.push(c);
                    c = next_sibling[c];
                }
                for &k in kids.iter().rev() {
                    stack.push((k, false));
                }
            }
        }
    }
    assert_eq!(post.len(), n, "parent array contains a cycle");
    post
}

/// Relabels a parent array after applying a permutation
/// (`perm_new_of_old[j]` = new label of old node `j`).
pub fn relabel_parent(parent: &[usize], perm_new_of_old: &[usize]) -> Vec<usize> {
    let n = parent.len();
    let mut out = vec![NONE; n];
    for old in 0..n {
        let new = perm_new_of_old[old];
        out[new] = if parent[old] == NONE { NONE } else { perm_new_of_old[parent[old]] };
    }
    out
}

/// Column counts of the Cholesky factor `L` of a symmetrically permuted
/// matrix whose pattern is `pattern` (must include the diagonal).
///
/// `counts[j]` includes the diagonal entry. Also returns `row_counts`
/// (`nnz(L_{i,*})`, diagonal included).
///
/// Uses the row-subtree traversal: for row `i`, the nonzero columns of
/// `L_{i,*}` are the nodes of the subtree of the etree rooted at paths from
/// `j` (each `A_{ij} ≠ 0`, `j < i`) up toward `i`. O(nnz(L)) time, O(n)
/// space.
pub fn factor_counts(pattern: &SparsityPattern, parent: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let n = pattern.ncols();
    let mut col_counts = vec![1usize; n]; // diagonal
    let mut row_counts = vec![1usize; n]; // diagonal
    let mut mark = vec![NONE; n];
    for i in 0..n {
        mark[i] = i; // the root of row subtree i is i itself
        for &j in pattern.col_rows(i) {
            // upper entries (j, i) with j < i — climb the etree from j.
            let mut k = j;
            if k >= i {
                continue;
            }
            while mark[k] != i {
                mark[k] = i;
                col_counts[k] += 1;
                row_counts[i] += 1;
                k = parent[k];
                debug_assert!(k != NONE, "etree inconsistent with pattern");
            }
        }
    }
    (col_counts, row_counts)
}

/// Total number of nonzeros in `L` (diagonal included), from column counts.
pub fn nnz_factor(col_counts: &[usize]) -> usize {
    col_counts.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pselinv_sparse::gen;

    /// Dense symbolic Cholesky, the O(n³) oracle.
    fn dense_symbolic(pattern: &SparsityPattern) -> Vec<Vec<bool>> {
        let n = pattern.ncols();
        let mut a = vec![vec![false; n]; n];
        for j in 0..n {
            for &i in pattern.col_rows(j) {
                a[i][j] = true;
                a[j][i] = true;
            }
            a[j][j] = true;
        }
        // left-to-right fill: L structure
        let mut l = vec![vec![false; n]; n];
        for j in 0..n {
            for i in j..n {
                l[i][j] = a[i][j];
            }
            for k in 0..j {
                if l[j][k] {
                    for i in j..n {
                        if l[i][k] {
                            l[i][j] = true;
                        }
                    }
                }
            }
        }
        l
    }

    fn oracle_etree(l: &[Vec<bool>]) -> Vec<usize> {
        let n = l.len();
        let mut parent = vec![NONE; n];
        for j in 0..n {
            for i in (j + 1)..n {
                if l[i][j] {
                    parent[j] = i;
                    break;
                }
            }
        }
        parent
    }

    #[test]
    fn etree_matches_dense_oracle_on_grid() {
        let w = gen::grid_laplacian_2d(4, 4);
        let p = w.matrix.pattern().symmetrized_with_diagonal();
        let parent = elimination_tree(&p);
        let l = dense_symbolic(&p);
        assert_eq!(parent, oracle_etree(&l));
    }

    #[test]
    fn etree_matches_dense_oracle_on_random() {
        for seed in 0..5 {
            let m = gen::random_spd(30, 0.15, seed);
            let p = m.pattern().symmetrized_with_diagonal();
            let parent = elimination_tree(&p);
            let l = dense_symbolic(&p);
            assert_eq!(parent, oracle_etree(&l), "seed {seed}");
        }
    }

    #[test]
    fn counts_match_dense_oracle() {
        for seed in 0..5 {
            let m = gen::random_spd(25, 0.2, seed);
            let p = m.pattern().symmetrized_with_diagonal();
            let parent = elimination_tree(&p);
            let (cc, rc) = factor_counts(&p, &parent);
            let l = dense_symbolic(&p);
            for j in 0..25 {
                let dense_cc = (j..25).filter(|&i| l[i][j]).count();
                assert_eq!(cc[j], dense_cc, "col {j} seed {seed}");
                let dense_rc = (0..=j).filter(|&k| l[j][k]).count();
                assert_eq!(rc[j], dense_rc, "row {j} seed {seed}");
            }
        }
    }

    #[test]
    fn postorder_is_a_valid_postorder() {
        let w = gen::grid_laplacian_2d(5, 5);
        let p = w.matrix.pattern().symmetrized_with_diagonal();
        let parent = elimination_tree(&p);
        let post = postorder(&parent);
        let n = parent.len();
        // bijection
        let mut seen = vec![false; n];
        for &x in &post {
            assert!(!seen[x]);
            seen[x] = true;
        }
        // every node appears after all its children
        let mut pos = vec![0usize; n];
        for (k, &x) in post.iter().enumerate() {
            pos[x] = k;
        }
        for j in 0..n {
            if parent[j] != NONE {
                assert!(pos[j] < pos[parent[j]], "child {j} after parent");
            }
        }
    }

    #[test]
    fn postorder_makes_etree_monotone() {
        // After relabeling by postorder, parent[j] > j must hold.
        let m = gen::random_spd(40, 0.1, 3);
        let p = m.pattern().symmetrized_with_diagonal();
        let parent = elimination_tree(&p);
        let post = postorder(&parent);
        let perm = crate::perm::Permutation::from_old_of_new(post);
        let relabeled = relabel_parent(&parent, perm.new_of_old());
        for j in 0..parent.len() {
            if relabeled[j] != NONE {
                assert!(relabeled[j] > j);
            }
        }
    }

    #[test]
    fn chain_etree() {
        // tridiagonal matrix → etree is a chain
        let w = gen::grid_laplacian_2d(6, 1);
        let p = w.matrix.pattern().symmetrized_with_diagonal();
        let parent = elimination_tree(&p);
        for j in 0..5 {
            assert_eq!(parent[j], j + 1);
        }
        assert_eq!(parent[5], NONE);
        let (cc, _) = factor_counts(&p, &parent);
        assert_eq!(cc, vec![2, 2, 2, 2, 2, 1]);
    }
}
