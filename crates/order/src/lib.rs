//! Fill-reducing orderings, elimination trees and supernodal symbolic
//! factorization.
//!
//! This crate performs the entire *analysis* phase of a sparse symmetric
//! factorization, mirroring what SuperLU_DIST / symPACK do before numeric
//! factorization in the paper's pipeline:
//!
//! 1. a fill-reducing permutation — geometric [nested dissection](nd) for
//!    grid-born matrices or [minimum degree](mmd) for general ones;
//! 2. the [elimination tree](etree) of the permuted matrix and a postorder;
//! 3. column counts of the Cholesky factor `L`;
//! 4. a [supernode partition](supernodes) (fundamental supernodes + relaxed
//!    amalgamation + width capping);
//! 5. the [supernodal symbolic factor](symbolic::SymbolicFactor): per
//!    supernode, the sorted set of below-diagonal row indices of `L`.
//!
//! The resulting [`symbolic::SymbolicFactor`] is the single structure shared
//! by the sequential numeric factorization (`pselinv-factor`), the sequential
//! selected inversion (`pselinv-selinv`) and the distributed algorithm
//! (`pselinv-dist`).

pub mod etree;
pub mod mmd;
pub mod nd;
pub mod perm;
pub mod skeleton;
pub mod supernodes;
pub mod symbolic;

pub use perm::Permutation;
pub use symbolic::{analyze, AnalyzeOptions, OrderingChoice, SymbolicFactor};
