//! Geometric nested dissection for grid-structured matrices.
//!
//! The paper's matrices come from meshes (FEM models, DG element grids), for
//! which SuperLU_DIST would use (Par)METIS nested dissection. We reproduce
//! the same elimination-tree shape with a geometric variant: recursively
//! bisect the grid along its longest axis, ordering the two halves first and
//! the separator plane last. All degrees of freedom of one grid node stay
//! contiguous, so DG blocks remain intact.

use crate::perm::Permutation;
use pselinv_sparse::gen::Geometry;

/// Options for geometric nested dissection.
#[derive(Clone, Copy, Debug)]
pub struct NdOptions {
    /// Boxes with at most this many grid nodes are ordered lexicographically
    /// instead of being split further.
    pub leaf_size: usize,
}

impl Default for NdOptions {
    fn default() -> Self {
        Self { leaf_size: 32 }
    }
}

#[derive(Clone, Copy)]
struct BoxRange {
    lo: [usize; 3],
    hi: [usize; 3], // exclusive
}

impl BoxRange {
    fn nodes(&self) -> usize {
        (0..3).map(|d| self.hi[d] - self.lo[d]).product()
    }

    fn longest_axis(&self) -> usize {
        let mut best = 0;
        for d in 1..3 {
            if self.hi[d] - self.lo[d] > self.hi[best] - self.lo[best] {
                best = d;
            }
        }
        best
    }
}

/// Computes a nested-dissection permutation ("old → new") for `geometry`.
pub fn nested_dissection(geometry: &Geometry, opts: NdOptions) -> Permutation {
    let n = geometry.n();
    let mut order: Vec<usize> = Vec::with_capacity(n); // new -> old
    let root = BoxRange { lo: [0, 0, 0], hi: geometry.dims };
    dissect(geometry, root, opts.leaf_size.max(1), &mut order);
    assert_eq!(order.len(), n);
    Permutation::from_old_of_new(order)
}

fn emit_box(geometry: &Geometry, b: BoxRange, order: &mut Vec<usize>) {
    let [nx, ny, _] = geometry.dims;
    for z in b.lo[2]..b.hi[2] {
        for y in b.lo[1]..b.hi[1] {
            for x in b.lo[0]..b.hi[0] {
                let node = (z * ny + y) * nx + x;
                for d in 0..geometry.dof {
                    order.push(node * geometry.dof + d);
                }
            }
        }
    }
}

fn dissect(geometry: &Geometry, b: BoxRange, leaf: usize, order: &mut Vec<usize>) {
    if b.nodes() == 0 {
        return;
    }
    let axis = b.longest_axis();
    let extent = b.hi[axis] - b.lo[axis];
    if b.nodes() <= leaf || extent < 3 {
        emit_box(geometry, b, order);
        return;
    }
    let mid = b.lo[axis] + extent / 2;
    let mut left = b;
    left.hi[axis] = mid;
    let mut sep = b;
    sep.lo[axis] = mid;
    sep.hi[axis] = mid + 1;
    let mut right = b;
    right.lo[axis] = mid + 1;
    dissect(geometry, left, leaf, order);
    dissect(geometry, right, leaf, order);
    emit_box(geometry, sep, order);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::{elimination_tree, factor_counts, nnz_factor};
    use pselinv_sparse::gen;

    #[test]
    fn permutation_is_bijective() {
        let g = Geometry { dims: [7, 5, 3], dof: 2 };
        let p = nested_dissection(&g, NdOptions::default());
        assert_eq!(p.len(), g.n());
        // from_old_of_new already validates bijectivity; spot-check a value
        let _ = p.new_of(0);
    }

    #[test]
    fn dof_blocks_stay_contiguous() {
        let g = Geometry { dims: [6, 6, 1], dof: 3 };
        let p = nested_dissection(&g, NdOptions { leaf_size: 4 });
        for node in 0..36usize {
            let base = p.new_of(node * 3);
            assert_eq!(p.new_of(node * 3 + 1), base + 1);
            assert_eq!(p.new_of(node * 3 + 2), base + 2);
        }
    }

    #[test]
    fn nd_reduces_fill_vs_natural_order() {
        let w = gen::grid_laplacian_2d(24, 24);
        let pat = w.matrix.pattern().symmetrized_with_diagonal();

        let natural_parent = elimination_tree(&pat);
        let (cc, _) = factor_counts(&pat, &natural_parent);
        let natural_nnz = nnz_factor(&cc);

        let p = nested_dissection(&w.geometry, NdOptions { leaf_size: 8 });
        let permuted = w.matrix.permute_sym(p.new_of_old());
        let ppat = permuted.pattern().symmetrized_with_diagonal();
        let nd_parent = elimination_tree(&ppat);
        let (ncc, _) = factor_counts(&ppat, &nd_parent);
        let nd_nnz = nnz_factor(&ncc);

        assert!(
            (nd_nnz as f64) < 0.8 * natural_nnz as f64,
            "ND fill {nd_nnz} not clearly below natural fill {natural_nnz}"
        );
    }

    #[test]
    fn separator_comes_last() {
        // On a 1-D chain the first split's separator node must be ordered
        // after both halves.
        let g = Geometry { dims: [9, 1, 1], dof: 1 };
        let p = nested_dissection(&g, NdOptions { leaf_size: 1 });
        let sep = 4usize; // middle of 0..9
        for other in 0..9 {
            if other != sep {
                assert!(p.new_of(other) < p.new_of(sep));
            }
        }
    }
}
