//! Permutations of `0..n`.

/// A permutation of `0..n`, stored in "old index → new index" form.
///
/// Applying a permutation `p` to a matrix `A` yields `B = P A Pᵀ` with
/// `B[p.new_of(i), p.new_of(j)] = A[i, j]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    new_of_old: Vec<usize>,
    old_of_new: Vec<usize>,
}

impl Permutation {
    /// Identity permutation of size `n`.
    pub fn identity(n: usize) -> Self {
        let v: Vec<usize> = (0..n).collect();
        Self { new_of_old: v.clone(), old_of_new: v }
    }

    /// Builds from an "old → new" map, validating it is a bijection.
    pub fn from_new_of_old(new_of_old: Vec<usize>) -> Self {
        let n = new_of_old.len();
        let mut old_of_new = vec![usize::MAX; n];
        for (old, &new) in new_of_old.iter().enumerate() {
            assert!(new < n, "permutation image {new} out of range");
            assert_eq!(old_of_new[new], usize::MAX, "permutation is not injective at {new}");
            old_of_new[new] = old;
        }
        Self { new_of_old, old_of_new }
    }

    /// Builds from an "new → old" map (i.e. the order in which old indices
    /// should be visited), validating it is a bijection.
    pub fn from_old_of_new(old_of_new: Vec<usize>) -> Self {
        let n = old_of_new.len();
        let mut new_of_old = vec![usize::MAX; n];
        for (new, &old) in old_of_new.iter().enumerate() {
            assert!(old < n, "permutation image {old} out of range");
            assert_eq!(new_of_old[old], usize::MAX, "permutation is not injective at {old}");
            new_of_old[old] = new;
        }
        Self { new_of_old, old_of_new }
    }

    /// Size of the permuted set.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// `true` when `len() == 0`.
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// New position of old index `i`.
    pub fn new_of(&self, old: usize) -> usize {
        self.new_of_old[old]
    }

    /// Old index occupying new position `i`.
    pub fn old_of(&self, new: usize) -> usize {
        self.old_of_new[new]
    }

    /// The full "old → new" map.
    pub fn new_of_old(&self) -> &[usize] {
        &self.new_of_old
    }

    /// The full "new → old" map.
    pub fn old_of_new(&self) -> &[usize] {
        &self.old_of_new
    }

    /// Inverse permutation.
    pub fn inverse(&self) -> Permutation {
        Permutation { new_of_old: self.old_of_new.clone(), old_of_new: self.new_of_old.clone() }
    }

    /// Composition: applies `self` first, then `after`
    /// (`result.new_of(i) = after.new_of(self.new_of(i))`).
    pub fn then(&self, after: &Permutation) -> Permutation {
        assert_eq!(self.len(), after.len());
        let new_of_old: Vec<usize> = self.new_of_old.iter().map(|&mid| after.new_of(mid)).collect();
        Permutation::from_new_of_old(new_of_old)
    }

    /// Permutes a dense vector indexed by old indices into new order.
    pub fn apply_vec<T: Clone>(&self, v: &[T]) -> Vec<T> {
        assert_eq!(v.len(), self.len());
        (0..self.len()).map(|new| v[self.old_of(new)].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        let p = Permutation::identity(4);
        for i in 0..4 {
            assert_eq!(p.new_of(i), i);
            assert_eq!(p.old_of(i), i);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let p = Permutation::from_new_of_old(vec![2, 0, 3, 1]);
        let inv = p.inverse();
        for i in 0..4 {
            assert_eq!(inv.new_of(p.new_of(i)), i);
            assert_eq!(p.old_of(p.new_of(i)), i);
        }
    }

    #[test]
    fn composition_order() {
        let p = Permutation::from_new_of_old(vec![1, 2, 0]);
        let q = Permutation::from_new_of_old(vec![2, 1, 0]);
        let pq = p.then(&q);
        for i in 0..3 {
            assert_eq!(pq.new_of(i), q.new_of(p.new_of(i)));
        }
    }

    #[test]
    fn from_old_of_new_matches() {
        // visit old indices in order [2, 0, 1]
        let p = Permutation::from_old_of_new(vec![2, 0, 1]);
        assert_eq!(p.new_of(2), 0);
        assert_eq!(p.new_of(0), 1);
        assert_eq!(p.new_of(1), 2);
    }

    #[test]
    fn apply_vec_reorders() {
        let p = Permutation::from_new_of_old(vec![2, 0, 1]);
        // old values [a, b, c]; new position of old0=2, old1=0, old2=1
        assert_eq!(p.apply_vec(&["a", "b", "c"]), vec!["b", "c", "a"]);
    }

    #[test]
    #[should_panic(expected = "not injective")]
    fn rejects_non_bijection() {
        Permutation::from_new_of_old(vec![0, 0, 1]);
    }
}
