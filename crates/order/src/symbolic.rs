//! Supernodal symbolic factorization.
//!
//! [`analyze`] runs the full analysis pipeline (ordering → postorder →
//! column counts → supernode partition → supernodal structure) and returns
//! a [`SymbolicFactor`], the structure shared by the sequential numeric
//! factorization, the sequential selected inversion and the distributed
//! PSelInv algorithm.

use crate::etree::{self, NONE};
use crate::mmd;
use crate::nd::{self, NdOptions};
use crate::perm::Permutation;
use crate::supernodes::{self, SupernodeOptions, SupernodePartition};
use pselinv_sparse::gen::Geometry;
use pselinv_sparse::SparsityPattern;

/// Fill-reducing ordering selection.
#[derive(Clone, Copy, Debug)]
pub enum OrderingChoice {
    /// Keep the input order (still postordered afterwards).
    Natural,
    /// Geometric nested dissection; requires the workload's [`Geometry`].
    NestedDissection(Geometry, NdOptions),
    /// Quotient-graph minimum degree, for matrices without geometry.
    MinimumDegree,
}

/// Options for [`analyze`].
#[derive(Clone, Copy, Debug)]
pub struct AnalyzeOptions {
    /// Ordering strategy.
    pub ordering: OrderingChoice,
    /// Supernode relaxation / splitting parameters.
    pub supernode: SupernodeOptions,
    /// Also compute [`SymbolicFactor::true_mask`], marking which stored rows
    /// belong to the *exact* factor structure (as opposed to explicit zeros
    /// introduced by supernode relaxation). Needed by the numeric selected
    /// inversion's entry accessor; structure-only consumers (communication
    /// volume accounting, the discrete-event simulator) can skip it.
    pub track_true_structure: bool,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        Self {
            ordering: OrderingChoice::MinimumDegree,
            supernode: SupernodeOptions::default(),
            track_true_structure: true,
        }
    }
}

/// One off-diagonal block of a supernode panel: the rows of supernode
/// `K`'s structure that fall in ancestor supernode `sn`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnBlock {
    /// Ancestor supernode owning these rows.
    pub sn: usize,
    /// Range into [`SymbolicFactor::rows`] (global offsets).
    pub rows_begin: usize,
    /// End of the range (exclusive).
    pub rows_end: usize,
}

impl SnBlock {
    /// Number of rows in the block.
    pub fn nrows(&self) -> usize {
        self.rows_end - self.rows_begin
    }
}

/// The result of symbolic analysis: permutation, supernode partition and
/// the per-supernode row structure of the Cholesky factor `L`.
///
/// All indices below are in the *permuted* matrix ordering.
#[derive(Clone, Debug)]
pub struct SymbolicFactor {
    /// Matrix order.
    pub n: usize,
    /// Combined permutation (fill-reducing then postorder), old → new.
    pub perm: Permutation,
    /// Supernode partition of the permuted columns.
    pub part: SupernodePartition,
    /// Supernodal elimination tree (`NONE` for roots).
    pub sn_parent: Vec<usize>,
    /// Elimination tree of individual columns (`NONE` for roots).
    pub col_parent: Vec<usize>,
    /// `rows_ptr[s]..rows_ptr[s+1]` indexes `rows` for supernode `s`.
    pub rows_ptr: Vec<usize>,
    /// Sorted below-diagonal row indices for each supernode.
    pub rows: Vec<usize>,
    /// `blocks_ptr[s]..blocks_ptr[s+1]` indexes `blocks` for supernode `s`.
    pub blocks_ptr: Vec<usize>,
    /// Off-diagonal blocks of every supernode, grouped by ancestor.
    pub blocks: Vec<SnBlock>,
    /// Aligned with [`SymbolicFactor::rows`]: `true` where the row belongs
    /// to the exact factor structure of *some* column of the supernode,
    /// `false` for explicit zeros introduced by supernode relaxation.
    /// Empty when `AnalyzeOptions::track_true_structure` was off.
    pub true_mask: Vec<bool>,
}

impl SymbolicFactor {
    /// Number of supernodes.
    pub fn num_supernodes(&self) -> usize {
        self.part.num_supernodes()
    }

    /// Width (number of columns) of supernode `s`.
    pub fn width(&self, s: usize) -> usize {
        self.part.width(s)
    }

    /// First column of supernode `s`.
    pub fn first_col(&self, s: usize) -> usize {
        self.part.first_col(s)
    }

    /// One past the last column of supernode `s`.
    pub fn end_col(&self, s: usize) -> usize {
        self.part.end_col(s)
    }

    /// Sorted below-diagonal row indices of supernode `s`.
    pub fn rows_of(&self, s: usize) -> &[usize] {
        &self.rows[self.rows_ptr[s]..self.rows_ptr[s + 1]]
    }

    /// True-structure mask aligned with [`SymbolicFactor::rows_of`], or
    /// `None` when true-structure tracking was disabled.
    pub fn true_rows_of(&self, s: usize) -> Option<&[bool]> {
        if self.true_mask.is_empty() {
            None
        } else {
            Some(&self.true_mask[self.rows_ptr[s]..self.rows_ptr[s + 1]])
        }
    }

    /// Off-diagonal blocks of supernode `s`.
    pub fn blocks_of(&self, s: usize) -> &[SnBlock] {
        &self.blocks[self.blocks_ptr[s]..self.blocks_ptr[s + 1]]
    }

    /// Row indices covered by one block.
    pub fn block_rows(&self, b: &SnBlock) -> &[usize] {
        &self.rows[b.rows_begin..b.rows_end]
    }

    /// Ancestor supernodes appearing in `s`'s structure (the set `C` of
    /// Algorithm 1 in the paper, at supernode-block granularity).
    pub fn ancestor_sns(&self, s: usize) -> impl Iterator<Item = usize> + '_ {
        self.blocks_of(s).iter().map(|b| b.sn)
    }

    /// Stored nonzeros of `L` under the supernodal (possibly relaxed)
    /// structure: dense triangles plus dense off-diagonal panels.
    pub fn nnz_factor(&self) -> usize {
        (0..self.num_supernodes())
            .map(|s| {
                let w = self.width(s);
                w * (w + 1) / 2 + w * self.rows_of(s).len()
            })
            .sum()
    }

    /// For each supernode `I`, the list of `(K, block_index)` pairs such
    /// that descendant supernode `K` has an off-diagonal block in `I`
    /// (`block_index` points into [`SymbolicFactor::blocks`]). This is the
    /// transpose of the block structure, used by the distributed layout.
    pub fn transpose_blocks(&self) -> Vec<Vec<(usize, usize)>> {
        let mut t: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.num_supernodes()];
        for s in 0..self.num_supernodes() {
            for (bi, b) in self.blocks_of(s).iter().enumerate() {
                t[b.sn].push((s, self.blocks_ptr[s] + bi));
            }
        }
        t
    }

    /// Children lists of the supernodal elimination tree.
    pub fn sn_children(&self) -> Vec<Vec<usize>> {
        let mut c: Vec<Vec<usize>> = vec![Vec::new(); self.num_supernodes()];
        for s in 0..self.num_supernodes() {
            if self.sn_parent[s] != NONE {
                c[self.sn_parent[s]].push(s);
            }
        }
        c
    }
}

fn permute_pattern(p: &SparsityPattern, perm: &Permutation) -> SparsityPattern {
    let n = p.ncols();
    let mut cols: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n {
        let nj = perm.new_of(j);
        for &i in p.col_rows(j) {
            cols[nj].push(perm.new_of(i));
        }
    }
    let mut col_ptr = vec![0usize; n + 1];
    let mut rows = Vec::with_capacity(p.nnz());
    for (j, c) in cols.iter_mut().enumerate() {
        c.sort_unstable();
        rows.extend_from_slice(c);
        col_ptr[j + 1] = rows.len();
    }
    SparsityPattern::from_raw_parts(n, n, col_ptr, rows)
}

/// Runs the full symbolic analysis on the pattern of a structurally
/// symmetric matrix.
///
/// ```
/// use pselinv_order::{analyze, AnalyzeOptions, OrderingChoice};
/// use pselinv_sparse::gen;
///
/// let w = gen::grid_laplacian_2d(8, 8);
/// let opts = AnalyzeOptions {
///     ordering: OrderingChoice::NestedDissection(w.geometry, Default::default()),
///     ..Default::default()
/// };
/// let sf = analyze(&w.matrix.pattern(), &opts);
/// assert!(sf.num_supernodes() > 1);
/// // the factor is at least as dense as (half of) the symmetric input
/// assert!(sf.nnz_factor() * 2 >= w.matrix.nnz());
/// ```
pub fn analyze(pattern: &SparsityPattern, opts: &AnalyzeOptions) -> SymbolicFactor {
    let n = pattern.ncols();
    assert_eq!(pattern.nrows(), n, "analyze requires a square pattern");

    // 1. Fill-reducing ordering.
    let fill_perm = match &opts.ordering {
        OrderingChoice::Natural => Permutation::identity(n),
        OrderingChoice::NestedDissection(geom, nd_opts) => {
            assert_eq!(geom.n(), n, "geometry does not match the matrix order");
            nd::nested_dissection(geom, *nd_opts)
        }
        OrderingChoice::MinimumDegree => mmd::minimum_degree(pattern),
    };

    // 2. Postorder the elimination tree of the fill-permuted pattern.
    let sym0 = permute_pattern(pattern, &fill_perm).symmetrized_with_diagonal();
    let parent0 = etree::elimination_tree(&sym0);
    let post = etree::postorder(&parent0);
    let post_perm = Permutation::from_old_of_new(post);
    let perm = fill_perm.then(&post_perm);

    // 3. Final pattern, etree and counts in the combined order.
    let sym = permute_pattern(pattern, &perm).symmetrized_with_diagonal();
    let col_parent = etree::elimination_tree(&sym);
    let (col_counts, _) = etree::factor_counts(&sym, &col_parent);

    // 4. Supernode partition.
    let fundamental = supernodes::fundamental_supernodes(&col_parent, &col_counts);
    let part =
        supernodes::relax_supernodes(&fundamental, &col_parent, &col_counts, &opts.supernode);
    let sn_parent = supernodes::supernodal_etree(&part, &col_parent);

    // 5. Supernodal row structure, bottom-up merge.
    let ns = part.num_supernodes();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); ns];
    for s in 0..ns {
        if sn_parent[s] != NONE {
            children[sn_parent[s]].push(s);
        }
    }
    let mut rows_ptr = vec![0usize; ns + 1];
    let mut rows: Vec<usize> = Vec::new();
    let mut mark = vec![usize::MAX; n];
    let mut scratch: Vec<usize> = Vec::new();
    // Temporary per-supernode structures kept until the parent consumed them.
    let mut sn_rows: Vec<Vec<usize>> = vec![Vec::new(); ns];
    for s in 0..ns {
        scratch.clear();
        let last = part.end_col(s) - 1;
        for j in part.first_col(s)..=last {
            for &i in sym.col_rows(j) {
                if i > last && mark[i] != s {
                    mark[i] = s;
                    scratch.push(i);
                }
            }
        }
        for &c in &children[s] {
            for &r in &sn_rows[c] {
                if r > last && mark[r] != s {
                    mark[r] = s;
                    scratch.push(r);
                }
            }
            sn_rows[c] = Vec::new(); // parent consumed; free memory
        }
        scratch.sort_unstable();
        sn_rows[s] = scratch.clone();
        rows_ptr[s + 1] = rows_ptr[s] + scratch.len();
        rows.extend_from_slice(&scratch);
    }

    // 6. Group rows into ancestor-supernode blocks.
    let mut blocks_ptr = vec![0usize; ns + 1];
    let mut blocks: Vec<SnBlock> = Vec::new();
    for s in 0..ns {
        let (lo, hi) = (rows_ptr[s], rows_ptr[s + 1]);
        let mut k = lo;
        while k < hi {
            let sn = part.col_to_sn[rows[k]];
            let begin = k;
            while k < hi && part.col_to_sn[rows[k]] == sn {
                k += 1;
            }
            blocks.push(SnBlock { sn, rows_begin: begin, rows_end: k });
        }
        blocks_ptr[s + 1] = blocks.len();
    }

    // 7. Optionally mark which stored rows are exact factor structure.
    //    Row `i` appears in the true structure of column `j` iff `j` is in
    //    the row subtree of `i` — the same traversal as `factor_counts`.
    let mut true_mask = Vec::new();
    if opts.track_true_structure {
        true_mask = vec![false; rows.len()];
        let mut visit = vec![usize::MAX; n];
        let mut sn_stamp = vec![usize::MAX; ns];
        for i in 0..n {
            visit[i] = i;
            for &j in sym.col_rows(i) {
                let mut k = j;
                if k >= i {
                    continue;
                }
                while visit[k] != i {
                    visit[k] = i;
                    let s = part.col_to_sn[k];
                    // i may sit inside s's diagonal block (then it is not a
                    // below-row); otherwise mark its below-row slot once.
                    if sn_stamp[s] != i && i >= part.end_col(s) {
                        sn_stamp[s] = i;
                        let lo = rows_ptr[s];
                        let hi = rows_ptr[s + 1];
                        let p = rows[lo..hi]
                            .binary_search(&i)
                            .expect("true structure not covered by stored structure");
                        true_mask[lo + p] = true;
                    }
                    k = col_parent[k];
                }
            }
        }
    }

    SymbolicFactor {
        n,
        perm,
        part,
        sn_parent,
        col_parent,
        rows_ptr,
        rows,
        blocks_ptr,
        blocks,
        true_mask,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pselinv_sparse::gen;

    fn dense_factor_pattern(pattern: &SparsityPattern) -> Vec<Vec<bool>> {
        let n = pattern.ncols();
        let mut l = vec![vec![false; n]; n];
        for j in 0..n {
            for &i in pattern.col_rows(j) {
                if i >= j {
                    l[i][j] = true;
                }
                if j >= i {
                    l[j][i] = true;
                }
            }
            l[j][j] = true;
        }
        for j in 0..n {
            for k in 0..j {
                if l[j][k] {
                    for i in j..n {
                        if l[i][k] {
                            l[i][j] = true;
                        }
                    }
                }
            }
        }
        l
    }

    fn check_structure_superset(sf: &SymbolicFactor, pattern: &SparsityPattern) {
        // The supernodal structure must cover the true factor structure of
        // the permuted matrix.
        let permuted = permute_pattern(pattern, &sf.perm).symmetrized_with_diagonal();
        let l = dense_factor_pattern(&permuted);
        let n = sf.n;
        let mut stored = vec![vec![false; n]; n];
        for s in 0..sf.num_supernodes() {
            let (b, e) = (sf.first_col(s), sf.end_col(s));
            for j in b..e {
                for i in j..e {
                    stored[i][j] = true;
                }
                for &r in sf.rows_of(s) {
                    stored[r][j] = true;
                }
            }
        }
        for j in 0..n {
            for i in j..n {
                if l[i][j] {
                    assert!(stored[i][j], "missing factor entry ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn structure_covers_factor_grid_md() {
        let w = gen::grid_laplacian_2d(7, 7);
        let pat = w.matrix.pattern();
        let sf = analyze(&pat, &AnalyzeOptions::default());
        check_structure_superset(&sf, &pat);
    }

    #[test]
    fn structure_covers_factor_grid_nd() {
        let w = gen::grid_laplacian_2d(8, 6);
        let pat = w.matrix.pattern();
        let opts = AnalyzeOptions {
            ordering: OrderingChoice::NestedDissection(w.geometry, NdOptions { leaf_size: 4 }),
            ..Default::default()
        };
        let sf = analyze(&pat, &opts);
        check_structure_superset(&sf, &pat);
    }

    #[test]
    fn structure_covers_factor_random() {
        for seed in 0..4 {
            let m = gen::random_spd(35, 0.15, seed);
            let pat = m.pattern();
            let sf = analyze(&pat, &AnalyzeOptions::default());
            check_structure_superset(&sf, &pat);
        }
    }

    #[test]
    fn fundamental_partition_matches_counts_exactly() {
        // With relaxation disabled, stored nnz == sum of column counts.
        let w = gen::grid_laplacian_2d(9, 9);
        let pat = w.matrix.pattern();
        let opts = AnalyzeOptions {
            ordering: OrderingChoice::Natural,
            supernode: SupernodeOptions { max_width: 0, relax_small: 0, relax_zero_fraction: 0.0 },
            track_true_structure: true,
        };
        let sf = analyze(&pat, &opts);
        let sym = permute_pattern(&pat, &sf.perm).symmetrized_with_diagonal();
        let parent = etree::elimination_tree(&sym);
        let (cc, _) = etree::factor_counts(&sym, &parent);
        assert_eq!(sf.nnz_factor(), etree::nnz_factor(&cc));
    }

    #[test]
    fn blocks_partition_rows() {
        let w = gen::grid_laplacian_3d(4, 4, 4);
        let pat = w.matrix.pattern();
        let sf = analyze(&pat, &AnalyzeOptions::default());
        for s in 0..sf.num_supernodes() {
            let mut covered = 0;
            let mut prev_sn = None;
            for b in sf.blocks_of(s) {
                assert!(b.sn > s, "block ancestor must be above the supernode");
                if let Some(p) = prev_sn {
                    assert!(b.sn > p, "blocks must be sorted by ancestor supernode");
                }
                prev_sn = Some(b.sn);
                covered += b.nrows();
                for &r in sf.block_rows(b) {
                    assert_eq!(sf.part.col_to_sn[r], b.sn);
                }
            }
            assert_eq!(covered, sf.rows_of(s).len());
        }
    }

    #[test]
    fn rows_sorted_and_below_diagonal() {
        let w = gen::proxies::dg_water(1);
        let pat = w.matrix.pattern();
        let sf = analyze(&pat, &AnalyzeOptions::default());
        for s in 0..sf.num_supernodes() {
            let rows = sf.rows_of(s);
            for w2 in rows.windows(2) {
                assert!(w2[0] < w2[1]);
            }
            if let Some(&first) = rows.first() {
                assert!(first >= sf.end_col(s));
            }
        }
    }

    #[test]
    fn transpose_blocks_is_consistent() {
        let w = gen::grid_laplacian_2d(10, 10);
        let sf = analyze(&w.matrix.pattern(), &AnalyzeOptions::default());
        let t = sf.transpose_blocks();
        let mut total = 0;
        for (i, list) in t.iter().enumerate() {
            for &(k, bi) in list {
                assert_eq!(sf.blocks[bi].sn, i);
                assert!(
                    (sf.blocks_ptr[k]..sf.blocks_ptr[k + 1]).contains(&bi),
                    "block index out of supernode range"
                );
                total += 1;
            }
        }
        assert_eq!(total, sf.blocks.len());
    }

    #[test]
    fn true_mask_matches_dense_oracle() {
        for seed in 0..3 {
            let m = gen::random_spd(30, 0.12, seed);
            let pat = m.pattern();
            let sf = analyze(&pat, &AnalyzeOptions::default());
            let permuted = permute_pattern(&pat, &sf.perm).symmetrized_with_diagonal();
            let l = dense_factor_pattern(&permuted);
            for s in 0..sf.num_supernodes() {
                let rows = sf.rows_of(s);
                let mask = sf.true_rows_of(s).unwrap();
                let (b, e) = (sf.first_col(s), sf.end_col(s));
                for (p, &r) in rows.iter().enumerate() {
                    let truly = (b..e).any(|j| l[r][j]);
                    assert_eq!(mask[p], truly, "supernode {s} row {r} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn true_mask_all_true_without_relaxation() {
        let w = gen::grid_laplacian_2d(8, 8);
        let opts = AnalyzeOptions {
            ordering: OrderingChoice::Natural,
            supernode: SupernodeOptions { max_width: 0, relax_small: 0, relax_zero_fraction: 0.0 },
            track_true_structure: true,
        };
        let sf = analyze(&w.matrix.pattern(), &opts);
        assert!(sf.true_mask.iter().all(|&t| t), "fundamental partition has no relaxed rows");
    }

    #[test]
    fn sn_parent_contains_first_off_diagonal_block() {
        // For every supernode with off-diagonal rows, the first block's
        // ancestor is the supernodal etree parent.
        let w = gen::grid_laplacian_2d(12, 8);
        let sf = analyze(&w.matrix.pattern(), &AnalyzeOptions::default());
        for s in 0..sf.num_supernodes() {
            if let Some(b) = sf.blocks_of(s).first() {
                assert_eq!(
                    b.sn, sf.sn_parent[s],
                    "first ancestor block must be the supernodal parent"
                );
            }
        }
    }
}
