//! Synthetic nested-dissection elimination skeletons.
//!
//! The paper's timing experiments run on matrices (audikw_1, DG_PNF14000)
//! whose supernodal structures have *hundreds* of ancestor blocks per
//! supernode — a regime that only appears at n ≈ 10⁵…10⁶, too large to
//! analyze from an assembled matrix in this reproduction's single-core
//! budget. This module builds a [`SymbolicFactor`] directly: a balanced
//! binary nested-dissection tree in which every tree node is a *chain* of
//! `chain` supernodes of uniform width `width` (a dense separator), and
//! every supernode is coupled to all supernodes of every ancestor
//! separator — the dense-separator model of 3-D nested dissection fill.
//!
//! The skeleton satisfies every structural invariant the real analysis
//! produces (contiguous supernodes, sorted rows, blocks grouped by
//! ancestor, first off-diagonal block = supernodal parent, parent-chain
//! containment), so the communication planner, volume replay and task
//! graphs consume it unchanged. `tests` cross-validate those invariants
//! against the ones real matrices produce.

use crate::etree::NONE;
use crate::perm::Permutation;
use crate::supernodes::SupernodePartition;
use crate::symbolic::{SnBlock, SymbolicFactor};

/// Parameters of a synthetic skeleton.
#[derive(Clone, Copy, Debug)]
pub struct SkeletonParams {
    /// Depth of the dissection tree (tree has `2^levels - 1` separators).
    pub levels: usize,
    /// Supernodes per separator chain.
    pub chain: usize,
    /// Columns per supernode.
    pub width: usize,
}

/// Builds the skeleton's [`SymbolicFactor`].
///
/// Supernodes are numbered in postorder (children subtrees, then the
/// separator chain bottom-up), so the supernodal elimination tree is
/// monotone as required.
pub fn nd_skeleton(p: SkeletonParams) -> SymbolicFactor {
    assert!(p.levels >= 1 && p.chain >= 1 && p.width >= 1);

    // Analytic postorder layout: a subtree of depth d (d = 1 for leaves)
    // occupies size(d) = 2*size(d-1) + chain supernodes, size(0) = 0.
    // Within a subtree rooted at offset `base`: left child at `base`,
    // right child at `base + size(d-1)`, own chain at `base + 2*size(d-1)`.
    let chain = p.chain;
    let mut size = vec![0usize; p.levels + 1];
    for d in 1..=p.levels {
        size[d] = 2 * size[d - 1] + chain;
    }
    let ns = size[p.levels];

    // For every separator, record (chain_start, ancestors' chain_starts).
    let mut sep_chain_start = vec![0usize; ns]; // per supernode: its chain start
    let mut sn_ancestor_chains: Vec<Vec<usize>> = vec![Vec::new(); ns];
    {
        // DFS with explicit ancestor chain-start stack.
        struct Frame {
            base: usize,
            depth: usize,
        }
        fn dfs(
            f: Frame,
            size: &[usize],
            chain: usize,
            path: &mut Vec<usize>,
            sep_chain_start: &mut [usize],
            sn_ancestor_chains: &mut [Vec<usize>],
        ) {
            let own_start = f.base + 2 * size[f.depth - 1];
            for s in own_start..own_start + chain {
                sep_chain_start[s] = own_start;
                sn_ancestor_chains[s] = path.clone();
            }
            if f.depth > 1 {
                path.push(own_start);
                dfs(
                    Frame { base: f.base, depth: f.depth - 1 },
                    size,
                    chain,
                    path,
                    sep_chain_start,
                    sn_ancestor_chains,
                );
                dfs(
                    Frame { base: f.base + size[f.depth - 1], depth: f.depth - 1 },
                    size,
                    chain,
                    path,
                    sep_chain_start,
                    sn_ancestor_chains,
                );
                path.pop();
            }
        }
        let mut path = Vec::new();
        dfs(
            Frame { base: 0, depth: p.levels },
            &size,
            chain,
            &mut path,
            &mut sep_chain_start,
            &mut sn_ancestor_chains,
        );
    }

    let w = p.width;
    let n = ns * w;
    let sn_ptr: Vec<usize> = (0..=ns).map(|s| s * w).collect();
    let col_to_sn: Vec<usize> = (0..n).map(|c| c / w).collect();

    // Rows/blocks: ancestors of supernode s are the later supernodes of its
    // own chain plus every supernode of every ancestor separator (deepest
    // ancestors have *larger* postorder indices — chains on the path to the
    // tree root are numbered after the whole subtree).
    let mut rows_ptr = vec![0usize; ns + 1];
    let mut rows: Vec<usize> = Vec::new();
    let mut blocks_ptr = vec![0usize; ns + 1];
    let mut blocks: Vec<SnBlock> = Vec::new();
    let mut sn_parent = vec![NONE; ns];
    let mut col_parent = vec![NONE; n];

    for s in 0..ns {
        let chain_start = sep_chain_start[s];
        let chain_end = chain_start + chain;
        // ancestor supernodes, ascending
        let mut anc: Vec<usize> = ((s + 1)..chain_end).collect();
        // ancestor separators were pushed root-first in `path`; their
        // indices are *larger* than s (postorder) and ascending toward the
        // root? No: the root chain has the largest indices; path is
        // root-first, so reverse for ascending order.
        for &astart in sn_ancestor_chains[s].iter().rev() {
            anc.extend(astart..astart + chain);
        }
        debug_assert!(anc.windows(2).all(|x| x[0] < x[1]));

        sn_parent[s] = anc.first().copied().unwrap_or(NONE);
        for c in sn_ptr[s]..sn_ptr[s + 1] - 1 {
            col_parent[c] = c + 1;
        }
        col_parent[sn_ptr[s + 1] - 1] = match sn_parent[s] {
            NONE => NONE,
            parent => sn_ptr[parent],
        };

        for &a in &anc {
            let begin = rows.len();
            rows.extend(sn_ptr[a]..sn_ptr[a + 1]);
            blocks.push(SnBlock { sn: a, rows_begin: begin, rows_end: rows.len() });
        }
        rows_ptr[s + 1] = rows.len();
        blocks_ptr[s + 1] = blocks.len();
    }

    SymbolicFactor {
        n,
        perm: Permutation::identity(n),
        part: SupernodePartition { sn_ptr, col_to_sn },
        sn_parent,
        col_parent,
        rows_ptr,
        rows,
        blocks_ptr,
        blocks,
        true_mask: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skel(levels: usize, chain: usize, width: usize) -> SymbolicFactor {
        nd_skeleton(SkeletonParams { levels, chain, width })
    }

    #[test]
    fn sizes_add_up() {
        let sf = skel(3, 4, 8);
        // 7 separators × 4 supernodes × 8 columns
        assert_eq!(sf.num_supernodes(), 28);
        assert_eq!(sf.n, 224);
    }

    #[test]
    fn same_invariants_as_real_analysis() {
        let sf = skel(4, 3, 6);
        for s in 0..sf.num_supernodes() {
            // rows sorted, below diagonal block
            let rows = sf.rows_of(s);
            for w2 in rows.windows(2) {
                assert!(w2[0] < w2[1]);
            }
            if let Some(&f) = rows.first() {
                assert!(f >= sf.end_col(s));
            }
            // blocks sorted by ancestor, first block = supernodal parent
            let blocks = sf.blocks_of(s);
            for w2 in blocks.windows(2) {
                assert!(w2[0].sn < w2[1].sn);
            }
            if let Some(b) = blocks.first() {
                assert_eq!(b.sn, sf.sn_parent[s]);
            }
            // parent-chain containment: tail rows beyond an ancestor's
            // columns appear in that ancestor's rows
            for b in blocks {
                let end_a = sf.end_col(b.sn);
                let arows = sf.rows_of(b.sn);
                for &r in rows {
                    if r >= end_a {
                        assert!(
                            arows.binary_search(&r).is_ok(),
                            "containment violated: row {r} of {s} not in ancestor {}",
                            b.sn
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn root_chain_has_no_external_ancestors() {
        let sf = skel(3, 5, 4);
        let ns = sf.num_supernodes();
        // last supernode is the tree root: no rows below
        assert!(sf.rows_of(ns - 1).is_empty());
        assert_eq!(sf.sn_parent[ns - 1], NONE);
        // second-to-last: exactly the root as ancestor
        assert_eq!(sf.blocks_of(ns - 2).len(), 1);
    }

    #[test]
    fn leaf_ancestor_count_matches_depth() {
        let sf = skel(4, 3, 2);
        // a supernode at the start of a deepest-level chain sees:
        // (chain-1) within-chain + (levels-1) ancestor chains × chain
        let expect = (3 - 1) + (4 - 1) * 3;
        assert_eq!(sf.blocks_of(0).len(), expect);
    }

    #[test]
    fn etree_is_monotone_and_connected() {
        let sf = skel(4, 4, 3);
        let ns = sf.num_supernodes();
        let mut roots = 0;
        for s in 0..ns {
            match sf.sn_parent[s] {
                NONE => roots += 1,
                p => assert!(p > s),
            }
        }
        assert_eq!(roots, 1);
    }
}
