//! Request-based non-blocking receive API (≈ `MPI_Irecv` + `MPI_Test` /
//! `MPI_Wait`) and a tree barrier.
//!
//! `RankCtx::send` is already non-blocking (buffered). This module adds
//! the receive side PSelInv-style engines poll on: post a set of expected
//! receives, then make progress on whichever arrives first.

use crate::payload::Payload;
use crate::runtime::{BlockedOn, RankCtx};

/// A posted receive: matches one message by `(source, tag)`.
#[derive(Clone, Debug, PartialEq)]
pub struct RecvRequest {
    /// Expected source rank.
    pub src: usize,
    /// Expected tag.
    pub tag: u64,
    state: State,
}

#[derive(Clone, Debug, PartialEq)]
enum State {
    Pending,
    Done(Payload),
}

impl RecvRequest {
    /// Posts a receive for `(src, tag)`.
    pub fn post(src: usize, tag: u64) -> Self {
        Self { src, tag, state: State::Pending }
    }

    /// `true` once the message has been matched.
    pub fn is_done(&self) -> bool {
        matches!(self.state, State::Done(_))
    }

    /// Non-blocking progress: matches a buffered/arriving message if
    /// available (≈ `MPI_Test`). Returns `true` when complete.
    pub fn test(&mut self, ctx: &mut RankCtx) -> bool {
        if self.is_done() {
            return true;
        }
        if let Some(data) = ctx.try_match(self.src, self.tag) {
            self.state = State::Done(data);
            return true;
        }
        false
    }

    /// Blocks until the message arrives (≈ `MPI_Wait`) and returns it.
    pub fn wait(self, ctx: &mut RankCtx) -> Payload {
        match self.state {
            State::Done(d) => d,
            State::Pending => ctx.recv(self.src, self.tag),
        }
    }

    /// Takes the payload if complete.
    pub fn take(self) -> Option<Payload> {
        match self.state {
            State::Done(d) => Some(d),
            State::Pending => None,
        }
    }
}

/// Progresses a set of posted receives until at least one completes;
/// returns the index of a completed request (≈ `MPI_Waitany`).
///
/// When no request can be satisfied, this *blocks on the inbox* until a
/// new message arrives (reporting what it awaits to the watchdog) instead
/// of popping the stash: taking a stashed message the request set rejects
/// and re-fronting it would spin at 100% CPU without ever registering as
/// blocked, making an all-ranks-in-`wait_any` deadlock invisible to the
/// watchdog and flooding the trace with receive/undo event pairs.
pub fn wait_any(ctx: &mut RankCtx, reqs: &mut [RecvRequest]) -> usize {
    assert!(!reqs.is_empty(), "wait_any on an empty request set");
    loop {
        let arrivals = ctx.arrivals();
        for (i, r) in reqs.iter_mut().enumerate() {
            if r.test(ctx) {
                return i;
            }
        }
        // Testing request j drains the whole inbox into the stash, so a
        // message for request i < j can land *after* i was tested this
        // sweep. Parking would lose that wakeup — `wait_for_arrival_as`
        // only wakes on new inbox traffic, never on the stash — so re-sweep
        // whenever anything was accepted off the inbox mid-sweep.
        if ctx.arrivals() != arrivals {
            continue;
        }
        // Nothing matched, so every request is still pending. Report the
        // sharpest wait-for edge the set allows: a single awaited source
        // lets the watchdog chase deadlock cycles through this rank.
        let mut srcs = reqs.iter().map(|r| r.src);
        let src = srcs.next().filter(|&s| srcs.all(|o| o == s));
        let tag = if reqs.len() == 1 { Some(reqs[0].tag) } else { None };
        ctx.wait_for_arrival_as(BlockedOn { src, tag });
    }
}

/// Tag lanes reserved for [`tree_barrier`]'s two internal collectives.
///
/// The top byte of the tag space is a phase namespace (`pselinv-dist`
/// claims values for its six phase lanes); the barrier owns these two
/// values so its up/down messages can never cross-match a caller's tags —
/// deriving the down-phase tag by flipping the top bit of the caller's tag
/// (as this barrier originally did) collides with any namespace that uses
/// the full top byte.
pub const BARRIER_UP_LANE: u64 = 0xB0 << 56;
/// Down-phase companion of [`BARRIER_UP_LANE`].
pub const BARRIER_DOWN_LANE: u64 = 0xB1 << 56;

/// A dissemination-style barrier over an arbitrary rank subset using a
/// tree: reduce up, broadcast down. All listed ranks must call it with the
/// same arguments. `tag` distinguishes concurrent barriers and must fit in
/// the low 56 bits — the top byte belongs to the barrier's reserved lanes.
pub fn tree_barrier(ctx: &mut RankCtx, tree: &pselinv_trees::CollectiveTree, tag: u64) {
    assert!(tag < (1 << 56), "barrier tag {tag:#x} overflows into the reserved lane byte");
    crate::collectives::tree_reduce(ctx, tree, BARRIER_UP_LANE | tag, vec![0.0]);
    crate::collectives::tree_bcast(
        ctx,
        tree,
        BARRIER_DOWN_LANE | tag,
        (ctx.rank() == tree.root()).then(|| vec![0.0]),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run;
    use pselinv_trees::{TreeBuilder, TreeScheme};

    #[test]
    fn irecv_wait_matches() {
        let (results, _) = run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 5, vec![1.25]);
                0.0
            } else {
                let req = RecvRequest::post(0, 5);
                req.wait(ctx)[0]
            }
        });
        assert_eq!(results[1], 1.25);
    }

    #[test]
    fn test_polls_without_blocking() {
        let (results, _) = run(2, |ctx| {
            if ctx.rank() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
                ctx.send(1, 9, vec![2.0]);
                0.0
            } else {
                let mut req = RecvRequest::post(0, 9);
                let mut polls = 0u64;
                while !req.test(ctx) {
                    polls += 1;
                    std::thread::yield_now();
                }
                assert!(req.is_done());
                let v = req.take().unwrap()[0];
                assert!(polls > 0, "expected at least one unsuccessful poll");
                v
            }
        });
        assert_eq!(results[1], 2.0);
    }

    #[test]
    fn wait_any_returns_first_arrival() {
        let (results, _) = run(3, |ctx| {
            match ctx.rank() {
                0 => {
                    // rank 0 posts receives from both others
                    let mut reqs = vec![RecvRequest::post(1, 1), RecvRequest::post(2, 2)];
                    let first = wait_any(ctx, &mut reqs);
                    let a = reqs.remove(first).take().unwrap()[0];
                    let second = wait_any(ctx, &mut reqs);
                    let b = reqs.remove(second).take().unwrap()[0];
                    a + b
                }
                1 => {
                    ctx.send(0, 1, vec![10.0]);
                    0.0
                }
                _ => {
                    ctx.send(0, 2, vec![32.0]);
                    0.0
                }
            }
        });
        assert_eq!(results[0], 42.0);
    }

    #[test]
    fn barrier_synchronizes_subset() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static PHASE: AtomicUsize = AtomicUsize::new(0);
        PHASE.store(0, Ordering::SeqCst);
        let members = [0usize, 2, 3];
        let tree = TreeBuilder::new(TreeScheme::Binary, 0).build(0, &[2, 3], 0);
        let (_, _) = run(4, |ctx| {
            if members.contains(&ctx.rank()) {
                PHASE.fetch_add(1, Ordering::SeqCst);
                tree_barrier(ctx, &tree, 77);
                // after the barrier, every member must have incremented
                assert_eq!(PHASE.load(Ordering::SeqCst), 3);
            }
        });
    }
}
