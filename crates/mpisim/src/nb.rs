//! Nonblocking tree-collective state machines.
//!
//! The blocking collectives in [`crate::collectives`] park the rank inside
//! one broadcast or reduction at a time. These state machines post the
//! same sequenced tree edges as [`RecvRequest`]s and advance on whatever
//! arrives first, so a progress engine (PSelInv's asynchronous phase-2
//! loop) can keep many collectives of many supernodes in flight at once
//! and drain them in arrival order.
//!
//! Determinism: a nonblocking reduction consumes its children's
//! contributions in *arrival* order but parks each in a per-child slot;
//! the slots are summed in the tree's fixed child order, so the floating-
//! point result is bit-identical to the blocking [`tree_reduce`]
//! (which receives and accumulates in exactly that child order).
//!
//! [`tree_reduce`]: crate::collectives::tree_reduce

use crate::payload::Payload;
use crate::requests::RecvRequest;
use crate::runtime::RankCtx;
use pselinv_trees::CollectiveTree;

/// A nonblocking tree broadcast on one rank (≈ the rank-local slice of an
/// `MPI_Ibcast` routed along a [`CollectiveTree`]).
///
/// The root completes (and forwards to its children) at [`TreeBcastNb::start`];
/// every other participant posts a sequenced receive from its parent and
/// forwards downstream the moment [`TreeBcastNb::poll`] matches it.
#[derive(Debug)]
pub struct TreeBcastNb {
    tag: u64,
    /// Pending receive from the parent (`None` once matched, or for the
    /// root / non-participants).
    req: Option<RecvRequest>,
    /// The broadcast payload once it is available on this rank.
    payload: Option<Payload>,
}

impl TreeBcastNb {
    /// Starts the broadcast on this rank. The root must pass `Some(data)`
    /// (packed once, with the copy accounted exactly like the blocking
    /// broadcast) and is immediately done; other participants post their
    /// parent receive; non-participants are immediately done with no
    /// payload.
    pub fn start<P: crate::payload::IntoPayload>(
        ctx: &mut RankCtx,
        tree: &CollectiveTree,
        tag: u64,
        data: Option<P>,
    ) -> Self {
        let me = ctx.rank();
        if me == tree.root() {
            let (payload, copied) =
                data.expect("root must provide the broadcast payload").into_payload();
            ctx.account_copy(copied);
            for child in tree.children_of(me) {
                ctx.send_seq(child, tag, payload.clone());
            }
            Self { tag, req: None, payload: Some(payload) }
        } else if let Some(parent) = tree.parent_of(me) {
            Self { tag, req: Some(RecvRequest::post(parent, tag)), payload: None }
        } else {
            Self { tag, req: None, payload: None }
        }
    }

    /// `true` once this rank's part of the broadcast is finished.
    pub fn is_done(&self) -> bool {
        self.req.is_none()
    }

    /// Non-blocking progress. On the arrival of the parent's message the
    /// payload is forwarded to this rank's children (sequenced, zero-copy
    /// `Arc` clones). Returns [`TreeBcastNb::is_done`].
    pub fn poll(&mut self, ctx: &mut RankCtx, tree: &CollectiveTree) -> bool {
        let Some(req) = &mut self.req else { return true };
        if !req.test(ctx) {
            return false;
        }
        let payload =
            self.req.take().and_then(RecvRequest::take).expect("completed request has a payload");
        for child in tree.children_of(ctx.rank()) {
            ctx.send_seq(child, self.tag, payload.clone());
        }
        self.payload = Some(payload);
        true
    }

    /// The broadcast payload, once available (`None` while pending and on
    /// non-participants).
    pub fn payload(&self) -> Option<&Payload> {
        self.payload.as_ref()
    }

    /// Consumes the machine, returning the payload if it ever arrived.
    pub fn into_payload(self) -> Option<Payload> {
        self.payload
    }
}

/// A nonblocking tree reduction (element-wise sum) on one rank.
///
/// Contributions are matched in arrival order but parked in per-child
/// slots; once every slot is filled they are summed in the tree's fixed
/// child order on top of the local contribution, then forwarded to the
/// parent (or kept as the result at the root). Bit-identical to the
/// blocking [`tree_reduce`](crate::collectives::tree_reduce).
#[derive(Debug)]
pub struct TreeReduceNb {
    tag: u64,
    /// Pending receives, parallel to `slots` (fixed child order).
    reqs: Vec<Option<RecvRequest>>,
    /// Arrived contributions, parallel to `reqs`.
    slots: Vec<Option<Payload>>,
    /// This rank's own contribution until the final sum consumes it.
    local: Option<Vec<f64>>,
    /// `Some` at the root once complete.
    result: Option<Vec<f64>>,
    done: bool,
}

impl TreeReduceNb {
    /// Starts the reduction on this rank with its local contribution,
    /// posting one sequenced receive per child. A leaf that is not the
    /// root forwards immediately and is done.
    pub fn start(ctx: &mut RankCtx, tree: &CollectiveTree, tag: u64, local: Vec<f64>) -> Self {
        let children = tree.children_of(ctx.rank());
        let reqs: Vec<Option<RecvRequest>> =
            children.iter().map(|&c| Some(RecvRequest::post(c, tag))).collect();
        let slots = vec![None; children.len()];
        let mut nb = Self { tag, reqs, slots, local: Some(local), result: None, done: false };
        nb.try_finish(ctx, tree);
        nb
    }

    /// `true` once this rank's part of the reduction is finished.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Non-blocking progress: matches any child contributions that have
    /// arrived; when the last slot fills, sums and forwards. Returns
    /// [`TreeReduceNb::is_done`].
    pub fn poll(&mut self, ctx: &mut RankCtx, tree: &CollectiveTree) -> bool {
        if self.done {
            return true;
        }
        for (req, slot) in self.reqs.iter_mut().zip(self.slots.iter_mut()) {
            let Some(r) = req else { continue };
            if r.test(ctx) {
                *slot = req.take().and_then(RecvRequest::take);
            }
        }
        self.try_finish(ctx, tree);
        self.done
    }

    /// If every child slot is filled, performs the fixed-order sum and
    /// forwards/stores the total.
    fn try_finish(&mut self, ctx: &mut RankCtx, tree: &CollectiveTree) {
        if self.done || self.slots.iter().any(Option::is_none) {
            return;
        }
        let mut acc = self.local.take().expect("local contribution consumed once");
        for slot in &self.slots {
            let contrib = slot.as_ref().expect("all slots filled");
            assert_eq!(contrib.len(), acc.len(), "reduction contributions must have equal length");
            for (a, c) in acc.iter_mut().zip(contrib.iter()) {
                *a += c;
            }
        }
        self.slots.clear();
        if ctx.rank() == tree.root() {
            self.result = Some(acc);
        } else {
            let parent = tree
                .parent_of(ctx.rank())
                .unwrap_or_else(|| panic!("rank {} is not a participant", ctx.rank()));
            ctx.send_seq(parent, self.tag, acc);
        }
        self.done = true;
    }

    /// Consumes the machine, returning the reduced total at the root
    /// (`None` elsewhere).
    pub fn into_result(self) -> Option<Vec<f64>> {
        self.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{tree_bcast, tree_reduce};
    use crate::runtime::run;
    use pselinv_trees::{TreeBuilder, TreeScheme};

    fn schemes() -> Vec<TreeScheme> {
        vec![
            TreeScheme::Flat,
            TreeScheme::Binary,
            TreeScheme::ShiftedBinary,
            TreeScheme::RandomPerm,
        ]
    }

    #[test]
    fn nb_bcast_matches_blocking_bcast() {
        for scheme in schemes() {
            let receivers: Vec<usize> = (1..9).collect();
            let tree = TreeBuilder::new(scheme, 11).build(0, &receivers, 5);
            let tree = &tree;
            let (results, vols) = run(9, move |ctx| {
                let data = (ctx.rank() == 0).then(|| vec![1.5, -2.0, 7.0]);
                let mut nb = TreeBcastNb::start(ctx, tree, 3, data);
                while !nb.poll(ctx, tree) {
                    ctx.wait_for_arrival();
                }
                nb.into_payload().expect("participant gets the payload").to_vec()
            });
            let (expect, evols) = run(9, move |ctx| {
                tree_bcast(ctx, tree, 3, (ctx.rank() == 0).then(|| vec![1.5, -2.0, 7.0])).to_vec()
            });
            assert_eq!(results, expect, "{scheme}");
            assert_eq!(vols, evols, "{scheme} volumes");
        }
    }

    #[test]
    fn nb_reduce_is_bit_identical_to_blocking_reduce() {
        for scheme in schemes() {
            let receivers: Vec<usize> = (1..10).collect();
            let tree = TreeBuilder::new(scheme, 3).build(0, &receivers, 9);
            let tree = &tree;
            // Contributions chosen so summation order matters in floating
            // point: mixing huge and tiny magnitudes.
            let contrib = |r: usize| -> Vec<f64> {
                (0..4).map(|i| (r as f64 + 1.0).powi(18 - i) * 1e-6).collect()
            };
            let (nbr, nbv) = run(10, move |ctx| {
                let mut nb = TreeReduceNb::start(ctx, tree, 4, contrib(ctx.rank()));
                while !nb.poll(ctx, tree) {
                    ctx.wait_for_arrival();
                }
                nb.into_result()
            });
            let (blr, blv) = run(10, move |ctx| tree_reduce(ctx, tree, 4, contrib(ctx.rank())));
            let a = nbr[0].as_ref().expect("root result");
            let b = blr[0].as_ref().expect("root result");
            let ab: Vec<u64> = a.iter().map(|x| x.to_bits()).collect();
            let bb: Vec<u64> = b.iter().map(|x| x.to_bits()).collect();
            assert_eq!(ab, bb, "{scheme}: arrival-order consumption changed the bits");
            for r in 1..10 {
                assert!(nbr[r].is_none());
            }
            assert_eq!(nbv, blv, "{scheme} volumes");
        }
    }

    #[test]
    fn many_overlapping_nb_collectives_complete() {
        // Eight broadcasts and eight reductions of one tree family, all in
        // flight at once on every rank, drained by one progress loop.
        let receivers: Vec<usize> = (1..8).collect();
        let builder = TreeBuilder::new(TreeScheme::ShiftedBinary, 17);
        let trees: Vec<_> = (0..8u64).map(|k| builder.build(0, &receivers, k)).collect();
        let trees = &trees;
        let (results, _) = run(8, move |ctx| {
            let me = ctx.rank();
            let mut bcasts: Vec<TreeBcastNb> = trees
                .iter()
                .enumerate()
                .map(|(k, t)| {
                    let data = (me == 0).then(|| Payload::from(vec![k as f64; 3]));
                    TreeBcastNb::start(ctx, t, 100 + k as u64, data)
                })
                .collect();
            let mut reduces: Vec<TreeReduceNb> = trees
                .iter()
                .enumerate()
                .map(|(k, t)| {
                    TreeReduceNb::start(ctx, t, 200 + k as u64, vec![(me * (k + 1)) as f64])
                })
                .collect();
            loop {
                let mut all = true;
                for (k, b) in bcasts.iter_mut().enumerate() {
                    all &= b.poll(ctx, &trees[k]);
                }
                for (k, r) in reduces.iter_mut().enumerate() {
                    all &= r.poll(ctx, &trees[k]);
                }
                if all {
                    break;
                }
                ctx.wait_for_arrival();
            }
            let bsum: f64 = bcasts.iter().map(|b| b.payload().unwrap()[0]).sum();
            let rsum: f64 = reduces
                .iter_mut()
                .map(|_| 0.0) // placeholder; results taken below at root only
                .sum::<f64>()
                + if me == 0 {
                    let mut s = 0.0;
                    for r in reduces {
                        s += r.into_result().unwrap()[0];
                    }
                    s
                } else {
                    0.0
                };
            (bsum, rsum)
        });
        let bcast_expect: f64 = (0..8).map(|k| k as f64).sum();
        for (r, (bsum, _)) in results.iter().enumerate() {
            assert_eq!(*bsum, bcast_expect, "rank {r}");
        }
        // Σ over k of Σ over ranks of rank*(k+1)
        let ranks_sum: f64 = (0..8).sum::<usize>() as f64;
        let reduce_expect: f64 = (1..=8).map(|k| ranks_sum * k as f64).sum();
        assert_eq!(results[0].1, reduce_expect);
    }
}
