//! Reliable delivery and online crash recovery for tree collectives.
//!
//! Two cooperating layers live here:
//!
//! * **Reliable transport** ([`ReliableConfig`] / [`ReliableState`]): a
//!   per-`(dst, tag)` cumulative-ack + retransmit state machine layered
//!   under every sequenced send. The runtime buffers each sequenced
//!   message until the receiver's cumulative ack covers it and re-sends on
//!   deadline expiry with exponential backoff (deterministic jitter drawn
//!   from the fault plan's seed). With it, an injected `drop_permille`
//!   loss fault is fully masked: collective results are bit-identical to
//!   the fault-free run and the logical volume counters are untouched —
//!   all recovery traffic lands in
//!   [`RankVolume::retransmitted`](crate::RankVolume::retransmitted).
//! * **Crash recovery** ([`Recovery`]): an online re-implementation of the
//!   offline `figures -- faults` rebuild study. Survivors of a confirmed
//!   rank death (the shared crash board is the failure detector's ground
//!   truth; a `recv_seq_timeout` suspicion deadline decides *when* to
//!   consult it) rebuild each affected collective tree with
//!   `TreeBuilder::rebuild_excluding`, re-home their orphaned edges via
//!   JOIN requests on a dedicated tag lane, and consume the re-issued
//!   payload under a bumped epoch — in-flight pre-crash traffic on a
//!   re-homed edge is discarded with its accounting reversed. Only
//!   collectives whose payload *source* died are irreparable; they are
//!   reported as stranded instead of hanging the run.

use crate::payload::Payload;
use crate::runtime::{Message, RankCtx, JOIN_LANE, LANE_MASK, REPAIR_LANE};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::{Duration, Instant};

/// Knobs of the reliable transport.
#[derive(Clone, Copy, Debug)]
pub struct ReliableConfig {
    /// Base retransmission timeout: how long an unacked message may stay
    /// in flight before its stream is re-sent.
    pub rto: Duration,
    /// Cap on the exponential backoff: the deadline after attempt `k` is
    /// `rto * 2^min(k, max_backoff_exp)` plus jitter.
    pub max_backoff_exp: u32,
    /// Upper bound (µs) of the deterministic per-attempt jitter drawn from
    /// the fault plan's seed; 0 disables jitter.
    pub jitter_cap_us: u64,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        Self { rto: Duration::from_millis(20), max_backoff_exp: 6, jitter_cap_us: 2000 }
    }
}

/// One retransmission stream: the unacked suffix of a `(dst, tag)` edge.
pub(crate) struct OutStream {
    /// Sequenced messages sent but not yet covered by a cumulative ack.
    pub(crate) unacked: BTreeMap<u64, Message>,
    /// Retransmission attempts since the last ack progress.
    pub(crate) attempts: u32,
    /// When the stream is re-sent next.
    pub(crate) deadline: Instant,
}

/// Per-rank reliable-transport state, owned by the runtime's `RankCtx`.
pub(crate) struct ReliableState {
    pub(crate) cfg: ReliableConfig,
    pub(crate) streams: HashMap<(usize, u64), OutStream>,
}

impl ReliableState {
    pub(crate) fn new(cfg: ReliableConfig) -> Self {
        Self { cfg, streams: HashMap::new() }
    }

    /// Buffers a freshly sent sequenced message until it is acked. Arms the
    /// stream deadline if the stream was previously empty.
    pub(crate) fn track(&mut self, dst: usize, tag: u64, msg: Message, jitter: Duration) {
        let now = Instant::now();
        let rto = self.cfg.rto;
        let s = self.streams.entry((dst, tag)).or_insert_with(|| OutStream {
            unacked: BTreeMap::new(),
            attempts: 0,
            deadline: now + rto + jitter,
        });
        if s.unacked.is_empty() {
            s.attempts = 0;
            s.deadline = now + rto + jitter;
        }
        s.unacked.insert(msg.seq, msg);
    }

    /// Applies a cumulative ack: everything below `cum` on `(src, tag)` is
    /// delivered. Ack progress resets the backoff and re-arms the deadline.
    pub(crate) fn ack(&mut self, src: usize, tag: u64, cum: u64, jitter: Duration) {
        let Some(s) = self.streams.get_mut(&(src, tag)) else { return };
        let before = s.unacked.len();
        s.unacked.retain(|&seq, _| seq >= cum);
        if s.unacked.is_empty() {
            self.streams.remove(&(src, tag));
        } else if s.unacked.len() < before {
            s.attempts = 0;
            s.deadline = Instant::now() + self.cfg.rto + jitter;
        }
    }
}

/// Knobs of the online crash-recovery layer.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryConfig {
    /// How long a silent parent is tolerated before the crash board is
    /// consulted and (if deaths are confirmed) the tree rebuilt. Purely a
    /// latency/traffic trade-off: a false suspicion only costs a redundant
    /// JOIN, never correctness — the board holds confirmed deaths only.
    pub suspect_after: Duration,
    /// Receive-slice granularity: between slices the rank serves incoming
    /// JOIN requests, which is what keeps repair chains live while
    /// everyone is blocked in their own collective.
    pub slice: Duration,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self { suspect_after: Duration::from_millis(100), slice: Duration::from_millis(5) }
    }
}

/// Per-rank state of the recovery layer: the adopted dead set, the payload
/// cache repair requests are answered from, and the pending-JOIN queue.
pub struct Recovery {
    cfg: RecoveryConfig,
    /// Confirmed-dead ranks adopted so far (ascending).
    dead: Vec<usize>,
    /// `tag → payload` of every collective this rank completed: the store
    /// JOINs are served from. Payloads are shared buffers, so the cache
    /// costs headers, not blocks.
    cache: HashMap<u64, Payload>,
    /// `(tag, requester, epoch)` JOINs that arrived before this rank had
    /// the payload.
    pending: Vec<(u64, usize, u64)>,
    /// `(tag, requester, epoch)` triples already served (JOINs are re-sent
    /// on every suspicion expiry, so serving must be idempotent — but a
    /// re-JOIN under a *newer* epoch is a fresh request, not a duplicate).
    served: HashSet<(u64, usize, u64)>,
}

impl Recovery {
    /// A fresh per-rank recovery context.
    pub fn new(cfg: RecoveryConfig) -> Self {
        Self {
            cfg,
            dead: Vec::new(),
            cache: HashMap::new(),
            pending: Vec::new(),
            served: HashSet::new(),
        }
    }

    /// The dead set this rank has adopted so far.
    pub fn dead(&self) -> &[usize] {
        &self.dead
    }

    /// Re-reads the crash board; returns `true` if the dead set grew.
    fn refresh_dead(&mut self, ctx: &RankCtx) -> bool {
        let dead = ctx.crashed_ranks();
        if dead.len() > self.dead.len() {
            self.dead = dead;
            true
        } else {
            false
        }
    }

    /// Answers queued and newly arrived JOIN requests from the payload
    /// cache. Runs between receive slices and in [`Recovery::finish`].
    fn serve_joins(&mut self, ctx: &mut RankCtx) {
        while let Some(m) = ctx.try_take_lane(JOIN_LANE) {
            let requester = m.data.first().map_or(0.0, |v| *v) as usize;
            let req_epoch = m.data.get(1).map_or(0.0, |v| *v) as u64;
            let base = m.tag & !LANE_MASK;
            // The requester's re-homed edge only accepts messages at its
            // bumped epoch: adopt that view *before* answering, or a
            // server that has not yet observed the crash would stamp the
            // repair with its stale epoch and the requester would discard
            // it as pre-crash traffic.
            ctx.set_epoch(req_epoch);
            self.pending.push((base, requester, req_epoch));
        }
        let mut still_pending = Vec::new();
        for (base, requester, req_epoch) in std::mem::take(&mut self.pending) {
            if self.served.contains(&(base, requester, req_epoch)) || ctx.is_crashed(requester) {
                continue;
            }
            match self.cache.get(&base) {
                Some(p) => {
                    let p = p.clone();
                    ctx.note_reissue(p.bytes());
                    ctx.send_seq(requester, REPAIR_LANE | base, p);
                    self.served.insert((base, requester, req_epoch));
                }
                None => still_pending.push((base, requester, req_epoch)),
            }
        }
        self.pending = still_pending;
    }

    /// Recovery-aware tree broadcast. Semantics of
    /// [`tree_bcast`](crate::collectives::tree_bcast), with three changes:
    /// the payload is delivered to every *survivor* even when tree members
    /// died mid-flight (orphans re-home onto the
    /// `rebuild_excluding`-derived tree and pull the payload from their new
    /// parent), `None` is returned when the payload source itself died
    /// (the stranded case), and the call never hangs on a casualty.
    ///
    /// `tag` must stay below `1 << 56` (the high byte is the control-lane
    /// space) and be unique per collective, because it keys the repair
    /// payload cache.
    pub fn bcast(
        &mut self,
        ctx: &mut RankCtx,
        builder: &pselinv_trees::TreeBuilder,
        tree: &pselinv_trees::CollectiveTree,
        key: u64,
        tag: u64,
        data: Option<Vec<f64>>,
    ) -> Option<Payload> {
        assert_eq!(tag & LANE_MASK, 0, "recovery tags must stay below the control lanes");
        let me = ctx.rank();
        let root = tree.root();
        self.refresh_dead(ctx);
        ctx.set_epoch(self.dead.len() as u64);
        self.serve_joins(ctx);
        if me == root {
            let payload = Payload::from(data.expect("root must provide the broadcast payload"));
            self.forward(ctx, tree, tag, &payload);
            self.complete(ctx, tag, payload.clone());
            return Some(payload);
        }
        let mut src = tree
            .parent_of(me)
            .unwrap_or_else(|| panic!("rank {me} is not a participant of this broadcast"));
        let mut src_tag = tag;
        let mut waited = Instant::now();
        loop {
            self.serve_joins(ctx);
            if ctx.is_crashed(root) {
                // The payload source died: no survivor can ever produce
                // this collective's data. Record the stranded supernode
                // and degrade instead of hanging.
                self.refresh_dead(ctx);
                ctx.set_epoch(self.dead.len() as u64);
                ctx.note_stranded(tag);
                return None;
            }
            // Fast path: a sender already on the confirmed-dead board will
            // never speak again, so later collectives re-home immediately
            // instead of paying the suspicion timeout once per tree.
            let parent_confirmed_dead = src_tag == tag && {
                self.refresh_dead(ctx);
                self.dead.contains(&src)
            };
            if !parent_confirmed_dead {
                match ctx.recv_seq_timeout(src, src_tag, self.cfg.slice) {
                    Ok(p) => {
                        self.forward(ctx, tree, tag, &p);
                        self.complete(ctx, tag, p.clone());
                        return Some(p);
                    }
                    Err(_) if waited.elapsed() >= self.cfg.suspect_after => {
                        waited = Instant::now();
                        self.refresh_dead(ctx);
                    }
                    Err(_) => continue,
                }
            }
            if self.dead.is_empty() {
                continue; // slow, not dead: keep waiting
            }
            // Deaths are confirmed: every survivor derives the same
            // degraded tree and this rank re-homes onto its rebuilt
            // parent. Re-JOINing on every expiry is idempotent (the
            // server dedups), so a lost-to-timing first JOIN self-heals.
            let epoch = self.dead.len() as u64;
            ctx.set_epoch(epoch);
            let rebuilt = builder.rebuild_excluding(tree, &self.dead, key);
            ctx.note_rebuild(tag);
            let Some(np) = rebuilt.parent_of(me) else {
                // Promoted to rebuilt root without the payload: only
                // possible when the original root died, which the stranded
                // check above will catch on the next spin once the board
                // confirms it.
                continue;
            };
            src = np;
            src_tag = REPAIR_LANE | tag;
            ctx.expect_epoch(src, src_tag, epoch);
            ctx.note_join();
            ctx.send(np, JOIN_LANE | tag, vec![me as f64, epoch as f64]);
        }
    }

    /// Forwards a received payload to this rank's children in the original
    /// tree, skipping confirmed casualties (a send racing an unconfirmed
    /// death is dropped harmlessly by the runtime).
    fn forward(
        &mut self,
        ctx: &mut RankCtx,
        tree: &pselinv_trees::CollectiveTree,
        tag: u64,
        payload: &Payload,
    ) {
        for child in tree.children_of(ctx.rank()) {
            if !self.dead.contains(&child) {
                ctx.send_seq(child, tag, payload.clone());
            }
        }
    }

    /// Caches the payload and answers any JOINs that were waiting on it.
    fn complete(&mut self, ctx: &mut RankCtx, tag: u64, payload: Payload) {
        self.cache.insert(tag, payload);
        self.serve_joins(ctx);
    }

    /// Recovery epilogue: call once after the rank's last collective. The
    /// rank keeps serving JOIN requests until every survivor's user work is
    /// complete, so a repair chain can still route through ranks that
    /// finished early.
    pub fn finish(&mut self, ctx: &mut RankCtx) {
        ctx.mark_user_done();
        while !ctx.all_user_done() {
            self.serve_joins(ctx);
            std::thread::sleep(self.cfg.slice);
        }
        self.serve_joins(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_state_tracks_and_acks_cumulatively() {
        let mut rel = ReliableState::new(ReliableConfig::default());
        let msg = |seq: u64| Message {
            src: 0,
            tag: 7,
            sent_us: 0,
            seq,
            clock: 0,
            idx: 0,
            epoch: 0,
            data: Payload::from(vec![1.0]),
        };
        for seq in 0..4 {
            rel.track(1, 7, msg(seq), Duration::ZERO);
        }
        assert_eq!(rel.streams[&(1, 7)].unacked.len(), 4);
        // Cumulative ack below 2: seqs 0 and 1 pruned, 2 and 3 kept.
        rel.ack(1, 7, 2, Duration::ZERO);
        assert_eq!(rel.streams[&(1, 7)].unacked.keys().copied().collect::<Vec<_>>(), vec![2, 3]);
        // A stale ack changes nothing.
        rel.ack(1, 7, 1, Duration::ZERO);
        assert_eq!(rel.streams[&(1, 7)].unacked.len(), 2);
        // Full coverage drops the stream.
        rel.ack(1, 7, 4, Duration::ZERO);
        assert!(!rel.streams.contains_key(&(1, 7)));
        // Acks for unknown streams are ignored.
        rel.ack(3, 9, 10, Duration::ZERO);
    }

    #[test]
    fn backoff_deadline_grows_with_attempts() {
        let cfg =
            ReliableConfig { rto: Duration::from_millis(10), max_backoff_exp: 3, jitter_cap_us: 0 };
        // The exponent saturates at max_backoff_exp.
        for (attempts, expect_ms) in [(1u32, 20u64), (2, 40), (3, 80), (5, 80), (40, 80)] {
            let exp = attempts.min(cfg.max_backoff_exp);
            let rto = cfg.rto * 2u32.saturating_pow(exp);
            assert_eq!(rto, Duration::from_millis(expect_ms), "attempt {attempts}");
        }
    }
}
