//! Tree-routed restricted collectives over point-to-point messages.
//!
//! These are the paper's "light-weight asynchronous broadcast and reduction
//! functions that can be dynamically created with very little overhead":
//! every participant derives the same [`CollectiveTree`] locally (no
//! communicator creation, no synchronization) and exchanges point-to-point
//! messages along its edges.

use crate::payload::{IntoPayload, Payload};
use crate::runtime::RankCtx;
use pselinv_trace::CollKind;
use pselinv_trees::CollectiveTree;

/// Opens the tracing window of one collective call: records this rank's
/// tree depth for per-depth byte attribution and (when no phase scope is
/// already open) a `(kind, tag)` span. Free when tracing is disabled — in
/// particular `depth_of` is never computed.
fn trace_enter(ctx: &mut RankCtx, kind: CollKind, tag: u64, tree: &CollectiveTree) -> bool {
    if !ctx.tracer().is_enabled() {
        return false;
    }
    let depth = tree.depth_of(ctx.rank());
    ctx.tracer().coll_enter(kind, tag, depth)
}

/// Broadcasts `data` from the tree's root to every participant.
///
/// The root passes `Some(data)`, everyone else `None`; all participants
/// return the payload. Non-participants must not call this.
///
/// Zero-copy forwarding: the root packs its buffer into a shared
/// [`Payload`] once (that one copy is counted), and every hop — root to
/// children, interior ranks onward — sends `Arc` clones of the same
/// buffer. The broadcast's physical copy cost is O(1) payloads regardless
/// of tree shape or rank count.
pub fn tree_bcast<P: IntoPayload>(
    ctx: &mut RankCtx,
    tree: &CollectiveTree,
    tag: u64,
    data: Option<P>,
) -> Payload {
    let me = ctx.rank();
    let pushed = trace_enter(ctx, CollKind::Bcast, tag, tree);
    let payload = if me == tree.root() {
        let (payload, copied) =
            data.expect("root must provide the broadcast payload").into_payload();
        ctx.account_copy(copied);
        payload
    } else {
        let parent = tree
            .parent_of(me)
            .unwrap_or_else(|| panic!("rank {me} is not a participant of this broadcast"));
        // Sequence-checked edges: injected duplicates and reorderings are
        // masked, so the collective's result is fault-schedule independent.
        ctx.recv_seq(parent, tag)
    };
    for child in tree.children_of(me) {
        ctx.send_seq(child, tag, payload.clone());
    }
    ctx.tracer().coll_exit(pushed);
    payload
}

/// Reduces (element-wise sum) every participant's `local` contribution onto
/// the tree's root. Returns `Some(total)` at the root, `None` elsewhere.
///
/// A reduction genuinely mutates at every interior node (the element-wise
/// sum), so — unlike [`tree_bcast`] — each hop sends a freshly written
/// buffer; leaves with no children forward their contribution unmodified.
pub fn tree_reduce(
    ctx: &mut RankCtx,
    tree: &CollectiveTree,
    tag: u64,
    local: Vec<f64>,
) -> Option<Vec<f64>> {
    let me = ctx.rank();
    let pushed = trace_enter(ctx, CollKind::Reduce, tag, tree);
    let mut acc = local;
    for child in tree.children_of(me) {
        let contrib = ctx.recv_seq(child, tag);
        assert_eq!(contrib.len(), acc.len(), "reduction contributions must have equal length");
        for (a, c) in acc.iter_mut().zip(contrib.iter()) {
            *a += c;
        }
    }
    let out = if me == tree.root() {
        Some(acc)
    } else {
        let parent = tree
            .parent_of(me)
            .unwrap_or_else(|| panic!("rank {me} is not a participant of this reduction"));
        ctx.send_seq(parent, tag, acc);
        None
    };
    ctx.tracer().coll_exit(pushed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run;
    use pselinv_trees::{TreeBuilder, TreeScheme};

    fn schemes() -> Vec<TreeScheme> {
        vec![
            TreeScheme::Flat,
            TreeScheme::Binary,
            TreeScheme::ShiftedBinary,
            TreeScheme::RandomPerm,
            TreeScheme::Hybrid { flat_threshold: 4 },
        ]
    }

    #[test]
    fn bcast_reaches_all_participants() {
        for scheme in schemes() {
            let builder = TreeBuilder::new(scheme, 11);
            // participants: odd ranks of 0..10, root 5
            let receivers = [1usize, 3, 7, 9];
            let tree = builder.build(5, &receivers, 123);
            let (results, _) = run(10, |ctx| {
                let me = ctx.rank();
                if me == 5 {
                    tree_bcast(ctx, &tree, 9, Some(vec![3.25, -1.5]))
                } else if receivers.contains(&me) {
                    tree_bcast(ctx, &tree, 9, None::<Vec<f64>>)
                } else {
                    Payload::empty()
                }
            });
            for &r in &receivers {
                assert_eq!(results[r], vec![3.25, -1.5], "{scheme}");
            }
            assert!(results[0].is_empty());
        }
    }

    #[test]
    fn reduce_sums_all_contributions() {
        for scheme in schemes() {
            let builder = TreeBuilder::new(scheme, 5);
            let receivers: Vec<usize> = (1..8).collect();
            let tree = builder.build(0, &receivers, 77);
            let (results, _) = run(8, |ctx| {
                let me = ctx.rank();
                tree_reduce(ctx, &tree, 1, vec![me as f64, 1.0])
            });
            let total: f64 = (0..8).sum::<usize>() as f64;
            assert_eq!(results[0], Some(vec![total, 8.0]), "{scheme}");
            for r in 1..8 {
                assert_eq!(results[r], None);
            }
        }
    }

    #[test]
    fn concurrent_collectives_with_distinct_tags() {
        // Two overlapping broadcasts + one reduction in flight at once.
        let b = TreeBuilder::new(TreeScheme::ShiftedBinary, 3);
        let t1 = b.build(0, &[1, 2, 3, 4, 5], 1);
        let t2 = b.build(5, &[0, 1, 2, 3, 4], 2);
        let t3 = b.build(2, &[0, 1, 3, 4, 5], 3);
        let (results, _) = run(6, |ctx| {
            let me = ctx.rank();
            let d1 = tree_bcast(ctx, &t1, 101, (me == 0).then(|| vec![1.0]));
            let d2 = tree_bcast(ctx, &t2, 102, (me == 5).then(|| vec![2.0]));
            let r = tree_reduce(ctx, &t3, 103, vec![me as f64]);
            (d1[0], d2[0], r.map(|v| v[0]))
        });
        for (i, (d1, d2, r)) in results.iter().enumerate() {
            assert_eq!(*d1, 1.0);
            assert_eq!(*d2, 2.0);
            if i == 2 {
                assert_eq!(*r, Some(15.0));
            } else {
                assert_eq!(*r, None);
            }
        }
    }

    #[test]
    fn bcast_volume_matches_tree_accounting() {
        // The runtime's byte counters must agree with the static volume
        // model in pselinv-trees — the link between the numeric runtime and
        // the paper-scale replay.
        let b = TreeBuilder::new(TreeScheme::Binary, 0);
        let receivers: Vec<usize> = (1..12).collect();
        let tree = b.build(0, &receivers, 0);
        let payload = 32usize; // floats
        let (_, volumes) = run(12, |ctx| {
            tree_bcast(ctx, &tree, 0, (ctx.rank() == 0).then(|| vec![0.5; payload]));
        });
        let mut expected = vec![0u64; 12];
        pselinv_trees::bcast_sent_volume(&tree, (payload * 8) as u64, &mut expected);
        for r in 0..12 {
            assert_eq!(volumes[r].sent, expected[r], "rank {r}");
        }
    }

    #[test]
    fn traced_bcast_bytes_match_tree_accounting() {
        use crate::runtime::run_traced;
        use pselinv_trace::CollKind;
        let b = TreeBuilder::new(TreeScheme::ShiftedBinary, 3);
        let receivers: Vec<usize> = (1..10).collect();
        let tree = b.build(0, &receivers, 7);
        let payload = 24usize;
        let (_, _, trace) = run_traced(10, "unit/bcast", |ctx| {
            tree_bcast(ctx, &tree, 0, (ctx.rank() == 0).then(|| vec![1.0; payload]));
        });
        let mut expected = vec![0u64; 10];
        pselinv_trees::bcast_sent_volume(&tree, (payload * 8) as u64, &mut expected);
        // Bare collective: every send lands under the Bcast kind.
        assert_eq!(trace.sent_bytes(CollKind::Bcast), expected);
        // Depth attribution: total over depths equals total over ranks, and
        // only depths that actually forward (interior levels) carry bytes.
        let by_depth: Vec<u64> = {
            let mut d = Vec::new();
            for r in &trace.ranks {
                for (i, &v) in r.metrics.depth_sent_bytes.iter().enumerate() {
                    if i >= d.len() {
                        d.resize(i + 1, 0);
                    }
                    d[i] += v;
                }
            }
            d
        };
        assert_eq!(by_depth.iter().sum::<u64>(), expected.iter().sum::<u64>());
        assert!(by_depth.len() <= tree.depth() + 1);
    }

    #[test]
    fn bcast_copies_one_payload_regardless_of_fanout() {
        // The zero-copy invariant: however many edges the tree has, the
        // whole broadcast physically copies exactly one payload (the
        // root's initial packing); every forward is an Arc clone.
        for scheme in schemes() {
            let nranks = 16usize;
            let builder = TreeBuilder::new(scheme, 5);
            let receivers: Vec<usize> = (1..nranks).collect();
            let tree = builder.build(0, &receivers, 9);
            let payload = 128usize;
            let (_, volumes) = run(nranks, |ctx| {
                tree_bcast(ctx, &tree, 0, (ctx.rank() == 0).then(|| vec![1.0; payload]));
            });
            let total_copied: u64 = volumes.iter().map(|v| v.copied).sum();
            assert_eq!(total_copied, (payload * 8) as u64, "{scheme}");
            // Logical volume is still the full per-edge traffic.
            let total_sent: u64 = volumes.iter().map(|v| v.sent).sum();
            assert_eq!(total_sent, ((nranks - 1) * payload * 8) as u64, "{scheme}");
        }
    }

    #[test]
    fn reduce_received_volume_matches_tree_accounting() {
        let b = TreeBuilder::new(TreeScheme::ShiftedBinary, 9);
        let receivers: Vec<usize> = (0..15).filter(|&r| r != 7).collect();
        let tree = b.build(7, &receivers, 4);
        let (_, volumes) = run(15, |ctx| {
            tree_reduce(ctx, &tree, 0, vec![1.0; 16]);
        });
        let mut expected = vec![0u64; 15];
        pselinv_trees::reduce_received_volume(&tree, 16 * 8, &mut expected);
        for r in 0..15 {
            assert_eq!(volumes[r].received, expected[r], "rank {r}");
        }
    }
}
