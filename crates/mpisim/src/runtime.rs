//! Ranks, mailboxes and tagged point-to-point messaging.

use pselinv_trace::{RankTrace, RankTracer, Trace};
use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::Instant;

/// A tagged message between ranks. Payloads are `f64` slices because every
/// PSelInv message is a dense block (plus small headers encoded in the tag).
#[derive(Clone, Debug, PartialEq)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// User tag (encodes supernode / block / phase in `pselinv-dist`).
    pub tag: u64,
    /// Send timestamp on the run's shared trace clock (µs since the run
    /// epoch); 0 when tracing is disabled. Lets the receiver classify
    /// blocked time into late-sender wait vs transfer.
    pub sent_us: u64,
    /// Payload.
    pub data: Vec<f64>,
}

impl Message {
    /// Payload size in bytes.
    pub fn bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f64>()) as u64
    }
}

/// Per-rank communication volume, returned after a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankVolume {
    /// Bytes sent by this rank.
    pub sent: u64,
    /// Bytes received by this rank.
    pub received: u64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Messages received.
    pub msgs_received: u64,
}

/// The per-rank handle: identity, mailbox and counters.
///
/// The out-of-order stash preserves MPI's non-overtaking guarantee: two
/// messages with the same `(source, tag)` are always delivered in the order
/// they were sent. The stash is therefore a FIFO (`VecDeque`): arrivals
/// append at the back, wildcard receives take from the front, and tag
/// matches take the *first* match in arrival order.
pub struct RankCtx {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Message>>,
    inbox: Receiver<Message>,
    /// Out-of-order stash for `(src, tag)` matching, in arrival order.
    stash: VecDeque<Message>,
    volume: RankVolume,
    tracer: RankTracer,
}

impl RankCtx {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the universe.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The rank's trace sink (disabled under [`run`], enabled under
    /// [`run_traced`]). Phase drivers push attribution scopes on it.
    pub fn tracer(&mut self) -> &mut RankTracer {
        &mut self.tracer
    }

    /// Buffered non-blocking send (≈ `MPI_Isend` whose buffer is owned by
    /// the runtime — the call returns immediately).
    pub fn send(&mut self, dst: usize, tag: u64, data: Vec<f64>) {
        assert!(dst < self.size, "destination {dst} out of range");
        assert_ne!(dst, self.rank, "self-sends are not modeled (use local data)");
        let msg = Message { src: self.rank, tag, sent_us: self.tracer.now_us(), data };
        self.volume.sent += msg.bytes();
        self.volume.msgs_sent += 1;
        self.tracer.msg_send(dst, tag, msg.bytes());
        self.senders[dst].send(msg).expect("receiver hung up");
    }

    /// Blocking receive matching `(src, tag)`, buffering any other arrivals
    /// (≈ `MPI_Recv` with out-of-order message stashing).
    ///
    /// A receive that actually blocks gets its blocked interval classified
    /// into late-sender wait vs transfer time against the matching
    /// message's send timestamp (a stash hit never blocked, so records
    /// neither).
    pub fn recv(&mut self, src: usize, tag: u64) -> Vec<f64> {
        if let Some(i) = self.stash.iter().position(|m| m.src == src && m.tag == tag) {
            // `remove` (not `swap_remove_back`) keeps the rest of the stash
            // in arrival order, preserving per-(src, tag) FIFO delivery.
            let m = self.stash.remove(i).unwrap();
            self.tracer.stash_depth(self.stash.len());
            return self.account_recv(m).data;
        }
        let posted_us = self.tracer.now_us();
        loop {
            let m = self.inbox.recv().expect("all senders hung up while receiving");
            if m.src == src && m.tag == tag {
                self.tracer.recv_wait(posted_us, m.sent_us);
                return self.account_recv(m).data;
            }
            self.stash.push_back(m);
            self.tracer.stash_depth(self.stash.len());
        }
    }

    /// Blocking wildcard receive (stashed messages first, oldest first).
    pub fn recv_any(&mut self) -> Message {
        if let Some(m) = self.stash.pop_front() {
            self.tracer.stash_depth(self.stash.len());
            return self.account_recv(m);
        }
        let posted_us = self.tracer.now_us();
        let m = self.inbox.recv().expect("all senders hung up while receiving");
        self.tracer.recv_wait(posted_us, m.sent_us);
        self.account_recv(m)
    }

    /// Non-blocking wildcard receive.
    pub fn try_recv_any(&mut self) -> Option<Message> {
        if let Some(m) = self.stash.pop_front() {
            self.tracer.stash_depth(self.stash.len());
            return Some(self.account_recv(m));
        }
        match self.inbox.try_recv() {
            Ok(m) => Some(self.account_recv(m)),
            Err(_) => None,
        }
    }

    /// Non-blocking match of `(src, tag)`: drains any queued arrivals into
    /// the stash and returns the payload if a matching message is present
    /// (≈ `MPI_Iprobe` + receive). Used by the request API.
    pub fn try_match(&mut self, src: usize, tag: u64) -> Option<Vec<f64>> {
        while let Ok(m) = self.inbox.try_recv() {
            self.stash.push_back(m);
            self.tracer.stash_depth(self.stash.len());
        }
        let i = self.stash.iter().position(|m| m.src == src && m.tag == tag)?;
        let m = self.stash.remove(i).unwrap();
        self.tracer.stash_depth(self.stash.len());
        Some(self.account_recv(m).data)
    }

    /// Returns a message taken with [`RankCtx::recv_any`] to the stash
    /// (un-receives it), reversing its accounting. Used by `wait_any` when
    /// an arrival matches none of the posted requests yet.
    ///
    /// The message goes back to the *front* of the stash — it was the
    /// oldest undelivered message, and must stay ahead of anything that
    /// arrived after it.
    pub fn stash_back(&mut self, m: Message) {
        self.volume.received -= m.bytes();
        self.volume.msgs_received -= 1;
        self.tracer.msg_recv_undo();
        self.stash.push_front(m);
        self.tracer.stash_depth(self.stash.len());
    }

    fn account_recv(&mut self, m: Message) -> Message {
        self.volume.received += m.bytes();
        self.volume.msgs_received += 1;
        self.tracer.msg_recv(m.src, m.tag, m.bytes());
        m
    }

    /// Counters so far.
    pub fn volume(&self) -> RankVolume {
        self.volume
    }
}

fn run_impl<R, F, M>(nranks: usize, f: &F, mk: &M) -> Vec<(R, RankVolume, Option<RankTrace>)>
where
    R: Send,
    F: Fn(&mut RankCtx) -> R + Sync,
    M: Fn(usize) -> RankTracer + Sync,
{
    assert!(nranks > 0);
    let mut senders = Vec::with_capacity(nranks);
    let mut receivers = Vec::with_capacity(nranks);
    for _ in 0..nranks {
        let (s, r) = channel();
        senders.push(s);
        receivers.push(r);
    }
    std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(nranks);
        for (rank, inbox) in receivers.into_iter().enumerate() {
            let senders = senders.clone();
            joins.push(scope.spawn(move || {
                let mut ctx = RankCtx {
                    rank,
                    size: nranks,
                    senders,
                    inbox,
                    stash: VecDeque::new(),
                    volume: RankVolume::default(),
                    tracer: mk(rank),
                };
                let r = f(&mut ctx);
                (r, ctx.volume, ctx.tracer.finish())
            }));
        }
        joins.into_iter().map(|j| j.join().expect("rank thread panicked")).collect()
    })
}

/// Runs `f` on `nranks` rank threads and returns each rank's result plus
/// its communication volume.
///
/// Panics in any rank propagate (the run aborts with that panic).
pub fn run<R, F>(nranks: usize, f: F) -> (Vec<R>, Vec<RankVolume>)
where
    R: Send,
    F: Fn(&mut RankCtx) -> R + Sync,
{
    let handles = run_impl(nranks, &f, &|_| RankTracer::disabled());
    let mut results = Vec::with_capacity(nranks);
    let mut volumes = Vec::with_capacity(nranks);
    for (r, v, _) in handles {
        results.push(r);
        volumes.push(v);
    }
    (results, volumes)
}

/// Like [`run`], but with an enabled wall-clock tracer on every rank: each
/// `RankCtx` records message events, per-phase byte counters and stash
/// depth, and the assembled [`Trace`] is returned alongside the results.
pub fn run_traced<R, F>(nranks: usize, label: &str, f: F) -> (Vec<R>, Vec<RankVolume>, Trace)
where
    R: Send,
    F: Fn(&mut RankCtx) -> R + Sync,
{
    let epoch = Instant::now();
    let handles = run_impl(nranks, &f, &move |rank| RankTracer::wall(rank, epoch));
    let mut results = Vec::with_capacity(nranks);
    let mut volumes = Vec::with_capacity(nranks);
    let mut traces = Vec::with_capacity(nranks);
    for (r, v, t) in handles {
        results.push(r);
        volumes.push(v);
        traces.extend(t);
    }
    (results, volumes, Trace::new(label, traces))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong() {
        let (results, volumes) = run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, vec![1.0, 2.0, 3.0]);
                ctx.recv(1, 8)
            } else {
                let d = ctx.recv(0, 7);
                let doubled: Vec<f64> = d.iter().map(|x| x * 2.0).collect();
                ctx.send(0, 8, doubled.clone());
                doubled
            }
        });
        assert_eq!(results[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(volumes[0].sent, 24);
        assert_eq!(volumes[0].received, 24);
        assert_eq!(volumes[1].msgs_sent, 1);
    }

    #[test]
    fn out_of_order_tag_matching() {
        let (results, _) = run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![1.0]);
                ctx.send(1, 2, vec![2.0]);
                ctx.send(1, 3, vec![3.0]);
                vec![]
            } else {
                // receive in reverse order
                let c = ctx.recv(0, 3);
                let b = ctx.recv(0, 2);
                let a = ctx.recv(0, 1);
                vec![a[0], b[0], c[0]]
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn recv_any_drains_everything() {
        let n = 5;
        let (results, _) = run(n, move |ctx| {
            if ctx.rank() == 0 {
                let mut total = 0.0;
                for _ in 0..(n - 1) {
                    let m = ctx.recv_any();
                    total += m.data[0];
                }
                total
            } else {
                ctx.send(0, ctx.rank() as u64, vec![ctx.rank() as f64]);
                0.0
            }
        });
        assert_eq!(results[0], (1..5).sum::<usize>() as f64);
    }

    #[test]
    fn try_recv_any_polls() {
        let (results, _) = run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, vec![42.0]);
                0.0
            } else {
                loop {
                    if let Some(m) = ctx.try_recv_any() {
                        return m.data[0];
                    }
                    std::thread::yield_now();
                }
            }
        });
        assert_eq!(results[1], 42.0);
    }

    #[test]
    fn many_ranks_all_to_one_volume() {
        let n = 8;
        let (_, volumes) = run(n, move |ctx| {
            if ctx.rank() == 0 {
                for _ in 0..(n - 1) {
                    ctx.recv_any();
                }
            } else {
                ctx.send(0, 0, vec![0.0; 100]);
            }
        });
        assert_eq!(volumes[0].received, (n as u64 - 1) * 800);
        assert_eq!(volumes[0].sent, 0);
        for v in &volumes[1..] {
            assert_eq!(v.sent, 800);
        }
    }

    #[test]
    fn stress_unordered_interleaving() {
        // Each rank sends 50 tagged messages to every other rank; everybody
        // receives them in a scrambled order.
        let n = 4;
        let (results, _) = run(n, move |ctx| {
            let me = ctx.rank();
            for dst in 0..n {
                if dst != me {
                    for k in 0..50u64 {
                        ctx.send(dst, k, vec![(me * 1000) as f64 + k as f64]);
                    }
                }
            }
            let mut sum = 0.0;
            for src in (0..n).rev() {
                if src != me {
                    for k in (0..50u64).rev() {
                        let d = ctx.recv(src, k);
                        assert_eq!(d[0], (src * 1000) as f64 + k as f64);
                        sum += d[0];
                    }
                }
            }
            sum
        });
        assert!(results.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn recv_any_preserves_per_source_tag_fifo() {
        // MPI non-overtaking: two messages with the same (src, tag) must be
        // delivered in send order even when both sat in the stash first.
        // The seed runtime popped the stash LIFO and returned 2.0 before
        // 1.0 here.
        let (results, _) = run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, vec![1.0]);
                ctx.send(1, 7, vec![2.0]);
                ctx.send(1, 9, vec![99.0]); // sentinel with a different tag
                vec![]
            } else {
                // Receiving the sentinel first forces both tag-7 messages
                // through the stash.
                let s = ctx.recv(0, 9);
                assert_eq!(s[0], 99.0);
                let a = ctx.recv_any();
                let b = ctx.recv_any();
                vec![a.data[0], b.data[0]]
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0]);
    }

    #[test]
    fn recv_takes_oldest_matching_message() {
        // Same-(src, tag) FIFO must also hold for tag-matched receives that
        // hit the stash: recv(0, 7) must return the first tag-7 send.
        let (results, _) = run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, vec![1.0]);
                ctx.send(1, 7, vec![2.0]);
                ctx.send(1, 9, vec![99.0]);
                vec![]
            } else {
                let _ = ctx.recv(0, 9); // stashes both tag-7 messages
                let a = ctx.recv(0, 7);
                let b = ctx.recv(0, 7);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0]);
    }

    #[test]
    fn stash_back_keeps_arrival_order() {
        let (results, _) = run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![1.0]);
                ctx.send(1, 1, vec![2.0]);
                ctx.send(1, 2, vec![3.0]);
                vec![]
            } else {
                let _ = ctx.recv(0, 2); // stash the two tag-1 messages
                                        // Un-receive the oldest, then drain: order must survive.
                let m = ctx.recv_any();
                assert_eq!(m.data[0], 1.0);
                ctx.stash_back(m);
                let a = ctx.recv_any();
                let b = ctx.recv_any();
                vec![a.data[0], b.data[0]]
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0]);
    }

    #[test]
    fn traced_run_counts_messages_and_volume() {
        use pselinv_trace::CollKind;
        let (_, volumes, trace) = run_traced(2, "unit/pingpong", |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, vec![0.0; 16]);
            } else {
                let _ = ctx.recv(0, 7);
            }
        });
        assert_eq!(trace.ranks.len(), 2);
        // No scope was pushed, so traffic lands under Other — and must
        // agree byte-for-byte with the runtime's own volume counters.
        assert_eq!(trace.ranks[0].metrics.kind(CollKind::Other).bytes_sent, volumes[0].sent);
        assert_eq!(trace.ranks[1].metrics.kind(CollKind::Other).bytes_recv, volumes[1].received);
        assert_eq!(volumes[0].sent, 128);
    }

    #[test]
    fn late_sender_wait_is_classified() {
        use pselinv_trace::CollKind;
        // Rank 1 posts its receive immediately; rank 0 sends only after a
        // deliberate delay. Most of rank 1's blocked interval must be
        // classified as late-sender wait, and wait + transfer can never
        // exceed the enclosing span.
        let delay_ms = 40u64;
        let (_, _, trace) = run_traced(2, "unit/late_sender", move |ctx| {
            if ctx.rank() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(delay_ms));
                ctx.tracer().push_scope(CollKind::ColBcast, 1);
                ctx.send(1, 3, vec![0.0; 64]);
                ctx.tracer().pop_scope();
            } else {
                ctx.tracer().push_scope(CollKind::ColBcast, 1);
                let _ = ctx.recv(0, 3);
                ctx.tracer().pop_scope();
            }
        });
        let k = trace.ranks[1].metrics.kind(CollKind::ColBcast);
        assert!(
            k.wait_us >= delay_ms * 1000 / 2,
            "late-sender wait {} µs too small for a {delay_ms} ms delay",
            k.wait_us
        );
        assert!(
            k.wait_us + k.transfer_us <= k.span_time_us,
            "classified blocked time {} + {} exceeds the span {}",
            k.wait_us,
            k.transfer_us,
            k.span_time_us
        );
        // The sender never blocked on a receive.
        let s = trace.ranks[0].metrics.kind(CollKind::ColBcast);
        assert_eq!(s.wait_us + s.transfer_us, 0);
    }

    #[test]
    fn stash_hit_records_no_wait() {
        // Force the tag-5 message through the stash: by the time recv(0, 5)
        // runs, the message already arrived, so no blocked time may be
        // classified for it beyond the first (tag-6) receive.
        let (_, _, trace) = run_traced(2, "unit/stash_no_wait", |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 5, vec![1.0]);
                ctx.send(1, 6, vec![2.0]);
            } else {
                let _ = ctx.recv(0, 6); // stashes tag 5
                let waits_before = ctx.tracer().metrics().unwrap().total_wait_us()
                    + ctx.tracer().metrics().unwrap().total_transfer_us();
                let _ = ctx.recv(0, 5); // pure stash hit
                let m = ctx.tracer().metrics().unwrap();
                assert_eq!(
                    m.total_wait_us() + m.total_transfer_us(),
                    waits_before,
                    "a stash hit must not add blocked time"
                );
            }
        });
        // Exactly one receive (tag 6) may have blocked.
        let n_wait_events = trace.ranks[1]
            .events
            .iter()
            .filter(|e| matches!(e.kind, pselinv_trace::EventKind::Wait { .. }))
            .count();
        assert!(n_wait_events <= 1, "{n_wait_events} wait events for one blocking recv");
    }

    #[test]
    fn traced_stash_undo_matches_volume_counters() {
        // recv_any + stash_back must leave both the volume counters and the
        // trace metrics as if the message had never been received.
        let (_, volumes, trace) = run_traced(2, "unit/stash", |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 5, vec![1.0]);
                ctx.send(1, 6, vec![2.0]);
            } else {
                let m = ctx.recv_any();
                ctx.stash_back(m);
                let _ = ctx.recv(0, 5);
                let _ = ctx.recv(0, 6);
            }
        });
        use pselinv_trace::CollKind;
        assert_eq!(volumes[1].msgs_received, 2);
        assert_eq!(trace.ranks[1].metrics.kind(CollKind::Other).msgs_recv, 2);
        assert_eq!(trace.ranks[1].metrics.kind(CollKind::Other).bytes_recv, volumes[1].received);
    }
}
