//! Ranks, mailboxes and tagged point-to-point messaging.
//!
//! Beyond plain delivery, the runtime hardens against the failure modes a
//! real asynchronous MPI run exhibits:
//!
//! * **Panic propagation.** A panic in one rank thread aborts the whole
//!   run promptly with the original panic message ([`RunError::RankPanic`])
//!   instead of leaving sibling ranks blocked in `recv` forever.
//! * **Progress watchdog.** Each rank registers what it is blocked on;
//!   a monitor thread builds the cross-rank wait-for graph and converts a
//!   global stall or a deadlock cycle into a structured
//!   [`StallDiagnostic`] ([`RunError::Stalled`]) instead of hanging.
//! * **Fault injection.** A [`FaultPlan`](pselinv_chaos::FaultPlan) lets a
//!   run inject per-message delay/jitter, duplication and reordering plus
//!   per-rank stall/crash triggers, deterministically from a seed. The
//!   sequence-numbered collective paths ([`RankCtx::send_seq`] /
//!   [`RankCtx::recv_seq`]) mask duplicated and reordered deliveries, so
//!   any crash-free schedule yields bit-identical results.

use crate::payload::{IntoPayload, Payload};
use crate::telemetry::{sampler, Telemetry};
use pselinv_chaos::FaultPlan;
use pselinv_trace::{FaultKind, RankTrace, RankTracer, Trace};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Sequence-number sentinel for messages outside the masked collective
/// paths ([`RankCtx::send`]): carries no delivery guarantee beyond MPI's
/// per-`(src, tag)` non-overtaking.
pub const NO_SEQ: u64 = u64::MAX;

/// A tagged message between ranks. Payloads are shared `f64` buffers
/// ([`Payload`]) because every PSelInv message is a dense block (plus small
/// headers encoded in the tag): cloning a message — for an injected
/// duplicate, a reorder hold-back, or a tree forward — shares the buffer
/// instead of copying it.
#[derive(Clone, Debug, PartialEq)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// User tag (encodes supernode / block / phase in `pselinv-dist`).
    pub tag: u64,
    /// Send timestamp on the run's shared trace clock (µs since the run
    /// epoch); 0 when tracing is disabled. Lets the receiver classify
    /// blocked time into late-sender wait vs transfer.
    pub sent_us: u64,
    /// Per-`(src, dst, tag)` sequence number stamped by
    /// [`RankCtx::send_seq`], or [`NO_SEQ`] for plain sends. A header, not
    /// payload: excluded from [`Message::bytes`], so volume accounting is
    /// identical with and without masking.
    pub seq: u64,
    /// Sender's Lamport clock at the send instant. A header like `seq`:
    /// excluded from [`Message::bytes`], so causal stamping never perturbs
    /// the volume identities.
    pub clock: u64,
    /// Sender's monotonic send index (counts every send this rank issued,
    /// across all destinations and tags): `(src, idx)` names this send
    /// uniquely for the whole run, which is the provenance causal tracing
    /// records on the matching receive.
    pub idx: u64,
    /// Sender's recovery epoch at the send instant: the number of confirmed
    /// rank deaths the sender had incorporated. A header like `seq`:
    /// excluded from [`Message::bytes`]. Always 0 outside recovery. A
    /// receiver that re-homed an edge after a rebuild raises the edge's
    /// minimum epoch ([`RankCtx::expect_epoch`]); an in-sequence delivery
    /// below that minimum is then discarded with its accounting reversed.
    pub epoch: u64,
    /// Payload (shared; cloning the message never copies the buffer).
    pub data: Payload,
}

impl Message {
    /// Payload size in bytes.
    pub fn bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f64>()) as u64
    }
}

/// Per-rank communication volume, returned after a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankVolume {
    /// Bytes sent by this rank.
    pub sent: u64,
    /// Bytes received by this rank.
    pub received: u64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Messages received.
    pub msgs_received: u64,
    /// Payload bytes physically copied on this rank to produce sent
    /// messages ([`IntoPayload`] accounting). A rank that forwards shared
    /// payloads — every interior hop of a tree broadcast — adds nothing
    /// here; `sent`/`received` still count the full logical volume.
    pub copied: u64,
    /// Control-plane bytes the reliable transport originated on this rank:
    /// retransmitted payload copies plus cumulative-ack messages. Kept
    /// strictly separate from the logical `sent`/`received` volumes, so a
    /// lossy-but-reliable run reports exactly the fault-free logical
    /// volume with the recovery overhead isolated here.
    pub retransmitted: u64,
}

/// What a rank is currently blocked on (for the watchdog's wait-for graph).
/// `None` fields are wildcards (a `recv_any`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockedOn {
    /// Awaited source rank, `None` for any-source.
    pub src: Option<usize>,
    /// Awaited tag, `None` for any-tag.
    pub tag: Option<u64>,
}

impl std::fmt::Display for BlockedOn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.src, self.tag) {
            (Some(s), Some(t)) => write!(f, "recv(src={s}, tag={t})"),
            (Some(s), None) => write!(f, "recv(src={s}, tag=any)"),
            (None, _) => write!(f, "recv(any)"),
        }
    }
}

/// Structured diagnostic produced by the progress watchdog when a run
/// globally stalls or deadlocks.
#[derive(Clone, Debug, Default)]
pub struct StallDiagnostic {
    /// `(rank, what it is blocked on)` for every blocked rank.
    pub blocked: Vec<(usize, BlockedOn)>,
    /// Ranks that already finished.
    pub done: Vec<usize>,
    /// A wait-for cycle among the blocked ranks, if one was found
    /// (`[a, b, c]` means a waits on b waits on c waits on a).
    pub cycle: Option<Vec<usize>>,
    /// Per-rank stash contents as `(src, tag)` pairs (non-empty stashes
    /// only): messages that arrived but matched no posted receive.
    pub stashes: Vec<(usize, Vec<(usize, u64)>)>,
    /// Last few trace events per rank (traced runs only).
    pub trace_tails: Vec<(usize, Vec<String>)>,
    /// How long the run made no progress before the abort.
    pub stalled_for: Duration,
}

impl std::fmt::Display for StallDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "mpisim watchdog: no progress for {:.1}s ({} blocked, {} finished)",
            self.stalled_for.as_secs_f64(),
            self.blocked.len(),
            self.done.len()
        )?;
        if let Some(c) = &self.cycle {
            let chain: Vec<String> = c.iter().map(|r| r.to_string()).collect();
            writeln!(f, "  deadlock cycle: {} -> {}", chain.join(" -> "), c[0])?;
        }
        for (r, b) in &self.blocked {
            writeln!(f, "  rank {r} blocked on {b}")?;
        }
        if !self.done.is_empty() {
            let d: Vec<String> = self.done.iter().map(|r| r.to_string()).collect();
            writeln!(f, "  finished ranks: {}", d.join(", "))?;
        }
        for (r, s) in &self.stashes {
            let items: Vec<String> =
                s.iter().map(|(src, tag)| format!("(src={src}, tag={tag})")).collect();
            writeln!(f, "  rank {r} stash: [{}]", items.join(", "))?;
        }
        for (r, tail) in &self.trace_tails {
            writeln!(f, "  rank {r} trace tail:")?;
            for line in tail {
                writeln!(f, "    {line}")?;
            }
        }
        Ok(())
    }
}

/// Why a fallible run ([`try_run`] / [`try_run_traced`]) failed.
#[derive(Clone, Debug)]
pub enum RunError {
    /// A rank thread panicked; the run was aborted and the original panic
    /// message preserved.
    RankPanic {
        /// The rank that panicked first.
        rank: usize,
        /// Its panic message.
        message: String,
    },
    /// The progress watchdog detected a global stall or deadlock.
    Stalled(Box<StallDiagnostic>),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::RankPanic { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            RunError::Stalled(d) => write!(f, "{d}"),
        }
    }
}

impl std::error::Error for RunError {}

/// A [`RankCtx::recv_timeout`] that expired before a matching message
/// arrived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvTimeout {
    /// Awaited source rank.
    pub src: usize,
    /// Awaited tag.
    pub tag: u64,
    /// How long the receive waited.
    pub waited: Duration,
}

impl std::fmt::Display for RecvTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "receive (src={}, tag={}) timed out after {:.3}s",
            self.src,
            self.tag,
            self.waited.as_secs_f64()
        )
    }
}

impl std::error::Error for RecvTimeout {}

/// Knobs of a fallible run.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Abort with a [`StallDiagnostic`] after this long with zero progress
    /// across all ranks (a stable wait-for cycle aborts much sooner).
    /// `None` disables the watchdog (a deadlocked run then hangs, as plain
    /// MPI would).
    pub watchdog: Option<Duration>,
    /// Polling granularity of blocked receives and the monitor: the upper
    /// bound on abort-notice latency.
    pub poll: Duration,
    /// Fault schedule to inject, if any.
    pub faults: Option<FaultPlan>,
    /// Live-telemetry handle: when set, a sampler thread periodically
    /// snapshots per-rank gauges (blocked-on state, inbox/stash depth,
    /// outstanding collectives, bytes sent/copied, progress counter) into
    /// the handle's ring buffer while the run executes. The caller keeps a
    /// clone and reads [`Telemetry::samples`] during or after the run.
    /// `None` (the default) keeps the hot send/recv path entirely free of
    /// gauge updates — the same single-branch guard as the trace layer.
    pub telemetry: Option<Telemetry>,
    /// Reliable-transport configuration. When set, every sequenced send is
    /// tracked in a per-`(dst, tag)` retransmission buffer until the
    /// receiver's cumulative ack covers it; unacked messages are re-sent
    /// after a deadline with exponential backoff (deterministic jitter from
    /// the fault plan's seed). This is what makes an injected
    /// `drop_permille` loss fault maskable: with it, collective results are
    /// bit-identical to the fault-free run. `None` (the default) keeps the
    /// hot path free of any tracking.
    pub reliable: Option<crate::reliable::ReliableConfig>,
    /// Online crash recovery: when `true`, a rank panic no longer aborts
    /// the run — the rank is marked crashed on a shared board, survivors
    /// keep running (the recovery collectives in [`crate::reliable`]
    /// consult the board to rebuild trees around the dead), and
    /// [`try_run_recover`] returns the survivors' results plus a
    /// [`RecoveryReport`]. Off by default: a panic then aborts the run
    /// exactly as before.
    pub recovery: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            watchdog: Some(Duration::from_secs(30)),
            poll: Duration::from_millis(25),
            faults: None,
            telemetry: None,
            reliable: None,
            recovery: false,
        }
    }
}

/// Marker panic payload for secondary aborts (a rank unwinding because
/// *another* rank failed): distinguished from real panics so only the
/// original failure is reported.
struct Aborted;

/// Per-rank state visible to the watchdog monitor and the telemetry
/// sampler.
#[derive(Default)]
pub(crate) struct RankState {
    /// Bumped on every completed send and every message taken off the
    /// inbox; the monitor detects stalls as "no counter moved".
    pub(crate) progress: AtomicU64,
    done: AtomicBool,
    /// Set (before `done`) when this rank died under recovery mode: the
    /// confirmed-death board survivors consult to rebuild trees.
    crashed: AtomicBool,
    pub(crate) blocked: Mutex<Option<BlockedOn>>,
    /// `(src, tag)` of stashed messages, refreshed on stash changes.
    pub(crate) stash: Mutex<Vec<(usize, u64)>>,
    /// Messages currently queued in this rank's inbox (telemetry gauge;
    /// maintained only when telemetry is enabled).
    pub(crate) inbox_len: AtomicUsize,
    /// Nonblocking collectives currently in flight on this rank
    /// (telemetry gauge, mirrored from [`RankCtx::outstanding`]).
    pub(crate) outstanding: AtomicUsize,
    /// Running total of bytes sent (telemetry gauge).
    pub(crate) sent_bytes: AtomicU64,
    /// Running total of payload bytes physically copied (telemetry gauge).
    pub(crate) copied_bytes: AtomicU64,
    /// Tasks of the intra-rank work-stealing pool currently executing on
    /// this rank (telemetry gauge; the pool itself maintains it through
    /// the handle from [`RankCtx::pool_busy_gauge`]).
    pub(crate) pool_busy: Arc<AtomicUsize>,
}

/// Run-global state shared by rank threads, the monitor and the sampler.
pub(crate) struct Shared {
    pub(crate) states: Vec<RankState>,
    pub(crate) abort: AtomicBool,
    /// First failure wins; later ones (usually secondary) are dropped.
    verdict: Mutex<Option<RunError>>,
    trace_tails: Mutex<Vec<(usize, Vec<String>)>>,
    pub(crate) finished: AtomicUsize,
    pub(crate) cv_lock: Mutex<()>,
    pub(crate) cv: Condvar,
    watchdog: bool,
    /// Whether telemetry gauges are maintained. Checked with one branch on
    /// the hot paths, exactly like the disabled trace sink.
    telemetry: bool,
    /// Whether rank panics are absorbed as crashes instead of aborting.
    recovery: bool,
    /// Ranks whose user function has returned (recovery epilogue gate: a
    /// finished survivor keeps serving repair requests until every
    /// survivor is here).
    user_done: AtomicUsize,
    /// Aggregated recovery accounting, assembled into a [`RecoveryReport`]
    /// by [`try_run_recover`].
    rebuilt: Mutex<std::collections::BTreeSet<u64>>,
    stranded: Mutex<std::collections::BTreeSet<u64>>,
    reissued_bytes: AtomicU64,
    joins: AtomicU64,
}

impl Shared {
    fn new(nranks: usize, watchdog: bool, telemetry: bool, recovery: bool) -> Self {
        Self {
            states: (0..nranks).map(|_| RankState::default()).collect(),
            abort: AtomicBool::new(false),
            verdict: Mutex::new(None),
            trace_tails: Mutex::new(Vec::new()),
            finished: AtomicUsize::new(0),
            cv_lock: Mutex::new(()),
            cv: Condvar::new(),
            watchdog,
            telemetry,
            recovery,
            user_done: AtomicUsize::new(0),
            rebuilt: Mutex::new(std::collections::BTreeSet::new()),
            stranded: Mutex::new(std::collections::BTreeSet::new()),
            reissued_bytes: AtomicU64::new(0),
            joins: AtomicU64::new(0),
        }
    }

    /// Whether any observer (watchdog or sampler) reads the blocked/stash
    /// mirrors.
    fn observed(&self) -> bool {
        self.watchdog || self.telemetry
    }

    fn record_verdict(&self, e: RunError) {
        let mut v = self.verdict.lock().unwrap();
        if v.is_none() {
            *v = Some(e);
        }
        drop(v);
        self.abort.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    fn rank_finished(&self, rank: usize) {
        self.states[rank].done.store(true, Ordering::Release);
        self.finished.fetch_add(1, Ordering::AcqRel);
        self.cv.notify_all();
    }
}

/// The per-rank handle: identity, mailbox and counters.
///
/// The out-of-order stash preserves MPI's non-overtaking guarantee: two
/// messages with the same `(source, tag)` are always delivered in the order
/// they were sent. The stash is therefore a FIFO (`VecDeque`): arrivals
/// append at the back, wildcard receives take from the front, and tag
/// matches take the *first* match in arrival order.
pub struct RankCtx {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Message>>,
    inbox: Receiver<Message>,
    /// Out-of-order stash for `(src, tag)` matching, in arrival order.
    stash: VecDeque<Message>,
    volume: RankVolume,
    tracer: RankTracer,
    shared: Arc<Shared>,
    poll: Duration,
    /// Fault schedule, if injecting.
    plan: Option<Arc<FaultPlan>>,
    /// Send/receive operations so far (chaos stall/crash triggers).
    ops: u64,
    /// Per-destination chaos draw counter (independent of tags).
    msg_seq: Vec<u64>,
    /// Per-destination hold-back slot for injected reordering; flushed by
    /// the next send to the destination and at every blocking point.
    held: Vec<Option<Message>>,
    /// Next sequence number per `(dst, tag)` for [`RankCtx::send_seq`].
    seq_tx: HashMap<(usize, u64), u64>,
    /// Next expected sequence number per `(src, tag)` for
    /// [`RankCtx::recv_seq`].
    seq_rx: HashMap<(usize, u64), u64>,
    /// Sequenced messages that arrived ahead of their turn.
    early: HashMap<(usize, u64), BTreeMap<u64, Message>>,
    /// This rank's Lamport clock: ticked on every send, merged (`max + 1`)
    /// on every consumed receive. Two plain `u64` bumps per message, so the
    /// stamps are always on — which is what lets any traced run be
    /// causally validated after the fact.
    clock: u64,
    /// Monotonic send counter ([`Message::idx`] provenance).
    sends: u64,
    /// Reliable-transport state (retransmission buffers), when enabled.
    reliable: Option<crate::reliable::ReliableState>,
    /// This rank's recovery epoch: confirmed rank deaths incorporated so
    /// far. Stamped on every outgoing message; 0 outside recovery.
    epoch: u64,
    /// Receiver-side minimum acceptable epoch per `(src, tag)` edge
    /// ([`RankCtx::expect_epoch`]): in-sequence deliveries below it are
    /// discarded with their accounting reversed.
    min_epoch: HashMap<(usize, u64), u64>,
    /// Per-channel logical-volume split, when the rank entry enabled it
    /// ([`RankCtx::enable_channel_accounting`]).
    channels: Option<ChannelAccounting>,
    /// Monotonic count of data messages accepted off the inbox (consumed
    /// *or* stashed). Progress loops snapshot it before a poll pass and
    /// compare at their park decision ([`RankCtx::arrivals`]): a message
    /// drained into the stash mid-pass — e.g. by [`RankCtx::try_match`]
    /// testing an unrelated `(src, tag)` — bumps the counter but matches no
    /// request in the rest of that pass, and [`RankCtx::wait_for_arrival`]
    /// only ever wakes on *new* inbox traffic, so parking on a moved
    /// counter would lose the wakeup for good.
    arrivals: u64,
    /// Hand-off to this rank's courier thread, present on fault runs: data
    /// messages ride it so injected delays are spent in flight (in the
    /// courier) instead of in a sender-side sleep.
    courier: Option<Sender<Flight>>,
}

/// One outgoing data message in a courier's queue: forwarded to `dst` at
/// `at` (immediately when `None`).
struct Flight {
    dst: usize,
    msg: Message,
    at: Option<Instant>,
}

/// Per-rank courier: receives the rank's outgoing data messages in send
/// order and forwards each once its in-flight delay elapses, sleeping
/// *here* so the sending rank keeps computing while messages fly. Draining
/// in hand-off order preserves per-`(src, dst)` FIFO delivery even under
/// per-message jitter. Exits when the rank drops its sending handle; an
/// aborting run skips the remaining sleeps so teardown is not gated on
/// queued flight time.
fn courier(rx: &Receiver<Flight>, senders: &[Sender<Message>], shared: &Shared) {
    while let Ok(Flight { dst, msg, at }) = rx.recv() {
        if let Some(at) = at {
            if !shared.abort.load(Ordering::Acquire) {
                let now = Instant::now();
                if at > now {
                    std::thread::sleep(at - now);
                }
            }
        }
        if shared.telemetry {
            shared.states[dst].inbox_len.fetch_add(1, Ordering::Relaxed);
        }
        // A receiver that already finished dropped its inbox; the message
        // is dropped like a wire delivery racing completion.
        if senders[dst].send(msg).is_err() && shared.telemetry {
            shared.states[dst].inbox_len.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Splits a rank's *logical* traffic counters (`sent`/`received`/message
/// counts) across application-defined channels keyed on the message tag —
/// e.g. one channel per pole-expansion query. Physical counters (`copied`,
/// `retransmitted`) have no tag at their accounting points and stay
/// aggregate-only; control traffic (acks, retransmits) bypasses the send
/// path entirely, so a channel's counters are exactly the collective traffic
/// its tags describe.
struct ChannelAccounting {
    /// Maps a tag to its channel index, or `None` for traffic that belongs
    /// to no channel (control lanes, barrier traffic).
    classify: fn(u64) -> Option<usize>,
    volumes: Vec<RankVolume>,
}

/// High-byte lane mask of the tag space: the runtime's control traffic and
/// the barrier/repair protocols each own one 8-bit lane, and user tags stay
/// below `1 << 56`.
pub const LANE_MASK: u64 = 0xFF << 56;

/// Tag of reliable-transport cumulative-ack messages. Acks are pure control
/// traffic: sent outside the fault interposer (never dropped, duplicated or
/// reordered), intercepted at every inbox read (never stashed or matched),
/// and accounted only in [`RankVolume::retransmitted`].
pub const ACK_LANE: u64 = 0xAC << 56;

/// Lane of recovery JOIN requests: an orphaned rank asks its rebuilt-tree
/// parent to re-issue a collective's payload (`JOIN_LANE | tag`).
pub const JOIN_LANE: u64 = 0xCA << 56;

/// Lane the re-issued payload answering a JOIN travels on
/// (`REPAIR_LANE | tag`): a fresh sequenced edge, so the repair is masked
/// like any collective hop and cannot collide with in-flight traffic of the
/// original tree.
pub const REPAIR_LANE: u64 = 0xDA << 56;

/// Duration slice for "block forever" receives; abort checks run every
/// `poll` regardless.
const FOREVER: Duration = Duration::from_secs(3600);

impl RankCtx {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the universe.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The rank's trace sink (disabled under [`run`], enabled under
    /// [`run_traced`]). Phase drivers push attribution scopes on it.
    pub fn tracer(&mut self) -> &mut RankTracer {
        &mut self.tracer
    }

    /// Unwinds this rank because the run was aborted elsewhere, leaving a
    /// stash snapshot and trace tail behind for the diagnostic.
    fn abort_unwind(&mut self) -> ! {
        self.snapshot_stash();
        let tail = self.tracer.tail(8);
        if !tail.is_empty() {
            self.shared.trace_tails.lock().unwrap().push((self.rank, tail));
        }
        std::panic::panic_any(Aborted);
    }

    fn check_abort(&mut self) {
        if self.shared.abort.load(Ordering::Acquire) {
            self.abort_unwind();
        }
    }

    fn bump_progress(&self) {
        self.shared.states[self.rank].progress.fetch_add(1, Ordering::Relaxed);
    }

    fn set_blocked(&self, on: BlockedOn) {
        if self.shared.observed() {
            *self.shared.states[self.rank].blocked.lock().unwrap() = Some(on);
        }
    }

    fn clear_blocked(&self) {
        if self.shared.observed() {
            *self.shared.states[self.rank].blocked.lock().unwrap() = None;
        }
    }

    fn snapshot_stash(&self) {
        if self.shared.observed() {
            *self.shared.states[self.rank].stash.lock().unwrap() =
                self.stash.iter().map(|m| (m.src, m.tag)).collect();
        }
    }

    /// Telemetry gauge: one message was taken off this rank's inbox.
    fn note_inbox_pop(&self) {
        if self.shared.telemetry {
            self.shared.states[self.rank].inbox_len.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Counts one send/receive operation against the chaos stall/crash
    /// triggers of this rank.
    fn chaos_op(&mut self) {
        // Copy the (small) spec out instead of cloning the whole plan Arc
        // on every operation: this runs on the per-message hot path.
        let spec = match self.plan.as_deref() {
            Some(plan) => *plan.spec(self.rank),
            None => return,
        };
        self.ops += 1;
        if let Some(at) = spec.crash_after_ops {
            if self.ops > at {
                self.tracer.fault(FaultKind::Crashed, self.rank, 0);
                panic!("chaos: injected crash of rank {} after {at} operations", self.rank);
            }
        }
        if let Some(at) = spec.stall_after_ops {
            if self.ops > at {
                self.tracer.fault(FaultKind::Stalled, self.rank, 0);
                loop {
                    std::thread::sleep(self.poll);
                    self.check_abort();
                }
            }
        }
    }

    /// Hands a message to the destination mailbox, no interposition.
    fn push_raw(&mut self, dst: usize, msg: Message) {
        // Gauge before the channel send: the channel's own synchronization
        // orders this increment before the receiver's matching decrement.
        if self.shared.telemetry {
            self.shared.states[dst].inbox_len.fetch_add(1, Ordering::Relaxed);
        }
        if self.senders[dst].send(msg).is_err() {
            if self.shared.telemetry {
                self.shared.states[dst].inbox_len.fetch_sub(1, Ordering::Relaxed);
            }
            // The peer's inbox is gone. A peer that finished cleanly marks
            // itself done *before* dropping its inbox, so this send is a
            // surplus message racing the peer's exit (e.g. an injected
            // duplicate whose first copy already satisfied the receive):
            // drop it, like a wire message arriving after completion.
            if self.shared.states[dst].done.load(Ordering::Acquire) {
                return;
            }
            // Otherwise the run is coming down: give the abort flag a
            // moment to be raised, then unwind.
            for _ in 0..4 {
                self.check_abort();
                std::thread::sleep(self.poll / 4);
            }
            self.check_abort();
            if self.shared.states[dst].done.load(Ordering::Acquire) {
                return;
            }
            panic!("receiver {dst} hung up");
        }
    }

    /// Delivery with fault interposition: injected delay applies to every
    /// message; duplication and reordering only to sequenced messages,
    /// which the masked receive path can repair (plain sends keep exactly
    /// MPI's ordering guarantee, faults or not).
    ///
    /// An injected delay is *in-flight* time, matching the DES backend's
    /// semantics: the message spends it in this rank's courier queue, not
    /// in a sender-side sleep — so the sending rank keeps computing while
    /// the message flies, and latency can be hidden by overlapping work.
    /// The courier forwards in hand-off order, so per-`(src, dst)` FIFO
    /// delivery is preserved even under per-message jitter; to keep that
    /// guarantee across mixed delays, *every* data message of a fault run
    /// rides the courier (a zero-delay message forwards immediately).
    fn deliver(&mut self, dst: usize, msg: Message) {
        // Draw every fault decision up front from a borrowed plan — no
        // per-message Arc clone on the delivery hot path.
        let (delay, slow, dup, reord, drop) = match self.plan.as_deref() {
            None => return self.push_raw(dst, msg),
            Some(plan) => {
                let cseq = self.msg_seq[dst];
                self.msg_seq[dst] += 1;
                (
                    plan.delay_us(self.rank, dst, cseq),
                    plan.slowdown(self.rank).max(0.0),
                    plan.duplicates(self.rank, dst, cseq),
                    plan.reorders(self.rank, dst, cseq),
                    plan.drops(self.rank, dst, cseq),
                )
            }
        };
        let fly = Duration::from_micros((delay as f64 * slow) as u64);
        if delay > 0 {
            self.tracer.fault(FaultKind::Delayed, dst, msg.tag);
        }
        let masked = msg.seq != NO_SEQ;
        if masked && drop {
            // Lost in flight. Only sequenced messages are droppable (like
            // dup/reorder): the reliable transport's retransmission buffer
            // is keyed by sequence number, so only a sequenced loss is
            // repairable — and an unrepairable loss would silently corrupt
            // plain-send runs that never opted into any masking. A held-
            // back reorder victim is still released below: it was delayed,
            // not lost.
            self.tracer.fault(FaultKind::Dropped, dst, msg.tag);
            if let Some(prev) = self.held[dst].take() {
                self.push_flight(dst, prev, Duration::ZERO);
            }
            return;
        }
        if masked && dup {
            self.tracer.fault(FaultKind::Duplicated, dst, msg.tag);
            // The clone shares the payload buffer: a duplicate costs a
            // header, not a block copy.
            self.push_flight(dst, msg.clone(), fly);
            self.push_flight(dst, msg, fly);
            return;
        }
        if masked && reord {
            self.tracer.fault(FaultKind::Reordered, dst, msg.tag);
            if let Some(prev) = self.held[dst].replace(msg) {
                self.push_flight(dst, prev, Duration::ZERO);
            }
            return;
        }
        self.push_flight(dst, msg, fly);
        if let Some(prev) = self.held[dst].take() {
            // The held message is now overtaken: release it.
            self.push_flight(dst, prev, Duration::ZERO);
        }
    }

    /// Hands a data message to this rank's courier to become visible at
    /// `now + fly` (immediately for `Duration::ZERO` — still through the
    /// courier, so it cannot overtake an earlier delayed message). Falls
    /// back to an inline sleep + direct push when no courier is running
    /// (fault-free runs never delay, so the fallback only covers courier
    /// teardown races).
    fn push_flight(&mut self, dst: usize, msg: Message, fly: Duration) {
        if let Some(tx) = &self.courier {
            let at = (!fly.is_zero()).then(|| Instant::now() + fly);
            match tx.send(Flight { dst, msg, at }) {
                Ok(()) => return,
                Err(std::sync::mpsc::SendError(flight)) => {
                    if !fly.is_zero() {
                        std::thread::sleep(fly);
                    }
                    return self.push_raw(dst, flight.msg);
                }
            }
        }
        if !fly.is_zero() {
            std::thread::sleep(fly);
        }
        self.push_raw(dst, msg);
    }

    /// Releases every held-back message. Runs before any blocking wait and
    /// at rank finish, so injected reordering can delay but never lose a
    /// message.
    fn flush_held(&mut self) {
        for dst in 0..self.size {
            if let Some(m) = self.held[dst].take() {
                self.push_flight(dst, m, Duration::ZERO);
            }
        }
    }

    /// Charges `bytes` of physical payload copying to this rank's
    /// counters. Called by the [`IntoPayload`] conversions on send and by
    /// collectives that materialize a buffer outside a send.
    pub fn account_copy(&mut self, bytes: u64) {
        if bytes > 0 {
            self.volume.copied += bytes;
            self.tracer.copy_bytes(bytes);
            if self.shared.telemetry {
                self.shared.states[self.rank].copied_bytes.fetch_add(bytes, Ordering::Relaxed);
            }
        }
    }

    /// Shared handle to this rank's pool-busy telemetry gauge. Hand it to
    /// `Pool::set_busy_gauge` so the sampler sees how many pool tasks are
    /// executing at each snapshot. Maintained by the pool itself, so it
    /// stays live (unlike the other gauges) even when telemetry is off —
    /// two relaxed atomic bumps per task is below the noise floor of a
    /// GEMM-sized task body.
    pub fn pool_busy_gauge(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.shared.states[self.rank].pool_busy)
    }

    /// Reports the number of nonblocking collectives currently in flight on
    /// this rank: forwards to the trace sink and mirrors the value into the
    /// telemetry gauge. The async engine calls this as its window changes.
    pub fn outstanding(&mut self, count: usize) {
        if self.shared.telemetry {
            self.shared.states[self.rank].outstanding.store(count, Ordering::Relaxed);
        }
        self.tracer.outstanding(count);
    }

    fn send_inner(&mut self, dst: usize, tag: u64, seq: u64, data: Payload) {
        self.chaos_op();
        assert!(dst < self.size, "destination {dst} out of range");
        assert_ne!(dst, self.rank, "self-sends are not modeled (use local data)");
        // Lamport tick + provenance stamp, unconditionally: two u64 bumps.
        self.clock += 1;
        let idx = self.sends;
        self.sends += 1;
        let msg = Message {
            src: self.rank,
            tag,
            sent_us: self.tracer.now_us(),
            seq,
            clock: self.clock,
            idx,
            epoch: self.epoch,
            data,
        };
        self.volume.sent += msg.bytes();
        self.volume.msgs_sent += 1;
        if let Some(v) = self.channel_for(tag) {
            v.sent += msg.bytes();
            v.msgs_sent += 1;
        }
        self.tracer.msg_send(dst, tag, msg.bytes(), self.clock, idx);
        if self.shared.telemetry {
            self.shared.states[self.rank].sent_bytes.fetch_add(msg.bytes(), Ordering::Relaxed);
        }
        if seq != NO_SEQ && self.reliable.is_some() {
            // Buffer a clone (shared payload — a header copy, not a block
            // copy) until the receiver's cumulative ack covers it. Tracking
            // happens before the fault interposer, so a dropped first copy
            // is still retransmittable.
            let jitter = self.backoff_jitter(dst, 0);
            if let Some(rel) = self.reliable.as_mut() {
                rel.track(dst, tag, msg.clone(), jitter);
            }
        }
        self.deliver(dst, msg);
        self.bump_progress();
        self.reliable_tick();
    }

    /// Deterministic backoff jitter for `(self.rank, dst)` at `attempt`,
    /// drawn from the fault plan's seed (0 without a plan).
    fn backoff_jitter(&self, dst: usize, attempt: u32) -> Duration {
        let cap = self.reliable.as_ref().map_or(0, |r| r.cfg.jitter_cap_us);
        let us = self
            .plan
            .as_deref()
            .map_or(0, |p| p.backoff_jitter_us(self.rank, dst, attempt as u64, cap));
        Duration::from_micros(us)
    }

    /// Consumes a control-plane message (currently: cumulative acks),
    /// returning `None` if it was one. Called at every inbox read point, so
    /// control traffic is never stashed, matched or accounted.
    fn ingest_control(&mut self, m: Message) -> Option<Message> {
        if m.tag != ACK_LANE {
            self.arrivals += 1;
            return Some(m);
        }
        let tag = m.data.first().map_or(0, |v| v.to_bits());
        let cum = m.data.get(1).map_or(0, |v| v.to_bits());
        let peer_epoch = m.data.get(2).map_or(0, |v| v.to_bits());
        let jitter = self.backoff_jitter(m.src, 0);
        if let Some(rel) = self.reliable.as_mut() {
            rel.ack(m.src, tag, cum, jitter);
        }
        // Epoch piggyback: an ack from a rank that already incorporated
        // more deaths tells us to consult the crash board.
        if peer_epoch > self.epoch && self.shared.recovery {
            self.epoch = self.epoch.max(self.crashed_ranks().len() as u64);
        }
        None
    }

    /// Sends the cumulative ack for edge `(src → me, tag)`: everything
    /// below `cum` is received. Pure control traffic — bypasses the fault
    /// interposer and the logical volume counters.
    fn send_ack(&mut self, src: usize, tag: u64, cum: u64) {
        if self.reliable.is_none() || src == self.rank {
            return;
        }
        let (data, _) = vec![f64::from_bits(tag), f64::from_bits(cum), f64::from_bits(self.epoch)]
            .into_payload();
        let msg = Message {
            src: self.rank,
            tag: ACK_LANE,
            sent_us: self.tracer.now_us(),
            seq: NO_SEQ,
            clock: self.clock,
            idx: u64::MAX,
            epoch: self.epoch,
            data,
        };
        self.volume.retransmitted += msg.bytes();
        self.push_raw(src, msg);
    }

    /// Re-sends every unacked message whose stream deadline expired, with
    /// exponential backoff. Runs at sends, at every blocking poll slice and
    /// in the finish-time flush; a no-op without reliable transport.
    fn reliable_tick(&mut self) {
        if self.reliable.as_ref().is_none_or(|r| r.streams.is_empty()) {
            return;
        }
        let Some(mut rel) = self.reliable.take() else { return };
        let cfg = rel.cfg;
        let now = Instant::now();
        rel.streams.retain(|&(dst, _), s| {
            // A finished receiver consumed everything it wanted: further
            // retransmission could never be acked. Drop the stream, like a
            // wire flush to a closed endpoint.
            if self.shared.states[dst].done.load(Ordering::Acquire) {
                return false;
            }
            if s.unacked.is_empty() {
                return false;
            }
            if now < s.deadline {
                return true;
            }
            for m in s.unacked.values() {
                let bytes = m.bytes();
                self.volume.retransmitted += bytes;
                self.tracer.retransmit(dst, m.tag, bytes);
                self.push_raw_keep(dst, m.clone());
            }
            s.attempts += 1;
            let exp = s.attempts.min(cfg.max_backoff_exp);
            let rto = cfg.rto * 2u32.saturating_pow(exp);
            let us = self.plan.as_deref().map_or(0, |p| {
                p.backoff_jitter_us(self.rank, dst, s.attempts as u64, cfg.jitter_cap_us)
            });
            s.deadline = now + rto + Duration::from_micros(us);
            true
        });
        self.reliable = Some(rel);
    }

    /// [`RankCtx::push_raw`] for retransmissions: `&self`-compatible
    /// delivery that silently drops sends to departed receivers (a
    /// retransmission racing the receiver's exit is expected, not fatal).
    fn push_raw_keep(&self, dst: usize, msg: Message) {
        if self.shared.telemetry {
            self.shared.states[dst].inbox_len.fetch_add(1, Ordering::Relaxed);
        }
        if self.senders[dst].send(msg).is_err() && self.shared.telemetry {
            self.shared.states[dst].inbox_len.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Finish-time reliable flush: keeps retransmitting and draining acks
    /// until every stream is acked or its receiver finished. Runs after the
    /// rank's user function returns, so a loss on the last message of a
    /// collective is still repaired instead of hanging the receiver.
    fn reliable_flush(&mut self) {
        if self.reliable.is_none() {
            return;
        }
        loop {
            while let Ok(m) = self.inbox.try_recv() {
                self.note_inbox_pop();
                if let Some(m) = self.ingest_control(m) {
                    // Late data (e.g. a surplus duplicate): park it; the
                    // stash dies with the rank.
                    self.stash.push_back(m);
                }
            }
            self.reliable_tick();
            if self.reliable.as_ref().is_none_or(|r| r.streams.is_empty()) {
                return;
            }
            if self.shared.abort.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(self.poll.min(Duration::from_millis(2)));
        }
    }

    /// Buffered non-blocking send (≈ `MPI_Isend` whose buffer is owned by
    /// the runtime — the call returns immediately). Accepts anything
    /// [`IntoPayload`]: a `Vec<f64>` is packed into a shared buffer (one
    /// counted copy), a [`Payload`] is forwarded as-is (zero copies).
    pub fn send<P: IntoPayload>(&mut self, dst: usize, tag: u64, data: P) {
        let (payload, copied) = data.into_payload();
        self.account_copy(copied);
        self.send_inner(dst, tag, NO_SEQ, payload);
    }

    /// Like [`RankCtx::send`], but stamps a per-`(dst, tag)` sequence
    /// number so the matching [`RankCtx::recv_seq`] can suppress duplicated
    /// and reorder-displaced deliveries. The collectives use this pair.
    pub fn send_seq<P: IntoPayload>(&mut self, dst: usize, tag: u64, data: P) {
        let (payload, copied) = data.into_payload();
        self.account_copy(copied);
        let c = self.seq_tx.entry((dst, tag)).or_insert(0);
        let seq = *c;
        *c += 1;
        self.send_inner(dst, tag, seq, payload);
    }

    /// Blocking receive with a deadline: the core primitive under every
    /// matched receive. Returns the matching message or a [`RecvTimeout`]
    /// once `dur` elapses without one.
    fn recv_msg_timeout(
        &mut self,
        src: usize,
        tag: u64,
        dur: Duration,
    ) -> Result<Message, RecvTimeout> {
        self.chaos_op();
        self.flush_held();
        if let Some(i) = self.stash.iter().position(|m| m.src == src && m.tag == tag) {
            // `remove` (not `swap_remove_back`) keeps the rest of the stash
            // in arrival order, preserving per-(src, tag) FIFO delivery.
            let m = self.stash.remove(i).unwrap();
            self.tracer.stash_depth(self.stash.len());
            self.snapshot_stash();
            return Ok(self.account_recv(m));
        }
        let posted_us = self.tracer.now_us();
        let start = Instant::now();
        self.set_blocked(BlockedOn { src: Some(src), tag: Some(tag) });
        loop {
            let Some(remaining) = dur.checked_sub(start.elapsed()) else {
                self.clear_blocked();
                return Err(RecvTimeout { src, tag, waited: start.elapsed() });
            };
            match self.inbox.recv_timeout(remaining.min(self.poll)) {
                Ok(m) => {
                    self.bump_progress();
                    self.note_inbox_pop();
                    let Some(m) = self.ingest_control(m) else { continue };
                    if m.src == src && m.tag == tag {
                        self.clear_blocked();
                        self.tracer.recv_wait(posted_us, m.sent_us, Some((m.src, m.idx)));
                        return Ok(self.account_recv(m));
                    }
                    self.stash.push_back(m);
                    self.tracer.stash_depth(self.stash.len());
                    self.snapshot_stash();
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.check_abort();
                    self.reliable_tick();
                }
                Err(RecvTimeoutError::Disconnected) => {
                    self.check_abort();
                    std::thread::sleep(self.poll);
                    self.check_abort();
                    panic!("all senders hung up while receiving");
                }
            }
        }
    }

    /// Blocking receive matching `(src, tag)`, buffering any other arrivals
    /// (≈ `MPI_Recv` with out-of-order message stashing).
    ///
    /// A receive that actually blocks gets its blocked interval classified
    /// into late-sender wait vs transfer time against the matching
    /// message's send timestamp (a stash hit never blocked, so records
    /// neither).
    ///
    /// Returns the shared payload: reading it is zero-copy, and forwarding
    /// it into another [`RankCtx::send`] shares the buffer.
    pub fn recv(&mut self, src: usize, tag: u64) -> Payload {
        loop {
            if let Ok(m) = self.recv_msg_timeout(src, tag, FOREVER) {
                return m.data;
            }
        }
    }

    /// Like [`RankCtx::recv`], but gives up after `dur` (the watchdog-path
    /// receive: a caller that wants to degrade instead of block forever).
    pub fn recv_timeout(
        &mut self,
        src: usize,
        tag: u64,
        dur: Duration,
    ) -> Result<Payload, RecvTimeout> {
        self.recv_msg_timeout(src, tag, dur).map(|m| m.data)
    }

    /// Sequence-checked blocking receive, the masked counterpart of
    /// [`RankCtx::send_seq`]: consumes messages for `(src, tag)` strictly
    /// in sequence order, dropping stale duplicates (with their accounting
    /// reversed) and buffering early arrivals. The sequence counters
    /// persist across collective calls on the same edge, which is what
    /// makes repeated collectives on a reused tag safe under duplication.
    pub fn recv_seq(&mut self, src: usize, tag: u64) -> Payload {
        loop {
            if let Ok(p) = self.recv_seq_timeout(src, tag, FOREVER) {
                return p;
            }
        }
    }

    /// [`RankCtx::recv_seq`] with a deadline: the suspicion primitive of
    /// the recovery layer. A timeout consumes nothing — the edge's sequence
    /// counter only advances when a message is actually taken, so the call
    /// can be retried (or the edge abandoned for a rebuilt parent) without
    /// corrupting the masking state.
    pub fn recv_seq_timeout(
        &mut self,
        src: usize,
        tag: u64,
        dur: Duration,
    ) -> Result<Payload, RecvTimeout> {
        let start = Instant::now();
        loop {
            let want = self.seq_rx.get(&(src, tag)).copied().unwrap_or(0);
            let min_epoch = self.min_epoch.get(&(src, tag)).copied().unwrap_or(0);
            if let Some(m) = self.early.get_mut(&(src, tag)).and_then(|b| b.remove(&want)) {
                self.seq_rx.insert((src, tag), want + 1);
                if m.epoch < min_epoch {
                    // Stale-epoch delivery: the slot is consumed (the
                    // re-issue arrives with a later sequence number), but
                    // the data is discarded. Early-buffered messages were
                    // never accounted, so there is nothing to reverse.
                    self.tracer.fault(FaultKind::Dropped, src, tag);
                    self.send_ack(src, tag, want + 1);
                    continue;
                }
                let m = self.account_recv(m);
                self.send_ack(src, tag, want + 1);
                return Ok(m.data);
            }
            let Some(remaining) = dur.checked_sub(start.elapsed()) else {
                return Err(RecvTimeout { src, tag, waited: start.elapsed() });
            };
            let m = self.recv_msg_timeout(src, tag, remaining)?;
            assert_ne!(
                m.seq, NO_SEQ,
                "unsequenced message from {src} tag {tag} on a masked receive"
            );
            if m.seq == want {
                self.seq_rx.insert((src, tag), want + 1);
                self.send_ack(src, tag, want + 1);
                if m.epoch < min_epoch {
                    // Stale-epoch delivery consumed in sequence: reverse
                    // the accounting recv_msg_timeout did and wait for the
                    // bumped-epoch re-issue.
                    self.unaccount_recv(&m);
                    self.tracer.fault(FaultKind::Dropped, src, tag);
                    continue;
                }
                return Ok(m.data);
            }
            // Not our turn: reverse the accounting recv_msg_timeout did.
            self.unaccount_recv(&m);
            if m.seq < want {
                // Stale duplicate of an already-consumed message.
                self.tracer.fault(FaultKind::DuplicateSuppressed, src, tag);
                self.send_ack(src, tag, want);
            } else if self.early.entry((src, tag)).or_default().insert(m.seq, m).is_some() {
                // Duplicate of a message already buffered ahead.
                self.tracer.fault(FaultKind::DuplicateSuppressed, src, tag);
            }
        }
    }

    /// Blocking wildcard receive (stashed messages first, oldest first).
    pub fn recv_any(&mut self) -> Message {
        self.chaos_op();
        self.flush_held();
        if let Some(m) = self.stash.pop_front() {
            self.tracer.stash_depth(self.stash.len());
            self.snapshot_stash();
            return self.account_recv(m);
        }
        let posted_us = self.tracer.now_us();
        self.set_blocked(BlockedOn { src: None, tag: None });
        loop {
            match self.inbox.recv_timeout(self.poll) {
                Ok(m) => {
                    self.bump_progress();
                    self.note_inbox_pop();
                    let Some(m) = self.ingest_control(m) else { continue };
                    self.clear_blocked();
                    self.tracer.recv_wait(posted_us, m.sent_us, Some((m.src, m.idx)));
                    return self.account_recv(m);
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.check_abort();
                    self.reliable_tick();
                }
                Err(RecvTimeoutError::Disconnected) => {
                    self.check_abort();
                    std::thread::sleep(self.poll);
                    self.check_abort();
                    panic!("all senders hung up while receiving");
                }
            }
        }
    }

    /// Non-blocking wildcard receive.
    pub fn try_recv_any(&mut self) -> Option<Message> {
        self.check_abort();
        self.flush_held();
        self.reliable_tick();
        if let Some(m) = self.stash.pop_front() {
            self.tracer.stash_depth(self.stash.len());
            self.snapshot_stash();
            return Some(self.account_recv(m));
        }
        while let Ok(m) = self.inbox.try_recv() {
            self.bump_progress();
            self.note_inbox_pop();
            let Some(m) = self.ingest_control(m) else { continue };
            return Some(self.account_recv(m));
        }
        None
    }

    /// Non-blocking match of `(src, tag)`: drains any queued arrivals into
    /// the stash and returns the payload if a matching message is present
    /// (≈ `MPI_Iprobe` + receive). Used by the request API.
    ///
    /// Sequence-aware: on an edge carrying [`RankCtx::send_seq`] traffic,
    /// messages are consumed strictly in sequence order — stale duplicates
    /// are suppressed on the spot (they were never accounted, so no
    /// reversal is needed) and early arrivals are parked in the same
    /// early-arrival buffer [`RankCtx::recv_seq`] drains. Without this, a
    /// nonblocking receiver under injected duplication/reordering would
    /// deliver whichever copy reached the stash first, breaking the
    /// fault-masking guarantee the blocking path provides.
    pub fn try_match(&mut self, src: usize, tag: u64) -> Option<Payload> {
        self.check_abort();
        self.flush_held();
        self.reliable_tick();
        loop {
            let want = self.seq_rx.get(&(src, tag)).copied().unwrap_or(0);
            let min_epoch = self.min_epoch.get(&(src, tag)).copied().unwrap_or(0);
            // A sequenced message already held for this edge has its turn
            // now.
            if let Some(m) = self.early.get_mut(&(src, tag)).and_then(|b| b.remove(&want)) {
                self.seq_rx.insert((src, tag), want + 1);
                if m.epoch < min_epoch {
                    // Stale-epoch delivery: slot consumed, data discarded
                    // (never accounted — it came from the early buffer).
                    self.tracer.fault(FaultKind::Dropped, src, tag);
                    self.send_ack(src, tag, want + 1);
                    continue;
                }
                self.send_ack(src, tag, want + 1);
                return Some(self.account_recv(m).data);
            }
            let mut drained = false;
            while let Ok(m) = self.inbox.try_recv() {
                self.bump_progress();
                self.note_inbox_pop();
                let Some(m) = self.ingest_control(m) else { continue };
                self.stash.push_back(m);
                self.tracer.stash_depth(self.stash.len());
                drained = true;
            }
            if drained {
                self.snapshot_stash();
            }
            let mut i = 0;
            let mut matched = None;
            while i < self.stash.len() {
                if self.stash[i].src != src || self.stash[i].tag != tag {
                    i += 1;
                    continue;
                }
                // `remove` keeps the rest of the stash in arrival order,
                // preserving per-(src, tag) FIFO delivery.
                let m = self.stash.remove(i).unwrap();
                if m.seq == NO_SEQ || m.seq == want {
                    if m.seq == want {
                        self.seq_rx.insert((src, tag), want + 1);
                        self.send_ack(src, tag, want + 1);
                    }
                    matched = Some(m);
                    break;
                } else if m.seq < want {
                    // Stale duplicate of an already-consumed message. Stash
                    // entries carry no receive accounting yet, so dropping
                    // it here leaves the volume counters exactly as if the
                    // duplicate had been accounted and then reversed.
                    self.tracer.fault(FaultKind::DuplicateSuppressed, src, tag);
                    self.send_ack(src, tag, want);
                } else if self.early.entry((src, tag)).or_default().insert(m.seq, m).is_some() {
                    // Duplicate of a message already buffered ahead.
                    self.tracer.fault(FaultKind::DuplicateSuppressed, src, tag);
                }
                // The removal shifted the deque; re-inspect index `i`.
            }
            self.tracer.stash_depth(self.stash.len());
            self.snapshot_stash();
            let m = matched?;
            if m.seq != NO_SEQ && m.epoch < min_epoch {
                // Stale-epoch delivery taken from the stash: never
                // accounted, so discarding it is already reversal-exact.
                self.tracer.fault(FaultKind::Dropped, src, tag);
                continue;
            }
            return Some(self.account_recv(m).data);
        }
    }

    /// Blocks until at least one *new* message arrives and stashes it
    /// without consuming it (no receive accounting — a later matched
    /// receive accounts it). This is the progress engine's blocking point:
    /// unlike popping the stash, it can never livelock on messages no
    /// posted request matches, and it reports `on` to the watchdog while
    /// parked, so an all-ranks-blocked progress loop is diagnosed like any
    /// other deadlock. Blocked time is classified against the arriving
    /// message's send timestamp.
    pub fn wait_for_arrival_as(&mut self, on: BlockedOn) {
        self.chaos_op();
        self.flush_held();
        let posted_us = self.tracer.now_us();
        self.set_blocked(on);
        loop {
            match self.inbox.recv_timeout(self.poll) {
                Ok(m) => {
                    self.bump_progress();
                    self.note_inbox_pop();
                    let Some(m) = self.ingest_control(m) else { continue };
                    self.clear_blocked();
                    self.tracer.recv_wait(posted_us, m.sent_us, Some((m.src, m.idx)));
                    self.stash.push_back(m);
                    self.tracer.stash_depth(self.stash.len());
                    self.snapshot_stash();
                    return;
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.check_abort();
                    self.reliable_tick();
                }
                Err(RecvTimeoutError::Disconnected) => {
                    self.check_abort();
                    std::thread::sleep(self.poll);
                    self.check_abort();
                    panic!("all senders hung up while receiving");
                }
            }
        }
    }

    /// [`RankCtx::wait_for_arrival_as`] with a wildcard blocked-on report.
    pub fn wait_for_arrival(&mut self) {
        self.wait_for_arrival_as(BlockedOn { src: None, tag: None });
    }

    /// Bounded [`RankCtx::wait_for_arrival`]: parks until a new message is
    /// stashed or `timeout` elapses, whichever comes first; returns whether
    /// a message arrived. The async engine calls this while intra-rank pool
    /// batches are in flight — the rank must wake promptly for *either* a
    /// message or batch completion, so it cannot block on the inbox alone.
    pub fn wait_for_arrival_timeout(&mut self, timeout: Duration) -> bool {
        self.chaos_op();
        self.flush_held();
        let posted_us = self.tracer.now_us();
        let deadline = Instant::now() + timeout;
        self.set_blocked(BlockedOn { src: None, tag: None });
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                self.clear_blocked();
                return false;
            }
            match self.inbox.recv_timeout(left.min(self.poll)) {
                Ok(m) => {
                    self.bump_progress();
                    self.note_inbox_pop();
                    let Some(m) = self.ingest_control(m) else { continue };
                    self.clear_blocked();
                    self.tracer.recv_wait(posted_us, m.sent_us, Some((m.src, m.idx)));
                    self.stash.push_back(m);
                    self.tracer.stash_depth(self.stash.len());
                    self.snapshot_stash();
                    return true;
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.check_abort();
                    self.reliable_tick();
                }
                Err(RecvTimeoutError::Disconnected) => {
                    self.check_abort();
                    std::thread::sleep(self.poll);
                    self.check_abort();
                    panic!("all senders hung up while receiving");
                }
            }
        }
    }

    /// Monotonic count of data messages this rank has accepted off its
    /// inbox (whether consumed on the spot or parked in the stash).
    ///
    /// This is the park guard for every progress loop built on
    /// [`RankCtx::try_match`] + [`RankCtx::wait_for_arrival`]: `try_match`
    /// drains the *entire* inbox into the stash before scanning for its own
    /// `(src, tag)`, so testing one request can stash a message that an
    /// earlier-tested request wanted. The pass then ends "without
    /// progress", and `wait_for_arrival` blocks on *new* inbox traffic
    /// only — the stashed message can never wake it. Snapshot this counter
    /// before the test sweep and re-poll instead of parking when it moved.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Returns a message taken with [`RankCtx::recv_any`] to the stash
    /// (un-receives it), reversing its accounting. Used by `wait_any` when
    /// an arrival matches none of the posted requests yet.
    ///
    /// The message goes back to the *front* of the stash — it was the
    /// oldest undelivered message, and must stay ahead of anything that
    /// arrived after it.
    pub fn stash_back(&mut self, m: Message) {
        self.unaccount_recv(&m);
        self.stash.push_front(m);
        self.tracer.stash_depth(self.stash.len());
        self.snapshot_stash();
    }

    fn account_recv(&mut self, m: Message) -> Message {
        self.volume.received += m.bytes();
        self.volume.msgs_received += 1;
        if let Some(v) = self.channel_for(m.tag) {
            v.received += m.bytes();
            v.msgs_received += 1;
        }
        // Lamport merge at the consumption point. An un-received message
        // (stash_back / sequenced re-stash) leaves the clock elevated,
        // which is still a valid Lamport history: later receives only ever
        // record strictly larger clocks.
        self.clock = self.clock.max(m.clock) + 1;
        self.tracer.msg_recv(m.src, m.tag, m.bytes(), self.clock, m.idx);
        m
    }

    fn unaccount_recv(&mut self, m: &Message) {
        self.volume.received -= m.bytes();
        self.volume.msgs_received -= 1;
        if let Some(v) = self.channel_for(m.tag) {
            v.received -= m.bytes();
            v.msgs_received -= 1;
        }
        self.tracer.msg_recv_undo();
    }

    /// Counters so far.
    pub fn volume(&self) -> RankVolume {
        self.volume
    }

    /// Splits this rank's logical traffic counters across `nchannels`
    /// application channels: every subsequent send and consumed receive
    /// whose tag `classify`s to `Some(i)` is additionally charged to channel
    /// `i`'s [`RankVolume`]. Un-received messages (stash-backs, sequenced
    /// re-stashes) reverse their channel charge the same way the aggregate
    /// counters reverse, so a channel's totals are exact logical volumes,
    /// not delivery-order artifacts. Only `sent`/`received` and the message
    /// counts are split; `copied` and `retransmitted` remain aggregate.
    ///
    /// Calling it again resets the per-channel counters (the aggregate
    /// [`RankCtx::volume`] is untouched).
    pub fn enable_channel_accounting(
        &mut self,
        nchannels: usize,
        classify: fn(u64) -> Option<usize>,
    ) {
        self.channels =
            Some(ChannelAccounting { classify, volumes: vec![RankVolume::default(); nchannels] });
    }

    /// Per-channel counters so far (empty when channel accounting was never
    /// enabled).
    pub fn channel_volumes(&self) -> Vec<RankVolume> {
        self.channels.as_ref().map(|c| c.volumes.clone()).unwrap_or_default()
    }

    /// The channel counter a tag belongs to, if accounting is on and the
    /// classifier claims it.
    fn channel_for(&mut self, tag: u64) -> Option<&mut RankVolume> {
        let c = self.channels.as_mut()?;
        let i = (c.classify)(tag)?;
        c.volumes.get_mut(i)
    }

    /// This rank's current recovery epoch (confirmed deaths incorporated).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Raises this rank's recovery epoch (never lowers it): subsequent
    /// sends carry the new stamp.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = self.epoch.max(epoch);
    }

    /// Raises the minimum acceptable epoch of edge `(src, tag)`: an
    /// in-sequence delivery stamped below it is discarded (with its
    /// accounting reversed) instead of returned. The recovery layer calls
    /// this when it re-homes an edge after a rebuild, so in-flight
    /// pre-crash traffic cannot race the re-issued payload.
    pub fn expect_epoch(&mut self, src: usize, tag: u64, epoch: u64) {
        let e = self.min_epoch.entry((src, tag)).or_insert(0);
        *e = (*e).max(epoch);
    }

    /// Ranks confirmed dead on the shared crash board (recovery mode only;
    /// always empty otherwise). This is the ground truth a suspicion
    /// timeout is checked against: a slow rank is never on it.
    pub fn crashed_ranks(&self) -> Vec<usize> {
        self.shared
            .states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.crashed.load(Ordering::Acquire))
            .map(|(r, _)| r)
            .collect()
    }

    /// Whether `rank` is confirmed dead on the crash board.
    pub fn is_crashed(&self, rank: usize) -> bool {
        self.shared.states[rank].crashed.load(Ordering::Acquire)
    }

    /// Takes the oldest available message whose tag lies in `lane`
    /// (`tag & LANE_MASK == lane`), draining the inbox first. The recovery
    /// layer polls this for JOIN requests between receive slices.
    pub fn try_take_lane(&mut self, lane: u64) -> Option<Message> {
        self.check_abort();
        self.flush_held();
        self.reliable_tick();
        while let Ok(m) = self.inbox.try_recv() {
            self.bump_progress();
            self.note_inbox_pop();
            let Some(m) = self.ingest_control(m) else { continue };
            self.stash.push_back(m);
            self.tracer.stash_depth(self.stash.len());
        }
        let i = self.stash.iter().position(|m| m.tag & LANE_MASK == lane)?;
        let m = self.stash.remove(i).unwrap();
        self.tracer.stash_depth(self.stash.len());
        self.snapshot_stash();
        Some(self.account_recv(m))
    }

    /// Marks this rank's user function as logically complete (recovery
    /// epilogue gate; see [`RankCtx::all_user_done`]). Idempotence is the
    /// caller's duty: call it exactly once per rank.
    pub(crate) fn mark_user_done(&self) {
        self.shared.user_done.fetch_add(1, Ordering::AcqRel);
    }

    /// Whether every survivor's user function is complete: the recovery
    /// epilogue serves repair requests until this turns true.
    pub(crate) fn all_user_done(&self) -> bool {
        let crashed =
            self.shared.states.iter().filter(|s| s.crashed.load(Ordering::Acquire)).count();
        self.shared.user_done.load(Ordering::Acquire) + crashed >= self.size
    }

    /// Records that the recovery layer rebuilt the tree of collective
    /// `tag` somewhere (aggregated into [`RecoveryReport::rebuilt_trees`]).
    pub(crate) fn note_rebuild(&self, tag: u64) {
        self.shared.rebuilt.lock().unwrap().insert(tag);
    }

    /// Records a stranded collective: its payload source died, so no
    /// survivor can deliver it.
    pub(crate) fn note_stranded(&self, tag: u64) {
        self.shared.stranded.lock().unwrap().insert(tag);
    }

    /// Records `bytes` of re-issued payload answering a JOIN.
    pub(crate) fn note_reissue(&self, bytes: u64) {
        self.shared.reissued_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one JOIN request sent.
    pub(crate) fn note_join(&self) {
        self.shared.joins.fetch_add(1, Ordering::Relaxed);
    }

    /// The run's poll granularity (the recovery layer slices its waits on
    /// the same cadence).
    pub fn poll_interval(&self) -> Duration {
        self.poll
    }
}

/// Follows the wait-for edges `r -> blocked[r].src`, skipping finished
/// ranks, and returns the first cycle found (every member blocked on the
/// next, last blocked on the first).
fn find_cycle(blocked: &[Option<BlockedOn>], done: &[bool]) -> Option<Vec<usize>> {
    let n = blocked.len();
    let next = |r: usize| -> Option<usize> {
        if done[r] {
            return None;
        }
        blocked[r].as_ref().and_then(|b| b.src).filter(|&s| s < n && !done[s])
    };
    // 0 = unvisited, 1 = on the current walk, 2 = exhausted.
    let mut color = vec![0u8; n];
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        let mut path = Vec::new();
        let mut r = start;
        loop {
            match color[r] {
                1 => {
                    let pos = path.iter().position(|&x| x == r).unwrap();
                    return Some(path[pos..].to_vec());
                }
                2 => break,
                _ => {
                    color[r] = 1;
                    path.push(r);
                    match next(r) {
                        Some(s) => r = s,
                        None => break,
                    }
                }
            }
        }
        for &p in &path {
            color[p] = 2;
        }
    }
    None
}

/// Assembles the stall verdict from the monitor's observation.
fn stall_error(
    shared: &Shared,
    blocked: &[Option<BlockedOn>],
    done: &[bool],
    cycle: Option<Vec<usize>>,
    stalled_for: Duration,
) -> RunError {
    let blocked_list = blocked.iter().enumerate().filter_map(|(r, b)| b.map(|b| (r, b))).collect();
    let done_list = done.iter().enumerate().filter(|&(_, &d)| d).map(|(r, _)| r).collect();
    let stashes = shared
        .states
        .iter()
        .enumerate()
        .map(|(r, s)| (r, s.stash.lock().unwrap().clone()))
        .filter(|(_, s)| !s.is_empty())
        .collect();
    RunError::Stalled(Box::new(StallDiagnostic {
        blocked: blocked_list,
        done: done_list,
        cycle,
        stashes,
        trace_tails: Vec::new(),
        stalled_for,
    }))
}

/// The watchdog monitor: observes per-rank progress counters; on zero
/// progress it inspects the wait-for graph. With `fast_cycle` (no reliable
/// transport), a wait-for cycle stable across three consecutive
/// no-progress polls aborts immediately (deadlock); any global stall
/// aborts after the full `stall` duration. A reliable transport disables
/// the fast path: blocked cycles are routinely broken by retransmission.
fn monitor(shared: &Shared, nranks: usize, stall: Duration, poll: Duration, fast_cycle: bool) {
    let mut last = vec![u64::MAX; nranks];
    let mut last_change = Instant::now();
    let mut stable_cycle: Option<(Vec<usize>, u32)> = None;
    let mut guard = shared.cv_lock.lock().unwrap();
    loop {
        guard = shared.cv.wait_timeout(guard, poll).unwrap().0;
        if shared.abort.load(Ordering::Acquire) || shared.finished.load(Ordering::Acquire) >= nranks
        {
            return;
        }
        let cur: Vec<u64> =
            shared.states.iter().map(|s| s.progress.load(Ordering::Acquire)).collect();
        if cur != last {
            last = cur;
            last_change = Instant::now();
            stable_cycle = None;
            continue;
        }
        let done: Vec<bool> =
            shared.states.iter().map(|s| s.done.load(Ordering::Acquire)).collect();
        let blocked: Vec<Option<BlockedOn>> =
            shared.states.iter().map(|s| *s.blocked.lock().unwrap()).collect();
        if let Some(c) = find_cycle(&blocked, &done).filter(|_| fast_cycle) {
            match &mut stable_cycle {
                Some((prev, seen)) if *prev == c => {
                    *seen += 1;
                    if *seen >= 3 {
                        shared.record_verdict(stall_error(
                            shared,
                            &blocked,
                            &done,
                            Some(c),
                            last_change.elapsed(),
                        ));
                        return;
                    }
                }
                _ => stable_cycle = Some((c, 1)),
            }
        } else {
            stable_cycle = None;
        }
        if last_change.elapsed() >= stall {
            shared.record_verdict(stall_error(
                shared,
                &blocked,
                &done,
                None,
                last_change.elapsed(),
            ));
            return;
        }
    }
}

/// Extracts the human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

type RankOutput<R> = (R, RankVolume, Option<RankTrace>);

fn run_impl<R, F, M>(
    nranks: usize,
    opts: &RunOptions,
    f: &F,
    mk: &M,
) -> Result<Vec<Option<RankOutput<R>>>, RunError>
where
    R: Send,
    F: Fn(&mut RankCtx) -> R + Sync,
    M: Fn(usize) -> RankTracer + Sync,
{
    assert!(nranks > 0);
    let plan = opts.faults.as_ref().map(|p| Arc::new(p.clone()));
    let shared = Arc::new(Shared::new(
        nranks,
        opts.watchdog.is_some(),
        opts.telemetry.is_some(),
        opts.recovery,
    ));
    run_impl_shared(nranks, opts, f, mk, plan, &shared)
}

fn run_impl_shared<R, F, M>(
    nranks: usize,
    opts: &RunOptions,
    f: &F,
    mk: &M,
    plan: Option<Arc<FaultPlan>>,
    shared: &Arc<Shared>,
) -> Result<Vec<Option<RankOutput<R>>>, RunError>
where
    R: Send,
    F: Fn(&mut RankCtx) -> R + Sync,
    M: Fn(usize) -> RankTracer + Sync,
{
    let shared = shared.clone();
    let epoch = Instant::now();
    let mut senders = Vec::with_capacity(nranks);
    let mut receivers = Vec::with_capacity(nranks);
    for _ in 0..nranks {
        let (s, r) = channel();
        senders.push(s);
        receivers.push(r);
    }
    let out: Vec<Option<RankOutput<R>>> = std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(nranks);
        for (rank, inbox) in receivers.into_iter().enumerate() {
            let senders = senders.clone();
            let shared = shared.clone();
            let plan = plan.clone();
            let poll = opts.poll;
            let reliable = opts.reliable;
            // Fault runs get one courier per rank so injected delays are
            // in-flight time instead of sender-side sleeps. The courier
            // exits when the rank drops `ctx` (and with it the handle).
            let courier_tx = plan.is_some().then(|| {
                let (tx, rx) = channel::<Flight>();
                let senders = senders.clone();
                let shared = shared.clone();
                scope.spawn(move || courier(&rx, &senders, &shared));
                tx
            });
            joins.push(scope.spawn(move || {
                let mut ctx = RankCtx {
                    rank,
                    size: nranks,
                    senders,
                    inbox,
                    stash: VecDeque::new(),
                    volume: RankVolume::default(),
                    tracer: mk(rank),
                    shared: shared.clone(),
                    poll,
                    plan,
                    ops: 0,
                    msg_seq: vec![0; nranks],
                    held: (0..nranks).map(|_| None).collect(),
                    seq_tx: HashMap::new(),
                    seq_rx: HashMap::new(),
                    early: HashMap::new(),
                    clock: 0,
                    sends: 0,
                    reliable: reliable.map(crate::reliable::ReliableState::new),
                    epoch: 0,
                    min_epoch: HashMap::new(),
                    channels: None,
                    arrivals: 0,
                    courier: courier_tx,
                };
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut ctx)));
                match result {
                    Ok(r) => {
                        ctx.flush_held();
                        ctx.reliable_flush();
                        shared.rank_finished(rank);
                        Some((r, ctx.volume, ctx.tracer.finish()))
                    }
                    Err(payload) => {
                        let aborted = payload.downcast_ref::<Aborted>().is_some();
                        if shared.recovery && !aborted {
                            // Online recovery: absorb the death instead of
                            // aborting the run. The crash flag must be
                            // visible before `done`, so survivors reading
                            // the board never see a finished-but-unlisted
                            // casualty.
                            shared.states[rank].crashed.store(true, Ordering::Release);
                        } else if !aborted {
                            shared.record_verdict(RunError::RankPanic {
                                rank,
                                message: panic_message(payload.as_ref()),
                            });
                        }
                        shared.rank_finished(rank);
                        None
                    }
                }
            }));
        }
        if let Some(stall) = opts.watchdog {
            let shared = shared.clone();
            let poll = opts.poll;
            // Under a reliable transport a wait-for cycle is not proof of
            // deadlock: a lost message leaves both ends blocked until the
            // retransmission deadline fires and breaks the cycle. Only the
            // full stall timeout is trustworthy there.
            let fast_cycle = opts.reliable.is_none();
            scope.spawn(move || monitor(&shared, nranks, stall, poll, fast_cycle));
        }
        if let Some(tel) = opts.telemetry.clone() {
            let shared = shared.clone();
            scope.spawn(move || sampler(&shared, nranks, &tel, epoch));
        }
        joins.into_iter().map(|j| j.join().expect("rank thread panicked unexpectedly")).collect()
    });
    let verdict = shared.verdict.lock().unwrap().take();
    if let Some(mut e) = verdict {
        if let RunError::Stalled(d) = &mut e {
            d.trace_tails = std::mem::take(&mut *shared.trace_tails.lock().unwrap());
            d.trace_tails.sort_by_key(|(r, _)| *r);
        }
        return Err(e);
    }
    Ok(out)
}

/// Fallible form of [`run`]: executes `f` on `nranks` rank threads under
/// the given options (watchdog, poll interval, fault plan) and returns the
/// results and volumes, or the structured failure.
pub fn try_run<R, F>(
    nranks: usize,
    opts: &RunOptions,
    f: F,
) -> Result<(Vec<R>, Vec<RankVolume>), RunError>
where
    R: Send,
    F: Fn(&mut RankCtx) -> R + Sync,
{
    let handles = run_impl(nranks, opts, &f, &|_| RankTracer::disabled())?;
    let mut results = Vec::with_capacity(nranks);
    let mut volumes = Vec::with_capacity(nranks);
    for h in handles {
        let (r, v, _) = h.expect("rank aborted without a verdict");
        results.push(r);
        volumes.push(v);
    }
    Ok((results, volumes))
}

/// Fallible form of [`run_traced`]: like [`try_run`] with an enabled
/// wall-clock tracer on every rank.
pub fn try_run_traced<R, F>(
    nranks: usize,
    label: &str,
    opts: &RunOptions,
    f: F,
) -> Result<(Vec<R>, Vec<RankVolume>, Trace), RunError>
where
    R: Send,
    F: Fn(&mut RankCtx) -> R + Sync,
{
    let epoch = Instant::now();
    let handles = run_impl(nranks, opts, &f, &move |rank| RankTracer::wall(rank, epoch))?;
    let mut results = Vec::with_capacity(nranks);
    let mut volumes = Vec::with_capacity(nranks);
    let mut traces = Vec::with_capacity(nranks);
    for h in handles {
        let (r, v, t) = h.expect("rank aborted without a verdict");
        results.push(r);
        volumes.push(v);
        traces.extend(t);
    }
    Ok((results, volumes, Trace::new(label, traces)))
}

/// What online crash recovery did during a [`try_run_recover`] run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Ranks confirmed dead on the crash board, ascending.
    pub dead_ranks: Vec<usize>,
    /// Distinct collectives whose tree some survivor rebuilt around the
    /// dead set.
    pub rebuilt_trees: u64,
    /// Payload bytes re-issued in answer to orphan JOIN requests.
    pub reissued_bytes: u64,
    /// JOIN requests orphans sent to their rebuilt-tree parents.
    pub joins: u64,
    /// Tags of collectives no survivor could deliver because the payload
    /// source itself died (the irreducibly lost work), ascending.
    pub stranded_supernodes: Vec<u64>,
}

/// What a recovery-mode run yields: per-rank results (`None` for
/// casualties), per-rank volumes (zero for casualties) and the populated
/// [`RecoveryReport`].
pub type RecoverOutcome<R> = (Vec<Option<R>>, Vec<RankVolume>, RecoveryReport);

/// Recovery-mode run: executes `f` on `nranks` rank threads with
/// [`RunOptions::recovery`] forced on, absorbing rank deaths instead of
/// aborting — an `Err` now only means an unrecoverable failure (a global
/// stall the watchdog caught).
pub fn try_run_recover<R, F>(
    nranks: usize,
    opts: &RunOptions,
    f: F,
) -> Result<RecoverOutcome<R>, RunError>
where
    R: Send,
    F: Fn(&mut RankCtx) -> R + Sync,
{
    let mut opts = opts.clone();
    opts.recovery = true;
    assert!(nranks > 0);
    let plan = opts.faults.as_ref().map(|p| Arc::new(p.clone()));
    let shared =
        Arc::new(Shared::new(nranks, opts.watchdog.is_some(), opts.telemetry.is_some(), true));
    let handles = run_impl_shared(nranks, &opts, &f, &|_| RankTracer::disabled(), plan, &shared)?;
    let mut results = Vec::with_capacity(nranks);
    let mut volumes = Vec::with_capacity(nranks);
    for h in handles {
        match h {
            Some((r, v, _)) => {
                results.push(Some(r));
                volumes.push(v);
            }
            None => {
                results.push(None);
                volumes.push(RankVolume::default());
            }
        }
    }
    let report = RecoveryReport {
        dead_ranks: (0..nranks)
            .filter(|&r| shared.states[r].crashed.load(Ordering::Acquire))
            .collect(),
        rebuilt_trees: shared.rebuilt.lock().unwrap().len() as u64,
        reissued_bytes: shared.reissued_bytes.load(Ordering::Relaxed),
        joins: shared.joins.load(Ordering::Relaxed),
        stranded_supernodes: shared.stranded.lock().unwrap().iter().copied().collect(),
    };
    Ok((results, volumes, report))
}

/// Runs `f` on `nranks` rank threads and returns each rank's result plus
/// its communication volume.
///
/// A panic in any rank or a watchdog-detected stall aborts the whole run
/// and panics here with the diagnostic (the original panic message for a
/// rank panic).
pub fn run<R, F>(nranks: usize, f: F) -> (Vec<R>, Vec<RankVolume>)
where
    R: Send,
    F: Fn(&mut RankCtx) -> R + Sync,
{
    try_run(nranks, &RunOptions::default(), f).unwrap_or_else(|e| panic!("{e}"))
}

/// Like [`run`], but with an enabled wall-clock tracer on every rank: each
/// `RankCtx` records message events, per-phase byte counters and stash
/// depth, and the assembled [`Trace`] is returned alongside the results.
pub fn run_traced<R, F>(nranks: usize, label: &str, f: F) -> (Vec<R>, Vec<RankVolume>, Trace)
where
    R: Send,
    F: Fn(&mut RankCtx) -> R + Sync,
{
    try_run_traced(nranks, label, &RunOptions::default(), f).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong() {
        let (results, volumes) = run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, vec![1.0, 2.0, 3.0]);
                ctx.recv(1, 8).to_vec()
            } else {
                let d = ctx.recv(0, 7);
                let doubled: Vec<f64> = d.iter().map(|x| x * 2.0).collect();
                ctx.send(0, 8, doubled.clone());
                doubled
            }
        });
        assert_eq!(results[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(volumes[0].sent, 24);
        assert_eq!(volumes[0].received, 24);
        assert_eq!(volumes[1].msgs_sent, 1);
    }

    #[test]
    fn out_of_order_tag_matching() {
        let (results, _) = run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![1.0]);
                ctx.send(1, 2, vec![2.0]);
                ctx.send(1, 3, vec![3.0]);
                vec![]
            } else {
                // receive in reverse order
                let c = ctx.recv(0, 3);
                let b = ctx.recv(0, 2);
                let a = ctx.recv(0, 1);
                vec![a[0], b[0], c[0]]
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn recv_any_drains_everything() {
        let n = 5;
        let (results, _) = run(n, move |ctx| {
            if ctx.rank() == 0 {
                let mut total = 0.0;
                for _ in 0..(n - 1) {
                    let m = ctx.recv_any();
                    total += m.data[0];
                }
                total
            } else {
                ctx.send(0, ctx.rank() as u64, vec![ctx.rank() as f64]);
                0.0
            }
        });
        assert_eq!(results[0], (1..5).sum::<usize>() as f64);
    }

    #[test]
    fn try_recv_any_polls() {
        let (results, _) = run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, vec![42.0]);
                0.0
            } else {
                loop {
                    if let Some(m) = ctx.try_recv_any() {
                        return m.data[0];
                    }
                    std::thread::yield_now();
                }
            }
        });
        assert_eq!(results[1], 42.0);
    }

    #[test]
    fn many_ranks_all_to_one_volume() {
        let n = 8;
        let (_, volumes) = run(n, move |ctx| {
            if ctx.rank() == 0 {
                for _ in 0..(n - 1) {
                    ctx.recv_any();
                }
            } else {
                ctx.send(0, 0, vec![0.0; 100]);
            }
        });
        assert_eq!(volumes[0].received, (n as u64 - 1) * 800);
        assert_eq!(volumes[0].sent, 0);
        for v in &volumes[1..] {
            assert_eq!(v.sent, 800);
        }
    }

    #[test]
    fn channel_accounting_splits_logical_volumes() {
        // Tags 0..8 map to channel tag/4; tag 100 is unclassified. The
        // per-channel counters must tile the aggregate logical counters
        // (minus unclassified traffic), even when receives arrive out of
        // order and bounce through the stash.
        fn classify(tag: u64) -> Option<usize> {
            (tag < 8).then_some((tag / 4) as usize)
        }
        let (results, volumes) = run(2, |ctx| {
            ctx.enable_channel_accounting(2, classify);
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![1.0; 3]); // channel 0, 24 B
                ctx.send(1, 5, vec![2.0; 5]); // channel 1, 40 B
                ctx.send(1, 100, vec![3.0]); // unclassified, 8 B
                ctx.send(1, 4, vec![4.0; 2]); // channel 1, 16 B
            } else {
                // Reverse order forces stash traffic through the matcher.
                ctx.recv(0, 4);
                ctx.recv(0, 100);
                ctx.recv(0, 5);
                ctx.recv(0, 1);
            }
            ctx.channel_volumes()
        });
        let tx = &results[0];
        assert_eq!((tx[0].sent, tx[0].msgs_sent), (24, 1));
        assert_eq!((tx[1].sent, tx[1].msgs_sent), (56, 2));
        assert_eq!(tx[0].received + tx[1].received, 0);
        let rx = &results[1];
        assert_eq!((rx[0].received, rx[0].msgs_received), (24, 1));
        assert_eq!((rx[1].received, rx[1].msgs_received), (56, 2));
        // Aggregate counters keep counting everything, channels or not.
        assert_eq!(volumes[0].sent, 88);
        assert_eq!(volumes[1].received, 88);
        // Ranks that never enabled accounting report nothing.
        let (r, _) = run(1, |ctx| ctx.channel_volumes());
        assert!(r[0].is_empty());
    }

    #[test]
    fn stress_unordered_interleaving() {
        // Each rank sends 50 tagged messages to every other rank; everybody
        // receives them in a scrambled order.
        let n = 4;
        let (results, _) = run(n, move |ctx| {
            let me = ctx.rank();
            for dst in 0..n {
                if dst != me {
                    for k in 0..50u64 {
                        ctx.send(dst, k, vec![(me * 1000) as f64 + k as f64]);
                    }
                }
            }
            let mut sum = 0.0;
            for src in (0..n).rev() {
                if src != me {
                    for k in (0..50u64).rev() {
                        let d = ctx.recv(src, k);
                        assert_eq!(d[0], (src * 1000) as f64 + k as f64);
                        sum += d[0];
                    }
                }
            }
            sum
        });
        assert!(results.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn recv_any_preserves_per_source_tag_fifo() {
        // MPI non-overtaking: two messages with the same (src, tag) must be
        // delivered in send order even when both sat in the stash first.
        // The seed runtime popped the stash LIFO and returned 2.0 before
        // 1.0 here.
        let (results, _) = run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, vec![1.0]);
                ctx.send(1, 7, vec![2.0]);
                ctx.send(1, 9, vec![99.0]); // sentinel with a different tag
                vec![]
            } else {
                // Receiving the sentinel first forces both tag-7 messages
                // through the stash.
                let s = ctx.recv(0, 9);
                assert_eq!(s[0], 99.0);
                let a = ctx.recv_any();
                let b = ctx.recv_any();
                vec![a.data[0], b.data[0]]
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0]);
    }

    #[test]
    fn recv_takes_oldest_matching_message() {
        // Same-(src, tag) FIFO must also hold for tag-matched receives that
        // hit the stash: recv(0, 7) must return the first tag-7 send.
        let (results, _) = run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, vec![1.0]);
                ctx.send(1, 7, vec![2.0]);
                ctx.send(1, 9, vec![99.0]);
                vec![]
            } else {
                let _ = ctx.recv(0, 9); // stashes both tag-7 messages
                let a = ctx.recv(0, 7);
                let b = ctx.recv(0, 7);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0]);
    }

    #[test]
    fn stash_back_keeps_arrival_order() {
        let (results, _) = run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![1.0]);
                ctx.send(1, 1, vec![2.0]);
                ctx.send(1, 2, vec![3.0]);
                vec![]
            } else {
                let _ = ctx.recv(0, 2); // stash the two tag-1 messages
                                        // Un-receive the oldest, then drain: order must survive.
                let m = ctx.recv_any();
                assert_eq!(m.data[0], 1.0);
                ctx.stash_back(m);
                let a = ctx.recv_any();
                let b = ctx.recv_any();
                vec![a.data[0], b.data[0]]
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0]);
    }

    #[test]
    fn traced_run_counts_messages_and_volume() {
        use pselinv_trace::CollKind;
        let (_, volumes, trace) = run_traced(2, "unit/pingpong", |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, vec![0.0; 16]);
            } else {
                let _ = ctx.recv(0, 7);
            }
        });
        assert_eq!(trace.ranks.len(), 2);
        // No scope was pushed, so traffic lands under Other — and must
        // agree byte-for-byte with the runtime's own volume counters.
        assert_eq!(trace.ranks[0].metrics.kind(CollKind::Other).bytes_sent, volumes[0].sent);
        assert_eq!(trace.ranks[1].metrics.kind(CollKind::Other).bytes_recv, volumes[1].received);
        assert_eq!(volumes[0].sent, 128);
    }

    #[test]
    fn late_sender_wait_is_classified() {
        use pselinv_trace::CollKind;
        // Rank 1 posts its receive immediately; rank 0 sends only after a
        // deliberate delay. Most of rank 1's blocked interval must be
        // classified as late-sender wait, and wait + transfer can never
        // exceed the enclosing span.
        let delay_ms = 40u64;
        let (_, _, trace) = run_traced(2, "unit/late_sender", move |ctx| {
            if ctx.rank() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(delay_ms));
                ctx.tracer().push_scope(CollKind::ColBcast, 1);
                ctx.send(1, 3, vec![0.0; 64]);
                ctx.tracer().pop_scope();
            } else {
                ctx.tracer().push_scope(CollKind::ColBcast, 1);
                let _ = ctx.recv(0, 3);
                ctx.tracer().pop_scope();
            }
        });
        let k = trace.ranks[1].metrics.kind(CollKind::ColBcast);
        assert!(
            k.wait_us >= delay_ms * 1000 / 2,
            "late-sender wait {} µs too small for a {delay_ms} ms delay",
            k.wait_us
        );
        assert!(
            k.wait_us + k.transfer_us <= k.span_time_us,
            "classified blocked time {} + {} exceeds the span {}",
            k.wait_us,
            k.transfer_us,
            k.span_time_us
        );
        // The sender never blocked on a receive.
        let s = trace.ranks[0].metrics.kind(CollKind::ColBcast);
        assert_eq!(s.wait_us + s.transfer_us, 0);
    }

    #[test]
    fn stash_hit_records_no_wait() {
        // Force the tag-5 message through the stash: by the time recv(0, 5)
        // runs, the message already arrived, so no blocked time may be
        // classified for it beyond the first (tag-6) receive.
        let (_, _, trace) = run_traced(2, "unit/stash_no_wait", |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 5, vec![1.0]);
                ctx.send(1, 6, vec![2.0]);
            } else {
                let _ = ctx.recv(0, 6); // stashes tag 5
                let waits_before = ctx.tracer().metrics().unwrap().total_wait_us()
                    + ctx.tracer().metrics().unwrap().total_transfer_us();
                let _ = ctx.recv(0, 5); // pure stash hit
                let m = ctx.tracer().metrics().unwrap();
                assert_eq!(
                    m.total_wait_us() + m.total_transfer_us(),
                    waits_before,
                    "a stash hit must not add blocked time"
                );
            }
        });
        // Exactly one receive (tag 6) may have blocked.
        let n_wait_events = trace.ranks[1]
            .events
            .iter()
            .filter(|e| matches!(e.kind, pselinv_trace::EventKind::Wait { .. }))
            .count();
        assert!(n_wait_events <= 1, "{n_wait_events} wait events for one blocking recv");
    }

    #[test]
    fn traced_stash_undo_matches_volume_counters() {
        // recv_any + stash_back must leave both the volume counters and the
        // trace metrics as if the message had never been received.
        let (_, volumes, trace) = run_traced(2, "unit/stash", |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 5, vec![1.0]);
                ctx.send(1, 6, vec![2.0]);
            } else {
                let m = ctx.recv_any();
                ctx.stash_back(m);
                let _ = ctx.recv(0, 5);
                let _ = ctx.recv(0, 6);
            }
        });
        use pselinv_trace::CollKind;
        assert_eq!(volumes[1].msgs_received, 2);
        assert_eq!(trace.ranks[1].metrics.kind(CollKind::Other).msgs_recv, 2);
        assert_eq!(trace.ranks[1].metrics.kind(CollKind::Other).bytes_recv, volumes[1].received);
    }

    #[test]
    fn recv_timeout_hits_and_expires() {
        let (results, _) = run(2, |ctx| {
            if ctx.rank() == 0 {
                // Nothing sent under tag 9: this receive must time out.
                let err = ctx
                    .recv_timeout(1, 9, Duration::from_millis(60))
                    .expect_err("no sender: must time out");
                assert_eq!(err.src, 1);
                assert_eq!(err.tag, 9);
                assert!(err.waited >= Duration::from_millis(60));
                // Tell rank 1 we are done probing, then take its message.
                ctx.send(1, 1, vec![0.0]);
                ctx.recv_timeout(1, 2, Duration::from_secs(10)).expect("sent: must match").to_vec()
            } else {
                let _ = ctx.recv(0, 1);
                ctx.send(0, 2, vec![5.0]);
                vec![]
            }
        });
        assert_eq!(results[0], vec![5.0]);
    }

    #[test]
    fn send_seq_recv_seq_roundtrip_without_faults() {
        // The masked pair must behave exactly like send/recv when no fault
        // plan is installed, including across repeated uses of one tag.
        let (results, volumes) = run(2, |ctx| {
            if ctx.rank() == 0 {
                for k in 0..5 {
                    ctx.send_seq(1, 7, vec![k as f64]);
                }
                vec![]
            } else {
                (0..5).map(|_| ctx.recv_seq(0, 7)[0]).collect::<Vec<f64>>()
            }
        });
        assert_eq!(results[1], vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(volumes[0].msgs_sent, 5);
        assert_eq!(volumes[1].msgs_received, 5);
        assert_eq!(volumes[1].received, 5 * 8);
    }

    #[test]
    fn find_cycle_detects_rings_and_chains() {
        let b = |src: usize| Some(BlockedOn { src: Some(src), tag: Some(0) });
        // 0 -> 1 -> 2 -> 0 ring plus a rank 3 chained onto it.
        let blocked = vec![b(1), b(2), b(0), b(0)];
        let done = vec![false; 4];
        let cycle = find_cycle(&blocked, &done).expect("ring must be found");
        assert_eq!(cycle.len(), 3);
        assert!(!cycle.contains(&3), "the chained rank is not part of the cycle");
        // A chain with no back edge has no cycle.
        let blocked = vec![b(1), b(2), None, None];
        assert!(find_cycle(&blocked, &done).is_none());
        // A "cycle" through a finished rank is not a deadlock.
        let blocked = vec![b(1), b(0), None, None];
        let done = vec![false, true, false, false];
        assert!(find_cycle(&blocked, &done).is_none());
        // Wildcard receives contribute no edge.
        let blocked = vec![Some(BlockedOn { src: None, tag: None }), b(0), None, None];
        let done = vec![false; 4];
        assert!(find_cycle(&blocked, &done).is_none());
    }

    #[test]
    fn stall_diagnostic_display_names_triples() {
        let d = StallDiagnostic {
            blocked: vec![
                (0, BlockedOn { src: Some(1), tag: Some(7) }),
                (2, BlockedOn { src: None, tag: None }),
            ],
            done: vec![3],
            cycle: Some(vec![0, 1]),
            stashes: vec![(1, vec![(0, 9)])],
            trace_tails: vec![],
            stalled_for: Duration::from_millis(5200),
        };
        let text = d.to_string();
        assert!(text.contains("rank 0 blocked on recv(src=1, tag=7)"), "{text}");
        assert!(text.contains("rank 2 blocked on recv(any)"), "{text}");
        assert!(text.contains("deadlock cycle: 0 -> 1 -> 0"), "{text}");
        assert!(text.contains("rank 1 stash: [(src=0, tag=9)]"), "{text}");
        assert!(text.contains("finished ranks: 3"), "{text}");
    }
}
