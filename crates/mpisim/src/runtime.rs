//! Ranks, mailboxes and tagged point-to-point messaging.

use crossbeam::channel::{unbounded, Receiver, Sender};

/// A tagged message between ranks. Payloads are `f64` slices because every
/// PSelInv message is a dense block (plus small headers encoded in the tag).
#[derive(Clone, Debug, PartialEq)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// User tag (encodes supernode / block / phase in `pselinv-dist`).
    pub tag: u64,
    /// Payload.
    pub data: Vec<f64>,
}

impl Message {
    /// Payload size in bytes.
    pub fn bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f64>()) as u64
    }
}

/// Per-rank communication volume, returned after a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankVolume {
    /// Bytes sent by this rank.
    pub sent: u64,
    /// Bytes received by this rank.
    pub received: u64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Messages received.
    pub msgs_received: u64,
}

/// The per-rank handle: identity, mailbox and counters.
pub struct RankCtx {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Message>>,
    inbox: Receiver<Message>,
    /// Out-of-order stash for `(src, tag)` matching.
    stash: Vec<Message>,
    volume: RankVolume,
}

impl RankCtx {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the universe.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Buffered non-blocking send (≈ `MPI_Isend` whose buffer is owned by
    /// the runtime — the call returns immediately).
    pub fn send(&mut self, dst: usize, tag: u64, data: Vec<f64>) {
        assert!(dst < self.size, "destination {dst} out of range");
        assert_ne!(dst, self.rank, "self-sends are not modeled (use local data)");
        let msg = Message { src: self.rank, tag, data };
        self.volume.sent += msg.bytes();
        self.volume.msgs_sent += 1;
        self.senders[dst].send(msg).expect("receiver hung up");
    }

    /// Blocking receive matching `(src, tag)`, buffering any other arrivals
    /// (≈ `MPI_Recv` with out-of-order message stashing).
    pub fn recv(&mut self, src: usize, tag: u64) -> Vec<f64> {
        if let Some(i) = self.stash.iter().position(|m| m.src == src && m.tag == tag) {
            let m = self.stash.swap_remove(i);
            return self.account_recv(m).data;
        }
        loop {
            let m = self.inbox.recv().expect("all senders hung up while receiving");
            if m.src == src && m.tag == tag {
                return self.account_recv(m).data;
            }
            self.stash.push(m);
        }
    }

    /// Blocking wildcard receive (stashed messages first).
    pub fn recv_any(&mut self) -> Message {
        if let Some(m) = self.stash.pop() {
            return self.account_recv(m);
        }
        let m = self.inbox.recv().expect("all senders hung up while receiving");
        self.account_recv(m)
    }

    /// Non-blocking wildcard receive.
    pub fn try_recv_any(&mut self) -> Option<Message> {
        if let Some(m) = self.stash.pop() {
            return Some(self.account_recv(m));
        }
        match self.inbox.try_recv() {
            Ok(m) => Some(self.account_recv(m)),
            Err(_) => None,
        }
    }

    /// Non-blocking match of `(src, tag)`: drains any queued arrivals into
    /// the stash and returns the payload if a matching message is present
    /// (≈ `MPI_Iprobe` + receive). Used by the request API.
    pub fn try_match(&mut self, src: usize, tag: u64) -> Option<Vec<f64>> {
        while let Ok(m) = self.inbox.try_recv() {
            self.stash.push(m);
        }
        let i = self.stash.iter().position(|m| m.src == src && m.tag == tag)?;
        let m = self.stash.swap_remove(i);
        Some(self.account_recv(m).data)
    }

    /// Returns a message taken with [`RankCtx::recv_any`] to the stash
    /// (un-receives it), reversing its accounting. Used by `wait_any` when
    /// an arrival matches none of the posted requests yet.
    pub fn stash_back(&mut self, m: Message) {
        self.volume.received -= m.bytes();
        self.volume.msgs_received -= 1;
        self.stash.push(m);
    }

    fn account_recv(&mut self, m: Message) -> Message {
        self.volume.received += m.bytes();
        self.volume.msgs_received += 1;
        m
    }

    /// Counters so far.
    pub fn volume(&self) -> RankVolume {
        self.volume
    }
}

/// Runs `f` on `nranks` rank threads and returns each rank's result plus
/// its communication volume.
///
/// Panics in any rank propagate (the run aborts with that panic).
pub fn run<R, F>(nranks: usize, f: F) -> (Vec<R>, Vec<RankVolume>)
where
    R: Send,
    F: Fn(&mut RankCtx) -> R + Sync,
{
    assert!(nranks > 0);
    let mut senders = Vec::with_capacity(nranks);
    let mut receivers = Vec::with_capacity(nranks);
    for _ in 0..nranks {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(r);
    }
    let f = &f;
    let handles: Vec<(R, RankVolume)> = std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(nranks);
        for (rank, inbox) in receivers.into_iter().enumerate() {
            let senders = senders.clone();
            joins.push(scope.spawn(move || {
                let mut ctx = RankCtx {
                    rank,
                    size: nranks,
                    senders,
                    inbox,
                    stash: Vec::new(),
                    volume: RankVolume::default(),
                };
                let r = f(&mut ctx);
                (r, ctx.volume)
            }));
        }
        joins.into_iter().map(|j| j.join().expect("rank thread panicked")).collect()
    });
    let mut results = Vec::with_capacity(nranks);
    let mut volumes = Vec::with_capacity(nranks);
    for (r, v) in handles {
        results.push(r);
        volumes.push(v);
    }
    (results, volumes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong() {
        let (results, volumes) = run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, vec![1.0, 2.0, 3.0]);
                ctx.recv(1, 8)
            } else {
                let d = ctx.recv(0, 7);
                let doubled: Vec<f64> = d.iter().map(|x| x * 2.0).collect();
                ctx.send(0, 8, doubled.clone());
                doubled
            }
        });
        assert_eq!(results[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(volumes[0].sent, 24);
        assert_eq!(volumes[0].received, 24);
        assert_eq!(volumes[1].msgs_sent, 1);
    }

    #[test]
    fn out_of_order_tag_matching() {
        let (results, _) = run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![1.0]);
                ctx.send(1, 2, vec![2.0]);
                ctx.send(1, 3, vec![3.0]);
                vec![]
            } else {
                // receive in reverse order
                let c = ctx.recv(0, 3);
                let b = ctx.recv(0, 2);
                let a = ctx.recv(0, 1);
                vec![a[0], b[0], c[0]]
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn recv_any_drains_everything() {
        let n = 5;
        let (results, _) = run(n, move |ctx| {
            if ctx.rank() == 0 {
                let mut total = 0.0;
                for _ in 0..(n - 1) {
                    let m = ctx.recv_any();
                    total += m.data[0];
                }
                total
            } else {
                ctx.send(0, ctx.rank() as u64, vec![ctx.rank() as f64]);
                0.0
            }
        });
        assert_eq!(results[0], (1..5).sum::<usize>() as f64);
    }

    #[test]
    fn try_recv_any_polls() {
        let (results, _) = run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, vec![42.0]);
                0.0
            } else {
                loop {
                    if let Some(m) = ctx.try_recv_any() {
                        return m.data[0];
                    }
                    std::thread::yield_now();
                }
            }
        });
        assert_eq!(results[1], 42.0);
    }

    #[test]
    fn many_ranks_all_to_one_volume() {
        let n = 8;
        let (_, volumes) = run(n, move |ctx| {
            if ctx.rank() == 0 {
                for _ in 0..(n - 1) {
                    ctx.recv_any();
                }
            } else {
                ctx.send(0, 0, vec![0.0; 100]);
            }
        });
        assert_eq!(volumes[0].received, (n as u64 - 1) * 800);
        assert_eq!(volumes[0].sent, 0);
        for v in &volumes[1..] {
            assert_eq!(v.sent, 800);
        }
    }

    #[test]
    fn stress_unordered_interleaving() {
        // Each rank sends 50 tagged messages to every other rank; everybody
        // receives them in a scrambled order.
        let n = 4;
        let (results, _) = run(n, move |ctx| {
            let me = ctx.rank();
            for dst in 0..n {
                if dst != me {
                    for k in 0..50u64 {
                        ctx.send(dst, k, vec![(me * 1000) as f64 + k as f64]);
                    }
                }
            }
            let mut sum = 0.0;
            for src in (0..n).rev() {
                if src != me {
                    for k in (0..50u64).rev() {
                        let d = ctx.recv(src, k);
                        assert_eq!(d[0], (src * 1000) as f64 + k as f64);
                        sum += d[0];
                    }
                }
            }
            sum
        });
        assert!(results.iter().all(|&s| s > 0.0));
    }
}
