//! A thread-based asynchronous message-passing runtime.
//!
//! MPI is unavailable in this reproduction, so every "rank" is an OS thread
//! with a lock-free mailbox. The API mirrors the subset of MPI semantics
//! PSelInv relies on:
//!
//! * buffered non-blocking sends ([`RankCtx::send`] ≈ `MPI_Isend` with the
//!   buffer handed off — the call never blocks);
//! * blocking tagged receives with out-of-order matching
//!   ([`RankCtx::recv`] ≈ `MPI_Recv` on `(source, tag)`);
//! * wildcard receives ([`RankCtx::recv_any`] ≈ `MPI_Recv` on
//!   `MPI_ANY_SOURCE`/`MPI_ANY_TAG`) and non-blocking probes
//!   ([`RankCtx::try_recv_any`] ≈ `MPI_Iprobe` + receive);
//! * per-rank send/receive byte counters, the measurement behind the
//!   paper's communication-volume tables.
//!
//! [`collectives`] layers the paper's tree-routed restricted collectives on
//! top of these point-to-point primitives, and [`grid`] provides the 2-D
//! block-cyclic process grid of PSelInv.

pub mod collectives;
pub mod grid;
pub mod nb;
pub mod payload;
pub mod reliable;
pub mod requests;
pub mod runtime;
pub mod telemetry;

pub use grid::Grid2D;
pub use nb::{TreeBcastNb, TreeReduceNb};
pub use payload::{IntoPayload, Payload};
pub use reliable::{Recovery, RecoveryConfig, ReliableConfig};
pub use requests::{tree_barrier, wait_any, RecvRequest, BARRIER_DOWN_LANE, BARRIER_UP_LANE};
pub use runtime::{
    run, run_traced, try_run, try_run_recover, try_run_traced, BlockedOn, Message, RankCtx,
    RankVolume, RecoverOutcome, RecoveryReport, RecvTimeout, RunError, RunOptions, StallDiagnostic,
    ACK_LANE, JOIN_LANE, LANE_MASK, NO_SEQ, REPAIR_LANE,
};
pub use telemetry::{Telemetry, TelemetrySample};
