//! Zero-copy message payloads.
//!
//! Every PSelInv message body is a dense `f64` block. A [`Payload`] wraps
//! it in an `Arc<[f64]>`, so forwarding a message along a collective tree
//! (or duplicating / holding it back under fault injection) clones a
//! pointer, never the buffer. The [`IntoPayload`] conversion reports how
//! many bytes each producer actually copied, which is what feeds the
//! runtime's bytes-copied counter: a broadcast that packs its buffer once
//! at the root and forwards by reference shows one payload's worth of
//! copies regardless of tree size.
//!
//! Ownership rule: a payload is immutable. A receiver that wants to mutate
//! the data must copy out first (`to_vec`), or wrap the buffer in a
//! copy-on-write `Mat` (`pselinv_dense::Mat::from_shared`) whose first
//! write detaches it — either way no mutation can alias a buffer another
//! rank still holds.

use std::sync::Arc;

/// An immutable, reference-counted message payload. Cloning is O(1) and
/// shares the buffer.
#[derive(Clone, Debug)]
pub struct Payload(Arc<[f64]>);

impl Payload {
    /// An empty payload (no allocation beyond the `Arc` header).
    pub fn empty() -> Self {
        Self(Arc::from(Vec::new()))
    }

    /// Wraps an already-shared buffer; never copies.
    pub fn from_arc(data: Arc<[f64]>) -> Self {
        Self(data)
    }

    /// The underlying shared buffer; never copies.
    pub fn into_arc(self) -> Arc<[f64]> {
        self.0
    }

    /// A reference to the underlying shared buffer.
    pub fn as_arc(&self) -> &Arc<[f64]> {
        &self.0
    }

    /// Copies the contents into a fresh `Vec` (an explicit, visible copy).
    pub fn to_vec(&self) -> Vec<f64> {
        self.0.to_vec()
    }

    /// Payload size in bytes.
    pub fn bytes(&self) -> u64 {
        (self.0.len() * std::mem::size_of::<f64>()) as u64
    }
}

impl std::ops::Deref for Payload {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        &self.0
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.0[..] == other.0[..]
    }
}

impl PartialEq<Vec<f64>> for Payload {
    fn eq(&self, other: &Vec<f64>) -> bool {
        self.0[..] == other[..]
    }
}

impl PartialEq<[f64]> for Payload {
    fn eq(&self, other: &[f64]) -> bool {
        self.0[..] == *other
    }
}

impl PartialEq<Payload> for Vec<f64> {
    fn eq(&self, other: &Payload) -> bool {
        self[..] == other.0[..]
    }
}

impl From<Vec<f64>> for Payload {
    fn from(v: Vec<f64>) -> Self {
        Self(Arc::from(v))
    }
}

impl From<Arc<[f64]>> for Payload {
    fn from(a: Arc<[f64]>) -> Self {
        Self(a)
    }
}

impl From<&[f64]> for Payload {
    fn from(s: &[f64]) -> Self {
        Self(Arc::from(s))
    }
}

/// Conversion into a [`Payload`] that accounts for the bytes it copied.
///
/// Implementors return `(payload, bytes_copied)`: zero for producers that
/// hand over an already-shared buffer ([`Payload`], `Arc<[f64]>`), the full
/// buffer size for producers that must materialize one (`Vec<f64>`,
/// `&[f64]`). [`RankCtx::send`](crate::RankCtx::send) feeds the copied
/// count straight into [`RankVolume::copied`](crate::RankVolume::copied).
pub trait IntoPayload {
    /// Converts `self`, reporting how many bytes the conversion copied.
    fn into_payload(self) -> (Payload, u64);
}

impl IntoPayload for Payload {
    fn into_payload(self) -> (Payload, u64) {
        (self, 0)
    }
}

impl IntoPayload for Arc<[f64]> {
    fn into_payload(self) -> (Payload, u64) {
        (Payload(self), 0)
    }
}

impl IntoPayload for Vec<f64> {
    fn into_payload(self) -> (Payload, u64) {
        // `Arc::from(Vec)` moves the elements into a fresh allocation that
        // carries the refcount header: one full-buffer copy.
        let bytes = (self.len() * std::mem::size_of::<f64>()) as u64;
        (Payload(Arc::from(self)), bytes)
    }
}

impl IntoPayload for &[f64] {
    fn into_payload(self) -> (Payload, u64) {
        let bytes = std::mem::size_of_val(self) as u64;
        (Payload(Arc::from(self)), bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_conversion_counts_one_copy() {
        let (p, copied) = vec![1.0, 2.0, 3.0].into_payload();
        assert_eq!(copied, 24);
        assert_eq!(p.bytes(), 24);
        assert_eq!(p, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn shared_conversions_are_free() {
        let (p, copied) = vec![4.0; 8].into_payload();
        assert_eq!(copied, 64);
        let (q, forwarded) = p.clone().into_payload();
        assert_eq!(forwarded, 0);
        assert!(Arc::ptr_eq(p.as_arc(), q.as_arc()));
        let (r, from_arc) = p.clone().into_arc().into_payload();
        assert_eq!(from_arc, 0);
        assert_eq!(r, q);
    }

    #[test]
    fn deref_and_eq_match_slice_semantics() {
        let p = Payload::from(vec![1.0, 2.0]);
        assert_eq!(p.len(), 2);
        assert_eq!(p[1], 2.0);
        assert_eq!(p.iter().sum::<f64>(), 3.0);
        assert_eq!(p, *[1.0, 2.0].as_slice());
        assert!(Payload::empty().is_empty());
    }
}
