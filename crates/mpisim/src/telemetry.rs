//! Live run telemetry: a sampler thread that snapshots per-rank gauges
//! while a run executes.
//!
//! A [`Telemetry`] handle is a cloneable ring buffer. Passing one in
//! [`RunOptions::telemetry`](crate::RunOptions) makes [`run_impl`] spawn a
//! sampler thread alongside the rank threads; on its cadence it reads each
//! rank's gauges — blocked-on state, inbox depth, stash size, outstanding
//! nonblocking collectives, bytes sent/copied, and the progress counter —
//! and appends one [`TelemetrySample`] per rank to the ring.
//!
//! The cost model mirrors the trace layer: with telemetry off (the
//! default) the hot send/receive path pays exactly one predictable branch
//! per potential gauge update and performs no allocation and takes no
//! lock. With telemetry on, rank threads touch only relaxed atomics on the
//! hot path (the channel's own synchronization orders inbox-depth updates);
//! the sampler thread owns all locking and allocation.
//!
//! Exports: [`Telemetry::to_jsonl`] for a line-per-sample time series and
//! [`Telemetry::prometheus`] for a Prometheus-style text rendition of the
//! latest sample per rank.

use crate::runtime::{BlockedOn, Shared};
use pselinv_trace::Json;
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One per-rank gauge snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetrySample {
    /// Microseconds since the run started.
    pub t_us: u64,
    /// The sampled rank.
    pub rank: usize,
    /// What the rank was blocked on, if it was blocked in a receive.
    pub blocked: Option<BlockedOn>,
    /// Messages queued in the rank's inbox channel.
    pub inbox: usize,
    /// Messages parked in the out-of-order stash.
    pub stash: usize,
    /// Nonblocking collectives in flight (the async engine's window).
    pub outstanding: usize,
    /// Total bytes sent so far.
    pub sent_bytes: u64,
    /// Total payload bytes physically copied so far.
    pub copied_bytes: u64,
    /// The rank's progress counter (sends + inbox pops so far).
    pub progress: u64,
    /// Intra-rank pool tasks executing at the sampling instant (0 both
    /// when the pool is idle and when the run never used a pool).
    pub pool_busy: usize,
}

impl TelemetrySample {
    /// The sample as one ordered JSON object (one JSONL line).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("t_us", self.t_us.into()),
            ("rank", self.rank.into()),
            ("blocked", self.blocked.map_or(Json::Null, |b| Json::Str(b.to_string()))),
            ("inbox", self.inbox.into()),
            ("stash", self.stash.into()),
            ("outstanding", self.outstanding.into()),
            ("sent_bytes", self.sent_bytes.into()),
            ("copied_bytes", self.copied_bytes.into()),
            ("progress", self.progress.into()),
            ("pool_busy", self.pool_busy.into()),
        ])
    }
}

#[derive(Debug)]
struct TelemetryInner {
    every: Duration,
    capacity: usize,
    ring: Mutex<VecDeque<TelemetrySample>>,
}

/// Cloneable handle to a bounded ring of [`TelemetrySample`]s.
///
/// Create one, clone it into [`RunOptions::telemetry`](crate::RunOptions),
/// and read [`Telemetry::samples`] during or after the run.
#[derive(Clone, Debug)]
pub struct Telemetry(Arc<TelemetryInner>);

impl Telemetry {
    /// A handle sampling every `every`, keeping the newest `capacity`
    /// samples (older ones are dropped from the front of the ring).
    pub fn new(every: Duration, capacity: usize) -> Self {
        Telemetry(Arc::new(TelemetryInner {
            every,
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
        }))
    }

    /// The sampling cadence.
    pub fn interval(&self) -> Duration {
        self.0.every
    }

    /// A snapshot of the ring contents, oldest first.
    pub fn samples(&self) -> Vec<TelemetrySample> {
        self.0.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Appends a sampling round, evicting the oldest samples past capacity.
    pub(crate) fn push(&self, batch: Vec<TelemetrySample>) {
        let mut ring = self.0.ring.lock().unwrap();
        ring.extend(batch);
        while ring.len() > self.0.capacity {
            ring.pop_front();
        }
    }

    /// The whole ring as JSON Lines: one object per sample, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in self.0.ring.lock().unwrap().iter() {
            out.push_str(&s.to_json().to_string_compact());
            out.push('\n');
        }
        out
    }

    /// Prometheus-style text exposition of the latest sample per rank.
    pub fn prometheus(&self) -> String {
        let ring = self.0.ring.lock().unwrap();
        // Latest sample per rank (ring is in time order).
        let mut latest: Vec<&TelemetrySample> = Vec::new();
        for s in ring.iter() {
            if s.rank >= latest.len() {
                latest.resize(s.rank + 1, s);
            }
            latest[s.rank] = s;
        }
        type Gauge = fn(&TelemetrySample) -> u64;
        let gauges: [(&str, Gauge); 8] = [
            ("inbox_depth", |s| s.inbox as u64),
            ("stash_depth", |s| s.stash as u64),
            ("outstanding", |s| s.outstanding as u64),
            ("sent_bytes", |s| s.sent_bytes),
            ("copied_bytes", |s| s.copied_bytes),
            ("progress", |s| s.progress),
            ("blocked", |s| u64::from(s.blocked.is_some())),
            ("pool_busy", |s| s.pool_busy as u64),
        ];
        let mut out = String::new();
        for (name, get) in gauges {
            out.push_str(&format!("# TYPE pselinv_{name} gauge\n"));
            for s in &latest {
                out.push_str(&format!("pselinv_{name}{{rank=\"{}\"}} {}\n", s.rank, get(s)));
            }
        }
        out
    }
}

/// Takes one gauge snapshot of every rank.
fn snapshot(shared: &Shared, nranks: usize, t_us: u64) -> Vec<TelemetrySample> {
    (0..nranks)
        .map(|rank| {
            let st = &shared.states[rank];
            TelemetrySample {
                t_us,
                rank,
                blocked: *st.blocked.lock().unwrap(),
                inbox: st.inbox_len.load(Ordering::Relaxed),
                stash: st.stash.lock().unwrap().len(),
                outstanding: st.outstanding.load(Ordering::Relaxed),
                sent_bytes: st.sent_bytes.load(Ordering::Relaxed),
                copied_bytes: st.copied_bytes.load(Ordering::Relaxed),
                progress: st.progress.load(Ordering::Relaxed),
                pool_busy: st.pool_busy.load(Ordering::Relaxed),
            }
        })
        .collect()
}

/// Sampler thread body: snapshots every `tel.interval()` until the run
/// finishes or aborts, then takes one final snapshot so even runs shorter
/// than the cadence yield at least one sample per rank.
pub(crate) fn sampler(shared: &Shared, nranks: usize, tel: &Telemetry, epoch: Instant) {
    let every = tel.interval();
    let mut last = Instant::now();
    loop {
        let done = shared.abort.load(Ordering::Acquire)
            || shared.finished.load(Ordering::Acquire) >= nranks;
        if done {
            break;
        }
        if last.elapsed() >= every {
            tel.push(snapshot(shared, nranks, epoch.elapsed().as_micros() as u64));
            last = Instant::now();
        }
        // The condvar is notified on finish/abort; the timeout bounds the
        // sampling latency in between.
        let guard = shared.cv_lock.lock().unwrap();
        let wait = every.saturating_sub(last.elapsed()).max(Duration::from_micros(200));
        let _unused = shared.cv.wait_timeout(guard, wait).unwrap();
    }
    tel.push(snapshot(shared, nranks, epoch.elapsed().as_micros() as u64));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rank: usize, t_us: u64) -> TelemetrySample {
        TelemetrySample {
            t_us,
            rank,
            blocked: None,
            inbox: 1,
            stash: 2,
            outstanding: 3,
            sent_bytes: 400,
            copied_bytes: 50,
            progress: 6,
            pool_busy: 0,
        }
    }

    #[test]
    fn ring_evicts_oldest_past_capacity() {
        let tel = Telemetry::new(Duration::from_millis(1), 3);
        tel.push(vec![sample(0, 10), sample(1, 10)]);
        tel.push(vec![sample(0, 20), sample(1, 20)]);
        let got = tel.samples();
        assert_eq!(got.len(), 3);
        assert_eq!((got[0].rank, got[0].t_us), (1, 10));
        assert_eq!((got[2].rank, got[2].t_us), (1, 20));
    }

    #[test]
    fn jsonl_lines_parse_and_roundtrip_fields() {
        let tel = Telemetry::new(Duration::from_millis(1), 16);
        let mut s = sample(2, 123);
        s.blocked = Some(BlockedOn { src: Some(1), tag: Some(7) });
        tel.push(vec![sample(0, 123), s]);
        let jsonl = tel.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let v = Json::parse(lines[1]).unwrap();
        assert_eq!(v.get("rank").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("sent_bytes").unwrap().as_f64(), Some(400.0));
        assert_eq!(v.get("blocked").unwrap().as_str(), Some("recv(src=1, tag=7)"));
        let v0 = Json::parse(lines[0]).unwrap();
        assert_eq!(v0.get("blocked"), Some(&Json::Null));
    }

    #[test]
    fn prometheus_reports_latest_sample_per_rank() {
        let tel = Telemetry::new(Duration::from_millis(1), 16);
        tel.push(vec![sample(0, 10), sample(1, 10)]);
        let mut newer = sample(1, 20);
        newer.inbox = 9;
        tel.push(vec![newer]);
        let text = tel.prometheus();
        assert!(text.contains("# TYPE pselinv_inbox_depth gauge\n"));
        assert!(text.contains("pselinv_inbox_depth{rank=\"0\"} 1\n"));
        assert!(text.contains("pselinv_inbox_depth{rank=\"1\"} 9\n"));
        assert!(text.contains("pselinv_blocked{rank=\"0\"} 0\n"));
    }
}
