//! The 2-D block-cyclic process grid of PSelInv / SuperLU_DIST.

/// A virtual `Pr × Pc` process grid. Ranks are laid out row-major
/// (`rank = prow * pc + pcol`), matching SuperLU_DIST, so that consecutive
/// ranks fill a process row — the property the paper's locality argument
/// relies on ("most MPI implementations assign ranks so that consecutive
/// ranks first fill up a node").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grid2D {
    /// Number of process rows.
    pub pr: usize,
    /// Number of process columns.
    pub pc: usize,
}

impl Grid2D {
    /// Creates a `pr × pc` grid.
    pub fn new(pr: usize, pc: usize) -> Self {
        assert!(pr > 0 && pc > 0);
        Self { pr, pc }
    }

    /// A near-square grid for `p` ranks (`pr ≤ pc`, `pr·pc = p`), the shape
    /// the paper's experiments use (e.g. 46×46 = 2,116).
    pub fn square_for(p: usize) -> Self {
        assert!(p > 0);
        let mut pr = (p as f64).sqrt() as usize;
        while pr > 1 && !p.is_multiple_of(pr) {
            pr -= 1;
        }
        Self { pr, pc: p / pr }
    }

    /// Total number of ranks.
    pub fn size(&self) -> usize {
        self.pr * self.pc
    }

    /// Rank at grid position `(prow, pcol)`.
    pub fn rank_of(&self, prow: usize, pcol: usize) -> usize {
        debug_assert!(prow < self.pr && pcol < self.pc);
        prow * self.pc + pcol
    }

    /// Grid row of `rank`.
    pub fn row_of(&self, rank: usize) -> usize {
        rank / self.pc
    }

    /// Grid column of `rank`.
    pub fn col_of(&self, rank: usize) -> usize {
        rank % self.pc
    }

    /// Owner rank of the block at supernodal position `(i, j)` under the
    /// cyclic mapping: `(i mod pr, j mod pc)`.
    pub fn owner_of_block(&self, i: usize, j: usize) -> usize {
        self.rank_of(i % self.pr, j % self.pc)
    }

    /// Process row owning supernodal row `i`.
    pub fn prow_of_block(&self, i: usize) -> usize {
        i % self.pr
    }

    /// Process column owning supernodal column `j`.
    pub fn pcol_of_block(&self, j: usize) -> usize {
        j % self.pc
    }

    /// All ranks in process column `pcol`.
    pub fn col_group(&self, pcol: usize) -> Vec<usize> {
        (0..self.pr).map(|r| self.rank_of(r, pcol)).collect()
    }

    /// All ranks in process row `prow`.
    pub fn row_group(&self, prow: usize) -> Vec<usize> {
        (0..self.pc).map(|c| self.rank_of(prow, c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_layout() {
        let g = Grid2D::new(4, 3);
        assert_eq!(g.size(), 12);
        assert_eq!(g.rank_of(0, 0), 0);
        assert_eq!(g.rank_of(0, 2), 2);
        assert_eq!(g.rank_of(1, 0), 3);
        for rank in 0..12 {
            assert_eq!(g.rank_of(g.row_of(rank), g.col_of(rank)), rank);
        }
    }

    #[test]
    fn cyclic_block_mapping() {
        let g = Grid2D::new(2, 3);
        assert_eq!(g.owner_of_block(0, 0), 0);
        assert_eq!(g.owner_of_block(2, 3), 0);
        assert_eq!(g.owner_of_block(5, 4), g.rank_of(1, 1));
    }

    #[test]
    fn groups() {
        let g = Grid2D::new(3, 2);
        assert_eq!(g.col_group(1), vec![1, 3, 5]);
        assert_eq!(g.row_group(2), vec![4, 5]);
    }

    #[test]
    fn square_for_perfect_squares_and_others() {
        assert_eq!(Grid2D::square_for(2116), Grid2D::new(46, 46));
        assert_eq!(Grid2D::square_for(12), Grid2D::new(3, 4));
        assert_eq!(Grid2D::square_for(7), Grid2D::new(1, 7));
        assert_eq!(Grid2D::square_for(1), Grid2D::new(1, 1));
    }
}
