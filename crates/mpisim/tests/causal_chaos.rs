//! Causal-stamp proptests under chaos: whatever a crash-free fault
//! schedule does to the wire (delay, jitter, duplication, reordering),
//! the Lamport clocks and `(sender, send idx)` provenance recorded in
//! the trace must still describe a consistent happens-before order:
//!
//! * per rank, recorded message-event clocks are strictly increasing in
//!   program order;
//! * along every sequenced `(src, dst, tag)` channel, messages are
//!   consumed in send order — send indices and matched send clocks are
//!   strictly increasing in consumption order;
//! * every consumed `(sender, idx)` pair is consumed exactly once
//!   (duplicate deliveries are masked, and their accounting undone).

use proptest::prelude::*;
use pselinv_chaos::{FaultPlan, FaultSpec};
use pselinv_mpisim::collectives::{tree_bcast, tree_reduce};
use pselinv_mpisim::{try_run_traced, RankCtx, RunOptions};
use pselinv_trace::{EventKind, Trace};
use pselinv_trees::{TreeBuilder, TreeScheme};
use std::collections::BTreeMap;
use std::time::Duration;

fn chaos_opts(plan: FaultPlan) -> RunOptions {
    RunOptions {
        watchdog: Some(Duration::from_secs(30)),
        poll: Duration::from_millis(5),
        faults: Some(plan),
        telemetry: None,
        ..RunOptions::default()
    }
}

/// Raw happens-before checks straight off the trace (no profile crate
/// involved — this guards the stamps themselves, not the analysis).
fn assert_causal_stamps(trace: &Trace) {
    // Gather every send, keyed by (sender, idx).
    let mut sends: BTreeMap<(usize, u64), (u64, usize, u64)> = BTreeMap::new();
    for r in &trace.ranks {
        for e in &r.events {
            if let EventKind::MsgSend { tag, clock, idx, peer, .. } = e.kind {
                let prev = sends.insert((r.rank, idx), (clock, peer, tag));
                assert!(prev.is_none(), "rank {} reused send idx {idx}", r.rank);
            }
        }
    }

    let mut consumed: BTreeMap<(usize, u64), usize> = BTreeMap::new();
    for r in &trace.ranks {
        let mut last_clock: Option<u64> = None;
        // Consumption order per sequenced channel (src, tag).
        let mut chan_last: BTreeMap<(usize, u64), (u64, u64)> = BTreeMap::new();
        for e in &r.events {
            match e.kind {
                EventKind::MsgSend { clock, .. } | EventKind::MsgRecv { clock, .. } => {
                    if let Some(prev) = last_clock {
                        assert!(clock > prev, "rank {}: clock {clock} not after {prev}", r.rank);
                    }
                    last_clock = Some(clock);
                }
                _ => {}
            }
            if let EventKind::MsgRecv { peer, tag, clock, idx, .. } = e.kind {
                let (send_clock, send_peer, send_tag) = *sends
                    .get(&(peer, idx))
                    .unwrap_or_else(|| panic!("recv of unknown send ({peer}, {idx})"));
                assert_eq!(send_peer, r.rank, "send ({peer}, {idx}) addressed elsewhere");
                assert_eq!(send_tag, tag, "send ({peer}, {idx}) tag mismatch");
                assert!(clock > send_clock, "recv clock {clock} not after send clock {send_clock}");
                if let Some(prev) = consumed.insert((peer, idx), r.rank) {
                    panic!("send ({peer}, {idx}) consumed twice (ranks {prev} and {})", r.rank);
                }
                // FIFO per sequenced channel: later consumption on the same
                // (src, tag) channel means a later send.
                if let Some((pidx, pclock)) = chan_last.insert((peer, tag), (idx, send_clock)) {
                    assert!(
                        idx > pidx && send_clock > pclock,
                        "channel ({peer}, tag {tag}): send idx {idx} (clk {send_clock}) \
                         consumed after idx {pidx} (clk {pclock})"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn lamport_stamps_survive_crash_free_chaos(
        seed in 0u64..1_000_000,
        scheme_i in 0usize..4,
        nranks in 4usize..9,
        delay in 0u64..60,
        jitter in 0u64..60,
        dup in 0u16..600,
        reorder in 0u16..600,
        payload_len in 1usize..17,
    ) {
        let scheme = [
            TreeScheme::Flat,
            TreeScheme::Binary,
            TreeScheme::ShiftedBinary,
            TreeScheme::RandomPerm,
        ][scheme_i];
        let receivers: Vec<usize> = (1..nranks).collect();
        let tree = TreeBuilder::new(scheme, 0x5e11).build(0, &receivers, seed);
        let tree = &tree;
        let payload: Vec<f64> = (0..payload_len).map(|i| seed as f64 + i as f64 * 0.5).collect();
        let payload = &payload;

        let plan = FaultPlan::new(seed ^ 0x00c1_0c4e).with_default(FaultSpec {
            delay_us: delay,
            jitter_us: jitter,
            duplicate_permille: dup,
            reorder_permille: reorder,
            ..FaultSpec::default()
        });
        let (_, _, trace) = try_run_traced(nranks, "causal-chaos", &chaos_opts(plan), move |ctx: &mut RankCtx| {
            let me = ctx.rank();
            let b = tree_bcast(ctx, tree, 11, (me == 0).then(|| payload.clone()));
            let contrib: Vec<f64> = (0..payload_len).map(|i| (me * 31 + i) as f64).collect();
            let r = tree_reduce(ctx, tree, 12, contrib);
            (b, r)
        }).expect("a crash-free plan must complete");

        assert_causal_stamps(&trace);
    }
}
