//! Reliable transport under injected loss, and online crash recovery.
//!
//! The tentpole guarantees under test:
//!
//! * with the reliable transport on, `drop_permille` loss (composed with
//!   duplication and reordering) is fully masked — collective results are
//!   bit-identical to the fault-free run and the *logical* volume counters
//!   are exactly the fault-free ones, with all recovery traffic isolated
//!   in `RankVolume::retransmitted`;
//! * stale-epoch traffic on a re-homed edge is discarded with its
//!   accounting reversed;
//! * with recovery on, rank deaths are absorbed: survivors re-home onto a
//!   `rebuild_excluding` tree and still deliver, and only dead-root
//!   collectives are reported stranded.

use proptest::prelude::*;
use pselinv_chaos::{FaultPlan, FaultSpec};
use pselinv_mpisim::collectives::{tree_bcast, tree_reduce};
use pselinv_mpisim::{
    try_run, try_run_recover, RankCtx, RankVolume, Recovery, RecoveryConfig, ReliableConfig,
    RunOptions,
};
use pselinv_trees::{TreeBuilder, TreeScheme};
use std::time::Duration;

/// The logical (application-visible) part of a volume: everything except
/// the control-plane `retransmitted` counter, which is timing-dependent.
fn logical(v: &RankVolume) -> (u64, u64, u64, u64, u64) {
    (v.sent, v.received, v.msgs_sent, v.msgs_received, v.copied)
}

fn reliable_opts(plan: FaultPlan, rto_ms: u64) -> RunOptions {
    RunOptions {
        watchdog: Some(Duration::from_secs(30)),
        poll: Duration::from_millis(2),
        faults: Some(plan),
        reliable: Some(ReliableConfig {
            rto: Duration::from_millis(rto_ms),
            ..ReliableConfig::default()
        }),
        ..RunOptions::default()
    }
}

/// Three broadcast+reduce rounds on rotating roots: every rank is interior
/// on some tree, so loss is exercised on root, interior and leaf edges.
fn collective_workload(nranks: usize) -> impl Fn(&mut RankCtx) -> Vec<f64> + Sync {
    move |ctx| {
        let builder = TreeBuilder::new(TreeScheme::ShiftedBinary, 7);
        let ranks: Vec<usize> = (0..nranks).collect();
        let mut out = Vec::new();
        for (k, &root) in [0, nranks / 2, nranks - 1].iter().enumerate() {
            let receivers: Vec<usize> = ranks.iter().copied().filter(|&r| r != root).collect();
            let tree = builder.build(root, &receivers, k as u64);
            let data = (ctx.rank() == root).then(|| vec![root as f64 + 0.25, 1.0 / (k + 1) as f64]);
            let p = tree_bcast(ctx, &tree, 100 + k as u64, data);
            out.extend(p.iter().copied());
            let total = tree_reduce(ctx, &tree, 200 + k as u64, vec![ctx.rank() as f64 * 1.5, 1.0]);
            out.extend(total.into_iter().flatten());
        }
        out
    }
}

fn assert_loss_masked(nranks: usize, seed: u64, drop_permille: u16) {
    let clean = try_run(nranks, &RunOptions::default(), collective_workload(nranks))
        .expect("fault-free run");
    let plan = FaultPlan::new(seed).with_default(FaultSpec {
        drop_permille,
        duplicate_permille: 100,
        reorder_permille: 100,
        ..FaultSpec::default()
    });
    let lossy = try_run(nranks, &reliable_opts(plan, 4), collective_workload(nranks))
        .expect("lossy run must complete under the reliable transport");
    // Bit-identical results on every rank.
    assert_eq!(clean.0, lossy.0);
    // Logical volumes are exactly the fault-free ones; only the separate
    // control-plane counter may differ.
    for (rank, (c, l)) in clean.1.iter().zip(lossy.1.iter()).enumerate() {
        assert_eq!(logical(c), logical(l), "logical volume diverged on rank {rank}");
        assert_eq!(c.retransmitted, 0, "fault-free run must not retransmit");
    }
}

/// The ISSUE's headline identity at full scale: 64 ranks, 200‰ loss
/// composed with duplication and reordering, bit-identical to fault-free.
#[test]
fn loss_at_200_permille_is_masked_at_64_ranks() {
    assert_loss_masked(64, 0xfa17, 200);
}

/// Loss alone, maximal permitted rate, small world: the retransmit path is
/// hit on nearly every edge.
#[test]
fn heavy_loss_small_world() {
    assert_loss_masked(4, 3, 200);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any seed, any loss rate up to the contract's 200‰, any small world:
    /// results and logical volumes match the fault-free run exactly.
    #[test]
    fn loss_is_masked_under_reliable_transport(
        seed in 0u64..u64::MAX,
        nranks in 4usize..13,
        drop_permille in 0u16..201,
    ) {
        assert_loss_masked(nranks, seed, drop_permille);
    }
}

/// Stale-epoch traffic on an edge the receiver re-homed is discarded with
/// its accounting reversed: the receiver's logical volume counts only the
/// surviving bumped-epoch message, yet the edge's sequence slot advances
/// so the re-issue is consumed normally.
#[test]
fn stale_epoch_messages_are_discarded_with_accounting_reversed() {
    let (results, volumes) = try_run(2, &RunOptions::default(), |ctx| {
        if ctx.rank() == 0 {
            // Pre-crash traffic (epoch 0), then the post-rebuild re-issue
            // under a bumped epoch on the same edge.
            ctx.send_seq(1, 7, vec![1.0; 8]);
            ctx.set_epoch(1);
            ctx.send_seq(1, 7, vec![2.0; 8]);
            Vec::new()
        } else {
            ctx.expect_epoch(0, 7, 1);
            ctx.recv_seq(0, 7).to_vec()
        }
    })
    .unwrap();
    assert_eq!(results[1], vec![2.0; 8]);
    // Exactly one message (the epoch-1 re-issue) is accounted: the stale
    // epoch-0 delivery was consumed and reversed.
    assert_eq!(volumes[1].received, 64);
    assert_eq!(volumes[1].msgs_received, 1);
    // The sender legitimately sent both copies.
    assert_eq!(volumes[0].msgs_sent, 2);
}

fn recovery_opts(plan: FaultPlan) -> RunOptions {
    RunOptions {
        watchdog: None,
        poll: Duration::from_millis(2),
        faults: Some(plan),
        reliable: Some(ReliableConfig {
            rto: Duration::from_millis(5),
            ..ReliableConfig::default()
        }),
        recovery: true,
        ..RunOptions::default()
    }
}

fn recovery_cfg() -> RecoveryConfig {
    RecoveryConfig { suspect_after: Duration::from_millis(40), slice: Duration::from_millis(3) }
}

/// A mid-tree rank dies before forwarding anything: its orphaned subtree
/// re-homes onto the rebuilt tree and every survivor still delivers.
#[test]
fn survivors_recover_a_broadcast_around_a_dead_interior_rank() {
    let nranks = 8;
    let plan = FaultPlan::new(11)
        .with_rank(1, FaultSpec { crash_after_ops: Some(0), ..FaultSpec::default() });
    let builder = TreeBuilder::new(TreeScheme::Binary, 1);
    let (results, _, report) = try_run_recover(nranks, &recovery_opts(plan), |ctx| {
        let receivers: Vec<usize> = (1..nranks).collect();
        let tree = builder.build(0, &receivers, 5);
        let mut rec = Recovery::new(recovery_cfg());
        let data = (ctx.rank() == 0).then(|| vec![4.0, 5.0, 6.0]);
        let out = rec.bcast(ctx, &builder, &tree, 5, 9, data).map(|p| p.to_vec());
        rec.finish(ctx);
        out
    })
    .unwrap();
    assert_eq!(report.dead_ranks, vec![1]);
    assert!(report.stranded_supernodes.is_empty());
    for (rank, r) in results.iter().enumerate() {
        if rank == 1 {
            assert!(r.is_none(), "the casualty has no result");
        } else {
            assert_eq!(
                r.as_ref().and_then(|o| o.as_deref()),
                Some(&[4.0, 5.0, 6.0][..]),
                "survivor {rank} must deliver the payload"
            );
        }
    }
}

/// When the payload source itself dies, no survivor can ever produce the
/// data: the collective degrades to `None` everywhere and is reported
/// stranded instead of hanging the run.
#[test]
fn dead_root_collective_is_reported_stranded() {
    let nranks = 6;
    let plan = FaultPlan::new(21)
        .with_rank(2, FaultSpec { crash_after_ops: Some(0), ..FaultSpec::default() });
    let builder = TreeBuilder::new(TreeScheme::Binary, 1);
    let (results, _, report) = try_run_recover(nranks, &recovery_opts(plan), |ctx| {
        let receivers: Vec<usize> = (0..nranks).filter(|&r| r != 2).collect();
        let tree = builder.build(2, &receivers, 3);
        let mut rec = Recovery::new(recovery_cfg());
        let data = (ctx.rank() == 2).then(|| vec![9.0]);
        let out = rec.bcast(ctx, &builder, &tree, 3, 17, data).map(|p| p.to_vec());
        rec.finish(ctx);
        out.is_some()
    })
    .unwrap();
    assert_eq!(report.dead_ranks, vec![2]);
    assert_eq!(report.stranded_supernodes, vec![17]);
    for (rank, r) in results.iter().enumerate() {
        if rank == 2 {
            assert!(r.is_none(), "the casualty has no result");
        } else {
            assert_eq!(*r, Some(false), "survivor {rank} must see the stranded collective");
        }
    }
}

/// Mixed storm in miniature: several trees with different roots, one
/// casualty. Live-root collectives all deliver to all survivors; the
/// dead-root collective is the only stranded one.
#[test]
fn mixed_trees_one_dead_root_only_that_tree_strands() {
    let nranks = 8;
    let dead = 3usize;
    let plan = FaultPlan::new(77)
        .with_rank(dead, FaultSpec { crash_after_ops: Some(0), ..FaultSpec::default() });
    let builder = TreeBuilder::new(TreeScheme::ShiftedBinary, 2);
    let (results, _, report) = try_run_recover(nranks, &recovery_opts(plan), |ctx| {
        let mut rec = Recovery::new(recovery_cfg());
        let mut delivered = 0u64;
        for root in 0..4usize {
            let receivers: Vec<usize> = (0..nranks).filter(|&r| r != root).collect();
            let tree = builder.build(root, &receivers, root as u64);
            let data = (ctx.rank() == root).then(|| vec![root as f64; 4]);
            if let Some(p) = rec.bcast(ctx, &builder, &tree, root as u64, 30 + root as u64, data) {
                assert_eq!(p.to_vec(), vec![root as f64; 4]);
                delivered += 1;
            }
        }
        rec.finish(ctx);
        delivered
    })
    .unwrap();
    assert_eq!(report.dead_ranks, vec![dead]);
    // Tree 3 is rooted at the casualty; the other three must deliver.
    assert_eq!(report.stranded_supernodes, vec![33]);
    for (rank, r) in results.iter().enumerate() {
        if rank == dead {
            assert!(r.is_none());
        } else {
            assert_eq!(r.unwrap(), 3, "survivor {rank} must deliver all live-root trees");
        }
    }
    assert!(report.rebuilt_trees >= 1, "orphans must have rebuilt at least one tree");
}
