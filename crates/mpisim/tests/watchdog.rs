//! Failure-path integration tests: deadlocks become diagnostics instead of
//! hangs, a panicking rank unwinds the whole run with its original message,
//! and injected crashes/stalls surface as typed errors.

use pselinv_chaos::{FaultPlan, FaultSpec};
use pselinv_mpisim::collectives::tree_reduce;
use pselinv_mpisim::{try_run, RunError, RunOptions};
use pselinv_trees::{TreeBuilder, TreeScheme};
use std::time::{Duration, Instant};

fn short_watchdog() -> RunOptions {
    RunOptions {
        watchdog: Some(Duration::from_millis(800)),
        poll: Duration::from_millis(10),
        faults: None,
        telemetry: None,
        ..RunOptions::default()
    }
}

#[test]
fn ring_deadlock_is_diagnosed_within_five_seconds() {
    // Classic 4-rank receive ring: r waits on r+1, nobody ever sends.
    let t0 = Instant::now();
    let err = try_run(4, &short_watchdog(), |ctx| {
        let me = ctx.rank();
        ctx.recv((me + 1) % 4, 7);
    })
    .expect_err("a receive ring must stall");
    assert!(t0.elapsed() < Duration::from_secs(5), "took {:?}", t0.elapsed());
    let RunError::Stalled(diag) = err else {
        panic!("expected a stall diagnostic, got: {err}");
    };
    let text = diag.to_string();
    // The diagnostic names every blocked (rank, src, tag) triple...
    for r in 0..4 {
        let triple = format!("rank {} blocked on recv(src={}, tag=7)", r, (r + 1) % 4);
        assert!(text.contains(&triple), "missing {triple:?} in:\n{text}");
    }
    // ...and calls out the wait-for cycle explicitly.
    assert!(text.contains("deadlock cycle:"), "no cycle line in:\n{text}");
    assert!(text.contains("no progress for"), "no stall duration in:\n{text}");
}

#[test]
fn partial_deadlock_reports_finished_ranks() {
    // Ranks 2 and 3 finish immediately; 0 and 1 wait on each other. The
    // cycle detector must skip the finished ranks and still find 0 <-> 1.
    let err = try_run(4, &short_watchdog(), |ctx| match ctx.rank() {
        0 => ctx.recv(1, 3).len(),
        1 => ctx.recv(0, 4).len(),
        _ => 0,
    })
    .expect_err("ranks 0/1 must stall");
    let RunError::Stalled(diag) = err else {
        panic!("expected a stall diagnostic, got: {err}");
    };
    let text = diag.to_string();
    assert!(text.contains("rank 0 blocked on recv(src=1, tag=3)"), "{text}");
    assert!(text.contains("rank 1 blocked on recv(src=0, tag=4)"), "{text}");
    assert!(text.contains("finished ranks: 2, 3"), "{text}");
}

#[test]
fn rank_panic_unwinds_siblings_with_original_message() {
    // Rank 2 panics while every other rank is parked in a blocking receive
    // that would otherwise never complete. The run must come down with the
    // original message, not deadlock and not report a watchdog stall.
    let err = try_run(
        4,
        // Watchdog disabled on purpose: propagation must not depend on it.
        &RunOptions {
            watchdog: None,
            poll: Duration::from_millis(10),
            faults: None,
            telemetry: None,
            ..RunOptions::default()
        },
        |ctx| {
            if ctx.rank() == 2 {
                panic!("numerical factorization failed on rank 2");
            }
            ctx.recv(2, 0);
        },
    )
    .expect_err("the run must fail");
    let RunError::RankPanic { rank, message } = err else {
        panic!("expected a rank panic, got: {err}");
    };
    assert_eq!(rank, 2);
    assert!(message.contains("numerical factorization failed on rank 2"), "{message}");
}

#[test]
fn collective_shape_mismatch_propagates_through_try_run() {
    let receivers: Vec<usize> = (1..4).collect();
    let tree = TreeBuilder::new(TreeScheme::Binary, 0).build(0, &receivers, 0);
    let tree = &tree;
    let err = try_run(4, &short_watchdog(), move |ctx| {
        // Rank 3 contributes the wrong length; its parent's assert fires and
        // the remaining ranks are unwound instead of waiting forever.
        let len = if ctx.rank() == 3 { 2 } else { 4 };
        tree_reduce(ctx, tree, 1, vec![1.0; len])
    })
    .expect_err("mismatched reduction must fail");
    let RunError::RankPanic { message, .. } = err else {
        panic!("expected a rank panic, got: {err}");
    };
    assert!(message.contains("reduction contributions must have equal length"), "{message}");
}

#[test]
#[should_panic(expected = "reduction contributions must have equal length")]
fn run_repanics_with_the_original_message() {
    let receivers: Vec<usize> = (1..4).collect();
    let tree = TreeBuilder::new(TreeScheme::Flat, 0).build(0, &receivers, 0);
    let tree = &tree;
    pselinv_mpisim::run(4, move |ctx| {
        let len = if ctx.rank() == 1 { 3 } else { 5 };
        tree_reduce(ctx, tree, 1, vec![0.0; len])
    });
}

#[test]
fn injected_crash_surfaces_as_rank_panic() {
    let plan = FaultPlan::new(9)
        .with_rank(1, FaultSpec { crash_after_ops: Some(2), ..FaultSpec::default() });
    let opts = RunOptions {
        watchdog: Some(Duration::from_secs(5)),
        poll: Duration::from_millis(10),
        faults: Some(plan),
        telemetry: None,
        ..RunOptions::default()
    };
    let err = try_run(3, &opts, |ctx| {
        let me = ctx.rank();
        // Everyone chats with rank 1 so its op counter advances.
        if me == 1 {
            for _ in 0..4 {
                ctx.recv_any();
            }
        } else {
            for _ in 0..2 {
                ctx.send(1, 0, vec![me as f64]);
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    })
    .expect_err("rank 1 is planned to crash");
    let RunError::RankPanic { rank, message } = err else {
        panic!("expected a rank panic, got: {err}");
    };
    assert_eq!(rank, 1);
    assert!(message.contains("chaos: injected crash"), "{message}");
}

#[test]
fn injected_stall_trips_the_watchdog() {
    let plan = FaultPlan::new(4)
        .with_rank(2, FaultSpec { stall_after_ops: Some(0), ..FaultSpec::default() });
    let opts = RunOptions {
        watchdog: Some(Duration::from_millis(600)),
        poll: Duration::from_millis(10),
        faults: Some(plan),
        telemetry: None,
        ..RunOptions::default()
    };
    let err = try_run(4, &opts, |ctx| {
        let me = ctx.rank();
        if me == 2 {
            // First op trips the planned stall: this send never happens.
            ctx.send(0, 1, vec![1.0]);
        } else if me == 0 {
            ctx.recv(2, 1);
        }
    })
    .expect_err("the stalled rank must trip the watchdog");
    let RunError::Stalled(diag) = err else {
        panic!("expected a stall diagnostic, got: {err}");
    };
    let text = diag.to_string();
    assert!(text.contains("rank 0 blocked on recv(src=2, tag=1)"), "{text}");
}

#[test]
fn recv_timeout_escapes_a_missing_sender() {
    // The bounded receive is the application-level escape hatch: no
    // watchdog, no panic — the rank just gets the timeout back.
    let (results, _) = try_run(
        2,
        &RunOptions {
            watchdog: None,
            poll: Duration::from_millis(5),
            faults: None,
            telemetry: None,
            ..RunOptions::default()
        },
        |ctx| {
            if ctx.rank() == 0 {
                let e = ctx
                    .recv_timeout(1, 9, Duration::from_millis(120))
                    .expect_err("nobody sends on tag 9");
                e.to_string()
            } else {
                String::new()
            }
        },
    )
    .expect("both ranks finish cleanly");
    assert!(results[0].contains("timed out"), "{}", results[0]);
    assert!(results[0].contains("src=1"), "{}", results[0]);
}

#[test]
fn wait_any_ring_deadlock_is_diagnosed_not_livelocked() {
    // Every rank parks in `wait_any` on a request ring nobody feeds. The
    // old implementation popped the stash and re-fronted rejected messages
    // in a hot loop, so it never registered as blocked: the watchdog saw
    // four busy ranks and the run hung forever at 100% CPU. The fixed
    // `wait_any` blocks on the inbox and reports its wait-for edge, so the
    // watchdog names the cycle and kills the run promptly.
    use pselinv_mpisim::{wait_any, RecvRequest};
    let t0 = Instant::now();
    let err = try_run(4, &short_watchdog(), |ctx| {
        let me = ctx.rank();
        let mut reqs = vec![RecvRequest::post((me + 1) % 4, 7)];
        wait_any(ctx, &mut reqs);
    })
    .expect_err("a wait_any receive ring must stall");
    assert!(t0.elapsed() < Duration::from_secs(5), "took {:?}", t0.elapsed());
    let RunError::Stalled(diag) = err else {
        panic!("expected a stall diagnostic, got: {err}");
    };
    let text = diag.to_string();
    for r in 0..4 {
        let triple = format!("rank {} blocked on recv(src={}, tag=7)", r, (r + 1) % 4);
        assert!(text.contains(&triple), "missing {triple:?} in:\n{text}");
    }
    assert!(text.contains("deadlock cycle:"), "no cycle line in:\n{text}");
}

#[test]
fn wait_any_mixed_sources_reports_wildcard_block() {
    // With requests on different sources there is no single wait-for edge;
    // the rank must still register as blocked (as a wildcard) rather than
    // spin invisibly.
    use pselinv_mpisim::{wait_any, RecvRequest};
    let err = try_run(3, &short_watchdog(), |ctx| {
        if ctx.rank() == 0 {
            let mut reqs = vec![RecvRequest::post(1, 1), RecvRequest::post(2, 2)];
            wait_any(ctx, &mut reqs);
        }
    })
    .expect_err("nobody sends; rank 0 must stall");
    let RunError::Stalled(diag) = err else {
        panic!("expected a stall diagnostic, got: {err}");
    };
    let text = diag.to_string();
    assert!(text.contains("rank 0 blocked on recv(any)"), "{text}");
}
