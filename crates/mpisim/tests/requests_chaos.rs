//! Chaos coverage for the nonblocking receive path: sequenced edges driven
//! through `RecvRequest::test` / `wait_any` must mask duplication and
//! reordering exactly like the blocking `recv_seq` path does — and, with
//! the reliable transport underneath, injected loss composed with both —
//! and the sender-side reorder hold-back slot must be flushed when a rank
//! returns.

use proptest::prelude::*;
use pselinv_chaos::{FaultPlan, FaultSpec};
use pselinv_mpisim::{try_run, wait_any, RecvRequest, ReliableConfig, RunOptions};
use std::time::Duration;

fn chaos_opts(plan: FaultPlan) -> RunOptions {
    RunOptions {
        watchdog: Some(Duration::from_secs(30)),
        poll: Duration::from_millis(5),
        faults: Some(plan),
        telemetry: None,
        ..RunOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn sequenced_requests_mask_duplication_and_reordering(
        seed in 0u64..1_000_000,
        n_msgs in 4usize..20,
        dup in 100u16..700,
        reorder in 100u16..700,
    ) {
        // The old `try_match` ignored sequence numbers: a duplicated
        // message was delivered twice and a held-back one out of order,
        // so the per-(src, tag) streams observed through RecvRequest
        // diverged from send order. The seq-aware matcher suppresses
        // stale duplicates and buffers early arrivals.
        const N_TAGS: u64 = 2;
        let plan = FaultPlan::new(seed).with_default(FaultSpec {
            duplicate_permille: dup,
            reorder_permille: reorder,
            ..FaultSpec::default()
        });
        let (results, _) = try_run(2, &chaos_opts(plan), move |ctx| {
            if ctx.rank() == 0 {
                for i in 0..n_msgs {
                    ctx.send_seq(1, i as u64 % N_TAGS, vec![i as f64]);
                }
                Ok(())
            } else {
                // One posted request per expected message, all outstanding
                // at once — the worst case for unsequenced matching.
                let mut reqs: Vec<RecvRequest> =
                    (0..n_msgs).map(|i| RecvRequest::post(0, i as u64 % N_TAGS)).collect();
                let mut seen: Vec<Vec<f64>> = vec![Vec::new(); N_TAGS as usize];
                while !reqs.is_empty() {
                    let i = wait_any(ctx, &mut reqs);
                    let req = reqs.remove(i);
                    let tag = req.tag;
                    let data = req.take().expect("wait_any returned a done request");
                    seen[tag as usize].push(data[0]);
                }
                // Per-(src, tag) delivery order must equal send order.
                for tag in 0..N_TAGS {
                    let sent: Vec<f64> = (0..n_msgs)
                        .filter(|i| *i as u64 % N_TAGS == tag)
                        .map(|i| i as f64)
                        .collect();
                    if seen[tag as usize] != sent {
                        return Err(format!(
                            "tag {tag}: got {:?}, sent {sent:?}",
                            seen[tag as usize]
                        ));
                    }
                }
                Ok(())
            }
        })
        .expect("benign faults must not wedge the nonblocking path");
        for r in results {
            prop_assert!(r.is_ok(), "{}", r.unwrap_err());
        }
    }

    /// Loss composed with duplication and reordering, observed through the
    /// nonblocking request path. The `wait_any` polling loop must keep the
    /// sender's retransmission timers ticking (a `RecvRequest` never
    /// blocks in `recv_msg_timeout`, so the tick has to run from the
    /// nonblocking entry points), or a dropped message wedges the run.
    #[test]
    fn requests_mask_loss_composed_with_dup_and_reorder(
        seed in 0u64..1_000_000,
        n_msgs in 4usize..16,
        drop in 1u16..201,
        dup in 0u16..400,
        reorder in 0u16..400,
    ) {
        const N_TAGS: u64 = 2;
        let plan = FaultPlan::new(seed).with_default(FaultSpec {
            drop_permille: drop,
            duplicate_permille: dup,
            reorder_permille: reorder,
            ..FaultSpec::default()
        });
        let opts = RunOptions {
            reliable: Some(ReliableConfig {
                rto: Duration::from_millis(4),
                ..ReliableConfig::default()
            }),
            ..chaos_opts(plan)
        };
        let (results, volumes) = try_run(2, &opts, move |ctx| {
            if ctx.rank() == 0 {
                for i in 0..n_msgs {
                    ctx.send_seq(1, i as u64 % N_TAGS, vec![i as f64]);
                }
                Ok(())
            } else {
                let mut reqs: Vec<RecvRequest> =
                    (0..n_msgs).map(|i| RecvRequest::post(0, i as u64 % N_TAGS)).collect();
                let mut seen: Vec<Vec<f64>> = vec![Vec::new(); N_TAGS as usize];
                while !reqs.is_empty() {
                    let i = wait_any(ctx, &mut reqs);
                    let req = reqs.remove(i);
                    let tag = req.tag;
                    let data = req.take().expect("wait_any returned a done request");
                    seen[tag as usize].push(data[0]);
                }
                for tag in 0..N_TAGS {
                    let sent: Vec<f64> = (0..n_msgs)
                        .filter(|i| *i as u64 % N_TAGS == tag)
                        .map(|i| i as f64)
                        .collect();
                    if seen[tag as usize] != sent {
                        return Err(format!(
                            "tag {tag}: got {:?}, sent {sent:?}",
                            seen[tag as usize]
                        ));
                    }
                }
                Ok(())
            }
        })
        .expect("the reliable transport must mask loss on the nonblocking path");
        for r in results {
            prop_assert!(r.is_ok(), "{}", r.unwrap_err());
        }
        // Logical volumes are loss-independent: the receiver consumed
        // exactly the sent stream, all recovery traffic is accounted apart.
        prop_assert_eq!(volumes[1].msgs_received, n_msgs as u64);
        prop_assert_eq!(volumes[1].received, n_msgs as u64 * 8);
    }
}

#[test]
fn rank_epilogue_flushes_the_reorder_holdback_slot() {
    // With reorder_permille=1000 every masked send is parked in the
    // per-destination hold-back slot, displacing the previous one. After
    // the sender's last send one message is still held; if the runtime
    // did not flush it when the rank function returns, the receiver would
    // wait forever. This pins the epilogue `flush_held`.
    let plan = FaultPlan::new(3)
        .with_default(FaultSpec { reorder_permille: 1000, ..FaultSpec::default() });
    let opts = RunOptions {
        watchdog: Some(Duration::from_secs(5)),
        poll: Duration::from_millis(5),
        faults: Some(plan),
        telemetry: None,
        ..RunOptions::default()
    };
    let (results, _) = try_run(2, &opts, |ctx| {
        if ctx.rank() == 0 {
            for i in 0..3 {
                ctx.send_seq(1, 4, vec![10.0 + i as f64]);
            }
            // Return immediately: no further send or blocking point on
            // this rank will flush the held message.
            Vec::new()
        } else {
            (0..3).map(|_| ctx.recv_seq(0, 4)[0]).collect::<Vec<f64>>()
        }
    })
    .expect("the epilogue flush must release the last held message");
    assert_eq!(results[1], vec![10.0, 11.0, 12.0]);
}

#[test]
fn wait_any_leaves_unmatched_stash_intact() {
    // `wait_any` must not consume or reorder messages its request set does
    // not match: an unrelated tag that arrives first stays stashed and is
    // still receivable afterwards, in order.
    let (results, _) = pselinv_mpisim::run(2, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 5, vec![1.0]);
            ctx.send(1, 5, vec![2.0]);
            ctx.send(1, 7, vec![3.0]);
            Vec::new()
        } else {
            let mut reqs = vec![RecvRequest::post(0, 7)];
            let i = wait_any(ctx, &mut reqs);
            let got = reqs.remove(i).take().unwrap()[0];
            assert_eq!(got, 3.0);
            vec![ctx.recv(0, 5)[0], ctx.recv(0, 5)[0]]
        }
    });
    assert_eq!(results[1], vec![1.0, 2.0]);
}
