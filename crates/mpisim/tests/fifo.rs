//! Property test for MPI non-overtaking semantics: messages with the same
//! `(source, tag)` must be delivered in send order, no matter how the
//! receiver interleaves wildcard receives, tag probes and un-receives
//! (`stash_back`).
//!
//! The seed runtime popped its out-of-order stash LIFO (`Vec::pop`) and
//! spliced tag matches with `swap_remove`; both break this property. The
//! deterministic regression lives in `runtime.rs`; this test explores the
//! interleaving space.

use proptest::prelude::*;
use pselinv_mpisim::run;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn per_source_tag_delivery_is_fifo(
        n_msgs in 4usize..24,
        n_tags in 1u64..4,
        ops in proptest::collection::vec(0usize..4, 16..48),
    ) {
        let ops = &ops;
        let (results, _) = run(2, move |ctx| {
            if ctx.rank() == 0 {
                for i in 0..n_msgs {
                    // Payload carries the per-tag sequence number.
                    let tag = i as u64 % n_tags;
                    ctx.send(1, tag, vec![i as f64]);
                }
                Ok(())
            } else {
                // seq numbers observed so far, per tag
                let mut seen: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
                let mut got = 0usize;
                let mut op_i = 0usize;
                while got < n_msgs {
                    let op = ops[op_i % ops.len()];
                    op_i += 1;
                    match op {
                        0 => {
                            let m = ctx.recv_any();
                            seen.entry(m.tag).or_default().push(m.data[0] as u64);
                            got += 1;
                        }
                        1 => {
                            if let Some(m) = ctx.try_recv_any() {
                                seen.entry(m.tag).or_default().push(m.data[0] as u64);
                                got += 1;
                            }
                        }
                        2 => {
                            // Peek and un-receive: must not reorder anything.
                            let m = ctx.recv_any();
                            ctx.stash_back(m);
                        }
                        _ => {
                            // Tag-targeted probe; pulls a message out of the
                            // middle of the stash.
                            let tag = op_i as u64 % n_tags;
                            if let Some(d) = ctx.try_match(0, tag) {
                                seen.entry(tag).or_default().push(d[0] as u64);
                                got += 1;
                            }
                        }
                    }
                }
                // Within each (src=0, tag) stream, sequence numbers must be
                // strictly increasing: non-overtaking delivery.
                for (tag, seqs) in &seen {
                    for w in seqs.windows(2) {
                        if w[0] >= w[1] {
                            return Err(format!(
                                "tag {tag}: got seq {} before {}, order {seqs:?}",
                                w[0], w[1]
                            ));
                        }
                    }
                }
                Ok(())
            }
        });
        for r in results {
            prop_assert!(r.is_ok(), "{}", r.unwrap_err());
        }
    }
}
