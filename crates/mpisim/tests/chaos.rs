//! Chaos proptests: a *crash-free* fault schedule (delay, jitter,
//! duplication, reordering — but no rank ever stalls or dies) must be
//! completely invisible to the masked collectives. Results are
//! bit-identical to the fault-free run and the per-rank byte counters
//! still match the structural tree accounting, because duplicate
//! suppression reverses its accounting exactly.

use proptest::prelude::*;
use pselinv_chaos::{FaultPlan, FaultSpec};
use pselinv_mpisim::collectives::{tree_bcast, tree_reduce};
use pselinv_mpisim::{run, try_run, try_run_traced, RankCtx, RunOptions};
use pselinv_trees::{TreeBuilder, TreeScheme};
use std::collections::BTreeMap;
use std::time::Duration;

fn chaos_opts(plan: FaultPlan) -> RunOptions {
    RunOptions {
        watchdog: Some(Duration::from_secs(30)),
        poll: Duration::from_millis(5),
        faults: Some(plan),
        telemetry: None,
        ..RunOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn crash_free_schedules_yield_bit_identical_collectives(
        seed in 0u64..1_000_000,
        scheme_i in 0usize..4,
        nranks in 4usize..9,
        delay in 0u64..60,
        jitter in 0u64..60,
        dup in 0u16..600,
        reorder in 0u16..600,
        payload_len in 1usize..17,
    ) {
        let scheme = [
            TreeScheme::Flat,
            TreeScheme::Binary,
            TreeScheme::ShiftedBinary,
            TreeScheme::RandomPerm,
        ][scheme_i];
        let receivers: Vec<usize> = (1..nranks).collect();
        let tree = TreeBuilder::new(scheme, 0x5e11).build(0, &receivers, seed);
        let tree = &tree;
        let payload: Vec<f64> = (0..payload_len).map(|i| seed as f64 + i as f64 * 0.5).collect();
        let payload = &payload;

        let body = move |ctx: &mut RankCtx| {
            let me = ctx.rank();
            let b = tree_bcast(ctx, tree, 11, (me == 0).then(|| payload.clone()));
            let contrib: Vec<f64> = (0..payload_len).map(|i| (me * 31 + i) as f64).collect();
            let r = tree_reduce(ctx, tree, 12, contrib);
            (b, r)
        };

        let (baseline, base_vol) = run(nranks, body);

        let plan = FaultPlan::new(seed ^ 0x9e37_79b9).with_default(FaultSpec {
            delay_us: delay,
            jitter_us: jitter,
            duplicate_permille: dup,
            reorder_permille: reorder,
            ..FaultSpec::default()
        });
        let (chaotic, vol) =
            try_run(nranks, &chaos_opts(plan), body).expect("a crash-free plan must complete");

        prop_assert_eq!(&chaotic, &baseline, "results diverged under a crash-free schedule");
        // Suppressed duplicates reverse their accounting, so the fault run's
        // volume counters equal the fault-free ones — which themselves match
        // the structural tree model.
        for r in 0..nranks {
            prop_assert_eq!(vol[r], base_vol[r], "rank {} volume diverged", r);
        }
        let mut expect_sent = vec![0u64; nranks];
        pselinv_trees::bcast_sent_volume(tree, (payload_len * 8) as u64, &mut expect_sent);
        let mut expect_recv = vec![0u64; nranks];
        pselinv_trees::reduce_received_volume(tree, (payload_len * 8) as u64, &mut expect_recv);
        let bytes = (payload_len * 8) as u64;
        for r in 0..nranks {
            // Down the tree: bcast sends to each child; up the tree: every
            // non-root sends exactly one contribution to its parent.
            let up = if r == 0 { 0 } else { bytes };
            prop_assert_eq!(
                vol[r].sent,
                expect_sent[r] + up,
                "rank {} sent bytes off the tree model", r
            );
            prop_assert_eq!(vol[r].received, expect_recv[r] + up);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn masked_streams_stay_fifo_under_duplication_and_reordering(
        seed in 0u64..1_000_000,
        n_msgs in 6usize..24,
        dup in 100u16..700,
        reorder in 100u16..700,
    ) {
        let plan = FaultPlan::new(seed).with_default(FaultSpec {
            duplicate_permille: dup,
            reorder_permille: reorder,
            ..FaultSpec::default()
        });
        let (results, _) = try_run(2, &chaos_opts(plan), move |ctx| {
            const N_TAGS: u64 = 3;
            if ctx.rank() == 0 {
                for i in 0..n_msgs {
                    ctx.send_seq(1, i as u64 % N_TAGS, vec![i as f64]);
                }
                Ok(())
            } else {
                // Draining the highest tag first forces the other streams
                // through the out-of-order stash while duplicates and
                // held-back messages are in flight.
                let mut seen: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
                for tag in (0..N_TAGS).rev() {
                    let expected = (0..n_msgs).filter(|i| *i as u64 % N_TAGS == tag).count();
                    for _ in 0..expected {
                        let d = ctx.recv_seq(0, tag);
                        seen.entry(tag).or_default().push(d[0]);
                    }
                }
                // Per-(src, tag) delivery order must equal send order.
                for (tag, vals) in &seen {
                    let sent: Vec<f64> = (0..n_msgs)
                        .filter(|i| *i as u64 % N_TAGS == *tag)
                        .map(|i| i as f64)
                        .collect();
                    if vals != &sent {
                        return Err(format!("tag {tag}: got {vals:?}, sent {sent:?}"));
                    }
                }
                Ok(())
            }
        })
        .expect("benign faults must not wedge the run");
        for r in results {
            prop_assert!(r.is_ok(), "{}", r.unwrap_err());
        }
    }
}

#[test]
fn traced_chaos_run_keeps_byte_counters_consistent() {
    use pselinv_trace::CollKind;
    let nranks = 8;
    let receivers: Vec<usize> = (1..nranks).collect();
    let tree = TreeBuilder::new(TreeScheme::ShiftedBinary, 7).build(0, &receivers, 3);
    let tree = &tree;
    let payload = 24usize;
    let plan = FaultPlan::new(0xfeed).with_default(FaultSpec {
        delay_us: 20,
        jitter_us: 30,
        duplicate_permille: 400,
        reorder_permille: 400,
        ..FaultSpec::default()
    });
    let (_, volumes, trace) = try_run_traced(nranks, "chaos/bcast", &chaos_opts(plan), |ctx| {
        tree_bcast(ctx, tree, 0, (ctx.rank() == 0).then(|| vec![1.0; payload]));
    })
    .expect("benign plan must complete");
    let mut expected = vec![0u64; nranks];
    pselinv_trees::bcast_sent_volume(tree, (payload * 8) as u64, &mut expected);
    // Traced metrics and runtime counters agree with the structural model
    // even with duplicates and reorderings injected.
    assert_eq!(trace.sent_bytes(CollKind::Bcast), expected);
    for r in 0..nranks {
        assert_eq!(volumes[r].sent, expected[r], "rank {r}");
        assert_eq!(
            trace.ranks[r].metrics.kind(CollKind::Bcast).bytes_recv,
            volumes[r].received,
            "rank {r}"
        );
    }
    // The fault layer left its marks in the event stream.
    let n_faults: usize = trace
        .ranks
        .iter()
        .map(|r| {
            r.events
                .iter()
                .filter(|e| matches!(e.kind, pselinv_trace::EventKind::Fault { .. }))
                .count()
        })
        .sum();
    assert!(n_faults > 0, "a 400permille dup/reorder plan should have injected something");
}

#[test]
fn chaos_schedule_is_reproducible() {
    // Two runs under the same plan inject the same schedule: same results,
    // same volumes (the schedule is a pure function of the seed, not of
    // thread timing).
    let mk_plan = || {
        FaultPlan::new(0xd1ce).with_default(FaultSpec {
            jitter_us: 40,
            duplicate_permille: 300,
            reorder_permille: 300,
            ..FaultSpec::default()
        })
    };
    let receivers: Vec<usize> = (1..6).collect();
    let tree = TreeBuilder::new(TreeScheme::Binary, 1).build(0, &receivers, 0);
    let tree = &tree;
    let body = move |ctx: &mut RankCtx| {
        let b = tree_bcast(ctx, tree, 5, (ctx.rank() == 0).then(|| vec![2.5; 8]));
        tree_reduce(ctx, tree, 6, b.to_vec())
    };
    let (r1, v1) = try_run(6, &chaos_opts(mk_plan()), body).unwrap();
    let (r2, v2) = try_run(6, &chaos_opts(mk_plan()), body).unwrap();
    assert_eq!(r1, r2);
    assert_eq!(v1, v2);
}
