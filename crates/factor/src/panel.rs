//! Dense supernode panel storage.

use pselinv_dense::Mat;
use pselinv_order::SymbolicFactor;

/// The dense storage of one supernode of a factor (or of the selected
/// inverse, which shares the same structure).
///
/// * `diag` — the `w×w` diagonal block. For an LDLᵀ factor its strictly
///   lower part holds the unit-lower `L_{K,K}` and its diagonal holds `D`;
///   for the selected inverse it holds the full symmetric `A⁻¹_{K,K}`.
/// * `below` — the `r×w` off-diagonal panel, rows ordered as
///   `SymbolicFactor::rows_of(s)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Panel {
    /// `w × w` diagonal block.
    pub diag: Mat,
    /// `r × w` below-diagonal panel.
    pub below: Mat,
}

impl Panel {
    /// Zero panel shaped for supernode `s` of `sf`.
    pub fn zeros(sf: &SymbolicFactor, s: usize) -> Self {
        let w = sf.width(s);
        let r = sf.rows_of(s).len();
        Self { diag: Mat::zeros(w, w), below: Mat::zeros(r, w) }
    }

    /// Supernode width.
    pub fn width(&self) -> usize {
        self.diag.nrows()
    }

    /// Number of below-diagonal rows.
    pub fn num_below(&self) -> usize {
        self.below.nrows()
    }
}

/// Locates a global row index inside supernode `s`'s panel.
///
/// Returns `RowPos::Diag(i)` for a row inside the diagonal block, or
/// `RowPos::Below(i)` with the position in `rows_of(s)`. Panics if the row
/// is not part of the supernode structure (callers scatter only into
/// structurally present positions).
pub fn locate_row(sf: &SymbolicFactor, s: usize, row: usize) -> RowPos {
    let first = sf.first_col(s);
    let end = sf.end_col(s);
    if row >= first && row < end {
        return RowPos::Diag(row - first);
    }
    match sf.rows_of(s).binary_search(&row) {
        Ok(p) => RowPos::Below(p),
        Err(_) => panic!("row {row} not in structure of supernode {s}"),
    }
}

/// Position of a global row within a supernode panel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowPos {
    /// Row lives in the diagonal block at this local offset.
    Diag(usize),
    /// Row lives in the below panel at this offset.
    Below(usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use pselinv_order::{analyze, AnalyzeOptions};
    use pselinv_sparse::gen;

    #[test]
    fn panel_shapes_match_symbolic() {
        let w = gen::grid_laplacian_2d(6, 6);
        let sf = analyze(&w.matrix.pattern(), &AnalyzeOptions::default());
        for s in 0..sf.num_supernodes() {
            let p = Panel::zeros(&sf, s);
            assert_eq!(p.width(), sf.width(s));
            assert_eq!(p.num_below(), sf.rows_of(s).len());
        }
    }

    #[test]
    fn locate_row_finds_positions() {
        let w = gen::grid_laplacian_2d(8, 8);
        let sf = analyze(&w.matrix.pattern(), &AnalyzeOptions::default());
        for s in 0..sf.num_supernodes() {
            for (off, col) in (sf.first_col(s)..sf.end_col(s)).enumerate() {
                assert_eq!(locate_row(&sf, s, col), RowPos::Diag(off));
            }
            for (p, &r) in sf.rows_of(s).iter().enumerate() {
                assert_eq!(locate_row(&sf, s, r), RowPos::Below(p));
            }
        }
    }

    #[test]
    #[should_panic(expected = "not in structure")]
    fn locate_row_rejects_missing() {
        let w = gen::grid_laplacian_2d(4, 4);
        let sf = analyze(&w.matrix.pattern(), &AnalyzeOptions::default());
        // Find a supernode whose structure misses some row.
        for s in 0..sf.num_supernodes() {
            let rows = sf.rows_of(s);
            for cand in sf.end_col(s)..sf.n {
                if rows.binary_search(&cand).is_err() {
                    let _ = locate_row(&sf, s, cand);
                    return;
                }
            }
        }
        panic!("not in structure (degenerate: every supernode is full)");
    }
}
