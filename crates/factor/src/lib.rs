//! Sequential supernodal numeric factorization.
//!
//! [`ldlt::factorize`] computes a supernodal `L·D·Lᵀ` factorization of a
//! symmetric matrix using the structure prepared by
//! [`pselinv_order::analyze`]. The resulting [`ldlt::LdlFactor`] stores one
//! dense panel per supernode — exactly the representation the selected
//! inversion (sequential in `pselinv-selinv`, distributed in
//! `pselinv-dist`) consumes, and the same one SuperLU_DIST hands to
//! PSelInv in the paper's pipeline.
//!
//! [`lu`] provides the unsymmetric-path factorization (`L·U` with
//! structurally symmetric pattern), the extension the paper lists as work
//! in progress.

pub mod ldlt;
pub mod lu;
pub mod panel;

pub use ldlt::{factorize, FactorError, LdlFactor};
pub use panel::Panel;
