//! Right-looking supernodal LDLᵀ factorization.

use crate::panel::{locate_row, Panel, RowPos};
use pselinv_dense::kernels::{trsm_left_lower, trsm_left_lower_trans, trsm_right_lower_trans};
use pselinv_dense::{gemm, ldlt_factor, Mat, Transpose};
use pselinv_order::SymbolicFactor;
use pselinv_sparse::SparseMatrix;
use std::sync::Arc;

/// Errors from numeric factorization.
#[derive(Debug)]
pub enum FactorError {
    /// A diagonal block turned out numerically singular.
    Singular {
        /// Supernode whose diagonal block failed.
        supernode: usize,
        /// Pivot index within the block.
        pivot: usize,
    },
    /// Matrix shape does not match the symbolic factorization.
    ShapeMismatch {
        /// Matrix order.
        matrix_n: usize,
        /// Symbolic order.
        symbolic_n: usize,
    },
}

impl std::fmt::Display for FactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorError::Singular { supernode, pivot } => {
                write!(f, "singular pivot {pivot} in supernode {supernode}")
            }
            FactorError::ShapeMismatch { matrix_n, symbolic_n } => {
                write!(f, "matrix order {matrix_n} != symbolic order {symbolic_n}")
            }
        }
    }
}

impl std::error::Error for FactorError {}

/// A supernodal LDLᵀ factorization: `P A Pᵀ = L D Lᵀ`.
///
/// Panel `s` stores `L_{K,K}` (unit lower) and `D_K` in `diag`, and the
/// normalized off-diagonal rows `L_{R,K}` in `below`.
#[derive(Clone, Debug)]
pub struct LdlFactor {
    /// The symbolic structure shared with downstream consumers.
    pub symbolic: Arc<SymbolicFactor>,
    /// One dense panel per supernode.
    pub panels: Vec<Panel>,
}

/// Factorizes a symmetric matrix with the given symbolic structure.
///
/// Only the lower triangle of `a` (after the symbolic permutation) is
/// read; the matrix must be numerically symmetric for the result to be
/// meaningful.
///
/// ```
/// use pselinv_factor::factorize;
/// use pselinv_order::{analyze, AnalyzeOptions};
/// use pselinv_sparse::gen;
/// use std::sync::Arc;
///
/// let a = gen::random_spd(30, 0.2, 7);
/// let sf = Arc::new(analyze(&a.pattern(), &AnalyzeOptions::default()));
/// let f = factorize(&a, sf).unwrap();
/// // solve A x = b through the factorization
/// let b = vec![1.0; 30];
/// let x = f.solve(&b);
/// let r = a.matvec(&x);
/// assert!(r.iter().zip(&b).all(|(ri, bi)| (ri - bi).abs() < 1e-9));
/// ```
pub fn factorize(
    a: &SparseMatrix,
    symbolic: Arc<SymbolicFactor>,
) -> Result<LdlFactor, FactorError> {
    let sf = &*symbolic;
    if a.nrows() != sf.n || a.ncols() != sf.n {
        return Err(FactorError::ShapeMismatch { matrix_n: a.nrows(), symbolic_n: sf.n });
    }
    let permuted = a.permute_sym(sf.perm.new_of_old());

    // Scatter the lower triangle of the permuted matrix into panels.
    let ns = sf.num_supernodes();
    let mut panels: Vec<Panel> = (0..ns).map(|s| Panel::zeros(sf, s)).collect();
    for j in 0..sf.n {
        let s = sf.part.col_to_sn[j];
        let jl = j - sf.first_col(s);
        let (rows, vals) = (permuted.col_rows(j), permuted.col_values(j));
        for (&i, &v) in rows.iter().zip(vals) {
            if i < j {
                continue;
            }
            match locate_row(sf, s, i) {
                RowPos::Diag(il) => panels[s].diag[(il, jl)] = v,
                RowPos::Below(il) => panels[s].below[(il, jl)] = v,
            }
        }
    }

    // Right-looking factorization over supernodes in ascending order.
    for s in 0..ns {
        let w = sf.width(s);
        // 1. Factor the diagonal block.
        ldlt_factor(&mut panels[s].diag)
            .map_err(|e| FactorError::Singular { supernode: s, pivot: e.pivot })?;

        // 2. Normalize the below panel: L_R = A_R L⁻ᵀ D⁻¹.
        {
            let (diag, below) = {
                let p = &mut panels[s];
                // split borrow: clone diag (small) to keep the code simple
                (p.diag.clone(), &mut p.below)
            };
            trsm_right_lower_trans(below, &diag, true);
            for jl in 0..w {
                let d = diag[(jl, jl)];
                for v in below.col_mut(jl) {
                    *v /= d;
                }
            }
        }

        // 3. Update ancestors: for each target block, subtract
        //    L_{R',s} · D_s · L_{Rb,s}ᵀ from the ancestor panel.
        let rows = sf.rows_of(s).to_vec();
        let nrows = rows.len();
        let d: Vec<f64> = (0..w).map(|jl| panels[s].diag[(jl, jl)]).collect();
        let blocks: Vec<_> = sf.blocks_of(s).to_vec();
        let rp = sf.rows_ptr[s];
        for b in &blocks {
            let target = b.sn;
            let lb = b.rows_begin - rp;
            let nb = b.rows_end - b.rows_begin;
            let m = nrows - lb;
            // B2D = rows [lb, lb+nb) of `below`, columns scaled by D.
            let mut b2d = panels[s].below.submatrix(lb, 0, nb, w);
            for jl in 0..w {
                for v in b2d.col_mut(jl) {
                    *v *= d[jl];
                }
            }
            let b1 = panels[s].below.submatrix(lb, 0, m, w);
            let mut u = Mat::zeros(m, nb);
            gemm(1.0, &b1, Transpose::No, &b2d, Transpose::Yes, 0.0, &mut u);

            let first_t = sf.first_col(target);
            for q in 0..nb {
                let c = rows[lb + q];
                let cl = c - first_t;
                for p in q..m {
                    let i = rows[lb + p];
                    match locate_row(sf, target, i) {
                        RowPos::Diag(il) => panels[target].diag[(il, cl)] -= u[(p, q)],
                        RowPos::Below(il) => panels[target].below[(il, cl)] -= u[(p, q)],
                    }
                }
            }
        }
    }

    Ok(LdlFactor { symbolic, panels })
}

impl LdlFactor {
    /// Solves `A x = b` (in the *original* ordering of the input matrix).
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let sf = &*self.symbolic;
        assert_eq!(b.len(), sf.n);
        // x̃ = P b
        let mut x: Vec<f64> = (0..sf.n).map(|new| b[sf.perm.old_of(new)]).collect();

        // Forward: L y = x̃.
        for s in 0..sf.num_supernodes() {
            let first = sf.first_col(s);
            let w = sf.width(s);
            let mut xs = Mat::zeros(w, 1);
            for jl in 0..w {
                xs[(jl, 0)] = x[first + jl];
            }
            trsm_left_lower(&self.panels[s].diag, &mut xs, true);
            for jl in 0..w {
                x[first + jl] = xs[(jl, 0)];
            }
            let rows = sf.rows_of(s);
            let below = &self.panels[s].below;
            for (p, &r) in rows.iter().enumerate() {
                let mut acc = 0.0;
                for jl in 0..w {
                    acc += below[(p, jl)] * xs[(jl, 0)];
                }
                x[r] -= acc;
            }
        }

        // Diagonal: D z = y.
        for s in 0..sf.num_supernodes() {
            let first = sf.first_col(s);
            for jl in 0..sf.width(s) {
                x[first + jl] /= self.panels[s].diag[(jl, jl)];
            }
        }

        // Backward: Lᵀ x = z.
        for s in (0..sf.num_supernodes()).rev() {
            let first = sf.first_col(s);
            let w = sf.width(s);
            let rows = sf.rows_of(s);
            let below = &self.panels[s].below;
            let mut xs = Mat::zeros(w, 1);
            for jl in 0..w {
                xs[(jl, 0)] = x[first + jl];
            }
            for (p, &r) in rows.iter().enumerate() {
                for jl in 0..w {
                    xs[(jl, 0)] -= below[(p, jl)] * x[r];
                }
            }
            trsm_left_lower_trans(&self.panels[s].diag, &mut xs, true);
            for jl in 0..w {
                x[first + jl] = xs[(jl, 0)];
            }
        }

        // x = Pᵀ x̃
        (0..sf.n).map(|old| x[sf.perm.new_of(old)]).collect()
    }

    /// Dense `L` (unit diagonal) of the permuted matrix; for verification
    /// at small orders only.
    pub fn dense_l(&self) -> Mat {
        let sf = &*self.symbolic;
        let mut l = Mat::identity(sf.n);
        for s in 0..sf.num_supernodes() {
            let first = sf.first_col(s);
            let w = sf.width(s);
            for jl in 0..w {
                for il in (jl + 1)..w {
                    l[(first + il, first + jl)] = self.panels[s].diag[(il, jl)];
                }
                for (p, &r) in sf.rows_of(s).iter().enumerate() {
                    l[(r, first + jl)] = self.panels[s].below[(p, jl)];
                }
            }
        }
        l
    }

    /// Dense `D` of the permuted matrix; for verification only.
    pub fn dense_d(&self) -> Mat {
        let sf = &*self.symbolic;
        let mut dm = Mat::zeros(sf.n, sf.n);
        for s in 0..sf.num_supernodes() {
            let first = sf.first_col(s);
            for jl in 0..sf.width(s) {
                dm[(first + jl, first + jl)] = self.panels[s].diag[(jl, jl)];
            }
        }
        dm
    }

    /// Total flops of the factorization (for rough cost models).
    pub fn flops(&self) -> f64 {
        let sf = &*self.symbolic;
        (0..sf.num_supernodes())
            .map(|s| {
                let w = sf.width(s) as f64;
                let r = sf.rows_of(s).len() as f64;
                // diag ldlt + panel trsm + outer product update
                w * w * w / 3.0 + r * w * w + r * r * w
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pselinv_order::{analyze, AnalyzeOptions, OrderingChoice};
    use pselinv_sparse::gen;

    fn check_reconstruction(a: &SparseMatrix, opts: &AnalyzeOptions) {
        let sf = Arc::new(analyze(&a.pattern(), opts));
        let f = factorize(a, sf.clone()).unwrap();
        let l = f.dense_l();
        let d = f.dense_d();
        let mut ld = Mat::zeros(sf.n, sf.n);
        gemm(1.0, &l, Transpose::No, &d, Transpose::No, 0.0, &mut ld);
        let mut ldl = Mat::zeros(sf.n, sf.n);
        gemm(1.0, &ld, Transpose::No, &l, Transpose::Yes, 0.0, &mut ldl);
        let permuted = a.permute_sym(sf.perm.new_of_old());
        let scale = 1.0 + ldl.norm_max();
        for j in 0..sf.n {
            for i in 0..sf.n {
                let want = permuted.get(i, j);
                assert!(
                    (ldl[(i, j)] - want).abs() < 1e-10 * scale,
                    "entry ({i},{j}): {} vs {}",
                    ldl[(i, j)],
                    want
                );
            }
        }
    }

    #[test]
    fn reconstructs_grid_2d() {
        let w = gen::grid_laplacian_2d(7, 6);
        check_reconstruction(&w.matrix, &AnalyzeOptions::default());
    }

    #[test]
    fn reconstructs_grid_3d_nd() {
        let w = gen::grid_laplacian_3d(4, 4, 3);
        let opts = AnalyzeOptions {
            ordering: OrderingChoice::NestedDissection(
                w.geometry,
                pselinv_order::nd::NdOptions { leaf_size: 4 },
            ),
            ..Default::default()
        };
        check_reconstruction(&w.matrix, &opts);
    }

    #[test]
    fn reconstructs_random_spd() {
        for seed in 0..4 {
            let m = gen::random_spd(30, 0.15, seed);
            check_reconstruction(&m, &AnalyzeOptions::default());
        }
    }

    #[test]
    fn reconstructs_dg_blocks() {
        let w = gen::dg_hamiltonian(3, 2, 1, 6, 5);
        check_reconstruction(&w.matrix, &AnalyzeOptions::default());
    }

    #[test]
    fn solve_matches_matvec() {
        let w = gen::grid_laplacian_2d(9, 9);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        let f = factorize(&w.matrix, sf).unwrap();
        let n = w.matrix.nrows();
        let xtrue: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = w.matrix.matvec(&xtrue);
        let x = f.solve(&b);
        for i in 0..n {
            assert!((x[i] - xtrue[i]).abs() < 1e-9, "x[{i}] = {} vs {}", x[i], xtrue[i]);
        }
    }

    #[test]
    fn singular_matrix_rejected() {
        // Zero matrix with diagonal pattern: every pivot is zero.
        let n = 4;
        let mut t = pselinv_sparse::TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 0.0);
        }
        let m = t.to_csc();
        let sf = Arc::new(analyze(&m.pattern(), &AnalyzeOptions::default()));
        match factorize(&m, sf) {
            Err(FactorError::Singular { .. }) => {}
            other => panic!("expected Singular, got {other:?}"),
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let w = gen::grid_laplacian_2d(3, 3);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        let other = gen::grid_laplacian_2d(4, 4).matrix;
        assert!(matches!(factorize(&other, sf), Err(FactorError::ShapeMismatch { .. })));
    }

    #[test]
    fn flops_positive_and_monotone() {
        let small = gen::grid_laplacian_2d(6, 6);
        let big = gen::grid_laplacian_2d(12, 12);
        let fs = factorize(
            &small.matrix,
            Arc::new(analyze(&small.matrix.pattern(), &AnalyzeOptions::default())),
        )
        .unwrap();
        let fb = factorize(
            &big.matrix,
            Arc::new(analyze(&big.matrix.pattern(), &AnalyzeOptions::default())),
        )
        .unwrap();
        assert!(fs.flops() > 0.0);
        assert!(fb.flops() > fs.flops());
    }
}
