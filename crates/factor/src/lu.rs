//! Right-looking supernodal LU factorization (unsymmetric values,
//! structurally symmetric pattern).
//!
//! This is the extension the paper describes as work in progress: the same
//! supernodal machinery as the LDLᵀ path, but with independent `L` and `U`
//! factors. The pattern is symmetrized before analysis (as SuperLU_DIST
//! does for its symbolic phase), and diagonal blocks are factored without
//! pivoting (static pivoting — the workload generators keep pivots safe).

use crate::panel::{locate_row, Panel, RowPos};
use pselinv_dense::kernels::{trsm_left_lower, trsm_right_lower_trans};
use pselinv_dense::{gemm, Mat, Transpose};
use pselinv_order::SymbolicFactor;
use pselinv_sparse::SparseMatrix;
use std::sync::Arc;

use crate::ldlt::FactorError;

/// A supernodal LU factorization `P A Pᵀ = L U`.
///
/// Per supernode `K`:
/// * `l.diag` — `w×w` block holding unit-lower `L_{K,K}` strictly below the
///   diagonal and `U_{K,K}` on and above it;
/// * `l.below` — `L_{R,K}` (`r×w`);
/// * `uright` — `U_{K,R}ᵀ` (`r×w`): row `p` holds column `R[p]` of `U_{K,*}`.
#[derive(Clone, Debug)]
pub struct LuFactor {
    /// Shared symbolic structure (of the symmetrized pattern).
    pub symbolic: Arc<SymbolicFactor>,
    /// Combined `L`/`U` diagonal + `L` below-panel per supernode.
    pub l: Vec<Panel>,
    /// `U_{K,R}ᵀ` panels per supernode.
    pub uright: Vec<Mat>,
}

/// Factorizes a (possibly unsymmetric) matrix whose symmetrized pattern
/// matches `symbolic`.
pub fn factorize_lu(
    a: &SparseMatrix,
    symbolic: Arc<SymbolicFactor>,
) -> Result<LuFactor, FactorError> {
    let sf = &*symbolic;
    if a.nrows() != sf.n || a.ncols() != sf.n {
        return Err(FactorError::ShapeMismatch { matrix_n: a.nrows(), symbolic_n: sf.n });
    }
    let permuted = a.permute_sym(sf.perm.new_of_old());
    let ns = sf.num_supernodes();
    let mut l: Vec<Panel> = (0..ns).map(|s| Panel::zeros(sf, s)).collect();
    let mut uright: Vec<Mat> =
        (0..ns).map(|s| Mat::zeros(sf.rows_of(s).len(), sf.width(s))).collect();

    // Scatter A: lower entries into l panels, upper into diag/uright.
    for j in 0..sf.n {
        let s = sf.part.col_to_sn[j];
        let jl = j - sf.first_col(s);
        for (&i, &v) in permuted.col_rows(j).iter().zip(permuted.col_values(j)) {
            if i >= j {
                // lower triangle: element of L-side storage of supernode s
                match locate_row(sf, s, i) {
                    RowPos::Diag(il) => l[s].diag[(il, jl)] = v,
                    RowPos::Below(il) => l[s].below[(il, jl)] = v,
                }
            } else {
                // upper triangle: A_ij with i < j → row supernode t = sn(i)
                let t = sf.part.col_to_sn[i];
                let il = i - sf.first_col(t);
                if j < sf.end_col(t) {
                    l[t].diag[(il, j - sf.first_col(t))] = v;
                } else {
                    match sf.rows_of(t).binary_search(&j) {
                        Ok(p) => uright[t][(p, il)] = v,
                        Err(_) => panic!("upper entry ({i},{j}) outside symmetrized structure"),
                    }
                }
            }
        }
    }

    for s in 0..ns {
        let w = sf.width(s);
        // 1. Unpivoted LU of the diagonal block (in place: unit L + U).
        {
            let dblk = &mut l[s].diag;
            for k in 0..w {
                let d = dblk[(k, k)];
                if d.abs() < f64::EPSILON * 16.0 {
                    return Err(FactorError::Singular { supernode: s, pivot: k });
                }
                for i in (k + 1)..w {
                    dblk[(i, k)] /= d;
                }
                for j in (k + 1)..w {
                    let ukj = dblk[(k, j)];
                    if ukj == 0.0 {
                        continue;
                    }
                    for i in (k + 1)..w {
                        let lik = dblk[(i, k)];
                        dblk[(i, j)] -= lik * ukj;
                    }
                }
            }
        }
        let dblk = l[s].diag.clone();

        // 2. Panel solves: L_{R,K} = A_{R,K} U_{K,K}⁻¹ and
        //    U_{K,R}ᵀ = A_{K,R}ᵀ L_{K,K}⁻ᵀ.
        {
            // X·U = B  ⇔  X·(Uᵀ)ᵀ = B with Uᵀ lower (non-unit).
            let mut ut = Mat::zeros(w, w);
            for j in 0..w {
                for i in 0..=j {
                    ut[(j, i)] = dblk[(i, j)];
                }
            }
            trsm_right_lower_trans(&mut l[s].below, &ut, false);
            trsm_right_lower_trans(&mut uright[s], &dblk, true);
        }

        // 3. Updates to ancestors: A_{i,c} -= L_{i,K} U_{K,c} (lower) and
        //    A_{c,i} -= L_{c,K} U_{K,i} (upper).
        let rows = sf.rows_of(s).to_vec();
        let nrows = rows.len();
        let rp = sf.rows_ptr[s];
        let blocks: Vec<_> = sf.blocks_of(s).to_vec();
        for b in &blocks {
            let target = b.sn;
            let lb = b.rows_begin - rp;
            let nb = b.rows_end - b.rows_begin;
            let m = nrows - lb;
            let l_all = l[s].below.submatrix(lb, 0, m, w);
            let u_all = uright[s].submatrix(lb, 0, m, w);
            let l_blk = l[s].below.submatrix(lb, 0, nb, w);
            let u_blk = uright[s].submatrix(lb, 0, nb, w);
            // lower update: L_all · U_blkᵀ  (m × nb)
            let mut ul = Mat::zeros(m, nb);
            gemm(1.0, &l_all, Transpose::No, &u_blk, Transpose::Yes, 0.0, &mut ul);
            // upper update: U_all · L_blkᵀ  (m × nb)
            let mut uu = Mat::zeros(m, nb);
            gemm(1.0, &u_all, Transpose::No, &l_blk, Transpose::Yes, 0.0, &mut uu);

            let first_t = sf.first_col(target);
            let end_t = sf.end_col(target);
            for q in 0..nb {
                let c = rows[lb + q];
                let cl = c - first_t;
                for p in q..m {
                    let i = rows[lb + p];
                    // lower target (i, c), i >= c
                    match locate_row(sf, target, i) {
                        RowPos::Diag(il) => l[target].diag[(il, cl)] -= ul[(p, q)],
                        RowPos::Below(il) => l[target].below[(il, cl)] -= ul[(p, q)],
                    }
                    // upper target (c, i), i > c
                    if p > q {
                        if i < end_t {
                            l[target].diag[(cl, i - first_t)] -= uu[(p, q)];
                        } else {
                            let pos = sf.rows_of(target).binary_search(&i).expect("structure");
                            uright[target][(pos, cl)] -= uu[(p, q)];
                        }
                    }
                }
            }
        }
    }

    Ok(LuFactor { symbolic, l, uright })
}

impl LuFactor {
    /// Solves `A x = b` in the original ordering.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let sf = &*self.symbolic;
        assert_eq!(b.len(), sf.n);
        let mut x: Vec<f64> = (0..sf.n).map(|new| b[sf.perm.old_of(new)]).collect();

        // Forward: L y = Pb.
        for s in 0..sf.num_supernodes() {
            let first = sf.first_col(s);
            let w = sf.width(s);
            let mut xs = Mat::zeros(w, 1);
            for jl in 0..w {
                xs[(jl, 0)] = x[first + jl];
            }
            trsm_left_lower(&self.l[s].diag, &mut xs, true);
            for jl in 0..w {
                x[first + jl] = xs[(jl, 0)];
            }
            for (p, &r) in sf.rows_of(s).iter().enumerate() {
                let mut acc = 0.0;
                for jl in 0..w {
                    acc += self.l[s].below[(p, jl)] * xs[(jl, 0)];
                }
                x[r] -= acc;
            }
        }

        // Backward: U x = y.
        for s in (0..sf.num_supernodes()).rev() {
            let first = sf.first_col(s);
            let w = sf.width(s);
            // subtract U_{K,R} x_R
            let mut xs = Mat::zeros(w, 1);
            for jl in 0..w {
                xs[(jl, 0)] = x[first + jl];
            }
            for (p, &r) in sf.rows_of(s).iter().enumerate() {
                for jl in 0..w {
                    xs[(jl, 0)] -= self.uright[s][(p, jl)] * x[r];
                }
            }
            // solve U_{K,K} x_K = rhs (upper, non-unit)
            for i in (0..w).rev() {
                let mut ssum = xs[(i, 0)];
                for k in (i + 1)..w {
                    ssum -= self.l[s].diag[(i, k)] * xs[(k, 0)];
                }
                xs[(i, 0)] = ssum / self.l[s].diag[(i, i)];
            }
            for jl in 0..w {
                x[first + jl] = xs[(jl, 0)];
            }
        }

        (0..sf.n).map(|old| x[sf.perm.new_of(old)]).collect()
    }

    /// Dense `L` (unit diagonal) of the permuted matrix, for verification.
    pub fn dense_l(&self) -> Mat {
        let sf = &*self.symbolic;
        let mut m = Mat::identity(sf.n);
        for s in 0..sf.num_supernodes() {
            let first = sf.first_col(s);
            for jl in 0..sf.width(s) {
                for il in (jl + 1)..sf.width(s) {
                    m[(first + il, first + jl)] = self.l[s].diag[(il, jl)];
                }
                for (p, &r) in sf.rows_of(s).iter().enumerate() {
                    m[(r, first + jl)] = self.l[s].below[(p, jl)];
                }
            }
        }
        m
    }

    /// Dense `U` of the permuted matrix, for verification.
    pub fn dense_u(&self) -> Mat {
        let sf = &*self.symbolic;
        let mut m = Mat::zeros(sf.n, sf.n);
        for s in 0..sf.num_supernodes() {
            let first = sf.first_col(s);
            for il in 0..sf.width(s) {
                for jl in il..sf.width(s) {
                    m[(first + il, first + jl)] = self.l[s].diag[(il, jl)];
                }
                for (p, &r) in sf.rows_of(s).iter().enumerate() {
                    m[(first + il, r)] = self.uright[s][(p, il)];
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pselinv_order::{analyze, AnalyzeOptions};
    use pselinv_sparse::gen;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Unsymmetric values on a symmetric pattern, diagonally dominant.
    fn unsym(n: usize, density: f64, seed: u64) -> SparseMatrix {
        let base = gen::random_spd(n, density, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let mut t = pselinv_sparse::TripletMatrix::new(n, n);
        let mut diag_boost = vec![0.0f64; n];
        for (i, j, v) in base.iter() {
            if i != j {
                let perturbed = v * rng.random_range(0.5..1.5);
                t.push(i, j, perturbed);
                diag_boost[i] += perturbed.abs();
            }
        }
        for (i, boost) in diag_boost.iter().enumerate() {
            t.push(i, i, boost + 1.0);
        }
        t.to_csc()
    }

    fn check_lu(a: &SparseMatrix) {
        let sf = Arc::new(analyze(&a.pattern(), &AnalyzeOptions::default()));
        let f = factorize_lu(a, sf.clone()).unwrap();
        let l = f.dense_l();
        let u = f.dense_u();
        let mut lu = Mat::zeros(sf.n, sf.n);
        gemm(1.0, &l, Transpose::No, &u, Transpose::No, 0.0, &mut lu);
        let permuted = a.permute_sym(sf.perm.new_of_old());
        let scale = 1.0 + lu.norm_max();
        for j in 0..sf.n {
            for i in 0..sf.n {
                assert!(
                    (lu[(i, j)] - permuted.get(i, j)).abs() < 1e-10 * scale,
                    "({i},{j}): {} vs {}",
                    lu[(i, j)],
                    permuted.get(i, j)
                );
            }
        }
    }

    #[test]
    fn reconstructs_unsymmetric_random() {
        for seed in 0..3 {
            check_lu(&unsym(25, 0.15, seed));
        }
    }

    #[test]
    fn reconstructs_symmetric_matrix_too() {
        let w = gen::grid_laplacian_2d(6, 5);
        check_lu(&w.matrix);
    }

    #[test]
    fn solve_matches_matvec() {
        let a = unsym(40, 0.1, 9);
        let sf = Arc::new(analyze(&a.pattern(), &AnalyzeOptions::default()));
        let f = factorize_lu(&a, sf).unwrap();
        let xtrue: Vec<f64> = (0..40).map(|i| (i as f64 * 0.61).cos()).collect();
        let b = a.matvec(&xtrue);
        let x = f.solve(&b);
        for i in 0..40 {
            assert!((x[i] - xtrue[i]).abs() < 1e-8, "x[{i}]");
        }
    }

    #[test]
    fn lu_matches_ldlt_on_symmetric_input() {
        let w = gen::grid_laplacian_2d(5, 5);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        let flu = factorize_lu(&w.matrix, sf.clone()).unwrap();
        let fld = crate::ldlt::factorize(&w.matrix, sf.clone()).unwrap();
        // U should equal D Lᵀ
        let u = flu.dense_u();
        let l = fld.dense_l();
        let d = fld.dense_d();
        let mut dlt = Mat::zeros(sf.n, sf.n);
        gemm(1.0, &d, Transpose::No, &l, Transpose::Yes, 0.0, &mut dlt);
        for j in 0..sf.n {
            for i in 0..sf.n {
                assert!((u[(i, j)] - dlt[(i, j)]).abs() < 1e-9);
            }
        }
    }
}
