//! Acceptance tests for the pole-batch engine (`pselinv_dist::batch`).
//!
//! The contract: batching changes *when* each pole's messages travel, never
//! what they compute or how much logical traffic they cause. Every pole of
//! a batched run must be bit-identical to its standalone run, its per-pole
//! logical volumes (tag-lane channel accounting) must equal the standalone
//! run's measured volumes exactly, and with `max_inflight > 1` the poles
//! must actually overlap (outstanding high-water mark spanning queries).

use pselinv_dist::{
    batched_selinv, batched_selinv_traced, distributed_selinv, factor_poles, pole_summary_table,
    BatchOptions, DistOptions,
};
use pselinv_factor::LdlFactor;
use pselinv_mpisim::{Grid2D, RankVolume};
use pselinv_order::{analyze, AnalyzeOptions};
use pselinv_selinv::SelectedInverse;
use pselinv_sparse::gen;
use pselinv_trees::TreeScheme;
use std::sync::{Arc, OnceLock};

const SHIFTS: [f64; 4] = [0.7, 1.9, 3.3, 5.9];

/// Shared pole factors (7×7 Laplacian, shifts inside the spectrum so the
/// LDLᵀs are indefinite) against one symbolic analysis.
fn pole_factors() -> &'static Vec<LdlFactor> {
    static F: OnceLock<Vec<LdlFactor>> = OnceLock::new();
    F.get_or_init(|| {
        let w = gen::grid_laplacian_2d(7, 7);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        factor_poles(&w.matrix, &SHIFTS, sf).unwrap()
    })
}

fn dist_opts(lookahead: usize) -> DistOptions {
    DistOptions { scheme: TreeScheme::ShiftedBinary, seed: 7, lookahead, ..Default::default() }
}

fn assert_bit_identical(a: &SelectedInverse, b: &SelectedInverse, what: &str) {
    let sf = &a.symbolic;
    for s in 0..sf.num_supernodes() {
        for j in 0..sf.width(s) {
            for i in 0..sf.width(s) {
                assert_eq!(
                    a.panels[s].diag[(i, j)].to_bits(),
                    b.panels[s].diag[(i, j)].to_bits(),
                    "{what}: diag {s} ({i},{j})"
                );
            }
            for i in 0..sf.rows_of(s).len() {
                assert_eq!(
                    a.panels[s].below[(i, j)].to_bits(),
                    b.panels[s].below[(i, j)].to_bits(),
                    "{what}: below {s} ({i},{j})"
                );
            }
        }
    }
}

/// The channel counters only split the logical fields; compare exactly
/// those against a standalone run's measured volumes.
fn assert_logical_volumes_equal(pole: &[RankVolume], standalone: &[RankVolume], what: &str) {
    assert_eq!(pole.len(), standalone.len(), "{what}: rank count");
    for (r, (p, s)) in pole.iter().zip(standalone).enumerate() {
        assert_eq!(p.sent, s.sent, "{what}: rank {r} sent bytes");
        assert_eq!(p.received, s.received, "{what}: rank {r} received bytes");
        assert_eq!(p.msgs_sent, s.msgs_sent, "{what}: rank {r} messages sent");
        assert_eq!(p.msgs_received, s.msgs_received, "{what}: rank {r} messages received");
    }
}

#[test]
fn batched_poles_are_bit_identical_to_standalone_runs() {
    let factors = pole_factors();
    let grid = Grid2D::new(2, 2);
    let standalone: Vec<(SelectedInverse, Vec<RankVolume>)> =
        factors.iter().map(|f| distributed_selinv(f, grid, &dist_opts(4))).collect();
    for max_inflight in [1usize, 2, 4, usize::MAX] {
        let run = batched_selinv(factors, grid, &BatchOptions { dist: dist_opts(4), max_inflight });
        assert_eq!(run.inverses.len(), factors.len());
        assert_eq!(run.query_volumes.len(), factors.len());
        for (q, (inv, (solo, solo_vol))) in run.inverses.iter().zip(&standalone).enumerate() {
            let what = format!("pole {q} (σ={}) max_inflight={max_inflight}", SHIFTS[q]);
            assert_bit_identical(solo, inv, &what);
            assert_logical_volumes_equal(&run.query_volumes[q], solo_vol, &what);
        }
    }
}

#[test]
fn per_pole_volumes_tile_the_aggregate() {
    // Channel accounting must cover *all* logical traffic of the batch:
    // summing the per-pole counters over queries reproduces each rank's
    // aggregate logical volume (no unattributed phase traffic).
    let factors = pole_factors();
    let grid = Grid2D::new(2, 2);
    let run = batched_selinv(factors, grid, &BatchOptions { dist: dist_opts(4), max_inflight: 4 });
    for rank in 0..grid.size() {
        let sent: u64 = run.query_volumes.iter().map(|q| q[rank].sent).sum();
        let msgs: u64 = run.query_volumes.iter().map(|q| q[rank].msgs_sent).sum();
        let recv: u64 = run.query_volumes.iter().map(|q| q[rank].received).sum();
        assert_eq!(sent, run.volumes[rank].sent, "rank {rank} sent");
        assert_eq!(msgs, run.volumes[rank].msgs_sent, "rank {rank} msgs");
        assert_eq!(recv, run.volumes[rank].received, "rank {rank} received");
    }
    // And the per-pole table renders one row per pole.
    let table = pole_summary_table(&run.query_volumes);
    assert_eq!(table.lines().count(), factors.len() + 1);
}

#[test]
fn batch_overlaps_queries() {
    // The whole point of the batch: with several poles admitted, some rank
    // must hold collectives of more than one supernode-task in flight at a
    // time — and more than a single-pole async run of the same window,
    // since the outstanding count spans queries.
    let factors = pole_factors();
    let grid = Grid2D::new(2, 2);
    let hwm = |t: &pselinv_trace::Trace| {
        t.ranks.iter().map(|r| r.metrics.outstanding_hwm).max().unwrap_or(0)
    };
    let (_, batched_trace) = batched_selinv_traced(
        factors,
        grid,
        &BatchOptions { dist: dist_opts(2), max_inflight: factors.len() },
        "poles/batched",
    );
    let h = hwm(&batched_trace);
    assert!(h > 1, "batched run should overlap, got high-water {h}");
    // With every pole racing, the window high-water exceeds one pole's
    // lookahead-2 window alone.
    let (_, _, solo_trace) =
        pselinv_dist::distributed_selinv_traced(&factors[0], grid, &dist_opts(2), "poles/solo");
    assert!(
        h > hwm(&solo_trace),
        "cross-query overlap should beat a single pole's window ({h} vs {})",
        hwm(&solo_trace)
    );
    // Trace meta describes the batch.
    assert_eq!(batched_trace.meta_str("queries"), Some("4"));
    assert_eq!(batched_trace.meta_str("max_inflight"), Some("4"));
}

#[test]
fn batch_works_multithreaded_and_on_rectangular_grids() {
    let factors = pole_factors();
    for grid in [Grid2D::new(2, 3), Grid2D::new(3, 1)] {
        let standalone: Vec<SelectedInverse> =
            factors.iter().map(|f| distributed_selinv(f, grid, &dist_opts(4)).0).collect();
        let run = batched_selinv(
            factors,
            grid,
            &BatchOptions { dist: DistOptions { threads: 4, ..dist_opts(4) }, max_inflight: 2 },
        );
        for (q, (inv, solo)) in run.inverses.iter().zip(&standalone).enumerate() {
            let what = format!("pole {q} on {}x{} threads=4", grid.pr, grid.pc);
            assert_bit_identical(solo, inv, &what);
        }
    }
}

#[test]
#[should_panic(expected = "share the batch's symbolic analysis")]
fn mismatched_symbolic_rejected() {
    let w = gen::grid_laplacian_2d(7, 7);
    let sf_a = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
    let sf_b = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
    let fa = factor_poles(&w.matrix, &[0.5], sf_a).unwrap().remove(0);
    let fb = factor_poles(&w.matrix, &[1.5], sf_b).unwrap().remove(0);
    let _ = batched_selinv(&[fa, fb], Grid2D::new(1, 1), &BatchOptions::default());
}
