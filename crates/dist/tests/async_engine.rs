//! Acceptance tests for the asynchronous pipelined supernode engine
//! (`lookahead >= 2`).
//!
//! The async engine reorders *communication*, never *arithmetic*: for every
//! grid, tree scheme, lookahead window and benign fault schedule, its result
//! panels must be bit-identical to the synchronous path and its per-rank
//! communication volumes (bytes, message counts, copied bytes) must be
//! exactly equal — the logical communication pattern is unchanged, only the
//! overlap differs.

use proptest::prelude::*;
use pselinv_chaos::{FaultPlan, FaultSpec};
use pselinv_dist::{
    distributed_selinv, distributed_selinv_traced, try_distributed_selinv, DistOptions, Layout,
};
use pselinv_factor::LdlFactor;
use pselinv_mpisim::{Grid2D, RankVolume, RunOptions};
use pselinv_order::{analyze, AnalyzeOptions};
use pselinv_selinv::SelectedInverse;
use pselinv_sparse::gen;
use pselinv_trees::{TreeBuilder, TreeScheme};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Shared small factor so the proptest cases don't re-factorize each time.
fn small_factor() -> &'static LdlFactor {
    static F: OnceLock<LdlFactor> = OnceLock::new();
    F.get_or_init(|| {
        let w = gen::grid_laplacian_2d(7, 7);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        pselinv_factor::factorize(&w.matrix, sf).unwrap()
    })
}

fn assert_bit_identical(a: &SelectedInverse, b: &SelectedInverse, what: &str) {
    let sf = &a.symbolic;
    for s in 0..sf.num_supernodes() {
        for j in 0..sf.width(s) {
            for i in 0..sf.width(s) {
                assert_eq!(
                    a.panels[s].diag[(i, j)].to_bits(),
                    b.panels[s].diag[(i, j)].to_bits(),
                    "{what}: diag {s} ({i},{j})"
                );
            }
            for i in 0..sf.rows_of(s).len() {
                assert_eq!(
                    a.panels[s].below[(i, j)].to_bits(),
                    b.panels[s].below[(i, j)].to_bits(),
                    "{what}: below {s} ({i},{j})"
                );
            }
        }
    }
}

fn assert_volumes_equal(a: &[RankVolume], b: &[RankVolume], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: rank count");
    for (r, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x, y, "{what}: rank {r} volume");
    }
}

fn opts(scheme: TreeScheme, lookahead: usize) -> DistOptions {
    DistOptions { scheme, seed: 7, threads: 1, lookahead, ..Default::default() }
}

#[test]
fn async_engine_is_bit_identical_across_windows_and_schemes() {
    let f = small_factor();
    for grid in [Grid2D::new(2, 2), Grid2D::new(2, 3), Grid2D::new(3, 1)] {
        for scheme in [
            TreeScheme::Flat,
            TreeScheme::Binary,
            TreeScheme::ShiftedBinary,
            TreeScheme::RandomPerm,
        ] {
            let (sync, sync_vol) = distributed_selinv(f, grid, &opts(scheme, 1));
            for lookahead in [2usize, 4, usize::MAX] {
                let (asyn, asyn_vol) = distributed_selinv(f, grid, &opts(scheme, lookahead));
                let what = format!("{}x{} {scheme} lookahead={lookahead}", grid.pr, grid.pc);
                assert_bit_identical(&sync, &asyn, &what);
                assert_volumes_equal(&sync_vol, &asyn_vol, &what);
            }
        }
    }
}

#[test]
fn async_volumes_match_structural_replay() {
    // The async path must preserve the *logical* communication exactly: its
    // measured byte counters still equal the structure-only replay used for
    // the paper tables.
    let f = small_factor();
    let grid = Grid2D::new(2, 3);
    let o = opts(TreeScheme::ShiftedBinary, usize::MAX);
    let (_, volumes) = distributed_selinv(f, grid, &o);
    let layout = Layout::new(f.symbolic.clone(), grid);
    let rep = pselinv_dist::replay_volumes(&layout, TreeBuilder::new(o.scheme, o.seed));
    let measured_total: u64 = volumes.iter().map(|v| v.sent).sum();
    assert_eq!(measured_total, rep.total_bytes());
}

#[test]
fn async_engine_overlaps_collectives() {
    // The whole point of the window: with lookahead > 1 at least one rank
    // must have had more than one collective outstanding at once, and the
    // sync path never exceeds one.
    let f = small_factor();
    let grid = Grid2D::new(2, 2);
    let (_, _, sync_trace) =
        distributed_selinv_traced(f, grid, &opts(TreeScheme::ShiftedBinary, 1), "sync");
    let (_, _, asyn_trace) =
        distributed_selinv_traced(f, grid, &opts(TreeScheme::ShiftedBinary, 4), "async");
    let hwm = |t: &pselinv_trace::Trace| {
        t.ranks.iter().map(|r| r.metrics.outstanding_hwm).max().unwrap_or(0)
    };
    assert_eq!(hwm(&sync_trace), 0, "sync path never reports outstanding collectives");
    let h = hwm(&asyn_trace);
    assert!(h > 1, "lookahead=4 should overlap supernodes, got high-water {h}");
}

#[test]
fn async_engine_multithreaded_gemms_stay_bit_identical() {
    let f = small_factor();
    let grid = Grid2D::new(2, 2);
    let mk = |threads, lookahead| DistOptions {
        scheme: TreeScheme::ShiftedBinary,
        seed: 7,
        threads,
        lookahead,
        ..Default::default()
    };
    let (sync, sync_vol) = distributed_selinv(f, grid, &mk(1, 1));
    for threads in [2, 4] {
        let (asyn, asyn_vol) = distributed_selinv(f, grid, &mk(threads, 4));
        let what = format!("threads={threads} lookahead=4");
        assert_bit_identical(&sync, &asyn, &what);
        assert_volumes_equal(&sync_vol, &asyn_vol, &what);
    }
}

fn chaos_opts(plan: FaultPlan) -> RunOptions {
    RunOptions {
        watchdog: Some(Duration::from_secs(30)),
        poll: Duration::from_millis(5),
        faults: Some(plan),
        telemetry: None,
        ..RunOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn async_engine_survives_chaos_bit_identically(
        seed in 0u64..1_000_000,
        scheme_i in 0usize..4,
        la_i in 0usize..3,
        grid_i in 0usize..2,
        delay in 0u64..40,
        jitter in 0u64..40,
        dup in 0u16..400,
        reorder in 0u16..400,
    ) {
        let scheme = [
            TreeScheme::Flat,
            TreeScheme::Binary,
            TreeScheme::ShiftedBinary,
            TreeScheme::RandomPerm,
        ][scheme_i];
        let lookahead = [2usize, 4, usize::MAX][la_i];
        let grid = [Grid2D::new(2, 2), Grid2D::new(2, 3)][grid_i];
        let f = small_factor();

        let (baseline, base_vol) = distributed_selinv(f, grid, &opts(scheme, 1));

        let plan = FaultPlan::new(seed ^ 0xa5a5_5a5a).with_default(FaultSpec {
            delay_us: delay,
            jitter_us: jitter,
            duplicate_permille: dup,
            reorder_permille: reorder,
            ..FaultSpec::default()
        });
        let (chaotic, vol) =
            try_distributed_selinv(f, grid, &opts(scheme, lookahead), &chaos_opts(plan))
                .expect("a crash-free fault plan must complete");

        let sf = &baseline.symbolic;
        for s in 0..sf.num_supernodes() {
            for j in 0..sf.width(s) {
                for i in 0..sf.width(s) {
                    prop_assert_eq!(
                        baseline.panels[s].diag[(i, j)].to_bits(),
                        chaotic.panels[s].diag[(i, j)].to_bits(),
                        "diag {} ({},{})", s, i, j
                    );
                }
                for i in 0..sf.rows_of(s).len() {
                    prop_assert_eq!(
                        baseline.panels[s].below[(i, j)].to_bits(),
                        chaotic.panels[s].below[(i, j)].to_bits(),
                        "below {} ({},{})", s, i, j
                    );
                }
            }
        }
        // Duplicate suppression reverses its accounting, so even the chaos
        // run's volumes equal the fault-free synchronous ones exactly.
        for r in 0..vol.len() {
            prop_assert_eq!(vol[r], base_vol[r], "rank {} volume diverged", r);
        }
    }
}
