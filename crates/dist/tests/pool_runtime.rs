//! Acceptance tests for the persistent intra-rank work-stealing pool
//! (`TaskRuntime::Pool`, the default).
//!
//! The pool reorders *scheduling*, never *arithmetic*: for every grid,
//! tree scheme, lookahead window, thread count and benign fault schedule,
//! its result panels must be bit-identical to both the fork-join baseline
//! and the serial path, and its per-rank communication volumes must be
//! exactly equal — local compute never touches the logical communication.

use proptest::prelude::*;
use pselinv_chaos::{FaultPlan, FaultSpec};
use pselinv_dist::{
    distributed_selinv, distributed_selinv_traced, try_distributed_selinv, DistOptions, Layout,
    TaskRuntime,
};
use pselinv_factor::LdlFactor;
use pselinv_mpisim::{Grid2D, RankVolume, RunOptions};
use pselinv_order::{analyze, AnalyzeOptions};
use pselinv_selinv::SelectedInverse;
use pselinv_sparse::gen;
use pselinv_trace::CollKind;
use pselinv_trees::{TreeBuilder, TreeScheme};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Shared small factor so the proptest cases don't re-factorize each time.
fn small_factor() -> &'static LdlFactor {
    static F: OnceLock<LdlFactor> = OnceLock::new();
    F.get_or_init(|| {
        let w = gen::grid_laplacian_2d(7, 7);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        pselinv_factor::factorize(&w.matrix, sf).unwrap()
    })
}

fn assert_bit_identical(a: &SelectedInverse, b: &SelectedInverse, what: &str) {
    let sf = &a.symbolic;
    for s in 0..sf.num_supernodes() {
        for j in 0..sf.width(s) {
            for i in 0..sf.width(s) {
                assert_eq!(
                    a.panels[s].diag[(i, j)].to_bits(),
                    b.panels[s].diag[(i, j)].to_bits(),
                    "{what}: diag {s} ({i},{j})"
                );
            }
            for i in 0..sf.rows_of(s).len() {
                assert_eq!(
                    a.panels[s].below[(i, j)].to_bits(),
                    b.panels[s].below[(i, j)].to_bits(),
                    "{what}: below {s} ({i},{j})"
                );
            }
        }
    }
}

fn assert_volumes_equal(a: &[RankVolume], b: &[RankVolume], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: rank count");
    for (r, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x, y, "{what}: rank {r} volume");
    }
}

fn opts(threads: usize, runtime: TaskRuntime, lookahead: usize) -> DistOptions {
    DistOptions { scheme: TreeScheme::ShiftedBinary, seed: 7, threads, runtime, lookahead }
}

#[test]
fn threads_zero_is_normalized_to_one() {
    // Regression: `threads: 0` used to skirt `div_ceil(0)` paths only via
    // the `<= 1` inline guard. The normalization now lives in one place.
    assert_eq!(opts(0, TaskRuntime::Pool, 1).worker_threads(), 1);
    assert_eq!(opts(1, TaskRuntime::Pool, 1).worker_threads(), 1);
    assert_eq!(opts(8, TaskRuntime::Pool, 1).worker_threads(), 8);
    let f = small_factor();
    let grid = Grid2D::new(2, 2);
    let (serial, vol1) = distributed_selinv(f, grid, &opts(1, TaskRuntime::Pool, 1));
    for runtime in [TaskRuntime::Pool, TaskRuntime::ForkJoin] {
        let (zero, vol0) = distributed_selinv(f, grid, &opts(0, runtime, 1));
        assert_bit_identical(&serial, &zero, "threads=0 vs threads=1");
        assert_volumes_equal(&vol1, &vol0, "threads=0 vs threads=1");
    }
}

#[test]
fn pool_matches_forkjoin_and_serial_bitwise() {
    let f = small_factor();
    for grid in [Grid2D::new(2, 2), Grid2D::new(2, 3)] {
        let (serial, vol1) = distributed_selinv(f, grid, &opts(1, TaskRuntime::Pool, 1));
        for lookahead in [1usize, 4] {
            for threads in [2usize, 4, 8] {
                let what = format!("{}x{} threads={threads} la={lookahead}", grid.pr, grid.pc);
                let (pool, volp) =
                    distributed_selinv(f, grid, &opts(threads, TaskRuntime::Pool, lookahead));
                let (fj, volf) =
                    distributed_selinv(f, grid, &opts(threads, TaskRuntime::ForkJoin, lookahead));
                assert_bit_identical(&serial, &pool, &format!("{what} pool"));
                assert_bit_identical(&serial, &fj, &format!("{what} forkjoin"));
                assert_volumes_equal(&vol1, &volp, &format!("{what} pool"));
                assert_volumes_equal(&vol1, &volf, &format!("{what} forkjoin"));
            }
        }
    }
}

#[test]
fn pool_volumes_match_structural_replay_and_trace_records_pool_stats() {
    // The accounting acceptance link with the pool enabled: measured
    // volumes still equal the structure-only replay exactly, and the trace
    // carries the pool's execute counters and per-worker Compute spans.
    let f = small_factor();
    let grid = Grid2D::new(2, 3);
    let o = opts(4, TaskRuntime::Pool, 4);
    let (_, volumes, trace) = distributed_selinv_traced(f, grid, &o, "pool/replay");
    let layout = Layout::new(f.symbolic.clone(), grid);
    let rep = pselinv_dist::replay_volumes(&layout, TreeBuilder::new(o.scheme, o.seed));
    let measured_total: u64 = volumes.iter().map(|v| v.sent).sum();
    assert_eq!(measured_total, rep.total_bytes(), "pool perturbed the logical volumes");
    let executed: u64 = trace.ranks.iter().map(|r| r.metrics.pool_executed).sum();
    assert!(executed > 0, "pool ran but recorded no executed tasks");
    let workers = trace.ranks.iter().map(|r| r.metrics.pool_workers).max().unwrap_or(0);
    assert_eq!(workers, 4, "pool worker count not recorded");
    let compute_spans: u64 =
        trace.ranks.iter().map(|r| r.metrics.kind(CollKind::Compute).spans).sum();
    assert!(compute_spans > 0, "no per-worker Compute spans recorded");
    assert!(trace.summary_table().contains("pool tasks: executed"));
}

fn chaos_opts(plan: FaultPlan) -> RunOptions {
    RunOptions {
        watchdog: Some(Duration::from_secs(30)),
        poll: Duration::from_millis(5),
        faults: Some(plan),
        telemetry: None,
        ..RunOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(18))]
    /// pool ≡ fork-join ≡ serial, bitwise, under grids × schemes ×
    /// lookahead × threads × benign chaos.
    #[test]
    fn pool_is_bit_identical_under_chaos(
        seed in 0u64..3,
        scheme_i in 0usize..4,
        la_i in 0usize..2,
        threads_i in 0usize..3,
        grid_i in 0usize..2,
        delay in 0u64..40,
        dup in 0u16..400,
        reorder in 0u16..400,
    ) {
        let scheme = [
            TreeScheme::Flat,
            TreeScheme::Binary,
            TreeScheme::ShiftedBinary,
            TreeScheme::RandomPerm,
        ][scheme_i];
        let lookahead = [1usize, 4][la_i];
        let threads = [2usize, 4, 8][threads_i];
        let grid = [Grid2D::new(2, 2), Grid2D::new(2, 3)][grid_i];
        let f = small_factor();

        let mk = |threads, runtime| DistOptions { scheme, seed: 7, threads, runtime, lookahead };
        let (baseline, base_vol) = distributed_selinv(f, grid, &mk(1, TaskRuntime::Pool));

        let plan = FaultPlan::new(seed.wrapping_mul(0x9e37_79b9) ^ 0xa5a5_5a5a).with_default(
            FaultSpec {
                delay_us: delay,
                jitter_us: delay / 2,
                duplicate_permille: dup,
                reorder_permille: reorder,
                ..FaultSpec::default()
            },
        );
        let (pool, pool_vol) = try_distributed_selinv(
            f,
            grid,
            &mk(threads, TaskRuntime::Pool),
            &chaos_opts(plan.clone()),
        )
        .expect("a crash-free fault plan must complete");
        let (fj, fj_vol) =
            try_distributed_selinv(f, grid, &mk(threads, TaskRuntime::ForkJoin), &chaos_opts(plan))
                .expect("a crash-free fault plan must complete");

        let sf = &baseline.symbolic;
        for s in 0..sf.num_supernodes() {
            for j in 0..sf.width(s) {
                for i in 0..sf.width(s) {
                    prop_assert_eq!(
                        baseline.panels[s].diag[(i, j)].to_bits(),
                        pool.panels[s].diag[(i, j)].to_bits(),
                        "pool diag {} ({},{})", s, i, j
                    );
                    prop_assert_eq!(
                        pool.panels[s].diag[(i, j)].to_bits(),
                        fj.panels[s].diag[(i, j)].to_bits(),
                        "forkjoin diag {} ({},{})", s, i, j
                    );
                }
                for i in 0..sf.rows_of(s).len() {
                    prop_assert_eq!(
                        baseline.panels[s].below[(i, j)].to_bits(),
                        pool.panels[s].below[(i, j)].to_bits(),
                        "pool below {} ({},{})", s, i, j
                    );
                    prop_assert_eq!(
                        pool.panels[s].below[(i, j)].to_bits(),
                        fj.panels[s].below[(i, j)].to_bits(),
                        "forkjoin below {} ({},{})", s, i, j
                    );
                }
            }
        }
        for r in 0..base_vol.len() {
            prop_assert_eq!(pool_vol[r], base_vol[r], "pool rank {} volume diverged", r);
            prop_assert_eq!(fj_vol[r], base_vol[r], "forkjoin rank {} volume diverged", r);
        }
    }
}
