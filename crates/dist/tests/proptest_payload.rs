//! Property: zero-copy payload sharing is observationally safe. A rank
//! that wraps a broadcast payload in a [`Mat`] without copying and then
//! mutates it detaches (copy-on-write) — the write never lands in the
//! buffer the root and the other receivers still hold.

use proptest::prelude::*;
use pselinv_dense::Mat;
use pselinv_mpisim::collectives::tree_bcast;
use pselinv_mpisim::run;
use pselinv_trees::{TreeBuilder, TreeScheme};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn receiver_mutation_never_aliases_the_shared_broadcast_buffer(
        seed in 0u64..1_000_000,
        nranks in 3usize..9,
        nrows in 1usize..7,
        ncols in 1usize..7,
        scheme_i in 0usize..4,
    ) {
        let scheme = [
            TreeScheme::Flat,
            TreeScheme::Binary,
            TreeScheme::ShiftedBinary,
            TreeScheme::RandomPerm,
        ][scheme_i];
        let receivers: Vec<usize> = (1..nranks).collect();
        let tree = TreeBuilder::new(scheme, 0xa11a5).build(0, &receivers, seed);
        let tree = &tree;
        let original: Vec<f64> = (0..nrows * ncols).map(|i| seed as f64 + i as f64).collect();
        let original = &original;
        let (results, _) = run(nranks, move |ctx| {
            let me = ctx.rank();
            let data = tree_bcast(ctx, tree, 1, (me == 0).then(|| original.clone()));
            // Wrap the shared payload without copying, then mutate: the
            // write must land in a detached buffer, not in the payload the
            // other ranks are still forwarding and reading.
            let mut m = Mat::from_shared(nrows, ncols, data.as_arc().clone());
            let was_shared = m.is_shared();
            m[(0, 0)] += 1.0 + me as f64;
            (data, was_shared, m.is_shared(), m[(0, 0)])
        });
        for (r, (data, was_shared, shared_after, mutated)) in results.into_iter().enumerate() {
            prop_assert!(was_shared, "rank {r}: wrapping a payload must not copy");
            prop_assert!(!shared_after, "rank {r}: mutation must detach the buffer");
            prop_assert_eq!(&data.to_vec(), original, "rank {r}: shared payload was scribbled");
            prop_assert_eq!(mutated, original[0] + 1.0 + r as f64, "rank {r}");
        }
    }
}
