//! Distributed selected inversion of *shifted* (indefinite) matrices.
//!
//! The PEXSI pole expansion evaluates `(H − σI)⁻¹` at complex-plane poles
//! whose real parts land inside the spectrum: the shifted LDLᵀ has negative
//! pivots. `tests/pexsi_pole.rs` pins the sequential path; this suite pins
//! the distributed one — the sync and async engines must agree with the
//! sequential result and, between themselves, must be *bit-identical* with
//! exactly equal per-rank volumes (the engines reorder communication, never
//! arithmetic; sequential-vs-distributed differs only by GEMM summation
//! order, so that comparison is a tight tolerance).

use pselinv_dist::{distributed_selinv, DistOptions};
use pselinv_factor::LdlFactor;
use pselinv_mpisim::Grid2D;
use pselinv_order::{analyze, AnalyzeOptions};
use pselinv_selinv::{selinv_ldlt, SelectedInverse};
use pselinv_sparse::{gen, SparseMatrix};
use pselinv_trees::TreeScheme;
use std::sync::Arc;

/// `H − σI` for the 2-D Laplacian `H`: σ inside the spectrum (0, 8) makes
/// the matrix indefinite.
fn shifted_factor(sigma: f64) -> LdlFactor {
    let w = gen::grid_laplacian_2d(7, 7);
    let n = w.matrix.nrows();
    let shifted = w.matrix.add_scaled(&SparseMatrix::identity(n), 1.0, -sigma);
    let sf = Arc::new(analyze(&shifted.pattern(), &AnalyzeOptions::default()));
    pselinv_factor::factorize(&shifted, sf).unwrap()
}

fn count_negative_pivots(f: &LdlFactor) -> usize {
    f.panels.iter().map(|p| (0..p.diag.nrows()).filter(|&i| p.diag[(i, i)] < 0.0).count()).sum()
}

fn assert_bit_identical(a: &SelectedInverse, b: &SelectedInverse, what: &str) {
    let sf = &a.symbolic;
    for s in 0..sf.num_supernodes() {
        for j in 0..sf.width(s) {
            for i in 0..sf.width(s) {
                assert_eq!(
                    a.panels[s].diag[(i, j)].to_bits(),
                    b.panels[s].diag[(i, j)].to_bits(),
                    "{what}: diag {s} ({i},{j})"
                );
            }
            for i in 0..sf.rows_of(s).len() {
                assert_eq!(
                    a.panels[s].below[(i, j)].to_bits(),
                    b.panels[s].below[(i, j)].to_bits(),
                    "{what}: below {s} ({i},{j})"
                );
            }
        }
    }
}

fn assert_close(a: &SelectedInverse, b: &SelectedInverse, tol: f64, what: &str) {
    let sf = &a.symbolic;
    for s in 0..sf.num_supernodes() {
        for j in 0..sf.width(s) {
            for i in 0..sf.width(s) {
                let (x, y) = (a.panels[s].diag[(i, j)], b.panels[s].diag[(i, j)]);
                assert!((x - y).abs() < tol, "{what}: diag {s} ({i},{j}): {x} vs {y}");
            }
            for i in 0..sf.rows_of(s).len() {
                let (x, y) = (a.panels[s].below[(i, j)], b.panels[s].below[(i, j)]);
                assert!((x - y).abs() < tol, "{what}: below {s} ({i},{j}): {x} vs {y}");
            }
        }
    }
}

#[test]
fn shifted_selinv_agrees_across_engines_on_2x2_grid() {
    let grid = Grid2D::new(2, 2);
    for sigma in [0.7, 2.5, 5.9] {
        let f = shifted_factor(sigma);
        assert!(
            count_negative_pivots(&f) > 0,
            "σ={sigma} inside the spectrum must produce negative pivots"
        );
        let seq = selinv_ldlt(&f);
        let mk = |lookahead| DistOptions {
            scheme: TreeScheme::ShiftedBinary,
            seed: 7,
            lookahead,
            ..Default::default()
        };
        let (sync, sync_vol) = distributed_selinv(&f, grid, &mk(1));
        // The distributed GEMM accumulation order differs from the
        // sequential one, so sequential agreement is a (tight) tolerance…
        assert_close(&seq, &sync, 1e-9, &format!("σ={sigma} seq vs sync"));
        // …while the engines must match each other to the bit, with equal
        // per-rank volumes, negative pivots or not.
        for lookahead in [2usize, 4, usize::MAX] {
            let (asyn, asyn_vol) = distributed_selinv(&f, grid, &mk(lookahead));
            let what = format!("σ={sigma} lookahead={lookahead}");
            assert_bit_identical(&sync, &asyn, &what);
            assert_eq!(sync_vol, asyn_vol, "{what}: volumes");
        }
    }
}

#[test]
fn shifted_selinv_matches_dense_inverse() {
    // End-to-end ground truth: the distributed shifted selected inverse
    // must equal the dense inverse of the shifted matrix on the pattern.
    let sigma = 2.5;
    let w = gen::grid_laplacian_2d(7, 7);
    let n = w.matrix.nrows();
    let shifted = w.matrix.add_scaled(&SparseMatrix::identity(n), 1.0, -sigma);
    let sf = Arc::new(analyze(&shifted.pattern(), &AnalyzeOptions::default()));
    let f = pselinv_factor::factorize(&shifted, sf).unwrap();
    let (dist, _) = distributed_selinv(
        &f,
        Grid2D::new(2, 2),
        &DistOptions { lookahead: 4, ..Default::default() },
    );
    let mut dm = pselinv_dense::Mat::from_col_major(n, n, &shifted.to_dense_col_major());
    let piv = pselinv_dense::lu_factor(&mut dm).unwrap();
    let dinv = pselinv_dense::lu_invert(&dm, &piv);
    for (i, j, _) in shifted.iter() {
        let v = dist.get(i, j).expect("selected entry");
        assert!((v - dinv[(i, j)]).abs() < 1e-8, "({i},{j}): {v} vs {}", dinv[(i, j)]);
    }
}
