//! Live-telemetry acceptance: the sampler must observe every rank, its
//! exports must parse, and — the invariant the observability layer is
//! not allowed to bend — attaching telemetry and causal stamps must
//! leave results bit-identical and logical volumes exactly equal to the
//! structural replay.

use pselinv_dist::{
    distributed_selinv, replay_volumes, try_distributed_selinv_traced, DistOptions, Layout,
};
use pselinv_mpisim::{Grid2D, RunOptions, Telemetry};
use pselinv_order::{analyze, AnalyzeOptions};
use pselinv_sparse::gen;
use pselinv_trace::Json;
use pselinv_trees::{TreeBuilder, TreeScheme};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn telemetry_observes_every_rank_and_preserves_volume_identities() {
    let w = gen::grid_laplacian_2d(10, 10);
    let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
    let f = pselinv_factor::factorize(&w.matrix, sf.clone()).unwrap();
    let grid = Grid2D::new(2, 3);
    let opts = DistOptions {
        scheme: TreeScheme::ShiftedBinary,
        seed: 7,
        threads: 1,
        lookahead: 2,
        ..Default::default()
    };

    let (baseline, base_vol) = distributed_selinv(&f, grid, &opts);

    let tel = Telemetry::new(Duration::from_micros(200), 4096);
    let run_opts = RunOptions { telemetry: Some(tel.clone()), ..RunOptions::default() };
    let (observed, vol, trace) =
        try_distributed_selinv_traced(&f, grid, &opts, &run_opts, "telemetry-run").unwrap();

    // Results bit-identical with the observability layer fully on.
    let a = &baseline.panels;
    let b = &observed.panels;
    for s in 0..sf.num_supernodes() {
        for j in 0..sf.width(s) {
            for i in 0..sf.width(s) {
                assert_eq!(a[s].diag[(i, j)].to_bits(), b[s].diag[(i, j)].to_bits());
            }
            for i in 0..sf.rows_of(s).len() {
                assert_eq!(a[s].below[(i, j)].to_bits(), b[s].below[(i, j)].to_bits());
            }
        }
    }

    // Per-rank volumes unchanged, and still equal to the structural replay.
    assert_eq!(base_vol, vol, "telemetry must not perturb logical volumes");
    let layout = Layout::new(sf, grid);
    let rep = replay_volumes(&layout, TreeBuilder::new(opts.scheme, opts.seed));
    let measured_total: u64 = vol.iter().map(|v| v.sent).sum();
    assert_eq!(measured_total, rep.total_bytes(), "trace/replay volume identity broke");

    // Traced per-rank sent bytes also agree with the runtime counters.
    let traced_sent: u64 =
        pselinv_trace::CollKind::ALL.iter().map(|&c| trace.sent_bytes(c).iter().sum::<u64>()).sum();
    assert_eq!(traced_sent, measured_total, "traced bytes diverge from runtime counters");

    // The sampler saw every rank at least once (the final snapshot runs
    // unconditionally, so this holds even for very short runs).
    let samples = tel.samples();
    assert!(!samples.is_empty());
    for rank in 0..grid.size() {
        assert!(samples.iter().any(|s| s.rank == rank), "no telemetry sample for rank {rank}");
    }

    // Exports are well-formed: every JSONL line parses, Prometheus text
    // carries one gauge line per rank per metric.
    let jsonl = tel.to_jsonl();
    for line in jsonl.lines() {
        let j = Json::parse(line).expect("JSONL line must parse");
        assert!(j.get("rank").and_then(Json::as_f64).is_some());
        assert!(j.get("t_us").and_then(Json::as_f64).is_some());
    }
    let prom = tel.prometheus();
    for rank in 0..grid.size() {
        assert!(
            prom.contains(&format!("pselinv_sent_bytes{{rank=\"{rank}\"}}")),
            "missing prometheus gauge for rank {rank}"
        );
    }
}
