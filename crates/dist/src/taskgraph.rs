//! Task-graph generation for the discrete-event machine simulator.
//!
//! The paper's PSelInv is "expressed in an asynchronous task model": no
//! barriers, synchronization only through data dependencies. This module
//! materializes exactly that task DAG — compute tasks on ranks, connected
//! by local dependencies and by messages — so `pselinv-des` can replay it
//! on a simulated machine at the paper's scales (64 … 12,100 ranks).
//!
//! Two graphs are produced:
//!
//! * [`selinv_graph`] — the selected inversion itself (both loops of
//!   Algorithm 1, with the `Col-Bcast` / `Row-Reduce` / diagonal-reduce
//!   collectives routed along the configured tree scheme);
//! * [`factorization_graph`] — a right-looking supernodal factorization in
//!   the style of SuperLU_DIST (panel broadcasts + ancestor updates), used
//!   for the reference curve in Fig. 8.

use crate::layout::Layout;
use crate::plan::CommPlan;
use pselinv_order::symbolic::SnBlock;
use pselinv_order::SymbolicFactor;
use pselinv_trace::{pack_task_tag, CollKind};
use pselinv_trees::{CollectiveTree, TreeBuilder, TreeScheme};
use std::collections::HashMap;

/// Task identifier.
pub type TaskId = u32;

/// Task classification, used for the computation/communication breakdown
/// of Fig. 9 (forwarding tasks spend no compute time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum TaskKind {
    /// Dense kernel execution (GEMM/TRSM/inversion).
    Compute = 0,
    /// Message forwarding / bookkeeping (zero or negligible flops).
    Forward = 1,
}

/// Options controlling graph generation.
#[derive(Clone, Copy, Debug)]
pub struct GraphOptions {
    /// Tree scheme for every restricted collective.
    pub scheme: TreeScheme,
    /// Seed for shifted/random schemes.
    pub seed: u64,
    /// When `false`, a global barrier is inserted between consecutive
    /// supernodes of the selected inversion — modeling the limited
    /// inter-supernode pipelining of the v0.7.3 release used as the
    /// second baseline in Fig. 8.
    pub pipelining: bool,
}

impl Default for GraphOptions {
    fn default() -> Self {
        Self { scheme: TreeScheme::ShiftedBinary, seed: 0x5e11, pipelining: true }
    }
}

/// A static task DAG over `nranks` ranks, in CSR form.
///
/// Edges carry `bytes`: `0` means a purely local dependency; a positive
/// value is a message of that size from the source task's rank to the
/// destination task's rank.
#[derive(Clone, Debug)]
pub struct TaskGraph {
    /// Number of ranks.
    pub nranks: usize,
    /// Executing rank of each task.
    pub task_rank: Vec<u32>,
    /// Floating-point work of each task.
    pub task_flops: Vec<f64>,
    /// Scheduling priority (lower runs first among ready tasks).
    pub task_prio: Vec<i64>,
    /// Task kind (compute vs forward).
    pub task_kind: Vec<TaskKind>,
    /// Trace tag of each task: `(CollKind, supernode)` packed with
    /// [`pselinv_trace::pack_task_tag`]. Lets the DES engine label spans
    /// and messages with the same `(phase, supernode)` vocabulary as the
    /// traced mpisim runtime.
    pub task_tag: Vec<u32>,
    /// Number of incoming dependencies (local + messages) per task.
    pub task_deps: Vec<u32>,
    /// CSR offsets into `succ` / `succ_bytes`.
    pub succ_ptr: Vec<u32>,
    /// Successor task ids.
    pub succ: Vec<TaskId>,
    /// Bytes carried on each successor edge (0 = local).
    pub succ_bytes: Vec<u64>,
}

impl TaskGraph {
    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.task_rank.len()
    }

    /// Out-edges of `t` as `(successor, bytes)` pairs.
    pub fn out_edges(&self, t: TaskId) -> impl Iterator<Item = (TaskId, u64)> + '_ {
        let lo = self.succ_ptr[t as usize] as usize;
        let hi = self.succ_ptr[t as usize + 1] as usize;
        self.succ[lo..hi].iter().copied().zip(self.succ_bytes[lo..hi].iter().copied())
    }

    /// Total flops across all tasks.
    pub fn total_flops(&self) -> f64 {
        self.task_flops.iter().sum()
    }

    /// Total message bytes across all edges.
    pub fn total_message_bytes(&self) -> u64 {
        self.succ_bytes.iter().sum()
    }

    /// Validates that every task can execute (the graph is acyclic and
    /// dependency counts are consistent); returns the topological order
    /// length, which must equal `num_tasks()`.
    pub fn validate(&self) -> usize {
        let mut deps = self.task_deps.clone();
        let mut ready: Vec<TaskId> =
            (0..self.num_tasks() as u32).filter(|&t| deps[t as usize] == 0).collect();
        let mut done = 0usize;
        while let Some(t) = ready.pop() {
            done += 1;
            for (s, _) in self.out_edges(t) {
                deps[s as usize] -= 1;
                if deps[s as usize] == 0 {
                    ready.push(s);
                }
            }
        }
        done
    }
}

struct GraphBuilder {
    rank: Vec<u32>,
    flops: Vec<f64>,
    prio: Vec<i64>,
    kind: Vec<TaskKind>,
    tag: Vec<u32>,
    /// Trace tag stamped on tasks created until the next `set_context`.
    ctx_tag: u32,
    edges: Vec<(u32, u32, u64)>,
}

impl GraphBuilder {
    fn new() -> Self {
        Self {
            rank: Vec::new(),
            flops: Vec::new(),
            prio: Vec::new(),
            kind: Vec::new(),
            tag: Vec::new(),
            ctx_tag: pack_task_tag(CollKind::Other, 0),
            edges: Vec::new(),
        }
    }

    /// Sets the `(phase, supernode)` context stamped on subsequently
    /// created tasks (including those made by `bcast_tasks`/`reduce_tasks`).
    fn set_context(&mut self, coll: CollKind, supernode: usize) {
        self.ctx_tag = pack_task_tag(coll, supernode);
    }

    fn task(&mut self, rank: usize, flops: f64, prio: i64, kind: TaskKind) -> TaskId {
        let id = self.rank.len() as u32;
        self.rank.push(rank as u32);
        self.flops.push(flops);
        self.prio.push(prio);
        self.kind.push(kind);
        self.tag.push(self.ctx_tag);
        id
    }

    fn edge(&mut self, from: TaskId, to: TaskId, bytes: u64) {
        self.edges.push((from, to, bytes));
    }

    /// Adds tree-forwarding tasks for a broadcast: `root_task` already
    /// holds the payload; returns a map rank → task id whose completion
    /// means "payload available on that rank".
    fn bcast_tasks(
        &mut self,
        tree: &CollectiveTree,
        root_task: TaskId,
        bytes: u64,
        prio: i64,
    ) -> HashMap<usize, TaskId> {
        let mut avail = HashMap::new();
        avail.insert(tree.root(), root_task);
        // BFS from the root so parents exist before children.
        let mut stack = vec![tree.root()];
        while let Some(r) = stack.pop() {
            let rt = avail[&r];
            for c in tree.children_of(r) {
                let ct = self.task(c, 0.0, prio, TaskKind::Forward);
                self.edge(rt, ct, bytes);
                avail.insert(c, ct);
                stack.push(c);
            }
        }
        avail
    }

    /// Adds tree tasks for a reduction: `local[rank]` lists tasks whose
    /// outputs this rank contributes (dependencies of its reduce step).
    /// Returns the root's reduce task (completion = reduced value ready).
    fn reduce_tasks(
        &mut self,
        tree: &CollectiveTree,
        local: &HashMap<usize, Vec<TaskId>>,
        bytes: u64,
        add_flops_per_child: f64,
        prio: i64,
    ) -> TaskId {
        // Create one reduce task per member, bottom-up.
        fn build(
            gb: &mut GraphBuilder,
            tree: &CollectiveTree,
            local: &HashMap<usize, Vec<TaskId>>,
            bytes: u64,
            fpc: f64,
            prio: i64,
            rank: usize,
        ) -> TaskId {
            let kids = tree.children_of(rank);
            let t = gb.task(
                rank,
                fpc * kids.len() as f64,
                prio,
                if kids.is_empty() { TaskKind::Forward } else { TaskKind::Compute },
            );
            if let Some(deps) = local.get(&rank) {
                for &d in deps {
                    gb.edge(d, t, 0);
                }
            }
            for c in kids {
                let ct = build(gb, tree, local, bytes, fpc, prio, c);
                gb.edge(ct, t, bytes);
            }
            t
        }
        build(self, tree, local, bytes, add_flops_per_child, prio, tree.root())
    }

    fn finish(self, nranks: usize) -> TaskGraph {
        let n = self.rank.len();
        let mut deps = vec![0u32; n];
        let mut counts = vec![0u32; n];
        for &(_, to, _) in &self.edges {
            deps[to as usize] += 1;
        }
        for &(from, _, _) in &self.edges {
            counts[from as usize] += 1;
        }
        let mut ptr = vec![0u32; n + 1];
        for i in 0..n {
            ptr[i + 1] = ptr[i] + counts[i];
        }
        let mut heads: Vec<u32> = ptr[..n].to_vec();
        let mut succ = vec![0u32; self.edges.len()];
        let mut bytes = vec![0u64; self.edges.len()];
        for &(from, to, b) in &self.edges {
            let slot = heads[from as usize] as usize;
            heads[from as usize] += 1;
            succ[slot] = to;
            bytes[slot] = b;
        }
        TaskGraph {
            nranks,
            task_rank: self.rank,
            task_flops: self.flops,
            task_prio: self.prio,
            task_kind: self.kind,
            task_tag: self.tag,
            task_deps: deps,
            succ_ptr: ptr,
            succ,
            succ_bytes: bytes,
        }
    }
}

fn find_block(sf: &SymbolicFactor, row_sn: usize, col_sn: usize) -> (usize, SnBlock) {
    let blocks = sf.blocks_of(col_sn);
    let i = blocks
        .binary_search_by_key(&row_sn, |b| b.sn)
        .unwrap_or_else(|_| panic!("block ({row_sn},{col_sn}) not in structure"));
    (sf.blocks_ptr[col_sn] + i, blocks[i])
}

/// Builds the selected-inversion task graph.
pub fn selinv_graph(layout: &Layout, opts: &GraphOptions) -> TaskGraph {
    let sf = layout.symbolic.clone();
    let grid = layout.grid;
    let plan = CommPlan::new(layout.clone(), TreeBuilder::new(opts.scheme, opts.seed));
    let ns = sf.num_supernodes();
    let mut gb = GraphBuilder::new();

    // Cross-supernode availability events.
    let mut lhat_task: HashMap<usize, TaskId> = HashMap::new(); // block id → L̂ ready
    let mut rred_root: HashMap<usize, TaskId> = HashMap::new(); // block id → A⁻¹ lower ready
    let mut atr_recv: HashMap<usize, TaskId> = HashMap::new(); // block id → A⁻¹ upper ready
    let mut diag_done: Vec<Option<TaskId>> = vec![None; ns];

    // ---- Phase 1 (ascending): diag bcast + panel TRSM. ----
    for k in 0..ns {
        let sp = plan.supernode_plan(k);
        let blocks = sf.blocks_of(k);
        if blocks.is_empty() {
            continue;
        }
        let w = sf.width(k) as f64;
        let prio = (ns - 1 - k) as i64; // processed late in phase 2; phase 1
                                        // order is driven by dependencies
        let diag_owner = layout.diag_owner(k);
        gb.set_context(CollKind::DiagBcast, k);
        let root_task = gb.task(diag_owner, 0.0, prio, TaskKind::Forward);
        let avail = gb.bcast_tasks(&sp.diag_bcast, root_task, layout.diag_bytes(k), prio);
        gb.set_context(CollKind::Compute, k);
        for (bi, b) in blocks.iter().enumerate() {
            let owner = layout.lower_owner(b, k);
            let t = gb.task(owner, b.nrows() as f64 * w * w, prio, TaskKind::Compute);
            gb.edge(avail[&owner], t, 0);
            lhat_task.insert(sf.blocks_ptr[k] + bi, t);
        }
    }

    // ---- Phase 2 (descending): Algorithm 1 steps 3–5. ----
    let mut prev_barrier: Option<TaskId> = None;
    for k in (0..ns).rev() {
        let sp = plan.supernode_plan(k);
        let blocks = sf.blocks_of(k);
        let w = sf.width(k) as f64;
        let prio = (ns - 1 - k) as i64;
        let diag_owner = layout.diag_owner(k);

        // Diagonal seed (inversion of the w×w block).
        gb.set_context(CollKind::Compute, k);
        let inv0 = gb.task(diag_owner, w * w * w, prio, TaskKind::Compute);
        if let Some(b) = prev_barrier {
            gb.edge(b, inv0, 0);
        }

        if blocks.is_empty() {
            diag_done[k] = Some(inv0);
            if !opts.pipelining {
                prev_barrier = Some(inv0);
            }
            continue;
        }

        // Transpose send + Col-Bcast per ancestor block.
        let mut u_avail: Vec<HashMap<usize, TaskId>> = Vec::with_capacity(blocks.len());
        for (bi, b) in blocks.iter().enumerate() {
            let bid = sf.blocks_ptr[k] + bi;
            let bytes = layout.block_bytes(b, k);
            let (src, dst) = sp.transposes[bi];
            let lhat = lhat_task[&bid];
            gb.set_context(CollKind::Transpose, k);
            let root_task = if src == dst {
                lhat
            } else {
                let t = gb.task(dst, 0.0, prio, TaskKind::Forward);
                gb.edge(lhat, t, bytes);
                t
            };
            let root_task = if let Some(barrier) = prev_barrier {
                let gated = gb.task(dst, 0.0, prio, TaskKind::Forward);
                gb.edge(root_task, gated, 0);
                gb.edge(barrier, gated, 0);
                gated
            } else {
                root_task
            };
            gb.set_context(CollKind::ColBcast, k);
            u_avail.push(gb.bcast_tasks(&sp.col_bcasts[bi], root_task, bytes, prio));
        }

        // GEMMs + Row-Reduce per target block.
        let mut rred_this: Vec<TaskId> = Vec::with_capacity(blocks.len());
        for (bj_i, bj) in blocks.iter().enumerate() {
            let prow_j = grid.prow_of_block(bj.sn);
            let rj = bj.nrows() as f64;
            // local GEMM tasks per participating rank
            gb.set_context(CollKind::Compute, k);
            let mut local: HashMap<usize, Vec<TaskId>> = HashMap::new();
            for (bi_i, bi) in blocks.iter().enumerate() {
                let rank = grid.rank_of(prow_j, grid.pcol_of_block(bi.sn));
                let ri = bi.nrows() as f64;
                let t = gb.task(rank, 2.0 * rj * ri * w, prio, TaskKind::Compute);
                gb.edge(u_avail[bi_i][&rank], t, 0);
                // stored-block availability
                let (jsn, isn) = (bj.sn, bi.sn);
                if jsn > isn {
                    let (bid, _) = find_block(&sf, jsn, isn);
                    gb.edge(rred_root[&bid], t, 0);
                } else if jsn < isn {
                    let (bid, _) = find_block(&sf, isn, jsn);
                    gb.edge(atr_recv[&bid], t, 0);
                } else {
                    gb.edge(diag_done[jsn].expect("ancestor diagonal not built"), t, 0);
                }
                local.entry(rank).or_default().push(t);
            }
            let bytes = layout.block_bytes(bj, k);
            gb.set_context(CollKind::RowReduce, k);
            let root = gb.reduce_tasks(&sp.row_reduces[bj_i], &local, bytes, rj * w, prio);
            rred_this.push(root);
            rred_root.insert(sf.blocks_ptr[k] + bj_i, root);
        }

        // Diagonal GEMMs + diagonal reduction.
        gb.set_context(CollKind::Compute, k);
        let mut dlocal: HashMap<usize, Vec<TaskId>> = HashMap::new();
        for (bi, b) in blocks.iter().enumerate() {
            let owner = layout.lower_owner(b, k);
            let t = gb.task(owner, 2.0 * w * w * b.nrows() as f64, prio, TaskKind::Compute);
            gb.edge(rred_this[bi], t, 0);
            dlocal.entry(owner).or_default().push(t);
        }
        gb.set_context(CollKind::DiagReduce, k);
        let dred = gb.reduce_tasks(&sp.diag_reduce, &dlocal, layout.diag_bytes(k), w * w, prio);
        let ddone = gb.task(diag_owner, 0.0, prio, TaskKind::Forward);
        gb.edge(inv0, ddone, 0);
        gb.edge(dred, ddone, 0);
        diag_done[k] = Some(ddone);

        // Step-5 A⁻¹ transposes.
        gb.set_context(CollKind::AinvTranspose, k);
        let mut last_tasks: Vec<TaskId> = vec![ddone];
        for (bj_i, bj) in blocks.iter().enumerate() {
            let bid = sf.blocks_ptr[k] + bj_i;
            let (src, dst) = sp.ainv_transposes[bj_i];
            if src == dst {
                atr_recv.insert(bid, rred_this[bj_i]);
                last_tasks.push(rred_this[bj_i]);
            } else {
                let t = gb.task(dst, 0.0, prio, TaskKind::Forward);
                gb.edge(rred_this[bj_i], t, layout.block_bytes(bj, k));
                atr_recv.insert(bid, t);
                last_tasks.push(t);
            }
        }

        // Optional v0.7.3-style barrier between supernodes.
        if !opts.pipelining {
            gb.set_context(CollKind::Barrier, k);
            let barrier = gb.task(diag_owner, 0.0, prio, TaskKind::Forward);
            for t in last_tasks {
                gb.edge(t, barrier, 0);
            }
            prev_barrier = Some(barrier);
        }
    }

    gb.finish(grid.size())
}

/// Builds a right-looking supernodal factorization task graph in the style
/// of SuperLU_DIST: factor diagonal, broadcast panel blocks, update
/// ancestors. Used as the reference curve of Fig. 8.
pub fn factorization_graph(layout: &Layout, opts: &GraphOptions) -> TaskGraph {
    let sf = layout.symbolic.clone();
    let grid = layout.grid;
    let builder = TreeBuilder::new(opts.scheme, opts.seed);
    let ns = sf.num_supernodes();
    let mut gb = GraphBuilder::new();

    // Pre-create diagonal-factor and panel tasks so updates from
    // descendants can point at them.
    let mut fdiag: Vec<TaskId> = Vec::with_capacity(ns);
    let mut fpanel: HashMap<usize, TaskId> = HashMap::new();
    for k in 0..ns {
        let w = sf.width(k) as f64;
        let prio = k as i64;
        gb.set_context(CollKind::Compute, k);
        fdiag.push(gb.task(layout.diag_owner(k), w * w * w / 3.0, prio, TaskKind::Compute));
        for (bi, b) in sf.blocks_of(k).iter().enumerate() {
            let t = gb.task(
                layout.lower_owner(b, k),
                b.nrows() as f64 * w * w,
                prio,
                TaskKind::Compute,
            );
            fpanel.insert(sf.blocks_ptr[k] + bi, t);
        }
    }

    for k in 0..ns {
        let blocks = sf.blocks_of(k);
        if blocks.is_empty() {
            continue;
        }
        let w = sf.width(k) as f64;
        let prio = k as i64;

        // Diagonal bcast down pc(K) to the panel owners.
        let mut lower_owners: Vec<usize> =
            blocks.iter().map(|b| layout.lower_owner(b, k)).collect();
        let diag_owner = layout.diag_owner(k);
        lower_owners.sort_unstable();
        lower_owners.dedup();
        lower_owners.retain(|&r| r != diag_owner);
        let dtree = builder.build(diag_owner, &lower_owners, (k as u64) << 3);
        gb.set_context(CollKind::DiagBcast, k);
        let davail = gb.bcast_tasks(&dtree, fdiag[k], layout.diag_bytes(k), prio);
        for (bi, b) in blocks.iter().enumerate() {
            let owner = layout.lower_owner(b, k);
            gb.edge(davail[&owner], fpanel[&(sf.blocks_ptr[k] + bi)], 0);
        }

        // L-blocks travel along their process row to the update columns;
        // "U"-blocks (transposes) travel down the update rows' columns.
        let pcols: Vec<usize> = blocks.iter().map(|b| grid.pcol_of_block(b.sn)).collect();
        let prows: Vec<usize> = blocks.iter().map(|b| grid.prow_of_block(b.sn)).collect();
        let mut l_avail: Vec<HashMap<usize, TaskId>> = Vec::with_capacity(blocks.len());
        let mut u_avail: Vec<HashMap<usize, TaskId>> = Vec::with_capacity(blocks.len());
        for (bi, b) in blocks.iter().enumerate() {
            let owner = layout.lower_owner(b, k);
            let bytes = layout.block_bytes(b, k);
            let pt = fpanel[&(sf.blocks_ptr[k] + bi)];
            // row bcast
            let prow = grid.prow_of_block(b.sn);
            let mut rcv: Vec<usize> = pcols.iter().map(|&pc| grid.rank_of(prow, pc)).collect();
            rcv.sort_unstable();
            rcv.dedup();
            rcv.retain(|&r| r != owner);
            let rtree = builder.build(owner, &rcv, ((k as u64) << 20) | (1 << 40) | bi as u64);
            gb.set_context(CollKind::Bcast, k);
            l_avail.push(gb.bcast_tasks(&rtree, pt, bytes, prio));
            // transpose + col bcast
            let udst = layout.upper_owner(b, k);
            gb.set_context(CollKind::Transpose, k);
            let uroot = if udst == owner {
                pt
            } else {
                let t = gb.task(udst, 0.0, prio, TaskKind::Forward);
                gb.edge(pt, t, bytes);
                t
            };
            let pcol = grid.pcol_of_block(b.sn);
            let mut crcv: Vec<usize> = prows.iter().map(|&pr| grid.rank_of(pr, pcol)).collect();
            crcv.sort_unstable();
            crcv.dedup();
            crcv.retain(|&r| r != udst);
            let ctree = builder.build(udst, &crcv, ((k as u64) << 20) | (2 << 40) | bi as u64);
            gb.set_context(CollKind::ColBcast, k);
            u_avail.push(gb.bcast_tasks(&ctree, uroot, bytes, prio));
        }

        // Updates: for every pair (bi ≥ bj), GEMM at (pr(bi.sn), pc(bj.sn))
        // targeting block (bi.sn, bj.sn) of supernode bj.sn.
        gb.set_context(CollKind::Compute, k);
        for (bj_i, bj) in blocks.iter().enumerate() {
            for (bi_i, bi) in blocks.iter().enumerate() {
                if bi.sn < bj.sn {
                    continue;
                }
                let rank = grid.rank_of(grid.prow_of_block(bi.sn), grid.pcol_of_block(bj.sn));
                let t = gb.task(
                    rank,
                    2.0 * bi.nrows() as f64 * bj.nrows() as f64 * w,
                    prio,
                    TaskKind::Compute,
                );
                gb.edge(l_avail[bi_i][&rank], t, 0);
                gb.edge(u_avail[bj_i][&rank], t, 0);
                // scatter target
                if bi.sn == bj.sn {
                    gb.edge(t, fdiag[bj.sn], 0);
                } else {
                    let (bid, _) = find_block(&sf, bi.sn, bj.sn);
                    gb.edge(t, fpanel[&bid], 0);
                }
            }
        }
    }

    gb.finish(grid.size())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::replay_volumes;
    use pselinv_mpisim::Grid2D;
    use pselinv_order::{analyze, AnalyzeOptions};
    use pselinv_sparse::gen;
    use std::sync::Arc;

    fn layout(pr: usize, pc: usize) -> Layout {
        let w = gen::grid_laplacian_2d(14, 14);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        Layout::new(sf, Grid2D::new(pr, pc))
    }

    #[test]
    fn selinv_graph_is_executable() {
        let l = layout(3, 3);
        for pipelining in [true, false] {
            let g = selinv_graph(&l, &GraphOptions { pipelining, ..Default::default() });
            assert_eq!(g.validate(), g.num_tasks(), "pipelining={pipelining}");
            assert!(g.total_flops() > 0.0);
        }
    }

    #[test]
    fn factorization_graph_is_executable() {
        let l = layout(2, 3);
        let g = factorization_graph(&l, &GraphOptions::default());
        assert_eq!(g.validate(), g.num_tasks());
        assert!(g.total_flops() > 0.0);
    }

    #[test]
    fn selinv_graph_messages_match_volume_replay() {
        // Every byte the replay accounts for must appear as a message edge
        // (and nothing else).
        let l = layout(3, 4);
        let opts = GraphOptions::default();
        let g = selinv_graph(&l, &opts);
        let rep = replay_volumes(&l, TreeBuilder::new(opts.scheme, opts.seed));
        assert_eq!(g.total_message_bytes(), rep.total_bytes());
    }

    #[test]
    fn tasks_live_on_valid_ranks() {
        let l = layout(2, 2);
        let g = selinv_graph(&l, &GraphOptions::default());
        for &r in &g.task_rank {
            assert!((r as usize) < g.nranks);
        }
    }

    #[test]
    fn flat_and_shifted_have_same_total_flops() {
        // Routing changes messages, not arithmetic.
        let l = layout(3, 3);
        let flat =
            selinv_graph(&l, &GraphOptions { scheme: TreeScheme::Flat, ..Default::default() });
        let shifted = selinv_graph(
            &l,
            &GraphOptions { scheme: TreeScheme::ShiftedBinary, ..Default::default() },
        );
        // Compare compute flops only (reduce interior-node add-flops differ
        // slightly between tree shapes).
        let comp = |g: &TaskGraph| -> f64 {
            g.task_flops
                .iter()
                .zip(&g.task_kind)
                .filter(|(_, &k)| k == TaskKind::Compute)
                .map(|(f, _)| f)
                .sum()
        };
        let a = comp(&flat);
        let b = comp(&shifted);
        assert!((a - b).abs() / a < 0.05, "{a} vs {b}");
    }

    #[test]
    fn barrier_mode_adds_tasks_and_stays_acyclic() {
        let l = layout(2, 3);
        let pipelined = selinv_graph(&l, &GraphOptions::default());
        let barriered = selinv_graph(&l, &GraphOptions { pipelining: false, ..Default::default() });
        assert!(barriered.num_tasks() > pipelined.num_tasks());
        assert_eq!(barriered.validate(), barriered.num_tasks());
    }

    #[test]
    fn task_tags_partition_collective_bytes() {
        // Message edges whose destination task is tagged ColBcast /
        // RowReduce must account for exactly the bytes the structural
        // replay attributes to those collectives — the invariant that lets
        // the DES tracer reuse the mpisim trace vocabulary.
        use pselinv_trace::unpack_task_tag;
        let l = layout(3, 3);
        let opts = GraphOptions::default();
        let g = selinv_graph(&l, &opts);
        let rep = replay_volumes(&l, TreeBuilder::new(opts.scheme, opts.seed));
        let mut col_sent = vec![0u64; g.nranks];
        let mut row_recv = vec![0u64; g.nranks];
        for t in 0..g.num_tasks() as u32 {
            for (s, b) in g.out_edges(t) {
                if b == 0 {
                    continue;
                }
                let (kind, _) = unpack_task_tag(g.task_tag[s as usize]);
                match kind {
                    CollKind::ColBcast => {
                        col_sent[g.task_rank[t as usize] as usize] += b;
                    }
                    CollKind::RowReduce => {
                        row_recv[g.task_rank[s as usize] as usize] += b;
                    }
                    _ => {}
                }
            }
        }
        assert_eq!(col_sent, rep.col_bcast_sent);
        assert_eq!(row_recv, rep.row_reduce_received);
    }

    #[test]
    fn single_rank_graph_has_no_messages() {
        let l = layout(1, 1);
        let g = selinv_graph(&l, &GraphOptions::default());
        assert_eq!(g.total_message_bytes(), 0);
        assert_eq!(g.validate(), g.num_tasks());
    }
}
