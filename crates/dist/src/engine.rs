//! The asynchronous pipelined phase-2 engine.
//!
//! The synchronous loop in [`crate::numeric`] executes descending
//! supernodes strictly one at a time with blocking collectives — exactly
//! the lock-step schedule the paper's tree-based *asynchronous*
//! communication is designed to beat. This module converts that loop into
//! an event-driven state machine: each in-flight supernode is a
//! [`SnTask`] whose stages (transpose exchange, `Col-Bcast`s, local
//! GEMMs, `Row-Reduce`s, the diagonal reduction, the step-5 `A⁻¹`
//! transposes) advance independently as their inputs arrive, over the
//! nonblocking tree collectives of [`pselinv_mpisim::nb`]. A per-rank
//! progress loop keeps up to `lookahead` supernodes active at once and
//! blocks on the inbox only when no task can advance.
//!
//! # Determinism
//!
//! The asynchronous schedule reorders *communication*, never
//! *arithmetic*:
//!
//! * every GEMM target block keeps its fixed ascending-ancestor
//!   accumulation order ([`local_gemms`] is shared with the synchronous
//!   path);
//! * nonblocking reductions consume child contributions in arrival order
//!   but park them in per-child slots summed in the tree's fixed child
//!   order ([`TreeReduceNb`]);
//! * the diagonal update accumulates its block contributions in block
//!   order, as before.
//!
//! Results are therefore bit-identical to the synchronous engine at any
//! window size, and the logical communication volumes (bytes, messages,
//! physical copies) are unchanged — the same messages travel the same
//! tree edges, just earlier.
//!
//! # Deadlock freedom
//!
//! Each rank activates the supernodes it participates in, in descending
//! order, and a task stays active until done. Consider the globally
//! highest-indexed unfinished supernode `k*`: on every participating rank
//! all supernodes above `k*` are finished, so `k*` is active there (a
//! full window would imply an unfinished task above `k*`). Its stage
//! dependencies reach only finished supernodes and `k*` itself, so some
//! rank can always advance it; induction drains the schedule.
//!
//! The multi-query driver ([`phase2_multi`]) extends the argument across
//! the pole batch: every rank admits queries in ascending query order,
//! bounded by `max_inflight` *unfinished* admitted queries. Consider the
//! lowest-indexed globally-unfinished query `q*`: every earlier query is
//! finished on every rank, so each rank's unfinished-admitted count ignores
//! them and `q*` is admitted everywhere (admission is ascending). Within
//! `q*` the single-query argument applies, and [`crate::numeric::tag_q`]'s
//! query lane keeps its messages from cross-matching with any other
//! in-flight query.

use crate::numeric::{
    diag_contrib, find_block, gemm_task_specs, local_gemms, pack, share, span_key, tag_q, unpack,
    LocalExec, RankState, PHASE_AINV_TRANS, PHASE_COL_BCAST, PHASE_DIAG_REDUCE, PHASE_ROW_REDUCE,
    PHASE_TRANSPOSE,
};
use crate::plan::SupernodePlan;
use pselinv_dense::{gemm, ldlt_invert, Mat, Transpose};
use pselinv_mpisim::{Payload, RankCtx, RecvRequest, TreeBcastNb, TreeReduceNb};
use pselinv_pool::Batch;
use pselinv_trace::CollKind;
use std::collections::HashMap;
use std::time::Duration;

/// Ancestor data a supernode's GEMM stage reads from [`RankState`], i.e.
/// an output of an earlier (higher-indexed) supernode's task on this rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Need {
    /// `ainv_lower[bid]` — produced by a `Row-Reduce` root.
    Lower(usize),
    /// `ainv_upper[bid]` — produced by a step-5 `A⁻¹` transpose.
    Upper(usize),
    /// `ainv_diag[sn]` — produced by a diagonal reduction.
    Diag(usize),
}

impl Need {
    fn satisfied(self, st: &RankState<'_>) -> bool {
        match self {
            Need::Lower(bid) => st.ainv_lower.contains_key(&bid),
            Need::Upper(bid) => st.ainv_upper.contains_key(&bid),
            Need::Diag(sn) => st.ainv_diag.contains_key(&sn),
        }
    }
}

/// Per-block `Col-Bcast` progress.
enum Cb {
    /// This rank is not a member of the tree.
    Out,
    /// This rank is the root, still waiting for the transpose to deliver
    /// `Û_{K,I}` before it can launch the broadcast.
    Root,
    /// In flight.
    Run(TreeBcastNb),
    Done,
}

/// Per-block `Row-Reduce` progress.
enum Rr {
    Out,
    /// Member, waiting for the local GEMM stage to produce contributions.
    Wait,
    Run(TreeReduceNb),
    Done,
}

/// Diagonal-reduction progress.
enum Dr {
    Out,
    /// Participant, waiting for this rank's owned `A⁻¹` lower blocks.
    Wait,
    Run(TreeReduceNb),
    Done,
}

/// One in-flight descending supernode on one rank: the rank-local slice of
/// steps a′/a/1/b/2+c/3′ of Algorithm 1, as an explicit state machine.
struct SnTask {
    k: usize,
    /// Pending transpose receives `(bi, request)`.
    t_recvs: Vec<(usize, RecvRequest)>,
    /// `Û_{K,I}` blocks available on this rank, keyed by block index.
    ucur: HashMap<usize, Mat>,
    cb: Vec<Cb>,
    /// Ancestor `A⁻¹` data the GEMM stage needs (deduplicated).
    needs: Vec<Need>,
    gemm_done: bool,
    /// In-flight pool batch of this supernode's GEMM tasks. While it runs
    /// on the workers, the submitting thread keeps polling the nonblocking
    /// collectives of every active supernode — the intra-rank
    /// communication/computation overlap.
    gemm_batch: Option<Batch<(usize, Mat)>>,
    contrib: HashMap<usize, Mat>,
    rr: Vec<Rr>,
    /// Block indices whose `Row-Reduce` roots on this rank (the owned
    /// `A⁻¹_{J,K}` blocks) gate the diagonal contribution.
    owned_bids: Vec<usize>,
    dr: Dr,
    /// Pending step-5 `A⁻¹` transpose receives `(bj_i, request)`.
    at_recvs: Vec<(usize, RecvRequest)>,
    /// Step-5 sends/self-copies waiting for this rank's `A⁻¹_{J,K}`.
    at_pending: Vec<usize>,
}

impl SnTask {
    /// Activates supernode `k` on this rank: issues the transpose sends,
    /// posts every receive the task will ever need, and launches the
    /// non-root sides of the `Col-Bcast`s.
    fn activate(ctx: &mut RankCtx, st: &RankState<'_>, sp: &SupernodePlan, k: usize) -> Self {
        let sf = st.sf;
        let me = st.me;
        let layout = st.layout;
        let blocks = sf.blocks_of(k);

        // Step a': transpose sends fire immediately (L̂ is shared storage
        // from phase 1, so each send is a reference-count bump); receives
        // are posted as requests for the progress loop.
        ctx.tracer().push_scope(CollKind::Transpose, span_key(st.qid, k));
        let mut ucur: HashMap<usize, Mat> = HashMap::new();
        let mut t_recvs = Vec::new();
        for (bi, _b) in blocks.iter().enumerate() {
            let (src, dst) = sp.transposes[bi];
            let bid = sf.blocks_ptr[k] + bi;
            if src == dst {
                if me == src {
                    ucur.insert(bi, st.lhat[&bid].clone());
                }
            } else if me == src {
                let data = pack(ctx, &st.lhat[&bid]);
                ctx.send(dst, tag_q(st.qid, PHASE_TRANSPOSE, k, bi), data);
            } else if me == dst {
                t_recvs.push((bi, RecvRequest::post(src, tag_q(st.qid, PHASE_TRANSPOSE, k, bi))));
            }
        }
        ctx.tracer().pop_scope();

        // Step a: non-root Col-Bcast members post their parent receive now;
        // a root waits until the transpose delivers its Û block.
        ctx.tracer().push_scope(CollKind::ColBcast, span_key(st.qid, k));
        let cb: Vec<Cb> = (0..blocks.len())
            .map(|bi| {
                let tree = &sp.col_bcasts[bi];
                if !tree.members().contains(&me) {
                    Cb::Out
                } else if me == tree.root() {
                    Cb::Root
                } else {
                    Cb::Run(TreeBcastNb::start(
                        ctx,
                        tree,
                        tag_q(st.qid, PHASE_COL_BCAST, k, bi),
                        None::<Payload>,
                    ))
                }
            })
            .collect();
        ctx.tracer().pop_scope();

        // GEMM dependency set: the ancestor A⁻¹ pieces gather_sub will
        // read, exactly the (target, ancestor) pairs local_gemms runs here.
        let mut needs: Vec<Need> = Vec::new();
        for bj in blocks {
            let prow_j = layout.grid.prow_of_block(bj.sn);
            for bi in blocks {
                if layout.grid.rank_of(prow_j, layout.grid.pcol_of_block(bi.sn)) != me {
                    continue;
                }
                let need = match bj.sn.cmp(&bi.sn) {
                    std::cmp::Ordering::Greater => Need::Lower(find_block(sf, bj.sn, bi.sn).0),
                    std::cmp::Ordering::Less => Need::Upper(find_block(sf, bi.sn, bj.sn).0),
                    std::cmp::Ordering::Equal => Need::Diag(bj.sn),
                };
                if !needs.contains(&need) {
                    needs.push(need);
                }
            }
        }

        let rr: Vec<Rr> = (0..blocks.len())
            .map(
                |bj_i| {
                    if sp.row_reduces[bj_i].members().contains(&me) {
                        Rr::Wait
                    } else {
                        Rr::Out
                    }
                },
            )
            .collect();
        let owned_bids: Vec<usize> = blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| layout.lower_owner(b, k) == me)
            .map(|(bj_i, _)| sf.blocks_ptr[k] + bj_i)
            .collect();
        let dr = if layout.diag_owner(k) == me || sp.diag_reduce.members().contains(&me) {
            Dr::Wait
        } else {
            Dr::Out
        };

        // Step 3': post the A⁻¹ transpose receives; queue the sends until
        // the Row-Reduce produces the owned block.
        let mut at_recvs = Vec::new();
        let mut at_pending = Vec::new();
        for bj_i in 0..blocks.len() {
            let (src, dst) = sp.ainv_transposes[bj_i];
            if me == src {
                at_pending.push(bj_i);
            } else if me == dst {
                at_recvs
                    .push((bj_i, RecvRequest::post(src, tag_q(st.qid, PHASE_AINV_TRANS, k, bj_i))));
            }
        }

        SnTask {
            k,
            t_recvs,
            ucur,
            cb,
            needs,
            gemm_done: false,
            gemm_batch: None,
            contrib: HashMap::new(),
            rr,
            owned_bids,
            dr,
            at_recvs,
            at_pending,
        }
    }

    fn is_done(&self) -> bool {
        self.t_recvs.is_empty()
            && self.cb.iter().all(|c| matches!(c, Cb::Out | Cb::Done))
            && self.gemm_done
            && self.rr.iter().all(|r| matches!(r, Rr::Out | Rr::Done))
            && matches!(self.dr, Dr::Out | Dr::Done)
            && self.at_recvs.is_empty()
            && self.at_pending.is_empty()
    }

    /// Advances every stage as far as its inputs allow; returns whether
    /// anything changed (the progress loop blocks only when no task moved).
    fn poll(
        &mut self,
        ctx: &mut RankCtx,
        st: &mut RankState<'_>,
        sp: &SupernodePlan,
        exec: &LocalExec,
    ) -> bool {
        let k = self.k;
        let sf = st.sf;
        let me = st.me;
        let blocks = sf.blocks_of(k);
        let w = sf.width(k);
        let mut progressed = false;

        // Step a': drain arrived transposes into Û.
        if !self.t_recvs.is_empty() {
            ctx.tracer().push_scope(CollKind::Transpose, span_key(st.qid, k));
            let ucur = &mut self.ucur;
            self.t_recvs.retain_mut(|(bi, req)| {
                if req.test(ctx) {
                    let data = std::mem::replace(req, RecvRequest::post(0, 0))
                        .take()
                        .expect("completed request has a payload");
                    ucur.insert(*bi, unpack(blocks[*bi].nrows(), w, data));
                    progressed = true;
                    false
                } else {
                    true
                }
            });
            ctx.tracer().pop_scope();
        }

        // Step a: launch root broadcasts whose Û arrived; forward/finish
        // the rest.
        for (bi, b) in blocks.iter().enumerate() {
            let tree = &sp.col_bcasts[bi];
            match &mut self.cb[bi] {
                Cb::Root if self.ucur.contains_key(&bi) => {
                    ctx.tracer().push_scope(CollKind::ColBcast, span_key(st.qid, k));
                    let payload = pack(ctx, &self.ucur[&bi]);
                    let nb = TreeBcastNb::start(
                        ctx,
                        tree,
                        tag_q(st.qid, PHASE_COL_BCAST, k, bi),
                        Some(payload),
                    );
                    debug_assert!(nb.is_done(), "the root side completes at start");
                    ctx.tracer().pop_scope();
                    self.cb[bi] = Cb::Done;
                    progressed = true;
                }
                Cb::Run(nb) => {
                    ctx.tracer().push_scope(CollKind::ColBcast, span_key(st.qid, k));
                    if nb.poll(ctx, tree) {
                        let data = std::mem::replace(&mut self.cb[bi], Cb::Done);
                        if let Cb::Run(nb) = data {
                            let p = nb.into_payload().expect("non-root member got the payload");
                            self.ucur.entry(bi).or_insert_with(|| unpack(b.nrows(), w, p));
                        }
                        progressed = true;
                    }
                    ctx.tracer().pop_scope();
                }
                _ => {}
            }
        }

        // Step 1: the local GEMMs, once every Û block and every ancestor
        // A⁻¹ piece this rank reads is available. Under the pool executor
        // the inputs are gathered here (cheap index-copies and shared-Mat
        // clones) and the GEMMs are submitted as an owned-input batch: the
        // rank thread returns to polling collectives while workers
        // compute, and a later poll collects the results.
        if !self.gemm_done
            && self.gemm_batch.is_none()
            && self.t_recvs.is_empty()
            && self.cb.iter().all(|c| matches!(c, Cb::Out | Cb::Done))
            && self.needs.iter().all(|n| n.satisfied(st))
        {
            let specs = gemm_task_specs(st, blocks);
            match exec.pool() {
                Some(pool) if pool.threads() > 1 && specs.len() > 1 => {
                    let tasks: Vec<Box<dyn FnOnce() -> (usize, Mat) + Send + 'static>> = specs
                        .into_iter()
                        .map(|(bj_i, bi_list)| {
                            let bj = &blocks[bj_i];
                            let nrows = bj.nrows();
                            // (A⁻¹[RJ,RI], Û_{K,I}) operand pairs in the
                            // fixed ascending ancestor order.
                            let inputs: Vec<(Mat, Mat)> = bi_list
                                .into_iter()
                                .map(|bi_i| {
                                    (st.gather_sub(k, bj, &blocks[bi_i]), self.ucur[&bi_i].clone())
                                })
                                .collect();
                            Box::new(move || {
                                let mut c = Mat::zeros(nrows, w);
                                for (s, u) in &inputs {
                                    gemm(-1.0, s, Transpose::No, u, Transpose::No, 1.0, &mut c);
                                }
                                (bj_i, c)
                            })
                                as Box<dyn FnOnce() -> (usize, Mat) + Send + 'static>
                        })
                        .collect();
                    self.gemm_batch = Some(pool.submit(tasks));
                }
                _ => {
                    self.contrib = local_gemms(st, &self.ucur, blocks, k, w, exec);
                    self.gemm_done = true;
                }
            }
            progressed = true;
        }
        if self.gemm_batch.as_ref().is_some_and(Batch::try_done) {
            let batch = self.gemm_batch.take().expect("checked above");
            self.contrib = batch.wait().into_iter().collect();
            self.gemm_done = true;
            progressed = true;
        }

        // Step b: Row-Reduces — start once the GEMM contributions exist,
        // then advance on child arrivals.
        for (bj_i, bj) in blocks.iter().enumerate() {
            let tree = &sp.row_reduces[bj_i];
            match &mut self.rr[bj_i] {
                Rr::Wait if self.gemm_done => {
                    ctx.tracer().push_scope(CollKind::RowReduce, span_key(st.qid, k));
                    let local =
                        self.contrib.remove(&bj_i).unwrap_or_else(|| Mat::zeros(bj.nrows(), w));
                    let nb = TreeReduceNb::start(
                        ctx,
                        tree,
                        tag_q(st.qid, PHASE_ROW_REDUCE, k, bj_i),
                        local.into_vec(),
                    );
                    ctx.tracer().pop_scope();
                    self.rr[bj_i] = Rr::Run(nb);
                    progressed = true;
                }
                _ => {}
            }
            if let Rr::Run(nb) = &mut self.rr[bj_i] {
                ctx.tracer().push_scope(CollKind::RowReduce, span_key(st.qid, k));
                if nb.poll(ctx, tree) {
                    if let Rr::Run(nb) = std::mem::replace(&mut self.rr[bj_i], Rr::Done) {
                        if me == tree.root() {
                            let t = nb.into_result().expect("reduce root has the total");
                            let m = share(ctx, Mat::from_vec(bj.nrows(), w, t));
                            st.ainv_lower.insert(sf.blocks_ptr[k] + bj_i, m);
                        }
                    }
                    progressed = true;
                }
                ctx.tracer().pop_scope();
            }
        }

        // Steps 2 + c: diagonal contribution and reduction.
        let is_diag_owner = st.layout.diag_owner(k) == me;
        if matches!(self.dr, Dr::Wait)
            && self.gemm_done
            && self.owned_bids.iter().all(|bid| st.ainv_lower.contains_key(bid))
        {
            ctx.tracer().push_scope(CollKind::DiagReduce, span_key(st.qid, k));
            let dcon = diag_contrib(st, &self.owned_bids, w, exec);
            if sp.diag_reduce.is_empty() {
                if is_diag_owner {
                    finish_diag(st, k, w, dcon.into_vec());
                }
                self.dr = Dr::Done;
            } else {
                let nb = TreeReduceNb::start(
                    ctx,
                    &sp.diag_reduce,
                    tag_q(st.qid, PHASE_DIAG_REDUCE, k, 0),
                    dcon.into_vec(),
                );
                self.dr = Dr::Run(nb);
            }
            ctx.tracer().pop_scope();
            progressed = true;
        }
        if let Dr::Run(nb) = &mut self.dr {
            ctx.tracer().push_scope(CollKind::DiagReduce, span_key(st.qid, k));
            if nb.poll(ctx, &sp.diag_reduce) {
                if let Dr::Run(nb) = std::mem::replace(&mut self.dr, Dr::Done) {
                    if is_diag_owner {
                        let total =
                            nb.into_result().expect("diag owner must receive the reduction");
                        finish_diag(st, k, w, total);
                    }
                }
                progressed = true;
            }
            ctx.tracer().pop_scope();
        }

        // Step 3': A⁻¹ transposes — sends fire as soon as the Row-Reduce
        // lands the owned block; receives drain as they arrive.
        if !self.at_pending.is_empty() || !self.at_recvs.is_empty() {
            ctx.tracer().push_scope(CollKind::AinvTranspose, span_key(st.qid, k));
            let mut still = Vec::with_capacity(self.at_pending.len());
            for bj_i in self.at_pending.drain(..) {
                let (src, dst) = sp.ainv_transposes[bj_i];
                let bid = sf.blocks_ptr[k] + bj_i;
                if !st.ainv_lower.contains_key(&bid) {
                    still.push(bj_i);
                    continue;
                }
                if src == dst {
                    let m = st.ainv_lower[&bid].clone();
                    st.ainv_upper.insert(bid, m);
                } else {
                    let data = pack(ctx, &st.ainv_lower[&bid]);
                    ctx.send(dst, tag_q(st.qid, PHASE_AINV_TRANS, k, bj_i), data);
                }
                progressed = true;
            }
            self.at_pending = still;
            let (ainv_upper, blocks_ptr) = (&mut st.ainv_upper, sf.blocks_ptr[k]);
            self.at_recvs.retain_mut(|(bj_i, req)| {
                if req.test(ctx) {
                    let data = std::mem::replace(req, RecvRequest::post(0, 0))
                        .take()
                        .expect("completed request has a payload");
                    ainv_upper.insert(blocks_ptr + *bj_i, unpack(blocks[*bj_i].nrows(), w, data));
                    progressed = true;
                    false
                } else {
                    true
                }
            });
            ctx.tracer().pop_scope();
        }

        progressed
    }
}

/// `A⁻¹_{K,K} = (L D Lᵀ)⁻¹ − Σ`, symmetrized — identical arithmetic to the
/// synchronous path (contributions were accumulated in block order).
fn finish_diag(st: &mut RankState<'_>, k: usize, w: usize, total: Vec<f64>) {
    let mut diag = ldlt_invert(&st.factor_diag(k));
    let t = Mat::from_vec(w, w, total);
    diag.axpy(-1.0, &t);
    for jl in 0..w {
        for il in (jl + 1)..w {
            let v = 0.5 * (diag[(il, jl)] + diag[(jl, il)]);
            diag[(il, jl)] = v;
            diag[(jl, il)] = v;
        }
    }
    st.ainv_diag.insert(k, diag);
}

/// Does this rank touch supernode `k`'s phase-2 work at all? Skipped
/// supernodes never occupy a window slot.
fn participates(st: &RankState<'_>, sp: &SupernodePlan, k: usize) -> bool {
    let me = st.me;
    if st.layout.diag_owner(k) == me
        || sp.diag_reduce.members().contains(&me)
        || sp.transposes.iter().any(|&(s, d)| s == me || d == me)
        || sp.ainv_transposes.iter().any(|&(s, d)| s == me || d == me)
    {
        return true;
    }
    sp.col_bcasts.iter().any(|t| t.members().contains(&me))
        || sp.row_reduces.iter().any(|t| t.members().contains(&me))
}

/// Phase 2 (descending), asynchronous: a sliding window of up to
/// `lookahead` supernode tasks driven by one progress loop per rank. The
/// loop polls every active task; when nothing advances and the window
/// cannot grow, it parks on the inbox (visible to the watchdog) until a
/// message arrives.
pub(crate) fn phase2_async(
    ctx: &mut RankCtx,
    st: &mut RankState<'_>,
    plans: &[SupernodePlan],
    exec: &LocalExec,
    lookahead: usize,
) {
    phase2_multi(ctx, std::slice::from_mut(st), plans, exec, lookahead, 1);
}

/// One query's descending-supernode window inside [`phase2_multi`].
struct QueryRun {
    /// Supernodes `next..ns` are activated or skipped for this query.
    next: usize,
    active: Vec<SnTask>,
}

impl QueryRun {
    fn is_finished(&self) -> bool {
        self.next == 0 && self.active.is_empty()
    }
}

/// Phase 2 for a batch of queries sharing one symbolic analysis and one
/// communication plan: each query runs the asynchronous sliding-window
/// engine over its own [`RankState`] (whose `qid` namespaces every tag and
/// span), and one progress loop per rank drives them all — the collectives
/// of one pole overlap the local GEMMs of another on the same shared pool.
///
/// Admission control: queries are admitted in ascending index order, with
/// at most `max_inflight` *unfinished* admitted queries at a time. Every
/// rank computes admission from its local completion state, which is a
/// restriction of the same global order — see the module-level
/// deadlock-freedom argument.
pub(crate) fn phase2_multi(
    ctx: &mut RankCtx,
    states: &mut [RankState<'_>],
    plans: &[SupernodePlan],
    exec: &LocalExec,
    lookahead: usize,
    max_inflight: usize,
) {
    debug_assert!(lookahead >= 2, "the synchronous loop handles lookahead <= 1");
    let max_inflight = max_inflight.max(1);
    let ns = states.first().map_or(0, |st| st.sf.num_supernodes());
    let mut runs: Vec<QueryRun> =
        states.iter().map(|_| QueryRun { next: ns, active: Vec::new() }).collect();
    let mut admitted = 0usize; // queries 0..admitted have entered the race
    loop {
        let mut progressed = false;
        let arrivals = ctx.arrivals();
        // Admission in ascending query order, bounded by unfinished count.
        let mut running = runs[..admitted].iter().filter(|r| !r.is_finished()).count();
        while admitted < runs.len() && running < max_inflight {
            admitted += 1;
            running += 1;
            progressed = true;
        }
        // Grow every admitted query's window in descending supernode order.
        for (st, run) in states[..admitted].iter_mut().zip(&mut runs) {
            while run.active.len() < lookahead && run.next > 0 {
                let k = run.next - 1;
                if participates(st, &plans[k], k) {
                    run.active.push(SnTask::activate(ctx, st, &plans[k], k));
                    progressed = true;
                }
                run.next -= 1;
            }
        }
        if admitted == runs.len() && runs.iter().all(QueryRun::is_finished) {
            break;
        }
        ctx.outstanding(runs.iter().map(|r| r.active.len()).sum());
        for (st, run) in states[..admitted].iter_mut().zip(&mut runs) {
            for t in &mut run.active {
                progressed |= t.poll(ctx, st, &plans[t.k], exec);
            }
            let before = run.active.len();
            run.active.retain(|t| !t.is_done());
            progressed |= run.active.len() != before;
        }
        if !progressed {
            if runs.iter().any(|r| r.active.iter().any(|t| t.gemm_batch.is_some())) {
                // A GEMM batch is on the workers. Help execute queued
                // tasks; when the queues are dry (workers own the tail),
                // take a *bounded* park so the rank wakes promptly for
                // either a message or batch completion.
                let helped = exec.pool().is_some_and(pselinv_pool::Pool::help_one);
                if !helped {
                    ctx.wait_for_arrival_timeout(Duration::from_micros(200));
                }
            } else if ctx.arrivals() != arrivals {
                // A message was accepted off the inbox mid-pass (a task's
                // `try_match` drains *all* queued arrivals into the stash
                // before scanning for its own tag, so the message may
                // belong to a task polled earlier in this same pass). The
                // stash never wakes `wait_for_arrival` — parking here
                // would sleep through locally available work, and if every
                // rank does so the run deadlocks. Re-poll instead.
            } else {
                // Nothing moved, no arrival was stashed mid-pass, and every
                // window is as full as it can get: every pending stage
                // awaits a message. Park on the inbox so the watchdog sees
                // a blocked rank, not a hot spin.
                ctx.wait_for_arrival();
            }
        }
    }
    ctx.outstanding(0);
}
