//! Distributed-memory parallel selected inversion (PSelInv).
//!
//! This crate is the paper's system proper. It combines:
//!
//! * [`layout`] — the 2-D block-cyclic mapping of the supernodal factor
//!   onto a `Pr × Pc` process grid (identical to SuperLU_DIST's);
//! * [`plan`] — the preprocessing step: for every supernode `K`, the
//!   participant lists and [`pselinv_trees::CollectiveTree`]s of each
//!   restricted collective (`Col-Bcast` per ancestor block, `Row-Reduce`
//!   per target block, the diagonal reduction, and the transpose
//!   point-to-points);
//! * [`numeric`] — a real distributed execution of the selected inversion
//!   over the thread-based `pselinv-mpisim` runtime, verified element-wise
//!   against the sequential algorithm;
//! * [`volume`] — structure-only replay that accumulates per-rank
//!   communication volumes at arbitrary grid sizes (Tables I/II, the heat
//!   maps and histograms of Figs. 4–7);
//! * [`taskgraph`] — generation of the full asynchronous task DAG (compute
//!   tasks + messages) consumed by the `pselinv-des` machine simulator for
//!   the strong-scaling and time-breakdown experiments (Figs. 8–9), plus a
//!   SuperLU-style factorization DAG for the reference curve;
//! * [`batch`] — the pole-batch engine: many shifted selected inversions
//!   (`H − σ_k I`, the PEXSI pole expansion) driven concurrently over one
//!   shared symbolic analysis and communication plan, with per-query tag
//!   namespacing, per-pole volume attribution and an admission-control
//!   knob bounding how many poles race at once.

pub mod batch;
pub mod engine;
pub mod layout;
pub mod numeric;
pub mod plan;
pub mod taskgraph;
pub mod volume;

pub use batch::{
    batched_selinv, batched_selinv_traced, factor_poles, pole_summary_table, try_batched_selinv,
    try_batched_selinv_traced, BatchOptions, BatchRun,
};
pub use layout::Layout;
pub use numeric::{
    distributed_selinv, distributed_selinv_traced, try_distributed_selinv,
    try_distributed_selinv_traced, DistOptions, TaskRuntime,
};
pub use plan::{CommPlan, SupernodePlan};
pub use volume::{replay_volumes, VolumeReport};
