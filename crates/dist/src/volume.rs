//! Structure-only communication volume replay.
//!
//! Reproduces the measurement behind the paper's Tables I/II and
//! Figures 4–7: per-rank bytes sent during `Col-Bcast` and received during
//! `Row-Reduce`, for any grid size and tree scheme, without running any
//! numeric computation. Only the symbolic structure matters, so this
//! scales to the paper's 46×46 (2,116-rank) and larger grids on a laptop.

use crate::layout::Layout;
use crate::plan::CommPlan;
use pselinv_trees::{bcast_sent_volume, reduce_received_volume, TreeBuilder, VolumeStats};

/// Per-rank communication volumes of one full selected inversion.
#[derive(Clone, Debug)]
pub struct VolumeReport {
    /// Grid shape `(pr, pc)`.
    pub grid: (usize, usize),
    /// Bytes *sent* by each rank during all `Col-Bcast` collectives.
    pub col_bcast_sent: Vec<u64>,
    /// Bytes *received* by each rank during all `Row-Reduce` collectives.
    pub row_reduce_received: Vec<u64>,
    /// Bytes sent by each rank in the `L̂ → Û` and `A⁻¹` transpose
    /// point-to-points (not part of the paper's two headline measurements
    /// but included in totals).
    pub transpose_sent: Vec<u64>,
    /// Bytes sent by each rank in the loop-1 diagonal broadcasts and the
    /// diagonal reductions.
    pub diag_sent: Vec<u64>,
}

impl VolumeReport {
    /// Statistics of the `Col-Bcast` sent volumes, in MB (as in Table I).
    pub fn col_bcast_stats_mb(&self) -> VolumeStats {
        VolumeStats::from_volumes(&self.col_bcast_sent).scaled(1e-6)
    }

    /// Statistics of the `Row-Reduce` received volumes, in MB (Table II).
    pub fn row_reduce_stats_mb(&self) -> VolumeStats {
        VolumeStats::from_volumes(&self.row_reduce_received).scaled(1e-6)
    }

    /// `Col-Bcast` sent volume as a `pr × pc` heat map in MB, row-major
    /// (Figs. 5/6).
    pub fn col_bcast_heatmap_mb(&self) -> Vec<Vec<f64>> {
        self.heatmap(&self.col_bcast_sent)
    }

    /// `Row-Reduce` received volume heat map in MB (Fig. 7).
    pub fn row_reduce_heatmap_mb(&self) -> Vec<Vec<f64>> {
        self.heatmap(&self.row_reduce_received)
    }

    fn heatmap(&self, v: &[u64]) -> Vec<Vec<f64>> {
        let (pr, pc) = self.grid;
        (0..pr).map(|r| (0..pc).map(|c| v[r * pc + c] as f64 * 1e-6).collect()).collect()
    }

    /// Histogram of a volume vector (Fig. 4): returns `(bin_edges, counts)`
    /// with `nbins` equal-width bins over the data range, volumes in MB.
    pub fn histogram_mb(volumes: &[u64], nbins: usize) -> (Vec<f64>, Vec<usize>) {
        assert!(nbins > 0);
        let mb: Vec<f64> = volumes.iter().map(|&v| v as f64 * 1e-6).collect();
        let lo = mb.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = mb.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(1e-12);
        let mut counts = vec![0usize; nbins];
        for &v in &mb {
            let mut b = ((v - lo) / span * nbins as f64) as usize;
            if b >= nbins {
                b = nbins - 1;
            }
            counts[b] += 1;
        }
        let edges = (0..=nbins).map(|i| lo + span * i as f64 / nbins as f64).collect();
        (edges, counts)
    }

    /// Total bytes over all phases and ranks.
    pub fn total_bytes(&self) -> u64 {
        self.col_bcast_sent.iter().sum::<u64>()
            + self.row_reduce_received.iter().sum::<u64>()
            + self.transpose_sent.iter().sum::<u64>()
            + self.diag_sent.iter().sum::<u64>()
    }
}

/// Replays the communication of a full selected inversion and accumulates
/// per-rank volumes.
///
/// ```
/// use pselinv_dist::{replay_volumes, Layout};
/// use pselinv_mpisim::Grid2D;
/// use pselinv_order::{analyze, AnalyzeOptions};
/// use pselinv_sparse::gen;
/// use pselinv_trees::{TreeBuilder, TreeScheme};
/// use std::sync::Arc;
///
/// let w = gen::grid_laplacian_2d(12, 12);
/// let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
/// let layout = Layout::new(sf, Grid2D::new(4, 4));
/// let flat = replay_volumes(&layout, TreeBuilder::new(TreeScheme::Flat, 0));
/// let shifted = replay_volumes(&layout, TreeBuilder::new(TreeScheme::ShiftedBinary, 0));
/// // routing never changes the total volume, only its distribution
/// assert_eq!(
///     flat.col_bcast_sent.iter().sum::<u64>(),
///     shifted.col_bcast_sent.iter().sum::<u64>(),
/// );
/// ```
pub fn replay_volumes(layout: &Layout, builder: TreeBuilder) -> VolumeReport {
    let plan = CommPlan::new(layout.clone(), builder);
    let sf = layout.symbolic.clone();
    let p = layout.grid.size();
    let mut col_bcast_sent = vec![0u64; p];
    let mut row_reduce_received = vec![0u64; p];
    let mut transpose_sent = vec![0u64; p];
    let mut diag_sent = vec![0u64; p];

    for k in 0..sf.num_supernodes() {
        let sp = plan.supernode_plan(k);
        let blocks = sf.blocks_of(k);
        let diag_bytes = layout.diag_bytes(k);
        bcast_sent_volume(&sp.diag_bcast, diag_bytes, &mut diag_sent);
        for (bi, b) in blocks.iter().enumerate() {
            let bytes = layout.block_bytes(b, k);
            let (src, dst) = sp.transposes[bi];
            if src != dst {
                transpose_sent[src] += bytes;
            }
            bcast_sent_volume(&sp.col_bcasts[bi], bytes, &mut col_bcast_sent);
            reduce_received_volume(&sp.row_reduces[bi], bytes, &mut row_reduce_received);
            let (asrc, adst) = sp.ainv_transposes[bi];
            if asrc != adst {
                transpose_sent[asrc] += bytes;
            }
        }
        // Diagonal-contribution reduction carries w×w blocks.
        reduce_received_volume(&sp.diag_reduce, diag_bytes, &mut diag_sent);
    }

    VolumeReport {
        grid: (layout.grid.pr, layout.grid.pc),
        col_bcast_sent,
        row_reduce_received,
        transpose_sent,
        diag_sent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pselinv_mpisim::Grid2D;
    use pselinv_order::{analyze, AnalyzeOptions};
    use pselinv_sparse::gen;
    use pselinv_trees::TreeScheme;
    use std::sync::Arc;

    fn layout(pr: usize, pc: usize) -> Layout {
        let w = gen::grid_laplacian_2d(16, 16);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        Layout::new(sf, Grid2D::new(pr, pc))
    }

    #[test]
    fn total_tree_volume_is_scheme_invariant() {
        // A tree routes p̄-1 copies of each message regardless of shape, so
        // the *total* Col-Bcast volume must match across schemes; only the
        // distribution differs.
        let l = layout(4, 4);
        let flat = replay_volumes(&l, TreeBuilder::new(TreeScheme::Flat, 1));
        let bin = replay_volumes(&l, TreeBuilder::new(TreeScheme::Binary, 1));
        let shifted = replay_volumes(&l, TreeBuilder::new(TreeScheme::ShiftedBinary, 1));
        let t1: u64 = flat.col_bcast_sent.iter().sum();
        let t2: u64 = bin.col_bcast_sent.iter().sum();
        let t3: u64 = shifted.col_bcast_sent.iter().sum();
        assert_eq!(t1, t2);
        assert_eq!(t1, t3);
        let r1: u64 = flat.row_reduce_received.iter().sum();
        let r2: u64 = shifted.row_reduce_received.iter().sum();
        assert_eq!(r1, r2);
    }

    #[test]
    fn flat_tree_concentrates_on_roots() {
        // Under Flat the max per-rank volume must be at least the max under
        // ShiftedBinary (the whole point of the paper).
        let l = layout(4, 4);
        let flat = replay_volumes(&l, TreeBuilder::new(TreeScheme::Flat, 1));
        let shifted = replay_volumes(&l, TreeBuilder::new(TreeScheme::ShiftedBinary, 1));
        let fmax = *flat.col_bcast_sent.iter().max().unwrap();
        let smax = *shifted.col_bcast_sent.iter().max().unwrap();
        assert!(fmax >= smax, "flat max {fmax} < shifted max {smax}");
    }

    #[test]
    fn heatmap_shape_and_content() {
        let l = layout(3, 5);
        let rep = replay_volumes(&l, TreeBuilder::new(TreeScheme::Flat, 0));
        let hm = rep.col_bcast_heatmap_mb();
        assert_eq!(hm.len(), 3);
        assert_eq!(hm[0].len(), 5);
        let total: f64 = hm.iter().flatten().sum();
        let expect = rep.col_bcast_sent.iter().sum::<u64>() as f64 * 1e-6;
        assert!((total - expect).abs() < 1e-9);
    }

    #[test]
    fn histogram_counts_all_ranks() {
        let l = layout(4, 4);
        let rep = replay_volumes(&l, TreeBuilder::new(TreeScheme::Binary, 2));
        let (edges, counts) = VolumeReport::histogram_mb(&rep.col_bcast_sent, 8);
        assert_eq!(edges.len(), 9);
        assert_eq!(counts.iter().sum::<usize>(), 16);
    }

    #[test]
    fn single_rank_has_zero_volume() {
        let l = layout(1, 1);
        let rep = replay_volumes(&l, TreeBuilder::new(TreeScheme::ShiftedBinary, 0));
        assert_eq!(rep.total_bytes(), 0);
    }

    #[test]
    fn stats_are_consistent_with_raw_vectors() {
        let l = layout(4, 4);
        let rep = replay_volumes(&l, TreeBuilder::new(TreeScheme::ShiftedBinary, 3));
        let s = rep.col_bcast_stats_mb();
        let max = *rep.col_bcast_sent.iter().max().unwrap() as f64 * 1e-6;
        assert!((s.max - max).abs() < 1e-12);
        assert!(s.min <= s.median && s.median <= s.max);
    }
}
