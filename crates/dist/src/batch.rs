//! The pole-batch engine: concurrent selected inversions of many shifted
//! matrices `H − σ_k I` over one runtime.
//!
//! The driving application for PSelInv is the PEXSI pole expansion, which
//! needs `A⁻¹` at ~40–100 shifts `σ_k` that all share one sparsity pattern
//! — and therefore one symbolic analysis, one 2-D layout and one set of
//! precomputed collective trees. This module exploits that: the
//! [`crate::plan::CommPlan`] is computed once and shared (`Arc`d symbolic,
//! one plan vector) across every query, and all queries are driven
//! concurrently through the asynchronous engine
//! ([`crate::engine::phase2_multi`]) on one rank thread each, with one
//! shared work-stealing pool per rank. The communication of pole `k`
//! overlaps the local GEMMs of pole `k+1`; the [`BatchOptions::max_inflight`]
//! knob bounds how many poles race at once.
//!
//! Isolation comes from the tag/trace namespacing of
//! [`crate::numeric::tag_q`]: every message tag and every trace-scope key
//! carries the query id, so interleaved collectives of different poles can
//! never cross-match, and a batched trace still attributes every span and
//! byte to its pole. Per-pole *logical* volumes are measured by the
//! runtime's channel accounting
//! ([`pselinv_mpisim::RankCtx::enable_channel_accounting`]) keyed on that
//! same query lane — acceptance tests pin them exactly equal to each
//! pole's standalone run.
//!
//! Determinism is inherited unchanged: the multi-query engine reorders
//! communication, never arithmetic, so every pole's panels are bit-identical
//! to its standalone [`crate::numeric::distributed_selinv`] run.

use crate::layout::Layout;
use crate::numeric::{assemble, phase1, DistOptions, LocalExec, RankOutput, RankState};
use crate::plan::{CommPlan, SupernodePlan};
use pselinv_factor::{FactorError, LdlFactor};
use pselinv_mpisim::{Grid2D, RankCtx, RankVolume};
use pselinv_order::SymbolicFactor;
use pselinv_selinv::SelectedInverse;
use pselinv_sparse::SparseMatrix;
use pselinv_trace::{CollKind, Trace};
use pselinv_trees::TreeBuilder;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Options for a batched multi-pole run.
#[derive(Clone, Copy, Debug)]
pub struct BatchOptions {
    /// The per-query distributed options (scheme, seed, threads, runtime).
    /// `lookahead` is normalized to at least 2 — the batch always runs the
    /// asynchronous engine, since overlap across poles is its whole point.
    pub dist: DistOptions,
    /// Admission control: at most this many *unfinished* poles race at
    /// once on each rank (admitted in ascending pole order). `1` degrades
    /// to poles back-to-back through the async engine; values above the
    /// pole count admit everything immediately. Normalized to at least 1.
    pub max_inflight: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        Self { dist: DistOptions { lookahead: 4, ..Default::default() }, max_inflight: 4 }
    }
}

/// Everything a batched run produces.
#[derive(Clone, Debug)]
pub struct BatchRun {
    /// One selected inverse per shift, in input order.
    pub inverses: Vec<SelectedInverse>,
    /// Aggregate per-rank communication volumes of the whole batch.
    pub volumes: Vec<RankVolume>,
    /// Per-pole logical volumes, `query_volumes[q][rank]`: the traffic of
    /// pole `q`'s collectives alone, measured by tag-lane channel
    /// accounting. `sent`/`received` and the message counts are exact;
    /// `copied`/`retransmitted` stay in the aggregate counters only.
    pub query_volumes: Vec<Vec<RankVolume>>,
}

/// Factorizes `H − σ_k I` for every shift against one shared symbolic
/// analysis: the numeric factorizations differ per pole, the structure is
/// computed once. Shifts may make the matrix indefinite — the LDLᵀ
/// factorization handles negative pivots; only an exactly singular shift
/// errors.
pub fn factor_poles(
    h: &SparseMatrix,
    shifts: &[f64],
    symbolic: Arc<SymbolicFactor>,
) -> Result<Vec<LdlFactor>, FactorError> {
    let eye = SparseMatrix::identity(h.nrows());
    shifts
        .iter()
        .map(|&sigma| {
            let shifted = h.add_scaled(&eye, 1.0, -sigma);
            pselinv_factor::factorize(&shifted, symbolic.clone())
        })
        .collect()
}

/// Runs the batched selected inversion of all `factors` (which must share
/// one symbolic analysis) on `grid.size()` rank threads. Panics propagate
/// from rank threads.
pub fn batched_selinv(factors: &[LdlFactor], grid: Grid2D, opts: &BatchOptions) -> BatchRun {
    try_batched_selinv(factors, grid, opts, &pselinv_mpisim::RunOptions::default())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`batched_selinv`] under explicit [`RunOptions`], surfacing runtime
/// failures instead of panicking.
///
/// [`RunOptions`]: pselinv_mpisim::RunOptions
pub fn try_batched_selinv(
    factors: &[LdlFactor],
    grid: Grid2D,
    opts: &BatchOptions,
    run_opts: &pselinv_mpisim::RunOptions,
) -> Result<BatchRun, pselinv_mpisim::RunError> {
    let (layout, plans) = shared_plan(factors, grid, opts);
    let (rank_results, volumes) = pselinv_mpisim::try_run(grid.size(), run_opts, |ctx| {
        batch_rank_entry(ctx, factors, &layout, &plans, opts)
    })?;
    Ok(finish(factors, &layout, rank_results, volumes))
}

/// [`batched_selinv`] with tracing enabled: spans and counters carry each
/// pole's query id ([`crate::numeric::span_key`]), and the trace meta
/// records the batch shape.
pub fn batched_selinv_traced(
    factors: &[LdlFactor],
    grid: Grid2D,
    opts: &BatchOptions,
    label: &str,
) -> (BatchRun, Trace) {
    try_batched_selinv_traced(factors, grid, opts, &pselinv_mpisim::RunOptions::default(), label)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`batched_selinv_traced`] under explicit [`RunOptions`].
///
/// [`RunOptions`]: pselinv_mpisim::RunOptions
pub fn try_batched_selinv_traced(
    factors: &[LdlFactor],
    grid: Grid2D,
    opts: &BatchOptions,
    run_opts: &pselinv_mpisim::RunOptions,
    label: &str,
) -> Result<(BatchRun, Trace), pselinv_mpisim::RunError> {
    let (layout, plans) = shared_plan(factors, grid, opts);
    let (rank_results, volumes, mut trace) =
        pselinv_mpisim::try_run_traced(grid.size(), label, run_opts, |ctx| {
            batch_rank_entry(ctx, factors, &layout, &plans, opts)
        })?;
    trace.set_meta("backend", "mpisim");
    trace.set_meta("grid", format!("{}x{}", grid.pr, grid.pc));
    trace.set_meta("scheme", opts.dist.scheme.to_string());
    trace.set_meta("seed", opts.dist.seed.to_string());
    trace.set_meta("lookahead", opts.dist.lookahead.max(2).to_string());
    trace.set_meta("queries", factors.len().to_string());
    trace.set_meta("max_inflight", opts.max_inflight.max(1).to_string());
    Ok((finish(factors, &layout, rank_results, volumes), trace))
}

/// The once-per-batch preprocessing: validates the shared pattern, builds
/// the layout from the `Arc`d symbolic and precomputes every collective
/// tree one time for all queries.
fn shared_plan(
    factors: &[LdlFactor],
    grid: Grid2D,
    opts: &BatchOptions,
) -> (Layout, Arc<Vec<SupernodePlan>>) {
    assert!(!factors.is_empty(), "a batch needs at least one factor");
    assert!(
        factors.len() <= 256,
        "{} poles overflow the 8-bit query tag lane (split the batch)",
        factors.len()
    );
    let sf = &factors[0].symbolic;
    for (q, f) in factors.iter().enumerate() {
        assert!(
            Arc::ptr_eq(&f.symbolic, sf),
            "factor {q} does not share the batch's symbolic analysis"
        );
    }
    let layout = Layout::new(sf.clone(), grid);
    let builder = TreeBuilder::new(opts.dist.scheme, opts.dist.seed);
    let plans = CommPlan::new(layout.clone(), builder).precompute_all();
    (layout, plans)
}

/// Per-rank results of a batched run: one [`RankOutput`] per query plus
/// this rank's per-query channel volumes.
type BatchRankResult = (Vec<RankOutput>, Vec<RankVolume>);

/// Maps a message tag to its pole channel: the six numeric phase lanes
/// carry a query id in bits 48..56 ([`crate::numeric::tag_q`]); everything
/// else (control lanes, barriers) belongs to no pole.
fn classify_pole_tag(tag: u64) -> Option<usize> {
    let phase = tag >> 56;
    (1..=6).contains(&phase).then_some(((tag >> 48) & 0xFF) as usize)
}

/// One rank's batched execution: phase 1 for every pole up front (blocking,
/// ascending pole order — a restriction of one global order, so
/// deadlock-free), then all phase-2 windows concurrently through
/// [`crate::engine::phase2_multi`] on one shared executor.
fn batch_rank_entry(
    ctx: &mut RankCtx,
    factors: &[LdlFactor],
    layout: &Layout,
    plans: &[SupernodePlan],
    opts: &BatchOptions,
) -> BatchRankResult {
    ctx.enable_channel_accounting(factors.len(), classify_pole_tag);
    let me = ctx.rank();
    let mut states: Vec<RankState<'_>> = factors
        .iter()
        .enumerate()
        .map(|(q, f)| RankState {
            sf: &f.symbolic,
            factor: f,
            layout,
            me,
            qid: q as u64,
            lhat: HashMap::new(),
            ainv_lower: HashMap::new(),
            ainv_upper: HashMap::new(),
            ainv_diag: HashMap::new(),
        })
        .collect();
    let exec = LocalExec::new(ctx, &opts.dist);
    let pool_epoch_us = ctx.tracer().now_us();
    for st in &mut states {
        phase1(ctx, st, plans);
    }
    crate::engine::phase2_multi(
        ctx,
        &mut states,
        plans,
        &exec,
        opts.dist.lookahead.max(2),
        opts.max_inflight.max(1),
    );
    if let LocalExec::Pool(pool) = &exec {
        let stats = pool.stats();
        ctx.tracer().pool_stats(stats.executed(), stats.stolen(), stats.busy_us(), pool.threads());
        for (worker, start_us, end_us) in pool.take_spans() {
            ctx.tracer().span_at(
                CollKind::Compute,
                worker as u64,
                pool_epoch_us + start_us,
                pool_epoch_us + end_us,
            );
        }
    }
    let outputs = states.into_iter().map(|st| (st.ainv_diag, st.ainv_lower)).collect();
    (outputs, ctx.channel_volumes())
}

/// Reassembles per-rank, per-query pieces into per-query inverses and
/// transposes the channel volumes into `[query][rank]` shape.
fn finish(
    factors: &[LdlFactor],
    layout: &Layout,
    rank_results: Vec<BatchRankResult>,
    volumes: Vec<RankVolume>,
) -> BatchRun {
    let nq = factors.len();
    let nranks = rank_results.len();
    let mut per_query: Vec<Vec<RankOutput>> = (0..nq).map(|_| Vec::with_capacity(nranks)).collect();
    let mut query_volumes: Vec<Vec<RankVolume>> =
        (0..nq).map(|_| Vec::with_capacity(nranks)).collect();
    for (outputs, channels) in rank_results {
        assert_eq!(outputs.len(), nq);
        assert_eq!(channels.len(), nq);
        for (q, out) in outputs.into_iter().enumerate() {
            per_query[q].push(out);
        }
        for (q, v) in channels.into_iter().enumerate() {
            query_volumes[q].push(v);
        }
    }
    let inverses =
        factors.iter().zip(per_query).map(|(f, outs)| assemble(f, layout, outs)).collect();
    BatchRun { inverses, volumes, query_volumes }
}

/// Renders the per-pole summary rows of a batched run: one line per query
/// with its total logical traffic, for the run log next to the trace's
/// per-rank summary table.
pub fn pole_summary_table(query_volumes: &[Vec<RankVolume>]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:>6} {:>14} {:>10} {:>14} {:>10}",
        "pole", "sent B", "msgs", "recv B", "msgs"
    );
    for (q, ranks) in query_volumes.iter().enumerate() {
        let sent: u64 = ranks.iter().map(|v| v.sent).sum();
        let ms: u64 = ranks.iter().map(|v| v.msgs_sent).sum();
        let recv: u64 = ranks.iter().map(|v| v.received).sum();
        let mr: u64 = ranks.iter().map(|v| v.msgs_received).sum();
        let _ = writeln!(s, "{q:>6} {sent:>14} {ms:>10} {recv:>14} {mr:>10}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_routes_phase_lanes_only() {
        use crate::numeric::{tag_q, PHASE_AINV_TRANS, PHASE_DIAG_BCAST};
        assert_eq!(classify_pole_tag(tag_q(0, PHASE_DIAG_BCAST, 3, 0)), Some(0));
        assert_eq!(classify_pole_tag(tag_q(7, PHASE_AINV_TRANS, 3, 2)), Some(7));
        assert_eq!(classify_pole_tag(tag_q(255, PHASE_DIAG_BCAST, 0, 0)), Some(255));
        // Control lanes are nobody's pole.
        assert_eq!(classify_pole_tag(pselinv_mpisim::ACK_LANE), None);
        assert_eq!(classify_pole_tag(pselinv_mpisim::BARRIER_UP_LANE | 17), None);
        assert_eq!(classify_pole_tag(0), None);
    }

    #[test]
    fn pole_table_has_one_row_per_query() {
        let v = RankVolume {
            sent: 100,
            msgs_sent: 2,
            received: 100,
            msgs_received: 2,
            ..Default::default()
        };
        let table = pole_summary_table(&[vec![v, v], vec![v]]);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 poles");
        assert!(lines[1].contains("200"), "pole 0 sums its ranks");
        assert!(lines[2].contains("100"));
    }
}
