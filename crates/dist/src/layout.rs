//! 2-D block-cyclic layout of the supernodal factor.

use pselinv_mpisim::Grid2D;
use pselinv_order::symbolic::SnBlock;
use pselinv_order::SymbolicFactor;
use std::sync::Arc;

/// Mapping of supernodal blocks onto a process grid.
///
/// Supernodal block `(I, K)` (row supernode `I`, column supernode `K`)
/// lives on rank `(I mod Pr, K mod Pc)`, exactly SuperLU_DIST's cyclic
/// mapping of the 2-D supernode partition (paper Fig. 1).
#[derive(Clone)]
pub struct Layout {
    /// Symbolic structure being distributed.
    pub symbolic: Arc<SymbolicFactor>,
    /// The process grid.
    pub grid: Grid2D,
}

impl Layout {
    /// Creates a layout.
    pub fn new(symbolic: Arc<SymbolicFactor>, grid: Grid2D) -> Self {
        Self { symbolic, grid }
    }

    /// Owner of the diagonal block of supernode `k`.
    pub fn diag_owner(&self, k: usize) -> usize {
        self.grid.owner_of_block(k, k)
    }

    /// Owner of the lower block `(b.sn, k)` of supernode `k`'s panel.
    pub fn lower_owner(&self, b: &SnBlock, k: usize) -> usize {
        self.grid.owner_of_block(b.sn, k)
    }

    /// Owner of the matching upper position `(k, b.sn)` (where `Û_{K,I}`
    /// and `A⁻¹_{K,I}` are stored in the symmetric algorithm).
    pub fn upper_owner(&self, b: &SnBlock, k: usize) -> usize {
        self.grid.owner_of_block(k, b.sn)
    }

    /// Bytes of the dense block `(b.sn, k)`.
    pub fn block_bytes(&self, b: &SnBlock, k: usize) -> u64 {
        (b.nrows() * self.symbolic.width(k) * std::mem::size_of::<f64>()) as u64
    }

    /// Bytes of supernode `k`'s diagonal block.
    pub fn diag_bytes(&self, k: usize) -> u64 {
        let w = self.symbolic.width(k);
        (w * w * std::mem::size_of::<f64>()) as u64
    }

    /// `true` when `rank` owns at least one block of supernode `k`'s panel
    /// (diagonal included).
    pub fn rank_touches_panel(&self, rank: usize, k: usize) -> bool {
        if self.diag_owner(k) == rank {
            return true;
        }
        self.symbolic.blocks_of(k).iter().any(|b| self.lower_owner(b, k) == rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pselinv_order::{analyze, AnalyzeOptions};
    use pselinv_sparse::gen;

    fn layout(pr: usize, pc: usize) -> Layout {
        let w = gen::grid_laplacian_2d(10, 10);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        Layout::new(sf, Grid2D::new(pr, pc))
    }

    #[test]
    fn owners_follow_cyclic_rule() {
        let l = layout(3, 4);
        let sf = l.symbolic.clone();
        for k in 0..sf.num_supernodes() {
            assert_eq!(l.diag_owner(k), l.grid.rank_of(k % 3, k % 4));
            for b in sf.blocks_of(k) {
                assert_eq!(l.lower_owner(b, k), l.grid.rank_of(b.sn % 3, k % 4));
                assert_eq!(l.upper_owner(b, k), l.grid.rank_of(k % 3, b.sn % 4));
            }
        }
    }

    #[test]
    fn block_bytes_are_dense_sizes() {
        let l = layout(2, 2);
        let sf = l.symbolic.clone();
        for k in 0..sf.num_supernodes() {
            for b in sf.blocks_of(k) {
                assert_eq!(l.block_bytes(b, k), (b.nrows() * sf.width(k) * 8) as u64);
            }
            assert_eq!(l.diag_bytes(k), (sf.width(k) * sf.width(k) * 8) as u64);
        }
    }

    #[test]
    fn every_panel_touched_by_its_owners() {
        let l = layout(2, 3);
        let sf = l.symbolic.clone();
        for k in 0..sf.num_supernodes() {
            assert!(l.rank_touches_panel(l.diag_owner(k), k));
            for b in sf.blocks_of(k) {
                assert!(l.rank_touches_panel(l.lower_owner(b, k), k));
            }
        }
    }
}
