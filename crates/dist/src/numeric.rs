//! Numeric distributed selected inversion over the `pselinv-mpisim`
//! runtime.
//!
//! Every rank executes the same deterministic schedule (supernodes in
//! descending order; within a supernode: transpose sends, `Col-Bcast`s,
//! local GEMMs, `Row-Reduce`s, the diagonal reduction, and the step-5
//! `A⁻¹` transposes), restricted to the collectives it participates in.
//! Sends are buffered and never block, so a schedule that is a restriction
//! of one global order is deadlock-free. The asynchronous *timing* behaviour
//! at scale is modeled separately by `pselinv-des`; this module establishes
//! the numerical correctness of the tree-routed communication.

use crate::layout::Layout;
use crate::plan::{CommPlan, SupernodePlan};
use pselinv_dense::kernels::trsm_right_lower;
use pselinv_dense::{gemm, ldlt_invert, Mat, Transpose};
use pselinv_factor::{LdlFactor, Panel};
use pselinv_mpisim::collectives::{tree_bcast, tree_reduce};
use pselinv_mpisim::{Grid2D, Payload, RankCtx, RankVolume};
use pselinv_order::symbolic::SnBlock;
use pselinv_order::SymbolicFactor;
use pselinv_pool::Pool;
use pselinv_selinv::SelectedInverse;
use pselinv_trace::{CollKind, Trace};
use pselinv_trees::TreeBuilder;
use std::collections::HashMap;
use std::sync::Mutex;

/// How a rank parallelizes its local compute (window GEMMs and diagonal
/// contributions) when [`DistOptions::threads`] asks for more than one
/// thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TaskRuntime {
    /// Persistent per-rank work-stealing pool (`pselinv-pool`): workers
    /// live for the rank's whole lifetime, idle workers steal queued
    /// tasks, and the asynchronous engine keeps polling its nonblocking
    /// collectives on the submitting thread while workers compute.
    #[default]
    Pool,
    /// The historical per-call `std::thread::scope` fork-join, retained as
    /// the baseline that `figures -- pool` measures the pool against. Pays
    /// thread spawn plus a full barrier on every GEMM step.
    ForkJoin,
}

/// Options for a distributed run.
#[derive(Clone, Copy, Debug)]
pub struct DistOptions {
    /// Tree routing scheme for every restricted collective.
    pub scheme: pselinv_trees::TreeScheme,
    /// Global seed for the shifted/random schemes.
    pub seed: u64,
    /// Worker threads for each rank's local GEMM step. `0` and `1` both
    /// mean "compute inline, no workers" — every consumer reads the knob
    /// through [`DistOptions::worker_threads`], which owns that
    /// normalization. Target blocks have independent accumulators merged
    /// in a fixed ascending order, so any thread count and either
    /// [`TaskRuntime`] produce bit-identical results.
    pub threads: usize,
    /// Which intra-rank task runtime executes the local compute when
    /// `threads > 1`. Defaults to the persistent work-stealing pool;
    /// [`TaskRuntime::ForkJoin`] is kept for benchmarking against it.
    pub runtime: TaskRuntime,
    /// How many descending supernodes may be in flight at once in phase 2.
    /// `1` (the default) runs the synchronous engine — supernodes strictly
    /// one at a time with blocking collectives. `>= 2` runs the
    /// asynchronous pipelined engine ([`crate::engine`]): nonblocking tree
    /// collectives driven by a per-rank progress loop, with up to
    /// `lookahead` supernodes overlapping (use `usize::MAX` for an
    /// unbounded window). Results stay bit-identical and logical
    /// communication volumes unchanged at any window size.
    pub lookahead: usize,
}

impl Default for DistOptions {
    fn default() -> Self {
        Self {
            scheme: pselinv_trees::TreeScheme::ShiftedBinary,
            seed: 0x5e11,
            threads: 1,
            runtime: TaskRuntime::Pool,
            lookahead: 1,
        }
    }
}

impl DistOptions {
    /// The effective worker-thread count: [`DistOptions::threads`] with
    /// `0` normalized to `1`. This is the single place that normalization
    /// happens — both engines and the executor constructor call it, so
    /// `threads: 0` can never reach a `div_ceil(0)` or a zero-worker pool.
    pub fn worker_threads(&self) -> usize {
        self.threads.max(1)
    }
}

/// One rank's local-compute executor, built once per rank in
/// [`rank_entry`] and threaded through both phase-2 engines.
pub(crate) enum LocalExec {
    /// Compute inline on the rank thread.
    Serial,
    /// Per-call scoped fork-join over `threads` threads (the
    /// [`TaskRuntime::ForkJoin`] baseline).
    ForkJoin { threads: usize },
    /// Persistent work-stealing pool, with its busy gauge wired into the
    /// rank's telemetry.
    Pool(Pool),
}

impl LocalExec {
    pub(crate) fn new(ctx: &RankCtx, opts: &DistOptions) -> LocalExec {
        let threads = opts.worker_threads();
        if threads <= 1 {
            return LocalExec::Serial;
        }
        match opts.runtime {
            TaskRuntime::ForkJoin => LocalExec::ForkJoin { threads },
            TaskRuntime::Pool => {
                let pool = Pool::new(threads);
                pool.set_busy_gauge(ctx.pool_busy_gauge());
                LocalExec::Pool(pool)
            }
        }
    }

    /// The pool, when this executor is the pool runtime.
    pub(crate) fn pool(&self) -> Option<&Pool> {
        match self {
            LocalExec::Pool(p) => Some(p),
            _ => None,
        }
    }
}

pub(crate) const PHASE_DIAG_BCAST: u64 = 1 << 56;
pub(crate) const PHASE_TRANSPOSE: u64 = 2 << 56;
pub(crate) const PHASE_COL_BCAST: u64 = 3 << 56;
pub(crate) const PHASE_ROW_REDUCE: u64 = 4 << 56;
pub(crate) const PHASE_DIAG_REDUCE: u64 = 5 << 56;
pub(crate) const PHASE_AINV_TRANS: u64 = 6 << 56;

/// Packs `(query, phase, supernode, block)` into one message tag: the phase
/// in the top byte, the query id in bits 48..56, the supernode in bits
/// 24..48, the block index in bits 0..24. The query lane is what lets the
/// pole-batch engine interleave the collectives of many concurrent selected
/// inversions over one runtime — two queries at the same `(phase, k, bi)`
/// still get distinct tags, so their messages can never cross-match in the
/// runtime's `(src, tag)` matching. The fields must stay inside their lanes
/// or tags of different collectives collide; the debug assertions catch any
/// workload large enough to overflow.
pub(crate) fn tag_q(qid: u64, phase: u64, k: usize, bi: usize) -> u64 {
    debug_assert!(
        phase != 0 && phase.trailing_zeros() >= 56,
        "phase {phase:#x} outside the top byte"
    );
    debug_assert!(qid < (1 << 8), "query {qid} overflows its 8-bit tag lane");
    debug_assert!((k as u64) < (1 << 24), "supernode {k} overflows its 24-bit tag lane");
    debug_assert!((bi as u64) < (1 << 24), "block index {bi} overflows its 24-bit tag lane");
    phase | (qid << 48) | ((k as u64) << 24) | bi as u64
}

/// [`tag_q`] for single-query runs (query id 0) — tag values are unchanged
/// from before the query lane existed. Production call sites all thread the
/// query id through [`RankState`]; this shorthand anchors the
/// backwards-compatibility tests.
#[cfg(test)]
pub(crate) fn tag(phase: u64, k: usize, bi: usize) -> u64 {
    tag_q(0, phase, k, bi)
}

/// Trace-scope key for supernode `k` of query `qid`: the supernode in the
/// low bits, the query id above the supernode lane — the same namespacing as
/// [`tag_q`], so per-query spans stay distinguishable in a batched trace.
/// Query 0 keys equal the bare supernode, preserving single-run traces.
pub(crate) fn span_key(qid: u64, k: usize) -> u64 {
    (qid << 48) | k as u64
}

/// Finds the block of supernode `col_sn` whose ancestor is `row_sn`
/// (i.e. block `(row_sn, col_sn)`), returning `(global block index, block)`.
pub(crate) fn find_block(sf: &SymbolicFactor, row_sn: usize, col_sn: usize) -> (usize, SnBlock) {
    let blocks = sf.blocks_of(col_sn);
    let i = blocks
        .binary_search_by_key(&row_sn, |b| b.sn)
        .unwrap_or_else(|_| panic!("block ({row_sn},{col_sn}) not in structure"));
    (sf.blocks_ptr[col_sn] + i, blocks[i])
}

/// Packs a matrix into a sendable [`Payload`]. Shared-storage matrices
/// hand out their existing buffer for free; owned ones pay one packing
/// copy, charged to the rank's physical-copy counter.
pub(crate) fn pack(ctx: &mut RankCtx, m: &Mat) -> Payload {
    if !m.is_shared() {
        ctx.account_copy((m.data().len() * 8) as u64);
    }
    Payload::from_arc(m.to_shared())
}

/// Wraps a received payload as a matrix without copying (copy-on-write:
/// a later mutation detaches, so the sender's buffer is never scribbled).
pub(crate) fn unpack(nrows: usize, ncols: usize, data: Payload) -> Mat {
    Mat::from_shared(nrows, ncols, data.into_arc())
}

/// Moves an owned matrix into shared storage so every later send and
/// same-rank transpose is a reference-count bump. The one packing copy is
/// charged to the rank's physical-copy counter.
pub(crate) fn share(ctx: &mut RankCtx, m: Mat) -> Mat {
    if !m.is_shared() {
        ctx.account_copy((m.data().len() * 8) as u64);
    }
    m.into_shared()
}

/// One rank's state during the distributed inversion.
pub(crate) struct RankState<'a> {
    pub(crate) sf: &'a SymbolicFactor,
    pub(crate) factor: &'a LdlFactor,
    pub(crate) layout: &'a Layout,
    pub(crate) me: usize,
    /// Query id namespacing every tag ([`tag_q`]) and trace-scope key
    /// ([`span_key`]) this state produces: `0` for standalone runs, the
    /// pole index in a batched run.
    pub(crate) qid: u64,
    /// `L̂` blocks this rank owns, keyed by global block index.
    pub(crate) lhat: HashMap<usize, Mat>,
    /// Computed `A⁻¹` lower blocks, keyed by global block index.
    pub(crate) ainv_lower: HashMap<usize, Mat>,
    /// Computed `A⁻¹` upper blocks (stored transposed), keyed by the
    /// corresponding lower block's global index.
    pub(crate) ainv_upper: HashMap<usize, Mat>,
    /// Computed `A⁻¹` diagonal blocks, keyed by supernode.
    pub(crate) ainv_diag: HashMap<usize, Mat>,
}

impl<'a> RankState<'a> {
    /// Reads the factor's block `(b.sn, k)` as a dense matrix; only legal
    /// on the owning rank (asserted) — the discipline that turns shared
    /// memory into distributed memory.
    pub(crate) fn factor_block(&self, k: usize, bi: usize, b: &SnBlock) -> Mat {
        assert_eq!(self.layout.lower_owner(b, k), self.me, "reading a non-owned block");
        let _ = bi;
        let lb = b.rows_begin - self.sf.rows_ptr[k];
        self.factor.panels[k].below.submatrix(lb, 0, b.nrows(), self.sf.width(k))
    }

    pub(crate) fn factor_diag(&self, k: usize) -> Mat {
        assert_eq!(self.layout.diag_owner(k), self.me, "reading a non-owned diagonal");
        self.factor.panels[k].diag.clone()
    }

    /// Extracts `A⁻¹[RJ, RI]` for the GEMM of target block `bj` with
    /// ancestor block `bi` (both blocks of supernode `k`).
    pub(crate) fn gather_sub(&self, _k: usize, bj: &SnBlock, bi: &SnBlock) -> Mat {
        let sf = self.sf;
        let rj = sf.block_rows(bj);
        let ri = sf.block_rows(bi);
        let (jsn, isn) = (bj.sn, bi.sn);
        let mut s = Mat::zeros(rj.len(), ri.len());
        if jsn > isn {
            // lower storage: block (J, I) of supernode I
            let (bid, blk) = find_block(sf, jsn, isn);
            let src = &self.ainv_lower[&bid];
            let brows = sf.block_rows(&blk);
            let first_i = sf.first_col(isn);
            for (p, &r) in rj.iter().enumerate() {
                let pp = brows.binary_search(&r).expect("row containment");
                for (q, &c) in ri.iter().enumerate() {
                    s[(p, q)] = src[(pp, c - first_i)];
                }
            }
        } else if jsn < isn {
            // upper storage: transpose of block (I, J) of supernode J
            let (bid, blk) = find_block(sf, isn, jsn);
            let src = &self.ainv_upper[&bid];
            let brows = sf.block_rows(&blk);
            let first_j = sf.first_col(jsn);
            for (q, &c) in ri.iter().enumerate() {
                let qq = brows.binary_search(&c).expect("row containment");
                for (p, &r) in rj.iter().enumerate() {
                    s[(p, q)] = src[(qq, r - first_j)];
                }
            }
        } else {
            // within the diagonal block of supernode J == I
            let src = &self.ainv_diag[&jsn];
            let first = sf.first_col(jsn);
            for (p, &r) in rj.iter().enumerate() {
                for (q, &c) in ri.iter().enumerate() {
                    s[(p, q)] = src[(r - first, c - first)];
                }
            }
        }
        s
    }
}

/// Output of one rank: its owned pieces of the selected inverse.
pub(crate) type RankOutput = (HashMap<usize, Mat>, HashMap<usize, Mat>);

/// Runs the distributed selected inversion on `grid.size()` rank threads
/// and assembles the result. Panics propagate from rank threads.
///
/// Also returns the per-rank communication volumes measured by the runtime.
pub fn distributed_selinv(
    factor: &LdlFactor,
    grid: Grid2D,
    opts: &DistOptions,
) -> (SelectedInverse, Vec<RankVolume>) {
    try_distributed_selinv(factor, grid, opts, &pselinv_mpisim::RunOptions::default())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`distributed_selinv`] under explicit [`RunOptions`] (watchdog budget,
/// poll interval, fault injection), surfacing runtime failures instead of
/// panicking — the entry point for chaos testing the numeric engines.
///
/// [`RunOptions`]: pselinv_mpisim::RunOptions
pub fn try_distributed_selinv(
    factor: &LdlFactor,
    grid: Grid2D,
    opts: &DistOptions,
    run_opts: &pselinv_mpisim::RunOptions,
) -> Result<(SelectedInverse, Vec<RankVolume>), pselinv_mpisim::RunError> {
    let layout = Layout::new(factor.symbolic.clone(), grid);
    let builder = TreeBuilder::new(opts.scheme, opts.seed);
    let plans = CommPlan::new(layout.clone(), builder).precompute_all();

    let (outputs, volumes): (Vec<RankOutput>, Vec<RankVolume>) =
        pselinv_mpisim::try_run(grid.size(), run_opts, |ctx| {
            rank_entry(ctx, factor, &layout, &plans, opts)
        })?;

    Ok((assemble(factor, &layout, outputs), volumes))
}

/// [`distributed_selinv`] with tracing enabled on every rank: the returned
/// [`Trace`] carries per-phase spans keyed by supernode, message events and
/// per-rank byte counters whose `ColBcast` / `RowReduce` totals agree
/// exactly with [`crate::volume::replay_volumes`] for the same layout,
/// scheme and seed.
pub fn distributed_selinv_traced(
    factor: &LdlFactor,
    grid: Grid2D,
    opts: &DistOptions,
    label: &str,
) -> (SelectedInverse, Vec<RankVolume>, Trace) {
    try_distributed_selinv_traced(factor, grid, opts, &pselinv_mpisim::RunOptions::default(), label)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`distributed_selinv_traced`] under explicit [`RunOptions`] — the entry
/// point for traced runs with live telemetry ([`RunOptions::telemetry`])
/// or fault injection attached.
///
/// [`RunOptions`]: pselinv_mpisim::RunOptions
/// [`RunOptions::telemetry`]: pselinv_mpisim::RunOptions::telemetry
pub fn try_distributed_selinv_traced(
    factor: &LdlFactor,
    grid: Grid2D,
    opts: &DistOptions,
    run_opts: &pselinv_mpisim::RunOptions,
    label: &str,
) -> Result<(SelectedInverse, Vec<RankVolume>, Trace), pselinv_mpisim::RunError> {
    let layout = Layout::new(factor.symbolic.clone(), grid);
    let builder = TreeBuilder::new(opts.scheme, opts.seed);
    let plans = CommPlan::new(layout.clone(), builder).precompute_all();

    let (outputs, volumes, mut trace) =
        pselinv_mpisim::try_run_traced(grid.size(), label, run_opts, |ctx| {
            rank_entry(ctx, factor, &layout, &plans, opts)
        })?;
    trace.set_meta("backend", "mpisim");
    trace.set_meta("grid", format!("{}x{}", grid.pr, grid.pc));
    trace.set_meta("scheme", opts.scheme.to_string());
    trace.set_meta("seed", opts.seed.to_string());
    trace.set_meta("lookahead", opts.lookahead.to_string());

    Ok((assemble(factor, &layout, outputs), volumes, trace))
}

/// Assembles the per-rank output pieces into a [`SelectedInverse`].
pub(crate) fn assemble(
    factor: &LdlFactor,
    layout: &Layout,
    outputs: Vec<RankOutput>,
) -> SelectedInverse {
    let sf = factor.symbolic.clone();
    let mut panels: Vec<Panel> = (0..sf.num_supernodes()).map(|s| Panel::zeros(&sf, s)).collect();
    for (rank, (diags, lowers)) in outputs.into_iter().enumerate() {
        for (k, d) in diags {
            assert_eq!(layout.diag_owner(k), rank);
            panels[k].diag = d;
        }
        for (bid, m) in lowers {
            // find the supernode owning this global block index
            let k = sf.blocks_ptr.partition_point(|&p| p <= bid).saturating_sub(1);
            let b = sf.blocks[bid];
            let lb = b.rows_begin - sf.rows_ptr[k];
            for q in 0..sf.width(k) {
                for p in 0..b.nrows() {
                    panels[k].below[(lb + p, q)] = m[(p, q)];
                }
            }
        }
    }
    SelectedInverse { symbolic: sf, panels }
}

/// The `(target block, participating ancestor blocks)` pairs of supernode
/// `k`'s local GEMM step on this rank — the single source of truth for
/// both engines and every executor, so the task set cannot drift between
/// them. Ancestor lists are ascending: that order is the fixed per-target
/// accumulation order of the bit-identity contract.
pub(crate) fn gemm_task_specs(st: &RankState<'_>, blocks: &[SnBlock]) -> Vec<(usize, Vec<usize>)> {
    let me = st.me;
    let layout = st.layout;
    let mut tasks: Vec<(usize, Vec<usize>)> = Vec::new();
    for (bj_i, bj) in blocks.iter().enumerate() {
        let prow_j = layout.grid.prow_of_block(bj.sn);
        let mine: Vec<usize> = (0..blocks.len())
            .filter(|&bi_i| {
                layout.grid.rank_of(prow_j, layout.grid.pcol_of_block(blocks[bi_i].sn)) == me
            })
            .collect();
        if !mine.is_empty() {
            tasks.push((bj_i, mine));
        }
    }
    tasks
}

/// Runs one closure per item on `exec`, writing results into per-item
/// slots; returns them in item order regardless of which worker ran what.
/// The fork-join arm keeps the historical contiguous-chunk split; the pool
/// arm submits one task per item so idle workers steal load dynamically.
pub(crate) fn run_on_exec<T, I, F>(exec: &LocalExec, items: &[I], f: F) -> Vec<T>
where
    T: Send,
    I: Sync,
    F: Fn(&I) -> T + Sync,
{
    match exec {
        _ if items.len() <= 1 => items.iter().map(&f).collect(),
        LocalExec::Serial => items.iter().map(&f).collect(),
        LocalExec::ForkJoin { threads } => std::thread::scope(|scope| {
            let f = &f;
            let per = items.len().div_ceil(*threads);
            let handles: Vec<_> = items
                .chunks(per)
                .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<_>>()))
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        }),
        LocalExec::Pool(pool) => {
            let slots: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();
            let f = &f;
            let work: Vec<Box<dyn FnOnce() + Send + '_>> = items
                .iter()
                .zip(&slots)
                .map(|(item, slot)| {
                    Box::new(move || {
                        *slot.lock().unwrap() = Some(f(item));
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run(work);
            slots
                .into_iter()
                .map(|s| s.into_inner().unwrap().expect("pool task left its slot empty"))
                .collect()
        }
    }
}

/// Step 1 of Algorithm 1 on one rank: for every target block `J` of
/// supernode `k` whose GEMM participants include this rank, accumulate
/// `−A⁻¹[RJ,RI]·L̂_{I,K}` over the ancestor blocks `I`. Each target block
/// has its own accumulator and the per-target accumulation order is fixed
/// (ascending `I`), so targets are farmed out to `exec` with bit-identical
/// results to the inline path.
pub(crate) fn local_gemms(
    st: &RankState<'_>,
    ucur: &HashMap<usize, Mat>,
    blocks: &[SnBlock],
    k: usize,
    w: usize,
    exec: &LocalExec,
) -> HashMap<usize, Mat> {
    let tasks = gemm_task_specs(st, blocks);
    let computed = run_on_exec(exec, &tasks, |task: &(usize, Vec<usize>)| {
        let (bj_i, bi_list) = task;
        let bj = &blocks[*bj_i];
        let mut c = Mat::zeros(bj.nrows(), w);
        for &bi_i in bi_list {
            let s = st.gather_sub(k, bj, &blocks[bi_i]);
            gemm(-1.0, &s, Transpose::No, &ucur[&bi_i], Transpose::No, 1.0, &mut c);
        }
        (*bj_i, c)
    });
    computed.into_iter().collect()
}

/// Step 2's diagonal contribution `Σ L̂ᵀ_{I,K}·A⁻¹_{I,K}` over this rank's
/// owned blocks of supernode `k`. Each block gets its own `w×w`
/// accumulator (a pool task under the pool executor); the partial results
/// are merged elementwise in ascending block order, so the sum is
/// deterministic and identical across executors and engines.
pub(crate) fn diag_contrib(
    st: &RankState<'_>,
    owned_bids: &[usize],
    w: usize,
    exec: &LocalExec,
) -> Mat {
    let parts = run_on_exec(exec, owned_bids, |&bid: &usize| {
        let mut t = Mat::zeros(w, w);
        gemm(1.0, &st.lhat[&bid], Transpose::Yes, &st.ainv_lower[&bid], Transpose::No, 0.0, &mut t);
        t
    });
    let mut dcon = Mat::zeros(w, w);
    for t in &parts {
        dcon.axpy(1.0, t);
    }
    dcon
}

/// Entry point of one rank: phase 1 always runs synchronously; phase 2 is
/// dispatched to the synchronous loop (`lookahead <= 1`) or the
/// asynchronous pipelined engine (`lookahead >= 2`, [`crate::engine`]).
pub(crate) fn rank_entry(
    ctx: &mut RankCtx,
    factor: &LdlFactor,
    layout: &Layout,
    plans: &[SupernodePlan],
    opts: &DistOptions,
) -> RankOutput {
    let mut st = RankState {
        sf: &factor.symbolic,
        factor,
        layout,
        me: ctx.rank(),
        qid: 0,
        lhat: HashMap::new(),
        ainv_lower: HashMap::new(),
        ainv_upper: HashMap::new(),
        ainv_diag: HashMap::new(),
    };
    let exec = LocalExec::new(ctx, opts);
    // Pool spans are stamped relative to pool creation; remember where
    // that sits on the tracer clock so worker spans align with the
    // communication spans in the timeline.
    let pool_epoch_us = ctx.tracer().now_us();
    phase1(ctx, &mut st, plans);
    if opts.lookahead <= 1 {
        phase2_sync(ctx, &mut st, plans, &exec);
    } else {
        crate::engine::phase2_async(ctx, &mut st, plans, &exec, opts.lookahead);
    }
    if let LocalExec::Pool(pool) = &exec {
        let stats = pool.stats();
        ctx.tracer().pool_stats(stats.executed(), stats.stolen(), stats.busy_us(), pool.threads());
        for (worker, start_us, end_us) in pool.take_spans() {
            ctx.tracer().span_at(
                CollKind::Compute,
                worker as u64,
                pool_epoch_us + start_us,
                pool_epoch_us + end_us,
            );
        }
    }
    (st.ainv_diag, st.ainv_lower)
}

/// Phase 1 (ascending): normalize panels, L̂ = L_{R,K} L_{K,K}⁻¹.
pub(crate) fn phase1(ctx: &mut RankCtx, st: &mut RankState<'_>, plans: &[SupernodePlan]) {
    let sf = st.sf;
    let me = st.me;
    let layout = st.layout;
    let ns = sf.num_supernodes();
    for k in 0..ns {
        let sp = &plans[k];
        let blocks = sf.blocks_of(k);
        let w = sf.width(k);
        let my_blocks: Vec<usize> =
            (0..blocks.len()).filter(|&bi| layout.lower_owner(&blocks[bi], k) == me).collect();
        let in_bcast = sp.diag_bcast.members().contains(&me);
        if !in_bcast && my_blocks.is_empty() {
            continue;
        }
        // Obtain the diagonal block (unit-lower L_{K,K} in its strict lower
        // part; the diagonal holds D and is ignored by the unit trsm).
        ctx.tracer().push_scope(CollKind::DiagBcast, span_key(st.qid, k));
        let diag = if layout.diag_owner(k) == me {
            let d = st.factor_diag(k);
            if !sp.diag_bcast.is_empty() {
                let p = pack(ctx, &d);
                tree_bcast(ctx, &sp.diag_bcast, tag_q(st.qid, PHASE_DIAG_BCAST, k, 0), Some(p));
            }
            Some(d)
        } else if in_bcast {
            let data = tree_bcast(
                ctx,
                &sp.diag_bcast,
                tag_q(st.qid, PHASE_DIAG_BCAST, k, 0),
                None::<Payload>,
            );
            Some(unpack(w, w, data))
        } else {
            None
        };
        ctx.tracer().pop_scope();
        if let Some(d) = diag {
            for bi in my_blocks {
                let b = blocks[bi];
                let mut m = st.factor_block(k, bi, &b);
                trsm_right_lower(&mut m, &d, true);
                // Shared storage: the transpose send, the same-rank Û
                // handle and the diag-reduce read all reuse this buffer.
                let m = share(ctx, m);
                st.lhat.insert(sf.blocks_ptr[k] + bi, m);
            }
        }
    }
}

/// Phase 2 (descending): Algorithm 1, steps 3–5, synchronous schedule —
/// supernodes strictly one at a time with blocking collectives.
fn phase2_sync(
    ctx: &mut RankCtx,
    st: &mut RankState<'_>,
    plans: &[SupernodePlan],
    exec: &LocalExec,
) {
    let sf = st.sf;
    let me = st.me;
    let layout = st.layout;
    let ns = sf.num_supernodes();
    for k in (0..ns).rev() {
        let sp = &plans[k];
        let blocks = sf.blocks_of(k);
        let w = sf.width(k);

        // Step a': transpose sends L̂_{I,K} → Û position (K, I). The L̂
        // blocks live in shared storage, so the same-rank case and every
        // send are reference-count bumps on the phase-1 buffer.
        ctx.tracer().push_scope(CollKind::Transpose, span_key(st.qid, k));
        let mut ucur: HashMap<usize, Mat> = HashMap::new(); // key: bi
        for (bi, b) in blocks.iter().enumerate() {
            let (src, dst) = sp.transposes[bi];
            let bid = sf.blocks_ptr[k] + bi;
            if src == dst {
                if me == src {
                    ucur.insert(bi, st.lhat[&bid].clone());
                }
            } else if me == src {
                let data = pack(ctx, &st.lhat[&bid]);
                ctx.send(dst, tag_q(st.qid, PHASE_TRANSPOSE, k, bi), data);
            } else if me == dst {
                let data = ctx.recv(src, tag_q(st.qid, PHASE_TRANSPOSE, k, bi));
                ucur.insert(bi, unpack(b.nrows(), w, data));
            }
        }
        ctx.tracer().pop_scope();

        // Step a: Col-Bcast of Û_{K,I} within pc(I). The root re-shares
        // the transpose buffer; receivers adopt the broadcast payload.
        ctx.tracer().push_scope(CollKind::ColBcast, span_key(st.qid, k));
        for (bi, b) in blocks.iter().enumerate() {
            let tree = &sp.col_bcasts[bi];
            if !tree.members().contains(&me) {
                continue;
            }
            let payload = if me == tree.root() { Some(pack(ctx, &ucur[&bi])) } else { None };
            let data = tree_bcast(ctx, tree, tag_q(st.qid, PHASE_COL_BCAST, k, bi), payload);
            ucur.entry(bi).or_insert_with(|| unpack(b.nrows(), w, data));
        }
        ctx.tracer().pop_scope();

        // Step 1 (local GEMMs): contributions −A⁻¹[RJ,RI]·L̂_{I,K}.
        let mut contrib = local_gemms(st, &ucur, blocks, k, w, exec);

        // Step b: Row-Reduce each target block onto the owner of A⁻¹_{J,K}.
        ctx.tracer().push_scope(CollKind::RowReduce, span_key(st.qid, k));
        for (bj_i, bj) in blocks.iter().enumerate() {
            let tree = &sp.row_reduces[bj_i];
            if !tree.members().contains(&me) {
                continue;
            }
            let local = contrib.remove(&bj_i).unwrap_or_else(|| Mat::zeros(bj.nrows(), w));
            let total =
                tree_reduce(ctx, tree, tag_q(st.qid, PHASE_ROW_REDUCE, k, bj_i), local.into_vec());
            if let Some(t) = total {
                let m = share(ctx, Mat::from_vec(bj.nrows(), w, t));
                st.ainv_lower.insert(sf.blocks_ptr[k] + bj_i, m);
            }
        }
        ctx.tracer().pop_scope();

        // Steps 2 + c: diagonal contributions L̂ᵀ_{I,K} A⁻¹_{I,K}, reduced
        // onto the diagonal owner; then A⁻¹_{K,K} = (LDLᵀ)⁻¹ − Σ.
        let is_diag_owner = layout.diag_owner(k) == me;
        let in_dreduce = sp.diag_reduce.members().contains(&me);
        ctx.tracer().push_scope(CollKind::DiagReduce, span_key(st.qid, k));
        if is_diag_owner || in_dreduce {
            let owned_bids: Vec<usize> = blocks
                .iter()
                .enumerate()
                .filter(|(_, b)| layout.lower_owner(b, k) == me)
                .map(|(bi, _)| sf.blocks_ptr[k] + bi)
                .collect();
            let dcon = diag_contrib(st, &owned_bids, w, exec);
            let total = if sp.diag_reduce.is_empty() {
                Some(dcon.into_vec())
            } else if in_dreduce {
                tree_reduce(
                    ctx,
                    &sp.diag_reduce,
                    tag_q(st.qid, PHASE_DIAG_REDUCE, k, 0),
                    dcon.into_vec(),
                )
            } else {
                None
            };
            if is_diag_owner {
                let mut diag = ldlt_invert(&st.factor_diag(k));
                let t = Mat::from_vec(w, w, total.expect("diag owner must receive the reduction"));
                diag.axpy(-1.0, &t);
                // symmetrize
                for jl in 0..w {
                    for il in (jl + 1)..w {
                        let v = 0.5 * (diag[(il, jl)] + diag[(jl, il)]);
                        diag[(il, jl)] = v;
                        diag[(jl, il)] = v;
                    }
                }
                st.ainv_diag.insert(k, diag);
            }
        }
        ctx.tracer().pop_scope();

        // Step 3': A⁻¹ transposes for the upper storage. Like step a',
        // the blocks are shared, so the same-rank clone and the sends all
        // alias the Row-Reduce result buffer.
        ctx.tracer().push_scope(CollKind::AinvTranspose, span_key(st.qid, k));
        for (bj_i, bj) in blocks.iter().enumerate() {
            let (src, dst) = sp.ainv_transposes[bj_i];
            let bid = sf.blocks_ptr[k] + bj_i;
            if src == dst {
                if me == src {
                    let m = st.ainv_lower[&bid].clone();
                    st.ainv_upper.insert(bid, m);
                }
            } else if me == src {
                let data = pack(ctx, &st.ainv_lower[&bid]);
                ctx.send(dst, tag_q(st.qid, PHASE_AINV_TRANS, k, bj_i), data);
            } else if me == dst {
                let data = ctx.recv(src, tag_q(st.qid, PHASE_AINV_TRANS, k, bj_i));
                st.ainv_upper.insert(bid, unpack(bj.nrows(), w, data));
            }
        }
        ctx.tracer().pop_scope();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pselinv_order::{analyze, AnalyzeOptions};
    use pselinv_selinv::selinv_ldlt;
    use pselinv_sparse::gen;
    use pselinv_trees::TreeScheme;
    use std::sync::Arc;

    fn check_matches_sequential(
        a: &pselinv_sparse::SparseMatrix,
        grid: Grid2D,
        scheme: TreeScheme,
    ) {
        let sf = Arc::new(analyze(&a.pattern(), &AnalyzeOptions::default()));
        let f = pselinv_factor::factorize(a, sf.clone()).unwrap();
        let seq = selinv_ldlt(&f);
        let (dist, _) = distributed_selinv(
            &f,
            grid,
            &DistOptions { scheme, seed: 7, threads: 1, lookahead: 1, ..Default::default() },
        );
        for s in 0..sf.num_supernodes() {
            let d = (&seq.panels[s].diag, &dist.panels[s].diag);
            for j in 0..sf.width(s) {
                for i in 0..sf.width(s) {
                    assert!(
                        (d.0[(i, j)] - d.1[(i, j)]).abs() < 1e-9,
                        "diag {s} ({i},{j}): {} vs {}",
                        d.0[(i, j)],
                        d.1[(i, j)]
                    );
                }
            }
            let b = (&seq.panels[s].below, &dist.panels[s].below);
            for j in 0..sf.width(s) {
                for i in 0..sf.rows_of(s).len() {
                    assert!(
                        (b.0[(i, j)] - b.1[(i, j)]).abs() < 1e-9,
                        "below {s} ({i},{j}): {} vs {}",
                        b.0[(i, j)],
                        b.1[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn single_rank_matches_sequential() {
        let w = gen::grid_laplacian_2d(8, 8);
        check_matches_sequential(&w.matrix, Grid2D::new(1, 1), TreeScheme::Flat);
    }

    #[test]
    fn small_grids_all_schemes() {
        let w = gen::grid_laplacian_2d(9, 8);
        for scheme in [
            TreeScheme::Flat,
            TreeScheme::Binary,
            TreeScheme::ShiftedBinary,
            TreeScheme::RandomPerm,
            TreeScheme::Hybrid { flat_threshold: 3 },
        ] {
            check_matches_sequential(&w.matrix, Grid2D::new(2, 2), scheme);
        }
    }

    #[test]
    fn rectangular_grids() {
        let w = gen::grid_laplacian_2d(10, 7);
        check_matches_sequential(&w.matrix, Grid2D::new(2, 3), TreeScheme::ShiftedBinary);
        check_matches_sequential(&w.matrix, Grid2D::new(3, 2), TreeScheme::Binary);
        check_matches_sequential(&w.matrix, Grid2D::new(1, 4), TreeScheme::ShiftedBinary);
        check_matches_sequential(&w.matrix, Grid2D::new(4, 1), TreeScheme::Flat);
    }

    #[test]
    fn grid3d_larger_grid() {
        let w = gen::grid_laplacian_3d(4, 4, 3);
        check_matches_sequential(&w.matrix, Grid2D::new(3, 3), TreeScheme::ShiftedBinary);
    }

    #[test]
    fn dg_matrix_with_wide_supernodes() {
        let w = gen::dg_hamiltonian(3, 2, 1, 8, 2);
        check_matches_sequential(&w.matrix, Grid2D::new(2, 3), TreeScheme::ShiftedBinary);
    }

    #[test]
    fn multithreaded_local_gemms_are_bit_identical_to_inline() {
        // The threads knob only parallelizes independent per-target
        // accumulators; results and communication volumes must match the
        // inline path exactly, not just within tolerance.
        let w = gen::grid_laplacian_2d(9, 9);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        let f = pselinv_factor::factorize(&w.matrix, sf.clone()).unwrap();
        let grid = Grid2D::new(2, 2);
        let mk = |threads| DistOptions {
            scheme: TreeScheme::ShiftedBinary,
            seed: 7,
            threads,
            lookahead: 1,
            ..Default::default()
        };
        let (base, vol1) = distributed_selinv(&f, grid, &mk(1));
        for threads in [2, 4] {
            let (par, voln) = distributed_selinv(&f, grid, &mk(threads));
            assert_eq!(vol1, voln, "threads={threads}");
            for s in 0..sf.num_supernodes() {
                for j in 0..sf.width(s) {
                    for i in 0..sf.width(s) {
                        assert_eq!(
                            base.panels[s].diag[(i, j)].to_bits(),
                            par.panels[s].diag[(i, j)].to_bits(),
                            "diag {s} ({i},{j}) threads={threads}"
                        );
                    }
                    for i in 0..sf.rows_of(s).len() {
                        assert_eq!(
                            base.panels[s].below[(i, j)].to_bits(),
                            par.panels[s].below[(i, j)].to_bits(),
                            "below {s} ({i},{j}) threads={threads}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn runtime_volumes_match_structural_replay() {
        // The mpisim byte counters of the numeric run must agree exactly
        // with the structure-only replay used for the paper tables.
        let w = gen::grid_laplacian_2d(10, 10);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        let f = pselinv_factor::factorize(&w.matrix, sf.clone()).unwrap();
        let grid = Grid2D::new(3, 3);
        let opts = DistOptions {
            scheme: TreeScheme::ShiftedBinary,
            seed: 7,
            threads: 1,
            lookahead: 1,
            ..Default::default()
        };
        let (_, volumes) = distributed_selinv(&f, grid, &opts);
        let layout = Layout::new(sf, grid);
        let rep = crate::volume::replay_volumes(&layout, TreeBuilder::new(opts.scheme, opts.seed));
        let measured_total: u64 = volumes.iter().map(|v| v.sent).sum();
        assert_eq!(measured_total, rep.total_bytes());
    }

    #[test]
    fn tag_packing_is_injective() {
        // Distinct (query, phase, supernode, block) tuples must produce
        // distinct tags — a collision would let messages of different
        // collectives (or of the same collective in two interleaved pole
        // queries) cross-match in the runtime's (src, tag) matching.
        use std::collections::HashMap;
        let phases = [
            PHASE_DIAG_BCAST,
            PHASE_TRANSPOSE,
            PHASE_COL_BCAST,
            PHASE_ROW_REDUCE,
            PHASE_DIAG_REDUCE,
            PHASE_AINV_TRANS,
        ];
        // Sample the corners and interiors of each lane.
        let qids = [0u64, 1, 2, 127, 255];
        let ks = [0usize, 1, 2, 1000, (1 << 24) - 1];
        let bis = [0usize, 1, 7, 4095, (1 << 24) - 1];
        let mut seen: HashMap<u64, (u64, u64, usize, usize)> = HashMap::new();
        for &q in &qids {
            for &p in &phases {
                for &k in &ks {
                    for &bi in &bis {
                        let t = tag_q(q, p, k, bi);
                        if let Some(prev) = seen.insert(t, (q, p, k, bi)) {
                            panic!("tag collision: {prev:?} and ({q},{p:#x},{k},{bi}) -> {t:#x}");
                        }
                    }
                }
            }
        }
        assert_eq!(seen.len(), qids.len() * phases.len() * ks.len() * bis.len());
        // Query 0 reproduces the pre-batching tag values through the
        // shorthand, so standalone runs are byte-for-byte unchanged.
        for &p in &phases {
            for &k in &ks {
                for &bi in &bis {
                    assert_eq!(tag(p, k, bi), tag_q(0, p, k, bi));
                }
            }
        }
        // The runtime's barrier owns two reserved values in the same top
        // byte. They must never land in one of our six phase lanes, for any
        // low-56-bit caller tag — the barrier's original design (flipping
        // the caller tag's top bit) would have collided with PHASE_* lanes.
        use pselinv_mpisim::{BARRIER_DOWN_LANE, BARRIER_UP_LANE};
        for lane in [BARRIER_UP_LANE, BARRIER_DOWN_LANE] {
            for &p in &phases {
                assert_ne!(lane >> 56, p >> 56, "barrier lane collides with phase {p:#x}");
            }
            for &q in &qids {
                for &k in &ks {
                    for &bi in &bis {
                        // Low-56-bit part of any phase tag.
                        let caller = (q << 48) | ((k as u64) << 24) | bi as u64;
                        assert!(
                            !seen.contains_key(&(lane | caller)),
                            "barrier tag {:#x} collides with a phase tag",
                            lane | caller
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn span_key_namespaces_queries() {
        assert_eq!(span_key(0, 17), 17, "query 0 keeps bare supernode keys");
        assert_ne!(span_key(1, 17), span_key(0, 17));
        assert_ne!(span_key(1, 17), span_key(2, 17));
        assert_eq!(span_key(3, 17) & ((1 << 48) - 1), 17);
    }

    #[test]
    #[should_panic(expected = "24-bit tag lane")]
    #[cfg(debug_assertions)]
    fn tag_rejects_block_index_overflow() {
        let _ = tag(PHASE_COL_BCAST, 0, 1 << 24);
    }

    #[test]
    #[should_panic(expected = "supernode")]
    #[cfg(debug_assertions)]
    fn tag_rejects_supernode_overflow() {
        let _ = tag(PHASE_COL_BCAST, 1 << 24, 0);
    }

    #[test]
    #[should_panic(expected = "8-bit tag lane")]
    #[cfg(debug_assertions)]
    fn tag_rejects_query_overflow() {
        let _ = tag_q(256, PHASE_COL_BCAST, 0, 0);
    }

    #[test]
    fn traced_volumes_match_structural_replay_exactly() {
        // The acceptance link of the trace layer: per-rank ColBcast bytes
        // attributed by the traced numeric run must equal the structural
        // replay's col_bcast_sent per rank — not just in total.
        let w = gen::grid_laplacian_2d(10, 10);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        let f = pselinv_factor::factorize(&w.matrix, sf.clone()).unwrap();
        let grid = Grid2D::new(3, 3);
        for scheme in [TreeScheme::Flat, TreeScheme::ShiftedBinary] {
            let opts =
                DistOptions { scheme, seed: 7, threads: 1, lookahead: 1, ..Default::default() };
            let (_, _, trace) = distributed_selinv_traced(&f, grid, &opts, "unit");
            let layout = Layout::new(sf.clone(), grid);
            let rep =
                crate::volume::replay_volumes(&layout, TreeBuilder::new(opts.scheme, opts.seed));
            assert_eq!(trace.sent_bytes(CollKind::ColBcast), rep.col_bcast_sent, "{scheme}");
            assert_eq!(trace.recv_bytes(CollKind::RowReduce), rep.row_reduce_received, "{scheme}");
        }
    }

    #[test]
    fn traced_run_has_phase_spans_and_matches_untraced_result() {
        let w = gen::grid_laplacian_2d(8, 8);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        let f = pselinv_factor::factorize(&w.matrix, sf.clone()).unwrap();
        let opts = DistOptions::default();
        let (plain, vol_a) = distributed_selinv(&f, Grid2D::new(2, 2), &opts);
        let (traced, vol_b, trace) =
            distributed_selinv_traced(&f, Grid2D::new(2, 2), &opts, "unit/traced");
        // Tracing must not perturb results or communication.
        assert_eq!(vol_a, vol_b);
        for s in 0..sf.num_supernodes() {
            for j in 0..sf.width(s) {
                for i in 0..sf.width(s) {
                    assert_eq!(plain.panels[s].diag[(i, j)], traced.panels[s].diag[(i, j)]);
                }
            }
        }
        // The trace is self-describing.
        assert_eq!(trace.meta_str("backend"), Some("mpisim"));
        assert_eq!(trace.meta_str("grid"), Some("2x2"));
        assert_eq!(trace.meta_str("scheme"), Some(opts.scheme.to_string().as_str()));
        // Every rank recorded spans for each phase of each supernode.
        let ns = sf.num_supernodes() as u64;
        for r in &trace.ranks {
            assert_eq!(r.metrics.kind(CollKind::ColBcast).spans, ns);
            assert_eq!(r.metrics.kind(CollKind::RowReduce).spans, ns);
        }
    }

    #[test]
    fn get_api_matches_dense_inverse_through_distribution() {
        let w = gen::grid_laplacian_2d(6, 6);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        let f = pselinv_factor::factorize(&w.matrix, sf.clone()).unwrap();
        let (dist, _) = distributed_selinv(&f, Grid2D::new(2, 3), &DistOptions::default());
        // verify against dense inverse
        let n = w.matrix.nrows();
        let mut dm = Mat::from_col_major(n, n, &w.matrix.to_dense_col_major());
        let piv = pselinv_dense::lu_factor(&mut dm).unwrap();
        let dinv = pselinv_dense::lu_invert(&dm, &piv);
        for (i, j, _) in w.matrix.iter() {
            let v = dist.get(i, j).expect("selected entry");
            assert!((v - dinv[(i, j)]).abs() < 1e-9, "({i},{j})");
        }
    }
}
