//! Per-supernode communication plans (the paper's preprocessing step).
//!
//! Once the factors and the 2-D mapping are fixed, the participant set of
//! every restricted collective is known; trees can therefore be built
//! locally and deterministically on every rank ("no further communication
//! is needed to set up the tree once the list of processors is known").

use crate::layout::Layout;
use pselinv_trees::{CollectiveTree, TreeBuilder};

/// Collective kinds, used to derive independent tree keys and message tags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectiveKind {
    /// Loop-1 broadcast of `L_{K,K}` down process column `pc(K)`.
    DiagBcast,
    /// `Col-Bcast`: broadcast of `Û_{K,I} = L̂ᵀ_{I,K}` down process column
    /// `pc(I)` (step a in paper Fig. 2).
    ColBcast,
    /// `Row-Reduce`: reduction of `A⁻¹_{J,I} L̂_{I,K}` across process row
    /// `pr(J)` onto the owner of `A⁻¹_{J,K}` (step b).
    RowReduce,
    /// Reduction of `L̂ᵀ_{I,K} A⁻¹_{I,K}` down process column `pc(K)` onto
    /// the diagonal owner (step c).
    DiagReduce,
}

impl CollectiveKind {
    fn key_base(self) -> u64 {
        match self {
            CollectiveKind::DiagBcast => 1 << 60,
            CollectiveKind::ColBcast => 2 << 60,
            CollectiveKind::RowReduce => 3 << 60,
            CollectiveKind::DiagReduce => 4 << 60,
        }
    }
}

/// Everything supernode `K`'s step of Algorithm 1 needs to communicate.
#[derive(Clone, Debug)]
pub struct SupernodePlan {
    /// The supernode.
    pub k: usize,
    /// Loop-1 broadcast of the diagonal block within `pc(K)`.
    pub diag_bcast: CollectiveTree,
    /// Per ancestor block (same order as `blocks_of(k)`): the `L̂ → Û`
    /// transpose point-to-point `(src, dst)`.
    pub transposes: Vec<(usize, usize)>,
    /// Per ancestor block: the `Col-Bcast` tree rooted at the `Û` owner.
    pub col_bcasts: Vec<CollectiveTree>,
    /// Per ancestor block (as reduction target `J`): the `Row-Reduce` tree
    /// rooted at the owner of `A⁻¹_{J,K}`.
    pub row_reduces: Vec<CollectiveTree>,
    /// Diagonal-contribution reduction within `pc(K)`.
    pub diag_reduce: CollectiveTree,
    /// Per ancestor block: the step-5 `A⁻¹` transpose `(src, dst)`.
    pub ainv_transposes: Vec<(usize, usize)>,
}

/// Builds [`SupernodePlan`]s on demand from a layout and a tree builder.
#[derive(Clone)]
pub struct CommPlan {
    /// The block-cyclic layout.
    pub layout: Layout,
    /// Deterministic tree factory (scheme + seed).
    pub builder: TreeBuilder,
}

impl CommPlan {
    /// Creates a plan factory.
    pub fn new(layout: Layout, builder: TreeBuilder) -> Self {
        Self { layout, builder }
    }

    /// Key identifying one collective of one supernode, mixed into the
    /// tree builder's seed so concurrent collectives get independent
    /// shifts.
    pub fn tree_key(kind: CollectiveKind, k: usize, block_in_k: usize) -> u64 {
        kind.key_base() | ((k as u64) << 24) | block_in_k as u64
    }

    /// Builds the plans of every supernode once, for shared read-only use
    /// by all rank threads. Without this, each rank rebuilds every tree of
    /// every supernode in both traversal phases — `O(ranks × supernodes)`
    /// redundant tree constructions per run.
    pub fn precompute_all(&self) -> std::sync::Arc<Vec<SupernodePlan>> {
        let ns = self.layout.symbolic.num_supernodes();
        std::sync::Arc::new((0..ns).map(|k| self.supernode_plan(k)).collect())
    }

    /// Builds the full communication plan of supernode `k`.
    pub fn supernode_plan(&self, k: usize) -> SupernodePlan {
        let sf = &*self.layout.symbolic;
        let grid = self.layout.grid;
        let blocks = sf.blocks_of(k);
        let diag_owner = self.layout.diag_owner(k);

        // Loop-1 diag bcast: to every distinct lower-block owner.
        let mut lower_owners: Vec<usize> =
            blocks.iter().map(|b| self.layout.lower_owner(b, k)).collect();
        let mut diag_receivers = lower_owners.clone();
        diag_receivers.sort_unstable();
        diag_receivers.dedup();
        diag_receivers.retain(|&r| r != diag_owner);
        let diag_bcast = self.builder.build(
            diag_owner,
            &diag_receivers,
            Self::tree_key(CollectiveKind::DiagBcast, k, 0),
        );

        // Process rows of every ancestor block (the GEMM participants).
        let prows: Vec<usize> = blocks.iter().map(|b| grid.prow_of_block(b.sn)).collect();

        let mut transposes = Vec::with_capacity(blocks.len());
        let mut col_bcasts = Vec::with_capacity(blocks.len());
        let mut row_reduces = Vec::with_capacity(blocks.len());
        let mut ainv_transposes = Vec::with_capacity(blocks.len());

        for (bi, b) in blocks.iter().enumerate() {
            let src = lower_owners[bi];
            let dst = self.layout.upper_owner(b, k);
            transposes.push((src, dst));
            ainv_transposes.push((src, dst));

            // Col-Bcast of Û_{K,I} within process column pc(I): one message
            // per distinct process row hosting a GEMM participant.
            let pcol_i = grid.pcol_of_block(b.sn);
            let mut receivers: Vec<usize> =
                prows.iter().map(|&pr| grid.rank_of(pr, pcol_i)).collect();
            receivers.sort_unstable();
            receivers.dedup();
            receivers.retain(|&r| r != dst);
            col_bcasts.push(self.builder.build(
                dst,
                &receivers,
                Self::tree_key(CollectiveKind::ColBcast, k, bi),
            ));

            // Row-Reduce onto the owner of A⁻¹_{J,K} within process row
            // pr(J): one contribution per distinct process column hosting
            // one of the ancestors I.
            let prow_j = grid.prow_of_block(b.sn);
            let mut contributors: Vec<usize> =
                blocks.iter().map(|bb| grid.rank_of(prow_j, grid.pcol_of_block(bb.sn))).collect();
            contributors.sort_unstable();
            contributors.dedup();
            contributors.retain(|&r| r != src);
            row_reduces.push(self.builder.build(
                src,
                &contributors,
                Self::tree_key(CollectiveKind::RowReduce, k, bi),
            ));
        }

        // Diagonal reduction within pc(K): contributions from every
        // distinct lower-block owner.
        lower_owners.sort_unstable();
        lower_owners.dedup();
        lower_owners.retain(|&r| r != diag_owner);
        let diag_reduce = self.builder.build(
            diag_owner,
            &lower_owners,
            Self::tree_key(CollectiveKind::DiagReduce, k, 0),
        );

        SupernodePlan {
            k,
            diag_bcast,
            transposes,
            col_bcasts,
            row_reduces,
            diag_reduce,
            ainv_transposes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pselinv_mpisim::Grid2D;
    use pselinv_order::{analyze, AnalyzeOptions};
    use pselinv_sparse::gen;
    use pselinv_trees::TreeScheme;
    use std::sync::Arc;

    fn make_plan(pr: usize, pc: usize, scheme: TreeScheme) -> CommPlan {
        let w = gen::grid_laplacian_2d(12, 12);
        let sf = Arc::new(analyze(&w.matrix.pattern(), &AnalyzeOptions::default()));
        let layout = Layout::new(sf, Grid2D::new(pr, pc));
        CommPlan::new(layout, TreeBuilder::new(scheme, 42))
    }

    #[test]
    fn col_bcast_stays_in_one_process_column() {
        let plan = make_plan(3, 4, TreeScheme::ShiftedBinary);
        let sf = plan.layout.symbolic.clone();
        for k in 0..sf.num_supernodes() {
            let sp = plan.supernode_plan(k);
            for (bi, b) in sf.blocks_of(k).iter().enumerate() {
                let tree = &sp.col_bcasts[bi];
                let pcol = plan.layout.grid.pcol_of_block(b.sn);
                for &m in tree.members() {
                    assert_eq!(plan.layout.grid.col_of(m), pcol, "k={k} block={bi}");
                }
                assert_eq!(tree.root(), plan.layout.upper_owner(b, k));
            }
        }
    }

    #[test]
    fn row_reduce_stays_in_one_process_row() {
        let plan = make_plan(4, 3, TreeScheme::Binary);
        let sf = plan.layout.symbolic.clone();
        for k in 0..sf.num_supernodes() {
            let sp = plan.supernode_plan(k);
            for (bi, b) in sf.blocks_of(k).iter().enumerate() {
                let tree = &sp.row_reduces[bi];
                let prow = plan.layout.grid.prow_of_block(b.sn);
                for &m in tree.members() {
                    assert_eq!(plan.layout.grid.row_of(m), prow, "k={k} block={bi}");
                }
                assert_eq!(tree.root(), plan.layout.lower_owner(b, k));
            }
        }
    }

    #[test]
    fn gemm_participants_are_covered_by_col_bcast() {
        // Every rank that must run a GEMM with Û_{K,I} is a member of the
        // Col-Bcast tree of block I.
        let plan = make_plan(3, 3, TreeScheme::Flat);
        let sf = plan.layout.symbolic.clone();
        let grid = plan.layout.grid;
        for k in 0..sf.num_supernodes() {
            let blocks = sf.blocks_of(k);
            let sp = plan.supernode_plan(k);
            for (bi, b) in blocks.iter().enumerate() {
                let pcol_i = grid.pcol_of_block(b.sn);
                for bj in blocks {
                    let gemm_rank = grid.rank_of(grid.prow_of_block(bj.sn), pcol_i);
                    assert!(
                        sp.col_bcasts[bi].members().contains(&gemm_rank),
                        "k={k}: GEMM rank {gemm_rank} missing from Col-Bcast of block {bi}"
                    );
                }
            }
        }
    }

    #[test]
    fn plans_are_deterministic() {
        let p1 = make_plan(3, 4, TreeScheme::ShiftedBinary);
        let p2 = make_plan(3, 4, TreeScheme::ShiftedBinary);
        for k in 0..p1.layout.symbolic.num_supernodes() {
            let a = p1.supernode_plan(k);
            let b = p2.supernode_plan(k);
            assert_eq!(a.col_bcasts, b.col_bcasts);
            assert_eq!(a.row_reduces, b.row_reduces);
            assert_eq!(a.transposes, b.transposes);
        }
    }

    #[test]
    fn precomputed_plans_match_on_demand_construction() {
        let plan = make_plan(3, 4, TreeScheme::ShiftedBinary);
        let all = plan.precompute_all();
        assert_eq!(all.len(), plan.layout.symbolic.num_supernodes());
        for (k, sp) in all.iter().enumerate() {
            let fresh = plan.supernode_plan(k);
            assert_eq!(sp.k, fresh.k);
            assert_eq!(sp.diag_bcast, fresh.diag_bcast);
            assert_eq!(sp.col_bcasts, fresh.col_bcasts);
            assert_eq!(sp.row_reduces, fresh.row_reduces);
            assert_eq!(sp.diag_reduce, fresh.diag_reduce);
            assert_eq!(sp.transposes, fresh.transposes);
            assert_eq!(sp.ainv_transposes, fresh.ainv_transposes);
        }
    }

    #[test]
    fn keys_are_unique_across_collectives() {
        let mut seen = std::collections::HashSet::new();
        for k in 0..1000usize {
            for b in 0..20usize {
                for kind in [
                    CollectiveKind::DiagBcast,
                    CollectiveKind::ColBcast,
                    CollectiveKind::RowReduce,
                    CollectiveKind::DiagReduce,
                ] {
                    assert!(seen.insert(CommPlan::tree_key(kind, k, b)));
                }
            }
        }
    }

    #[test]
    fn single_rank_grid_degenerates_gracefully() {
        let plan = make_plan(1, 1, TreeScheme::ShiftedBinary);
        let sf = plan.layout.symbolic.clone();
        for k in 0..sf.num_supernodes() {
            let sp = plan.supernode_plan(k);
            assert!(sp.diag_bcast.is_empty());
            for t in &sp.col_bcasts {
                assert!(t.is_empty());
            }
            for &(s, d) in &sp.transposes {
                assert_eq!(s, d);
            }
        }
    }
}
