//! Persistent per-rank work-stealing task runtime.
//!
//! `dist` used to spin up a fresh fork-join [`std::thread::scope`] for every
//! supernode GEMM step, paying thread spawn plus a full barrier on each call
//! and leaving the workers idle while the async engine polled communication.
//! This crate replaces that with a pool created **once per rank**:
//!
//! * `threads - 1` persistent workers, each owning a [Chase–Lev
//!   deque](deque); the submitting rank thread owns an injection deque at
//!   slot 0. Idle workers *park* on a condvar keyed by a generation counter,
//!   so a quiescent pool consumes no CPU between supernodes.
//! * Tasks are submitted in **epoch batches**. Each task writes its result
//!   into a dedicated, index-addressed slot, so collection order is the
//!   submission order no matter which worker ran what — the caller's merge
//!   over slot indices is deterministic and therefore bit-identical to a
//!   serial execution of the same tasks (each task is internally
//!   sequential; floating-point order never depends on scheduling).
//! * [`Pool::submit`] returns a [`Batch`] handle that the async engine polls
//!   with [`Batch::try_done`] while it keeps driving `TreeBcastNb` /
//!   `TreeReduceNb` progress on the submitting thread — communication
//!   genuinely overlaps compute within a rank. [`Pool::run`] is the
//!   borrowed-closure fork-join entry (sound because it does not return
//!   until every task finished).
//! * The submitting thread is itself participant 0: [`Pool::help_one`]
//!   executes one pending task, and `Batch::wait` helps instead of
//!   spinning, so `threads = n` means *n* executors, not `n + 1`.
//!
//! Per-participant execute/steal counters, coalesced busy intervals and a
//! live busy-worker gauge (mirrored into an external `AtomicUsize`, e.g. the
//! mpisim telemetry block) make pool utilization observable from
//! `trace`/`telemetry`.

mod deque;

use deque::{ChaseLev, Steal};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// A type-erased job, boxed so the raw pointer stored in the deque is thin.
/// `body` does the work (and stores the result); `done` signals batch
/// completion. The executor runs `done` only **after** recording stats and
/// releasing the busy gauge, so a waiter that observes the batch complete
/// also observes every counter of the tasks it covers.
struct Job {
    body: Box<dyn FnOnce() + Send + 'static>,
    done: Box<dyn FnOnce() + Send + 'static>,
}

/// Merge gap for busy-interval coalescing: separate executions closer than
/// this (in µs) collapse into one recorded span, bounding span volume.
const SPAN_MERGE_GAP_US: u64 = 200;
/// Upper bound on recorded busy intervals per participant.
const SPAN_CAP: usize = 8192;

/// Per-participant counters. Participant 0 is the submitting thread; the
/// spawned workers are 1..threads.
struct SlotStats {
    executed: AtomicU64,
    stolen: AtomicU64,
    busy_ns: AtomicU64,
    /// Coalesced busy intervals in µs since pool creation.
    spans: Mutex<Vec<(u64, u64)>>,
}

impl SlotStats {
    fn new() -> Self {
        SlotStats {
            executed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            spans: Mutex::new(Vec::new()),
        }
    }
}

/// A snapshot of one participant's activity, in submission-thread = slot 0
/// order. See [`Pool::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStats {
    /// Tasks this participant executed.
    pub executed: u64,
    /// Of those, how many were stolen from another participant's deque.
    pub stolen: u64,
    /// Total wall time spent inside task bodies, in µs.
    pub busy_us: u64,
}

/// Whole-pool snapshot returned by [`Pool::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Per-participant counters; index 0 is the submitting thread.
    pub workers: Vec<WorkerStats>,
    /// Number of batches submitted so far.
    pub epochs: u64,
}

impl PoolStats {
    /// Total tasks executed across all participants.
    pub fn executed(&self) -> u64 {
        self.workers.iter().map(|w| w.executed).sum()
    }

    /// Total tasks that moved between participants.
    pub fn stolen(&self) -> u64 {
        self.workers.iter().map(|w| w.stolen).sum()
    }

    /// Aggregate busy time across participants, µs.
    pub fn busy_us(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_us).sum()
    }
}

struct Inner {
    /// `deques[0]` is owned by the submitting thread (the injector);
    /// `deques[i]` for `i >= 1` is owned by worker `i`. Everyone steals
    /// from everyone else.
    deques: Vec<ChaseLev>,
    /// Generation counter guarded by `lock`; bumped on submit / shutdown /
    /// batch completion so parked threads observe missed wakeups.
    lock: Mutex<u64>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Jobs submitted but not yet finished executing.
    pending: AtomicUsize,
    epoch: AtomicU64,
    /// Number of participants currently inside a task body.
    busy: AtomicUsize,
    /// Optional external mirror of `busy` (telemetry gauge).
    gauge: OnceLock<Arc<AtomicUsize>>,
    stats: Vec<SlotStats>,
    t0: Instant,
}

impl Inner {
    fn bump_gen(&self) {
        let mut g = self.lock.lock().unwrap();
        *g = g.wrapping_add(1);
        drop(g);
        self.cv.notify_all();
    }

    fn read_gen(&self) -> u64 {
        *self.lock.lock().unwrap()
    }

    /// Park until the generation moves past `seen` (or shutdown).
    fn park(&self, seen: u64) {
        let mut g = self.lock.lock().unwrap();
        while *g == seen && !self.shutdown.load(Ordering::Relaxed) {
            g = self.cv.wait(g).unwrap();
        }
    }

    /// Find one runnable job from `slot`'s perspective: own deque first,
    /// then round-robin steals from every other deque. Returns the job and
    /// whether it was stolen.
    fn find_work(&self, slot: usize) -> Option<(usize, bool)> {
        if let Some(j) = self.deques[slot].pop() {
            return Some((j, false));
        }
        let n = self.deques.len();
        loop {
            let mut retry = false;
            for k in 1..n {
                let victim = (slot + k) % n;
                match self.deques[victim].steal() {
                    Steal::Success(j) => return Some((j, true)),
                    Steal::Retry => retry = true,
                    Steal::Empty => {}
                }
            }
            if !retry {
                return None;
            }
            std::hint::spin_loop();
        }
    }

    /// Execute a type-erased job on behalf of `slot`, maintaining stats,
    /// the busy gauge and the pending count. Task panics are caught by the
    /// job wrapper itself (see `submit`), so the body only unwinds on
    /// internal bugs.
    fn execute(&self, raw: usize, slot: usize, stolen: bool) {
        let job: Box<Job> = unsafe { Box::from_raw(raw as *mut Job) };
        self.busy.fetch_add(1, Ordering::Relaxed);
        if let Some(g) = self.gauge.get() {
            g.fetch_add(1, Ordering::Relaxed);
        }
        let start = Instant::now();
        let start_us = start.duration_since(self.t0).as_micros() as u64;
        (job.body)();
        let busy = start.elapsed();
        let end_us = start_us + busy.as_micros() as u64;
        let st = &self.stats[slot];
        st.executed.fetch_add(1, Ordering::Relaxed);
        if stolen {
            st.stolen.fetch_add(1, Ordering::Relaxed);
        }
        st.busy_ns.fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
        {
            let mut spans = st.spans.lock().unwrap();
            let coalesce = match spans.last() {
                Some(&(_, prev_end)) => {
                    start_us.saturating_sub(prev_end) <= SPAN_MERGE_GAP_US
                        || spans.len() >= SPAN_CAP
                }
                None => false,
            };
            if coalesce {
                let last = spans.last_mut().unwrap();
                last.1 = last.1.max(end_us);
            } else {
                spans.push((start_us, end_us));
            }
        }
        if let Some(g) = self.gauge.get() {
            g.fetch_sub(1, Ordering::Relaxed);
        }
        self.busy.fetch_sub(1, Ordering::Relaxed);
        self.pending.fetch_sub(1, Ordering::Release);
        (job.done)();
    }

    fn try_execute_one(&self, slot: usize) -> bool {
        match self.find_work(slot) {
            Some((job, stolen)) => {
                self.execute(job, slot, stolen);
                true
            }
            None => false,
        }
    }
}

fn worker_loop(inner: Arc<Inner>, slot: usize) {
    loop {
        let seen = inner.read_gen();
        let mut did = false;
        while inner.try_execute_one(slot) {
            did = true;
        }
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        if !did {
            inner.park(seen);
        }
    }
}

/// Shared completion state of one submitted batch.
struct BatchShared<T> {
    results: Box<[Mutex<Option<T>>]>,
    remaining: AtomicUsize,
    panic: Mutex<Option<String>>,
}

/// Handle to an in-flight epoch batch. Results are collected **in
/// submission order** by [`Batch::wait`], independent of which worker ran
/// which task. Dropping a batch without waiting blocks until it drains, so
/// task closures can never outlive the state they capture.
pub struct Batch<T: Send + 'static> {
    shared: Arc<BatchShared<T>>,
    inner: Arc<Inner>,
    collected: bool,
}

impl<T: Send + 'static> Batch<T> {
    /// Non-blocking: has every task in the batch finished?
    pub fn try_done(&self) -> bool {
        self.shared.remaining.load(Ordering::Acquire) == 0
    }

    /// Block until done, helping to execute pending tasks (from any batch)
    /// on the calling thread; returns the results in submission order.
    ///
    /// Must be called from the submitting thread (it uses the injector
    /// deque as participant 0).
    pub fn wait(mut self) -> Vec<T> {
        self.drain();
        self.collected = true;
        if let Some(msg) = self.shared.panic.lock().unwrap().take() {
            panic!("pool task panicked: {msg}");
        }
        // remaining == 0 (Acquire) orders after every result store (AcqRel
        // decrement), so each slot is filled.
        self.shared
            .results
            .iter()
            .map(|m| m.lock().unwrap().take().expect("task completed without a result"))
            .collect()
    }

    fn drain(&self) {
        while !self.try_done() {
            let seen = self.inner.read_gen();
            if !self.inner.try_execute_one(0) && !self.try_done() {
                // All remaining tasks are on other threads: park until a
                // batch-completion or submit bump rather than burning CPU.
                self.inner.park(seen);
            }
        }
    }
}

impl<T: Send + 'static> Drop for Batch<T> {
    fn drop(&mut self) {
        if !self.collected {
            self.drain();
            if let Some(msg) = self.shared.panic.lock().unwrap().take() {
                if !std::thread::panicking() {
                    panic!("pool task panicked: {msg}");
                }
            }
        }
    }
}

/// The persistent work-stealing pool. See the module docs for the design.
pub struct Pool {
    inner: Arc<Inner>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Create a pool with `threads` total executors: the calling thread
    /// (participant 0, which helps during waits) plus `threads - 1`
    /// persistent parked workers. `threads <= 1` spawns no workers and
    /// executes every task inline on the submitting thread.
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let inner = Arc::new(Inner {
            deques: (0..threads).map(|_| ChaseLev::new()).collect(),
            lock: Mutex::new(0),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            pending: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            busy: AtomicUsize::new(0),
            gauge: OnceLock::new(),
            stats: (0..threads).map(|_| SlotStats::new()).collect(),
            t0: Instant::now(),
        });
        let handles = (1..threads)
            .map(|slot| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("pool-worker-{slot}"))
                    .spawn(move || worker_loop(inner, slot))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { inner, handles }
    }

    /// Total executors (submitting thread included).
    pub fn threads(&self) -> usize {
        self.inner.deques.len()
    }

    /// Mirror the number of currently-busy executors into `gauge`
    /// (e.g. a telemetry block). May be set at most once per pool.
    pub fn set_busy_gauge(&self, gauge: Arc<AtomicUsize>) {
        let _ = self.inner.gauge.set(gauge);
    }

    /// Number of executors currently inside a task body.
    pub fn busy(&self) -> usize {
        self.inner.busy.load(Ordering::Relaxed)
    }

    /// Submit one epoch batch of owned tasks without blocking; tasks start
    /// running on the workers immediately. With no workers (`threads <= 1`)
    /// the tasks execute inline here, so `try_done` is already true.
    pub fn submit<T: Send + 'static>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Batch<T> {
        self.inner.epoch.fetch_add(1, Ordering::Relaxed);
        let n = tasks.len();
        let shared = Arc::new(BatchShared {
            results: (0..n).map(|_| Mutex::new(None)).collect(),
            remaining: AtomicUsize::new(n),
            panic: Mutex::new(None),
        });
        self.inner.pending.fetch_add(n, Ordering::Relaxed);
        for (i, task) in tasks.into_iter().enumerate() {
            let sh = Arc::clone(&shared);
            let body: Box<dyn FnOnce() + Send> =
                Box::new(move || match catch_unwind(AssertUnwindSafe(task)) {
                    Ok(v) => *sh.results[i].lock().unwrap() = Some(v),
                    Err(e) => {
                        let msg = panic_message(&*e);
                        sh.panic.lock().unwrap().get_or_insert(msg);
                    }
                });
            let sh = Arc::clone(&shared);
            let inner = Arc::clone(&self.inner);
            let done: Box<dyn FnOnce() + Send> = Box::new(move || {
                if sh.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    // Last task of the batch: wake a possibly-parked waiter.
                    inner.bump_gen();
                }
            });
            let raw = Box::into_raw(Box::new(Job { body, done })) as usize;
            if self.handles.is_empty() {
                self.inner.execute(raw, 0, false);
            } else {
                self.inner.deques[0].push(raw);
            }
        }
        if !self.handles.is_empty() {
            self.inner.bump_gen();
        }
        Batch { shared, inner: Arc::clone(&self.inner), collected: false }
    }

    /// Fork-join over borrowed closures: submit every task and do not
    /// return until all have executed, helping on the calling thread.
    ///
    /// The non-`'static` borrows are sound for exactly the same reason
    /// [`std::thread::scope`] is: this function is a completion barrier, so
    /// no captured reference outlives the call.
    pub fn run<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        // SAFETY: `Vec<Box<dyn FnOnce + 'env>>` and the `'static` version
        // are layout-identical, and every closure is consumed before this
        // function returns (Batch::wait is a completion barrier).
        let tasks: Vec<Box<dyn FnOnce() + Send + 'static>> = unsafe { std::mem::transmute(tasks) };
        let _: Vec<()> = self.submit(tasks).wait();
    }

    /// Execute at most one pending task on the calling (submitting) thread.
    /// Returns whether a task ran. The async engine calls this between
    /// communication polls so the rank thread contributes to compute
    /// without ever blocking on it.
    pub fn help_one(&self) -> bool {
        self.inner.try_execute_one(0)
    }

    /// Snapshot the per-participant counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self
                .inner
                .stats
                .iter()
                .map(|s| WorkerStats {
                    executed: s.executed.load(Ordering::Relaxed),
                    stolen: s.stolen.load(Ordering::Relaxed),
                    busy_us: s.busy_ns.load(Ordering::Relaxed) / 1_000,
                })
                .collect(),
            epochs: self.inner.epoch.load(Ordering::Relaxed),
        }
    }

    /// Drain the recorded busy intervals: `(participant, start_us, end_us)`
    /// with timestamps in µs since pool creation. Intervals closer than
    /// 200 µs are coalesced at record time.
    pub fn take_spans(&self) -> Vec<(usize, u64, u64)> {
        let mut out = Vec::new();
        for (slot, s) in self.inner.stats.iter().enumerate() {
            for (a, b) in s.spans.lock().unwrap().drain(..) {
                out.push((slot, a, b));
            }
        }
        out
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Workers drain all remaining work before exiting (every pending
        // batch belongs to a Batch handle whose drop already waited, so in
        // practice the queues are empty here).
        self.inner.shutdown.store(true, Ordering::Relaxed);
        self.inner.bump_gen();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        while self.inner.try_execute_one(0) {}
        debug_assert_eq!(self.inner.pending.load(Ordering::Relaxed), 0);
    }
}

fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_returns_results_in_submission_order() {
        for threads in [1usize, 2, 4, 8] {
            let pool = Pool::new(threads);
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64usize)
                .map(|i| {
                    Box::new(move || {
                        if i % 7 == 0 {
                            std::thread::yield_now();
                        }
                        i * i
                    }) as Box<dyn FnOnce() -> usize + Send>
                })
                .collect();
            let out = pool.submit(tasks).wait();
            assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn run_executes_borrowed_tasks_to_completion() {
        let pool = Pool::new(4);
        let mut cells = vec![0u64; 100];
        {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = cells
                .iter_mut()
                .enumerate()
                .map(|(i, c)| {
                    Box::new(move || *c = (i as u64) + 1) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run(tasks);
        }
        assert!(cells.iter().enumerate().all(|(i, &c)| c == i as u64 + 1));
    }

    #[test]
    fn many_epochs_reuse_the_same_workers() {
        let pool = Pool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..16)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    Box::new(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            pool.submit(tasks).wait();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 50 * 16);
        let stats = pool.stats();
        assert_eq!(stats.epochs, 50);
        assert_eq!(stats.executed(), 50 * 16);
        assert_eq!(stats.workers.len(), 4);
    }

    #[test]
    fn overlap_poll_loop_observes_completion() {
        // Mimic the async engine: submit, then poll try_done while helping.
        let pool = Pool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..32)
            .map(|i| {
                Box::new(move || (0..2_000u64).fold(i, |a, x| a ^ (x * 31)))
                    as Box<dyn FnOnce() -> u64 + Send>
            })
            .collect();
        let batch = pool.submit(tasks);
        let mut polls = 0u64;
        while !batch.try_done() {
            pool.help_one();
            polls += 1;
            if polls > 10_000_000 {
                panic!("batch never completed");
            }
        }
        assert_eq!(batch.wait().len(), 32);
    }

    #[test]
    fn busy_gauge_returns_to_zero() {
        let pool = Pool::new(3);
        let gauge = Arc::new(AtomicUsize::new(0));
        pool.set_busy_gauge(Arc::clone(&gauge));
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..64)
            .map(|_| {
                Box::new(|| {
                    std::hint::black_box((0..500u64).sum::<u64>());
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        pool.submit(tasks).wait();
        assert_eq!(gauge.load(Ordering::Relaxed), 0);
        assert_eq!(pool.busy(), 0);
    }

    #[test]
    #[should_panic(expected = "pool task panicked: boom 3")]
    fn task_panic_propagates_to_wait() {
        let pool = Pool::new(2);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..8)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("boom {i}");
                    }
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        pool.submit(tasks).wait();
    }

    #[test]
    fn steal_counters_move_under_contention() {
        // Submit from the injector, then stay off the queues long enough
        // for the parked workers to wake and steal (the submitting thread
        // only helps once it calls `wait`), so even on a single-CPU box at
        // least one task runs off-thread.
        let pool = Pool::new(8);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..256)
            .map(|_| {
                Box::new(|| {
                    std::thread::yield_now();
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        let batch = pool.submit(tasks);
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while pool.stats().workers[1..].iter().map(|w| w.executed).sum::<u64>() == 0 {
            assert!(Instant::now() < deadline, "workers never woke up");
            std::thread::yield_now();
        }
        batch.wait();
        let stats = pool.stats();
        assert_eq!(stats.executed(), 256);
        let off_thread: u64 = stats.workers[1..].iter().map(|w| w.executed).sum();
        assert!(off_thread > 0, "workers never stole from the injector: {stats:?}");
        assert!(stats.stolen() >= off_thread, "worker executions are steals by construction");
        assert!(stats.busy_us() > 0);
    }

    #[test]
    fn spans_are_recorded_and_drained() {
        let pool = Pool::new(2);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..16)
            .map(|_| {
                Box::new(|| {
                    std::hint::black_box((0..5_000u64).sum::<u64>());
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        pool.submit(tasks).wait();
        let spans = pool.take_spans();
        assert!(!spans.is_empty());
        assert!(spans.iter().all(|&(slot, a, b)| slot < 2 && a <= b));
        assert!(pool.take_spans().is_empty(), "drained");
    }
}
