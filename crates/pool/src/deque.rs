//! Chase–Lev work-stealing deque.
//!
//! One *owner* thread pushes and pops at the bottom; any number of *thief*
//! threads steal from the top with a CAS. The implementation follows the
//! C11 formulation of Lê, Pop, Cohen & Zappa Nardelli, "Correct and
//! Efficient Work-Stealing for Weak Memory Models" (PPoPP 2013): a single
//! `SeqCst` fence orders the owner's speculative `bottom` decrement against
//! thieves' `top` reads, and the `top` CAS arbitrates the one-element race.
//!
//! Elements are opaque `usize` values (the pool stores type-erased job
//! pointers). The deque never frees a buffer while the pool is live:
//! `grow` retires the old buffer into a side list instead of dropping it,
//! because a concurrent thief that loaded the old buffer pointer may still
//! be reading a slot from it. Retired buffers are reclaimed when the deque
//! itself drops, at which point no thief can be active.

use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Mutex;

const MIN_CAP: usize = 64;

struct Buffer {
    cap: usize,
    slots: Box<[AtomicUsize]>,
}

impl Buffer {
    fn alloc(cap: usize) -> *mut Buffer {
        debug_assert!(cap.is_power_of_two());
        let slots: Box<[AtomicUsize]> = (0..cap).map(|_| AtomicUsize::new(0)).collect();
        Box::into_raw(Box::new(Buffer { cap, slots }))
    }

    #[inline]
    fn read(&self, i: isize) -> usize {
        self.slots[i as usize & (self.cap - 1)].load(Ordering::Relaxed)
    }

    #[inline]
    fn write(&self, i: isize, v: usize) {
        self.slots[i as usize & (self.cap - 1)].store(v, Ordering::Relaxed);
    }
}

/// Outcome of a steal attempt.
pub(crate) enum Steal {
    /// The deque looked empty.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
    /// Stole one element.
    Success(usize),
}

pub(crate) struct ChaseLev {
    top: AtomicIsize,
    bottom: AtomicIsize,
    buf: AtomicPtr<Buffer>,
    /// Buffers replaced by `grow`, kept alive until `Drop` (see module docs).
    retired: Mutex<Vec<*mut Buffer>>,
}

// The raw buffer pointers are only dereferenced under the protocol above.
unsafe impl Send for ChaseLev {}
unsafe impl Sync for ChaseLev {}

impl ChaseLev {
    pub(crate) fn new() -> Self {
        ChaseLev {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buf: AtomicPtr::new(Buffer::alloc(MIN_CAP)),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Owner-only: push one element at the bottom.
    pub(crate) fn push(&self, job: usize) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buf = unsafe { &*self.buf.load(Ordering::Relaxed) };
        if b - t >= buf.cap as isize {
            self.grow(b, t);
            buf = unsafe { &*self.buf.load(Ordering::Relaxed) };
        }
        buf.write(b, job);
        fence(Ordering::Release);
        self.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Owner-only: pop one element from the bottom (LIFO).
    pub(crate) fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = unsafe { &*self.buf.load(Ordering::Relaxed) };
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let job = buf.read(b);
            if t == b {
                // Last element: race the thieves for it via the top CAS.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                if won {
                    Some(job)
                } else {
                    None
                }
            } else {
                Some(job)
            }
        } else {
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Any thread: steal one element from the top (FIFO).
    pub(crate) fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let buf = unsafe { &*self.buf.load(Ordering::Acquire) };
        let job = buf.read(t);
        if self.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed).is_ok() {
            Steal::Success(job)
        } else {
            Steal::Retry
        }
    }

    /// Owner-only slow path: double the buffer, retiring the old one.
    fn grow(&self, b: isize, t: isize) {
        let old_ptr = self.buf.load(Ordering::Relaxed);
        let old = unsafe { &*old_ptr };
        let new_ptr = Buffer::alloc(old.cap * 2);
        let new = unsafe { &*new_ptr };
        for i in t..b {
            new.write(i, old.read(i));
        }
        self.buf.store(new_ptr, Ordering::Release);
        self.retired.lock().unwrap().push(old_ptr);
    }
}

impl Drop for ChaseLev {
    fn drop(&mut self) {
        // The pool drains every queue before dropping its deques; anything
        // still here would be a leaked type-erased job allocation.
        debug_assert!(self.pop().is_none(), "deque dropped with pending jobs");
        unsafe {
            drop(Box::from_raw(self.buf.load(Ordering::Relaxed)));
            for p in self.retired.lock().unwrap().drain(..) {
                drop(Box::from_raw(p));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn owner_lifo_pop_when_uncontended() {
        let d = ChaseLev::new();
        for v in 1..=5usize {
            d.push(v);
        }
        assert_eq!(d.pop(), Some(5));
        assert_eq!(d.pop(), Some(4));
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), Some(1));
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn growth_preserves_every_element() {
        let d = ChaseLev::new();
        let n = MIN_CAP * 4 + 7;
        for v in 1..=n {
            d.push(v);
        }
        let mut got = Vec::new();
        while let Some(v) = d.pop() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got, (1..=n).collect::<Vec<_>>());
    }

    /// Hammer one owner (push + occasional pop) against several thieves and
    /// check that every element is consumed exactly once.
    #[test]
    fn concurrent_steals_consume_each_element_once() {
        const N: usize = 20_000;
        const THIEVES: usize = 3;
        let d = Arc::new(ChaseLev::new());
        let done = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..THIEVES {
            let d = Arc::clone(&d);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match d.steal() {
                        Steal::Success(v) => got.push(v),
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) {
                                // One final sweep after the owner finished.
                                while let Steal::Success(v) = d.steal() {
                                    got.push(v);
                                }
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                got
            }));
        }
        let mut owner_got = Vec::new();
        for v in 1..=N {
            d.push(v);
            if v % 5 == 0 {
                if let Some(x) = d.pop() {
                    owner_got.push(x);
                }
            }
        }
        while let Some(x) = d.pop() {
            owner_got.push(x);
        }
        done.store(true, Ordering::Release);
        let mut all: Vec<usize> = owner_got;
        for h in handles {
            all.extend(h.join().unwrap());
        }
        assert_eq!(all.len(), N, "every pushed element consumed exactly once");
        let uniq: HashSet<usize> = all.iter().copied().collect();
        assert_eq!(uniq.len(), N, "no element consumed twice");
    }
}
