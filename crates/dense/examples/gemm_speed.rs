use pselinv_dense::{gemm, gemm_naive, Mat, Transpose};
use std::time::Instant;

fn rand_mat(m: usize, n: usize, seed: u64) -> Mat {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345) | 1;
    let mut a = Mat::zeros(m, n);
    for j in 0..n {
        for i in 0..m {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            a[(i, j)] = (state as f64 / u64::MAX as f64) * 2.0 - 1.0;
        }
    }
    a
}

fn main() {
    for &s in &[128usize, 256, 512] {
        let a = rand_mat(s, s, 1);
        let b = rand_mat(s, s, 2);
        let flops = 2.0 * (s as f64).powi(3);
        let mut c = Mat::zeros(s, s);
        // warmup
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
        let reps = if s <= 256 { 20 } else { 5 };
        let t = Instant::now();
        for _ in 0..reps {
            gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
        }
        let blocked = t.elapsed().as_secs_f64() / reps as f64;
        let t = Instant::now();
        for _ in 0..reps {
            gemm_naive(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
        }
        let naive = t.elapsed().as_secs_f64() / reps as f64;
        println!(
            "{s}^3: blocked {:.2} GF/s  naive {:.2} GF/s  speedup {:.2}x",
            flops / blocked / 1e9,
            flops / naive / 1e9,
            naive / blocked
        );
    }
}
