//! GEMM and triangular solves.
//!
//! The public entry points ([`gemm`], [`trsm_right_lower`], …) run a
//! cache-blocked, register-tiled implementation: operands are packed into
//! contiguous panels (`MR`/`NR`-interleaved, zero-padded at the edges) and
//! multiplied by a fixed-size microkernel whose accumulator tile lives in
//! registers, so the compiler can keep the inner loop free of bounds checks
//! and autovectorize it. The triangular solves are blocked the same way:
//! small diagonal triangles are solved by scalar loops and the bulk of the
//! update is delegated to the GEMM core.
//!
//! The seed's scalar kernels are retained verbatim as `*_naive` — they are
//! the reference every blocked kernel is property-tested against, and the
//! baseline the `pselinv-bench` perf harness reports speedups over.

// BLAS-style kernels take (dims, scalars, ptr+ld per operand) positionally.
#![allow(clippy::too_many_arguments)]

use crate::mat::Mat;

/// Transpose flag for [`gemm`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transpose {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

// ---- Blocking parameters -------------------------------------------------
//
// GotoBLAS-style three-level blocking: a KC×NC panel of B is packed once
// and streamed against MC×KC panels of A; the microkernel multiplies an
// MR×KC strip of packed A by a KC×NR strip of packed B into an MR×NR
// register tile of C. MC×KC×8 bytes ≈ 256 KiB keeps the A panel resident
// in L2; the MR strip of the current iteration lives in L1.

/// Rows of one packed A panel.
pub(crate) const MC: usize = 128;
/// Shared (inner) dimension of one packing round.
pub(crate) const KC: usize = 256;
/// Columns of one packed B panel.
pub(crate) const NC: usize = 4096;
/// Microkernel tile rows (contiguous in packed A and in column-major C).
pub(crate) const MR: usize = 8;
/// Microkernel tile columns.
pub(crate) const NR: usize = 4;
/// Below this many multiply-adds the packed path costs more than it saves
/// (packing + buffer allocation); fall through to the scalar kernels.
pub(crate) const SMALL_FLOPS: usize = 24 * 24 * 24;
/// Column-block width of the blocked triangular solves.
const TRSM_NB: usize = 48;

/// Reads element `(i, j)` of `op(X)` where `X` is column-major with leading
/// dimension `ld`.
///
/// # Safety
/// The caller guarantees the index is inside the allocation backing `x`:
/// `j*ld + i` (or `i*ld + j` when transposed) is in bounds.
#[inline(always)]
unsafe fn ld_get(x: *const f64, ld: usize, i: usize, j: usize, t: Transpose) -> f64 {
    match t {
        Transpose::No => *x.add(j * ld + i),
        Transpose::Yes => *x.add(i * ld + j),
    }
}

/// Packs `op(A)[i0..i0+mc, p0..p0+kc]` into `buf` as a sequence of
/// `MR`-row strips: strip `s` holds rows `s*MR..(s+1)*MR`, stored as `kc`
/// consecutive groups of `MR` values (zero-padded past `mc`).
///
/// # Safety
/// All read indices must be inside `a`'s allocation (see [`ld_get`]).
unsafe fn pack_a(
    buf: &mut [f64],
    a: *const f64,
    lda: usize,
    ta: Transpose,
    i0: usize,
    mc: usize,
    p0: usize,
    kc: usize,
) {
    let mut idx = 0;
    let mut ir = 0;
    while ir < mc {
        let h = MR.min(mc - ir);
        for p in 0..kc {
            for r in 0..h {
                buf[idx + r] = ld_get(a, lda, i0 + ir + r, p0 + p, ta);
            }
            for r in h..MR {
                buf[idx + r] = 0.0;
            }
            idx += MR;
        }
        ir += MR;
    }
}

/// Packs `op(B)[p0..p0+kc, j0..j0+nc]` into `buf` as `NR`-column strips:
/// strip `s` holds columns `s*NR..(s+1)*NR` as `kc` groups of `NR` values
/// (zero-padded past `nc`).
///
/// # Safety
/// All read indices must be inside `b`'s allocation (see [`ld_get`]).
unsafe fn pack_b(
    buf: &mut [f64],
    b: *const f64,
    ldb: usize,
    tb: Transpose,
    p0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
) {
    let mut idx = 0;
    let mut jr = 0;
    while jr < nc {
        let w = NR.min(nc - jr);
        for p in 0..kc {
            for s in 0..w {
                buf[idx + s] = ld_get(b, ldb, p0 + p, j0 + jr + s, tb);
            }
            for s in w..NR {
                buf[idx + s] = 0.0;
            }
            idx += NR;
        }
        jr += NR;
    }
}

/// The register-tiled microkernel: `C[0..mr, 0..nr] += alpha * Ap · Bp`
/// where `Ap` is an `MR×kc` packed strip and `Bp` a `kc×NR` packed strip.
/// The accumulator tile is a fixed-size array the compiler keeps in
/// registers; `chunks_exact` gives it bounds-check-free, unrollable access.
///
/// # Safety
/// `c` must point at element `(0, 0)` of an `mr×nr` tile inside a
/// column-major matrix with leading dimension `ldc`, fully in bounds, and
/// must not alias `ap`/`bp`.
#[inline(always)]
unsafe fn microkernel(
    kc: usize,
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    c: *mut f64,
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    microkernel_body(kc, alpha, ap, bp, c, ldc, mr, nr)
}

/// [`microkernel`] compiled with AVX2 + FMA codegen enabled. Same source;
/// the wider vectors and fused multiply-adds come entirely from the
/// compiler re-vectorizing the accumulator loop.
///
/// # Safety
/// As [`microkernel`], plus: the CPU must support AVX2 and FMA (checked
/// once at dispatch via `is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn microkernel_fma(
    kc: usize,
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    c: *mut f64,
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    microkernel_body(kc, alpha, ap, bp, c, ldc, mr, nr)
}

/// Returns whether the FMA microkernel may be dispatched on this CPU.
/// `is_x86_feature_detected!` caches the CPUID probe internally.
#[inline(always)]
fn use_fma_kernel() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Shared body of the scalar-ISA and FMA microkernels.
///
/// # Safety
/// As [`microkernel`].
#[inline(always)]
unsafe fn microkernel_body(
    kc: usize,
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    c: *mut f64,
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    debug_assert!(ap.len() == kc * MR && bp.len() == kc * NR);
    let mut acc = [0.0f64; MR * NR];
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        for j in 0..NR {
            let bj = b[j];
            for i in 0..MR {
                acc[j * MR + i] += a[i] * bj;
            }
        }
    }
    if mr == MR && nr == NR {
        // Full tile: fixed bounds, vectorized write-back.
        for j in 0..NR {
            let cc = c.add(j * ldc);
            for i in 0..MR {
                *cc.add(i) += alpha * acc[j * MR + i];
            }
        }
    } else {
        for j in 0..nr {
            let cc = c.add(j * ldc);
            for i in 0..mr {
                *cc.add(i) += alpha * acc[j * MR + i];
            }
        }
    }
}

std::thread_local! {
    /// Per-thread packing arenas reused across every blocked-GEMM call on
    /// this thread (including pool workers), so steady-state kernels do no
    /// heap allocation. Grow-only; stale contents past the packed prefix
    /// are never read (`pack_a`/`pack_b` overwrite, zero-pad included,
    /// exactly the region the microkernels consume).
    static PACK_ARENA: std::cell::RefCell<(Vec<f64>, Vec<f64>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

fn arena_reserve(buf: &mut Vec<f64>, len: usize) {
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
}

/// Packed, blocked `C += alpha * op(A) · op(B)` over raw column-major
/// buffers with leading dimensions.
///
/// # Safety
/// `a`/`b`/`c` must cover `op(A)` (`m×k`), `op(B)` (`k×n`) and `C` (`m×n`)
/// under their leading dimensions; `c` must not overlap `a` or `b`.
pub(crate) unsafe fn gemm_blocked(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: *const f64,
    lda: usize,
    ta: Transpose,
    b: *const f64,
    ldb: usize,
    tb: Transpose,
    c: *mut f64,
    ldc: usize,
) {
    PACK_ARENA.with(|cell| {
        let (apack, bpack) = &mut *cell.borrow_mut();
        let mc_cap = MC.min(m).next_multiple_of(MR);
        let kc_cap = KC.min(k);
        let nc_cap = NC.min(n).next_multiple_of(NR);
        arena_reserve(apack, mc_cap * kc_cap);
        arena_reserve(bpack, kc_cap * nc_cap);
        gemm_blocked_with(m, n, k, alpha, a, lda, ta, b, ldb, tb, c, ldc, apack, bpack)
    })
}

/// [`gemm_blocked`] against caller-provided packing buffers.
///
/// # Safety
/// As [`gemm_blocked`]; the buffers must hold at least one MC×KC (KC×NC)
/// packing round for the clipped block sizes.
unsafe fn gemm_blocked_with(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: *const f64,
    lda: usize,
    ta: Transpose,
    b: *const f64,
    ldb: usize,
    tb: Transpose,
    c: *mut f64,
    ldc: usize,
    apack: &mut [f64],
    bpack: &mut [f64],
) {
    let fma = use_fma_kernel();

    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(bpack, b, ldb, tb, pc, kc, jc, nc);
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                pack_a(apack, a, lda, ta, ic, mc, pc, kc);
                let mut jr = 0;
                while jr < nc {
                    let nr = NR.min(nc - jr);
                    let bp = &bpack[(jr / NR) * (kc * NR)..][..kc * NR];
                    let mut ir = 0;
                    while ir < mc {
                        let mr = MR.min(mc - ir);
                        let ap = &apack[(ir / MR) * (kc * MR)..][..kc * MR];
                        let ct = c.add((jc + jr) * ldc + ic + ir);
                        #[cfg(target_arch = "x86_64")]
                        if fma {
                            microkernel_fma(kc, alpha, ap, bp, ct, ldc, mr, nr);
                        } else {
                            microkernel(kc, alpha, ap, bp, ct, ldc, mr, nr);
                        }
                        #[cfg(not(target_arch = "x86_64"))]
                        {
                            let _ = fma;
                            microkernel(kc, alpha, ap, bp, ct, ldc, mr, nr);
                        }
                        ir += MR;
                    }
                    jr += NR;
                }
                ic += MC;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// Scalar `C += alpha * op(A) · op(B)` for problems too small to pack
/// (the seed's loop orders, over raw buffers with leading dimensions).
///
/// # Safety
/// Same bounds contract as [`gemm_blocked`].
unsafe fn gemm_scalar(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: *const f64,
    lda: usize,
    ta: Transpose,
    b: *const f64,
    ldb: usize,
    tb: Transpose,
    c: *mut f64,
    ldc: usize,
) {
    match ta {
        Transpose::No => {
            // jki order: stream down columns of op(A) and C.
            for j in 0..n {
                for p in 0..k {
                    let bpj = alpha * ld_get(b, ldb, p, j, tb);
                    if bpj == 0.0 {
                        continue;
                    }
                    let acol = a.add(p * lda);
                    let ccol = c.add(j * ldc);
                    for i in 0..m {
                        *ccol.add(i) += *acol.add(i) * bpj;
                    }
                }
            }
        }
        Transpose::Yes => {
            // Columns of the stored A are rows of op(A): dot products.
            for j in 0..n {
                for i in 0..m {
                    let acol = a.add(i * lda);
                    let mut s = 0.0;
                    for p in 0..k {
                        s += *acol.add(p) * ld_get(b, ldb, p, j, tb);
                    }
                    *c.add(j * ldc + i) += alpha * s;
                }
            }
        }
    }
}

/// Scales the `m×n` region of `c` (leading dimension `ldc`) by `beta`.
///
/// # Safety
/// The region must be inside `c`'s allocation.
pub(crate) unsafe fn scale_c(m: usize, n: usize, beta: f64, c: *mut f64, ldc: usize) {
    if beta == 1.0 {
        return;
    }
    for j in 0..n {
        let cc = c.add(j * ldc);
        for i in 0..m {
            *cc.add(i) *= beta;
        }
    }
}

/// `C = alpha * op(A) * op(B) + beta * C` over raw column-major buffers
/// with explicit leading dimensions — the core the [`Mat`] wrapper and the
/// blocked triangular solves share (the solves update sub-panels of one
/// allocation in place, which safe slices cannot express).
///
/// # Safety
/// Under the leading dimensions, `a` must cover `op(A)` (`m×k`), `b` must
/// cover `op(B)` (`k×n`) and `c` must cover `C` (`m×n`); the element sets
/// of `C` and of the operands must be disjoint (distinct regions of one
/// allocation are fine).
pub unsafe fn gemm_raw(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: *const f64,
    lda: usize,
    ta: Transpose,
    b: *const f64,
    ldb: usize,
    tb: Transpose,
    beta: f64,
    c: *mut f64,
    ldc: usize,
) {
    scale_c(m, n, beta, c, ldc);
    if alpha == 0.0 || k == 0 || m == 0 || n == 0 {
        return;
    }
    if m * n * k <= SMALL_FLOPS {
        gemm_scalar(m, n, k, alpha, a, lda, ta, b, ldb, tb, c, ldc);
    } else {
        gemm_blocked(m, n, k, alpha, a, lda, ta, b, ldb, tb, c, ldc);
    }
}

/// Checks the shapes of a GEMM call and returns `(m, n, k)`.
fn gemm_shapes(a: &Mat, ta: Transpose, b: &Mat, tb: Transpose, c: &Mat) -> (usize, usize, usize) {
    let (m, ka) = match ta {
        Transpose::No => (a.nrows(), a.ncols()),
        Transpose::Yes => (a.ncols(), a.nrows()),
    };
    let (kb, n) = match tb {
        Transpose::No => (b.nrows(), b.ncols()),
        Transpose::Yes => (b.ncols(), b.nrows()),
    };
    assert_eq!(ka, kb, "gemm inner dimensions differ: {ka} vs {kb}");
    assert_eq!(c.nrows(), m, "gemm C row mismatch");
    assert_eq!(c.ncols(), n, "gemm C col mismatch");
    (m, n, k_of(ka))
}

#[inline]
fn k_of(k: usize) -> usize {
    k
}

/// `C = alpha * op(A) * op(B) + beta * C`.
///
/// Shapes: `op(A)` is `m×k`, `op(B)` is `k×n`, `C` is `m×n`.
///
/// Large products run the packed blocked path; small ones the scalar
/// kernels. Both agree with [`gemm_naive`] up to floating-point reordering.
pub fn gemm(alpha: f64, a: &Mat, ta: Transpose, b: &Mat, tb: Transpose, beta: f64, c: &mut Mat) {
    let (m, n, k) = gemm_shapes(a, ta, b, tb, c);
    let lda = a.nrows();
    let ldb = b.nrows();
    let ldc = c.nrows();
    // SAFETY: shapes were checked against the stored dimensions, and the
    // three matrices are distinct allocations (`a`/`b` shared, `c` mutable).
    unsafe {
        gemm_raw(
            m,
            n,
            k,
            alpha,
            a.data().as_ptr(),
            lda,
            ta,
            b.data().as_ptr(),
            ldb,
            tb,
            beta,
            c.data_mut().as_mut_ptr(),
            ldc,
        );
    }
}

/// The seed's scalar GEMM, retained as the reference implementation for
/// property tests and as the perf-harness baseline.
pub fn gemm_naive(
    alpha: f64,
    a: &Mat,
    ta: Transpose,
    b: &Mat,
    tb: Transpose,
    beta: f64,
    c: &mut Mat,
) {
    let (m, n, k) = gemm_shapes(a, ta, b, tb, c);

    if beta != 1.0 {
        for v in c.data_mut() {
            *v *= beta;
        }
    }
    if alpha == 0.0 || k == 0 {
        return;
    }

    match (ta, tb) {
        (Transpose::No, Transpose::No) => {
            // jki order: stream down columns of A and C.
            for j in 0..n {
                for p in 0..k {
                    let bpj = alpha * b[(p, j)];
                    if bpj == 0.0 {
                        continue;
                    }
                    let acol = a.col(p);
                    let ccol = c.col_mut(j);
                    for i in 0..m {
                        ccol[i] += acol[i] * bpj;
                    }
                }
            }
        }
        (Transpose::Yes, Transpose::No) => {
            // C_ij += Aᵀ_ip B_pj = A_pi B_pj : dot products of columns.
            for j in 0..n {
                for i in 0..m {
                    let acol = a.col(i);
                    let mut s = 0.0;
                    for p in 0..k {
                        s += acol[p] * b[(p, j)];
                    }
                    c[(i, j)] += alpha * s;
                }
            }
        }
        (Transpose::No, Transpose::Yes) => {
            for j in 0..n {
                for p in 0..k {
                    let bpj = alpha * b[(j, p)];
                    if bpj == 0.0 {
                        continue;
                    }
                    let acol = a.col(p);
                    let ccol = c.col_mut(j);
                    for i in 0..m {
                        ccol[i] += acol[i] * bpj;
                    }
                }
            }
        }
        (Transpose::Yes, Transpose::Yes) => {
            for j in 0..n {
                for i in 0..m {
                    let acol = a.col(i);
                    let mut s = 0.0;
                    for p in 0..k {
                        s += acol[p] * b[(j, p)];
                    }
                    c[(i, j)] += alpha * s;
                }
            }
        }
    }
}

// ---- Triangular solves ---------------------------------------------------
//
// Each blocked solve walks TRSM_NB-wide diagonal blocks: the small
// triangle is solved by the corresponding scalar loop and the remaining
// panel update — where all the flops are — goes through `gemm_raw`.

/// Scalar solve `X · L = B` in place on raw buffers (`B` is `m×w` with
/// leading dimension `ldb`, `L` is `w×w` lower triangular with leading
/// dimension `ldl`).
///
/// # Safety
/// Both regions must be in bounds under their leading dimensions and must
/// not overlap.
unsafe fn trsm_rl_small(
    m: usize,
    w: usize,
    b: *mut f64,
    ldb: usize,
    l: *const f64,
    ldl: usize,
    unit: bool,
) {
    for j in (0..w).rev() {
        if !unit {
            let d = *l.add(j * ldl + j);
            assert!(d != 0.0, "singular triangular block");
            let bj = b.add(j * ldb);
            for r in 0..m {
                *bj.add(r) /= d;
            }
        }
        // B_{:,i} -= X_{:,j} * L_{j,i} for i < j
        for i in 0..j {
            let lji = *l.add(i * ldl + j);
            if lji == 0.0 {
                continue;
            }
            let (bi, bj) = (b.add(i * ldb), b.add(j * ldb));
            for r in 0..m {
                *bi.add(r) -= *bj.add(r) * lji;
            }
        }
    }
}

/// Scalar solve `X · Lᵀ = B` in place on raw buffers (shapes as
/// [`trsm_rl_small`]).
///
/// # Safety
/// Same contract as [`trsm_rl_small`].
unsafe fn trsm_rlt_small(
    m: usize,
    w: usize,
    b: *mut f64,
    ldb: usize,
    l: *const f64,
    ldl: usize,
    unit: bool,
) {
    for j in 0..w {
        // B_{:,j} -= X_{:,k} * (Lᵀ)_{k,j} = X_{:,k} * L_{j,k}, k < j
        for p in 0..j {
            let ljp = *l.add(p * ldl + j);
            if ljp == 0.0 {
                continue;
            }
            let (bp, bj) = (b.add(p * ldb), b.add(j * ldb));
            for r in 0..m {
                *bj.add(r) -= *bp.add(r) * ljp;
            }
        }
        if !unit {
            let d = *l.add(j * ldl + j);
            assert!(d != 0.0, "singular triangular block");
            let bj = b.add(j * ldb);
            for r in 0..m {
                *bj.add(r) /= d;
            }
        }
    }
}

/// Scalar solve `L · X = B` in place on raw buffers (`B` is `w×n` with
/// leading dimension `ldb`).
///
/// # Safety
/// Same contract as [`trsm_rl_small`].
unsafe fn trsm_ll_small(
    w: usize,
    n: usize,
    l: *const f64,
    ldl: usize,
    b: *mut f64,
    ldb: usize,
    unit: bool,
) {
    for j in 0..n {
        let bj = b.add(j * ldb);
        for i in 0..w {
            let mut s = *bj.add(i);
            for p in 0..i {
                s -= *l.add(p * ldl + i) * *bj.add(p);
            }
            *bj.add(i) = if unit { s } else { s / *l.add(i * ldl + i) };
        }
    }
}

/// Scalar solve `Lᵀ · X = B` in place on raw buffers (shapes as
/// [`trsm_ll_small`]).
///
/// # Safety
/// Same contract as [`trsm_rl_small`].
unsafe fn trsm_llt_small(
    w: usize,
    n: usize,
    l: *const f64,
    ldl: usize,
    b: *mut f64,
    ldb: usize,
    unit: bool,
) {
    for j in 0..n {
        let bj = b.add(j * ldb);
        for i in (0..w).rev() {
            let mut s = *bj.add(i);
            for p in (i + 1)..w {
                s -= *l.add(i * ldl + p) * *bj.add(p);
            }
            *bj.add(i) = if unit { s } else { s / *l.add(i * ldl + i) };
        }
    }
}

/// Solves `X · L = B` in place (`B` becomes `X`), where `L` is lower
/// triangular. With `unit = true` the diagonal of `L` is taken as 1.
///
/// This computes `X = B · L⁻¹`, the panel normalization `L̂ = L_{C,K} ·
/// (L_{K,K})⁻¹` from step 2 of Algorithm 1.
pub fn trsm_right_lower(b: &mut Mat, l: &Mat, unit: bool) {
    let w = l.nrows();
    assert_eq!(l.ncols(), w);
    assert_eq!(b.ncols(), w);
    let m = b.nrows();
    let ld = l.data().as_ptr();
    let bd = b.data_mut().as_mut_ptr();
    // SAFETY: `b` is m×w (ldb = m) and `l` is w×w (ldl = w); every block
    // offset below stays inside those shapes, and the GEMM reads/writes
    // disjoint column ranges of `b`.
    unsafe {
        let mut j1 = w;
        while j1 > 0 {
            let j0 = j1.saturating_sub(TRSM_NB);
            let wb = j1 - j0;
            trsm_rl_small(m, wb, bd.add(j0 * m), m, ld.add(j0 * w + j0), w, unit);
            if j0 > 0 {
                // B[:, 0..j0] -= X_block · L[j0..j1, 0..j0]
                gemm_raw(
                    m,
                    j0,
                    wb,
                    -1.0,
                    bd.add(j0 * m),
                    m,
                    Transpose::No,
                    ld.add(j0),
                    w,
                    Transpose::No,
                    1.0,
                    bd,
                    m,
                );
            }
            j1 = j0;
        }
    }
}

/// Solves `X · Lᵀ = B` in place (`B` becomes `X`), `L` lower triangular.
/// With `unit = true` the diagonal of `L` is taken as 1.
pub fn trsm_right_lower_trans(b: &mut Mat, l: &Mat, unit: bool) {
    let w = l.nrows();
    assert_eq!(l.ncols(), w);
    assert_eq!(b.ncols(), w);
    let m = b.nrows();
    let ld = l.data().as_ptr();
    let bd = b.data_mut().as_mut_ptr();
    // SAFETY: as in `trsm_right_lower`.
    unsafe {
        let mut j0 = 0;
        while j0 < w {
            let wb = TRSM_NB.min(w - j0);
            if j0 > 0 {
                // B[:, j0..j1] -= X[:, 0..j0] · (Lᵀ)[0..j0, j0..j1]
                gemm_raw(
                    m,
                    wb,
                    j0,
                    -1.0,
                    bd,
                    m,
                    Transpose::No,
                    ld.add(j0),
                    w,
                    Transpose::Yes,
                    1.0,
                    bd.add(j0 * m),
                    m,
                );
            }
            trsm_rlt_small(m, wb, bd.add(j0 * m), m, ld.add(j0 * w + j0), w, unit);
            j0 += TRSM_NB;
        }
    }
}

/// Solves `L · X = B` in place (`B` becomes `X`), `L` lower triangular.
/// With `unit = true` the diagonal of `L` is taken as 1.
pub fn trsm_left_lower(l: &Mat, b: &mut Mat, unit: bool) {
    let w = l.nrows();
    assert_eq!(l.ncols(), w);
    assert_eq!(b.nrows(), w);
    let n = b.ncols();
    let ld = l.data().as_ptr();
    let bd = b.data_mut().as_mut_ptr();
    // SAFETY: `b` is w×n (ldb = w), `l` is w×w; the GEMM reads row block
    // 0..i0 of `b` and writes row block i0..i0+wb — disjoint element sets
    // of one allocation, expressed through raw pointers.
    unsafe {
        let mut i0 = 0;
        while i0 < w {
            let wb = TRSM_NB.min(w - i0);
            if i0 > 0 {
                // B[i0..i1, :] -= L[i0..i1, 0..i0] · X[0..i0, :]
                gemm_raw(
                    wb,
                    n,
                    i0,
                    -1.0,
                    ld.add(i0),
                    w,
                    Transpose::No,
                    bd,
                    w,
                    Transpose::No,
                    1.0,
                    bd.add(i0),
                    w,
                );
            }
            trsm_ll_small(wb, n, ld.add(i0 * w + i0), w, bd.add(i0), w, unit);
            i0 += TRSM_NB;
        }
    }
}

/// Solves `Lᵀ · X = B` in place, `L` lower triangular (so `Lᵀ` is upper).
/// With `unit = true` the diagonal is taken as 1.
pub fn trsm_left_lower_trans(l: &Mat, b: &mut Mat, unit: bool) {
    let w = l.nrows();
    assert_eq!(l.ncols(), w);
    assert_eq!(b.nrows(), w);
    let n = b.ncols();
    let ld = l.data().as_ptr();
    let bd = b.data_mut().as_mut_ptr();
    // SAFETY: as in `trsm_left_lower` (disjoint row blocks of `b`).
    unsafe {
        let mut i1 = w;
        while i1 > 0 {
            let i0 = i1.saturating_sub(TRSM_NB);
            let wb = i1 - i0;
            if i1 < w {
                // B[i0..i1, :] -= (Lᵀ)[i0..i1, i1..w] · X[i1..w, :]
                gemm_raw(
                    wb,
                    n,
                    w - i1,
                    -1.0,
                    ld.add(i0 * w + i1),
                    w,
                    Transpose::Yes,
                    bd.add(i1),
                    w,
                    Transpose::No,
                    1.0,
                    bd.add(i0),
                    w,
                );
            }
            trsm_llt_small(wb, n, ld.add(i0 * w + i0), w, bd.add(i0), w, unit);
            i1 = i0;
        }
    }
}

/// The seed's scalar `X · L = B` solve, retained as the reference.
pub fn trsm_right_lower_naive(b: &mut Mat, l: &Mat, unit: bool) {
    let w = l.nrows();
    assert_eq!(l.ncols(), w);
    assert_eq!(b.ncols(), w);
    let m = b.nrows();
    for j in (0..w).rev() {
        if !unit {
            let d = l[(j, j)];
            assert!(d != 0.0, "singular triangular block");
            let bj = b.col_mut(j);
            for v in bj.iter_mut() {
                *v /= d;
            }
        }
        // B_{:,i} -= X_{:,j} * L_{j,i} for i < j
        for i in 0..j {
            let lji = l[(j, i)];
            if lji == 0.0 {
                continue;
            }
            for r in 0..m {
                let xj = b[(r, j)];
                b[(r, i)] -= xj * lji;
            }
        }
    }
}

/// The seed's scalar `X · Lᵀ = B` solve, retained as the reference.
pub fn trsm_right_lower_trans_naive(b: &mut Mat, l: &Mat, unit: bool) {
    let w = l.nrows();
    assert_eq!(l.ncols(), w);
    assert_eq!(b.ncols(), w);
    let m = b.nrows();
    for j in 0..w {
        // B_{:,j} -= X_{:,k} * (Lᵀ)_{k,j} = X_{:,k} * L_{j,k}, k < j
        for k in 0..j {
            let ljk = l[(j, k)];
            if ljk == 0.0 {
                continue;
            }
            for r in 0..m {
                let xk = b[(r, k)];
                b[(r, j)] -= xk * ljk;
            }
        }
        if !unit {
            let d = l[(j, j)];
            assert!(d != 0.0, "singular triangular block");
            for v in b.col_mut(j) {
                *v /= d;
            }
        }
    }
}

/// The seed's scalar `L · X = B` solve, retained as the reference.
pub fn trsm_left_lower_naive(l: &Mat, b: &mut Mat, unit: bool) {
    let w = l.nrows();
    assert_eq!(l.ncols(), w);
    assert_eq!(b.nrows(), w);
    let n = b.ncols();
    for j in 0..n {
        for i in 0..w {
            let mut s = b[(i, j)];
            for k in 0..i {
                s -= l[(i, k)] * b[(k, j)];
            }
            b[(i, j)] = if unit { s } else { s / l[(i, i)] };
        }
    }
}

/// The seed's scalar `Lᵀ · X = B` solve, retained as the reference.
pub fn trsm_left_lower_trans_naive(l: &Mat, b: &mut Mat, unit: bool) {
    let w = l.nrows();
    assert_eq!(l.ncols(), w);
    assert_eq!(b.nrows(), w);
    let n = b.ncols();
    for j in 0..n {
        for i in (0..w).rev() {
            let mut s = b[(i, j)];
            for k in (i + 1)..w {
                s -= l[(k, i)] * b[(k, j)];
            }
            b[(i, j)] = if unit { s } else { s / l[(i, i)] };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &Mat, b: &Mat, tol: f64) {
        assert_eq!(a.nrows(), b.nrows());
        assert_eq!(a.ncols(), b.ncols());
        for j in 0..a.ncols() {
            for i in 0..a.nrows() {
                let scale = 1.0_f64.max(a[(i, j)].abs()).max(b[(i, j)].abs());
                assert!(
                    (a[(i, j)] - b[(i, j)]).abs() < tol * scale,
                    "mismatch at ({i},{j}): {} vs {}",
                    a[(i, j)],
                    b[(i, j)]
                );
            }
        }
    }

    fn naive_gemm(a: &Mat, b: &Mat) -> Mat {
        let mut c = Mat::zeros(a.nrows(), b.ncols());
        for i in 0..a.nrows() {
            for j in 0..b.ncols() {
                let mut s = 0.0;
                for k in 0..a.ncols() {
                    s += a[(i, k)] * b[(k, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    fn rand_mat(m: usize, n: usize, seed: u64) -> Mat {
        // xorshift-ish deterministic fill; no rand dependency needed here
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let mut a = Mat::zeros(m, n);
        for j in 0..n {
            for i in 0..m {
                a[(i, j)] = next();
            }
        }
        a
    }

    #[test]
    fn gemm_no_no_matches_naive() {
        let a = rand_mat(5, 4, 1);
        let b = rand_mat(4, 3, 2);
        let mut c = Mat::zeros(5, 3);
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
        assert_close(&c, &naive_gemm(&a, &b), 1e-13);
    }

    #[test]
    fn gemm_transpose_variants() {
        let a = rand_mat(4, 5, 3);
        let b = rand_mat(4, 3, 4);
        // AᵀB
        let mut c = Mat::zeros(5, 3);
        gemm(1.0, &a, Transpose::Yes, &b, Transpose::No, 0.0, &mut c);
        assert_close(&c, &naive_gemm(&a.transpose(), &b), 1e-13);
        // AᵀBᵀ with b' 3x4
        let b2 = rand_mat(3, 4, 5);
        let mut c = Mat::zeros(5, 3);
        gemm(1.0, &a, Transpose::Yes, &b2, Transpose::Yes, 0.0, &mut c);
        assert_close(&c, &naive_gemm(&a.transpose(), &b2.transpose()), 1e-13);
        // ABᵀ
        let a2 = rand_mat(5, 4, 6);
        let mut c = Mat::zeros(5, 3);
        gemm(1.0, &a2, Transpose::No, &b2, Transpose::Yes, 0.0, &mut c);
        assert_close(&c, &naive_gemm(&a2, &b2.transpose()), 1e-13);
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = rand_mat(3, 3, 7);
        let b = rand_mat(3, 3, 8);
        let c0 = rand_mat(3, 3, 9);
        let mut c = c0.clone();
        gemm(2.0, &a, Transpose::No, &b, Transpose::No, -1.0, &mut c);
        let mut expect = naive_gemm(&a, &b);
        for j in 0..3 {
            for i in 0..3 {
                expect[(i, j)] = 2.0 * expect[(i, j)] - c0[(i, j)];
            }
        }
        assert_close(&c, &expect, 1e-13);
    }

    #[test]
    fn blocked_gemm_matches_naive_above_packing_threshold() {
        // Big enough to exercise packing, edge tiles and multiple MC/KC
        // blocks in every transpose variant.
        let (m, n, k) = (131, 67, 300);
        for (ta, tb) in [
            (Transpose::No, Transpose::No),
            (Transpose::Yes, Transpose::No),
            (Transpose::No, Transpose::Yes),
            (Transpose::Yes, Transpose::Yes),
        ] {
            let a = match ta {
                Transpose::No => rand_mat(m, k, 21),
                Transpose::Yes => rand_mat(k, m, 21),
            };
            let b = match tb {
                Transpose::No => rand_mat(k, n, 22),
                Transpose::Yes => rand_mat(n, k, 22),
            };
            let c0 = rand_mat(m, n, 23);
            let mut c = c0.clone();
            let mut expect = c0.clone();
            gemm(1.5, &a, ta, &b, tb, -0.5, &mut c);
            gemm_naive(1.5, &a, ta, &b, tb, -0.5, &mut expect);
            assert_close(&c, &expect, 1e-10);
        }
    }

    fn lower_of(m: &Mat, unit: bool) -> Mat {
        let n = m.nrows();
        let mut l = Mat::zeros(n, n);
        for j in 0..n {
            for i in j..n {
                l[(i, j)] = m[(i, j)];
            }
            if unit {
                l[(j, j)] = 1.0;
            } else {
                l[(j, j)] = m[(j, j)].abs() + 2.0; // well-conditioned
            }
        }
        l
    }

    #[test]
    fn trsm_right_lower_solves() {
        for unit in [true, false] {
            let l = lower_of(&rand_mat(4, 4, 10), unit);
            let b = rand_mat(6, 4, 11);
            let mut x = b.clone();
            trsm_right_lower(&mut x, &l, unit);
            assert_close(&naive_gemm(&x, &l), &b, 1e-12);
        }
    }

    #[test]
    fn trsm_right_lower_trans_solves() {
        for unit in [true, false] {
            let l = lower_of(&rand_mat(4, 4, 12), unit);
            let b = rand_mat(5, 4, 13);
            let mut x = b.clone();
            trsm_right_lower_trans(&mut x, &l, unit);
            assert_close(&naive_gemm(&x, &l.transpose()), &b, 1e-12);
        }
    }

    #[test]
    fn trsm_left_lower_solves() {
        for unit in [true, false] {
            let l = lower_of(&rand_mat(4, 4, 14), unit);
            let b = rand_mat(4, 3, 15);
            let mut x = b.clone();
            trsm_left_lower(&l, &mut x, unit);
            assert_close(&naive_gemm(&l, &x), &b, 1e-12);
        }
    }

    #[test]
    fn trsm_left_lower_trans_solves() {
        for unit in [true, false] {
            let l = lower_of(&rand_mat(4, 4, 16), unit);
            let b = rand_mat(4, 3, 17);
            let mut x = b.clone();
            trsm_left_lower_trans(&l, &mut x, unit);
            assert_close(&naive_gemm(&l.transpose(), &x), &b, 1e-12);
        }
    }

    #[test]
    fn blocked_trsm_matches_naive_across_blocks() {
        // w > TRSM_NB so the blocked path takes the gemm shortcut.
        let w = 130;
        let m = 77;
        for unit in [true, false] {
            let l = lower_of(&rand_mat(w, w, 30), unit);
            let b = rand_mat(m, w, 31);

            let mut x1 = b.clone();
            let mut x2 = b.clone();
            trsm_right_lower(&mut x1, &l, unit);
            trsm_right_lower_naive(&mut x2, &l, unit);
            assert_close(&x1, &x2, 1e-9);

            let mut x1 = b.clone();
            let mut x2 = b.clone();
            trsm_right_lower_trans(&mut x1, &l, unit);
            trsm_right_lower_trans_naive(&mut x2, &l, unit);
            assert_close(&x1, &x2, 1e-9);

            let bl = rand_mat(w, m, 32);
            let mut x1 = bl.clone();
            let mut x2 = bl.clone();
            trsm_left_lower(&l, &mut x1, unit);
            trsm_left_lower_naive(&l, &mut x2, unit);
            assert_close(&x1, &x2, 1e-9);

            let mut x1 = bl.clone();
            let mut x2 = bl.clone();
            trsm_left_lower_trans(&l, &mut x1, unit);
            trsm_left_lower_trans_naive(&l, &mut x2, unit);
            assert_close(&x1, &x2, 1e-9);
        }
    }

    #[test]
    fn degenerate_shapes_are_no_ops() {
        // Zero-sized operands in every position.
        let a = Mat::zeros(0, 5);
        let b = Mat::zeros(5, 3);
        let mut c = Mat::zeros(0, 3);
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
        let a = Mat::zeros(4, 0);
        let b = Mat::zeros(0, 3);
        let mut c = rand_mat(4, 3, 40);
        let keep = c.clone();
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 1.0, &mut c);
        assert_close(&c, &keep, 0.0_f64.max(1e-300));
        let l = Mat::zeros(0, 0);
        let mut x = Mat::zeros(3, 0);
        trsm_right_lower(&mut x, &l, true);
        let mut x = Mat::zeros(0, 4);
        trsm_left_lower(&lower_of(&rand_mat(0, 0, 1), true), &mut x, true);
    }
}
