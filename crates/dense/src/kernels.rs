//! GEMM and triangular solves.

use crate::mat::Mat;

/// Transpose flag for [`gemm`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transpose {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

/// `C = alpha * op(A) * op(B) + beta * C`.
///
/// Shapes: `op(A)` is `m×k`, `op(B)` is `k×n`, `C` is `m×n`.
pub fn gemm(alpha: f64, a: &Mat, ta: Transpose, b: &Mat, tb: Transpose, beta: f64, c: &mut Mat) {
    let (m, ka) = match ta {
        Transpose::No => (a.nrows(), a.ncols()),
        Transpose::Yes => (a.ncols(), a.nrows()),
    };
    let (kb, n) = match tb {
        Transpose::No => (b.nrows(), b.ncols()),
        Transpose::Yes => (b.ncols(), b.nrows()),
    };
    assert_eq!(ka, kb, "gemm inner dimensions differ: {ka} vs {kb}");
    assert_eq!(c.nrows(), m, "gemm C row mismatch");
    assert_eq!(c.ncols(), n, "gemm C col mismatch");
    let k = ka;

    if beta != 1.0 {
        for v in c.data_mut() {
            *v *= beta;
        }
    }
    if alpha == 0.0 || k == 0 {
        return;
    }

    match (ta, tb) {
        (Transpose::No, Transpose::No) => {
            // jki order: stream down columns of A and C.
            for j in 0..n {
                for p in 0..k {
                    let bpj = alpha * b[(p, j)];
                    if bpj == 0.0 {
                        continue;
                    }
                    let acol = a.col(p);
                    let ccol = c.col_mut(j);
                    for i in 0..m {
                        ccol[i] += acol[i] * bpj;
                    }
                }
            }
        }
        (Transpose::Yes, Transpose::No) => {
            // C_ij += Aᵀ_ip B_pj = A_pi B_pj : dot products of columns.
            for j in 0..n {
                for i in 0..m {
                    let acol = a.col(i);
                    let mut s = 0.0;
                    for p in 0..k {
                        s += acol[p] * b[(p, j)];
                    }
                    c[(i, j)] += alpha * s;
                }
            }
        }
        (Transpose::No, Transpose::Yes) => {
            for j in 0..n {
                for p in 0..k {
                    let bpj = alpha * b[(j, p)];
                    if bpj == 0.0 {
                        continue;
                    }
                    let acol = a.col(p);
                    let ccol = c.col_mut(j);
                    for i in 0..m {
                        ccol[i] += acol[i] * bpj;
                    }
                }
            }
        }
        (Transpose::Yes, Transpose::Yes) => {
            for j in 0..n {
                for i in 0..m {
                    let acol = a.col(i);
                    let mut s = 0.0;
                    for p in 0..k {
                        s += acol[p] * b[(j, p)];
                    }
                    c[(i, j)] += alpha * s;
                }
            }
        }
    }
}

/// Solves `X · L = B` in place (`B` becomes `X`), where `L` is lower
/// triangular. With `unit = true` the diagonal of `L` is taken as 1.
///
/// This computes `X = B · L⁻¹`, the panel normalization `L̂ = L_{C,K} ·
/// (L_{K,K})⁻¹` from step 2 of Algorithm 1.
pub fn trsm_right_lower(b: &mut Mat, l: &Mat, unit: bool) {
    let w = l.nrows();
    assert_eq!(l.ncols(), w);
    assert_eq!(b.ncols(), w);
    let m = b.nrows();
    for j in (0..w).rev() {
        if !unit {
            let d = l[(j, j)];
            assert!(d != 0.0, "singular triangular block");
            let bj = b.col_mut(j);
            for v in bj.iter_mut() {
                *v /= d;
            }
        }
        // B_{:,i} -= X_{:,j} * L_{j,i} for i < j
        for i in 0..j {
            let lji = l[(j, i)];
            if lji == 0.0 {
                continue;
            }
            for r in 0..m {
                let xj = b[(r, j)];
                b[(r, i)] -= xj * lji;
            }
        }
    }
}

/// Solves `X · Lᵀ = B` in place (`B` becomes `X`), `L` lower triangular.
/// With `unit = true` the diagonal of `L` is taken as 1.
pub fn trsm_right_lower_trans(b: &mut Mat, l: &Mat, unit: bool) {
    let w = l.nrows();
    assert_eq!(l.ncols(), w);
    assert_eq!(b.ncols(), w);
    let m = b.nrows();
    for j in 0..w {
        // B_{:,j} -= X_{:,k} * (Lᵀ)_{k,j} = X_{:,k} * L_{j,k}, k < j
        for k in 0..j {
            let ljk = l[(j, k)];
            if ljk == 0.0 {
                continue;
            }
            for r in 0..m {
                let xk = b[(r, k)];
                b[(r, j)] -= xk * ljk;
            }
        }
        if !unit {
            let d = l[(j, j)];
            assert!(d != 0.0, "singular triangular block");
            for v in b.col_mut(j) {
                *v /= d;
            }
        }
    }
}

/// Solves `L · X = B` in place (`B` becomes `X`), `L` lower triangular.
/// With `unit = true` the diagonal of `L` is taken as 1.
pub fn trsm_left_lower(l: &Mat, b: &mut Mat, unit: bool) {
    let w = l.nrows();
    assert_eq!(l.ncols(), w);
    assert_eq!(b.nrows(), w);
    let n = b.ncols();
    for j in 0..n {
        for i in 0..w {
            let mut s = b[(i, j)];
            for k in 0..i {
                s -= l[(i, k)] * b[(k, j)];
            }
            b[(i, j)] = if unit { s } else { s / l[(i, i)] };
        }
    }
}

/// Solves `Lᵀ · X = B` in place, `L` lower triangular (so `Lᵀ` is upper).
/// With `unit = true` the diagonal is taken as 1.
pub fn trsm_left_lower_trans(l: &Mat, b: &mut Mat, unit: bool) {
    let w = l.nrows();
    assert_eq!(l.ncols(), w);
    assert_eq!(b.nrows(), w);
    let n = b.ncols();
    for j in 0..n {
        for i in (0..w).rev() {
            let mut s = b[(i, j)];
            for k in (i + 1)..w {
                s -= l[(k, i)] * b[(k, j)];
            }
            b[(i, j)] = if unit { s } else { s / l[(i, i)] };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &Mat, b: &Mat, tol: f64) {
        assert_eq!(a.nrows(), b.nrows());
        assert_eq!(a.ncols(), b.ncols());
        for j in 0..a.ncols() {
            for i in 0..a.nrows() {
                assert!(
                    (a[(i, j)] - b[(i, j)]).abs() < tol,
                    "mismatch at ({i},{j}): {} vs {}",
                    a[(i, j)],
                    b[(i, j)]
                );
            }
        }
    }

    fn naive_gemm(a: &Mat, b: &Mat) -> Mat {
        let mut c = Mat::zeros(a.nrows(), b.ncols());
        for i in 0..a.nrows() {
            for j in 0..b.ncols() {
                let mut s = 0.0;
                for k in 0..a.ncols() {
                    s += a[(i, k)] * b[(k, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    fn rand_mat(m: usize, n: usize, seed: u64) -> Mat {
        // xorshift-ish deterministic fill; no rand dependency needed here
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let mut a = Mat::zeros(m, n);
        for j in 0..n {
            for i in 0..m {
                a[(i, j)] = next();
            }
        }
        a
    }

    #[test]
    fn gemm_no_no_matches_naive() {
        let a = rand_mat(5, 4, 1);
        let b = rand_mat(4, 3, 2);
        let mut c = Mat::zeros(5, 3);
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
        assert_close(&c, &naive_gemm(&a, &b), 1e-13);
    }

    #[test]
    fn gemm_transpose_variants() {
        let a = rand_mat(4, 5, 3);
        let b = rand_mat(4, 3, 4);
        // AᵀB
        let mut c = Mat::zeros(5, 3);
        gemm(1.0, &a, Transpose::Yes, &b, Transpose::No, 0.0, &mut c);
        assert_close(&c, &naive_gemm(&a.transpose(), &b), 1e-13);
        // AᵀBᵀ with b' 3x4
        let b2 = rand_mat(3, 4, 5);
        let mut c = Mat::zeros(5, 3);
        gemm(1.0, &a, Transpose::Yes, &b2, Transpose::Yes, 0.0, &mut c);
        assert_close(&c, &naive_gemm(&a.transpose(), &b2.transpose()), 1e-13);
        // ABᵀ
        let a2 = rand_mat(5, 4, 6);
        let mut c = Mat::zeros(5, 3);
        gemm(1.0, &a2, Transpose::No, &b2, Transpose::Yes, 0.0, &mut c);
        assert_close(&c, &naive_gemm(&a2, &b2.transpose()), 1e-13);
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = rand_mat(3, 3, 7);
        let b = rand_mat(3, 3, 8);
        let c0 = rand_mat(3, 3, 9);
        let mut c = c0.clone();
        gemm(2.0, &a, Transpose::No, &b, Transpose::No, -1.0, &mut c);
        let mut expect = naive_gemm(&a, &b);
        for j in 0..3 {
            for i in 0..3 {
                expect[(i, j)] = 2.0 * expect[(i, j)] - c0[(i, j)];
            }
        }
        assert_close(&c, &expect, 1e-13);
    }

    fn lower_of(m: &Mat, unit: bool) -> Mat {
        let n = m.nrows();
        let mut l = Mat::zeros(n, n);
        for j in 0..n {
            for i in j..n {
                l[(i, j)] = m[(i, j)];
            }
            if unit {
                l[(j, j)] = 1.0;
            } else {
                l[(j, j)] = m[(j, j)].abs() + 2.0; // well-conditioned
            }
        }
        l
    }

    #[test]
    fn trsm_right_lower_solves() {
        for unit in [true, false] {
            let l = lower_of(&rand_mat(4, 4, 10), unit);
            let b = rand_mat(6, 4, 11);
            let mut x = b.clone();
            trsm_right_lower(&mut x, &l, unit);
            assert_close(&naive_gemm(&x, &l), &b, 1e-12);
        }
    }

    #[test]
    fn trsm_right_lower_trans_solves() {
        for unit in [true, false] {
            let l = lower_of(&rand_mat(4, 4, 12), unit);
            let b = rand_mat(5, 4, 13);
            let mut x = b.clone();
            trsm_right_lower_trans(&mut x, &l, unit);
            assert_close(&naive_gemm(&x, &l.transpose()), &b, 1e-12);
        }
    }

    #[test]
    fn trsm_left_lower_solves() {
        for unit in [true, false] {
            let l = lower_of(&rand_mat(4, 4, 14), unit);
            let b = rand_mat(4, 3, 15);
            let mut x = b.clone();
            trsm_left_lower(&l, &mut x, unit);
            assert_close(&naive_gemm(&l, &x), &b, 1e-12);
        }
    }

    #[test]
    fn trsm_left_lower_trans_solves() {
        for unit in [true, false] {
            let l = lower_of(&rand_mat(4, 4, 16), unit);
            let b = rand_mat(4, 3, 17);
            let mut x = b.clone();
            trsm_left_lower_trans(&l, &mut x, unit);
            assert_close(&naive_gemm(&l.transpose(), &x), &b, 1e-12);
        }
    }
}
