//! Pool-parallel GEMM.
//!
//! [`gemm_pool`] splits `C` into a grid of row/column chunks and runs the
//! full blocked update of each chunk (the complete `pc` loop over `K`) as
//! one task on a [`pselinv_pool::Pool`]. Because
//!
//! * every `C` element has exactly one writing task,
//! * each task accumulates its `KC`-steps in the same ascending order as
//!   the serial blocked kernel, and
//! * chunk boundaries are multiples of the `MR`/`NR` register-tile grid,
//!   so each microkernel tile sees byte-identical packed operands,
//!
//! the result is **bit-identical** to the serial [`crate::gemm`] for every
//! thread count and schedule — scheduling never reorders floating-point
//! arithmetic, it only reorders which chunk finishes first. Each worker
//! packs into its own thread-local arena (reused across calls), trading a
//! little redundant `B`-packing between row chunks for zero cross-task
//! coordination.

use crate::kernels::{gemm_blocked, scale_c, Transpose, MR, NR, SMALL_FLOPS};
use crate::mat::Mat;
use pselinv_pool::Pool;

/// Rows of `C` per task: one packed `MC` panel, so a task is exactly one
/// L2-resident packing round of the serial kernel.
const TM: usize = 128;
/// Columns of `C` per task. Much smaller than the serial `NC` (4096) so
/// square problems still decompose; must stay a multiple of `NR`.
const TN: usize = 256;

/// Raw operand pointers smuggled into pool tasks. Tasks write disjoint
/// regions of `c` and only read `a`/`b`, so sharing them is safe under the
/// fork-join barrier of [`Pool::run`].
#[derive(Clone, Copy)]
struct RawOperands {
    a: *const f64,
    lda: usize,
    ta: Transpose,
    b: *const f64,
    ldb: usize,
    tb: Transpose,
    c: *mut f64,
    ldc: usize,
    k: usize,
    alpha: f64,
}

unsafe impl Send for RawOperands {}
unsafe impl Sync for RawOperands {}

/// `C = alpha * op(A) * op(B) + beta * C`, parallelized over `C` chunks on
/// `pool`. Bit-identical to [`crate::gemm`] (see module docs). Problems too
/// small to beat the scalar kernel, or a single-thread pool, fall through
/// to the serial path.
#[allow(clippy::too_many_arguments)] // mirrors the 8-operand BLAS gemm signature
pub fn gemm_pool(
    pool: &Pool,
    alpha: f64,
    a: &Mat,
    ta: Transpose,
    b: &Mat,
    tb: Transpose,
    beta: f64,
    c: &mut Mat,
) {
    let (m, ka) = match ta {
        Transpose::No => (a.nrows(), a.ncols()),
        Transpose::Yes => (a.ncols(), a.nrows()),
    };
    let (kb, n) = match tb {
        Transpose::No => (b.nrows(), b.ncols()),
        Transpose::Yes => (b.ncols(), b.nrows()),
    };
    assert_eq!(ka, kb, "gemm_pool inner dimensions differ: {ka} vs {kb}");
    assert_eq!(c.nrows(), m, "gemm_pool C row mismatch");
    assert_eq!(c.ncols(), n, "gemm_pool C col mismatch");
    let k = ka;

    // The serial kernel would take the scalar path (different accumulation
    // order from the blocked one) below SMALL_FLOPS, and one chunk has no
    // parallelism anyway: both cases defer to `gemm` verbatim.
    if pool.threads() <= 1 || m * n * k <= SMALL_FLOPS || (m <= TM && n <= TN) {
        crate::kernels::gemm(alpha, a, ta, b, tb, beta, c);
        return;
    }

    let raw = RawOperands {
        a: a.data().as_ptr(),
        lda: a.nrows(),
        ta,
        b: b.data().as_ptr(),
        ldb: b.nrows(),
        tb,
        c: c.data_mut().as_mut_ptr(),
        ldc: c.nrows(),
        k,
        alpha,
    };

    let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    let mut jc = 0;
    while jc < n {
        let nc = TN.min(n - jc);
        let mut ic = 0;
        while ic < m {
            let mc = TM.min(m - ic);
            tasks.push(Box::new(move || {
                // Capture the whole Send wrapper, not its raw-pointer
                // fields (2021 disjoint capture would strip `Send`).
                let raw = raw;
                // SAFETY: the chunk rectangle [ic, ic+mc) × [jc, jc+nc) is
                // inside C and disjoint from every other task's rectangle;
                // a/b are read-only; Pool::run joins before gemm_pool
                // returns, so the borrows outlive every task.
                unsafe {
                    let cptr = raw.c.add(jc * raw.ldc + ic);
                    scale_c(mc, nc, beta, cptr, raw.ldc);
                    if raw.alpha == 0.0 || raw.k == 0 {
                        return;
                    }
                    let aptr = match raw.ta {
                        Transpose::No => raw.a.add(ic),
                        Transpose::Yes => raw.a.add(ic * raw.lda),
                    };
                    let bptr = match raw.tb {
                        Transpose::No => raw.b.add(jc * raw.ldb),
                        Transpose::Yes => raw.b.add(jc),
                    };
                    gemm_blocked(
                        mc, nc, raw.k, raw.alpha, aptr, raw.lda, raw.ta, bptr, raw.ldb, raw.tb,
                        cptr, raw.ldc,
                    );
                }
            }));
            ic += TM;
        }
        jc += TN;
    }
    pool.run(tasks);
}

// Compile-time guards for the bit-identity argument in the module docs.
const _: () = assert!(TM.is_multiple_of(MR), "row chunks must align to the MR tile grid");
const _: () = assert!(TN.is_multiple_of(NR), "column chunks must align to the NR tile grid");

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_mat(m: usize, n: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1) | 1;
        let mut a = Mat::zeros(m, n);
        for j in 0..n {
            for i in 0..m {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                a[(i, j)] = (state as f64 / u64::MAX as f64) * 2.0 - 1.0;
            }
        }
        a
    }

    #[test]
    fn pool_gemm_is_bit_identical_to_serial() {
        // Shapes straddling the chunk grid, including uneven edges.
        let shapes = [(130, 260, 96), (256, 256, 64), (140, 300, 130), (64, 520, 80)];
        for threads in [1usize, 2, 4, 8] {
            let pool = Pool::new(threads);
            for (ti, &(m, n, k)) in shapes.iter().enumerate() {
                for (ta, tb) in [
                    (Transpose::No, Transpose::No),
                    (Transpose::Yes, Transpose::No),
                    (Transpose::No, Transpose::Yes),
                    (Transpose::Yes, Transpose::Yes),
                ] {
                    let seed = (ti as u64 + 1) * 31;
                    let a = match ta {
                        Transpose::No => rand_mat(m, k, seed),
                        Transpose::Yes => rand_mat(k, m, seed),
                    };
                    let b = match tb {
                        Transpose::No => rand_mat(k, n, seed + 7),
                        Transpose::Yes => rand_mat(n, k, seed + 7),
                    };
                    let mut c_serial = rand_mat(m, n, seed + 13);
                    let mut c_pool = c_serial.clone();
                    crate::kernels::gemm(0.5, &a, ta, &b, tb, -0.25, &mut c_serial);
                    gemm_pool(&pool, 0.5, &a, ta, &b, tb, -0.25, &mut c_pool);
                    for j in 0..n {
                        for i in 0..m {
                            assert_eq!(
                                c_serial[(i, j)].to_bits(),
                                c_pool[(i, j)].to_bits(),
                                "threads={threads} shape=({m},{n},{k}) ta={ta:?} tb={tb:?} ({i},{j})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn small_problems_fall_through_to_serial() {
        let pool = Pool::new(4);
        let a = rand_mat(8, 8, 3);
        let b = rand_mat(8, 8, 4);
        let mut c1 = rand_mat(8, 8, 5);
        let mut c2 = c1.clone();
        crate::kernels::gemm(1.0, &a, Transpose::No, &b, Transpose::No, 1.0, &mut c1);
        gemm_pool(&pool, 1.0, &a, Transpose::No, &b, Transpose::No, 1.0, &mut c2);
        for j in 0..8 {
            for i in 0..8 {
                assert_eq!(c1[(i, j)].to_bits(), c2[(i, j)].to_bits());
            }
        }
    }
}
