//! Owned column-major dense matrix with copy-on-write shared storage.

use std::fmt;
use std::ops::{Index, IndexMut};
use std::sync::Arc;

/// Backing storage of a [`Mat`]: either exclusively owned, or a shared
/// reference-counted buffer (e.g. a message payload received from the
/// `pselinv-mpisim` runtime, used in place without copying).
#[derive(Clone)]
enum Store {
    Owned(Vec<f64>),
    Shared(Arc<[f64]>),
}

impl Store {
    #[inline]
    fn as_slice(&self) -> &[f64] {
        match self {
            Store::Owned(v) => v,
            Store::Shared(a) => a,
        }
    }
}

/// A dense column-major matrix of `f64`.
///
/// Element `(i, j)` is stored at `data[j * nrows + i]`, matching the layout
/// of supernodal panels so kernels can run directly on panel storage.
///
/// A matrix built from a shared buffer ([`Mat::from_shared`]) borrows that
/// buffer for every read; the first mutable access copies it out
/// (copy-on-write), so no receiver can ever scribble on a buffer another
/// rank still reads.
#[derive(Clone)]
pub struct Mat {
    nrows: usize,
    ncols: usize,
    store: Store,
}

impl Mat {
    /// Zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self { nrows, ncols, store: Store::Owned(vec![0.0; nrows * ncols]) }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a column-major slice.
    pub fn from_col_major(nrows: usize, ncols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), nrows * ncols);
        Self { nrows, ncols, store: Store::Owned(data.to_vec()) }
    }

    /// Builds from a row-major slice (converts to column-major).
    pub fn from_row_major(nrows: usize, ncols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), nrows * ncols);
        let mut m = Self::zeros(nrows, ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                m[(i, j)] = data[i * ncols + j];
            }
        }
        m
    }

    /// Takes ownership of a column-major buffer without copying it.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols);
        Self { nrows, ncols, store: Store::Owned(data) }
    }

    /// Wraps a shared column-major buffer without copying it. Reads go
    /// straight to the shared buffer; the first mutable access copies.
    pub fn from_shared(nrows: usize, ncols: usize, data: Arc<[f64]>) -> Self {
        assert_eq!(data.len(), nrows * ncols);
        Self { nrows, ncols, store: Store::Shared(data) }
    }

    /// Consumes the matrix, returning its column-major buffer: the owned
    /// `Vec` moves out without copying; shared storage is copied out.
    pub fn into_vec(self) -> Vec<f64> {
        match self.store {
            Store::Owned(v) => v,
            Store::Shared(a) => a.to_vec(),
        }
    }

    /// Converts to shared storage, so subsequent [`Mat::clone`]s and
    /// [`Mat::to_shared`] calls are reference-count bumps instead of
    /// buffer copies. Owned storage pays one move into a fresh `Arc`
    /// allocation; already-shared matrices are returned unchanged.
    pub fn into_shared(self) -> Self {
        let store = match self.store {
            Store::Owned(v) => Store::Shared(Arc::from(v)),
            shared @ Store::Shared(_) => shared,
        };
        Self { nrows: self.nrows, ncols: self.ncols, store }
    }

    /// The storage as a shareable buffer: free when already shared
    /// ([`Mat::from_shared`] round-trips without copying), one copy when
    /// exclusively owned.
    pub fn to_shared(&self) -> Arc<[f64]> {
        match &self.store {
            Store::Owned(v) => Arc::from(v.as_slice()),
            Store::Shared(a) => a.clone(),
        }
    }

    /// `true` while the storage is a shared buffer (no mutable access has
    /// happened yet).
    pub fn is_shared(&self) -> bool {
        matches!(self.store, Store::Shared(_))
    }

    /// Ensures exclusively owned storage (the copy-on-write step).
    #[inline]
    fn make_owned(&mut self) -> &mut Vec<f64> {
        if let Store::Shared(a) = &self.store {
            self.store = Store::Owned(a.to_vec());
        }
        match &mut self.store {
            Store::Owned(v) => v,
            Store::Shared(_) => unreachable!("make_owned left shared storage"),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Raw column-major storage.
    #[inline]
    pub fn data(&self) -> &[f64] {
        self.store.as_slice()
    }

    /// Mutable raw column-major storage (copies shared storage out first).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        self.make_owned()
    }

    /// Column `j` as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data()[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        let nrows = self.nrows;
        &mut self.make_owned()[j * nrows..(j + 1) * nrows]
    }

    /// Two distinct columns as mutable slices (`j0 != j1`), for kernels
    /// that update one column from another in place.
    pub fn col_pair_mut(&mut self, j0: usize, j1: usize) -> (&mut [f64], &mut [f64]) {
        assert_ne!(j0, j1, "col_pair_mut needs two distinct columns");
        assert!(j0 < self.ncols && j1 < self.ncols);
        let nrows = self.nrows;
        let (lo, hi) = (j0.min(j1), j0.max(j1));
        let data = self.make_owned();
        let (head, tail) = data.split_at_mut(hi * nrows);
        let a = &mut head[lo * nrows..(lo + 1) * nrows];
        let b = &mut tail[..nrows];
        if j0 < j1 {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Element read, bounds-checked only in debug builds. The packed
    /// kernels iterate in patterns the compiler cannot always prove in
    /// range; their loop bounds are asserted once at entry instead.
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nrows && j < self.ncols, "at({i},{j}) out of bounds");
        let idx = j * self.nrows + i;
        debug_assert!(idx < self.data().len());
        // SAFETY: idx < nrows * ncols == data.len(), checked above in debug
        // builds and guaranteed by the callers' asserted loop bounds.
        unsafe { *self.data().get_unchecked(idx) }
    }

    /// Element write, bounds-checked only in debug builds (copies shared
    /// storage out first).
    #[inline(always)]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols, "at_mut({i},{j}) out of bounds");
        let idx = j * self.nrows + i;
        let data = self.make_owned();
        debug_assert!(idx < data.len());
        // SAFETY: idx < nrows * ncols == data.len(), as above.
        unsafe { data.get_unchecked_mut(idx) }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.ncols, self.nrows);
        for j in 0..self.ncols {
            for i in 0..self.nrows {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data().iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Max-abs norm.
    pub fn norm_max(&self) -> f64 {
        self.data().iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// `self += alpha * other` (same shape).
    pub fn axpy(&mut self, alpha: f64, other: &Mat) {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        for (a, b) in self.data_mut().iter_mut().zip(other.store.as_slice()) {
            *a += alpha * b;
        }
    }

    /// Copies the `r×c` sub-matrix at `(row, col)` into a new matrix.
    pub fn submatrix(&self, row: usize, col: usize, r: usize, c: usize) -> Mat {
        assert!(row + r <= self.nrows && col + c <= self.ncols);
        let mut m = Mat::zeros(r, c);
        for j in 0..c {
            for i in 0..r {
                m[(i, j)] = self[(row + i, col + j)];
            }
        }
        m
    }
}

impl PartialEq for Mat {
    /// Shape and element equality, regardless of how each side is stored.
    fn eq(&self, other: &Self) -> bool {
        self.nrows == other.nrows && self.ncols == other.ncols && self.data() == other.data()
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.store.as_slice()[j * self.nrows + i]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        let idx = j * self.nrows + i;
        &mut self.make_owned()[idx]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.nrows, self.ncols)?;
        for i in 0..self.nrows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.ncols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_column_major() {
        let m = Mat::from_col_major(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn row_major_conversion() {
        let m = Mat::from_row_major(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Mat::from_row_major(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn norms() {
        let m = Mat::from_col_major(1, 2, &[3.0, -4.0]);
        assert!((m.norm_fro() - 5.0).abs() < 1e-15);
        assert_eq!(m.norm_max(), 4.0);
    }

    #[test]
    fn submatrix_extracts() {
        let m = Mat::from_row_major(3, 3, &[1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        let s = m.submatrix(1, 1, 2, 2);
        assert_eq!(s[(0, 0)], 5.0);
        assert_eq!(s[(1, 1)], 9.0);
    }

    #[test]
    fn axpy_adds() {
        let mut a = Mat::identity(2);
        let b = Mat::from_col_major(2, 2, &[1.0, 1.0, 1.0, 1.0]);
        a.axpy(2.0, &b);
        assert_eq!(a[(0, 0)], 3.0);
        assert_eq!(a[(1, 0)], 2.0);
    }

    #[test]
    fn shared_storage_reads_without_copy_and_cows_on_write() {
        let buf: Arc<[f64]> = Arc::from(vec![1.0, 2.0, 3.0, 4.0].as_slice());
        let mut m = Mat::from_shared(2, 2, buf.clone());
        assert!(m.is_shared());
        assert_eq!(Arc::strong_count(&buf), 2);
        assert_eq!(m[(1, 0)], 2.0);
        assert!(m.is_shared(), "reads must not detach shared storage");
        // Round-trip back out is free while shared.
        let back = m.to_shared();
        assert!(Arc::ptr_eq(&back, &buf));
        drop(back);
        // First write copies; the original buffer stays intact.
        m[(0, 0)] = 99.0;
        assert!(!m.is_shared());
        assert_eq!(buf[0], 1.0, "writer must never alias the shared buffer");
        assert_eq!(m[(0, 0)], 99.0);
        assert_eq!(Arc::strong_count(&buf), 1);
    }

    #[test]
    fn shared_and_owned_compare_by_contents() {
        let owned = Mat::from_col_major(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let shared = Mat::from_shared(2, 2, Arc::from(vec![1.0, 2.0, 3.0, 4.0].as_slice()));
        assert_eq!(owned, shared);
    }

    #[test]
    fn clone_of_shared_is_cheap_and_detaches_on_write() {
        let m = Mat::from_shared(1, 3, Arc::from(vec![1.0, 2.0, 3.0].as_slice()));
        let mut c = m.clone();
        c[(0, 1)] = -2.0;
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(c[(0, 1)], -2.0);
    }

    #[test]
    fn col_pair_mut_returns_disjoint_columns() {
        let mut m = Mat::from_col_major(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let (a, b) = m.col_pair_mut(2, 0);
        assert_eq!(a, &[5.0, 6.0]);
        assert_eq!(b, &[1.0, 2.0]);
        a[0] = 50.0;
        b[1] = 20.0;
        assert_eq!(m[(0, 2)], 50.0);
        assert_eq!(m[(1, 0)], 20.0);
    }

    #[test]
    #[should_panic(expected = "distinct columns")]
    fn col_pair_mut_rejects_same_column() {
        let mut m = Mat::zeros(2, 2);
        let _ = m.col_pair_mut(1, 1);
    }

    #[test]
    fn at_accessors_match_indexing() {
        let mut m = Mat::from_col_major(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.at(1, 1), 4.0);
        *m.at_mut(0, 1) = 7.0;
        assert_eq!(m[(0, 1)], 7.0);
    }
}
