//! Owned column-major dense matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense column-major matrix of `f64`.
///
/// Element `(i, j)` is stored at `data[j * nrows + i]`, matching the layout
/// of supernodal panels so kernels can run directly on panel storage.
#[derive(Clone, PartialEq)]
pub struct Mat {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self { nrows, ncols, data: vec![0.0; nrows * ncols] }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a column-major slice.
    pub fn from_col_major(nrows: usize, ncols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), nrows * ncols);
        Self { nrows, ncols, data: data.to_vec() }
    }

    /// Builds from a row-major slice (converts to column-major).
    pub fn from_row_major(nrows: usize, ncols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), nrows * ncols);
        let mut m = Self::zeros(nrows, ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                m[(i, j)] = data[i * ncols + j];
            }
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Raw column-major storage.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw column-major storage.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Column `j` as a slice.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable slice.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.ncols, self.nrows);
        for j in 0..self.ncols {
            for i in 0..self.nrows {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Max-abs norm.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// `self += alpha * other` (same shape).
    pub fn axpy(&mut self, alpha: f64, other: &Mat) {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Copies the `r×c` sub-matrix at `(row, col)` into a new matrix.
    pub fn submatrix(&self, row: usize, col: usize, r: usize, c: usize) -> Mat {
        assert!(row + r <= self.nrows && col + c <= self.ncols);
        let mut m = Mat::zeros(r, c);
        for j in 0..c {
            for i in 0..r {
                m[(i, j)] = self[(row + i, col + j)];
            }
        }
        m
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[j * self.nrows + i]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[j * self.nrows + i]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.nrows, self.ncols)?;
        for i in 0..self.nrows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.ncols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_column_major() {
        let m = Mat::from_col_major(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn row_major_conversion() {
        let m = Mat::from_row_major(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Mat::from_row_major(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn norms() {
        let m = Mat::from_col_major(1, 2, &[3.0, -4.0]);
        assert!((m.norm_fro() - 5.0).abs() < 1e-15);
        assert_eq!(m.norm_max(), 4.0);
    }

    #[test]
    fn submatrix_extracts() {
        let m = Mat::from_row_major(3, 3, &[1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        let s = m.submatrix(1, 1, 2, 2);
        assert_eq!(s[(0, 0)], 5.0);
        assert_eq!(s[(1, 1)], 9.0);
    }

    #[test]
    fn axpy_adds() {
        let mut a = Mat::identity(2);
        let b = Mat::from_col_major(2, 2, &[1.0, 1.0, 1.0, 1.0]);
        a.axpy(2.0, &b);
        assert_eq!(a[(0, 0)], 3.0);
        assert_eq!(a[(1, 0)], 2.0);
    }
}
