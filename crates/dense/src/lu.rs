//! Partially pivoted LU factorization of dense blocks (unsymmetric path).
//!
//! The paper's implementation covers symmetric matrices and notes that the
//! extension to unsymmetric matrices is work in progress; we provide the
//! dense kernels for that extension here and a sequential unsymmetric
//! selected inversion in `pselinv-selinv`.

use crate::kernels::{gemm_raw, trsm_left_lower, Transpose};
use crate::ldlt::FACTOR_NB;
use crate::mat::Mat;

/// Error for a numerically singular block (no admissible pivot).
#[derive(Debug, Clone, PartialEq)]
pub struct SingularLu {
    /// Column at which elimination broke down.
    pub col: usize,
}

impl std::fmt::Display for SingularLu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "singular LU block at column {}", self.col)
    }
}

impl std::error::Error for SingularLu {}

/// In-place LU with partial pivoting: `P A = L U` where `L` is unit lower
/// triangular (strictly lower part of the result) and `U` upper triangular
/// (upper part including diagonal). Returns the pivot row permutation:
/// `pivots[k]` is the row swapped into position `k` at step `k`.
///
/// Blocked right-looking panels: the rank-1 updates of the scalar loop are
/// restricted to the current [`FACTOR_NB`]-column panel; the off-panel
/// columns are updated once per panel via the blocked left-TRSM (`U₁₂`)
/// and the packed GEMM core (Schur complement `A₂₂ -= L₂₁·U₁₂`). The
/// seed's scalar elimination is retained as [`lu_factor_naive`]; both
/// produce the same `P`, `L`, `U` up to floating-point reordering.
pub fn lu_factor(a: &mut Mat) -> Result<Vec<usize>, SingularLu> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "lu_factor requires a square block");
    if n <= FACTOR_NB {
        return lu_factor_naive(a);
    }
    let mut pivots = vec![0usize; n];
    let mut k0 = 0;
    while k0 < n {
        let k1 = (k0 + FACTOR_NB).min(n);
        let nb = k1 - k0;
        // Unblocked panel factorization with partial pivoting; row swaps
        // apply to the whole matrix so `pivots` keeps the naive semantics.
        for k in k0..k1 {
            let mut p = k;
            let mut best = a[(k, k)].abs();
            for i in (k + 1)..n {
                let v = a[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < f64::EPSILON * 16.0 {
                return Err(SingularLu { col: k });
            }
            pivots[k] = p;
            if p != k {
                for j in 0..n {
                    let t = a[(k, j)];
                    a[(k, j)] = a[(p, j)];
                    a[(p, j)] = t;
                }
            }
            let d = a[(k, k)];
            for i in (k + 1)..n {
                a[(i, k)] /= d;
            }
            // Rank-1 update of the remaining panel columns only.
            for j in (k + 1)..k1 {
                let ukj = a[(k, j)];
                if ukj == 0.0 {
                    continue;
                }
                for i in (k + 1)..n {
                    let lik = a[(i, k)];
                    a[(i, j)] -= lik * ukj;
                }
            }
        }
        if k1 < n {
            // U₁₂ := L₁₁⁻¹ · A[k0..k1, k1..n) via the blocked TRSM.
            let mut l11 = Mat::zeros(nb, nb);
            for j in 0..nb {
                for i in j..nb {
                    l11[(i, j)] = a[(k0 + i, k0 + j)];
                }
            }
            let mut u12 = Mat::zeros(nb, n - k1);
            for j in 0..(n - k1) {
                for i in 0..nb {
                    u12[(i, j)] = a[(k0 + i, k1 + j)];
                }
            }
            trsm_left_lower(&l11, &mut u12, true);
            for j in 0..(n - k1) {
                for i in 0..nb {
                    a[(k0 + i, k1 + j)] = u12[(i, j)];
                }
            }
            // Schur complement through the packed GEMM core:
            //   A[k1.., k1..) -= L₂₁ · U₁₂.
            // SAFETY: reads columns k0..k1 of `a` and the temp `u12`,
            // writes the disjoint region (rows ≥ k1) × (columns ≥ k1).
            unsafe {
                let base = a.data_mut().as_mut_ptr();
                gemm_raw(
                    n - k1,
                    n - k1,
                    nb,
                    -1.0,
                    base.add(k0 * n + k1).cast_const(),
                    n,
                    Transpose::No,
                    u12.data().as_ptr(),
                    nb,
                    Transpose::No,
                    1.0,
                    base.add(k1 * n + k1),
                    n,
                );
            }
        }
        k0 = k1;
    }
    Ok(pivots)
}

/// The seed's scalar right-looking elimination, retained as the
/// equivalence reference for [`lu_factor`].
pub fn lu_factor_naive(a: &mut Mat) -> Result<Vec<usize>, SingularLu> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "lu_factor requires a square block");
    let mut pivots = vec![0usize; n];
    for k in 0..n {
        // choose pivot
        let mut p = k;
        let mut best = a[(k, k)].abs();
        for i in (k + 1)..n {
            let v = a[(i, k)].abs();
            if v > best {
                best = v;
                p = i;
            }
        }
        if best < f64::EPSILON * 16.0 {
            return Err(SingularLu { col: k });
        }
        pivots[k] = p;
        if p != k {
            for j in 0..n {
                let t = a[(k, j)];
                a[(k, j)] = a[(p, j)];
                a[(p, j)] = t;
            }
        }
        let d = a[(k, k)];
        for i in (k + 1)..n {
            a[(i, k)] /= d;
        }
        for j in (k + 1)..n {
            let ukj = a[(k, j)];
            if ukj == 0.0 {
                continue;
            }
            for i in (k + 1)..n {
                let lik = a[(i, k)];
                a[(i, j)] -= lik * ukj;
            }
        }
    }
    Ok(pivots)
}

/// Solves `A X = B` in place given the output of [`lu_factor`].
pub fn lu_solve(factored: &Mat, pivots: &[usize], b: &mut Mat) {
    let n = factored.nrows();
    assert_eq!(b.nrows(), n);
    // apply row swaps
    for k in 0..n {
        let p = pivots[k];
        if p != k {
            for j in 0..b.ncols() {
                let t = b[(k, j)];
                b[(k, j)] = b[(p, j)];
                b[(p, j)] = t;
            }
        }
    }
    // L y = Pb (unit lower)
    for j in 0..b.ncols() {
        for i in 0..n {
            let mut s = b[(i, j)];
            for k in 0..i {
                s -= factored[(i, k)] * b[(k, j)];
            }
            b[(i, j)] = s;
        }
    }
    // U x = y
    for j in 0..b.ncols() {
        for i in (0..n).rev() {
            let mut s = b[(i, j)];
            for k in (i + 1)..n {
                s -= factored[(i, k)] * b[(k, j)];
            }
            b[(i, j)] = s / factored[(i, i)];
        }
    }
}

/// Full inverse from the output of [`lu_factor`].
pub fn lu_invert(factored: &Mat, pivots: &[usize]) -> Mat {
    let n = factored.nrows();
    let mut inv = Mat::identity(n);
    lu_solve(factored, pivots, &mut inv);
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{gemm, Transpose};

    fn rand_mat(n: usize, seed: u64) -> Mat {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let mut a = Mat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                a[(i, j)] = next();
            }
            a[(j, j)] += 3.0;
        }
        a
    }

    #[test]
    fn solve_recovers_rhs() {
        for n in [1, 3, 8] {
            let a = rand_mat(n, n as u64 + 1);
            let mut f = a.clone();
            let piv = lu_factor(&mut f).unwrap();
            let b = rand_mat(n, 99);
            let mut x = b.clone();
            lu_solve(&f, &piv, &mut x);
            let mut ax = Mat::zeros(n, n);
            gemm(1.0, &a, Transpose::No, &x, Transpose::No, 0.0, &mut ax);
            for j in 0..n {
                for i in 0..n {
                    assert!((ax[(i, j)] - b[(i, j)]).abs() < 1e-10, "n={n}");
                }
            }
        }
    }

    #[test]
    fn invert_gives_identity() {
        let n = 6;
        let a = rand_mat(n, 7);
        let mut f = a.clone();
        let piv = lu_factor(&mut f).unwrap();
        let inv = lu_invert(&f, &piv);
        let mut prod = Mat::zeros(n, n);
        gemm(1.0, &a, Transpose::No, &inv, Transpose::No, 0.0, &mut prod);
        for j in 0..n {
            for i in 0..n {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [[0, 1], [1, 0]] requires a swap.
        let mut a = Mat::zeros(2, 2);
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        let piv = lu_factor(&mut a).unwrap();
        assert_eq!(piv[0], 1);
    }

    #[test]
    fn singular_detected() {
        let mut a = Mat::zeros(3, 3);
        for j in 0..3 {
            for i in 0..3 {
                a[(i, j)] = (i + j) as f64; // rank 2
            }
        }
        assert!(lu_factor(&mut a).is_err());
    }
}
