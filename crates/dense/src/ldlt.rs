//! LDLᵀ factorization and symmetric inversion of dense diagonal blocks.

use crate::kernels::{trsm_left_lower, trsm_left_lower_trans};
use crate::mat::Mat;

/// Error for a numerically singular diagonal block.
#[derive(Debug, Clone, PartialEq)]
pub struct SingularBlock {
    /// Index of the offending pivot within the block.
    pub pivot: usize,
    /// Its value.
    pub value: f64,
}

impl std::fmt::Display for SingularBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "singular diagonal block: pivot {} = {:e}", self.pivot, self.value)
    }
}

impl std::error::Error for SingularBlock {}

/// In-place LDLᵀ factorization without pivoting of a symmetric block.
///
/// On return, the strictly lower part of `a` holds the unit lower factor
/// `L` and the diagonal holds `D`. The strictly upper part is left
/// untouched. No pivoting is performed: the supernodal driver guarantees
/// (via the SPD workload generators) that pivots stay away from zero; a
/// tiny pivot returns [`SingularBlock`].
pub fn ldlt_factor(a: &mut Mat) -> Result<(), SingularBlock> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "ldlt_factor requires a square block");
    for j in 0..n {
        // d_j = a_jj - sum_k l_jk^2 d_k
        let mut d = a[(j, j)];
        for k in 0..j {
            let l = a[(j, k)];
            d -= l * l * a[(k, k)];
        }
        if d.abs() < f64::EPSILON * 16.0 {
            return Err(SingularBlock { pivot: j, value: d });
        }
        a[(j, j)] = d;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= a[(i, k)] * a[(j, k)] * a[(k, k)];
            }
            a[(i, j)] = s / d;
        }
    }
    Ok(())
}

/// Solves `A X = B` in place given the output of [`ldlt_factor`].
pub fn ldlt_solve(factored: &Mat, b: &mut Mat) {
    let n = factored.nrows();
    assert_eq!(b.nrows(), n);
    // L y = b
    trsm_left_lower(factored, b, true);
    // D z = y
    for j in 0..b.ncols() {
        for i in 0..n {
            b[(i, j)] /= factored[(i, i)];
        }
    }
    // Lᵀ x = z
    trsm_left_lower_trans(factored, b, true);
}

/// Computes the full symmetric inverse `A⁻¹ = L⁻ᵀ D⁻¹ L⁻¹` from the output
/// of [`ldlt_factor`]. This initializes the diagonal block of the selected
/// inverse (step 4 of Algorithm 1).
pub fn ldlt_invert(factored: &Mat) -> Mat {
    let n = factored.nrows();
    let mut inv = Mat::identity(n);
    ldlt_solve(factored, &mut inv);
    // Symmetrize to wash out rounding asymmetry.
    for j in 0..n {
        for i in (j + 1)..n {
            let v = 0.5 * (inv[(i, j)] + inv[(j, i)]);
            inv[(i, j)] = v;
            inv[(j, i)] = v;
        }
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{gemm, Transpose};

    fn spd(n: usize, seed: u64) -> Mat {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let mut a = Mat::zeros(n, n);
        for j in 0..n {
            for i in 0..j {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
            a[(j, j)] = n as f64 + 1.0;
        }
        a
    }

    fn reconstruct(f: &Mat) -> Mat {
        let n = f.nrows();
        let mut l = Mat::identity(n);
        let mut d = Mat::zeros(n, n);
        for j in 0..n {
            d[(j, j)] = f[(j, j)];
            for i in (j + 1)..n {
                l[(i, j)] = f[(i, j)];
            }
        }
        let mut ld = Mat::zeros(n, n);
        gemm(1.0, &l, Transpose::No, &d, Transpose::No, 0.0, &mut ld);
        let mut a = Mat::zeros(n, n);
        gemm(1.0, &ld, Transpose::No, &l, Transpose::Yes, 0.0, &mut a);
        a
    }

    #[test]
    fn factor_reconstructs() {
        for n in [1, 2, 5, 12] {
            let a = spd(n, 42 + n as u64);
            let mut f = a.clone();
            ldlt_factor(&mut f).unwrap();
            let r = reconstruct(&f);
            for j in 0..n {
                for i in 0..n {
                    assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-10, "n={n} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn solve_is_inverse_application() {
        let n = 7;
        let a = spd(n, 5);
        let mut f = a.clone();
        ldlt_factor(&mut f).unwrap();
        let b = spd(n, 9);
        let mut x = b.clone();
        ldlt_solve(&f, &mut x);
        let mut ax = Mat::zeros(n, n);
        gemm(1.0, &a, Transpose::No, &x, Transpose::No, 0.0, &mut ax);
        for j in 0..n {
            for i in 0..n {
                assert!((ax[(i, j)] - b[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn invert_gives_identity() {
        let n = 9;
        let a = spd(n, 13);
        let mut f = a.clone();
        ldlt_factor(&mut f).unwrap();
        let inv = ldlt_invert(&f);
        let mut prod = Mat::zeros(n, n);
        gemm(1.0, &a, Transpose::No, &inv, Transpose::No, 0.0, &mut prod);
        for j in 0..n {
            for i in 0..n {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-10);
            }
        }
        // symmetric by construction
        for j in 0..n {
            for i in 0..n {
                assert_eq!(inv[(i, j)], inv[(j, i)]);
            }
        }
    }

    #[test]
    fn singular_block_detected() {
        let mut a = Mat::zeros(2, 2);
        a[(0, 0)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(0, 1)] = 1.0;
        a[(1, 1)] = 1.0; // rank 1
        let err = ldlt_factor(&mut a).unwrap_err();
        assert_eq!(err.pivot, 1);
    }

    #[test]
    fn indefinite_but_nonsingular_factors() {
        // LDLᵀ without pivoting handles negative pivots fine.
        let mut a = Mat::zeros(2, 2);
        a[(0, 0)] = -2.0;
        a[(1, 1)] = 3.0;
        a[(1, 0)] = 1.0;
        a[(0, 1)] = 1.0;
        let orig = a.clone();
        ldlt_factor(&mut a).unwrap();
        let r = reconstruct(&a);
        for j in 0..2 {
            for i in 0..2 {
                assert!((r[(i, j)] - orig[(i, j)]).abs() < 1e-12);
            }
        }
    }
}
