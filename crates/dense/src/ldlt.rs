//! LDLᵀ factorization and symmetric inversion of dense diagonal blocks.
//!
//! [`ldlt_factor`] is blocked: panels of [`FACTOR_NB`] columns are
//! pre-updated from the already-factored columns by one call into the
//! packed GEMM core, the small diagonal chunk is factored by the retained
//! scalar loops, and the sub-diagonal panel is solved by the blocked
//! right-TRSM — so the `O(n³)` work runs at blocked-kernel speed instead of
//! the seed's scalar jki loops. The seed algorithm is kept verbatim as
//! [`ldlt_factor_naive`]: it is the equivalence reference for the property
//! tests (LDLᵀ without pivoting is unique, so the two factors agree up to
//! rounding).

use crate::kernels::{
    gemm, gemm_raw, trsm_left_lower, trsm_left_lower_trans, trsm_right_lower_trans, Transpose,
};
use crate::mat::Mat;

/// Panel width of the blocked factorizations (LDLᵀ and LU): matches the
/// blocked-TRSM block size so panel solves hit their fast path.
pub(crate) const FACTOR_NB: usize = 48;

/// Error for a numerically singular diagonal block.
#[derive(Debug, Clone, PartialEq)]
pub struct SingularBlock {
    /// Index of the offending pivot within the block.
    pub pivot: usize,
    /// Its value.
    pub value: f64,
}

impl std::fmt::Display for SingularBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "singular diagonal block: pivot {} = {:e}", self.pivot, self.value)
    }
}

impl std::error::Error for SingularBlock {}

/// In-place LDLᵀ factorization without pivoting of a symmetric block.
///
/// On return, the strictly lower part of `a` holds the unit lower factor
/// `L` and the diagonal holds `D`. The strictly upper part is left
/// untouched. No pivoting is performed: the supernodal driver guarantees
/// (via the SPD workload generators) that pivots stay away from zero; a
/// tiny pivot returns [`SingularBlock`].
///
/// Blocked left-looking panels (see module docs); agrees with
/// [`ldlt_factor_naive`] up to floating-point reordering.
pub fn ldlt_factor(a: &mut Mat) -> Result<(), SingularBlock> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "ldlt_factor requires a square block");
    if n <= FACTOR_NB {
        return ldlt_factor_naive(a);
    }
    let mut k0 = 0;
    while k0 < n {
        let k1 = (k0 + FACTOR_NB).min(n);
        let nb = k1 - k0;
        if k0 > 0 {
            // Pre-update the panel from the factored columns 0..k0:
            //   A[k0.., k0..k1) -= L[k0.., 0..k0] · D · L[k0..k1, 0..k0]ᵀ.
            // W = L[k0..k1, 0..k0] · D is formed once; the diagonal chunk
            // goes through a temp so the strictly upper triangle of `a`
            // stays untouched, the below-chunk rectangle goes straight
            // through the packed GEMM core.
            let mut ltop = Mat::zeros(nb, k0);
            let mut w = Mat::zeros(nb, k0);
            for kk in 0..k0 {
                let d = a[(kk, kk)];
                for i in 0..nb {
                    let l = a[(k0 + i, kk)];
                    ltop[(i, kk)] = l;
                    w[(i, kk)] = l * d;
                }
            }
            let mut s = Mat::zeros(nb, nb);
            gemm(1.0, &w, Transpose::No, &ltop, Transpose::Yes, 0.0, &mut s);
            for j in 0..nb {
                for i in j..nb {
                    a[(k0 + i, k0 + j)] -= s[(i, j)];
                }
            }
            if k1 < n {
                // SAFETY: reads columns 0..k0 of `a` and the temp `w`,
                // writes the disjoint column range k0..k1 (rows k1..n).
                unsafe {
                    let base = a.data_mut().as_mut_ptr();
                    gemm_raw(
                        n - k1,
                        nb,
                        k0,
                        -1.0,
                        base.add(k1).cast_const(),
                        n,
                        Transpose::No,
                        w.data().as_ptr(),
                        nb,
                        Transpose::Yes,
                        1.0,
                        base.add(k0 * n + k1),
                        n,
                    );
                }
            }
        }
        // Factor the nb×nb diagonal chunk with the scalar loops (updates
        // restricted to within-panel columns; earlier panels are already
        // applied).
        for j in k0..k1 {
            let mut d = a[(j, j)];
            for k in k0..j {
                let l = a[(j, k)];
                d -= l * l * a[(k, k)];
            }
            if d.abs() < f64::EPSILON * 16.0 {
                return Err(SingularBlock { pivot: j, value: d });
            }
            a[(j, j)] = d;
            for i in (j + 1)..k1 {
                let mut s = a[(i, j)];
                for k in k0..j {
                    s -= a[(i, k)] * a[(j, k)] * a[(k, k)];
                }
                a[(i, j)] = s / d;
            }
        }
        // Panel solve below the chunk via the blocked TRSM:
        //   L21 = A21 · L11⁻ᵀ · D⁻¹.
        if k1 < n {
            let mut l11 = Mat::zeros(nb, nb);
            for j in 0..nb {
                for i in j..nb {
                    l11[(i, j)] = a[(k0 + i, k0 + j)];
                }
            }
            let mut a21 = Mat::zeros(n - k1, nb);
            for j in 0..nb {
                for i in 0..(n - k1) {
                    a21[(i, j)] = a[(k1 + i, k0 + j)];
                }
            }
            trsm_right_lower_trans(&mut a21, &l11, true);
            for j in 0..nb {
                let inv_d = 1.0 / a[(k0 + j, k0 + j)];
                for i in 0..(n - k1) {
                    a[(k1 + i, k0 + j)] = a21[(i, j)] * inv_d;
                }
            }
        }
        k0 = k1;
    }
    Ok(())
}

/// The seed's scalar jki-loop LDLᵀ, retained as the equivalence reference
/// for [`ldlt_factor`].
pub fn ldlt_factor_naive(a: &mut Mat) -> Result<(), SingularBlock> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "ldlt_factor requires a square block");
    for j in 0..n {
        // d_j = a_jj - sum_k l_jk^2 d_k
        let mut d = a[(j, j)];
        for k in 0..j {
            let l = a[(j, k)];
            d -= l * l * a[(k, k)];
        }
        if d.abs() < f64::EPSILON * 16.0 {
            return Err(SingularBlock { pivot: j, value: d });
        }
        a[(j, j)] = d;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= a[(i, k)] * a[(j, k)] * a[(k, k)];
            }
            a[(i, j)] = s / d;
        }
    }
    Ok(())
}

/// Solves `A X = B` in place given the output of [`ldlt_factor`].
pub fn ldlt_solve(factored: &Mat, b: &mut Mat) {
    let n = factored.nrows();
    assert_eq!(b.nrows(), n);
    // L y = b
    trsm_left_lower(factored, b, true);
    // D z = y
    for j in 0..b.ncols() {
        for i in 0..n {
            b[(i, j)] /= factored[(i, i)];
        }
    }
    // Lᵀ x = z
    trsm_left_lower_trans(factored, b, true);
}

/// Computes the full symmetric inverse `A⁻¹ = L⁻ᵀ D⁻¹ L⁻¹` from the output
/// of [`ldlt_factor`]. This initializes the diagonal block of the selected
/// inverse (step 4 of Algorithm 1).
pub fn ldlt_invert(factored: &Mat) -> Mat {
    let n = factored.nrows();
    let mut inv = Mat::identity(n);
    ldlt_solve(factored, &mut inv);
    // Symmetrize to wash out rounding asymmetry.
    for j in 0..n {
        for i in (j + 1)..n {
            let v = 0.5 * (inv[(i, j)] + inv[(j, i)]);
            inv[(i, j)] = v;
            inv[(j, i)] = v;
        }
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{gemm, Transpose};

    fn spd(n: usize, seed: u64) -> Mat {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let mut a = Mat::zeros(n, n);
        for j in 0..n {
            for i in 0..j {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
            a[(j, j)] = n as f64 + 1.0;
        }
        a
    }

    fn reconstruct(f: &Mat) -> Mat {
        let n = f.nrows();
        let mut l = Mat::identity(n);
        let mut d = Mat::zeros(n, n);
        for j in 0..n {
            d[(j, j)] = f[(j, j)];
            for i in (j + 1)..n {
                l[(i, j)] = f[(i, j)];
            }
        }
        let mut ld = Mat::zeros(n, n);
        gemm(1.0, &l, Transpose::No, &d, Transpose::No, 0.0, &mut ld);
        let mut a = Mat::zeros(n, n);
        gemm(1.0, &ld, Transpose::No, &l, Transpose::Yes, 0.0, &mut a);
        a
    }

    #[test]
    fn factor_reconstructs() {
        for n in [1, 2, 5, 12] {
            let a = spd(n, 42 + n as u64);
            let mut f = a.clone();
            ldlt_factor(&mut f).unwrap();
            let r = reconstruct(&f);
            for j in 0..n {
                for i in 0..n {
                    assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-10, "n={n} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn solve_is_inverse_application() {
        let n = 7;
        let a = spd(n, 5);
        let mut f = a.clone();
        ldlt_factor(&mut f).unwrap();
        let b = spd(n, 9);
        let mut x = b.clone();
        ldlt_solve(&f, &mut x);
        let mut ax = Mat::zeros(n, n);
        gemm(1.0, &a, Transpose::No, &x, Transpose::No, 0.0, &mut ax);
        for j in 0..n {
            for i in 0..n {
                assert!((ax[(i, j)] - b[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn invert_gives_identity() {
        let n = 9;
        let a = spd(n, 13);
        let mut f = a.clone();
        ldlt_factor(&mut f).unwrap();
        let inv = ldlt_invert(&f);
        let mut prod = Mat::zeros(n, n);
        gemm(1.0, &a, Transpose::No, &inv, Transpose::No, 0.0, &mut prod);
        for j in 0..n {
            for i in 0..n {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-10);
            }
        }
        // symmetric by construction
        for j in 0..n {
            for i in 0..n {
                assert_eq!(inv[(i, j)], inv[(j, i)]);
            }
        }
    }

    #[test]
    fn singular_block_detected() {
        let mut a = Mat::zeros(2, 2);
        a[(0, 0)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(0, 1)] = 1.0;
        a[(1, 1)] = 1.0; // rank 1
        let err = ldlt_factor(&mut a).unwrap_err();
        assert_eq!(err.pivot, 1);
    }

    #[test]
    fn indefinite_but_nonsingular_factors() {
        // LDLᵀ without pivoting handles negative pivots fine.
        let mut a = Mat::zeros(2, 2);
        a[(0, 0)] = -2.0;
        a[(1, 1)] = 3.0;
        a[(1, 0)] = 1.0;
        a[(0, 1)] = 1.0;
        let orig = a.clone();
        ldlt_factor(&mut a).unwrap();
        let r = reconstruct(&a);
        for j in 0..2 {
            for i in 0..2 {
                assert!((r[(i, j)] - orig[(i, j)]).abs() < 1e-12);
            }
        }
    }
}
