//! Column-major dense block kernels.
//!
//! The supernodal numeric factorization and the selected inversion operate
//! on dense panels; this crate provides the BLAS-3-style kernels they need
//! (no external BLAS dependency):
//!
//! * [`Mat`] — an owned column-major matrix with views into raw slices;
//! * [`gemm`] — general matrix multiply with transpose flags;
//! * [`trsm_right_lower`] / [`trsm_left_lower`] — triangular solves against
//!   unit/non-unit lower-triangular blocks;
//! * [`ldlt_factor`] / [`ldlt_invert`] — LDLᵀ of a symmetric diagonal block
//!   and the symmetric inverse `L⁻ᵀ D⁻¹ L⁻¹`;
//! * [`lu_factor`] / [`lu_invert`] — partially pivoted LU for the
//!   unsymmetric path.

pub mod kernels;
pub mod ldlt;
pub mod lu;
pub mod mat;
pub mod parallel;

pub use kernels::{
    gemm, gemm_naive, trsm_left_lower, trsm_left_lower_naive, trsm_left_lower_trans,
    trsm_left_lower_trans_naive, trsm_right_lower, trsm_right_lower_naive, trsm_right_lower_trans,
    trsm_right_lower_trans_naive, Transpose,
};
pub use ldlt::{ldlt_factor, ldlt_factor_naive, ldlt_invert, ldlt_solve};
pub use lu::{lu_factor, lu_factor_naive, lu_invert, lu_solve};
pub use mat::Mat;
pub use parallel::gemm_pool;
