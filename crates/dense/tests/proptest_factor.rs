//! Property tests: the blocked panel factorizations must agree with the
//! retained naive references across sizes straddling the panel width
//! (48), including multi-panel problems.

use proptest::prelude::*;
use pselinv_dense::{
    gemm, ldlt_factor, ldlt_factor_naive, lu_factor, lu_factor_naive, lu_solve, Mat, Transpose,
};

fn rand_mat(n: usize, seed: u64) -> Mat {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1) | 1;
    let mut a = Mat::zeros(n, n);
    for j in 0..n {
        for i in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            a[(i, j)] = (state as f64 / u64::MAX as f64) * 2.0 - 1.0;
        }
    }
    a
}

/// Symmetric with a dominant diagonal so LDLᵀ without pivoting is stable.
fn sym_dd(n: usize, seed: u64) -> Mat {
    let mut a = rand_mat(n, seed);
    for j in 0..n {
        for i in 0..j {
            let v = a[(i, j)];
            a[(j, i)] = v;
        }
        a[(j, j)] = n as f64 + 2.0;
    }
    a
}

/// Diagonally dominated unsymmetric matrix (well-conditioned for LU).
fn unsym_dd(n: usize, seed: u64) -> Mat {
    let mut a = rand_mat(n, seed);
    for j in 0..n {
        a[(j, j)] += n as f64 + 2.0;
    }
    a
}

fn assert_close(got: &Mat, want: &Mat, tol: f64, what: &str) {
    for j in 0..got.ncols() {
        for i in 0..got.nrows() {
            let scale = 1.0_f64.max(got[(i, j)].abs()).max(want[(i, j)].abs());
            assert!(
                (got[(i, j)] - want[(i, j)]).abs() < tol * scale,
                "{what} at ({i},{j}): {} vs {}",
                got[(i, j)],
                want[(i, j)]
            );
        }
    }
}

/// Reconstruct `L·D·Lᵀ` from a factored LDLᵀ block.
fn ldlt_reconstruct(f: &Mat) -> Mat {
    let n = f.nrows();
    let mut l = Mat::identity(n);
    let mut d = Mat::zeros(n, n);
    for j in 0..n {
        d[(j, j)] = f[(j, j)];
        for i in (j + 1)..n {
            l[(i, j)] = f[(i, j)];
        }
    }
    let mut ld = Mat::zeros(n, n);
    gemm(1.0, &l, Transpose::No, &d, Transpose::No, 0.0, &mut ld);
    let mut a = Mat::zeros(n, n);
    gemm(1.0, &ld, Transpose::No, &l, Transpose::Yes, 0.0, &mut a);
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// LDLᵀ without pivoting is unique, so the blocked and naive factors
    /// must agree element-wise (up to rounding), the upper triangle must
    /// be untouched, and both must reconstruct the input.
    #[test]
    fn blocked_ldlt_matches_naive(n_i in 0usize..6, seed in 0u64..1_000) {
        let n = [1usize, 7, 48, 49, 96, 130][n_i];
        let a = sym_dd(n, seed + 1);
        let mut blocked = a.clone();
        let mut naive = a.clone();
        ldlt_factor(&mut blocked).unwrap();
        ldlt_factor_naive(&mut naive).unwrap();
        assert_close(&blocked, &naive, 1e-9, "blocked vs naive LDLT factor");
        for j in 0..n {
            for i in 0..j {
                prop_assert_eq!(
                    blocked[(i, j)].to_bits(),
                    a[(i, j)].to_bits(),
                    "upper triangle must stay untouched at ({},{})", i, j
                );
            }
        }
        let r = ldlt_reconstruct(&blocked);
        assert_close(&r, &a, 1e-9, "LDLT reconstruction");
    }

    /// Blocked LU must solve as accurately as the naive elimination
    /// (pivot sequences can differ only on floating-point ties, but the
    /// solve must agree regardless).
    #[test]
    fn blocked_lu_matches_naive(n_i in 0usize..6, seed in 0u64..1_000) {
        let n = [1usize, 7, 48, 49, 96, 130][n_i];
        let a = unsym_dd(n, seed + 1);
        let mut blocked = a.clone();
        let mut naive = a.clone();
        let piv_b = lu_factor(&mut blocked).unwrap();
        let piv_n = lu_factor_naive(&mut naive).unwrap();
        prop_assert_eq!(&piv_b, &piv_n, "dominant diagonal leaves no pivot ties");
        assert_close(&blocked, &naive, 1e-9, "blocked vs naive LU factor");
        let b = rand_mat(n, seed ^ 0xdead);
        let mut xb = b.clone();
        let mut xn = b.clone();
        lu_solve(&blocked, &piv_b, &mut xb);
        lu_solve(&naive, &piv_n, &mut xn);
        assert_close(&xb, &xn, 1e-8, "blocked vs naive LU solve");
        let mut ax = Mat::zeros(n, n);
        gemm(1.0, &a, Transpose::No, &xb, Transpose::No, 0.0, &mut ax);
        assert_close(&ax, &b, 1e-8, "LU solve residual");
    }
}
