//! Property tests: the blocked GEMM/TRSM kernels must agree with the
//! retained naive references on every transpose variant, alpha/beta
//! combination, and the odd/degenerate shape set {0, 1, 7, 48, 130}
//! (empty operands, single elements, sub-tile sizes, one TRSM block, and
//! multi-block problems that cross the packing boundaries).

use proptest::prelude::*;
use pselinv_dense::kernels::{
    gemm, gemm_naive, trsm_left_lower, trsm_left_lower_naive, trsm_left_lower_trans,
    trsm_left_lower_trans_naive, trsm_right_lower, trsm_right_lower_naive, trsm_right_lower_trans,
    trsm_right_lower_trans_naive,
};
use pselinv_dense::{Mat, Transpose};

const SHAPES: [usize; 5] = [0, 1, 7, 48, 130];
const COEFFS: [f64; 4] = [0.0, 1.0, -1.0, 0.75];

fn rand_mat(m: usize, n: usize, seed: u64) -> Mat {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1) | 1;
    let mut a = Mat::zeros(m, n);
    for j in 0..n {
        for i in 0..m {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            a[(i, j)] = (state as f64 / u64::MAX as f64) * 2.0 - 1.0;
        }
    }
    a
}

/// Well-conditioned lower-triangular matrix for solve tests.
fn lower_mat(w: usize, unit: bool, seed: u64) -> Mat {
    let src = rand_mat(w, w, seed);
    let mut l = Mat::zeros(w, w);
    for j in 0..w {
        for i in j..w {
            l[(i, j)] = src[(i, j)];
        }
        l[(j, j)] = if unit { 1.0 } else { src[(j, j)].abs() + 2.0 };
    }
    l
}

fn assert_close(got: &Mat, want: &Mat, tol: f64) {
    assert_eq!(got.nrows(), want.nrows());
    assert_eq!(got.ncols(), want.ncols());
    for j in 0..got.ncols() {
        for i in 0..got.nrows() {
            let scale = 1.0_f64.max(got[(i, j)].abs()).max(want[(i, j)].abs());
            assert!(
                (got[(i, j)] - want[(i, j)]).abs() < tol * scale,
                "mismatch at ({i},{j}): {} vs {}",
                got[(i, j)],
                want[(i, j)]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn blocked_gemm_matches_naive(
        mi in 0usize..5,
        ni in 0usize..5,
        ki in 0usize..5,
        variant in 0usize..4,
        ai in 0usize..4,
        bi in 0usize..4,
        seed in 0u64..1 << 48,
    ) {
        let (m, n, k) = (SHAPES[mi], SHAPES[ni], SHAPES[ki]);
        let (ta, tb) = [
            (Transpose::No, Transpose::No),
            (Transpose::Yes, Transpose::No),
            (Transpose::No, Transpose::Yes),
            (Transpose::Yes, Transpose::Yes),
        ][variant];
        let (alpha, beta) = (COEFFS[ai], COEFFS[bi]);

        let a = match ta {
            Transpose::No => rand_mat(m, k, seed),
            Transpose::Yes => rand_mat(k, m, seed),
        };
        let b = match tb {
            Transpose::No => rand_mat(k, n, seed ^ 1),
            Transpose::Yes => rand_mat(n, k, seed ^ 1),
        };
        let c0 = rand_mat(m, n, seed ^ 2);

        let mut c_blocked = c0.clone();
        let mut c_naive = c0;
        gemm(alpha, &a, ta, &b, tb, beta, &mut c_blocked);
        gemm_naive(alpha, &a, ta, &b, tb, beta, &mut c_naive);
        assert_close(&c_blocked, &c_naive, 1e-11);
    }

    #[test]
    fn blocked_trsm_matches_naive(
        mi in 0usize..5,
        wi in 0usize..5,
        variant in 0usize..4,
        unit in 0usize..2,
        seed in 0u64..1 << 48,
    ) {
        let (m, w) = (SHAPES[mi], SHAPES[wi]);
        let unit = unit == 1;
        let l = lower_mat(w, unit, seed);

        match variant {
            0 => {
                let b = rand_mat(m, w, seed ^ 3);
                let mut x_blocked = b.clone();
                let mut x_naive = b;
                trsm_right_lower(&mut x_blocked, &l, unit);
                trsm_right_lower_naive(&mut x_naive, &l, unit);
                assert_close(&x_blocked, &x_naive, 1e-9);
            }
            1 => {
                let b = rand_mat(m, w, seed ^ 3);
                let mut x_blocked = b.clone();
                let mut x_naive = b;
                trsm_right_lower_trans(&mut x_blocked, &l, unit);
                trsm_right_lower_trans_naive(&mut x_naive, &l, unit);
                assert_close(&x_blocked, &x_naive, 1e-9);
            }
            2 => {
                let b = rand_mat(w, m, seed ^ 3);
                let mut x_blocked = b.clone();
                let mut x_naive = b;
                trsm_left_lower(&l, &mut x_blocked, unit);
                trsm_left_lower_naive(&l, &mut x_naive, unit);
                assert_close(&x_blocked, &x_naive, 1e-9);
            }
            _ => {
                let b = rand_mat(w, m, seed ^ 3);
                let mut x_blocked = b.clone();
                let mut x_naive = b;
                trsm_left_lower_trans(&l, &mut x_blocked, unit);
                trsm_left_lower_trans_naive(&l, &mut x_naive, unit);
                assert_close(&x_blocked, &x_naive, 1e-9);
            }
        }
    }

    #[test]
    fn shared_mat_gemm_output_never_aliases_inputs(
        mi in 1usize..5,
        ki in 1usize..5,
        seed in 0u64..1 << 48,
    ) {
        // A Mat wrapped around a shared Arc buffer (the zero-copy receive
        // path) must copy-on-write before GEMM mutates it: the original
        // Arc's contents stay intact.
        let (m, k) = (SHAPES[mi], SHAPES[ki]);
        let a = rand_mat(m, k, seed);
        let b = rand_mat(k, m, seed ^ 7);
        let shared = rand_mat(m, m, seed ^ 9).to_shared();
        let snapshot: Vec<f64> = shared.to_vec();

        let mut c = Mat::from_shared(m, m, shared.clone());
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.5, &mut c);
        prop_assert_eq!(&shared[..], &snapshot[..]);
        prop_assert!(!c.is_shared());
    }
}
